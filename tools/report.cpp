// Renders a recorded run's trajectory from a servescope-telemetry-v1 JSON
// file (bench --json-out, typically fig05_concurrency --record).
//
//   report telemetry.json [--slo <seconds>] [--slo-target <attainment>]
//
// Sections:
//   - timeline: unicode sparklines of throughput (differenced completion
//     counter), queue depth, and eviction rate over the recorded window,
//     with first-third vs last-third deltas — the temporal shape behind the
//     paper's Fig. 5 claims (GPU-preproc decline, queue growth);
//   - per-stage breakdown from the serving_stage_seconds_total counters;
//   - SLO attainment from the request-latency histogram: p50/p95/p99/p99.9,
//     fraction of requests under the objective, and the error-budget burn
//     rate ((1 - attainment) / (1 - target));
//   - capacity: per-resource interval utilization table (mean/peak busy
//     fraction, time-average queue depth, saturation highlighting), the
//     binding-resource verdict with the headroom estimate, and the
//     Little's-law audit summary — present when the run attached an
//     obs::CapacityPlane;
//   - shape-check verdicts recorded by the bench.
//
// Exit codes: 0 on success, 2 on unreadable/malformed/wrong-schema input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::Value;

struct SeriesData {
  std::string name;
  std::string labels;  ///< flattened for display
  std::vector<double> samples;
};

std::string flatten_labels(const Value& labels) {
  std::string out;
  for (const auto& [k, v] : labels.object) {
    if (!out.empty()) out += ',';
    out += k + "=" + (v.is_string() ? v.str : std::to_string(v.number));
  }
  return out;
}

/// Element-wise sum of every series with `name` (servescope series all share
/// the recorder cadence; shorter late-joining series align at the tail end,
/// which is good enough for a human-facing summary).
std::vector<double> summed(const std::vector<SeriesData>& all, std::string_view name) {
  std::vector<double> out;
  for (const auto& s : all) {
    if (s.name != name) continue;
    out.resize(std::max(out.size(), s.samples.size()), 0.0);
    for (std::size_t i = 0; i < s.samples.size(); ++i) out[i] += s.samples[i];
  }
  return out;
}

std::vector<double> differenced(const std::vector<double>& cum, double period_s) {
  std::vector<double> out;
  if (cum.size() < 2 || period_s <= 0) return out;
  out.reserve(cum.size() - 1);
  for (std::size_t i = 1; i < cum.size(); ++i) out.push_back((cum[i] - cum[i - 1]) / period_s);
  return out;
}

double mean_over(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return 0.0;
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += v[i];
  return sum / static_cast<double>(hi - lo);
}

/// 8-level unicode sparkline, downsampled to at most `width` columns.
/// Non-finite samples (hostile/hand-edited input) render as '?' and are
/// excluded from the scale so one NaN cannot blank the whole line.
std::string sparkline(const std::vector<double>& v, std::size_t width = 64) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (v.empty()) return "(no samples)";
  std::vector<double> cols;
  const std::size_t n = v.size();
  if (n <= width) {
    cols = v;
  } else {
    cols.resize(width);
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t lo = c * n / width;
      const std::size_t hi = std::max(lo + 1, (c + 1) * n / width);
      cols[c] = mean_over(v, lo, hi);
    }
  }
  double mn = 0.0, mx = 0.0;
  bool have_finite = false;
  for (const double x : cols) {
    if (!std::isfinite(x)) continue;
    mn = have_finite ? std::min(mn, x) : x;
    mx = have_finite ? std::max(mx, x) : x;
    have_finite = true;
  }
  if (!have_finite) return "(no finite samples)";
  std::string out;
  for (const double x : cols) {
    if (!std::isfinite(x)) {
      out += '?';
      continue;
    }
    const double t = mx > mn ? (x - mn) / (mx - mn) : 0.5;
    const int level = std::clamp(static_cast<int>(t * 7.0 + 0.5), 0, 7);
    out += kLevels[level];
  }
  return out;
}

void print_timeline_row(const char* label, const std::vector<double>& v, const char* unit) {
  if (v.size() < 3) {
    // One or two samples have no meaningful thirds; print them verbatim.
    std::string vals;
    for (const double x : v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%s%.1f", vals.empty() ? "" : ", ", x);
      vals += buf;
    }
    std::printf("  %-14s %s %s (too few samples for a trend)\n", label,
                v.empty() ? "(no samples)" : vals.c_str(), v.empty() ? "" : unit);
    return;
  }
  const std::size_t n = v.size();
  const double first = mean_over(v, 0, n / 3);
  const double last = mean_over(v, 2 * n / 3, n);
  std::printf("  %-14s %s\n", label, sparkline(v).c_str());
  if (first != 0.0 && std::isfinite(first) && std::isfinite(last)) {
    std::printf("  %-14s first⅓ %.1f %s, last⅓ %.1f %s (%+.1f%%)\n", "", first, unit, last,
                unit, 100.0 * (last - first) / first);
  } else {
    // A zero or non-finite first third makes the relative change meaningless.
    std::printf("  %-14s first⅓ %.1f %s, last⅓ %.1f %s (change n/a)\n", "", first, unit, last,
                unit);
  }
}

struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0;
  std::vector<std::pair<double, std::uint64_t>> buckets;  ///< (le, cumulative)
};

/// Quantile from cumulative buckets with linear interpolation inside the
/// containing bucket (clamped to the observed min/max).
double bucket_quantile(const HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  const double rank = q * static_cast<double>(h.count);
  double lower = h.min;
  std::uint64_t prev_cum = 0;
  for (const auto& [le, cum] : h.buckets) {
    if (static_cast<double>(cum) >= rank) {
      const auto in_bucket = static_cast<double>(cum - prev_cum);
      const double frac = in_bucket > 0 ? (rank - static_cast<double>(prev_cum)) / in_bucket : 1.0;
      return std::clamp(lower + frac * (le - lower), h.min, h.max);
    }
    prev_cum = cum;
    lower = le;
  }
  return h.max;
}

double bucket_attainment(const HistogramData& h, double slo) {
  if (h.count == 0) return 1.0;
  std::uint64_t prev_cum = 0;
  double lower = h.min;
  for (const auto& [le, cum] : h.buckets) {
    if (le >= slo) {
      const auto in_bucket = static_cast<double>(cum - prev_cum);
      const double width = le - lower;
      const double frac = width > 0 ? std::clamp((slo - lower) / width, 0.0, 1.0) : 1.0;
      return (static_cast<double>(prev_cum) + frac * in_bucket) / static_cast<double>(h.count);
    }
    prev_cum = cum;
    lower = le;
  }
  return 1.0;
}

int fail_input(const std::string& what) {
  std::fprintf(stderr, "report: %s\n", what.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  double slo_s = 0.25;
  double slo_target = 0.99;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--slo" && i + 1 < argc) {
      slo_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--slo-target" && i + 1 < argc) {
      slo_target = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: report telemetry.json [--slo <seconds>] [--slo-target <0..1>]\n");
      return 0;
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "report: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: report telemetry.json [--slo <seconds>] [--slo-target <0..1>]\n");
    return 2;
  }
  if (slo_s <= 0 || slo_target <= 0 || slo_target >= 1) {
    return fail_input("--slo must be > 0 and --slo-target in (0, 1)");
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return fail_input("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();  // Parser keeps a view; must outlive it
  jsonmini::Parser parser{text};
  const auto doc = parser.parse();
  if (!doc) return fail_input("malformed JSON in " + path + ": " + parser.error());
  if (doc->str_or("schema", "") != "servescope-telemetry-v1") {
    return fail_input(path + " is not a servescope-telemetry-v1 file");
  }

  std::printf("=== servescope run report: %s ===\n", path.c_str());
  if (const Value* ctx = doc->find("context"); ctx != nullptr && ctx->is_object()) {
    for (const auto& [k, v] : ctx->object) {
      if (v.is_string()) std::printf("  %-12s %s\n", k.c_str(), v.str.c_str());
    }
  }

  // --- timeline ------------------------------------------------------------
  const Value* series = doc->find("series");
  if (series != nullptr && series->is_object()) {
    const double period_s = series->num_or("period_s", 0.0);
    std::vector<SeriesData> data;
    if (const Value* points = series->find("points"); points != nullptr && points->is_array()) {
      for (const Value& p : points->array) {
        SeriesData s;
        s.name = p.str_or("name", "");
        if (const Value* labels = p.find("labels")) s.labels = flatten_labels(*labels);
        if (const Value* samples = p.find("samples"); samples != nullptr && samples->is_array()) {
          for (const Value& x : samples->array) s.samples.push_back(x.number);
        }
        data.push_back(std::move(s));
      }
    }
    std::printf("\nTimeline (%zu series, %.0f ms cadence):\n", data.size(), period_s * 1e3);
    print_timeline_row("tput img/s", differenced(summed(data, "serving_requests_completed_total"),
                                                 period_s), "img/s");
    print_timeline_row("queue depth", summed(data, "serving_queue_depth"), "reqs");
    print_timeline_row("evictions/s", differenced(summed(data, "gpu_staging_evictions_total"),
                                                  period_s), "ev/s");
  } else {
    std::printf("\nTimeline: no recorded series (run the bench with --record)\n");
  }

  // --- stage breakdown + SLO from instruments ------------------------------
  const Value* instruments = doc->find("instruments");
  std::vector<std::pair<std::string, double>> stages;
  HistogramData latency;
  bool have_latency = false;
  if (instruments != nullptr && instruments->is_array()) {
    for (const Value& ins : instruments->array) {
      const std::string name = ins.str_or("name", "");
      if (name == "serving_stage_seconds_total") {
        std::string stage = "?";
        if (const Value* labels = ins.find("labels")) stage = labels->str_or("stage", "?");
        stages.emplace_back(stage, ins.num_or("value", 0.0));
      } else if (name == "serving_request_latency_seconds") {
        have_latency = true;
        latency.count = static_cast<std::uint64_t>(ins.num_or("count", 0.0));
        latency.sum = ins.num_or("sum", 0.0);
        latency.min = ins.num_or("min", 0.0);
        latency.max = ins.num_or("max", 0.0);
        if (const Value* buckets = ins.find("buckets");
            buckets != nullptr && buckets->is_array()) {
          for (const Value& b : buckets->array) {
            latency.buckets.emplace_back(b.num_or("le", 0.0),
                                         static_cast<std::uint64_t>(b.num_or("count", 0.0)));
          }
        }
      }
    }
  }

  if (!stages.empty()) {
    double total = 0.0;
    for (const auto& [_, v] : stages) total += v;
    std::printf("\nPer-stage time (cumulative request-seconds):\n");
    std::printf("  %-12s %14s %8s\n", "stage", "seconds", "share");
    for (const auto& [stage, v] : stages) {
      std::printf("  %-12s %14.2f %7.1f%%\n", stage.c_str(), v,
                  total > 0 ? 100.0 * v / total : 0.0);
    }
  }

  if (have_latency && latency.count == 0) {
    // An export from a run that completed nothing (e.g. a total-outage fault
    // window) still has the histogram registered; the quantile contract says
    // every quantile of an empty histogram is exactly 0, which would render
    // as a perfect SLO. Say what actually happened instead.
    std::printf("\nLatency SLO: no completed requests recorded\n");
  }
  if (have_latency && latency.count > 0) {
    const double attainment = bucket_attainment(latency, slo_s);
    const double burn = (1.0 - attainment) / (1.0 - slo_target);
    std::printf("\nLatency SLO (objective %.0f ms at %.2f%% target):\n", slo_s * 1e3,
                100.0 * slo_target);
    std::printf("  p50 %.1f ms   p95 %.1f ms   p99 %.1f ms   p99.9 %.1f ms   (n=%llu)\n",
                bucket_quantile(latency, 0.50) * 1e3, bucket_quantile(latency, 0.95) * 1e3,
                bucket_quantile(latency, 0.99) * 1e3, bucket_quantile(latency, 0.999) * 1e3,
                static_cast<unsigned long long>(latency.count));
    std::printf("  attainment %.2f%%   error-budget burn rate %.1fx%s\n", 100.0 * attainment,
                burn, burn > 1.0 ? "  (burning faster than budget)" : "");
  }

  // --- alerts (obs::AlertEngine counters) -----------------------------------
  struct AlertRow {
    double fired = 0.0, resolved = 0.0;
  };
  std::vector<std::pair<std::string, AlertRow>> alerts;
  auto alert_row = [&alerts](const std::string& name) -> AlertRow& {
    for (auto& [n, row] : alerts) {
      if (n == name) return row;
    }
    alerts.emplace_back(name, AlertRow{});
    return alerts.back().second;
  };
  if (instruments != nullptr && instruments->is_array()) {
    for (const Value& ins : instruments->array) {
      const std::string name = ins.str_or("name", "");
      if (name != "obs_alerts_fired_total" && name != "obs_alerts_resolved_total") continue;
      std::string alert = "?";
      if (const Value* labels = ins.find("labels")) alert = labels->str_or("alert", "?");
      AlertRow& row = alert_row(alert);
      (name == "obs_alerts_fired_total" ? row.fired : row.resolved) += ins.num_or("value", 0.0);
    }
  }
  if (!alerts.empty()) {
    bool any = false;
    for (const auto& [_, row] : alerts) any = any || row.fired > 0.0;
    std::printf("\nAlerts:%s\n", any ? "" : " all rules silent");
    for (const auto& [name, row] : alerts) {
      if (row.fired <= 0.0) continue;
      std::printf("  %-24s fired %.0f time(s), resolved %.0f time(s)%s\n", name.c_str(),
                  row.fired, row.resolved,
                  row.fired > row.resolved ? "  (still firing at end of run)" : "");
    }
  }

  // --- fleet health (per-node balancer instruments) -------------------------
  struct FleetNode {
    double score = -1.0, state = -1.0, dispatches = 0.0, ejections = 0.0, rejoins = 0.0;
  };
  std::vector<std::pair<std::string, FleetNode>> fleet;  // node label -> row
  auto fleet_row = [&fleet](const std::string& node) -> FleetNode& {
    for (auto& [n, row] : fleet) {
      if (n == node) return row;
    }
    fleet.emplace_back(node, FleetNode{});
    return fleet.back().second;
  };
  if (instruments != nullptr && instruments->is_array()) {
    for (const Value& ins : instruments->array) {
      const std::string name = ins.str_or("name", "");
      if (name.rfind("fleet_node_", 0) != 0) continue;
      std::string node = "?";
      if (const Value* labels = ins.find("labels")) node = labels->str_or("node", "?");
      FleetNode& row = fleet_row(node);
      const double v = ins.num_or("value", 0.0);
      if (name == "fleet_node_health_score") row.score = v;
      else if (name == "fleet_node_state") row.state = v;
      else if (name == "fleet_node_dispatches_total") row.dispatches = v;
      else if (name == "fleet_node_ejections_total") row.ejections = v;
      else if (name == "fleet_node_rejoins_total") row.rejoins = v;
    }
  }
  if (!fleet.empty()) {
    std::printf("\nFleet health (end-of-run balancer view):\n");
    std::printf("  %-6s %-10s %-12s %12s %10s %8s\n", "node", "state", "score", "dispatches",
                "ejections", "rejoins");
    for (const auto& [node, row] : fleet) {
      const char* state = row.state >= 1.0 ? "healthy" : row.state >= 0.5 ? "half-open"
                                                                          : "ejected";
      char bar[11];
      const int filled = std::clamp(static_cast<int>(row.score * 10.0 + 0.5), 0, 10);
      for (int i = 0; i < 10; ++i) bar[i] = i < filled ? '#' : '.';
      bar[10] = '\0';
      std::printf("  %-6s %-10s %s %12.0f %10.0f %8.0f\n", node.c_str(), state, bar,
                  row.dispatches, row.ejections, row.rejoins);
    }
  }

  // --- capacity (obs::CapacityPlane snapshot) -------------------------------
  if (const Value* cap = doc->find("capacity"); cap != nullptr && cap->is_object()) {
    const double period_s = cap->num_or("period_s", 0.0);
    struct CapResource {
      std::string label;
      double capacity = 1.0;
      std::vector<double> busy, queue;
    };
    std::vector<CapResource> res;
    if (const Value* rs = cap->find("resources"); rs != nullptr && rs->is_array()) {
      for (const Value& r : rs->array) {
        CapResource cr;
        cr.label = r.str_or("device", "?") + "." + r.str_or("engine", "?");
        cr.capacity = r.num_or("capacity", 1.0);
        if (const Value* b = r.find("busy_frac"); b != nullptr && b->is_array()) {
          for (const Value& x : b->array) cr.busy.push_back(x.number);
        }
        if (const Value* q = r.find("queue_mean"); q != nullptr && q->is_array()) {
          for (const Value& x : q->array) cr.queue.push_back(x.number);
        }
        res.push_back(std::move(cr));
      }
    }
    std::size_t intervals = 0;
    for (const auto& r : res) intervals = std::max(intervals, r.busy.size());
    std::printf("\nCapacity (%zu resources, %zu intervals of %.0f ms):\n", res.size(), intervals,
                period_s * 1e3);
    if (intervals == 0 || period_s <= 0.0) {
      // Zero-elapsed or empty-series exports (a run that never completed a
      // recorder interval) carry the section header but no data.
      std::printf("  (no capacity intervals recorded)\n");
    } else {
      std::printf("  %-24s %4s %7s %7s %8s  %s\n", "resource", "cap", "mean", "peak", "queue",
                  "utilization");
      for (const auto& r : res) {
        double sum = 0.0, peak = 0.0, qsum = 0.0;
        std::size_t n = 0;
        for (const double x : r.busy) {
          if (!std::isfinite(x)) continue;
          sum += x;
          peak = std::max(peak, x);
          ++n;
        }
        for (const double x : r.queue) {
          if (std::isfinite(x)) qsum += x;
        }
        if (n == 0) {
          std::printf("  %-24s %4.0f %7s %7s %8s  (no finite samples)\n", r.label.c_str(),
                      r.capacity, "n/a", "n/a", "n/a");
          continue;
        }
        const double qmean = r.queue.empty() ? 0.0 : qsum / static_cast<double>(r.queue.size());
        // The shared sparkline is min/max-normalized; an all-zero timeline
        // would render mid-scale, so call the idle resource idle instead.
        std::printf("  %-24s %4.0f %6.1f%% %6.1f%% %8.2f  %s%s\n", r.label.c_str(), r.capacity,
                    100.0 * sum / static_cast<double>(n), 100.0 * peak, qmean,
                    peak <= 0.0 ? "(idle)" : sparkline(r.busy, 32).c_str(),
                    peak >= 0.9 ? "  SATURATED" : "");
      }
      const double rps = cap->num_or("sustainable_rps", 0.0);
      std::printf("  binding resource: %s (stage '%s')", cap->str_or("binding", "?").c_str(),
                  cap->str_or("binding_stage", "?").c_str());
      if (rps > 0.0 && std::isfinite(rps)) {
        std::printf(", est. sustainable %.1f req/s\n", rps);
      } else {
        std::printf(", headroom n/a\n");
      }
      std::size_t violations = 0;
      if (const Value* v = cap->find("violation_intervals"); v != nullptr && v->is_array()) {
        violations = v->array.size();
      }
      std::size_t audited = 0;
      if (const Value* l = cap->find("little_l"); l != nullptr && l->is_array()) {
        audited = l->array.size();
      }
      if (violations == 0) {
        std::printf("  Little's-law audit: clean (%zu intervals)\n", audited);
      } else {
        std::printf("  Little's-law audit: %zu/%zu interval(s) deviated (backlog transients)\n",
                    violations, audited);
      }
    }
  }

  // --- shape checks ---------------------------------------------------------
  if (const Value* checks = doc->find("checks"); checks != nullptr && checks->is_array()) {
    std::size_t pass = 0;
    for (const Value& c : checks->array) {
      const Value* p = c.find("pass");
      if (p != nullptr && p->boolean) ++pass;
    }
    std::printf("\nShape checks: %zu/%zu passed\n", pass, checks->array.size());
    for (const Value& c : checks->array) {
      const Value* p = c.find("pass");
      std::printf("  [%s] %s\n", (p != nullptr && p->boolean) ? "PASS" : "DEVIATION",
                  c.str_or("claim", "?").c_str());
    }
  }
  return 0;
}
