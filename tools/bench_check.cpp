// Compares two google-benchmark JSON outputs and fails on large regressions.
//
//   bench_check baseline.json current.json [--tolerance 0.30]
//
// A benchmark regresses when its current real_time exceeds the baseline by
// more than `tolerance` (fractional; default 30%). The tolerance is
// deliberately generous: CI machines are noisy and shared, so the gate is
// meant to catch order-of-magnitude mistakes (an accidentally disabled fast
// path), not a few percent of jitter. Benchmarks present on only one side
// are warned about but never fail the check.
//
// The parser below handles exactly the subset of JSON that google-benchmark
// emits (objects/arrays/strings/numbers/bools, no escapes beyond \" \\ \/
// \n \t), which keeps this tool dependency-free.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Bench {
  double real_time = 0.0;
  std::string time_unit = "ns";
};

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

/// Minimal recursive-descent scanner over the benchmark JSON. We only need
/// the objects inside the top-level "benchmarks" array, and within each the
/// "name", "real_time", and "time_unit" fields.
class Scanner {
 public:
  explicit Scanner(std::string text) : text_(std::move(text)) {}

  [[nodiscard]] std::map<std::string, Bench> benchmarks() {
    std::map<std::string, Bench> out;
    const std::size_t key = text_.find("\"benchmarks\"");
    if (key == std::string::npos) return out;
    pos_ = text_.find('[', key);
    if (pos_ == std::string::npos) return out;
    ++pos_;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] == ']') break;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] != '{') break;
      auto entry = parse_object();
      if (entry) out[entry->first] = entry->second;
    }
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      s.push_back(text_[pos_++]);
    }
    if (pos_ < text_.size()) ++pos_;  // closing quote
    return s;
  }

  /// Consumes one value of any type; returns its raw text (sans containers'
  /// contents — nested objects/arrays are skipped with depth counting).
  std::string parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    if (c == '"') return parse_string().value_or("");
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = (c == '{') ? '}' : ']';
      int depth = 0;
      std::string raw;
      bool in_str = false;
      while (pos_ < text_.size()) {
        const char ch = text_[pos_++];
        raw.push_back(ch);
        if (in_str) {
          if (ch == '\\' && pos_ < text_.size()) raw.push_back(text_[pos_++]);
          else if (ch == '"') in_str = false;
        } else if (ch == '"') {
          in_str = true;
        } else if (ch == open) {
          ++depth;
        } else if (ch == close) {
          if (--depth == 0) break;
        }
      }
      return raw;
    }
    std::string raw;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      raw.push_back(text_[pos_++]);
    }
    return raw;
  }

  std::optional<std::pair<std::string, Bench>> parse_object() {
    ++pos_;  // consume '{'
    std::string name;
    Bench b;
    bool have_time = false;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size()) return std::nullopt;
      if (text_[pos_] == '}') { ++pos_; break; }
      if (text_[pos_] == ',') { ++pos_; continue; }
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ':') ++pos_;
      const std::string value = parse_value();
      if (*key == "name") {
        name = value;
      } else if (*key == "real_time") {
        b.real_time = std::strtod(value.c_str(), nullptr);
        have_time = true;
      } else if (*key == "time_unit") {
        b.time_unit = value;
      }
    }
    if (name.empty() || !have_time) return std::nullopt;
    // Skip aggregate rows (mean/median/stddev) if repetitions were used.
    if (name.find("_mean") != std::string::npos ||
        name.find("_median") != std::string::npos ||
        name.find("_stddev") != std::string::npos ||
        name.find("_cv") != std::string::npos) {
      return std::nullopt;
    }
    return std::make_pair(name, b);
  }

  std::string text_;
  std::size_t pos_ = 0;
};

std::optional<std::map<std::string, Bench>> load(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return Scanner{ss.str()}.benchmarks();
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.30;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: bench_check baseline.json current.json [--tolerance 0.30]\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "usage: bench_check baseline.json current.json [--tolerance 0.30]\n");
    return 2;
  }
  const auto baseline = load(files[0]);
  const auto current = load(files[1]);
  if (!baseline) { std::fprintf(stderr, "bench_check: cannot read %s\n", files[0]); return 2; }
  if (!current) { std::fprintf(stderr, "bench_check: cannot read %s\n", files[1]); return 2; }
  if (baseline->empty()) { std::fprintf(stderr, "bench_check: no benchmarks in %s\n", files[0]); return 2; }
  if (current->empty()) { std::fprintf(stderr, "bench_check: no benchmarks in %s\n", files[1]); return 2; }

  int regressions = 0;
  std::printf("%-44s %12s %12s %8s\n", "benchmark", "baseline", "current", "delta");
  for (const auto& [name, base] : *baseline) {
    const auto it = current->find(name);
    if (it == current->end()) {
      std::printf("%-44s %12s %12s %8s  WARN: missing from current run\n",
                  name.c_str(), "-", "-", "-");
      continue;
    }
    const double base_ns = base.real_time * unit_to_ns(base.time_unit);
    const double cur_ns = it->second.real_time * unit_to_ns(it->second.time_unit);
    if (base_ns <= 0.0) continue;
    const double delta = cur_ns / base_ns - 1.0;
    const bool bad = delta > tolerance;
    std::printf("%-44s %10.0fns %10.0fns %+7.1f%%%s\n", name.c_str(), base_ns, cur_ns,
                delta * 100.0, bad ? "  REGRESSION" : "");
    if (bad) ++regressions;
  }
  for (const auto& [name, cur] : *current) {
    (void)cur;
    if (baseline->find(name) == baseline->end()) {
      std::printf("%-44s %12s %12s %8s  WARN: new benchmark (no baseline)\n",
                  name.c_str(), "-", "-", "-");
    }
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench_check: %d benchmark(s) regressed by more than %.0f%%\n",
                 regressions, tolerance * 100.0);
    return 1;
  }
  std::printf("bench_check: OK (tolerance %.0f%%)\n", tolerance * 100.0);
  return 0;
}
