// Compares two google-benchmark JSON outputs and fails on large regressions.
//
//   bench_check baseline.json current.json [--tolerance 0.30]
//
// A benchmark regresses when its current real_time exceeds the baseline by
// more than `tolerance` (fractional; default 30%). The tolerance is
// deliberately generous: CI machines are noisy and shared, so the gate is
// meant to catch order-of-magnitude mistakes (an accidentally disabled fast
// path), not a few percent of jitter. Benchmarks present on only one side
// are warned about but never fail the check.
//
// The parser below handles exactly the subset of JSON that google-benchmark
// emits (objects/arrays/strings/numbers/bools, no escapes beyond \" \\ \/
// \n \t), which keeps this tool dependency-free.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Bench {
  double real_time = 0.0;
  std::string time_unit = "ns";
};

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

/// Minimal recursive-descent scanner over the benchmark JSON. We only need
/// the objects inside the top-level "benchmarks" array, and within each the
/// "name", "real_time", and "time_unit" fields.
class Scanner {
 public:
  explicit Scanner(std::string text) : text_(std::move(text)) {}

  [[nodiscard]] std::map<std::string, Bench> benchmarks() {
    std::map<std::string, Bench> out;
    const std::size_t key = text_.find("\"benchmarks\"");
    if (key == std::string::npos) return out;
    pos_ = text_.find('[', key);
    if (pos_ == std::string::npos) return out;
    ++pos_;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] == ']') break;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] != '{') break;
      auto entry = parse_object();
      if (entry) out[entry->first] = entry->second;
    }
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      s.push_back(text_[pos_++]);
    }
    if (pos_ < text_.size()) ++pos_;  // closing quote
    return s;
  }

  /// Consumes one value of any type; returns its raw text (sans containers'
  /// contents — nested objects/arrays are skipped with depth counting).
  std::string parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    if (c == '"') return parse_string().value_or("");
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = (c == '{') ? '}' : ']';
      int depth = 0;
      std::string raw;
      bool in_str = false;
      while (pos_ < text_.size()) {
        const char ch = text_[pos_++];
        raw.push_back(ch);
        if (in_str) {
          if (ch == '\\' && pos_ < text_.size()) raw.push_back(text_[pos_++]);
          else if (ch == '"') in_str = false;
        } else if (ch == '"') {
          in_str = true;
        } else if (ch == open) {
          ++depth;
        } else if (ch == close) {
          if (--depth == 0) break;
        }
      }
      return raw;
    }
    std::string raw;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      raw.push_back(text_[pos_++]);
    }
    return raw;
  }

  std::optional<std::pair<std::string, Bench>> parse_object() {
    ++pos_;  // consume '{'
    std::string name;
    Bench b;
    bool have_time = false;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size()) return std::nullopt;
      if (text_[pos_] == '}') { ++pos_; break; }
      if (text_[pos_] == ',') { ++pos_; continue; }
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ':') ++pos_;
      const std::string value = parse_value();
      if (*key == "name") {
        name = value;
      } else if (*key == "real_time") {
        b.real_time = std::strtod(value.c_str(), nullptr);
        have_time = true;
      } else if (*key == "time_unit") {
        b.time_unit = value;
      }
    }
    if (name.empty() || !have_time) return std::nullopt;
    // Skip aggregate rows (mean/median/stddev) if repetitions were used.
    if (name.find("_mean") != std::string::npos ||
        name.find("_median") != std::string::npos ||
        name.find("_stddev") != std::string::npos ||
        name.find("_cv") != std::string::npos) {
      return std::nullopt;
    }
    return std::make_pair(name, b);
  }

  std::string text_;
  std::size_t pos_ = 0;
};

struct LoadedFile {
  std::map<std::string, Bench> benchmarks;
  std::string build_type;  ///< "release"/"debug" from the context; "" if absent
};

/// Pulls the build type out of the context header. "build_type" is the
/// app-level marker (Reporter exports set it; our google-benchmark mains
/// inject it via AddCustomContext) and wins over google-benchmark's
/// "library_build_type", which reflects how the *system benchmark library*
/// was compiled, not the code under test. Only the text before the
/// "benchmarks" array is searched so benchmark names can never alias the key.
std::string build_type_of(const std::string& text) {
  const std::size_t bench = text.find("\"benchmarks\"");
  const std::string head =
      text.substr(0, bench == std::string::npos ? text.size() : bench);
  for (const char* key : {"\"build_type\"", "\"library_build_type\""}) {
    std::size_t p = head.find(key);
    if (p == std::string::npos) continue;
    p = head.find(':', p);
    if (p == std::string::npos) continue;
    const std::size_t q1 = head.find('"', p);
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = head.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    return head.substr(q1 + 1, q2 - q1 - 1);
  }
  return {};
}

std::optional<LoadedFile> load(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  LoadedFile f;
  f.build_type = build_type_of(ss.str());
  f.benchmarks = Scanner{ss.str()}.benchmarks();
  return f;
}

/// Debug-build numbers in either file make the comparison meaningless (a
/// debug baseline hides every regression; a debug candidate fails falsely).
/// Returns false when `role` should fail the check.
bool check_build_type(const char* role, const char* path, const std::string& bt,
                      bool allow_debug) {
  if (bt.empty()) {
    std::fprintf(stderr,
                 "bench_check: WARN: %s %s has no build-type context; re-record it "
                 "with a current Release build\n",
                 role, path);
    return true;
  }
  if (bt != "release" && !allow_debug) {
    std::fprintf(stderr,
                 "bench_check: %s %s was recorded from a '%s' build; benchmark "
                 "gating requires Release numbers (pass --allow-debug to override)\n",
                 role, path, bt.c_str());
    return false;
  }
  if (bt != "release") {
    std::fprintf(stderr, "bench_check: WARN: %s %s is a '%s' build (allowed by flag)\n",
                 role, path, bt.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.30;
  bool allow_debug = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--allow-debug") {
      allow_debug = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_check baseline.json current.json [--tolerance 0.30] "
          "[--allow-debug]\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_check baseline.json current.json [--tolerance 0.30] "
                 "[--allow-debug]\n");
    return 2;
  }
  const auto loaded_base = load(files[0]);
  const auto loaded_cur = load(files[1]);
  if (!loaded_base) { std::fprintf(stderr, "bench_check: cannot read %s\n", files[0]); return 2; }
  if (!loaded_cur) { std::fprintf(stderr, "bench_check: cannot read %s\n", files[1]); return 2; }
  const auto* baseline = &loaded_base->benchmarks;
  const auto* current = &loaded_cur->benchmarks;
  if (baseline->empty()) { std::fprintf(stderr, "bench_check: no benchmarks in %s\n", files[0]); return 2; }
  if (current->empty()) { std::fprintf(stderr, "bench_check: no benchmarks in %s\n", files[1]); return 2; }

  bool builds_ok = true;
  builds_ok &= check_build_type("baseline", files[0], loaded_base->build_type, allow_debug);
  builds_ok &= check_build_type("candidate", files[1], loaded_cur->build_type, allow_debug);
  if (!builds_ok) return 1;

  int regressions = 0;
  std::printf("%-44s %12s %12s %8s\n", "benchmark", "baseline", "current", "delta");
  for (const auto& [name, base] : *baseline) {
    const auto it = current->find(name);
    if (it == current->end()) {
      std::printf("%-44s %12s %12s %8s  WARN: missing from current run\n",
                  name.c_str(), "-", "-", "-");
      continue;
    }
    const double base_ns = base.real_time * unit_to_ns(base.time_unit);
    const double cur_ns = it->second.real_time * unit_to_ns(it->second.time_unit);
    if (base_ns <= 0.0) continue;
    const double delta = cur_ns / base_ns - 1.0;
    const bool bad = delta > tolerance;
    std::printf("%-44s %10.0fns %10.0fns %+7.1f%%%s\n", name.c_str(), base_ns, cur_ns,
                delta * 100.0, bad ? "  REGRESSION" : "");
    if (bad) ++regressions;
  }
  for (const auto& [name, cur] : *current) {
    (void)cur;
    if (baseline->find(name) == baseline->end()) {
      std::printf("%-44s %12s %12s %8s  WARN: new benchmark (no baseline)\n",
                  name.c_str(), "-", "-", "-");
    }
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench_check: %d benchmark(s) regressed by more than %.0f%%\n",
                 regressions, tolerance * 100.0);
    return 1;
  }
  std::printf("bench_check: OK (tolerance %.0f%%)\n", tolerance * 100.0);
  return 0;
}
