// Minimal recursive-descent JSON parser for the repo's own tooling.
//
// Parses the full JSON grammar (objects, arrays, strings with the common
// escapes, numbers, booleans, null) into a plain value tree; object key
// order is preserved. No external dependencies — this is what lets the
// tools/ binaries read servescope-telemetry-v1 files without a JSON library
// in the container. Not a validator of everything (e.g. \uXXXX escapes are
// passed through verbatim), but strict enough to reject malformed input
// with a useful message.
#pragma once

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jsonmini {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Convenience accessors with defaults.
  [[nodiscard]] double num_or(std::string_view key, double dflt) const noexcept {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->number : dflt;
  }
  [[nodiscard]] std::string str_or(std::string_view key, std::string dflt) const {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? v->str : dflt;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Parses one JSON document; std::nullopt on malformed input (error() then
  /// describes the failure and its byte offset).
  std::optional<Value> parse() {
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      return std::nullopt;
    }
    return v;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  void fail(const std::string& what) {
    if (error_.empty()) error_ = what + " at byte " + std::to_string(pos_);
  }

  bool expect(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    fail(std::string("expected '") + c + "'");
    return false;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case '"': case '\\': case '/': out.push_back(esc); break;
          case 'u':  // passed through verbatim; the tools never need it
            out.push_back('\\');
            out.push_back('u');
            break;
          default:
            fail("bad escape");
            return false;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = Value::Type::kString;
      return parse_string(out.str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = Value::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = Value::Type::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.type = Value::Type::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double num = std::strtod(begin, &end);
    if (end == begin) {
      fail("expected a JSON value");
      return false;
    }
    out.type = Value::Type::kNumber;
    out.number = num;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    if (!expect('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value item;
      if (!parse_value(item)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    if (!expect('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      Value item;
      if (!parse_value(item)) return false;
      out.object.emplace_back(std::move(key), std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace jsonmini
