// Differential run attribution for servescope-telemetry-v1 exports.
//
// bench_check diffs raw benchmark rates; this tool explains *why* two runs
// differ. It aligns two telemetry exports (same-seed baseline vs candidate,
// or fault-free vs faulted), computes the throughput and p99 deltas, and
// attributes the latency shift to per-stage breakdown changes: each
// serving_stage_seconds_total{stage=...} counter divided by completed
// requests gives per-request seconds in that stage, and the stage whose
// per-request cost moved the most is the attribution. Alert counters
// (obs_alerts_fired_total) are diffed alongside so a regression report names
// the alerts that fired in one run but not the other.
//
// The regression gate is one-sided (it is a *regression* gate): a p99
// increase, a throughput decrease, or a per-stage per-request increase
// larger than `tolerance` (relative; stages are normalized by the baseline's
// total per-request seconds so microscopic stages cannot trip it) exits 1.
// Two identical exports always exit 0.
//
// Exit codes: 0 within tolerance, 1 regression above tolerance, 2 malformed
// input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "json_mini.h"

namespace {

struct Options {
  std::string base_path;
  std::string cand_path;
  double tolerance = 0.05;
};

[[noreturn]] void usage_and_exit() {
  std::cerr << "usage: diff_report <base.json> <candidate.json> [--tolerance <frac>]\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      o.tolerance = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "diff_report: unknown flag '" << arg << "'\n";
      usage_and_exit();
    } else if (o.base_path.empty()) {
      o.base_path = arg;
    } else if (o.cand_path.empty()) {
      o.cand_path = arg;
    } else {
      usage_and_exit();
    }
  }
  if (o.base_path.empty() || o.cand_path.empty()) usage_and_exit();
  return o;
}

jsonmini::Value load_telemetry(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "diff_report: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  jsonmini::Parser parser(text);
  auto parsed = parser.parse();
  if (!parsed || !parsed->is_object()) {
    std::cerr << "diff_report: '" << path << "' is not valid JSON\n";
    std::exit(2);
  }
  if (parsed->str_or("schema", "") != "servescope-telemetry-v1") {
    std::cerr << "diff_report: '" << path << "' is not a servescope-telemetry-v1 export\n";
    std::exit(2);
  }
  return std::move(*parsed);
}

/// One run's digested view of the export.
struct RunView {
  double completed = 0.0;
  double p99_s = 0.0;  ///< from the latency histogram buckets; 0 when absent
  bool have_p99 = false;
  std::map<std::string, double> stage_per_req_s;       ///< stage -> seconds/request
  std::map<std::string, double> alerts_fired;          ///< alert name -> fire count
  std::map<std::string, double> throughput;            ///< benchmark -> tput extra
};

/// p99 from the export's cumulative (`le`, count) buckets, interpolating
/// within the straddling bucket (mirrors metrics::Histogram::quantile).
double bucket_quantile(const jsonmini::Value& ins, double q) {
  const double total = ins.num_or("count", 0.0);
  if (total <= 0.0) return 0.0;
  const jsonmini::Value* buckets = ins.find("buckets");
  if (buckets == nullptr || !buckets->is_array()) return 0.0;
  const double target = total * q;
  double lower = 0.0;
  double prev_cum = 0.0;
  for (const auto& b : buckets->array) {
    const double le = b.num_or("le", 0.0);
    const double cum = b.num_or("count", 0.0);
    if (cum >= target) {
      const double in_bucket = cum - prev_cum;
      const double frac = in_bucket > 0.0 ? (target - prev_cum) / in_bucket : 1.0;
      return lower + (le - lower) * std::clamp(frac, 0.0, 1.0);
    }
    lower = le;
    prev_cum = cum;
  }
  return lower;
}

RunView digest(const jsonmini::Value& doc, const std::string& path) {
  RunView view;
  const jsonmini::Value* instruments = doc.find("instruments");
  if (instruments == nullptr || !instruments->is_array()) {
    std::cerr << "diff_report: '" << path << "' has no instruments array\n";
    std::exit(2);
  }
  std::map<std::string, double> stage_total_s;
  for (const auto& ins : instruments->array) {
    const std::string name = ins.str_or("name", "");
    const jsonmini::Value* labels = ins.find("labels");
    if (name == "serving_requests_completed_total") {
      view.completed += ins.num_or("value", 0.0);
    } else if (name == "serving_request_latency_seconds") {
      view.p99_s = bucket_quantile(ins, 0.99);
      view.have_p99 = true;
    } else if (name == "serving_stage_seconds_total" && labels != nullptr) {
      const std::string stage = labels->str_or("stage", "");
      if (!stage.empty()) stage_total_s[stage] += ins.num_or("value", 0.0);
    } else if (name == "obs_alerts_fired_total" && labels != nullptr) {
      const std::string alert = labels->str_or("alert", "");
      if (!alert.empty()) view.alerts_fired[alert] += ins.num_or("value", 0.0);
    }
  }
  if (view.completed > 0.0) {
    for (const auto& [stage, total_s] : stage_total_s) {
      view.stage_per_req_s[stage] = total_s / view.completed;
    }
  }
  const jsonmini::Value* benches = doc.find("benchmarks");
  if (benches != nullptr && benches->is_array()) {
    for (const auto& b : benches->array) {
      const std::string name = b.str_or("name", "");
      if (name.empty() || !b.is_object()) continue;
      for (const auto& [k, v] : b.object) {
        // Any "tput_*" extra is a throughput; keyed by benchmark so sweeps
        // with several rows stay aligned row-by-row.
        if (k.rfind("tput", 0) == 0 && v.is_number()) {
          view.throughput[name + '/' + k] = v.number;
        }
      }
    }
  }
  return view;
}

double pct(double base, double cand) {
  return base != 0.0 ? 100.0 * (cand - base) / base : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const jsonmini::Value base_doc = load_telemetry(opt.base_path);
  const jsonmini::Value cand_doc = load_telemetry(opt.cand_path);
  const RunView base = digest(base_doc, opt.base_path);
  const RunView cand = digest(cand_doc, opt.cand_path);

  std::printf("diff_report: base=%s candidate=%s tolerance=%.1f%%\n", opt.base_path.c_str(),
              opt.cand_path.c_str(), 100.0 * opt.tolerance);

  std::vector<std::string> regressions;

  // Throughput rows shared by both exports; a decrease past tolerance trips.
  for (const auto& [key, base_v] : base.throughput) {
    const auto it = cand.throughput.find(key);
    if (it == cand.throughput.end()) continue;
    const double delta_pct = pct(base_v, it->second);
    std::printf("  throughput %-40s %12.2f -> %12.2f  (%+.2f%%)\n", key.c_str(), base_v,
                it->second, delta_pct);
    if (base_v > 0.0 && (base_v - it->second) / base_v > opt.tolerance) {
      char line[160];
      std::snprintf(line, sizeof line, "throughput %s %+.2f%%", key.c_str(), delta_pct);
      regressions.emplace_back(line);
    }
  }

  if (base.have_p99 && cand.have_p99) {
    const double delta_pct = pct(base.p99_s, cand.p99_s);
    std::printf("  p99 latency %38.2f -> %12.2f ms (%+.2f%%)\n", 1e3 * base.p99_s,
                1e3 * cand.p99_s, delta_pct);
    if (base.p99_s > 0.0 && (cand.p99_s - base.p99_s) / base.p99_s > opt.tolerance) {
      char line[96];
      std::snprintf(line, sizeof line, "p99 latency %+.2f%%", delta_pct);
      regressions.emplace_back(line);
    }
  }

  // Per-stage attribution: rank stages by the absolute shift in per-request
  // seconds; the top stage is where the p99/throughput delta lives.
  double base_total_per_req = 0.0;
  for (const auto& [stage, s] : base.stage_per_req_s) base_total_per_req += s;
  struct StageDelta {
    std::string stage;
    double base_s = 0.0;
    double cand_s = 0.0;
    double delta_s = 0.0;
  };
  std::vector<StageDelta> stage_deltas;
  double total_shift = 0.0;
  for (const auto& [stage, base_s] : base.stage_per_req_s) {
    const auto it = cand.stage_per_req_s.find(stage);
    const double cand_s = it != cand.stage_per_req_s.end() ? it->second : 0.0;
    stage_deltas.push_back({stage, base_s, cand_s, cand_s - base_s});
    total_shift += std::abs(cand_s - base_s);
  }
  for (const auto& [stage, cand_s] : cand.stage_per_req_s) {
    if (base.stage_per_req_s.count(stage) == 0) {
      stage_deltas.push_back({stage, 0.0, cand_s, cand_s});
      total_shift += std::abs(cand_s);
    }
  }
  std::sort(stage_deltas.begin(), stage_deltas.end(), [](const auto& a, const auto& b) {
    if (std::abs(a.delta_s) != std::abs(b.delta_s)) return std::abs(a.delta_s) > std::abs(b.delta_s);
    return a.stage < b.stage;  // deterministic tie-break
  });
  if (!stage_deltas.empty()) {
    std::printf("  per-stage per-request time (ms/req):\n");
    std::printf("    %-16s %10s %10s %10s %8s\n", "stage", "base", "cand", "delta", "share");
    for (const auto& d : stage_deltas) {
      const double share = total_shift > 0.0 ? 100.0 * std::abs(d.delta_s) / total_shift : 0.0;
      std::printf("    %-16s %10.3f %10.3f %+10.3f %7.1f%%\n", d.stage.c_str(), 1e3 * d.base_s,
                  1e3 * d.cand_s, 1e3 * d.delta_s, share);
      // Gate on growth relative to the baseline's total per-request budget.
      if (base_total_per_req > 0.0 && d.delta_s / base_total_per_req > opt.tolerance) {
        char line[128];
        std::snprintf(line, sizeof line, "stage '%s' +%.3f ms/req", d.stage.c_str(),
                      1e3 * d.delta_s);
        regressions.emplace_back(line);
      }
    }
    // Attribution names the top *service* stage: queue growth is the symptom
    // of a bottleneck elsewhere, so it is reported but never blamed.
    const StageDelta* top = nullptr;
    for (const auto& d : stage_deltas) {
      if (d.stage != "queue") {
        top = &d;
        break;
      }
    }
    if (top != nullptr && std::abs(top->delta_s) > 0.0 && total_shift > 0.0) {
      std::printf("  attribution: shift driven by stage '%s' (%+.3f ms/req, %.1f%% of stage shift)\n",
                  top->stage.c_str(), 1e3 * top->delta_s,
                  100.0 * std::abs(top->delta_s) / total_shift);
      if (stage_deltas.front().stage == "queue" && stage_deltas.front().delta_s > 0.0) {
        std::printf("  (queueing grew %+.3f ms/req — the symptom of the bottleneck above)\n",
                    1e3 * stage_deltas.front().delta_s);
      }
    }
  }

  // Alert-count diffs (informational, never gated): name what fired.
  for (const auto& [alert, cand_n] : cand.alerts_fired) {
    const auto it = base.alerts_fired.find(alert);
    const double base_n = it != base.alerts_fired.end() ? it->second : 0.0;
    if (cand_n != base_n) {
      std::printf("  alerts: '%s' fired %.0f time(s) (base %.0f)\n", alert.c_str(), cand_n,
                  base_n);
    }
  }

  if (regressions.empty()) {
    std::printf("OK: candidate within %.1f%% of baseline\n", 100.0 * opt.tolerance);
    return 0;
  }
  for (const auto& r : regressions) std::printf("REGRESSION: %s\n", r.c_str());
  return 1;
}
