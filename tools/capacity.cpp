// Capacity explorer: renders the "capacity" section of a
// servescope-telemetry-v1 JSON export (a run with obs::CapacityPlane
// attached) as per-resource utilization timelines, binding-resource
// segments, and the headroom knee estimate.
//
//   capacity telemetry.json [--width <cols>] [--threshold <frac>]
//
// Sections:
//   - timelines: one unicode sparkline per modeled resource (busy fraction
//     per recorder interval) plus its time-average queue depth, sorted as
//     exported (registration order — deterministic);
//   - binding segments: the per-interval bottleneck attribution merged into
//     runs ("[0, 14) cpu.preproc_workers", "[14, 40) gpu0.compute", ...)
//     with each segment's share of recorded time;
//   - knee estimate: the plane's sustainable-rps headroom verdict next to
//     the peak observed demand, with the binding stage taxonomy verdict;
//   - Little's-law audit: deviating intervals (backlog transients), if any.
//
// Exit codes: 0 on success (including a file with no capacity section,
// which reports "n/a" — absence of data is not malformed input), 2 on
// unreadable/malformed/wrong-schema input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::Value;

double mean_over(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return 0.0;
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += v[i];
  return sum / static_cast<double>(hi - lo);
}

/// 8-level unicode sparkline on a FIXED [0, 1] scale (unlike tools/report's
/// min/max-normalized variant): busy fractions are already normalized, and a
/// shared scale is what makes two resources' lines visually comparable.
/// Non-finite samples render as '?'.
std::string utilization_sparkline(const std::vector<double>& v, std::size_t width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (v.empty()) return "(no samples)";
  std::vector<double> cols;
  const std::size_t n = v.size();
  if (n <= width) {
    cols = v;
  } else {
    cols.resize(width);
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t lo = c * n / width;
      const std::size_t hi = std::max(lo + 1, (c + 1) * n / width);
      cols[c] = mean_over(v, lo, hi);
    }
  }
  std::string out;
  for (const double x : cols) {
    if (!std::isfinite(x)) {
      out += '?';
      continue;
    }
    const double t = std::clamp(x, 0.0, 1.0);
    const int level = std::clamp(static_cast<int>(t * 7.0 + 0.5), 0, 7);
    out += kLevels[level];
  }
  return out;
}

int fail_input(const std::string& what) {
  std::fprintf(stderr, "capacity: %s\n", what.c_str());
  return 2;
}

struct CapResource {
  std::string label;
  double capacity = 1.0;
  std::vector<double> busy, queue;
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t width = 64;
  double threshold = 0.9;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--width" && i + 1 < argc) {
      width = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: capacity telemetry.json [--width <cols>] [--threshold <frac>]\n");
      return 0;
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "capacity: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: capacity telemetry.json [--width <cols>] [--threshold <frac>]\n");
    return 2;
  }
  if (width < 8 || threshold <= 0.0 || threshold > 1.0) {
    return fail_input("--width must be >= 8 and --threshold in (0, 1]");
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return fail_input("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();  // Parser keeps a view; must outlive it
  jsonmini::Parser parser{text};
  const auto doc = parser.parse();
  if (!doc) return fail_input("malformed JSON in " + path + ": " + parser.error());
  if (doc->str_or("schema", "") != "servescope-telemetry-v1") {
    return fail_input(path + " is not a servescope-telemetry-v1 file");
  }

  std::printf("=== servescope capacity: %s ===\n", path.c_str());
  const Value* cap = doc->find("capacity");
  if (cap == nullptr || !cap->is_object()) {
    std::printf("  no capacity section (attach an obs::CapacityPlane and re-export)\n");
    return 0;
  }

  const double period_s = cap->num_or("period_s", 0.0);
  std::vector<CapResource> res;
  if (const Value* rs = cap->find("resources"); rs != nullptr && rs->is_array()) {
    for (const Value& r : rs->array) {
      CapResource cr;
      cr.label = r.str_or("device", "?") + "." + r.str_or("engine", "?");
      cr.capacity = r.num_or("capacity", 1.0);
      if (const Value* b = r.find("busy_frac"); b != nullptr && b->is_array()) {
        for (const Value& x : b->array) cr.busy.push_back(x.number);
      }
      if (const Value* q = r.find("queue_mean"); q != nullptr && q->is_array()) {
        for (const Value& x : q->array) cr.queue.push_back(x.number);
      }
      res.push_back(std::move(cr));
    }
  }
  std::size_t intervals = 0;
  for (const auto& r : res) intervals = std::max(intervals, r.busy.size());
  if (intervals == 0 || period_s <= 0.0) {
    std::printf("  (no capacity intervals recorded)\n");
    return 0;
  }

  // --- per-resource timelines ------------------------------------------------
  std::printf("\nUtilization timelines (%zu intervals x %.0f ms, scale 0..100%%):\n", intervals,
              period_s * 1e3);
  for (const auto& r : res) {
    double sum = 0.0, peak = 0.0, qsum = 0.0;
    std::size_t n = 0;
    for (const double x : r.busy) {
      if (!std::isfinite(x)) continue;
      sum += x;
      peak = std::max(peak, x);
      ++n;
    }
    for (const double x : r.queue) {
      if (std::isfinite(x)) qsum += x;
    }
    const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
    const double qmean = r.queue.empty() ? 0.0 : qsum / static_cast<double>(r.queue.size());
    std::printf("  %-24s %s\n", r.label.c_str(), utilization_sparkline(r.busy, width).c_str());
    std::printf("  %-24s cap %.0f, mean %.1f%%, peak %.1f%%, queue %.2f%s\n", "", r.capacity,
                100.0 * mean, 100.0 * peak, qmean,
                peak >= threshold ? "  << SATURATED" : "");
  }

  // --- binding segments ------------------------------------------------------
  std::printf("\nBinding-resource segments:\n");
  bool any_segment = false;
  if (const Value* segs = cap->find("segments"); segs != nullptr && segs->is_array()) {
    for (const Value& s : segs->array) {
      const auto begin = static_cast<std::size_t>(s.num_or("begin", 0.0));
      const auto end = static_cast<std::size_t>(s.num_or("end", 0.0));
      if (end <= begin) continue;
      any_segment = true;
      const double share =
          intervals > 0 ? 100.0 * static_cast<double>(end - begin) / static_cast<double>(intervals)
                        : 0.0;
      std::printf("  [%4zu, %4zu)  %6.1fs..%6.1fs  %-24s %5.1f%% of run\n", begin, end,
                  static_cast<double>(begin) * period_s, static_cast<double>(end) * period_s,
                  s.str_or("resource", "?").c_str(), share);
    }
  }
  if (!any_segment) std::printf("  (none recorded)\n");

  // --- knee estimate ---------------------------------------------------------
  double peak_demand = 0.0;
  // Peak demand comes from the audit's λW ceiling proxy: the binding line is
  // the plane's verdict; the exported series gives the observed context.
  if (const Value* lw = cap->find("little_lambda_w"); lw != nullptr && lw->is_array()) {
    for (const Value& x : lw->array) {
      if (std::isfinite(x.number)) peak_demand = std::max(peak_demand, x.number);
    }
  }
  const double rps = cap->num_or("sustainable_rps", 0.0);
  std::printf("\nKnee estimate:\n");
  std::printf("  binding resource: %s (stage '%s')\n", cap->str_or("binding", "?").c_str(),
              cap->str_or("binding_stage", "?").c_str());
  if (rps > 0.0 && std::isfinite(rps)) {
    std::printf("  est. max sustainable rate: %.1f req/s\n", rps);
  } else {
    std::printf("  est. max sustainable rate: n/a (no loaded intervals)\n");
  }

  // --- Little's-law audit ----------------------------------------------------
  std::size_t audited = 0;
  if (const Value* l = cap->find("little_l"); l != nullptr && l->is_array()) {
    audited = l->array.size();
  }
  std::vector<std::size_t> violations;
  if (const Value* v = cap->find("violation_intervals"); v != nullptr && v->is_array()) {
    for (const Value& x : v->array) violations.push_back(static_cast<std::size_t>(x.number));
  }
  if (violations.empty()) {
    std::printf("\nLittle's-law audit: clean over %zu interval(s)\n", audited);
  } else {
    std::printf("\nLittle's-law audit: %zu/%zu interval(s) deviated at:", violations.size(),
                audited);
    for (const std::size_t i : violations) {
      std::printf(" %.1fs", static_cast<double>(i + 1) * period_s);
    }
    std::printf("\n  (L != lambda*W marks backlog growth/drain — fault or overload windows)\n");
  }
  return 0;
}
