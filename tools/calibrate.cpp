// Scratch calibration probe: prints the key paper targets vs simulated
// values so calibration constants can be tuned quickly.
#include <cstdio>

#include "core/experiment.h"
#include "core/face_pipeline.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using metrics::Stage;
using serving::PipelineMode;
using serving::PreprocDevice;

int main() {
  // --- Fig 6: zero-load breakdown ---
  for (auto [name, img] : {std::pair{"S", hw::kSmallImage}, {"M", hw::kMediumImage},
                           {"L", hw::kLargeImage}}) {
    for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
      ExperimentSpec spec;
      spec.server.model = models::vit_base();
      spec.server.preproc = dev;
      spec.image = img;
      spec.warmup = sim::seconds(0.5);
      auto r = core::run_zero_load(spec);
      std::printf("fig6 %s %s: lat=%.2fms preproc=%.1f%% inf=%.1f%% xfer=%.1f%% queue=%.1f%%\n",
                  name, dev == PreprocDevice::kCpu ? "cpu" : "gpu", r.mean_latency_s * 1e3,
                  100 * r.stage_share(Stage::kPreprocess), 100 * r.stage_share(Stage::kInference),
                  100 * r.stage_share(Stage::kTransfer), 100 * r.stage_share(Stage::kQueue));
    }
  }

  // --- Fig 5-ish: loaded throughput, ViT medium ---
  for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
    for (int c : {64, 256, 1024, 4096}) {
      ExperimentSpec spec;
      spec.server.model = models::vit_base();
      spec.server.preproc = dev;
      spec.concurrency = c;
      spec.measure = sim::seconds(8.0);
      auto r = core::run_experiment(spec);
      std::printf("fig5 %s c=%d: tput=%.0f lat=%.1fms q=%.0f%% batch=%.1f evict=%lu\n",
                  dev == PreprocDevice::kCpu ? "cpu" : "gpu", c, r.throughput_rps,
                  r.mean_latency_s * 1e3, 100 * r.stage_share(Stage::kQueue), r.mean_batch,
                  (unsigned long)r.gpu_evictions);
    }
  }

  // --- Fig 7: preproc-only / inference-only / e2e ---
  for (const auto* m : {&models::vit_base(), &models::resnet50(), &models::tiny_vit()}) {
    for (auto [name, img] : {std::pair{"S", hw::kSmallImage}, {"M", hw::kMediumImage},
                             {"L", hw::kLargeImage}}) {
      double tput[3];
      int i = 0;
      for (auto mode : {PipelineMode::kPreprocessOnly, PipelineMode::kInferenceOnly,
                        PipelineMode::kEndToEnd}) {
        ExperimentSpec spec;
        spec.server.model = *m;
        spec.server.preproc = PreprocDevice::kGpu;
        spec.server.mode = mode;
        spec.image = img;
        spec.concurrency = 512;
        spec.measure = sim::seconds(6.0);
        tput[i++] = core::run_experiment(spec).throughput_rps;
      }
      std::printf("fig7 %s %s: pre=%.0f inf=%.0f e2e=%.0f (e2e/inf=%.1f%%)\n", m->name.data(),
                  name, tput[0], tput[1], tput[2], 100 * tput[2] / tput[1]);
    }
  }

  // --- Fig 9: multi-GPU ---
  for (auto [name, img] : {std::pair{"M", hw::kMediumImage}, {"L", hw::kLargeImage}}) {
    for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
      std::printf("fig9 %s %s:", name, dev == PreprocDevice::kCpu ? "cpu" : "gpu");
      for (int g = 1; g <= 4; ++g) {
        ExperimentSpec spec;
        spec.server.model = models::vit_base();
        spec.server.preproc = dev;
        spec.image = img;
        spec.gpu_count = g;
        spec.concurrency = 1024;
        spec.measure = sim::seconds(6.0);
        auto r = core::run_experiment(spec);
        std::printf(" %d:%.0f", g, r.throughput_rps);
      }
      std::printf("\n");
    }
  }
  // --- Fig 11: brokers ---
  for (int f : {1, 3, 5, 9, 15, 25}) {
    std::printf("fig11 f=%d:", f);
    for (auto k : {core::BrokerKind::kKafka, core::BrokerKind::kRedis, core::BrokerKind::kFused}) {
      core::FacePipelineSpec spec;
      spec.broker = k;
      spec.faces_per_frame = f;
      spec.concurrency = 16;
      auto r = core::run_face_pipeline(spec);
      std::printf(" %s tput=%.1f", core::broker_kind_name(k).data(), r.frames_per_s);
    }
    std::printf("\n");
  }
  for (auto k : {core::BrokerKind::kKafka, core::BrokerKind::kRedis, core::BrokerKind::kFused}) {
    core::FacePipelineSpec spec;
    spec.broker = k;
    spec.faces_per_frame = 25;
    spec.concurrency = 1;  // zero load
    spec.measure = sim::seconds(30.0);
    auto r = core::run_face_pipeline(spec);
    std::printf("fig11 zeroload %s: lat=%.1fms broker=%.1f%% inf=%.1f%% pre=%.1f%% q=%.1f%%\n",
                core::broker_kind_name(k).data(), r.mean_latency_s * 1e3, 100 * r.broker_share(),
                100 * r.breakdown.share(Stage::kInference),
                100 * r.breakdown.share(Stage::kPreprocess),
                100 * r.breakdown.share(Stage::kQueue));
  }
  return 0;
}
