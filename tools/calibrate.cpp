// Scratch calibration probe: prints the key paper targets vs simulated
// values so calibration constants can be tuned quickly.
//
// `calibrate --substrate` instead measures the real codec substrate on this
// machine (decode/resize/normalize MPix/s on the three paper size classes,
// plus BatchPreprocessor thread scaling) and prints suggested CpuCalib
// values. Run it after changing codec hot paths, then fold the measured
// rates into src/hw/calibration.h if the simulator should track this host.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "codec/batch_preprocess.h"
#include "core/experiment.h"
#include "core/face_pipeline.h"
#include "models/model_zoo.h"
#include "workload/corpus.h"

using namespace serve;
using core::ExperimentSpec;
using metrics::Stage;
using serving::PipelineMode;
using serving::PreprocDevice;

namespace {

int probe_substrate() {
  std::printf("substrate probe: real codec rates on this machine\n\n");
  double decode_sum = 0, resize_sum = 0, norm_sum = 0;
  int classes = 0;
  for (auto [name, img] : {std::pair{"S", hw::kSmallImage}, {"M", hw::kMediumImage},
                           {"L", hw::kLargeImage}}) {
    const int count = img == hw::kLargeImage ? 4 : 16;
    const auto corpus = workload::make_corpus(img, count, 7, 4);
    const double px = static_cast<double>(img.width) * img.height;
    workload::PreprocessTiming acc;
    // One warm-up pass, then average over the corpus.
    (void)workload::time_real_preprocess(corpus[0], 224);
    for (const auto& e : corpus) {
      const auto t = workload::time_real_preprocess(e, 224);
      acc.decode_s += t.decode_s;
      acc.resize_s += t.resize_s;
      acc.normalize_s += t.normalize_s;
    }
    const double n = static_cast<double>(corpus.size());
    const double decode = px * n / acc.decode_s / 1e6;
    const double resize = px * n / acc.resize_s / 1e6;
    // Normalize runs on the 224x224 output, not the source geometry.
    const double norm = 224.0 * 224.0 * n / acc.normalize_s / 1e6;
    std::printf("  %s %4dx%-4d decode=%7.1f MPix/s  resize=%7.1f MPix/s  normalize=%7.1f MPix/s\n",
                name, static_cast<int>(img.width), static_cast<int>(img.height), decode, resize,
                norm);
    decode_sum += decode;
    resize_sum += resize;
    norm_sum += norm;
    ++classes;
  }

  std::printf("\nBatchPreprocessor thread scaling (32 medium images):\n");
  const auto corpus = workload::make_corpus(hw::kMediumImage, 32, 11, 4);
  std::vector<std::vector<std::uint8_t>> jpegs;
  for (const auto& e : corpus) jpegs.push_back(e.jpeg);
  double t1 = 0;
  for (int threads : {1, 2, 4}) {
    codec::BatchPreprocessor pool{threads};
    (void)pool.run(jpegs, {});  // warm-up
    const auto start = std::chrono::steady_clock::now();
    (void)pool.run(jpegs, {});
    const double secs = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    if (threads == 1) t1 = secs;
    std::printf("  threads=%d  %6.1f img/s  speedup=%.2fx\n", threads,
                static_cast<double>(jpegs.size()) / secs, t1 / secs);
  }

  std::printf("\nsuggested CpuCalib (mean across size classes; see src/hw/calibration.h):\n");
  std::printf("  decode_mpix_per_s    = %.0fe6\n", decode_sum / classes);
  std::printf("  resize_mpix_per_s    = %.0fe6\n", resize_sum / classes);
  std::printf("  normalize_mpix_per_s = %.0fe6\n", norm_sum / classes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--substrate") == 0) return probe_substrate();
  // --- Fig 6: zero-load breakdown ---
  for (auto [name, img] : {std::pair{"S", hw::kSmallImage}, {"M", hw::kMediumImage},
                           {"L", hw::kLargeImage}}) {
    for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
      ExperimentSpec spec;
      spec.server.model = models::vit_base();
      spec.server.preproc = dev;
      spec.image = img;
      spec.warmup = sim::seconds(0.5);
      auto r = core::run_zero_load(spec);
      std::printf("fig6 %s %s: lat=%.2fms preproc=%.1f%% inf=%.1f%% xfer=%.1f%% queue=%.1f%%\n",
                  name, dev == PreprocDevice::kCpu ? "cpu" : "gpu", r.mean_latency_s * 1e3,
                  100 * r.stage_share(Stage::kPreprocess), 100 * r.stage_share(Stage::kInference),
                  100 * r.stage_share(Stage::kTransfer), 100 * r.stage_share(Stage::kQueue));
    }
  }

  // --- Fig 5-ish: loaded throughput, ViT medium ---
  for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
    for (int c : {64, 256, 1024, 4096}) {
      ExperimentSpec spec;
      spec.server.model = models::vit_base();
      spec.server.preproc = dev;
      spec.concurrency = c;
      spec.measure = sim::seconds(8.0);
      auto r = core::run_experiment(spec);
      std::printf("fig5 %s c=%d: tput=%.0f lat=%.1fms q=%.0f%% batch=%.1f evict=%lu\n",
                  dev == PreprocDevice::kCpu ? "cpu" : "gpu", c, r.throughput_rps,
                  r.mean_latency_s * 1e3, 100 * r.stage_share(Stage::kQueue), r.mean_batch,
                  (unsigned long)r.gpu_evictions);
    }
  }

  // --- Fig 7: preproc-only / inference-only / e2e ---
  for (const auto* m : {&models::vit_base(), &models::resnet50(), &models::tiny_vit()}) {
    for (auto [name, img] : {std::pair{"S", hw::kSmallImage}, {"M", hw::kMediumImage},
                             {"L", hw::kLargeImage}}) {
      double tput[3];
      int i = 0;
      for (auto mode : {PipelineMode::kPreprocessOnly, PipelineMode::kInferenceOnly,
                        PipelineMode::kEndToEnd}) {
        ExperimentSpec spec;
        spec.server.model = *m;
        spec.server.preproc = PreprocDevice::kGpu;
        spec.server.mode = mode;
        spec.image = img;
        spec.concurrency = 512;
        spec.measure = sim::seconds(6.0);
        tput[i++] = core::run_experiment(spec).throughput_rps;
      }
      std::printf("fig7 %s %s: pre=%.0f inf=%.0f e2e=%.0f (e2e/inf=%.1f%%)\n", m->name.data(),
                  name, tput[0], tput[1], tput[2], 100 * tput[2] / tput[1]);
    }
  }

  // --- Fig 9: multi-GPU ---
  for (auto [name, img] : {std::pair{"M", hw::kMediumImage}, {"L", hw::kLargeImage}}) {
    for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
      std::printf("fig9 %s %s:", name, dev == PreprocDevice::kCpu ? "cpu" : "gpu");
      for (int g = 1; g <= 4; ++g) {
        ExperimentSpec spec;
        spec.server.model = models::vit_base();
        spec.server.preproc = dev;
        spec.image = img;
        spec.gpu_count = g;
        spec.concurrency = 1024;
        spec.measure = sim::seconds(6.0);
        auto r = core::run_experiment(spec);
        std::printf(" %d:%.0f", g, r.throughput_rps);
      }
      std::printf("\n");
    }
  }
  // --- Fig 11: brokers ---
  for (int f : {1, 3, 5, 9, 15, 25}) {
    std::printf("fig11 f=%d:", f);
    for (auto k : {core::BrokerKind::kKafka, core::BrokerKind::kRedis, core::BrokerKind::kFused}) {
      core::FacePipelineSpec spec;
      spec.broker = k;
      spec.faces_per_frame = f;
      spec.concurrency = 16;
      auto r = core::run_face_pipeline(spec);
      std::printf(" %s tput=%.1f", core::broker_kind_name(k).data(), r.frames_per_s);
    }
    std::printf("\n");
  }
  for (auto k : {core::BrokerKind::kKafka, core::BrokerKind::kRedis, core::BrokerKind::kFused}) {
    core::FacePipelineSpec spec;
    spec.broker = k;
    spec.faces_per_frame = 25;
    spec.concurrency = 1;  // zero load
    spec.measure = sim::seconds(30.0);
    auto r = core::run_face_pipeline(spec);
    std::printf("fig11 zeroload %s: lat=%.1fms broker=%.1f%% inf=%.1f%% pre=%.1f%% q=%.1f%%\n",
                core::broker_kind_name(k).data(), r.mean_latency_s * 1e3, 100 * r.broker_share(),
                100 * r.breakdown.share(Stage::kInference),
                100 * r.breakdown.share(Stage::kPreprocess),
                100 * r.breakdown.share(Stage::kQueue));
  }
  return 0;
}
