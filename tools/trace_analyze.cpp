// Critical-path analyzer for causal trace exports (Chrome trace-event JSON).
//
// Reads a trace written by the benchmark harness (--trace-out), rebuilds the
// causal span trees from the trace_id/span_id/parent_span_id args, extracts
// each trace's critical path, and reports:
//
//   1. a summary (events, traces, spans, orphans),
//   2. per-run critical-path stage shares (where does the end-to-end time go
//      when you only count the causally-binding chain),
//   3. the top-k slowest traces with their blame chains, and
//   4. a cross-check of the sampled critical-path stage shares against the
//      RequestAuditor's full-population "audit.breakdown" record embedded in
//      the same trace — the sampled causal view and the exhaustive
//      accounting must agree within --tolerance.
//
// Exit codes: 0 all checks pass, 1 a check failed (orphaned spans, missing
// causal data, or a share mismatch), 2 malformed input.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/breakdown.h"
#include "sim/time.h"
#include "trace/critical_path.h"

#include "json_mini.h"

namespace {

using serve::sim::Time;
using serve::trace::CriticalPath;
using serve::trace::SpanRecord;

struct Options {
  std::string path;
  std::size_t top = 5;
  double tolerance = 0.01;  ///< max |share delta| vs the auditor breakdown
};

[[noreturn]] void usage_and_exit() {
  std::cerr << "usage: trace_analyze <trace.json> [--top <n>] [--tolerance <frac>]\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      o.top = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--tolerance" && i + 1 < argc) {
      o.tolerance = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "trace_analyze: unknown flag '" << arg << "'\n";
      usage_and_exit();
    } else if (o.path.empty()) {
      o.path = arg;
    } else {
      usage_and_exit();
    }
  }
  if (o.path.empty()) usage_and_exit();
  return o;
}

/// Exported timestamps are microseconds chosen to round-trip (to_chars), so
/// multiplying back recovers the exact integer nanosecond.
Time to_ns(double us) { return static_cast<Time>(std::llround(us * 1000.0)); }

bool parse_u64(const jsonmini::Value& obj, std::string_view key, std::uint64_t& out) {
  const jsonmini::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return false;
  char* end = nullptr;
  out = std::strtoull(v->str.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !v->str.empty();
}

/// Full-population stage means published by RequestAuditor::finalize().
struct AuditBreakdown {
  std::uint64_t count = 0;
  std::map<std::string, double> stage_mean_s;  ///< stage name -> mean seconds
};

struct ParsedTrace {
  std::vector<SpanRecord> spans;
  std::map<std::uint64_t, std::string> trace_run;  ///< trace id -> run label
  std::map<std::uint64_t, std::string> trace_root_name;
  std::map<std::string, AuditBreakdown> audits;  ///< run label -> breakdown
  std::size_t events = 0;
};

constexpr std::string_view kDefaultRun = "(default)";

ParsedTrace parse_trace_file(const Options& opts) {
  std::ifstream in{opts.path, std::ios::binary};
  if (!in) {
    std::cerr << "trace_analyze: cannot open " << opts.path << '\n';
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  jsonmini::Parser parser{text};
  const auto doc = parser.parse();
  if (!doc) {
    std::cerr << "trace_analyze: malformed JSON: " << parser.error() << '\n';
    std::exit(2);
  }
  const jsonmini::Value* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::cerr << "trace_analyze: not a Chrome trace (no traceEvents array)\n";
    std::exit(2);
  }

  // First pass: thread_name metadata gives tid -> track.
  std::map<int, std::string> tracks;
  for (const jsonmini::Value& e : events->array) {
    if (e.str_or("ph", "") == "M" && e.str_or("name", "") == "thread_name") {
      if (const jsonmini::Value* args = e.find("args")) {
        tracks[static_cast<int>(e.num_or("tid", 0))] = args->str_or("name", "");
      }
    }
  }

  ParsedTrace out;
  for (const jsonmini::Value& e : events->array) {
    if (!e.is_object()) continue;
    ++out.events;
    const std::string ph = e.str_or("ph", "");
    const jsonmini::Value* args = e.find("args");
    if (ph == "i" && e.str_or("name", "") == "audit.breakdown" && args != nullptr) {
      AuditBreakdown ab;
      ab.count = static_cast<std::uint64_t>(std::strtoull(
          args->str_or("count", "0").c_str(), nullptr, 10));
      for (const auto& [k, v] : args->object) {
        if (k.rfind("stage_", 0) == 0 && v.is_string()) {
          ab.stage_mean_s[k.substr(6)] = std::strtod(v.str.c_str(), nullptr);
        }
      }
      out.audits[args->str_or("run", std::string(kDefaultRun))] = std::move(ab);
      continue;
    }
    if (ph != "X" || args == nullptr) continue;
    SpanRecord s;
    if (!parse_u64(*args, "trace_id", s.trace_id) || !parse_u64(*args, "span_id", s.span_id)) {
      continue;  // an untraced span (device counters, fault windows, ...)
    }
    parse_u64(*args, "parent_span_id", s.parent_span_id);
    s.name = e.str_or("name", "");
    s.track = tracks[static_cast<int>(e.num_or("tid", 0))];
    s.blame = args->str_or("blame", "");
    s.begin = to_ns(e.num_or("ts", 0.0));
    s.end = s.begin + to_ns(e.num_or("dur", 0.0));
    if (s.parent_span_id == 0) {
      const std::string run = args->str_or("run", std::string(kDefaultRun));
      out.trace_run[s.trace_id] = run;
      out.trace_root_name[s.trace_id] = s.name;
    }
    out.spans.push_back(std::move(s));
  }
  return out;
}

std::string format_ms(Time t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", serve::sim::to_seconds(t) * 1e3);
  return buf;
}

std::string format_pct(double frac) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%5.1f%%", frac * 100.0);
  return buf;
}

/// Per-run aggregation of critical-path attributions.
struct RunShares {
  std::map<std::string, Time> by_name;
  Time total = 0;
  std::size_t traces = 0;
};

bool is_metrics_stage(const std::string& name) {
  for (std::size_t i = 0; i < serve::metrics::kStageCount; ++i) {
    if (name == serve::metrics::stage_name(static_cast<serve::metrics::Stage>(i))) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);
  const ParsedTrace parsed = parse_trace_file(opts);

  const std::vector<CriticalPath> paths = serve::trace::extract_critical_paths(parsed.spans);

  std::size_t orphans = 0;
  std::size_t rootless = 0;
  for (const CriticalPath& p : paths) {
    orphans += p.orphan_count;
    if (p.root == nullptr) ++rootless;
  }

  std::cout << "trace: " << opts.path << "\n"
            << "  events " << parsed.events << ", causal spans " << parsed.spans.size()
            << ", traces " << paths.size() << ", orphaned spans " << orphans
            << ", rootless traces " << rootless << "\n";

  bool ok = true;
  if (parsed.spans.empty()) {
    std::cout << "FAIL: no causal spans (was the run traced with a causal tracer?)\n";
    ok = false;
  }
  if (orphans > 0 || rootless > 0) {
    std::cout << "FAIL: " << orphans << " orphaned span(s) and " << rootless
              << " rootless trace(s) — parent links must resolve across every hop\n";
    ok = false;
  }

  // --- per-run critical-path stage shares -----------------------------------
  std::map<std::string, RunShares> runs;
  for (const CriticalPath& p : paths) {
    if (p.root == nullptr) continue;
    const auto runIt = parsed.trace_run.find(p.root->trace_id);
    const std::string run =
        runIt != parsed.trace_run.end() ? runIt->second : std::string(kDefaultRun);
    RunShares& rs = runs[run];
    ++rs.traces;
    rs.total += p.total;
    for (const auto& [name, t] : p.by_name) rs.by_name[name] += t;
  }
  for (const auto& [run, rs] : runs) {
    std::cout << "\ncritical path [" << run << "] — " << rs.traces << " trace(s), "
              << format_ms(rs.total) << " ms total\n";
    std::vector<std::pair<std::string, Time>> rows{rs.by_name.begin(), rs.by_name.end()};
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [name, t] : rows) {
      std::cout << "  " << format_pct(rs.total > 0 ? static_cast<double>(t) /
                                                         static_cast<double>(rs.total)
                                                   : 0.0)
                << "  " << format_ms(t) << " ms  " << name << "\n";
    }
  }

  // --- top-k slowest traces with blame chains -------------------------------
  std::vector<const CriticalPath*> slowest;
  for (const CriticalPath& p : paths) {
    if (p.root != nullptr) slowest.push_back(&p);
  }
  std::sort(slowest.begin(), slowest.end(),
            [](const CriticalPath* a, const CriticalPath* b) { return a->total > b->total; });
  if (slowest.size() > opts.top) slowest.resize(opts.top);
  if (!slowest.empty()) std::cout << "\nslowest traces:\n";
  for (const CriticalPath* p : slowest) {
    const auto runIt = parsed.trace_run.find(p->root->trace_id);
    std::cout << "  trace " << p->root->trace_id << " [" << p->root->name;
    if (runIt != parsed.trace_run.end() && runIt->second != kDefaultRun) {
      std::cout << ", " << runIt->second;
    }
    std::cout << "] " << format_ms(p->total) << " ms\n";
    for (const serve::trace::PathStep& step : p->steps) {
      if (step.attributed <= 0) continue;
      std::cout << "    " << format_ms(step.attributed) << " ms  " << step.span->name;
      if (!step.span->blame.empty()) std::cout << "  <- " << step.span->blame;
      std::cout << "\n";
    }
  }

  // --- cross-check vs the auditor's full-population breakdown ---------------
  // Both sides are normalized over the metrics stage names they actually
  // observed, so the comparison is share-vs-share: the sampled critical
  // paths must allocate stage time in the same proportions the exhaustive
  // per-request accounting did.
  for (const auto& [run, audit] : parsed.audits) {
    const auto runIt = runs.find(run);
    if (runIt == runs.end()) {
      std::cout << "\nFAIL [" << run << "]: auditor breakdown present but no sampled traces\n";
      ok = false;
      continue;
    }
    double audit_sum = 0.0;
    for (const auto& [name, mean_s] : audit.stage_mean_s) audit_sum += mean_s;
    double cp_sum = 0.0;
    for (const auto& [name, t] : runIt->second.by_name) {
      if (is_metrics_stage(name)) cp_sum += serve::sim::to_seconds(t);
    }
    std::cout << "\ncross-check [" << run << "] vs audit.breakdown (" << audit.count
              << " requests, tolerance " << opts.tolerance << "):\n";
    if (audit_sum <= 0.0 || cp_sum <= 0.0) {
      std::cout << "  FAIL: empty stage accounting on one side\n";
      ok = false;
      continue;
    }
    for (const auto& [name, mean_s] : audit.stage_mean_s) {
      const double audit_share = mean_s / audit_sum;
      const auto cpIt = runIt->second.by_name.find(name);
      const double cp_share =
          cpIt != runIt->second.by_name.end()
              ? serve::sim::to_seconds(cpIt->second) / cp_sum
              : 0.0;
      const double delta = cp_share - audit_share;
      const bool pass = std::abs(delta) <= opts.tolerance;
      std::cout << "  " << (pass ? "ok  " : "FAIL") << "  " << name << ": critical-path "
                << format_pct(cp_share) << " vs audit " << format_pct(audit_share)
                << " (delta " << format_pct(delta) << ")\n";
      if (!pass) ok = false;
    }
  }

  std::cout << "\n" << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
