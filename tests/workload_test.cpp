// Tests for the workload module: image mixtures and the real JPEG corpus.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "codec/jpeg.h"
#include "sim/rng.h"
#include "workload/corpus.h"
#include "workload/image_mixture.h"
#include "workload/popularity.h"

namespace serve::workload {
namespace {

TEST(ImageMixture, FixedAlwaysSamplesSameSpec) {
  const auto m = ImageMixture::fixed(hw::kMediumImage);
  sim::Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample(rng), hw::kMediumImage);
}

TEST(ImageMixture, WeightsRespected) {
  ImageMixture m;
  m.add(hw::kSmallImage, 1.0).add(hw::kLargeImage, 3.0);
  sim::Rng rng{5};
  int large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) large += m.sample(rng) == hw::kLargeImage ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(large) / n, 0.75, 0.02);
}

TEST(ImageMixture, ImagenetLikeMostlyMedium) {
  const auto m = ImageMixture::imagenet_like();
  sim::Rng rng{9};
  int medium = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) medium += m.sample(rng) == hw::kMediumImage ? 1 : 0;
  EXPECT_GT(medium, n / 2);
}

TEST(ImageMixture, Errors) {
  ImageMixture m;
  EXPECT_THROW(m.add(hw::kSmallImage, 0.0), std::invalid_argument);
  sim::Rng rng{1};
  EXPECT_THROW((void)m.sample(rng), std::logic_error);
  EXPECT_THROW((void)m.mean_weighted_spec(), std::logic_error);
}

TEST(ImageMixture, MeanWeightedSpec) {
  ImageMixture m;
  m.add(hw::ImageSpec{100, 100, 1000}, 1.0).add(hw::ImageSpec{300, 100, 3000}, 1.0);
  const auto mean = m.mean_weighted_spec();
  EXPECT_EQ(mean.width, 200);
  EXPECT_EQ(mean.height, 100);
  EXPECT_EQ(mean.compressed_bytes, 2000);
}

TEST(Corpus, ProducesDecodableJpegs) {
  const auto corpus = make_corpus(hw::kSmallImage, 3, 11);
  ASSERT_EQ(corpus.size(), 3u);
  for (const auto& entry : corpus) {
    EXPECT_EQ(entry.spec.width, hw::kSmallImage.width);
    EXPECT_EQ(entry.spec.compressed_bytes, static_cast<std::int64_t>(entry.jpeg.size()));
    const auto img = codec::decode_jpeg(entry.jpeg);
    EXPECT_EQ(img.width(), hw::kSmallImage.width);
    EXPECT_EQ(img.height(), hw::kSmallImage.height);
  }
}

TEST(Corpus, DeterministicInSeed) {
  const auto a = make_corpus(hw::kSmallImage, 2, 42);
  const auto b = make_corpus(hw::kSmallImage, 2, 42);
  const auto c = make_corpus(hw::kSmallImage, 2, 43);
  EXPECT_EQ(a[0].jpeg, b[0].jpeg);
  EXPECT_NE(a[0].jpeg, c[0].jpeg);
  EXPECT_NE(a[0].jpeg, a[1].jpeg);  // different images within a corpus
}

TEST(Corpus, RejectsBadCount) {
  EXPECT_THROW(make_corpus(hw::kSmallImage, 0), std::invalid_argument);
}

TEST(Corpus, ThreadedGenerationIsDeterministic) {
  // Fanning the per-entry work over the BatchPreprocessor pool must not
  // change the corpus: entries depend only on (seed + index).
  const auto seq = make_corpus(hw::kSmallImage, 8, 42, 1);
  const auto par = make_corpus(hw::kSmallImage, 8, 42, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].jpeg, par[i].jpeg) << "entry " << i;
    EXPECT_EQ(seq[i].spec.compressed_bytes, par[i].spec.compressed_bytes);
  }
}

TEST(Corpus, RealPreprocessTimingIsPositiveAndDecodeHeavy) {
  const auto corpus = make_corpus(hw::kMediumImage, 1, 3);
  const auto t = time_real_preprocess(corpus[0], 224);
  EXPECT_GT(t.decode_s, 0.0);
  EXPECT_GT(t.resize_s, 0.0);
  EXPECT_GT(t.normalize_s, 0.0);
  // Decode dominates the preprocessing pipeline (paper Fig. 6 mechanism).
  EXPECT_GT(t.decode_s, t.normalize_s);
  EXPECT_NEAR(t.total(), t.decode_s + t.resize_s + t.normalize_s, 1e-12);
}

TEST(ImageMixture, RejectsNonFiniteAndNonPositiveWeights) {
  // Regression: a NaN weight used to slip past the `weight <= 0` guard (NaN
  // comparisons are false), poisoning the total and making
  // mean_weighted_spec divide by garbage.
  ImageMixture m;
  EXPECT_THROW(m.add(hw::kSmallImage, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(m.add(hw::kSmallImage, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(m.add(hw::kSmallImage, -1.0), std::invalid_argument);
  EXPECT_THROW(m.add(hw::kSmallImage, 0.0), std::invalid_argument);
  // Rejected weights leave the mixture untouched and usable.
  m.add(hw::kMediumImage, 2.0);
  EXPECT_EQ(m.mean_weighted_spec(), hw::kMediumImage);
}

TEST(SpecCorpus, DistinctStableNonZeroIdentities) {
  const auto corpus = make_spec_corpus(hw::kMediumImage, 100, 7);
  ASSERT_EQ(corpus.size(), 100u);
  std::set<std::uint64_t> hashes;
  for (const auto& e : corpus) {
    EXPECT_EQ(e.spec, hw::kMediumImage);
    EXPECT_NE(e.content_hash, 0u);
    hashes.insert(e.content_hash);
  }
  EXPECT_EQ(hashes.size(), 100u);  // all distinct despite identical geometry
  const auto again = make_spec_corpus(hw::kMediumImage, 100, 7);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(corpus[i].content_hash, again[i].content_hash);
  const auto reseeded = make_spec_corpus(hw::kMediumImage, 100, 8);
  EXPECT_NE(corpus[0].content_hash, reseeded[0].content_hash);
  EXPECT_THROW((void)make_spec_corpus(hw::kMediumImage, 0), std::invalid_argument);
}

TEST(Popularity, ZipfMassIsHeadHeavyAndNormalized) {
  const auto p = PopularityModel::zipf(100, 1.0);
  EXPECT_EQ(p.size(), 100u);
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) total += p.mass(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(p.mass(0), p.mass(1));
  EXPECT_GT(p.mass(1), p.mass(99));
}

TEST(Popularity, UniformIsFlat) {
  const auto p = PopularityModel::uniform(8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(p.mass(i), 1.0 / 8.0, 1e-12);
}

TEST(Popularity, SamplingIsDeterministicAndMatchesMass) {
  const auto p = PopularityModel::zipf(50, 1.2);
  sim::Rng a{99}, b{99};
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto ia = p.sample(a);
    ASSERT_EQ(ia, p.sample(b));  // same seed, same draw sequence
    ASSERT_LT(ia, p.size());
    head += ia == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(head) / n, p.mass(0), 0.02);
}

TEST(Popularity, RejectsBadParameters) {
  EXPECT_THROW((void)PopularityModel::zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)PopularityModel::zipf(10, -0.5), std::invalid_argument);
  EXPECT_THROW((void)PopularityModel::zipf(10, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Popularity, CorpusSourceCarriesIdentityAndIngress) {
  auto corpus = make_spec_corpus(hw::kMediumImage, 4, 21);
  const auto expected = corpus;  // the source moves its copy
  const auto source = popular_corpus_source(std::move(corpus), PopularityModel::uniform(4),
                                            serving::RequestIngress::kRawTensor);
  sim::Rng rng{5};
  for (int i = 0; i < 32; ++i) {
    const auto desc = source(rng);
    EXPECT_EQ(desc.ingress, serving::RequestIngress::kRawTensor);
    bool found = false;
    for (const auto& e : expected) found |= e.content_hash == desc.content_hash;
    EXPECT_TRUE(found);
    EXPECT_EQ(desc.image, hw::kMediumImage);
  }
  EXPECT_THROW((void)popular_corpus_source(expected, PopularityModel::uniform(3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace serve::workload
