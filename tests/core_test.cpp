// Tests for the core orchestration layer: experiment runner variants,
// auto-tuner, arrival processes, and trace recording.
#include <gtest/gtest.h>

#include <sstream>

#include "core/autotuner.h"
#include "core/fleet.h"
#include "core/experiment.h"
#include "hw/tracing.h"
#include "models/model_zoo.h"
#include "sim/trace.h"
#include "workload/arrivals.h"

namespace serve::core {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.concurrency = 64;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(2.0);
  return spec;
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a = run_experiment(small_spec());
  const auto b = run_experiment(small_spec());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
}

TEST(Experiment, OpenLoopTracksOfferedRateBelowSaturation) {
  auto spec = small_spec();
  spec.measure = sim::seconds(8.0);
  const double rate = 500.0;  // well under the ~1800/s capacity
  const auto r = run_open_loop(spec, workload::poisson_arrivals(rate));
  EXPECT_NEAR(r.throughput_rps, rate, rate * 0.1);
  // Latency must be far below the closed-loop queueing regime.
  EXPECT_LT(r.mean_latency_s, 0.05);
}

TEST(Experiment, BurstyArrivalsInflateTailLatency) {
  auto spec = small_spec();
  spec.measure = sim::seconds(12.0);
  const double rate = 1200.0;
  const auto poisson = run_open_loop(spec, workload::poisson_arrivals(rate));
  const auto bursty = run_open_loop(spec, workload::mmpp2_arrivals(rate, 4.0, 0.4));
  EXPECT_GT(bursty.p99_latency_s, poisson.p99_latency_s * 1.5);
}

TEST(Experiment, DeterministicArrivalsAreSmoothest) {
  auto spec = small_spec();
  spec.measure = sim::seconds(6.0);
  const double rate = 1200.0;
  const auto det = run_open_loop(spec, workload::deterministic_arrivals(rate));
  const auto poisson = run_open_loop(spec, workload::poisson_arrivals(rate));
  EXPECT_LE(det.p99_latency_s, poisson.p99_latency_s * 1.05);
}

TEST(Arrivals, Validation) {
  EXPECT_THROW(workload::poisson_arrivals(0.0), std::invalid_argument);
  EXPECT_THROW(workload::deterministic_arrivals(-1.0), std::invalid_argument);
  EXPECT_THROW(workload::mmpp2_arrivals(100.0, 0.5), std::invalid_argument);
  EXPECT_THROW(workload::mmpp2_arrivals(100.0, 4.0, 0.0), std::invalid_argument);
}

TEST(Arrivals, MmppMeanRateMatches) {
  auto gen = workload::mmpp2_arrivals(1000.0, 4.0, 0.3);
  sim::Rng rng{17};
  sim::Time total = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += gen(rng);
  const double measured_rate = n / sim::to_seconds(total);
  EXPECT_NEAR(measured_rate, 1000.0, 60.0);
}

TEST(Autotuner, FindsBetterConfigThanBaseline) {
  auto base = small_spec();
  base.server.max_batch = 8;
  base.concurrency = 32;
  base.measure = sim::seconds(2.0);
  const auto baseline = run_experiment(base);

  TuneSpace space;
  space.max_batches = {8, 64};
  space.concurrencies = {32, 256};
  space.preproc_devices = {serving::PreprocDevice::kGpu};
  const auto report = tune_server(base, space);
  ASSERT_TRUE(report.found_feasible());
  EXPECT_EQ(report.trace.size(), 4u);
  EXPECT_GE(report.best.result.throughput_rps, baseline.throughput_rps);
  EXPECT_EQ(report.best.spec.server.max_batch, 64);
}

TEST(Autotuner, SloConstraintFiltersConfigs) {
  auto base = small_spec();
  base.measure = sim::seconds(2.0);
  TuneSpace space;
  space.max_batches = {64};
  space.concurrencies = {16, 2048};
  space.preproc_devices = {serving::PreprocDevice::kGpu};
  TuneObjective slo;
  slo.p99_slo_s = 0.100;  // 100 ms: 2048-way concurrency cannot meet this
  const auto report = tune_server(base, space, slo);
  ASSERT_TRUE(report.found_feasible());
  EXPECT_EQ(report.best.spec.concurrency, 16);
  // The infeasible point is still in the trace, marked infeasible.
  int infeasible = 0;
  for (const auto& p : report.trace) infeasible += p.feasible ? 0 : 1;
  EXPECT_EQ(infeasible, 1);
}

TEST(Fleet, AggregatesNodeThroughput) {
  FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.gpus_per_node = {1, 1};
  spec.concurrency = 256;
  spec.warmup = sim::seconds(1.0);
  spec.measure = sim::seconds(4.0);
  const auto r = run_fleet(spec);
  ASSERT_EQ(r.node_throughput_rps.size(), 2u);
  // Logical goodput at the balancer matches the sum of node-side completions
  // (modulo requests straddling the window edges).
  EXPECT_NEAR(r.throughput_rps, r.node_throughput_rps[0] + r.node_throughput_rps[1], 50.0);
  EXPECT_NEAR(r.imbalance(), 1.0, 0.05);  // round-robin over equal nodes
  EXPECT_GT(r.throughput_rps, 3000.0);
}

TEST(Fleet, LeastOutstandingAdaptsToHeterogeneity) {
  FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.gpus_per_node = {2, 1};
  spec.concurrency = 384;
  spec.warmup = sim::seconds(1.0);
  spec.measure = sim::seconds(4.0);
  spec.server.balancer.policy = BalancerPolicy::kRoundRobin;
  const auto rr = run_fleet(spec);
  spec.server.balancer.policy = BalancerPolicy::kLeastOutstanding;
  const auto jsq = run_fleet(spec);
  EXPECT_GT(jsq.throughput_rps, rr.throughput_rps);
  // JSQ routes proportionally more work to the 2-GPU node.
  EXPECT_GT(jsq.node_throughput_rps[0], 1.5 * jsq.node_throughput_rps[1]);
}

TEST(Fleet, RejectsEmptyFleet) {
  FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.gpus_per_node = {};
  EXPECT_THROW((void)run_fleet(spec), std::invalid_argument);
}

TEST(Trace, RecordsAndExportsChromeJson) {
  sim::TraceRecorder trace;
  trace.span("gpu0.compute", "batch x32", sim::milliseconds(1), sim::milliseconds(3));
  trace.counter("cpu.cores", 7.0, sim::milliseconds(2));
  std::ostringstream os;
  trace.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("batch x32"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);  // 2 ms in us
}

TEST(Trace, RejectsNegativeSpans) {
  sim::TraceRecorder trace;
  EXPECT_THROW(trace.span("t", "n", 10, 5), std::invalid_argument);
}

TEST(Trace, ExperimentEmitsUtilizationCounters) {
  auto spec = small_spec();
  spec.measure = sim::seconds(1.0);
  sim::TraceRecorder trace;
  spec.trace = &trace;
  (void)run_experiment(spec);
  EXPECT_GT(trace.counter_count(), 1000u);  // busy server: many transitions
  std::ostringstream os;
  trace.write_chrome_json(os);
  EXPECT_NE(os.str().find("gpu0.compute"), std::string::npos);
  EXPECT_NE(os.str().find("cpu.cores"), std::string::npos);
}

TEST(Trace, ClearResets) {
  sim::TraceRecorder trace;
  trace.counter("x", 1.0, 0);
  EXPECT_FALSE(trace.empty());
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace serve::core
