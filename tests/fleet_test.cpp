// Tests for the fleet failure-domain layer: node-scoped faults, the
// NodeHealth ejection state machine, health-checked balancing, request
// hedging, and conservation/determinism of the whole assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/fleet.h"
#include "metrics/export.h"
#include "models/model_zoo.h"

namespace serve::core {
namespace {

FleetSpec small_fleet() {
  FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.gpus_per_node = {1, 1};
  spec.concurrency = 64;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(2.5);
  spec.audit = true;
  return spec;
}

// ---------------------------------------------------------------------------
// FleetResult accounting helpers.

TEST(FleetResult, ImbalanceReportsInfinityForDeadNode) {
  FleetResult r;
  r.node_throughput_rps = {1000.0, 0.0};
  // Regression: this used to return 0.0 — the "perfectly balanced" sentinel —
  // for a fleet with a dead node.
  EXPECT_TRUE(std::isinf(r.imbalance()));
  EXPECT_EQ(r.dead_nodes(), 1);
}

TEST(FleetResult, ImbalanceRatioAndEmptyFleet) {
  FleetResult r;
  r.node_throughput_rps = {1000.0, 500.0};
  EXPECT_DOUBLE_EQ(r.imbalance(), 2.0);
  EXPECT_EQ(r.dead_nodes(), 0);
  FleetResult empty;
  EXPECT_DOUBLE_EQ(empty.imbalance(), 0.0);
}

TEST(FleetResult, ConservedChecksTerminalStates) {
  FleetResult r;
  r.issued = 10;
  r.completed = 7;
  r.failed = 3;
  EXPECT_TRUE(r.conserved());
  r.failed = 2;
  EXPECT_FALSE(r.conserved());
}

// ---------------------------------------------------------------------------
// NodeHealth state machine (pure bookkeeping, no simulator).

serving::HealthCheckPolicy health_policy() {
  serving::HealthCheckPolicy p;
  p.enabled = true;
  p.ewma_alpha = 0.5;
  p.eject_score = 0.5;
  p.eject_probe_failures = 3;
  p.eject_duration = sim::milliseconds(500);
  p.rejoin_probes = 3;
  return p;
}

TEST(NodeHealth, EjectsOnConsecutiveProbeFailures) {
  auto p = health_policy();
  p.eject_score = -1.0;  // isolate the probe path from the score path
  NodeHealth h(p);
  h.on_probe(false, 0);
  h.on_probe(false, 0);
  EXPECT_EQ(h.state(), NodeHealth::State::kHealthy);
  h.on_probe(false, 0);
  EXPECT_EQ(h.state(), NodeHealth::State::kEjected);
  EXPECT_EQ(h.ejections(), 1u);
}

TEST(NodeHealth, EjectsWhenScoreDropsBelowThreshold) {
  auto p = health_policy();
  p.eject_probe_failures = 1000;  // isolate the score path
  NodeHealth h(p);
  h.on_request_outcome(false, 0);  // score 1.0 -> 0.5: not yet below
  EXPECT_EQ(h.state(), NodeHealth::State::kHealthy);
  h.on_request_outcome(false, 0);  // 0.5 -> 0.25: ejected
  EXPECT_EQ(h.state(), NodeHealth::State::kEjected);
}

TEST(NodeHealth, HalfOpenTrialsThenRejoin) {
  NodeHealth h(health_policy());
  for (int i = 0; i < 3; ++i) h.on_probe(false, 0);
  ASSERT_EQ(h.state(), NodeHealth::State::kEjected);
  EXPECT_FALSE(h.routable(sim::milliseconds(499)));
  // Eject hold expires -> half-open with limited trial slots.
  EXPECT_TRUE(h.routable(sim::milliseconds(500)));
  EXPECT_EQ(h.state(), NodeHealth::State::kHalfOpen);
  h.begin_trial();
  h.begin_trial();
  h.begin_trial();
  EXPECT_FALSE(h.routable(sim::milliseconds(500)));  // trial slots exhausted
  h.end_trial();
  EXPECT_TRUE(h.routable(sim::milliseconds(500)));
  // rejoin_probes successes close the loop; the score resets clean.
  const auto t = sim::milliseconds(501);
  h.on_probe(true, t);
  h.on_probe(true, t);
  h.on_probe(true, t);
  EXPECT_EQ(h.state(), NodeHealth::State::kHealthy);
  EXPECT_DOUBLE_EQ(h.score(), 1.0);
  EXPECT_EQ(h.rejoins(), 1u);
}

TEST(NodeHealth, HalfOpenFailureReEjects) {
  NodeHealth h(health_policy());
  for (int i = 0; i < 3; ++i) h.on_probe(false, 0);
  ASSERT_TRUE(h.routable(sim::milliseconds(500)));  // -> half-open
  h.on_probe(false, sim::milliseconds(501));
  EXPECT_EQ(h.state(), NodeHealth::State::kEjected);
  EXPECT_EQ(h.ejections(), 2u);
  // The hold restarts from the re-ejection time.
  EXPECT_FALSE(h.routable(sim::milliseconds(900)));
  EXPECT_TRUE(h.routable(sim::milliseconds(1001)));
}

TEST(NodeHealth, DisabledPolicyAlwaysRoutable) {
  NodeHealth h(serving::HealthCheckPolicy{});  // enabled = false
  for (int i = 0; i < 10; ++i) h.on_probe(false, 0);
  EXPECT_TRUE(h.routable(0));
  EXPECT_EQ(h.state(), NodeHealth::State::kHealthy);
}

// ---------------------------------------------------------------------------
// Conservation under every node-scoped fault kind (auditors armed).

TEST(FleetFaults, ConservesRequestsThroughNodeCrash) {
  auto spec = small_fleet();
  sim::FaultPlan faults;
  faults.node_crash(1, sim::seconds(1.0), sim::seconds(2.0));
  spec.faults = &faults;
  const auto r = run_fleet(spec);
  EXPECT_TRUE(r.conserved()) << r.issued << " != " << r.completed << " + " << r.failed;
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_GT(r.crash_failed, 0u);   // round-robin keeps dispatching into the crash
  EXPECT_GT(r.completed, 0u);      // the healthy node keeps serving
}

TEST(FleetFaults, ConservesRequestsThroughGrayFailure) {
  auto spec = small_fleet();
  sim::FaultPlan faults;
  faults.node_gray_failure(1, sim::seconds(1.0), sim::seconds(2.0), 0.2);
  spec.faults = &faults;
  const auto r = run_fleet(spec);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_GT(r.gray_failed, 0u);    // ~80% of the gray node's window traffic
  EXPECT_GT(r.completed, 0u);
}

TEST(FleetFaults, ConservesRequestsThroughPartition) {
  auto spec = small_fleet();
  sim::FaultPlan faults;
  faults.node_partition(1, sim::seconds(1.0), sim::seconds(2.0), 0.25);
  spec.faults = &faults;
  const auto r = run_fleet(spec);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.audit_violations, 0u);
  // A partition delays but does not destroy: tail latency absorbs the link.
  EXPECT_GT(r.p99_latency_s, 0.25);
}

TEST(FleetFaults, HealthChecksEjectAndRejoinAroundCrash) {
  auto spec = small_fleet();
  spec.measure = sim::seconds(3.5);
  spec.server.balancer.policy = BalancerPolicy::kPowerOfTwo;
  spec.server.balancer.health.enabled = true;
  sim::FaultPlan faults;
  faults.node_crash(1, sim::seconds(1.0), sim::seconds(2.5));
  spec.faults = &faults;
  const auto r = run_fleet(spec);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_GT(r.probes, 0u);
  EXPECT_GT(r.probe_failures, 0u);
  EXPECT_GE(r.ejections, 1u);  // probes catch the crash
  EXPECT_GE(r.rejoins, 1u);    // ... and readmit the node after it returns
}

// ---------------------------------------------------------------------------
// Hedging.

TEST(FleetHedge, BudgetBoundsHedgesAndDeniesWhenExhausted) {
  auto spec = small_fleet();
  spec.concurrency = 32;
  // One-way 200 ms partition on node 1 makes every round-robin dispatch to it
  // blow the 20 ms hedge deadline.
  sim::FaultPlan faults;
  faults.node_partition(1, sim::seconds(0.5), sim::seconds(3.0), 0.2);
  spec.faults = &faults;
  spec.server.balancer.hedge.enabled = true;
  spec.server.balancer.hedge.deadline = sim::milliseconds(20);
  spec.server.balancer.hedge.budget = 8.0;
  spec.server.balancer.hedge.budget_refill_per_success = 0.0;  // no refill: hard cap
  const auto r = run_fleet(spec);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_EQ(r.hedges, 8u);         // exactly the budget, never more
  EXPECT_GT(r.hedges_denied, 0u);  // demand kept coming after exhaustion
  EXPECT_GT(r.hedge_wins, 0u);     // the second node answered first
  EXPECT_EQ(r.hedges, r.hedge_wins + r.hedge_losses);
}

TEST(FleetHedge, RefillSustainsHedgingAndCancelsLosers) {
  auto spec = small_fleet();
  spec.concurrency = 32;
  sim::FaultPlan faults;
  faults.node_partition(1, sim::seconds(0.5), sim::seconds(3.0), 0.2);
  spec.faults = &faults;
  spec.server.balancer.hedge.enabled = true;
  spec.server.balancer.hedge.deadline = sim::milliseconds(20);
  spec.server.balancer.hedge.budget = 64.0;
  spec.server.balancer.hedge.budget_refill_per_success = 1.0;
  const auto r = run_fleet(spec);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_GT(r.hedges, 8u);
  // Every hedge loser is cancelled and drop-accounted, not leaked.
  EXPECT_GT(r.cancelled, 0u);
}

// ---------------------------------------------------------------------------
// Open-loop arrivals.

TEST(FleetOpenLoop, TracksOfferedRateBelowSaturation) {
  auto spec = small_fleet();
  spec.rate_rps = 800.0;  // well under the ~3600/s two-node capacity
  spec.measure = sim::seconds(4.0);
  const auto r = run_fleet(spec);
  EXPECT_TRUE(r.conserved());
  EXPECT_NEAR(r.throughput_rps, 800.0, 80.0);
}

TEST(FleetOpenLoop, DeterministicArrivalsAreExact) {
  auto spec = small_fleet();
  spec.rate_rps = 500.0;
  spec.arrivals = workload::ArrivalKind::kDeterministic;
  spec.measure = sim::seconds(4.0);
  const auto r = run_fleet(spec);
  EXPECT_NEAR(r.throughput_rps, 500.0, 5.0);
}

// ---------------------------------------------------------------------------
// Determinism: same seed, same spec -> byte-identical digest and telemetry.

FleetSpec digest_spec(metrics::Registry* reg) {
  auto spec = small_fleet();
  spec.server.balancer.policy = BalancerPolicy::kLatencyWeighted;
  spec.server.balancer.health.enabled = true;
  spec.server.balancer.hedge.enabled = true;
  spec.server.balancer.hedge.deadline = sim::milliseconds(30);
  spec.registry = reg;
  return spec;
}

TEST(FleetDeterminism, SameSeedSameDigestAndTelemetry) {
  sim::FaultPlan faults;
  faults.node_crash(1, sim::seconds(1.0), sim::seconds(2.0));
  faults.node_gray_failure(0, sim::seconds(2.2), sim::seconds(2.8), 0.5);

  metrics::Registry reg_a;
  auto spec_a = digest_spec(&reg_a);
  spec_a.faults = &faults;
  const auto a = run_fleet(spec_a);

  metrics::Registry reg_b;
  auto spec_b = digest_spec(&reg_b);
  spec_b.faults = &faults;
  const auto b = run_fleet(spec_b);

  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_FALSE(a.digest().empty());

  std::ostringstream ja, jb;
  metrics::TelemetryExport ea, eb;
  ea.capture_instruments(reg_a);
  ea.write_json(ja);
  eb.capture_instruments(reg_b);
  eb.write_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_NE(ja.str().find("fleet_node_health_score"), std::string::npos);
  EXPECT_NE(ja.str().find("fleet_hedges_total"), std::string::npos);
}

}  // namespace
}  // namespace serve::core
