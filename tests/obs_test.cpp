// Tests for the obs::AlertEngine SLO watch plane: threshold/rate/burn/stall
// rules, hysteresis, deterministic logs, triggered capture, flight-recorder
// integration across ring wraps, and per-node fleet alert labels.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "models/model_zoo.h"
#include "obs/alert_engine.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "trace/span_context.h"

namespace serve::obs {
namespace {

constexpr sim::Time kTick = sim::milliseconds(100);

/// Drives evaluate() directly at the recorder cadence without a recorder.
struct Clock {
  std::uint64_t tick = 0;
  sim::Time now = 0;
  void step(AlertEngine& eng) {
    eng.evaluate(now, tick);
    ++tick;
    now += kTick;
  }
};

// ---------------------------------------------------------------------------
// Threshold rules.

TEST(AlertThreshold, GaugeFiresAfterForTicksAndClearsWithHysteresis) {
  metrics::Registry reg;
  auto depth = reg.gauge("queue_depth");
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "depth-high";
  r.instrument = "queue_depth";
  r.fire_above = 10.0;
  r.clear_below = 5.0;
  r.for_ticks = 2;
  r.clear_for_ticks = 2;
  eng.add_threshold(r);

  Clock c;
  depth.set(3.0);
  c.step(eng);
  EXPECT_TRUE(eng.events().empty());

  depth.set(50.0);
  c.step(eng);  // first breaching tick: debounced, not yet firing
  EXPECT_TRUE(eng.events().empty());
  c.step(eng);  // second consecutive breach fires
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_TRUE(eng.events()[0].firing);
  EXPECT_EQ(eng.events()[0].alert, "depth-high");
  EXPECT_DOUBLE_EQ(eng.events()[0].value, 50.0);
  EXPECT_EQ(eng.active_alerts(), 1u);

  // 7 is below the fire level but above the clear level: hysteresis holds.
  depth.set(7.0);
  c.step(eng);
  c.step(eng);
  c.step(eng);
  EXPECT_EQ(eng.events().size(), 1u);
  EXPECT_EQ(eng.active_alerts(), 1u);

  depth.set(2.0);
  c.step(eng);  // first clear tick
  EXPECT_EQ(eng.events().size(), 1u);
  c.step(eng);  // second clear tick resolves
  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_FALSE(eng.events()[1].firing);
  EXPECT_EQ(eng.active_alerts(), 0u);

  // Per-alert counters landed in the registry.
  const auto fired = reg.find("obs_alerts_fired_total", {{"alert", "depth-high"}});
  const auto resolved = reg.find("obs_alerts_resolved_total", {{"alert", "depth-high"}});
  ASSERT_TRUE(fired.has_value());
  ASSERT_TRUE(resolved.has_value());
  EXPECT_DOUBLE_EQ(fired->value, 1.0);
  EXPECT_DOUBLE_EQ(resolved->value, 1.0);
}

TEST(AlertThreshold, FireBelowDirection) {
  metrics::Registry reg;
  auto health = reg.gauge("health_score");
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "health-low";
  r.instrument = "health_score";
  r.fire_below = 0.5;
  r.clear_above = 0.8;
  eng.add_threshold(r);

  Clock c;
  health.set(1.0);
  c.step(eng);
  EXPECT_TRUE(eng.events().empty());
  health.set(0.2);
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_TRUE(eng.events()[0].firing);
  health.set(0.6);  // above fire level but below clear level: still firing
  c.step(eng);
  EXPECT_EQ(eng.events().size(), 1u);
  health.set(0.9);
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_FALSE(eng.events()[1].firing);
}

TEST(AlertThreshold, RejectsZeroOrTwoFireDirections) {
  metrics::Registry reg;
  AlertEngine eng{reg};
  ThresholdRule none;
  none.name = "no-direction";
  none.instrument = "x";
  EXPECT_THROW(eng.add_threshold(none), std::invalid_argument);
  ThresholdRule both;
  both.name = "both-directions";
  both.instrument = "x";
  both.fire_above = 1.0;
  both.fire_below = 0.0;
  EXPECT_THROW(eng.add_threshold(both), std::invalid_argument);
}

TEST(AlertThreshold, RateRuleBaselinesFirstTickThenDetectsSpike) {
  metrics::Registry reg;
  auto evictions = reg.counter("evictions_total");
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "eviction-storm";
  r.instrument = "evictions_total";
  r.signal = ThresholdRule::Signal::kRate;
  r.fire_above = 100.0;  // per second
  r.clear_below = 10.0;
  eng.add_threshold(r);

  Clock c;
  evictions.inc(1e6);  // huge pre-existing cumulative value
  c.step(eng);         // baseline tick: a counter's absolute value never breaches
  EXPECT_TRUE(eng.events().empty());

  evictions.inc(5.0);  // 50/s over a 100 ms tick: below threshold
  c.step(eng);
  EXPECT_TRUE(eng.events().empty());

  evictions.inc(50.0);  // 500/s: breach
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_TRUE(eng.events()[0].firing);
  EXPECT_DOUBLE_EQ(eng.events()[0].value, 500.0);

  c.step(eng);  // no increment: rate 0 resolves
  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_FALSE(eng.events()[1].firing);
}

TEST(AlertThreshold, PerInstrumentCreatesIndependentLabeledInstances) {
  metrics::Registry reg;
  auto g0 = reg.gauge("node_score", {{"node", "0"}});
  auto g1 = reg.gauge("node_score", {{"node", "1"}});
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "node-unhealthy";
  r.instrument = "node_score";
  r.agg = ThresholdRule::Agg::kPerInstrument;
  r.fire_below = 0.5;
  eng.add_threshold(r);

  Clock c;
  g0.set(1.0);
  g1.set(1.0);
  c.step(eng);
  EXPECT_TRUE(eng.events().empty());

  g1.set(0.1);  // only node 1 degrades
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_EQ(eng.events()[0].alert, "node-unhealthy{node=1}");
  EXPECT_TRUE(eng.ever_fired("node-unhealthy{node=1}"));
  EXPECT_FALSE(eng.ever_fired("node-unhealthy{node=0}"));
}

TEST(AlertThreshold, SumAggregationCombinesInstances) {
  metrics::Registry reg;
  auto g0 = reg.gauge("queue_depth", {{"queue", "a"}});
  auto g1 = reg.gauge("queue_depth", {{"queue", "b"}});
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "total-depth";
  r.instrument = "queue_depth";
  r.fire_above = 100.0;
  eng.add_threshold(r);

  Clock c;
  g0.set(60.0);
  g1.set(30.0);
  c.step(eng);
  EXPECT_TRUE(eng.events().empty());  // 90 total: under
  g1.set(70.0);
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_DOUBLE_EQ(eng.events()[0].value, 130.0);
  // The log line names the top contributors with their labels.
  EXPECT_NE(eng.events()[0].detail.find("queue_depth{queue=b}=70"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Burn-rate rule.

TEST(AlertBurnRate, RequiresBothWindowsAndClearsOnShortRecovery) {
  metrics::Registry reg;
  auto lat = reg.histogram("latency_s");
  AlertEngine eng{reg};
  BurnRateRule r;
  r.name = "slo-burn";
  r.histogram = "latency_s";
  r.slo_s = 0.25;
  r.target = 0.9;  // 10% error budget
  r.burn_threshold = 5.0;  // error rate >= 0.5
  r.short_window_ticks = 2;
  r.long_window_ticks = 4;
  r.clear_for_ticks = 2;
  eng.add_burn_rate(r);

  Clock c;
  const auto good = [&](int n) { for (int i = 0; i < n; ++i) lat.observe(0.001); };
  const auto bad = [&](int n) { for (int i = 0; i < n; ++i) lat.observe(10.0); };

  for (int t = 0; t < 5; ++t) {
    good(10);
    c.step(eng);
  }
  EXPECT_TRUE(eng.events().empty());

  // One bad tick: the short window breaches (10 bad / 20 -> burn 5) but the
  // long window is still diluted (10 / 40 -> burn 2.5) — no page for a blip.
  bad(10);
  c.step(eng);
  EXPECT_TRUE(eng.events().empty());

  // A second bad tick pushes the long window over too: fires.
  bad(10);
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_TRUE(eng.events()[0].firing);
  EXPECT_EQ(eng.events()[0].alert, "slo-burn");
  EXPECT_NE(eng.events()[0].detail.find("burn_short="), std::string::npos);
  EXPECT_NE(eng.events()[0].detail.find("burn_long="), std::string::npos);

  // Recovery: the short window must stay clean for clear_for_ticks.
  good(10);
  c.step(eng);  // short window still includes a bad tick: not clear
  EXPECT_EQ(eng.events().size(), 1u);
  good(10);
  c.step(eng);  // clear tick 1 (short window now all-good)
  EXPECT_EQ(eng.events().size(), 1u);
  good(10);
  c.step(eng);  // clear tick 2 resolves
  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_FALSE(eng.events()[1].firing);
}

TEST(AlertBurnRate, SilentWithNoTrafficAndValidatesConfig) {
  metrics::Registry reg;
  reg.histogram("latency_s");
  AlertEngine eng{reg};
  BurnRateRule r;
  r.name = "slo-burn";
  r.histogram = "latency_s";
  eng.add_burn_rate(r);
  Clock c;
  for (int t = 0; t < 40; ++t) c.step(eng);  // empty histogram: burn is 0, never fires
  EXPECT_TRUE(eng.events().empty());

  BurnRateRule bad_target;
  bad_target.name = "x";
  bad_target.target = 1.0;
  EXPECT_THROW(eng.add_burn_rate(bad_target), std::invalid_argument);
  BurnRateRule bad_windows;
  bad_windows.name = "y";
  bad_windows.short_window_ticks = 10;
  bad_windows.long_window_ticks = 5;
  EXPECT_THROW(eng.add_burn_rate(bad_windows), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stall watchdog.

TEST(AlertStall, FiresOnlyWhenArmedAndProgressStops) {
  metrics::Registry reg;
  auto completed = reg.counter("completed_total");
  auto in_flight = reg.gauge("in_flight");
  AlertEngine eng{reg};
  StallRule r;
  r.name = "progress-stall";
  r.progress = "completed_total";
  r.armed_gauge = "in_flight";
  r.armed_above = 0.0;
  r.for_ticks = 3;
  eng.add_stall(r);

  Clock c;
  // Idle (nothing outstanding): a flat counter is not a stall.
  in_flight.set(0.0);
  for (int t = 0; t < 6; ++t) c.step(eng);
  EXPECT_TRUE(eng.events().empty());

  // Progressing while loaded: fine.
  in_flight.set(8.0);
  for (int t = 0; t < 4; ++t) {
    completed.inc(5.0);
    c.step(eng);
  }
  EXPECT_TRUE(eng.events().empty());

  // Wedged: outstanding work, counter frozen.
  c.step(eng);
  c.step(eng);
  EXPECT_TRUE(eng.events().empty());  // 2 stalled ticks: still debouncing
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_TRUE(eng.events()[0].firing);
  EXPECT_NE(eng.events()[0].detail.find("stalled_ticks="), std::string::npos);

  completed.inc(1.0);  // progress resumes
  c.step(eng);
  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_FALSE(eng.events()[1].firing);
}

// ---------------------------------------------------------------------------
// Determinism, log format, trace and capture side effects.

std::string run_scripted_scenario() {
  metrics::Registry reg;
  auto depth = reg.gauge("queue_depth");
  auto lat = reg.histogram("latency_s");
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "depth-high";
  r.instrument = "queue_depth";
  r.fire_above = 100.0;
  eng.add_threshold(r);
  BurnRateRule b;
  b.name = "slo-burn";
  b.histogram = "latency_s";
  b.target = 0.9;
  b.burn_threshold = 5.0;
  b.short_window_ticks = 2;
  b.long_window_ticks = 3;
  b.clear_for_ticks = 1;
  eng.add_burn_rate(b);

  Clock c;
  for (int t = 0; t < 12; ++t) {
    depth.set(t >= 4 && t < 8 ? 500.0 + t : 10.0);
    for (int i = 0; i < 5; ++i) lat.observe(t >= 5 && t < 7 ? 3.0 : 0.002);
    c.step(eng);
  }
  return eng.log_text();
}

TEST(AlertEngineLog, SameScenarioProducesByteIdenticalLog) {
  const std::string a = run_scripted_scenario();
  const std::string b = run_scripted_scenario();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Spot-check the line grammar: "t=<s> FIRING <name> value=<v> threshold=<t> ..."
  EXPECT_EQ(a.rfind("t=0.4 FIRING depth-high value=504 threshold=100", 0), 0u);
}

TEST(AlertEngine, TransitionsEmitTraceInstantEvents) {
  metrics::Registry reg;
  auto depth = reg.gauge("queue_depth");
  sim::TraceRecorder trace;
  AlertEngine eng{reg};
  eng.set_trace(&trace);
  ThresholdRule r;
  r.name = "depth-high";
  r.instrument = "queue_depth";
  r.fire_above = 10.0;
  eng.add_threshold(r);

  Clock c;
  const std::size_t before = trace.event_count();
  depth.set(99.0);
  c.step(eng);
  depth.set(0.0);
  c.step(eng);
  EXPECT_EQ(trace.event_count(), before + 2);  // one instant per transition
}

TEST(AlertEngine, TriggeredCaptureForcesSamplerWithHoldOff) {
  metrics::Registry reg;
  auto depth = reg.gauge("queue_depth");
  trace::TraceSampler sampler{{.rate = 0.0}};  // head sampling takes nothing
  AlertEngine eng{reg};
  eng.set_triggered_sampler(&sampler, /*hold_ticks=*/2);
  ThresholdRule r;
  r.name = "depth-high";
  r.instrument = "queue_depth";
  r.fire_above = 10.0;
  eng.add_threshold(r);

  Clock c;
  depth.set(0.0);
  c.step(eng);
  EXPECT_FALSE(sampler.forced());
  EXPECT_FALSE(sampler.sample(1));

  depth.set(99.0);
  c.step(eng);  // fires: full capture from this tick on
  EXPECT_TRUE(sampler.forced());
  EXPECT_TRUE(sampler.sample(2));

  depth.set(0.0);
  c.step(eng);  // resolves, but capture holds for hold_ticks more ticks
  EXPECT_TRUE(sampler.forced());
  c.step(eng);  // last tick inside the hold-off
  EXPECT_TRUE(sampler.forced());
  c.step(eng);  // past the hold-off
  EXPECT_FALSE(sampler.forced());
  EXPECT_GT(eng.capture_ticks(), 0u);

  // Forced samples bypass the head-sampling cap but are counted.
  EXPECT_GT(sampler.forced_count(), 0u);
  eng.release_triggered_sampler();
  c.step(eng);  // no sampler bound: must not crash
}

// ---------------------------------------------------------------------------
// Flight-recorder integration: cadence, ring wrap, late-joining instruments.

TEST(AlertEngineRecorder, RingWrapAndLateJoinCannotMisfire) {
  sim::Simulator sim;
  metrics::Registry reg;
  // Tiny ring: 4 retained samples, 10 ms cadence — wraps after 40 ms.
  metrics::FlightRecorder rec{reg, {.period = sim::milliseconds(10), .capacity = 4}};
  auto lat = reg.histogram("latency_s");
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "depth-high";
  r.instrument = "late_gauge";
  r.fire_above = 100.0;
  r.for_ticks = 2;
  eng.add_threshold(r);
  BurnRateRule b;
  b.name = "slo-burn";
  b.histogram = "latency_s";
  b.target = 0.9;
  b.burn_threshold = 5.0;
  b.short_window_ticks = 2;
  b.long_window_ticks = 6;  // longer than the whole ring capacity
  b.clear_for_ticks = 2;
  eng.add_burn_rate(b);
  eng.attach(rec);

  rec.start(sim);
  // 50 ticks of healthy traffic: the ring wraps many times over; the burn
  // window must difference its own cumulative samples, not the wrapped ring.
  for (int t = 0; t < 50; ++t) {
    for (int i = 0; i < 4; ++i) lat.observe(0.001);
    sim.run_until(sim.now() + sim::milliseconds(10));
  }
  EXPECT_TRUE(eng.events().empty());
  EXPECT_GT(rec.ticks(), 40u);

  // Late join, well after the wrap: the rule's instrument appears now.
  auto late = reg.gauge("late_gauge");
  late.set(5.0);
  sim.run_until(sim.now() + sim::milliseconds(30));
  EXPECT_TRUE(eng.events().empty());

  late.set(500.0);
  sim.run_until(sim.now() + sim::milliseconds(30));
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_TRUE(eng.events()[0].firing);
  EXPECT_EQ(eng.events()[0].alert, "depth-high");

  // The burn rule still works across the wrap: two all-bad ticks fire it.
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 8; ++i) lat.observe(10.0);
    sim.run_until(sim.now() + sim::milliseconds(10));
  }
  EXPECT_TRUE(eng.ever_fired("slo-burn"));

  // Sanity: the ring really did wrap (first retained tick is far from 0).
  rec.stop();
  bool wrapped = false;
  for (const auto& s : rec.series()) wrapped = wrapped || s.start_tick > 0;
  EXPECT_TRUE(wrapped);
}

// ---------------------------------------------------------------------------
// Fleet integration: per-node labels from the balancer's health instruments.

TEST(AlertEngineFleet, NodeCrashFiresPerNodeLabeledAlert) {
  core::FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.gpus_per_node = {1, 1};
  spec.concurrency = 64;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(3.5);
  spec.audit = true;
  // Ejection needs the health-checked balancer: probes catch the crash and
  // move the node to kEjected, which is what drops fleet_node_state below the
  // rule's fire level.
  spec.server.balancer.policy = core::BalancerPolicy::kPowerOfTwo;
  spec.server.balancer.health.enabled = true;

  metrics::Registry reg;
  metrics::FlightRecorder rec{reg};
  AlertEngine eng{reg};
  ThresholdRule r;
  r.name = "node-down";
  r.instrument = "fleet_node_state";  // 1 healthy, 0.5 half-open, 0 ejected
  r.agg = ThresholdRule::Agg::kPerInstrument;
  r.fire_below = 0.75;
  r.clear_above = 0.9;
  eng.add_threshold(r);
  eng.attach(rec);
  spec.registry = &reg;
  spec.recorder = &rec;

  sim::FaultPlan faults;
  faults.node_crash(1, sim::seconds(1.0), sim::seconds(2.5));
  spec.faults = &faults;

  const auto res = core::run_fleet(spec);
  EXPECT_GT(res.completed, 0u);
  EXPECT_TRUE(eng.ever_fired("node-down{node=1}"));
  EXPECT_FALSE(eng.ever_fired("node-down{node=0}"));
}

}  // namespace
}  // namespace serve::obs
