// Tests for the video classification pipeline and its workload model.
#include <gtest/gtest.h>

#include "core/video_pipeline.h"
#include "workload/video.h"

namespace serve::core {
namespace {

TEST(VideoSpec, DerivedQuantities) {
  const workload::VideoSpec clip = workload::kHdClip;
  EXPECT_EQ(clip.frame_pixels(), 1280 * 720);
  EXPECT_EQ(clip.total_frames(), 300);
  // 10 s of 720p30 at 0.1 bpp ~ 3.5 MB — a realistic H.264 clip size.
  EXPECT_GT(clip.compressed_bytes(), 2'000'000);
  EXPECT_LT(clip.compressed_bytes(), 6'000'000);
}

TEST(VideoSpec, Validation) {
  workload::VideoSpec clip = workload::kSdClip;
  clip.sampled_frames = 0;
  EXPECT_THROW(clip.validate(), std::invalid_argument);
  clip = workload::kSdClip;
  clip.sampled_frames = 100000;  // more than the clip has
  EXPECT_THROW(clip.validate(), std::invalid_argument);
  clip = workload::kSdClip;
  clip.fps = 0;
  EXPECT_THROW(clip.validate(), std::invalid_argument);
}

VideoPipelineSpec base_spec() {
  VideoPipelineSpec spec;
  spec.clip = workload::kHdClip;
  spec.concurrency = 8;
  spec.warmup = sim::seconds(1.0);
  spec.measure = sim::seconds(8.0);
  return spec;
}

TEST(VideoPipeline, CompletesClipsAndConservesFrames) {
  const auto r = run_video_pipeline(base_spec());
  EXPECT_GT(r.clips, 20u);
  EXPECT_NEAR(r.frames_per_s / r.clips_per_s, 10.0, 0.5);  // 10 samples/clip
  EXPECT_GT(r.mean_latency_s, 0.0);
}

TEST(VideoPipeline, NvdecBeatsSoftwareDecode) {
  auto spec = base_spec();
  spec.decode = VideoDecodeDevice::kCpu;
  spec.sampling = SamplingMode::kDecodeAll;
  const auto sw = run_video_pipeline(spec);
  spec.decode = VideoDecodeDevice::kNvdec;
  const auto hw = run_video_pipeline(spec);
  EXPECT_GT(hw.clips_per_s, sw.clips_per_s);
  EXPECT_LT(hw.mean_latency_s, sw.mean_latency_s);
}

TEST(VideoPipeline, KeyframeSeekMuchFasterThanDecodeAll) {
  auto spec = base_spec();
  spec.decode = VideoDecodeDevice::kCpu;
  spec.sampling = SamplingMode::kDecodeAll;
  const auto all = run_video_pipeline(spec);
  spec.sampling = SamplingMode::kKeyframeSeek;
  const auto seek = run_video_pipeline(spec);
  // Decoding 300 frames vs ~20: sampling strategy dominates throughput.
  EXPECT_GT(seek.clips_per_s, all.clips_per_s * 3.0);
}

TEST(VideoPipeline, DecodeDominatesLikeThePaperSaysForStills) {
  // The paper's thesis extended to video: the DNN is not the bottleneck.
  // Zero load so scheduler queueing does not dilute the stage shares.
  auto spec = base_spec();
  spec.concurrency = 1;
  spec.decode = VideoDecodeDevice::kCpu;
  spec.sampling = SamplingMode::kDecodeAll;
  const auto r = run_video_pipeline(spec);
  EXPECT_GT(r.decode_share(), r.inference_share());
  EXPECT_GT(r.decode_share(), 0.5);
}

TEST(VideoPipeline, FourKCostsMoreThanSd) {
  auto spec = base_spec();
  spec.clip = workload::kSdClip;
  const auto sd = run_video_pipeline(spec);
  spec.clip = workload::k4kClip;
  const auto uhd = run_video_pipeline(spec);
  EXPECT_GT(sd.clips_per_s, uhd.clips_per_s * 3.0);
}

TEST(VideoPipeline, RejectsInvalidClip) {
  auto spec = base_spec();
  spec.clip.sampled_frames = -1;
  EXPECT_THROW((void)run_video_pipeline(spec), std::invalid_argument);
}

}  // namespace
}  // namespace serve::core
