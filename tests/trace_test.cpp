// Causal tracing subsystem tests: recorder JSON escaping and memory bounds,
// SpanContext wire format, deterministic sampling, CausalTracer id/arg
// plumbing, critical-path extraction, cross-broker context propagation
// (including FileLogBroker crash recovery), and same-seed reproducibility of
// full pipeline traces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "broker/file_log_broker.h"
#include "core/face_pipeline.h"
#include "core/video_pipeline.h"
#include "hw/image_spec.h"
#include "metrics/breakdown.h"
#include "serving/audit.h"
#include "serving/request.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "trace/causal.h"
#include "trace/critical_path.h"
#include "trace/span_context.h"

#include "../tools/json_mini.h"

using namespace serve;
using metrics::Stage;
using serving::RequestAuditor;
using trace::SpanContext;
using trace::SpanRecord;

namespace {

std::string to_json(const sim::TraceRecorder& rec) {
  std::ostringstream os;
  rec.write_chrome_json(os);
  return os.str();
}

jsonmini::Value parse_json(const std::string& text) {
  jsonmini::Parser p{text};
  auto v = p.parse();
  EXPECT_TRUE(v.has_value()) << p.error();
  return v.value_or(jsonmini::Value{});
}

/// Rebuilds SpanRecords from an exported trace the same way trace_analyze
/// does — the tests assert on the reconstructed trees, not the raw text.
std::vector<SpanRecord> spans_from_json(const std::string& text) {
  const jsonmini::Value doc = parse_json(text);
  const jsonmini::Value* events = doc.find("traceEvents");
  std::vector<SpanRecord> out;
  if (events == nullptr) return out;
  for (const jsonmini::Value& e : events->array) {
    if (e.str_or("ph", "") != "X") continue;
    const jsonmini::Value* args = e.find("args");
    if (args == nullptr) continue;
    const jsonmini::Value* tid = args->find("trace_id");
    if (tid == nullptr) continue;
    SpanRecord s;
    s.trace_id = std::strtoull(tid->str.c_str(), nullptr, 10);
    s.span_id = std::strtoull(args->str_or("span_id", "0").c_str(), nullptr, 10);
    s.parent_span_id =
        std::strtoull(args->str_or("parent_span_id", "0").c_str(), nullptr, 10);
    s.name = e.str_or("name", "");
    s.blame = args->str_or("blame", "");
    s.begin = static_cast<sim::Time>(e.num_or("ts", 0) * 1000.0);
    s.end = s.begin + static_cast<sim::Time>(e.num_or("dur", 0) * 1000.0);
    out.push_back(std::move(s));
  }
  return out;
}

// --- TraceRecorder: JSON escaping + bounded memory ---------------------------

TEST(TraceRecorder, EscapesQuotesBackslashesAndControlChars) {
  sim::TraceRecorder rec;
  const std::string hostile = "quote\" backslash\\ newline\n tab\t cr\r end";
  rec.span("trk", hostile, 0, sim::seconds(0.001), {{"blame", hostile}});
  rec.span("trk", "bell\x07", 0, sim::seconds(0.001));
  const std::string json = to_json(rec);
  // The export must be valid JSON and round-trip the hostile string exactly.
  const jsonmini::Value doc = parse_json(json);
  const jsonmini::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const jsonmini::Value& e : events->array) {
    if (e.str_or("ph", "") != "X" || e.str_or("name", "").rfind("quote", 0) != 0) continue;
    EXPECT_EQ(e.str_or("name", ""), hostile);
    const jsonmini::Value* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->str_or("blame", ""), hostile);
    found = true;
  }
  EXPECT_TRUE(found);
  // Raw control bytes must not appear unescaped in the output (an unescaped
  // 0x07 inside a string literal is what made pre-fix exports unparseable).
  EXPECT_EQ(json.find('\x07'), std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
}

TEST(TraceRecorder, EventCapDropsAndCounts) {
  sim::TraceRecorder rec;
  rec.set_max_events(2);
  rec.span("t", "a", 0, 1);
  rec.counter("c", 1.0, 0);
  rec.span("t", "b", 0, 1);  // over the cap
  rec.instant("t", "i", 0);  // over the cap
  EXPECT_EQ(rec.event_count(), 2u);
  EXPECT_EQ(rec.dropped_events(), 2u);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_EQ(rec.dropped_events(), 0u);
  rec.span("t", "after-clear", 0, 1);
  EXPECT_EQ(rec.span_count(), 1u);
}

// --- SpanContext wire format -------------------------------------------------

TEST(SpanContext, WireFormatRoundTrips) {
  const SpanContext ctx{123456789, 42, 7, true};
  const auto parsed = trace::from_wire(trace::to_wire(ctx));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ctx);
  const SpanContext unsampled{1, 2, 0, false};
  EXPECT_EQ(trace::from_wire(trace::to_wire(unsampled)), unsampled);
}

TEST(SpanContext, RejectsMalformedWireForms) {
  EXPECT_FALSE(trace::from_wire("").has_value());
  EXPECT_FALSE(trace::from_wire("svctx1;").has_value());
  EXPECT_FALSE(trace::from_wire("svctx1;1;2;3").has_value());      // missing flag
  EXPECT_FALSE(trace::from_wire("svctx1;1;2;3;2").has_value());    // bad flag
  EXPECT_FALSE(trace::from_wire("svctx1;1;x;3;0").has_value());    // non-digit
  EXPECT_FALSE(trace::from_wire("svctx2;1;2;3;0").has_value());    // bad magic
}

TEST(SpanContext, WrapUnwrapFramesPayloads) {
  const SpanContext ctx{9, 8, 7, true};
  const std::string wrapped = trace::wrap_with_context(ctx, "payload-bytes");
  const auto [got, payload] = trace::unwrap_context(wrapped);
  EXPECT_EQ(got, ctx);
  EXPECT_EQ(payload, "payload-bytes");
  // Unmarked records pass through untouched with an empty context.
  const auto [none, plain] = trace::unwrap_context("plain-record");
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(plain, "plain-record");
}

// --- deterministic sampling --------------------------------------------------

TEST(TraceSampler, HashModeIsDeterministicAcrossInstances) {
  const trace::SamplerOptions opts{.rate = 0.25, .seed = 99, .max_sampled = 1u << 30};
  trace::TraceSampler a{opts};
  trace::TraceSampler b{opts};
  std::uint64_t taken = 0;
  for (std::uint64_t id = 1; id <= 4000; ++id) {
    const bool hit = a.sample(id);
    EXPECT_EQ(hit, b.sample(id));
    taken += hit ? 1 : 0;
  }
  // Unbiased hash: close to the nominal rate over 4000 draws.
  EXPECT_GT(taken, 4000 * 0.25 * 0.7);
  EXPECT_LT(taken, 4000 * 0.25 * 1.3);
  // A different seed flips some decisions.
  trace::TraceSampler c{{.rate = 0.25, .seed = 100, .max_sampled = 1u << 30}};
  std::uint64_t diff = 0;
  trace::TraceSampler a2{opts};
  for (std::uint64_t id = 1; id <= 4000; ++id) {
    diff += a2.sample(id) != c.sample(id) ? 1 : 0;
  }
  EXPECT_GT(diff, 0u);
}

TEST(TraceSampler, StrideAndFirstNModes) {
  trace::TraceSampler stride{{.mode = trace::SampleMode::kStride, .stride = 10, .phase = 3,
                              .max_sampled = 1000}};
  EXPECT_TRUE(stride.sample(3));
  EXPECT_TRUE(stride.sample(13));
  EXPECT_FALSE(stride.sample(14));
  trace::TraceSampler first{{.mode = trace::SampleMode::kFirstN, .max_sampled = 2}};
  EXPECT_TRUE(first.sample(100));
  EXPECT_TRUE(first.sample(200));
  EXPECT_FALSE(first.sample(300));  // capped
  EXPECT_EQ(first.sampled_count(), 2u);
}

TEST(TraceSampler, MaxSampledCapsEveryMode) {
  trace::TraceSampler s{{.rate = 1.0, .max_sampled = 3}};
  std::uint64_t taken = 0;
  for (std::uint64_t id = 1; id <= 10; ++id) taken += s.sample(id) ? 1 : 0;
  EXPECT_EQ(taken, 3u);
}

// --- CausalTracer ------------------------------------------------------------

TEST(CausalTracer, RecordsCausalIdentityAsArgs) {
  sim::TraceRecorder rec;
  trace::CausalTracer tracer{&rec};
  const SpanContext root = tracer.begin_trace(true);
  tracer.record(root, "trk", "root", 0, sim::seconds(0.01));
  const SpanContext child =
      tracer.child_span(root, "trk", "stage", 0, sim::seconds(0.005), {{"blame", "wait"}});
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  const auto spans = spans_from_json(to_json(rec));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, root.trace_id);
  EXPECT_EQ(spans[1].parent_span_id, root.span_id);
  EXPECT_EQ(spans[1].blame, "wait");
}

TEST(CausalTracer, UnsampledContextsAllocateIdsButRecordNothing) {
  sim::TraceRecorder rec;
  trace::CausalTracer tracer{&rec};
  const SpanContext root = tracer.begin_trace(false);
  EXPECT_TRUE(root.valid());
  const SpanContext child = tracer.child_span(root, "trk", "stage", 0, 5);
  EXPECT_NE(child.span_id, 0u);  // id assignment independent of sampling
  tracer.record(root, "trk", "root", 0, 10);
  EXPECT_EQ(rec.span_count(), 0u);
  EXPECT_EQ(tracer.spans_recorded(), 0u);
}

// --- RequestAuditor integration ----------------------------------------------

TEST(RequestAuditor, EmitsParentLinkedStageSpans) {
  sim::Simulator sim;
  sim::TraceRecorder rec;
  trace::CausalTracer tracer{&rec};
  RequestAuditor audit{RequestAuditor::Options{.sampler = {.rate = 1.0}}};
  audit.set_trace(&rec);
  audit.set_causal_tracer(&tracer);
  serving::Request req{sim, 5, hw::kMediumImage};
  audit.on_submit(req);
  EXPECT_TRUE(req.trace_ctx.valid());
  req.charge(Stage::kQueue, sim::seconds(0.3), "host-core");
  req.charge(Stage::kInference, sim::seconds(0.7));
  req.completed = sim::seconds(1.0);
  audit.on_complete(req);
  const auto spans = spans_from_json(to_json(rec));
  ASSERT_EQ(spans.size(), 3u);  // queue + inference + root request span
  std::uint64_t root_span = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "request") root_span = s.span_id;
  }
  ASSERT_NE(root_span, 0u);
  for (const SpanRecord& s : spans) {
    if (s.name == "request") continue;
    EXPECT_EQ(s.parent_span_id, root_span) << s.name;
    if (s.name == "queue") EXPECT_EQ(s.blame, "host-core");
  }
  const auto paths = trace::extract_critical_paths(spans);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].orphan_count, 0u);
}

TEST(RequestAuditor, AdoptsIncomingContextForRetries) {
  sim::Simulator sim;
  sim::TraceRecorder rec;
  trace::CausalTracer tracer{&rec};
  RequestAuditor audit{RequestAuditor::Options{.sampler = {.rate = 0.0}}};
  audit.set_trace(&rec);
  audit.set_causal_tracer(&tracer);
  // The client carries the first attempt's context into the retry; even
  // with a zero sampling rate the adopted trace keeps recording.
  const SpanContext first_attempt = tracer.begin_trace(true);
  serving::Request req{sim, 77, hw::kMediumImage};
  req.trace_ctx = first_attempt;
  audit.on_submit(req);
  EXPECT_EQ(req.trace_ctx.trace_id, first_attempt.trace_id);
  EXPECT_EQ(req.trace_ctx.parent_span_id, first_attempt.span_id);
  req.charge(Stage::kInference, sim::seconds(0.1));
  req.completed = sim::seconds(0.1);
  audit.on_complete(req);
  EXPECT_GT(rec.span_count(), 0u);
}

// --- critical-path extraction ------------------------------------------------

std::vector<SpanRecord> make_tree() {
  // root [0,100]; sequential children A [0,40] and B [50,100]; the 10ns gap
  // between them is the root's own (self) time.
  std::vector<SpanRecord> spans;
  spans.push_back({1, 10, 0, "root", "t", "", 0, 100});
  spans.push_back({1, 11, 10, "A", "t", "", 0, 40});
  spans.push_back({1, 12, 10, "B", "t", "wait", 50, 100});
  return spans;
}

TEST(CriticalPath, AttributesGapsToParentAndTilesExactly) {
  const auto spans = make_tree();
  const auto paths = trace::extract_critical_paths(spans);
  ASSERT_EQ(paths.size(), 1u);
  const trace::CriticalPath& p = paths[0];
  ASSERT_NE(p.root, nullptr);
  EXPECT_EQ(p.total, 100);
  sim::Time sum = 0;
  for (const auto& step : p.steps) sum += step.attributed;
  EXPECT_EQ(sum, p.total);  // exact tiling invariant
  EXPECT_EQ(p.by_name.at("A"), 40);
  EXPECT_EQ(p.by_name.at("B"), 50);
  EXPECT_EQ(p.by_name.at("root"), 10);  // the uncovered gap
}

TEST(CriticalPath, FollowsAsyncDescendantsPastDirectChildren) {
  // The child ending last (C at 60) is NOT on the critical path: child A
  // ends early but its grandchild G runs until 95 — subtree end decides.
  std::vector<SpanRecord> spans;
  spans.push_back({1, 1, 0, "root", "t", "", 0, 100});
  spans.push_back({1, 2, 1, "A", "t", "", 0, 30});
  spans.push_back({1, 3, 2, "G", "t", "", 20, 95});
  spans.push_back({1, 4, 1, "C", "t", "", 10, 60});
  const auto paths = trace::extract_critical_paths(spans);
  ASSERT_EQ(paths.size(), 1u);
  const trace::CriticalPath& p = paths[0];
  EXPECT_GT(p.by_name.at("G"), 0);
  EXPECT_EQ(p.by_name.count("C"), 0u);  // not causally binding
  sim::Time sum = 0;
  for (const auto& step : p.steps) sum += step.attributed;
  EXPECT_EQ(sum, p.total);
}

TEST(CriticalPath, CountsOrphansAndSeparatesTraces) {
  std::vector<SpanRecord> spans = make_tree();
  spans.push_back({1, 13, 999, "lost", "t", "", 5, 9});  // unresolvable parent
  spans.push_back({2, 20, 0, "other-root", "t", "", 0, 50});
  const auto paths = trace::extract_critical_paths(spans);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].orphan_count, 1u);
  EXPECT_EQ(paths[1].orphan_count, 0u);
  EXPECT_EQ(paths[1].total, 50);
}

// --- cross-broker propagation ------------------------------------------------

class TraceLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("servescope_trace_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(TraceLogTest, ContextSurvivesFileLogCrashRecovery) {
  const SpanContext ctx{31, 41, 59, true};
  {
    broker::FileLogBroker log{{.dir = dir_}};
    log.publish("detected-face-0", ctx);
    log.publish("detected-face-1", ctx);
  }
  // Crash mid-append: a torn header at the tail, then Kafka-style recovery.
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) seg = e.path();
  {
    std::ofstream f{seg, std::ios::binary | std::ios::app};
    f.write("\x40\x00", 2);
  }
  broker::FileLogBroker recovered{{.dir = dir_, .tolerate_torn_tail = true}};
  ASSERT_EQ(recovered.size(), 2u);
  const auto rec = recovered.read_traced(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->payload, "detected-face-1");
  EXPECT_EQ(rec->ctx, ctx);  // parent link intact across the crash
  // Untraced publishes still read back with an empty context.
  recovered.publish("plain");
  EXPECT_FALSE(recovered.read_traced(2)->ctx.valid());
}

// --- same-seed reproducibility ----------------------------------------------

std::string traced_face_pipeline_json() {
  sim::TraceRecorder rec;
  trace::CausalTracer tracer{&rec};
  core::FacePipelineSpec spec;
  spec.broker = core::BrokerKind::kKafka;
  spec.faces_per_frame = 3;
  spec.concurrency = 4;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(2.0);
  spec.tracer = &tracer;
  spec.trace_sampler = {.rate = 1.0, .max_sampled = 1u << 20};
  spec.trace_label = "repro";
  const auto r = core::run_face_pipeline(spec);
  EXPECT_GT(r.frames, 0u);
  return to_json(rec);
}

TEST(FacePipelineTrace, SameSeedRunsExportByteIdenticalTraces) {
  const std::string a = traced_face_pipeline_json();
  const std::string b = traced_face_pipeline_json();
  EXPECT_EQ(a, b);  // byte-identical, not merely similar
  EXPECT_NE(a.find("trace_id"), std::string::npos);
}

TEST(VideoPipelineTrace, ClipTracesResolveAndReproduce) {
  auto run = [] {
    sim::TraceRecorder rec;
    trace::CausalTracer tracer{&rec};
    core::VideoPipelineSpec spec;
    spec.concurrency = 4;
    spec.warmup = sim::seconds(0.5);
    spec.measure = sim::seconds(2.0);
    spec.tracer = &tracer;
    spec.trace_sampler = {.rate = 1.0, .max_sampled = 1u << 20};
    spec.trace_label = "video";
    (void)core::run_video_pipeline(spec);
    return to_json(rec);
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  const auto spans = spans_from_json(a);
  ASSERT_FALSE(spans.empty());
  for (const auto& p : trace::extract_critical_paths(spans)) {
    EXPECT_EQ(p.orphan_count, 0u);
    EXPECT_EQ(p.root_count, 1u);
  }
}

TEST(FacePipelineTrace, CascadeFormsOneTreePerFrameAcrossTheBroker) {
  const auto spans = spans_from_json(traced_face_pipeline_json());
  ASSERT_FALSE(spans.empty());
  const auto paths = trace::extract_critical_paths(spans);
  ASSERT_FALSE(paths.empty());
  bool saw_broker = false;
  for (const auto& p : paths) {
    ASSERT_NE(p.root, nullptr);
    EXPECT_EQ(p.orphan_count, 0u);  // every hop's parent link resolves
    EXPECT_EQ(p.root_count, 1u);
    if (p.by_name.count("broker") != 0) saw_broker = true;
    sim::Time sum = 0;
    for (const auto& step : p.steps) sum += step.attributed;
    EXPECT_EQ(sum, p.total);
  }
  EXPECT_TRUE(saw_broker);  // the publish/deliver hop is part of the tree
}

}  // namespace
