// Property tests pinning every SIMD kernel tier to the scalar semantic
// definition (codec/simd_kernels.h). The scalar table is the oracle; SSE2
// and AVX2 must match it within the documented contracts: ±1 LSB on u8
// outputs, bit-exact normalize, exact upsample.
//
// The sweeps deliberately hit the awkward cases vector code gets wrong:
// odd widths covering every remainder modulo the widest lane count,
// unaligned row pointers (heap allocation + 1 element), and exact-size
// buffers so the ASan job catches any tail over-read the `avail` contracts
// forbid. Tiers are capped at cpu::detected_tier(), which honors
// SERVESCOPE_FORCE_SCALAR / SERVESCOPE_SIMD — the forced-scalar CI leg
// runs these tests against the scalar table only, by design.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "codec/cpu_features.h"
#include "codec/dct.h"
#include "codec/image.h"
#include "codec/jpeg.h"
#include "codec/simd_kernels.h"
#include "codec/synthetic.h"
#include "codec/transform.h"

namespace {

using namespace serve::codec;

// Widths covering every tail-lane remainder for 16-wide u8 kernels, plus a
// few larger sizes that exercise full vector bodies with a straggler tail.
const int kWidths[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12,
                       13, 14, 15, 16, 17, 31, 33, 63, 64, 100, 333};

/// Runs `fn(tier, table)` for every non-scalar tier this build carries and
/// the current configuration permits (env caps included, so the forced-
/// scalar leg sweeps nothing here and the scalar-vs-scalar identity holds
/// trivially elsewhere).
template <typename Fn>
void for_each_simd_tier(Fn&& fn) {
  int swept = 0;
  for (cpu::SimdTier t : {cpu::SimdTier::kSse2, cpu::SimdTier::kAvx2}) {
    if (!simd::tier_compiled(t)) continue;
    if (static_cast<int>(t) > static_cast<int>(cpu::detected_tier())) continue;
    SCOPED_TRACE(std::string("tier=") + std::string(cpu::tier_name(t)));
    fn(t, simd::kernels_for(t));
    ++swept;
  }
  if (swept == 0) {
    GTEST_LOG_(INFO) << "no SIMD tier available (scalar-only build, host, or "
                        "SERVESCOPE_FORCE_SCALAR); oracle-vs-oracle is vacuous";
  }
}

TEST(SimdDispatch, ScalarTableAlwaysCompiledAndSupported) {
  EXPECT_TRUE(simd::tier_compiled(cpu::SimdTier::kScalar));
  EXPECT_TRUE(cpu::tier_supported(cpu::SimdTier::kScalar));
  // The dispatched table for the scalar tier is the scalar table itself.
  EXPECT_EQ(&simd::kernels_for(cpu::SimdTier::kScalar), &simd::kScalarKernels);
}

TEST(SimdDispatch, SetActiveTierRoundTrip) {
  const cpu::SimdTier original = cpu::active_tier();
  cpu::set_active_tier(cpu::SimdTier::kScalar);
  EXPECT_EQ(cpu::active_tier(), cpu::SimdTier::kScalar);
  EXPECT_EQ(&simd::kernels(), &simd::kScalarKernels);
  cpu::set_active_tier(original);
  EXPECT_EQ(cpu::active_tier(), original);
}

TEST(SimdDispatch, UnsupportedTierThrows) {
  // Find a tier the host/build cannot run, if any.
  for (cpu::SimdTier t : {cpu::SimdTier::kAvx2, cpu::SimdTier::kSse2}) {
    if (!cpu::tier_supported(t)) {
      EXPECT_THROW(cpu::set_active_tier(t), std::invalid_argument);
    }
  }
}

TEST(SimdEquivalence, Idct8x8ScaledMatchesScalar) {
  std::mt19937 rng{20240807};
  std::uniform_real_distribution<float> coeff{-1024.0f, 1024.0f};
  std::uniform_int_distribution<int> sparsity{0, 63};
  const auto& prescale = jpeg::idct_prescale();
  for_each_simd_tier([&](cpu::SimdTier, const simd::KernelTable& K) {
    for (int round = 0; round < 200; ++round) {
      float in[64], ref[64], got[64];
      // Mix dense blocks with DC-heavy sparse ones (the common decode case).
      const int keep = (round % 2 == 0) ? 64 : sparsity(rng);
      for (int i = 0; i < 64; ++i) {
        in[i] = (i <= keep ? coeff(rng) : 0.0f) * prescale[static_cast<std::size_t>(i)];
      }
      simd::kScalarKernels.idct8x8_scaled(in, ref);
      K.idct8x8_scaled(in, got);
      for (int i = 0; i < 64; ++i) {
        // Outputs feed a +128/round/clamp to u8; well under half an LSB of
        // float drift keeps the pixel within the ±1 LSB decode contract.
        ASSERT_NEAR(got[i], ref[i], 0.05f) << "block " << round << " idx " << i;
      }
    }
  });
}

TEST(SimdEquivalence, YcbcrToRgbRowWithinOneLsb) {
  std::mt19937 rng{7};
  // Past-the-gamut values exercise both clamp edges.
  std::uniform_real_distribution<float> ydist{-40.0f, 300.0f};
  std::uniform_real_distribution<float> cdist{-32.0f, 288.0f};
  for_each_simd_tier([&](cpu::SimdTier, const simd::KernelTable& K) {
    for (int n : kWidths) {
      const auto un = static_cast<std::size_t>(n);
      // +1 slot so the kernel sees a deliberately unaligned row pointer;
      // outputs are exact-size so ASan flags any tail overwrite.
      std::vector<float> y(un + 1), cb(un + 1), cr(un + 1);
      for (std::size_t i = 1; i <= un; ++i) {
        y[i] = ydist(rng);
        cb[i] = cdist(rng);
        cr[i] = cdist(rng);
      }
      std::vector<std::uint8_t> ref(un * 3), got(un * 3);
      simd::kScalarKernels.ycbcr_to_rgb_row(y.data() + 1, cb.data() + 1,
                                            cr.data() + 1, ref.data(), n);
      K.ycbcr_to_rgb_row(y.data() + 1, cb.data() + 1, cr.data() + 1, got.data(), n);
      for (std::size_t i = 0; i < un * 3; ++i) {
        ASSERT_LE(std::abs(int(got[i]) - int(ref[i])), 1)
            << "n=" << n << " byte " << i;
      }
    }
  });
}

TEST(SimdEquivalence, GrayToU8RowWithinOneLsb) {
  std::mt19937 rng{11};
  std::uniform_real_distribution<float> ydist{-40.0f, 300.0f};
  for_each_simd_tier([&](cpu::SimdTier, const simd::KernelTable& K) {
    for (int n : kWidths) {
      const auto un = static_cast<std::size_t>(n);
      std::vector<float> y(un + 1);
      for (std::size_t i = 1; i <= un; ++i) y[i] = ydist(rng);
      std::vector<std::uint8_t> ref(un), got(un);
      simd::kScalarKernels.gray_to_u8_row(y.data() + 1, ref.data(), n);
      K.gray_to_u8_row(y.data() + 1, got.data(), n);
      for (std::size_t i = 0; i < un; ++i) {
        ASSERT_LE(std::abs(int(got[i]) - int(ref[i])), 1) << "n=" << n << " i=" << i;
      }
    }
  });
}

TEST(SimdEquivalence, ResizeHpassRowMatchesScalar) {
  std::mt19937 rng{13};
  std::uniform_int_distribution<int> byte{0, 255};
  std::uniform_real_distribution<float> wdist{0.0f, 1.0f};
  for_each_simd_tier([&](cpu::SimdTier, const simd::KernelTable& K) {
    for (int ch : {1, 3}) {
      for (int dst_w : kWidths) {
        const int src_w = 2 * dst_w + 3;  // odd source width, general mapping
        const auto udw = static_cast<std::size_t>(dst_w);
        const std::size_t srow_bytes =
            static_cast<std::size_t>(src_w) * static_cast<std::size_t>(ch);
        // Exact-size source row: `srow_avail` is tight, so a kernel that
        // vector-loads past its stated bound trips ASan here.
        std::vector<std::uint8_t> srow(srow_bytes);
        for (auto& v : srow) v = static_cast<std::uint8_t>(byte(rng));
        std::vector<int> i0(udw), i1(udw);
        std::vector<float> w1(udw);
        std::uniform_int_distribution<int> idx{0, src_w - 2};
        for (std::size_t x = 0; x < udw; ++x) {
          i0[x] = idx(rng);
          i1[x] = i0[x] + 1;
          w1[x] = wdist(rng);
        }
        // Last destination pixel pinned to the final source pixel: the
        // resizer's edge case where p0 == p1 == last texel.
        i0[udw - 1] = i1[udw - 1] = src_w - 1;
        w1[udw - 1] = 0.0f;
        std::vector<float> ref(udw * static_cast<std::size_t>(ch));
        std::vector<float> got(udw * static_cast<std::size_t>(ch));
        simd::kScalarKernels.resize_hpass_row(srow.data(), ref.data(), i0.data(),
                                              i1.data(), w1.data(), dst_w, ch,
                                              srow_bytes);
        K.resize_hpass_row(srow.data(), got.data(), i0.data(), i1.data(),
                           w1.data(), dst_w, ch, srow_bytes);
        for (std::size_t i = 0; i < ref.size(); ++i) {
          ASSERT_NEAR(got[i], ref[i], 2e-2f)
              << "ch=" << ch << " dst_w=" << dst_w << " i=" << i;
        }
      }
    }
  });
}

TEST(SimdEquivalence, ResizeVpassRowWithinOneLsb) {
  std::mt19937 rng{17};
  std::uniform_real_distribution<float> pix{-2.0f, 257.0f};
  std::uniform_real_distribution<float> wdist{0.0f, 1.0f};
  for_each_simd_tier([&](cpu::SimdTier, const simd::KernelTable& K) {
    for (int n : kWidths) {
      const auto un = static_cast<std::size_t>(n);
      std::vector<float> r0(un + 1), r1(un + 1);
      for (std::size_t i = 1; i <= un; ++i) {
        r0[i] = pix(rng);
        r1[i] = pix(rng);
      }
      for (float w : {0.0f, 1.0f, wdist(rng)}) {
        std::vector<std::uint8_t> ref(un), got(un);
        simd::kScalarKernels.resize_vpass_row(r0.data() + 1, r1.data() + 1, w,
                                              ref.data(), un);
        K.resize_vpass_row(r0.data() + 1, r1.data() + 1, w, got.data(), un);
        for (std::size_t i = 0; i < un; ++i) {
          ASSERT_LE(std::abs(int(got[i]) - int(ref[i])), 1)
              << "n=" << n << " w=" << w << " i=" << i;
        }
      }
    }
  });
}

TEST(SimdEquivalence, Upsample2RowExact) {
  std::mt19937 rng{19};
  std::uniform_real_distribution<float> pix{0.0f, 255.0f};
  for_each_simd_tier([&](cpu::SimdTier, const simd::KernelTable& K) {
    for (int dst_n : kWidths) {
      const auto udn = static_cast<std::size_t>(dst_n);
      const std::size_t src_n = (udn + 1) / 2;
      std::vector<float> src(src_n + 1);
      for (std::size_t i = 1; i <= src_n; ++i) src[i] = pix(rng);
      std::vector<float> ref(udn), got(udn);
      simd::kScalarKernels.upsample2_row(src.data() + 1, ref.data(), dst_n);
      K.upsample2_row(src.data() + 1, got.data(), dst_n);
      for (std::size_t i = 0; i < udn; ++i) {
        // A pure gather/duplicate: bit-exact, no tolerance.
        ASSERT_EQ(got[i], ref[i]) << "dst_n=" << dst_n << " i=" << i;
      }
    }
  });
}

TEST(SimdEquivalence, NormalizeRgbRowBitExact) {
  std::mt19937 rng{23};
  std::uniform_int_distribution<int> byte{0, 255};
  const float mean[3] = {0.485f, 0.456f, 0.406f};
  const float inv_std[3] = {1.0f / 0.229f, 1.0f / 0.224f, 1.0f / 0.225f};
  for_each_simd_tier([&](cpu::SimdTier, const simd::KernelTable& K) {
    for (int n : kWidths) {
      const auto un = static_cast<std::size_t>(n);
      std::vector<std::uint8_t> p(un * 3 + 1);
      for (std::size_t i = 1; i < p.size(); ++i) {
        p[i] = static_cast<std::uint8_t>(byte(rng));
      }
      std::vector<float> rr(un), rg(un), rb(un), gr(un), gg(un), gb(un);
      simd::kScalarKernels.normalize_rgb_row(p.data() + 1, rr.data(), rg.data(),
                                             rb.data(), un, mean, inv_std);
      K.normalize_rgb_row(p.data() + 1, gr.data(), gg.data(), gb.data(), un,
                          mean, inv_std);
      for (std::size_t i = 0; i < un; ++i) {
        // Contract in simd_kernels.h: bit-exact against the scalar formula.
        ASSERT_EQ(gr[i], rr[i]) << "n=" << n << " r[" << i << "]";
        ASSERT_EQ(gg[i], rg[i]) << "n=" << n << " g[" << i << "]";
        ASSERT_EQ(gb[i], rb[i]) << "n=" << n << " b[" << i << "]";
      }
    }
  });
}

TEST(SimdEquivalence, FullDecodeTierSweepWithinOneLsb) {
  // End-to-end: the same JPEG decoded with dispatch pinned to each available
  // tier must agree pixel-wise within ±1 with the scalar decode. Odd
  // dimensions force subsampled chroma edge blocks and resize tails.
  const Image img = make_synthetic(157, 101, Pattern::kScene, 3);
  const auto bytes = encode_jpeg(img, {.quality = 90});

  const cpu::SimdTier original = cpu::active_tier();
  cpu::set_active_tier(cpu::SimdTier::kScalar);
  const Image scalar_decoded = decode_jpeg(bytes);
  const Image scalar_resized = resize(scalar_decoded, 64, 48);

  for_each_simd_tier([&](cpu::SimdTier t, const simd::KernelTable&) {
    cpu::set_active_tier(t);
    const Image d = decode_jpeg(bytes);
    ASSERT_EQ(d.width(), scalar_decoded.width());
    ASSERT_EQ(d.height(), scalar_decoded.height());
    const auto& a = scalar_decoded.data();
    const auto& b = d.data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_LE(std::abs(int(a[i]) - int(b[i])), 1) << "decode byte " << i;
    }
    const Image r = resize(d, 64, 48);
    const auto& ra = scalar_resized.data();
    const auto& rb = r.data();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      // Decode drift of ±1 on the resize input can add ±1 more after
      // rounding; the end-to-end budget is therefore 2.
      ASSERT_LE(std::abs(int(ra[i]) - int(rb[i])), 2) << "resize byte " << i;
    }
  });
  cpu::set_active_tier(original);
}

}  // namespace
