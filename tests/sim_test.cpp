// Tests for the discrete-event simulation kernel: determinism, causality,
// channel semantics, resource fairness, and process lifecycle.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sim/channel.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace serve::sim {
namespace {

Process delayed_append(Simulator& sim, std::vector<int>& out, Time delay, int id) {
  co_await sim.wait(delay);
  out.push_back(id);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.spawn(delayed_append(sim, order, milliseconds(3), 3));
  sim.spawn(delayed_append(sim, order, milliseconds(1), 1));
  sim.spawn(delayed_append(sim, order, milliseconds(2), 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(3));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.spawn(delayed_append(sim, order, milliseconds(5), i));
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInPastThrows) {
  Simulator sim;
  sim.schedule_at(milliseconds(1), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0, [] {}), std::logic_error);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(3), [&] { ++fired; });
  sim.run_until(seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(2));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepLimitGuardsRunaway) {
  Simulator sim;
  // A self-rescheduling zero-delay event never terminates.
  std::function<void()> loop = [&] { sim.post(loop); };
  sim.post(loop);
  EXPECT_THROW(sim.run(10'000), std::runtime_error);
}

TEST(Simulator, NestedSpawnRunsAtCurrentTime) {
  Simulator sim;
  std::vector<Time> times;
  auto inner = [](Simulator& s, std::vector<Time>& t) -> Process {
    t.push_back(s.now());
    co_return;
  };
  auto outer = [&inner](Simulator& s, std::vector<Time>& t) -> Process {
    co_await s.wait(milliseconds(7));
    s.spawn(inner(s, t));
    co_await s.wait(milliseconds(1));
    t.push_back(s.now());
  };
  sim.spawn(outer(sim, times));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], milliseconds(7));
  EXPECT_EQ(times[1], milliseconds(8));
}

TEST(Simulator, AbandonedProcessReclaimedAtDestruction) {
  auto waits_forever = [](Simulator&, Channel<int>& ch) -> Process {
    auto v = co_await ch.get();  // never satisfied
    (void)v;
  };
  Simulator sim;
  Channel<int> ch{sim};
  sim.spawn(waits_forever(sim, ch));
  sim.run();
  EXPECT_EQ(sim.live_processes(), 1u);
  // Destructor must reclaim the suspended frame (ASAN-clean).
}

// --- Channel semantics -----------------------------------------------------

Process producer(Simulator& sim, Channel<int>& ch, int n, Time gap) {
  for (int i = 0; i < n; ++i) {
    co_await sim.wait(gap);
    co_await ch.put(i);
  }
  ch.close();
}

Process consumer(Simulator& sim, Channel<int>& ch, std::vector<int>& out) {
  (void)sim;
  while (true) {
    auto v = co_await ch.get();
    if (!v) break;
    out.push_back(*v);
  }
}

TEST(Channel, FifoDeliveryAndClose) {
  Simulator sim;
  Channel<int> ch{sim, 4};
  std::vector<int> out;
  sim.spawn(producer(sim, ch, 20, microseconds(10)));
  sim.spawn(consumer(sim, ch, out));
  sim.run();
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Channel, BoundedCapacityBlocksProducer) {
  Simulator sim;
  Channel<int> ch{sim, 2};
  Time producer_done = -1;
  auto fast_producer = [&](Simulator& s) -> Process {
    for (int i = 0; i < 4; ++i) co_await ch.put(i);
    producer_done = s.now();
    ch.close();
  };
  auto slow_consumer = [&](Simulator& s) -> Process {
    while (true) {
      co_await s.wait(milliseconds(10));
      auto v = co_await ch.get();
      if (!v) break;
    }
  };
  sim.spawn(fast_producer(sim));
  sim.spawn(slow_consumer(sim));
  sim.run();
  // Producer must have been blocked until the consumer drained 2 elements:
  // capacity 2 means items 0,1 buffer instantly, 2 and 3 wait for gets at
  // t=10ms and t=20ms.
  EXPECT_EQ(producer_done, milliseconds(20));
}

TEST(Channel, GetUntilTimesOut) {
  Simulator sim;
  Channel<int> ch{sim};
  std::optional<int> got{42};
  Time resumed_at = -1;
  auto waiter = [&](Simulator& s) -> Process {
    got = co_await ch.get_until(milliseconds(5));
    resumed_at = s.now();
  };
  sim.spawn(waiter(sim));
  sim.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(resumed_at, milliseconds(5));
}

TEST(Channel, GetUntilReceivesBeforeDeadline) {
  Simulator sim;
  Channel<int> ch{sim};
  std::optional<int> got;
  auto waiter = [&](Simulator&) -> Process { got = co_await ch.get_until(milliseconds(5)); };
  auto sender = [&](Simulator& s) -> Process {
    co_await s.wait(milliseconds(2));
    co_await ch.put(99);
  };
  sim.spawn(waiter(sim));
  sim.spawn(sender(sim));
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 99);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Channel, PutToClosedThrows) {
  Simulator sim;
  Channel<int> ch{sim};
  ch.close();
  EXPECT_THROW(ch.try_put(1), ChannelClosed);
}

TEST(Channel, CloseWakesBlockedGetters) {
  Simulator sim;
  Channel<int> ch{sim};
  int finished = 0;
  auto waiter = [&](Simulator&) -> Process {
    auto v = co_await ch.get();
    EXPECT_FALSE(v.has_value());
    ++finished;
  };
  sim.spawn(waiter(sim));
  sim.spawn(waiter(sim));
  auto closer = [&](Simulator& s) -> Process {
    co_await s.wait(milliseconds(1));
    ch.close();
  };
  sim.spawn(closer(sim));
  sim.run();
  EXPECT_EQ(finished, 2);
}

TEST(Channel, DrainAfterCloseDeliversBufferedItems) {
  Simulator sim;
  Channel<int> ch{sim};
  ASSERT_TRUE(ch.try_put(7));
  ch.close();
  std::vector<int> out;
  sim.spawn(consumer(sim, ch, out));
  sim.run();
  EXPECT_EQ(out, std::vector<int>{7});
}

// --- Resource semantics ----------------------------------------------------

TEST(Resource, LimitsConcurrency) {
  Simulator sim;
  Resource workers{sim, 2, "workers"};
  std::size_t peak = 0;
  std::size_t active = 0;
  WaitGroup wg{sim};
  auto job = [&](Simulator& s) -> Process {
    auto tok = co_await workers.acquire();
    ++active;
    peak = std::max(peak, active);
    co_await s.wait(milliseconds(10));
    --active;
    tok.release();
    wg.done();
  };
  for (int i = 0; i < 8; ++i) {
    wg.add();
    sim.spawn(job(sim));
  }
  sim.run();
  EXPECT_EQ(peak, 2u);
  EXPECT_EQ(sim.now(), milliseconds(40));  // 8 jobs / 2 workers * 10ms
  EXPECT_EQ(workers.in_use(), 0u);
}

TEST(Resource, FifoGrantOrder) {
  Simulator sim;
  Resource r{sim, 1};
  std::vector<int> grant_order;
  auto job = [&](Simulator& s, int id, Time arrive) -> Process {
    co_await s.wait(arrive);
    auto tok = co_await r.acquire();
    grant_order.push_back(id);
    co_await s.wait(milliseconds(100));
  };
  sim.spawn(job(sim, 1, milliseconds(0)));
  sim.spawn(job(sim, 2, milliseconds(1)));
  sim.spawn(job(sim, 3, milliseconds(2)));
  sim.run();
  EXPECT_EQ(grant_order, (std::vector<int>{1, 2, 3}));
}

TEST(Resource, TokenReleasesOnScopeExit) {
  Simulator sim;
  Resource r{sim, 1};
  int second_ran = 0;
  auto first = [&](Simulator& s) -> Process {
    {
      auto tok = co_await r.acquire();
      co_await s.wait(milliseconds(1));
    }  // token destroyed here
    co_await s.wait(milliseconds(100));
  };
  auto second = [&](Simulator& s) -> Process {
    auto tok = co_await r.acquire();
    second_ran = 1;
    EXPECT_EQ(s.now(), milliseconds(1));
  };
  sim.spawn(first(sim));
  sim.spawn(second(sim));
  sim.run();
  EXPECT_EQ(second_ran, 1);
}

TEST(Resource, MultiUnitAcquire) {
  Simulator sim;
  Resource mem{sim, 10, "memory"};
  Time big_granted = -1;
  auto small = [&](Simulator& s) -> Process {
    auto tok = co_await mem.acquire(6);
    co_await s.wait(milliseconds(10));
  };
  auto big = [&](Simulator& s) -> Process {
    co_await s.wait(milliseconds(1));
    auto tok = co_await mem.acquire(8);  // must wait for small's 6 to free
    big_granted = s.now();
  };
  sim.spawn(small(sim));
  sim.spawn(big(sim));
  sim.run();
  EXPECT_EQ(big_granted, milliseconds(10));
}

TEST(Resource, OverCapacityAcquireThrows) {
  Simulator sim;
  Resource r{sim, 4};
  EXPECT_THROW((void)r.acquire(5), std::invalid_argument);
}

TEST(Resource, UtilizationIntegral) {
  Simulator sim;
  Resource r{sim, 2};
  auto job = [&](Simulator& s) -> Process {
    auto tok = co_await r.acquire();
    co_await s.wait(seconds(1));
  };
  sim.spawn(job(sim));
  sim.spawn(job(sim));
  sim.run_until(seconds(2));
  // 2 units busy for 1s of a 2s window on capacity 2 => 50% utilization.
  EXPECT_NEAR(r.utilization(), 0.5, 1e-9);
}

TEST(Resource, TryAcquireRespectsWaiters) {
  Simulator sim;
  Resource r{sim, 2};
  auto holder = [&](Simulator& s) -> Process {
    auto tok = co_await r.acquire(2);
    co_await s.wait(milliseconds(10));
  };
  auto blocked = [&](Simulator&) -> Process {
    auto tok = co_await r.acquire(1);
  };
  sim.spawn(holder(sim));
  sim.spawn(blocked(sim));
  sim.run_until(milliseconds(5));
  // One unit is free? No: holder took both. And `blocked` waits.
  EXPECT_FALSE(r.try_acquire(1).holds());
  sim.run();
}

// --- Sync primitives ---------------------------------------------------------

TEST(Event, BroadcastWakesAll) {
  Simulator sim;
  Event ev{sim};
  int woken = 0;
  auto waiter = [&](Simulator& s) -> Process {
    co_await ev.wait();
    EXPECT_EQ(s.now(), milliseconds(3));
    ++woken;
  };
  for (int i = 0; i < 5; ++i) sim.spawn(waiter(sim));
  sim.schedule_at(milliseconds(3), [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(woken, 5);
}

TEST(Event, WaitOnSetEventIsImmediate) {
  Simulator sim;
  Event ev{sim};
  ev.set();
  bool ran = false;
  auto waiter = [&](Simulator&) -> Process {
    co_await ev.wait();
    ran = true;
  };
  sim.spawn(waiter(sim));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(WaitGroup, WaitsForAll) {
  Simulator sim;
  WaitGroup wg{sim};
  Time finished = -1;
  auto worker = [&](Simulator& s, Time d) -> Process {
    co_await s.wait(d);
    wg.done();
  };
  for (int i = 1; i <= 4; ++i) {
    wg.add();
    sim.spawn(worker(sim, milliseconds(i)));
  }
  auto joiner = [&](Simulator& s) -> Process {
    co_await wg.wait();
    finished = s.now();
  };
  sim.spawn(joiner(sim));
  sim.run();
  EXPECT_EQ(finished, milliseconds(4));
}

TEST(WaitGroup, DoneUnderflowThrows) {
  Simulator sim;
  WaitGroup wg{sim};
  EXPECT_THROW(wg.done(), std::logic_error);
}

// --- RNG ---------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInRange) {
  Rng rng{1};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng{5};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng{9};
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(Rng, PoissonMean) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(6.0));
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng{13};
  const std::vector<double> w{1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.discrete(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng{1};
  const std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(rng.discrete(neg), std::invalid_argument);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.discrete(zero), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{17};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent{21};
  Rng child = parent.fork();
  // Streams should diverge immediately.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent() == child() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

// Determinism of an entire mini-simulation: identical seeds => identical
// event counts and final clock.
class SimDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDeterminismTest, RepeatRunsIdentical) {
  auto run_once = [&](std::uint64_t seed) {
    Simulator sim;
    Rng rng{seed};
    Channel<int> ch{sim, 16};
    std::vector<int> out;
    auto prod = [&](Simulator& s) -> Process {
      for (int i = 0; i < 50; ++i) {
        co_await s.wait(microseconds(rng.exponential(1.0) * 100.0));
        co_await ch.put(i);
      }
      ch.close();
    };
    sim.spawn(prod(sim));
    sim.spawn(consumer(sim, ch, out));
    sim.run();
    return std::pair{sim.now(), sim.steps()};
  };
  const auto a = run_once(GetParam());
  const auto b = run_once(GetParam());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminismTest, ::testing::Values(1u, 7u, 99u, 1234u));

}  // namespace
}  // namespace serve::sim
