// Tests for the capacity plane: gauge-aliasing regression (point samples vs
// time-weighted interval means), sim::Resource monotone interval counters
// across reset_stats(), CapacityPlane interval differencing / bottleneck
// attribution / headroom math, snapshot determinism + export wiring, and the
// Little's-law audit under fault-plan scenarios (GPU failure, PCIe degrade,
// fleet node crash/gray) where deviations must land only in fault windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fleet.h"
#include "metrics/export.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "models/model_zoo.h"
#include "obs/alert_engine.h"
#include "obs/capacity_plane.h"
#include "sim/fault_plan.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "workload/arrivals.h"

namespace serve::obs {
namespace {

// ---------------------------------------------------------------------------
// Satellite: gauge-aliasing regression. A square wave synchronized against
// the sampling cadence is invisible to a point-sampled gauge but exact under
// interval differencing of the monotone busy integral.

TEST(GaugeAliasing, PointSamplesMissSquareWaveIntervalMeansAreExact) {
  sim::Simulator sim;
  metrics::Registry reg;
  sim::Resource dev{sim, 1, "dev"};
  reg.gauge_fn("dev_in_use", {}, [&dev] { return static_cast<double>(dev.in_use()); });

  metrics::FlightRecorder rec{reg, {.period = sim::milliseconds(10), .capacity = 64}};
  // Interval busy fractions from the monotone integral, differenced on the
  // same cadence the gauge is sampled on.
  std::vector<double> interval_means;
  double prev_busy = 0.0;
  sim::Time prev_t = 0;
  bool have_prev = false;
  rec.add_tick_listener([&](sim::Time now, std::uint64_t) {
    const double busy = dev.busy_seconds_total();
    if (have_prev && now > prev_t) {
      interval_means.push_back((busy - prev_busy) / sim::to_seconds(now - prev_t));
    }
    prev_busy = busy;
    prev_t = now;
    have_prev = true;
  });

  // Busy during [2, 7) ms of every 10 ms cycle: 50% duty, yet every sampling
  // instant t = k*10ms lands in the idle phase.
  auto wave = [&](sim::Simulator& s) -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      co_await s.wait(sim::milliseconds(2));
      {
        auto tok = co_await dev.acquire();
        co_await s.wait(sim::milliseconds(5));
      }
      co_await s.wait(sim::milliseconds(3));
    }
  };
  sim.spawn(wave(sim));
  rec.start(sim);
  sim.run_until(sim::milliseconds(100));
  rec.stop();
  sim.run();

  const auto series = rec.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "dev_in_use");
  ASSERT_GE(series[0].samples.size(), 10u);
  for (const double s : series[0].samples) {
    EXPECT_DOUBLE_EQ(s, 0.0);  // the point-sampled gauge reads a dead device
  }
  ASSERT_EQ(interval_means.size(), 10u);
  for (const double m : interval_means) {
    EXPECT_NEAR(m, 0.5, 1e-9);  // the integral knows it ran half the time
  }
}

// ---------------------------------------------------------------------------
// Satellite: sim::Resource interval-delta reads survive reset_stats().

TEST(ResourceIntervals, WindowDeltasSumToCumulativeAcrossResetStats) {
  sim::Simulator sim;
  sim::Resource pool{sim, 2, "pool"};

  auto job = [&](sim::Simulator& s, sim::Time start, sim::Time hold) -> sim::Process {
    co_await s.wait(start);
    auto tok = co_await pool.acquire();
    co_await s.wait(hold);
  };
  // In-use curve: 1 on [0, 0.5), 2 on [0.5, 2.5), 1 on [2.5, 3.5).
  // Queue curve: C waits [0.6, 1.5) -> 0.9 waiter-seconds total.
  sim.spawn(job(sim, sim::seconds(0.0), sim::seconds(1.5)));  // A: [0, 1.5)
  sim.spawn(job(sim, sim::seconds(0.5), sim::seconds(2.0)));  // B: [0.5, 2.5)
  sim.spawn(job(sim, sim::seconds(0.6), sim::seconds(2.0)));  // C: waits, [1.5, 3.5)

  double w1_busy = 0.0, w1_queue = 0.0;
  sim.schedule_at(sim::seconds(1.0), [&] {
    w1_busy = pool.busy_seconds_total();
    w1_queue = pool.queue_seconds_total();
    // Mid-run window reset (the experiment harness does this at warmup end)
    // must not disturb the monotone interval counters.
    pool.reset_stats();
  });
  sim.run_until(sim::seconds(4.0));

  const double total_busy = pool.busy_seconds_total();
  const double total_queue = pool.queue_seconds_total();
  const double w2_busy = total_busy - w1_busy;
  const double w2_queue = total_queue - w1_queue;

  // Window 1 = [0, 1): busy 0.5*1 + 0.5*2 = 1.5, queue [0.6, 1) = 0.4.
  EXPECT_NEAR(w1_busy, 1.5, 1e-9);
  EXPECT_NEAR(w1_queue, 0.4, 1e-9);
  // Window 2 = [1, 4): busy 0.5*2 + 1.0*2 + 1.0*1 = 4.0, queue [1, 1.5) = 0.5.
  EXPECT_NEAR(w2_busy, 4.0, 1e-9);
  EXPECT_NEAR(w2_queue, 0.5, 1e-9);
  // Back-to-back windows sum to the cumulative total exactly.
  EXPECT_NEAR(w1_busy + w2_busy, total_busy, 1e-12);
  EXPECT_NEAR(w1_queue + w2_queue, total_queue, 1e-12);
  EXPECT_NEAR(total_busy, 5.5, 1e-9);
  EXPECT_NEAR(total_queue, 0.9, 1e-9);

  // The windowed view DID reset: utilization covers [1, 4) only
  // (4.0 unit-seconds / (3 s * capacity 2)).
  EXPECT_NEAR(pool.utilization(), 4.0 / 6.0, 1e-9);
}

// ---------------------------------------------------------------------------
// CapacityPlane unit tests (ticks driven directly, synthetic counters).

struct SynthResource {
  metrics::Counter busy;
  metrics::Counter queue;
  metrics::Gauge capacity;

  SynthResource(metrics::Registry& reg, const std::string& device, const std::string& engine,
                double cap) {
    const metrics::Labels labels{{"device", device}, {"engine", engine}};
    busy = reg.counter("hw_resource_busy_seconds_total", labels);
    queue = reg.counter("hw_resource_queue_seconds_total", labels);
    capacity = reg.gauge("hw_resource_capacity", labels);
    capacity.set(cap);
  }
};

constexpr sim::Time kTick = sim::milliseconds(100);

TEST(CapacityPlaneTest, DifferencesIntegralsIntoExactIntervalMeans) {
  metrics::Registry reg;
  SynthResource gpu{reg, "gpu0", "compute", 2.0};
  CapacityPlane plane{reg};

  plane.observe(0, 0);  // baseline tick: no interval yet
  EXPECT_EQ(plane.intervals(), 0u);

  gpu.busy.inc(0.15);   // 0.15 unit-seconds over 0.1 s at capacity 2 -> 75%
  gpu.queue.inc(0.05);  // 0.05 waiter-seconds over 0.1 s -> mean depth 0.5
  plane.observe(kTick, 1);
  ASSERT_EQ(plane.intervals(), 1u);
  ASSERT_EQ(plane.resources().size(), 1u);
  const auto& tl = plane.resources()[0];
  EXPECT_EQ(tl.label(), "gpu0.compute");
  EXPECT_DOUBLE_EQ(tl.capacity, 2.0);
  EXPECT_NEAR(tl.busy_frac[0], 0.75, 1e-12);
  EXPECT_NEAR(tl.queue_mean[0], 0.5, 1e-12);

  // An impossible delta (> dt * capacity) clamps to 1 instead of leaking.
  gpu.busy.inc(5.0);
  plane.observe(2 * kTick, 2);
  EXPECT_DOUBLE_EQ(plane.resources()[0].busy_frac[1], 1.0);
}

TEST(CapacityPlaneTest, LateResourceBackfillsIdleIntervals) {
  metrics::Registry reg;
  SynthResource cpu{reg, "cpu", "preproc_workers", 8.0};
  CapacityPlane plane{reg};

  plane.observe(0, 0);
  cpu.busy.inc(0.4);
  plane.observe(kTick, 1);
  cpu.busy.inc(0.4);
  plane.observe(2 * kTick, 2);
  ASSERT_EQ(plane.intervals(), 2u);

  // A resource whose instruments appear mid-flight back-fills its earlier
  // intervals with zeros (absent == not yet modeled == idle) and needs one
  // tick to establish its own baseline.
  SynthResource gpu{reg, "gpu0", "compute", 1.0};
  gpu.busy.inc(123.0);  // pre-baseline total must not leak into an interval
  cpu.busy.inc(0.4);
  plane.observe(3 * kTick, 3);
  gpu.busy.inc(0.09);
  cpu.busy.inc(0.4);
  plane.observe(4 * kTick, 4);

  ASSERT_EQ(plane.resources().size(), 2u);
  const auto& late = plane.resources()[1];
  EXPECT_EQ(late.label(), "gpu0.compute");
  ASSERT_EQ(late.busy_frac.size(), 4u);
  EXPECT_DOUBLE_EQ(late.busy_frac[0], 0.0);
  EXPECT_DOUBLE_EQ(late.busy_frac[1], 0.0);
  EXPECT_DOUBLE_EQ(late.busy_frac[2], 0.0);  // baseline interval
  EXPECT_NEAR(late.busy_frac[3], 0.9, 1e-12);
  // The early resource's timeline stays aligned.
  ASSERT_EQ(plane.resources()[0].busy_frac.size(), 4u);
  EXPECT_NEAR(plane.resources()[0].busy_frac[3], 0.5, 1e-12);
}

TEST(CapacityPlaneTest, BindingArgmaxSegmentsAndDominantResource) {
  metrics::Registry reg;
  SynthResource cpu{reg, "cpu", "preproc_workers", 1.0};
  SynthResource gpu{reg, "gpu0", "compute", 1.0};
  CapacityPlane plane{reg};
  plane.observe(0, 0);

  auto tick = [&](double cpu_frac, double gpu_frac, std::uint64_t k) {
    cpu.busy.inc(cpu_frac * 0.1);
    gpu.busy.inc(gpu_frac * 0.1);
    plane.observe(static_cast<sim::Time>(k) * kTick, k);
  };
  tick(0.9, 0.3, 1);   // cpu binds
  tick(0.8, 0.2, 2);   // cpu binds
  tick(0.2, 0.7, 3);   // gpu binds
  tick(0.01, 0.02, 4); // everything under the idle floor -> idle
  tick(0.5, 0.5, 5);   // exact tie -> earlier registration (cpu) wins

  const auto& binding = plane.binding();
  ASSERT_EQ(binding.size(), 5u);
  EXPECT_EQ(binding[0], 0u);
  EXPECT_EQ(binding[1], 0u);
  EXPECT_EQ(binding[2], 1u);
  EXPECT_EQ(binding[3], CapacityPlane::kIdle);
  EXPECT_EQ(binding[4], 0u);

  const auto segs = plane.segments();
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 2u);
  EXPECT_EQ(segs[0].resource, 0u);
  EXPECT_EQ(segs[1].resource, 1u);
  EXPECT_EQ(segs[2].resource, CapacityPlane::kIdle);
  EXPECT_EQ(segs[3].resource, 0u);

  EXPECT_EQ(plane.dominant_resource(), 0u);  // 3 intervals vs 1
  EXPECT_EQ(plane.dominant_stage(), metrics::Stage::kPreprocess);
}

TEST(CapacityPlaneTest, StageTaxonomyMapsEnginesToPaperStages) {
  using metrics::Stage;
  EXPECT_EQ(stage_for_resource("cpu", "preproc_workers"), Stage::kPreprocess);
  EXPECT_EQ(stage_for_resource("gpu0", "preproc"), Stage::kPreprocess);
  EXPECT_EQ(stage_for_resource("gpu1", "compute"), Stage::kInference);
  EXPECT_EQ(stage_for_resource("host", "pcie"), Stage::kTransfer);
  EXPECT_EQ(stage_for_resource("gpu0", "copy_h2d"), Stage::kTransfer);
  EXPECT_EQ(stage_for_resource("broker", "io"), Stage::kBroker);
  EXPECT_EQ(stage_for_resource("cpu", "cores"), Stage::kIngest);
}

TEST(CapacityPlaneTest, LittleAuditFlagsOnlyMeaningfulDeviations) {
  metrics::Registry reg;
  auto occ = reg.counter("serving_in_flight_seconds_total");
  auto lat = reg.counter("serving_latency_seconds_total");
  CapacityPlane plane{reg};
  plane.observe(0, 0);

  // Steady state: L == lambda*W == 10 -> clean.
  occ.inc(1.0);
  lat.inc(1.0);
  plane.observe(kTick, 1);
  // Backlog growth: L = 20 vs lambda*W = 10 (deviation 0.5 > 0.15) -> flagged.
  occ.inc(2.0);
  lat.inc(1.0);
  plane.observe(2 * kTick, 2);
  // Same relative deviation near idle (L = 0.04): under the occupancy floor,
  // noise-vs-noise never flags.
  occ.inc(0.004);
  lat.inc(0.002);
  plane.observe(3 * kTick, 3);

  ASSERT_EQ(plane.little().size(), 3u);
  EXPECT_FALSE(plane.little()[0].violated);
  EXPECT_NEAR(plane.little()[0].l, 10.0, 1e-9);
  EXPECT_NEAR(plane.little()[0].lambda_w, 10.0, 1e-9);
  EXPECT_TRUE(plane.little()[1].violated);
  EXPECT_NEAR(plane.little()[1].deviation, 0.5, 1e-9);
  EXPECT_FALSE(plane.little()[2].violated);
  EXPECT_EQ(plane.violations(), 1u);
  EXPECT_EQ(plane.violation_intervals(), (std::vector<std::size_t>{1}));

  const auto counter = reg.find("obs_capacity_little_violations_total", {});
  ASSERT_TRUE(counter.has_value());
  EXPECT_DOUBLE_EQ(counter->value, 1.0);
}

TEST(CapacityPlaneTest, SustainableRpsIsMedianOverUsableIntervals) {
  metrics::Registry reg;
  auto demand = reg.counter("serving_requests_submitted_total");
  SynthResource gpu{reg, "gpu0", "compute", 1.0};
  CapacityPlane plane{reg};
  plane.observe(0, 0);

  auto tick = [&](double util, double rate, std::uint64_t k) {
    gpu.busy.inc(util * 0.1);
    demand.inc(rate * 0.1);
    plane.observe(static_cast<sim::Time>(k) * kTick, k);
  };
  tick(0.50, 100.0, 1);  // est 200
  tick(0.10, 100.0, 2);  // under headroom_min_util (and idle floor): skipped
  tick(0.99, 500.0, 3);  // over headroom_max_util (clipped lambda): skipped
  tick(0.80, 100.0, 4);  // est 125
  tick(0.40, 80.0, 5);   // est 200

  // Sorted estimates {125, 200, 200}: deterministic lower-median -> 200.
  EXPECT_NEAR(plane.sustainable_rps(), 200.0, 1e-9);
}

TEST(CapacityPlaneTest, SnapshotIsDeterministicAndExportsCapacitySection) {
  auto drive = [](CapacityPlane& plane, metrics::Registry& reg) {
    auto demand = reg.counter("serving_requests_submitted_total");
    auto occ = reg.counter("serving_in_flight_seconds_total");
    auto lat = reg.counter("serving_latency_seconds_total");
    SynthResource cpu{reg, "cpu", "preproc_workers", 4.0};
    SynthResource gpu{reg, "gpu0", "compute", 1.0};
    plane.observe(0, 0);
    for (std::uint64_t k = 1; k <= 6; ++k) {
      cpu.busy.inc(k <= 3 ? 0.36 : 0.08);
      gpu.busy.inc(k <= 3 ? 0.03 : 0.095);
      cpu.queue.inc(0.02);
      demand.inc(40.0);
      occ.inc(k == 4 ? 2.0 : 1.0);
      lat.inc(1.0);
      plane.observe(static_cast<sim::Time>(k) * kTick, k);
    }
  };

  std::string out[2];
  for (auto& text : out) {
    metrics::Registry reg;
    CapacityPlane plane{reg};
    drive(plane, reg);
    metrics::TelemetryExport exp;
    exp.set_capacity(plane.snapshot());
    std::ostringstream ss;
    exp.write_json(ss);
    text = ss.str();
  }
  EXPECT_EQ(out[0], out[1]);  // byte-identical across identical drives

  // The exported section carries the attribution verdict and audit series.
  EXPECT_NE(out[0].find("\"capacity\""), std::string::npos);
  EXPECT_NE(out[0].find("\"binding\": \"cpu.preproc_workers\""), std::string::npos);
  EXPECT_NE(out[0].find("\"binding_stage\": \"preprocess\""), std::string::npos);
  EXPECT_NE(out[0].find("\"segments\""), std::string::npos);
  EXPECT_NE(out[0].find("\"violation_intervals\""), std::string::npos);
  EXPECT_NE(out[0].find("\"sustainable_rps\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Satellite: Little's-law audit under fault-plan scenarios. Deviations (and
// only deviations) must land inside the fault windows (+ a short drain tail);
// the first second of rampup is excluded like the bench does.

CapacityPlane::Options audit_opts() {
  CapacityPlane::Options o;
  // Batch-quantized completions make per-interval lambda*W jumpy; 200 ms
  // intervals + this tolerance keep the steady state clean while backlog
  // transients (deviation ~0.5+) still flag (same tuning as the bench).
  o.little_tolerance = 0.35;
  o.little_min_occupancy = 5.0;
  return o;
}

constexpr double kPeriodS = 0.2;
constexpr double kStartupGraceS = 1.0;

struct AuditRun {
  metrics::Registry reg;
  metrics::FlightRecorder rec{reg, {.period = sim::milliseconds(200), .capacity = 256}};
  CapacityPlane plane{reg, audit_opts()};
  core::ExperimentResult result;
};

std::unique_ptr<AuditRun> run_audited(core::ExperimentSpec spec, double rate,
                                      const sim::FaultPlan* faults) {
  auto b = std::make_unique<AuditRun>();
  spec.registry = &b->reg;
  spec.recorder = &b->rec;
  spec.faults = faults;
  b->plane.attach(b->rec);
  b->result = core::run_open_loop(spec, workload::poisson_arrivals(rate));
  return b;
}

/// Interval i covers ((i)*period, (i+1)*period]; the recorder's tick 0 lands
/// at client start (sim t ~= 0), so the interval's end time is (i+1)*period.
std::vector<double> violation_times(const CapacityPlane& plane) {
  std::vector<double> out;
  for (const std::size_t i : plane.violation_intervals()) {
    const double t = static_cast<double>(i + 1) * kPeriodS;
    if (t >= kStartupGraceS) out.push_back(t);
  }
  return out;
}

TEST(LittleAuditFaults, GpuFailureDeviatesOnlyInsideWindow) {
  core::ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.gpu_count = 2;
  // Hold-until-recovery resilience: batches on the failed GPU park instead
  // of failing, so their occupancy area accrues through the window while the
  // completion charges land only after recovery — the L >> lambda*W shape
  // the audit exists to catch.
  spec.server.retry.enabled = true;
  spec.warmup = sim::seconds(1.0);
  spec.measure = sim::seconds(8.0);

  sim::FaultPlan faults;
  faults.gpu_failure(1, sim::seconds(3.5), sim::seconds(5.5));

  const auto faulty = run_audited(spec, 1200.0, &faults);
  const auto clean = run_audited(spec, 1200.0, nullptr);

  EXPECT_GT(faulty->result.completed, 0u);
  EXPECT_TRUE(violation_times(clean->plane).empty())
      << "fault-free steady state must satisfy L == lambda*W every interval";

  const auto times = violation_times(faulty->plane);
  ASSERT_FALSE(times.empty()) << "losing a GPU must show up as a backlog transient";
  for (const double t : times) {
    EXPECT_GE(t, 3.5) << "deviation before the fault window opened";
    EXPECT_LE(t, 7.0) << "deviation after the post-fault drain";
  }
}

TEST(LittleAuditFaults, PcieDegradationDeviatesOnlyInsideWindowAndRebinds) {
  // Raw-tensor ingress on a GPU-preproc deployment: the fp32 input crosses
  // host.pcie + gpu0.copy_h2d per request, so kPcieDegradation actually
  // bites (the CPU-preproc compressed-image path charges its flat staging
  // cost instead and would be immune).
  core::ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.server.ingress = serving::IngressFormat::kRawTensor;
  spec.warmup = sim::seconds(1.0);
  spec.measure = sim::seconds(8.0);

  sim::FaultPlan faults;
  faults.pcie_degradation(sim::seconds(3.5), sim::seconds(5.0), 24.0);

  const auto faulty = run_audited(spec, 1200.0, &faults);
  const auto clean = run_audited(spec, 1200.0, nullptr);

  EXPECT_TRUE(violation_times(clean->plane).empty());
  const auto times = violation_times(faulty->plane);
  ASSERT_FALSE(times.empty()) << "a 24x slower link must show up as a backlog transient";
  for (const double t : times) {
    EXPECT_GE(t, 3.5);
    EXPECT_LE(t, 7.0);
  }

  // Attribution cross-check: some interval inside the window binds on a
  // transfer resource (host link or the device-side copy engine).
  bool transfer_bound = false;
  const auto& binding = faulty->plane.binding();
  for (std::size_t i = 0; i < binding.size(); ++i) {
    const double t = static_cast<double>(i + 1) * kPeriodS;
    if (t < 3.5 || t > 5.2 || binding[i] == CapacityPlane::kIdle) continue;
    const auto& r = faulty->plane.resources()[binding[i]];
    if (stage_for_resource(r.device, r.engine) == metrics::Stage::kTransfer) {
      transfer_bound = true;
    }
  }
  EXPECT_TRUE(transfer_bound)
      << "the degraded link should become the binding resource inside the window";
}

// Fleet-level audit: L from the per-node outstanding integrals (summed by
// the rule across node labels) vs lambda*W from the completion-charged
// fleet_latency_seconds_total.
struct FleetAudit {
  metrics::Registry reg;
  metrics::FlightRecorder rec{reg, {.period = sim::milliseconds(200), .capacity = 256}};
  AlertEngine eng{reg};
  core::FleetResult result;
  std::vector<double> sample_t, sample_l, sample_lw;  ///< per-interval diagnostics

  [[nodiscard]] std::string samples_text() const {
    std::ostringstream ss;
    for (std::size_t i = 0; i < sample_t.size(); ++i) {
      ss << "t=" << sample_t[i] << " L=" << sample_l[i] << " lambdaW=" << sample_lw[i] << "\n";
    }
    return ss.str();
  }
};

std::unique_ptr<FleetAudit> run_fleet_audited(const sim::FaultPlan* faults) {
  auto b = std::make_unique<FleetAudit>();
  core::FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.gpus_per_node = {1, 1};
  // Open-loop offered load: a closed loop pins L at the client count, so a
  // node loss barely moves the ratio. Constant offered load above a single
  // node's ~1800 rps capacity lets the surviving node's backlog grow — the
  // transient the audit is supposed to localize.
  spec.rate_rps = 2400.0;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(5.5);
  spec.server.balancer.policy = core::BalancerPolicy::kPowerOfTwo;
  spec.server.balancer.health.enabled = true;

  LittleLawRule r;
  r.occupancy_integral = "fleet_node_outstanding_seconds_total";
  r.latency_sum = "fleet_latency_seconds_total";
  r.tolerance = 0.35;
  r.min_occupancy = 5.0;
  r.for_ticks = 1;
  r.clear_for_ticks = 2;
  b->eng.add_littles_law(r);
  b->eng.attach(b->rec);

  // Diagnostic mirror of the rule's differencing (sum of node occupancy
  // integrals vs the completion-charged latency sum) for failure messages.
  auto raw = std::make_shared<std::array<double, 2>>();
  auto have = std::make_shared<bool>(false);
  auto prev_t = std::make_shared<sim::Time>(0);
  FleetAudit* fb = b.get();
  b->rec.add_tick_listener([fb, raw, have, prev_t](sim::Time now, std::uint64_t) {
    double occ = 0.0, lat = 0.0;
    for (std::size_t i = 0; i < fb->reg.instrument_count(); ++i) {
      const auto info = fb->reg.info(i);
      if (info.name == "fleet_node_outstanding_seconds_total") occ += fb->reg.current_value(i);
      if (info.name == "fleet_latency_seconds_total") lat += fb->reg.current_value(i);
    }
    if (*have && now > *prev_t) {
      const double dt = sim::to_seconds(now - *prev_t);
      fb->sample_t.push_back(sim::to_seconds(now));
      fb->sample_l.push_back((occ - (*raw)[0]) / dt);
      fb->sample_lw.push_back((lat - (*raw)[1]) / dt);
    }
    (*raw)[0] = occ;
    (*raw)[1] = lat;
    *prev_t = now;
    *have = true;
  });

  spec.registry = &b->reg;
  spec.recorder = &b->rec;
  spec.faults = faults;
  b->result = core::run_fleet(spec);
  return b;
}

std::vector<double> firing_times(const AlertEngine& eng) {
  std::vector<double> out;
  for (const auto& ev : eng.events()) {
    if (ev.firing && ev.alert == "littles-law") out.push_back(sim::to_seconds(ev.t));
  }
  return out;
}

TEST(LittleAuditFleet, NodeCrashDeviatesOnlyInsideWindow) {
  sim::FaultPlan faults;
  faults.node_crash(1, sim::seconds(2.0), sim::seconds(3.5));
  const auto faulty = run_fleet_audited(&faults);
  const auto clean = run_fleet_audited(nullptr);

  EXPECT_GT(faulty->result.completed, 0u);
  EXPECT_TRUE(firing_times(clean->eng).empty())
      << "fault-free fleet must never breach the Little's-law audit:\n"
      << clean->eng.log_text() << clean->samples_text();

  const auto times = firing_times(faulty->eng);
  ASSERT_FALSE(times.empty()) << "a node crash must breach the fleet audit:\n"
                              << faulty->samples_text();
  for (const double t : times) {
    EXPECT_GE(t, 2.0);
    EXPECT_LE(t, 5.5);  // crash window + ejected-node drain/rejoin transient
  }
}

TEST(LittleAuditFleet, NodeGrayFailureDeviatesOnlyInsideWindow) {
  sim::FaultPlan faults;
  faults.node_gray_failure(1, sim::seconds(2.0), sim::seconds(3.5), 0.05);
  const auto faulty = run_fleet_audited(&faults);

  const auto times = firing_times(faulty->eng);
  ASSERT_FALSE(times.empty())
      << "a gray node (95% fast-fail) must breach the fleet audit:\n"
      << faulty->eng.log_text() << faulty->samples_text();
  for (const double t : times) {
    EXPECT_GE(t, 2.0);
    EXPECT_LE(t, 5.5);
  }
}

}  // namespace
}  // namespace serve::obs
