// Tests for the broker subsystem: simulated Kafka/Redis profiles, the real
// in-process broker (threads), and the disk-backed log broker (files, CRC,
// recovery).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "broker/file_log_broker.h"
#include "broker/in_process_broker.h"
#include "core/face_pipeline.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace serve::broker {
namespace {

// --- SimBroker ---------------------------------------------------------------

TEST(SimBroker, DeliversInOrderWithLatency) {
  sim::Simulator sim;
  BrokerProfile profile{.name = "test", .publish_service_s = 1e-3, .consume_latency_s = 0.5e-3,
                        .io_threads = 1};
  SimBroker<int> broker{sim, profile};
  std::vector<int> got;
  std::vector<sim::Time> when;
  auto producer = [&](sim::Simulator&) -> sim::Process {
    for (int i = 0; i < 3; ++i) co_await broker.publish(i);
  };
  auto consumer = [&](sim::Simulator& s) -> sim::Process {
    while (true) {
      auto v = co_await broker.consume();
      if (!v) break;
      got.push_back(*v);
      when.push_back(s.now());
    }
  };
  sim.spawn(producer(sim));
  sim.spawn(consumer(sim));
  sim.schedule_at(sim::seconds(1.0), [&] { broker.close(); });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  // First message visible after publish service (1ms) + consume (0.5ms).
  EXPECT_EQ(when[0], sim::microseconds(1500));
  EXPECT_EQ(broker.published(), 3u);
  EXPECT_EQ(broker.consumed(), 3u);
}

sim::Process publish_once(sim::Simulator& sim, SimBroker<int>& broker, sim::Time& done_at) {
  co_await broker.publish(0);
  done_at = std::max(done_at, sim.now());
}

TEST(SimBroker, IoThreadsBoundPublishRate) {
  // 10 parallel publishers, 1 ms service each: 1 io thread finishes the last
  // publish at 10 ms, 4 io threads at ceil(10/4) = 3 ms.
  sim::Simulator sim;
  SimBroker<int> one{sim, {.name = "one", .publish_service_s = 1e-3, .io_threads = 1}};
  SimBroker<int> four{sim, {.name = "four", .publish_service_s = 1e-3, .io_threads = 4}};
  sim::Time done_one = 0, done_four = 0;
  for (int i = 0; i < 10; ++i) {
    sim.spawn(publish_once(sim, one, done_one));
    sim.spawn(publish_once(sim, four, done_four));
  }
  sim.run();
  EXPECT_EQ(done_one, sim::milliseconds(10));
  EXPECT_EQ(done_four, sim::milliseconds(3));
}

TEST(SimBroker, ProfilesReflectCalibration) {
  const auto calib = hw::default_calibration().broker;
  const auto kafka = kafka_profile(calib);
  const auto redis = redis_profile(calib);
  EXPECT_TRUE(kafka.disk_backed);
  EXPECT_FALSE(redis.disk_backed);
  EXPECT_GT(kafka.publish_service_s, redis.publish_service_s * 10);
}

// --- Face pipeline (Fig. 11 system) -----------------------------------------

TEST(FacePipeline, RedisBeatsKafkaAtHighFaceCounts) {
  core::FacePipelineSpec spec;
  spec.faces_per_frame = 25;
  spec.concurrency = 16;
  spec.measure = sim::seconds(10.0);
  spec.broker = core::BrokerKind::kKafka;
  const auto kafka = core::run_face_pipeline(spec);
  spec.broker = core::BrokerKind::kRedis;
  const auto redis = core::run_face_pipeline(spec);
  // Paper: 125% throughput improvement (2.25x).
  EXPECT_GT(redis.frames_per_s, kafka.frames_per_s * 1.8);
  EXPECT_LT(redis.frames_per_s, kafka.frames_per_s * 2.8);
}

TEST(FacePipeline, FusedWinsAtLowFaceCountsRedisAtHigh) {
  core::FacePipelineSpec spec;
  spec.concurrency = 16;
  spec.measure = sim::seconds(8.0);
  spec.faces_per_frame = 2;
  spec.broker = core::BrokerKind::kFused;
  const auto fused_low = core::run_face_pipeline(spec);
  spec.broker = core::BrokerKind::kRedis;
  const auto redis_low = core::run_face_pipeline(spec);
  EXPECT_GT(fused_low.frames_per_s, redis_low.frames_per_s);

  spec.faces_per_frame = 20;
  const auto redis_high = core::run_face_pipeline(spec);
  spec.broker = core::BrokerKind::kFused;
  const auto fused_high = core::run_face_pipeline(spec);
  EXPECT_GT(redis_high.frames_per_s, fused_high.frames_per_s);
}

TEST(FacePipeline, BrokerLatencyShares) {
  core::FacePipelineSpec spec;
  spec.faces_per_frame = 25;
  spec.concurrency = 1;  // zero load
  spec.measure = sim::seconds(20.0);
  spec.broker = core::BrokerKind::kKafka;
  const auto kafka = core::run_face_pipeline(spec);
  spec.broker = core::BrokerKind::kRedis;
  const auto redis = core::run_face_pipeline(spec);
  // Paper: Kafka ~71% of latency, Redis ~6%.
  EXPECT_GT(kafka.broker_share(), 0.55);
  EXPECT_LT(kafka.broker_share(), 0.85);
  EXPECT_GT(redis.broker_share(), 0.01);
  EXPECT_LT(redis.broker_share(), 0.12);
  // Paper: 67% zero-load latency improvement.
  EXPECT_LT(redis.mean_latency_s, kafka.mean_latency_s * 0.45);
}

TEST(FacePipeline, StochasticFacesRun) {
  core::FacePipelineSpec spec;
  spec.faces_per_frame = 5;
  spec.stochastic_faces = true;
  spec.concurrency = 4;
  spec.measure = sim::seconds(5.0);
  const auto r = core::run_face_pipeline(spec);
  EXPECT_GT(r.frames, 50u);
  EXPECT_GT(r.faces_per_s, r.frames_per_s);  // >1 face per frame on average
}

// --- Real in-process broker ---------------------------------------------------

TEST(InProcessBroker, ThreadedProducerConsumer) {
  InProcessBroker<int> broker{64};
  std::vector<int> got;
  std::thread consumer{[&] {
    while (auto v = broker.consume()) got.push_back(*v);
  }};
  std::thread producer{[&] {
    for (int i = 0; i < 1000; ++i) broker.publish(i);
    broker.close();
  }};
  producer.join();
  consumer.join();
  ASSERT_EQ(got.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(InProcessBroker, TryOpsAndCapacity) {
  InProcessBroker<int> broker{2};
  EXPECT_TRUE(broker.try_publish(1));
  EXPECT_TRUE(broker.try_publish(2));
  EXPECT_FALSE(broker.try_publish(3));  // full
  EXPECT_EQ(broker.depth(), 2u);
  EXPECT_EQ(broker.try_consume().value(), 1);
  EXPECT_TRUE(broker.try_publish(3));
}

TEST(InProcessBroker, PublishAfterCloseThrows) {
  InProcessBroker<int> broker;
  broker.close();
  EXPECT_THROW(broker.publish(1), std::runtime_error);
  EXPECT_EQ(broker.consume(), std::nullopt);
}

// --- Real file-backed log broker ----------------------------------------------

class FileLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("servescope_log_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(FileLogTest, PublishReadRoundTrip) {
  FileLogBroker log{{.dir = dir_}};
  EXPECT_EQ(log.publish("hello"), 0u);
  EXPECT_EQ(log.publish("world"), 1u);
  EXPECT_EQ(log.read(0).value(), "hello");
  EXPECT_EQ(log.read(1).value(), "world");
  EXPECT_EQ(log.read(2), std::nullopt);
  EXPECT_EQ(log.size(), 2u);
}

TEST_F(FileLogTest, SurvivesRestart) {
  {
    FileLogBroker log{{.dir = dir_}};
    for (int i = 0; i < 50; ++i) log.publish("msg-" + std::to_string(i));
  }
  FileLogBroker reopened{{.dir = dir_}};
  EXPECT_EQ(reopened.size(), 50u);
  EXPECT_EQ(reopened.read(17).value(), "msg-17");
  // Appends continue after the recovered offset.
  EXPECT_EQ(reopened.publish("after-restart"), 50u);
  EXPECT_EQ(reopened.read(50).value(), "after-restart");
}

TEST_F(FileLogTest, RollsSegments) {
  FileLogBroker log{{.dir = dir_, .segment_bytes = 256}};
  for (int i = 0; i < 40; ++i) log.publish(std::string(32, 'x'));
  EXPECT_GT(log.segment_count(), 3u);
  EXPECT_EQ(log.read(39).value(), std::string(32, 'x'));
}

TEST_F(FileLogTest, DetectsCorruption) {
  {
    FileLogBroker log{{.dir = dir_}};
    log.publish("to-be-corrupted-record-with-some-length");
  }
  // Flip a payload byte on disk.
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) seg = e.path();
  {
    std::fstream f{seg, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(12);
    f.put('X');
  }
  EXPECT_THROW(FileLogBroker({.dir = dir_}), std::runtime_error);
}

TEST_F(FileLogTest, EmptyPayloadAndOptions) {
  EXPECT_THROW(FileLogBroker({.dir = dir_, .fsync_interval = 0}), std::invalid_argument);
  FileLogBroker log{{.dir = dir_, .fsync_interval = 8}};
  log.publish("");
  EXPECT_EQ(log.read(0).value(), "");
}

TEST_F(FileLogTest, TornTailTruncatedWhenTolerant) {
  {
    FileLogBroker log{{.dir = dir_}};
    log.publish("complete-record-one");
    log.publish("complete-record-two");
  }
  // Simulate a crash mid-append: write a partial header at the tail.
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) seg = e.path();
  {
    std::ofstream f{seg, std::ios::binary | std::ios::app};
    f.write("\x40\x00", 2);  // half a length field
  }
  // Strict recovery refuses; tolerant recovery drops the torn tail.
  EXPECT_THROW(FileLogBroker({.dir = dir_}), std::runtime_error);
  FileLogBroker recovered{{.dir = dir_, .tolerate_torn_tail = true}};
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.read(1).value(), "complete-record-two");
  // Appends continue cleanly after truncation.
  recovered.publish("after-crash");
  EXPECT_EQ(recovered.read(2).value(), "after-crash");
}

TEST_F(FileLogTest, MidLogCorruptionStillThrowsWhenTolerant) {
  {
    FileLogBroker log{{.dir = dir_}};
    log.publish("first-record-with-some-payload");
    log.publish("second-record-with-some-payload");
  }
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) seg = e.path();
  {
    std::fstream f{seg, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(12);  // inside the FIRST record's payload
    f.put('X');
  }
  // Not a torn tail: data follows the bad record, so even tolerant recovery
  // must refuse rather than silently lose acknowledged writes.
  EXPECT_THROW(FileLogBroker({.dir = dir_, .tolerate_torn_tail = true}), std::runtime_error);
}

TEST_F(FileLogTest, CorruptedLengthFieldDoesNotAllocateOrTruncateValidRecords) {
  // Regression: recovery used to trust the on-disk length field before
  // validating it — a corrupted header could drive a ~4 GiB allocation, and
  // an inflated length made the torn-tail heuristic classify mid-file
  // corruption as a tail and silently truncate valid later records.
  {
    FileLogBroker log{{.dir = dir_}};
    log.publish("first-record-payload");   // [0, 28)
    log.publish("middle-record-payload");  // [28, 57)
    log.publish("third-record-payload");   // [57, 85)
  }
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) seg = e.path();
  const auto original_size = std::filesystem::file_size(seg);
  {
    // Inflate the MIDDLE record's length field to ~4 GiB.
    std::fstream f{seg, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(28);
    const char huge[4] = {'\xff', '\xff', '\xff', '\xff'};
    f.write(huge, 4);
  }
  // Strict and tolerant recovery must both refuse: the claimed record
  // extends past EOF mid-file, so truncating would discard the (valid)
  // third record — exactly the data loss the old heuristic caused.
  EXPECT_THROW(FileLogBroker({.dir = dir_}), std::runtime_error);
  EXPECT_THROW(FileLogBroker({.dir = dir_, .tolerate_torn_tail = true}), std::runtime_error);
  // The refusal must leave the file untouched (no truncation side effect).
  EXPECT_EQ(std::filesystem::file_size(seg), original_size);
}

TEST_F(FileLogTest, TailRecordExtendingPastEofIsTruncatedWhenTolerant) {
  // A record whose header claims more bytes than the file holds is the
  // shape an interrupted append leaves — tolerant recovery truncates it.
  {
    FileLogBroker log{{.dir = dir_}};
    log.publish("durable-record");
  }
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) seg = e.path();
  {
    // Append a full header promising 64 payload bytes, then only 5 bytes.
    std::ofstream f{seg, std::ios::binary | std::ios::app};
    const std::uint32_t len = 64, crc = 0;
    f.write(reinterpret_cast<const char*>(&len), 4);
    f.write(reinterpret_cast<const char*>(&crc), 4);
    f.write("torns", 5);
  }
  EXPECT_THROW(FileLogBroker({.dir = dir_}), std::runtime_error);
  FileLogBroker recovered{{.dir = dir_, .tolerate_torn_tail = true}};
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.read(0).value(), "durable-record");
  recovered.publish("after-crash");
  EXPECT_EQ(recovered.read(1).value(), "after-crash");
}

TEST_F(FileLogTest, FullyWrittenCorruptTailRecordStillThrowsWhenTolerant) {
  // A record completely on disk with a bad CRC is corruption, not a torn
  // write — tolerant recovery must not silently discard it.
  {
    FileLogBroker log{{.dir = dir_}};
    log.publish("first-record-payload");
    log.publish("last-record-gets-corrupted");
  }
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) seg = e.path();
  {
    std::fstream f{seg, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(-3, std::ios::end);  // inside the LAST record's payload
    f.put('X');
  }
  EXPECT_THROW(FileLogBroker({.dir = dir_, .tolerate_torn_tail = true}), std::runtime_error);
}

TEST_F(FileLogTest, FsyncCadenceSurvivesSegmentRotation) {
  // Regression: the append counter was not reset when rotation fsynced the
  // old segment, so the new segment's first record could be synced
  // off-cadence. With 32-byte records, 64-byte segments, and interval 3,
  // every sync must come from rotation (2 appends per segment < 3) — the
  // buggy counter produced extra cadence syncs in fresh segments.
  FileLogBroker log{{.dir = dir_, .segment_bytes = 64, .fsync_interval = 3}};
  const std::string payload(24, 'p');  // 8-byte header + 24 = 32 bytes/record
  for (int i = 0; i < 6; ++i) log.publish(payload);
  EXPECT_EQ(log.segment_count(), 3u);
  EXPECT_EQ(log.fsync_count(), 2u);  // exactly the two rotations
}

TEST(FileLogCrc, MatchesKnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  EXPECT_EQ(FileLogBroker::crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace serve::broker
