// Seeded corruption fuzzing for the JPEG and PNG decoders.
//
// The serving stack feeds decoder errors into the payload-validation fault
// path, so the decoders must hold a hard contract on hostile bytes: every
// input either decodes to a well-formed image or throws jpeg::CodecError —
// never any other exception type, never a crash, hang, or giant allocation.
// This harness takes valid encoder output as the corpus and applies seeded
// byte flips and truncations (deterministic xorshift stream, reproducible
// from the test alone), and runs in the CI sanitizer job so ASan/UBSan see
// every mutated decode.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/jpeg.h"
#include "codec/png.h"
#include "codec/synthetic.h"

namespace serve::codec {
namespace {

struct XorShift {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  // Bounded draw; bias is irrelevant for fuzzing.
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

enum class Format { kJpeg, kPng };

struct SeedInput {
  std::string name;
  Format format;
  std::vector<std::uint8_t> bytes;
};

std::vector<SeedInput> build_corpus() {
  std::vector<SeedInput> corpus;
  const std::pair<Pattern, const char*> patterns[] = {
      {Pattern::kGradient, "gradient"},
      {Pattern::kTexture, "texture"},
      {Pattern::kScene, "scene"},
      {Pattern::kCheckers, "checkers"},
  };
  for (const auto& [pattern, pname] : patterns) {
    const Image rgb = make_synthetic(97, 61, pattern, 3);
    for (const auto sub : {Subsampling::k444, Subsampling::k420}) {
      JpegEncodeOptions opts;
      opts.quality = sub == Subsampling::k444 ? 90 : 60;
      opts.subsampling = sub;
      opts.restart_interval_mcus = sub == Subsampling::k420 ? 4 : 0;
      corpus.push_back({std::string("jpeg/") + pname +
                            (sub == Subsampling::k444 ? "/444" : "/420"),
                        Format::kJpeg, encode_jpeg(rgb, opts)});
    }
    corpus.push_back({std::string("png/") + pname, Format::kPng, encode_png(rgb)});
  }
  Image gray{64, 64, 1};
  const Image scene = make_synthetic(64, 64, Pattern::kScene, 9);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) gray.at(x, y, 0) = scene.at(x, y, 1);
  }
  corpus.push_back({"jpeg/gray", Format::kJpeg, encode_jpeg(gray)});
  corpus.push_back({"png/gray", Format::kPng, encode_png(gray)});
  return corpus;
}

// Decodes and returns true, throws CodecError and returns false, or fails the
// test on any other outcome (the contract violation this harness exists for).
bool decode_or_codec_error(Format format, std::span<const std::uint8_t> data) {
  try {
    const Image img = format == Format::kJpeg ? decode_jpeg(data) : decode_png(data);
    EXPECT_GT(img.width(), 0);
    EXPECT_GT(img.height(), 0);
    EXPECT_EQ(img.data().size(), static_cast<std::size_t>(img.width()) *
                                     static_cast<std::size_t>(img.height()) *
                                     static_cast<std::size_t>(img.channels()));
    return true;
  } catch (const jpeg::CodecError&) {
    return false;
  }
  // Anything else (std::bad_alloc, std::length_error, ...) propagates and
  // fails the test loudly.
}

TEST(CodecFuzz, SeedCorpusDecodesCleanly) {
  for (const auto& seed : build_corpus()) {
    SCOPED_TRACE(seed.name);
    EXPECT_TRUE(decode_or_codec_error(seed.format, seed.bytes));
  }
}

TEST(CodecFuzz, ByteFlipsEitherDecodeOrThrowCodecError) {
  const auto corpus = build_corpus();
  XorShift rng{0x5eed5eed5eed5eedULL};
  int decoded = 0, rejected = 0;
  for (const auto& seed : corpus) {
    for (int round = 0; round < 150; ++round) {
      auto mutated = seed.bytes;
      const int flips = 1 + static_cast<int>(rng.below(8));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      SCOPED_TRACE(seed.name + " round " + std::to_string(round));
      decode_or_codec_error(seed.format, mutated) ? ++decoded : ++rejected;
    }
  }
  // Both outcomes must actually occur, or the harness is testing nothing:
  // flips in entropy data often still decode, flips in headers must reject.
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 0);
}

TEST(CodecFuzz, TruncationsEitherDecodeOrThrowCodecError) {
  const auto corpus = build_corpus();
  XorShift rng{0xfeedfacecafebeefULL};
  for (const auto& seed : corpus) {
    for (int round = 0; round < 60; ++round) {
      const std::size_t keep = rng.below(seed.bytes.size());
      SCOPED_TRACE(seed.name + " truncated to " + std::to_string(keep));
      decode_or_codec_error(seed.format,
                            std::span<const std::uint8_t>{seed.bytes.data(), keep});
    }
    // Every prefix of the header region, exhaustively.
    for (std::size_t keep = 0; keep < 64 && keep < seed.bytes.size(); ++keep) {
      SCOPED_TRACE(seed.name + " header prefix " + std::to_string(keep));
      EXPECT_FALSE(decode_or_codec_error(
          seed.format, std::span<const std::uint8_t>{seed.bytes.data(), keep}));
    }
  }
}

TEST(CodecFuzz, CombinedFlipAndTruncate) {
  const auto corpus = build_corpus();
  XorShift rng{0x0123456789abcdefULL};
  for (const auto& seed : corpus) {
    for (int round = 0; round < 60; ++round) {
      auto mutated = seed.bytes;
      mutated.resize(1 + rng.below(mutated.size()));
      const int flips = 1 + static_cast<int>(rng.below(4));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      SCOPED_TRACE(seed.name + " round " + std::to_string(round));
      decode_or_codec_error(seed.format, mutated);
    }
  }
}

TEST(CodecFuzz, CorruptedDimensionsAreCappedNotAllocated) {
  // Force absurd dimensions directly into the headers: the decoders must
  // reject past their pixel cap instead of attempting a multi-GB allocation
  // (the exact failure payload corruption produces in the serving path).
  const Image img = make_synthetic(32, 32, Pattern::kScene, 1);

  auto jpg = encode_jpeg(img);
  // Find the SOF0 marker and overwrite height/width with 65535 x 65535.
  for (std::size_t i = 0; i + 8 < jpg.size(); ++i) {
    if (jpg[i] == 0xFF && jpg[i + 1] == 0xC0) {
      jpg[i + 5] = jpg[i + 6] = jpg[i + 7] = jpg[i + 8] = 0xFF;
      break;
    }
  }
  EXPECT_THROW((void)decode_jpeg(jpg), jpeg::CodecError);

  auto png = encode_png(img);
  // IHDR is always the first chunk: width at offset 16, height at 20. A CRC
  // fixup is not needed — the size check must fire either way, and the decoder
  // is free to reject on CRC instead; both are CodecError.
  for (std::size_t off : {16u, 17u, 18u, 20u, 21u, 22u}) png[off] = 0x7F;
  EXPECT_THROW((void)decode_png(png), jpeg::CodecError);
}

TEST(CodecFuzz, MutationStreamIsDeterministic) {
  // The harness itself must be reproducible: the same seed yields the same
  // mutation, so a failure report ("seed X round N") can be replayed exactly.
  XorShift a{42}, b{42};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace serve::codec
