// Tests for the ingress tier: the content-addressed preprocess cache, the
// raw-tensor request path, and their end-to-end semantics (determinism,
// fault-driven budget shrink, stage-time conservation under audit).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.h"
#include "hw/image_spec.h"
#include "metrics/export.h"
#include "metrics/registry.h"
#include "models/model_zoo.h"
#include "serving/ingress_cache.h"
#include "sim/fault_plan.h"
#include "workload/corpus.h"
#include "workload/popularity.h"

namespace serve {
namespace {

using serving::CacheLevel;
using serving::IngressCache;

constexpr std::int64_t kTensor224 = 224LL * 224 * 3 * 4;  // 602,112 B

IngressCache::Options tensor_only_opts(std::int64_t tensor_budget) {
  // Image level disabled (zero budget) so LRU behavior at the tensor level
  // is directly observable through hit/miss outcomes.
  return {.image_budget_bytes = 0, .tensor_budget_bytes = tensor_budget, .lookup_s = 0.0};
}

TEST(IngressCache, MissThenInsertThenLeveledHits) {
  IngressCache cache{{.image_budget_bytes = 8 << 20, .tensor_budget_bytes = 8 << 20}};
  EXPECT_EQ(cache.lookup(7, 224), CacheLevel::kNone);
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(7, /*decoded_bytes=*/562500, /*target_side=*/224);
  EXPECT_EQ(cache.lookup(7, 224), CacheLevel::kTensor);  // full artifact
  // The tensor is keyed by (content, target side): a different model input
  // side only finds the decoded image.
  EXPECT_EQ(cache.lookup(7, 384), CacheLevel::kImage);
  EXPECT_EQ(cache.tensor_hits(), 1u);
  EXPECT_EQ(cache.image_hits(), 1u);
  EXPECT_EQ(cache.lookups(), 3u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 2.0 / 3.0);
  EXPECT_EQ(cache.tensor_resident_bytes(), kTensor224);
  EXPECT_EQ(cache.image_resident_bytes(), 562500);
}

TEST(IngressCache, EvictionIsLeastRecentlyUsedAndDeterministic) {
  IngressCache cache{tensor_only_opts(3 * kTensor224)};
  cache.insert(1, 100, 224);
  cache.insert(2, 100, 224);
  cache.insert(3, 100, 224);
  ASSERT_EQ(cache.tensor_entries(), 3u);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_EQ(cache.lookup(1, 224), CacheLevel::kTensor);
  cache.insert(4, 100, 224);
  EXPECT_EQ(cache.tensor_evictions(), 1u);
  EXPECT_EQ(cache.lookup(2, 224), CacheLevel::kNone);  // evicted
  EXPECT_EQ(cache.lookup(1, 224), CacheLevel::kTensor);
  EXPECT_EQ(cache.lookup(3, 224), CacheLevel::kTensor);
  EXPECT_EQ(cache.lookup(4, 224), CacheLevel::kTensor);
  EXPECT_EQ(cache.tensor_resident_bytes(), 3 * kTensor224);
}

TEST(IngressCache, OversizedArtifactIsNotAdmitted) {
  IngressCache cache{tensor_only_opts(kTensor224 - 1)};
  cache.insert(9, 100, 224);
  EXPECT_EQ(cache.tensor_entries(), 0u);
  EXPECT_EQ(cache.tensor_resident_bytes(), 0);
  EXPECT_EQ(cache.lookup(9, 224), CacheLevel::kNone);
  EXPECT_EQ(cache.tensor_evictions(), 0u);  // refused, not admitted-then-evicted
}

TEST(IngressCache, ReinsertRefreshesInsteadOfDuplicating) {
  IngressCache cache{tensor_only_opts(2 * kTensor224)};
  cache.insert(1, 100, 224);
  cache.insert(2, 100, 224);
  cache.insert(1, 100, 224);  // refresh: 1 becomes most recently used
  cache.insert(3, 100, 224);  // evicts 2, not 1
  EXPECT_EQ(cache.lookup(2, 224), CacheLevel::kNone);
  EXPECT_EQ(cache.lookup(1, 224), CacheLevel::kTensor);
  EXPECT_EQ(cache.tensor_resident_bytes(), 2 * kTensor224);
}

TEST(IngressCache, BudgetScaleShrinksAndRestores) {
  IngressCache cache{tensor_only_opts(10 * kTensor224)};
  for (std::uint64_t h = 1; h <= 10; ++h) cache.insert(h, 100, 224);
  ASSERT_EQ(cache.tensor_entries(), 10u);

  cache.set_budget_scale(0.25);  // keeps floor(2.5) = 2 tensors
  EXPECT_EQ(cache.tensor_entries(), 2u);
  EXPECT_EQ(cache.tensor_evictions(), 8u);
  // LRU order: the two most recently inserted survive.
  EXPECT_EQ(cache.lookup(9, 224), CacheLevel::kTensor);
  EXPECT_EQ(cache.lookup(10, 224), CacheLevel::kTensor);

  cache.set_budget_scale(1.0);  // restores headroom; evicted entries stay gone
  EXPECT_EQ(cache.tensor_entries(), 2u);
  for (std::uint64_t h = 11; h <= 18; ++h) cache.insert(h, 100, 224);
  EXPECT_EQ(cache.tensor_entries(), 10u);
  EXPECT_EQ(cache.tensor_evictions(), 8u);

  EXPECT_THROW(cache.set_budget_scale(-0.1), std::invalid_argument);
}

TEST(IngressCache, RejectsBadOptions) {
  EXPECT_THROW(IngressCache({.image_budget_bytes = -1}), std::invalid_argument);
  EXPECT_THROW(IngressCache({.tensor_budget_bytes = -1}), std::invalid_argument);
  EXPECT_THROW(IngressCache({.lookup_s = -1e-6}), std::invalid_argument);
}

// --- content identity (cache keys never derive from geometry) ---------------

TEST(ContentHash, EqualSpecDifferentPixelsProduceDistinctKeys) {
  // Two payloads with byte-identical geometry (and even equal encoded size)
  // must never collide in the cache: the key is the payload, not the spec.
  const std::uint8_t a[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint8_t b[] = {1, 2, 3, 4, 5, 6, 7, 9};
  const auto ha = workload::content_hash_bytes(a, sizeof a);
  const auto hb = workload::content_hash_bytes(b, sizeof b);
  EXPECT_NE(ha, 0u);
  EXPECT_NE(hb, 0u);
  EXPECT_NE(ha, hb);

  workload::CorpusEntry ea{.spec = hw::kSmallImage, .jpeg = {}, .content_hash = ha};
  workload::CorpusEntry eb{.spec = hw::kSmallImage, .jpeg = {}, .content_hash = hb};
  ASSERT_EQ(ea.spec, eb.spec);

  IngressCache cache{{.image_budget_bytes = 8 << 20, .tensor_budget_bytes = 8 << 20}};
  cache.insert(ea.content_hash, ea.spec.decoded_bytes(), 224);
  EXPECT_EQ(cache.lookup(ea.content_hash, 224), CacheLevel::kTensor);
  EXPECT_EQ(cache.lookup(eb.content_hash, 224), CacheLevel::kNone);
}

TEST(ContentHash, RealCorpusEntriesCarryDistinctNonZeroHashes) {
  const auto corpus = workload::make_corpus(hw::kSmallImage, 3, 11);
  ASSERT_EQ(corpus.size(), 3u);
  for (const auto& e : corpus) EXPECT_NE(e.content_hash, 0u);
  EXPECT_NE(corpus[0].content_hash, corpus[1].content_hash);
  EXPECT_NE(corpus[1].content_hash, corpus[2].content_hash);
  // Stable: the same seed re-derives the same identities.
  const auto again = workload::make_corpus(hw::kSmallImage, 3, 11);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(corpus[i].content_hash, again[i].content_hash);
}

// --- end-to-end semantics ----------------------------------------------------

core::ExperimentSpec cached_spec(double skew, serving::PreprocDevice dev, hw::ImageSpec image) {
  constexpr int kDistinct = 128;
  core::ExperimentSpec spec;
  spec.server.model = models::tiny_vit();
  spec.server.preproc = dev;
  spec.server.audit = true;
  spec.server.ingress_cache.enabled = true;
  spec.server.ingress_cache.image_budget_bytes = 32 << 20;
  spec.server.ingress_cache.tensor_budget_bytes = 32 << 20;
  spec.image = image;
  spec.image_source =
      workload::popular_corpus_source(workload::make_spec_corpus(image, kDistinct),
                                      workload::PopularityModel::zipf(kDistinct, skew));
  spec.concurrency = 32;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(1.5);
  return spec;
}

TEST(IngressE2E, CpuPathCacheHitsAreConservedUnderAudit) {
  const auto r = core::run_experiment(cached_spec(1.1, serving::PreprocDevice::kCpu,
                                                  hw::kMediumImage));
  EXPECT_EQ(r.audit_violations, 0u) << (r.audit_report.empty() ? "" : r.audit_report.front());
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.cache_tensor_hits, 0u);
  // Hits skip the work but keep the stage: the probe span is charged to
  // preprocess, so the breakdown still shows the stage for hit requests.
  EXPECT_GT(r.stage_share(metrics::Stage::kPreprocess), 0.0);
}

TEST(IngressE2E, GpuPathCacheHitsAreConservedUnderAudit) {
  const auto r = core::run_experiment(cached_spec(1.1, serving::PreprocDevice::kGpu,
                                                  hw::kMediumImage));
  EXPECT_EQ(r.audit_violations, 0u) << (r.audit_report.empty() ? "" : r.audit_report.front());
  EXPECT_GT(r.cache_tensor_hits + r.cache_image_hits, 0u);
}

TEST(IngressE2E, RawTensorIngressIsConservedOnBothPreprocDevices) {
  for (auto dev : {serving::PreprocDevice::kGpu, serving::PreprocDevice::kCpu}) {
    core::ExperimentSpec spec;
    spec.server.model = models::resnet50();
    spec.server.preproc = dev;
    spec.server.ingress = serving::IngressFormat::kRawTensor;
    spec.server.audit = true;
    spec.concurrency = 32;
    spec.warmup = sim::seconds(0.5);
    spec.measure = sim::seconds(1.5);
    const auto r = core::run_experiment(spec);
    EXPECT_EQ(r.audit_violations, 0u)
        << (r.audit_report.empty() ? "" : r.audit_report.front());
    EXPECT_GT(r.completed, 0u);
    // No server preprocessing at all on this path.
    EXPECT_DOUBLE_EQ(r.stage_share(metrics::Stage::kPreprocess), 0.0);
  }
}

TEST(IngressE2E, PerRequestIngressOverridesServerDefault) {
  // Server default stays JPEG; the clients mark every request raw-tensor.
  constexpr int kDistinct = 16;
  core::ExperimentSpec spec;
  spec.server.model = models::resnet50();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.server.audit = true;
  spec.image_source = workload::popular_corpus_source(
      workload::make_spec_corpus(hw::kMediumImage, kDistinct),
      workload::PopularityModel::uniform(kDistinct), serving::RequestIngress::kRawTensor);
  spec.concurrency = 16;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(1.0);
  const auto r = core::run_experiment(spec);
  EXPECT_EQ(r.audit_violations, 0u) << (r.audit_report.empty() ? "" : r.audit_report.front());
  EXPECT_GT(r.completed, 0u);
  EXPECT_DOUBLE_EQ(r.stage_share(metrics::Stage::kPreprocess), 0.0);
}

std::string cache_run_fingerprint() {
  metrics::Registry reg;
  auto spec = cached_spec(1.1, serving::PreprocDevice::kCpu, hw::kMediumImage);
  spec.registry = &reg;
  const auto r = core::run_experiment(spec);
  metrics::TelemetryExport exp;
  exp.set_context("figure", "ingress-determinism");
  exp.capture_instruments(reg);
  std::ostringstream json, prom;
  exp.write_json(json);
  exp.write_prometheus(prom);
  return json.str() + "\n---\n" + prom.str() + "\n---\n" + std::to_string(r.cache_tensor_hits) +
         "/" + std::to_string(r.cache_image_hits) + "/" + std::to_string(r.cache_evictions);
}

TEST(IngressE2E, SameSeedRunsHaveByteIdenticalCountersAndExports) {
  EXPECT_EQ(cache_run_fingerprint(), cache_run_fingerprint());
}

TEST(IngressE2E, MemoryShrinkFaultEvictsCacheAndStaysConserved) {
  sim::FaultPlan faults;
  // Shrink lands inside the measurement window so the eviction storm is
  // visible in the window-scoped counters.
  faults.gpu_memory_shrink(sim::FaultWindow::kAllTargets, sim::seconds(0.8), sim::seconds(1.4),
                           /*keep_fraction=*/0.05);
  auto spec = cached_spec(1.1, serving::PreprocDevice::kCpu, hw::kMediumImage);
  spec.faults = &faults;
  const auto r = core::run_experiment(spec);
  EXPECT_EQ(r.audit_violations, 0u) << (r.audit_report.empty() ? "" : r.audit_report.front());
  EXPECT_GT(r.cache_evictions, 0u);
  EXPECT_GT(r.completed, 0u);
}

}  // namespace
}  // namespace serve
