// Tests for the hardware models: cost functions, memory stager eviction,
// energy accounting, and the model zoo.
#include <gtest/gtest.h>

#include "hw/calibration.h"
#include "hw/devices.h"
#include "hw/energy.h"
#include "hw/gpu_memory.h"
#include "hw/image_spec.h"
#include "hw/presets.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"

namespace serve {
namespace {

TEST(ImageSpec, PaperSizes) {
  EXPECT_EQ(hw::kSmallImage.pixels(), 60 * 70);
  EXPECT_EQ(hw::kMediumImage.pixels(), 500 * 375);
  EXPECT_EQ(hw::kLargeImage.pixels(), 3564LL * 2880);
  EXPECT_EQ(hw::kMediumImage.decoded_bytes(), 500 * 375 * 3);
  // Paper Sec 4.4: the fp32 tensor is ~5x the compressed medium image.
  const double ratio = static_cast<double>(hw::tensor_bytes(224)) /
                       static_cast<double>(hw::kMediumImage.compressed_bytes);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(CpuModel, PreprocessCostsScaleWithPixels) {
  sim::Simulator sim;
  hw::CpuModel cpu{sim, hw::default_calibration().cpu};
  const double s = cpu.preprocess_seconds(hw::kSmallImage, 224);
  const double m = cpu.preprocess_seconds(hw::kMediumImage, 224);
  const double l = cpu.preprocess_seconds(hw::kLargeImage, 224);
  EXPECT_LT(s, m);
  EXPECT_LT(m, l);
  // Calibration targets (DESIGN.md): medium ~3-4 ms, large >100 ms.
  EXPECT_GT(m, 2.5e-3);
  EXPECT_LT(m, 5.0e-3);
  EXPECT_GT(l, 0.1);
  // The in-server path is slower than the raw library loop.
  EXPECT_GT(cpu.preprocess_seconds(hw::kMediumImage, 224),
            cpu.raw_preprocess_seconds(hw::kMediumImage, 224));
}

TEST(GpuModel, BatchEfficiencyImprovesWithBatch) {
  sim::Simulator sim;
  const auto calib = hw::default_calibration();
  hw::GpuModel gpu{sim, calib.gpu, calib.pcie, 0};
  EXPECT_LT(gpu.batch_efficiency(1), gpu.batch_efficiency(8));
  EXPECT_LT(gpu.batch_efficiency(8), gpu.batch_efficiency(64));
  EXPECT_LE(gpu.batch_efficiency(1024), 1.0);
  // Per-image time falls with batch size.
  const double flops = models::vit_base().flops();
  const double b1 = gpu.inference_batch_seconds(flops, 1, 1.0, false);
  const double b32 = gpu.inference_batch_seconds(flops, 32, 1.0, false) / 32.0;
  EXPECT_GT(b1, 3.0 * b32);
}

TEST(GpuModel, BackendFactorsOrderThroughput) {
  const auto gpu = hw::default_calibration().gpu;
  EXPECT_LT(models::backend_factor(gpu, models::Backend::kPyTorch),
            models::backend_factor(gpu, models::Backend::kOnnxRuntime));
  EXPECT_LT(models::backend_factor(gpu, models::Backend::kOnnxRuntime),
            models::backend_factor(gpu, models::Backend::kTensorRT));
}

TEST(GpuModel, ContentionSlowsInference) {
  sim::Simulator sim;
  const auto calib = hw::default_calibration();
  hw::GpuModel gpu{sim, calib.gpu, calib.pcie, 0};
  const double flops = models::vit_base().flops();
  EXPECT_GT(gpu.inference_batch_seconds(flops, 16, 1.0, true),
            gpu.inference_batch_seconds(flops, 16, 1.0, false));
}

TEST(GpuModel, LargeImagesFallOffHardwareDecoder) {
  sim::Simulator sim;
  const auto calib = hw::default_calibration();
  hw::GpuModel gpu{sim, calib.gpu, calib.pcie, 0};
  // Marginal (per-pixel, excluding the per-image fixed cost) decode rate is
  // much slower for images beyond the hardware decoder's limits.
  const double fixed = calib.gpu.dali_image_fixed_s;
  const double m = (gpu.preproc_image_seconds(hw::kMediumImage) - fixed) /
                   static_cast<double>(hw::kMediumImage.pixels());
  const double l = (gpu.preproc_image_seconds(hw::kLargeImage) - fixed) /
                   static_cast<double>(hw::kLargeImage.pixels());
  EXPECT_GT(l, 2.0 * m);
}

TEST(GpuMemoryStager, EvictsLruUnderPressure) {
  hw::GpuMemoryStager stager{1000};
  const auto a = stager.stage(400);
  const auto b = stager.stage(400);
  EXPECT_EQ(stager.evictions(), 0u);
  const auto c = stager.stage(400);  // evicts a
  EXPECT_EQ(stager.evictions(), 1u);
  EXPECT_EQ(stager.claim(a), 400);  // evicted: must reload
  EXPECT_EQ(stager.claim(b), 0);    // resident
  EXPECT_EQ(stager.claim(c), 0);
  EXPECT_EQ(stager.staged_count(), 0u);
}

TEST(GpuMemoryStager, OversizedBufferAlwaysSpills) {
  hw::GpuMemoryStager stager{100};
  const auto h = stager.stage(1000);
  EXPECT_EQ(stager.claim(h), 1000);
}

TEST(GpuMemoryStager, ReleaseFreesWithoutReload) {
  hw::GpuMemoryStager stager{1000};
  const auto a = stager.stage(800);
  stager.release(a);
  const auto b = stager.stage(900);
  EXPECT_EQ(stager.claim(b), 0);
  EXPECT_EQ(stager.evictions(), 0u);
}

TEST(GpuMemoryStager, Errors) {
  EXPECT_THROW(hw::GpuMemoryStager{0}, std::invalid_argument);
  hw::GpuMemoryStager stager{100};
  EXPECT_THROW(stager.claim(42), std::logic_error);
  EXPECT_THROW(stager.stage(-1), std::invalid_argument);
}

TEST(Platform, ConstructionAndAccessors) {
  sim::Simulator sim;
  hw::Platform p{sim, {.gpu_count = 3}};
  EXPECT_EQ(p.gpu_count(), 3u);
  EXPECT_EQ(p.gpu(2).index(), 2);
  EXPECT_THROW((void)p.gpu(3), std::out_of_range);
  EXPECT_THROW((hw::Platform{sim, {.gpu_count = 0}}), std::invalid_argument);
}

TEST(Energy, IdleOnlyWhenNothingRan) {
  sim::Simulator sim;
  hw::Platform p{sim, {}};
  sim.run_until(sim::seconds(2.0));
  const auto e = hw::measure_energy(p, 0, sim.now());
  const auto& power = p.calib().power;
  EXPECT_NEAR(e.cpu_joules, power.cpu_idle_w * 2.0, 1e-6);
  EXPECT_NEAR(e.gpu_joules, power.gpu_idle_w * 2.0, 1e-6);
}

TEST(Energy, BusyComputeAddsEnergy) {
  sim::Simulator sim;
  hw::Platform p{sim, {}};
  auto burn = [&](sim::Simulator& s) -> sim::Process {
    auto tok = co_await p.gpu(0).compute().acquire();
    co_await s.wait(sim::seconds(1.0));
  };
  sim.spawn(burn(sim));
  sim.run_until(sim::seconds(2.0));
  const auto e = hw::measure_energy(p, 0, sim.now());
  const auto& power = p.calib().power;
  EXPECT_NEAR(e.gpu_joules, power.gpu_idle_w * 2.0 + power.gpu_compute_active_w * 1.0, 1e-6);
}

TEST(Presets, OrderedByCapability) {
  const auto desktop = hw::rtx4090_i9_preset();
  const auto server = hw::a100_server_preset();
  const auto edge = hw::edge_box_preset();
  EXPECT_GT(server.gpu.effective_flops, desktop.gpu.effective_flops);
  EXPECT_LT(edge.gpu.effective_flops, desktop.gpu.effective_flops / 10);
  EXPECT_GT(server.cpu.cores, desktop.cpu.cores);
  EXPECT_LT(edge.power.gpu_compute_active_w, desktop.power.gpu_compute_active_w / 5);
  EXPECT_GT(server.gpu.staging_budget_bytes, desktop.gpu.staging_budget_bytes);
}

TEST(Presets, LocalSubstrateOnlyRetunesCodecRates) {
  // The measured-substrate preset (calibrate --substrate) replaces just the
  // three codec rates; everything else must stay on the paper testbed so
  // figure shapes remain comparable.
  const auto local = hw::local_substrate_preset();
  const auto paper = hw::rtx4090_i9_preset();
  EXPECT_GT(local.cpu.decode_mpix_per_s, 0.0);
  EXPECT_GT(local.cpu.resize_mpix_per_s, local.cpu.decode_mpix_per_s);
  EXPECT_EQ(local.cpu.cores, paper.cpu.cores);
  EXPECT_EQ(local.gpu.effective_flops, paper.gpu.effective_flops);
  EXPECT_EQ(local.cpu.ingest_s, paper.cpu.ingest_s);
}

TEST(ModelZoo, SpansPaperRange) {
  const auto models = models::zoo();
  EXPECT_GE(models.size(), 15u);
  double min_gf = 1e9, max_gf = 0;
  bool has_seg = false, has_det = false, has_depth = false;
  for (const auto& m : models) {
    min_gf = std::min(min_gf, m.gflops);
    max_gf = std::max(max_gf, m.gflops);
    has_seg |= m.task == models::Task::kSegmentation;
    has_det |= m.task == models::Task::kDetection;
    has_depth |= m.task == models::Task::kDepthEstimation;
  }
  EXPECT_LT(min_gf, 1.0);    // sub-GFLOP models present
  EXPECT_GT(max_gf, 100.0);  // detection-scale models present
  EXPECT_TRUE(has_seg);
  EXPECT_TRUE(has_det);
  EXPECT_TRUE(has_depth);
}

TEST(ModelZoo, LookupAndNamedAccessors) {
  EXPECT_EQ(models::find_model("vit-base").name, "vit-base");
  EXPECT_THROW((void)models::find_model("nonexistent"), std::out_of_range);
  EXPECT_NEAR(models::vit_base().gflops, 17.58, 0.01);
  EXPECT_EQ(models::faster_rcnn().task, models::Task::kDetection);
  EXPECT_EQ(models::facenet().task, models::Task::kFaceIdentification);
  EXPECT_EQ(models::vit_base().input_tensor_bytes(), hw::tensor_bytes(224));
}

TEST(ModelZoo, NamesUnique) {
  const auto models = models::zoo();
  for (std::size_t i = 0; i < models.size(); ++i) {
    for (std::size_t j = i + 1; j < models.size(); ++j) {
      EXPECT_NE(models[i].name, models[j].name);
    }
  }
}

}  // namespace
}  // namespace serve
