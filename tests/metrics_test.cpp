// Unit and property tests for serve::metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "metrics/breakdown.h"
#include "metrics/energy_accumulator.h"
#include "metrics/histogram.h"
#include "metrics/stat_accumulator.h"
#include "metrics/table.h"
#include "sim/rng.h"

namespace serve::metrics {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Histogram, EmptyHistogramQuantilesAreExactlyZero) {
  // Documented contract: with count() == 0 every quantile — including
  // p999() — returns exactly 0.0. Consumers distinguish "no samples" from
  // "all zero" via count(); tools/report prints "no completed requests".
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0.0) << "q=" << q;
  }
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p999(), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(Histogram, ExemplarsTrackLastTracePerBucket) {
  Histogram h{{.track_exemplars = true}};
  h.add(0.010, 7);
  h.add(0.010, 0);   // trace_id 0 = unsampled: must not clobber the exemplar
  h.add(3.0, 41);
  h.add(3.0, 42);    // same bucket: last write wins
  const auto buckets = h.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].exemplar_trace_id, 7u);
  EXPECT_DOUBLE_EQ(buckets[0].exemplar_value, 0.010);
  EXPECT_EQ(buckets[1].exemplar_trace_id, 42u);
  EXPECT_DOUBLE_EQ(buckets[1].exemplar_value, 3.0);

  // Merge carries exemplars across; reset clears them.
  Histogram other{{.track_exemplars = true}};
  other.add(0.010, 99);
  h.merge(other);
  EXPECT_EQ(h.nonzero_buckets()[0].exemplar_trace_id, 99u);
  h.reset();
  EXPECT_TRUE(h.nonzero_buckets().empty());

  // Untracked histograms never retain exemplars even via the id overload.
  Histogram plain;
  plain.add(1.0, 123);
  EXPECT_EQ(plain.nonzero_buckets()[0].exemplar_trace_id, 0u);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  sim::Rng rng{7};
  StatAccumulator whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.lognormal(0.0, 1.5);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StatAccumulator, MergeIntoEmpty) {
  StatAccumulator a, b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(Histogram, RejectsBadOptions) {
  Histogram::Options o;
  o.min_value = 0.0;
  EXPECT_THROW(Histogram{o}, std::invalid_argument);
  o = {};
  o.growth = 1.0;
  EXPECT_THROW(Histogram{o}, std::invalid_argument);
  o = {};
  o.max_value = o.min_value;
  EXPECT_THROW(Histogram{o}, std::invalid_argument);
}

TEST(Histogram, SingleValueQuantiles) {
  Histogram h;
  h.add(0.042);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.p50(), 0.042, 0.042 * 0.05);
  EXPECT_NEAR(h.p99(), 0.042, 0.042 * 0.05);
}

TEST(Histogram, QuantileBoundedRelativeError) {
  Histogram h;
  sim::Rng rng{42};
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(std::log(0.010), 1.0);  // ~10ms median
    samples.push_back(x);
    h.add(x);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = samples[static_cast<std::size_t>(q * 20000.0)];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.08) << "q=" << q;
  }
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  sim::Rng rng{3};
  for (int i = 0; i < 5000; ++i) h.add(rng.exponential(100.0));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBuckets) {
  Histogram h{Histogram::Options{.min_value = 1e-3, .max_value = 1.0, .growth = 1.5}};
  h.add(1e-9);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(0.001);
  b.add(0.002);
  b.add(0.003);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, OverflowBucketQuantileStaysWithinObservedRange) {
  // Regression: with growth 2 over [1, 10] the overflow bucket's nominal
  // lower edge (16) exceeds an observed max of 12, so lo > hi and
  // quantile() was *decreasing* in q and overshot max(). Both bounds must
  // clamp to the observed range.
  Histogram h{Histogram::Options{.min_value = 1.0, .max_value = 10.0, .growth = 2.0}};
  h.add(12.0);
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, h.min()) << "q=" << q;
    EXPECT_LE(v, h.max()) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 12.0);
}

// Property test: quantiles are monotone in q and bounded by the observed
// min/max — for in-range, underflow, and overflow values, and after merge.
void check_quantile_properties(const Histogram& h) {
  double prev = h.quantile(0.0);
  for (double q = 0.0; q <= 1.0 + 1e-9; q += 0.01) {
    const double v = h.quantile(q);
    EXPECT_GE(v, h.min()) << "q=" << q;
    EXPECT_LE(v, h.max()) << "q=" << q;
    EXPECT_GE(v, prev - 1e-12) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, QuantilePropertiesHoldAcrossRangeAndMerge) {
  const Histogram::Options opts{.min_value = 1e-3, .max_value = 1.0, .growth = 1.7};
  Histogram a{opts}, b{opts};
  sim::Rng rng{17};
  for (int i = 0; i < 4000; ++i) {
    // Spread across 6 decades so both edge buckets and the interior fill.
    a.add(rng.lognormal(std::log(0.05), 2.0));
    b.add(rng.lognormal(std::log(2.0), 2.0));  // mostly overflow
  }
  check_quantile_properties(a);
  check_quantile_properties(b);
  a.merge(b);
  check_quantile_properties(a);
  EXPECT_EQ(a.count(), 8000u);
}

TEST(Histogram, MergeIncompatibleThrows) {
  Histogram a;
  Histogram b{Histogram::Options{.min_value = 1e-3, .max_value = 10.0, .growth = 2.0}};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, MergeRejectsShiftedRangeWithEqualBucketCount) {
  // Regression: merge() used to compare only bucket-vector sizes, so two
  // layouts with the same min/max ratio (hence the same bucket count) but
  // different edges merged silently, scrambling quantiles by 10x here.
  Histogram a{Histogram::Options{.min_value = 1e-6, .max_value = 1e3, .growth = 1.04}};
  Histogram b{Histogram::Options{.min_value = 1e-5, .max_value = 1e4, .growth = 1.04}};
  ASSERT_EQ(a.bucket_count(), b.bucket_count());  // the shape the bug needs
  b.add(0.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);

  Histogram c{Histogram::Options{.min_value = 1e-6, .max_value = 1e3, .growth = 1.04}};
  c.add(0.5);
  a.merge(c);  // identical layouts still merge
  EXPECT_EQ(a.count(), 1u);
}

TEST(Histogram, MergePreservesQuantilesAcrossShards) {
  // Sharded recording (one histogram per worker) must agree with a single
  // histogram fed the union of the samples — the property the layout check
  // protects.
  sim::Rng rng{11};
  Histogram whole, s1, s2;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.lognormal(-4.0, 1.0);
    whole.add(x);
    (i % 2 == 0 ? s1 : s2).add(x);
  }
  s1.merge(s2);
  EXPECT_EQ(s1.count(), whole.count());
  EXPECT_DOUBLE_EQ(s1.p50(), whole.p50());
  EXPECT_DOUBLE_EQ(s1.p99(), whole.p99());
}

// Property sweep: percentile estimates stay within the configured growth
// factor's relative error bound for several distributions.
class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, RelativeErrorWithinGrowthBound) {
  const int seed = GetParam();
  sim::Rng rng{static_cast<std::uint64_t>(seed)};
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 8000; ++i) {
    double x = 0.0;
    switch (seed % 3) {
      case 0: x = rng.exponential(50.0); break;
      case 1: x = rng.uniform(0.001, 0.5); break;
      default: x = rng.lognormal(std::log(0.05), 0.7); break;
    }
    samples.push_back(x);
    h.add(x);
  }
  std::sort(samples.begin(), samples.end());
  const double exact_p90 = samples[7200];
  // Bucket growth 1.04 plus interpolation: allow 8% relative error.
  EXPECT_NEAR(h.quantile(0.9), exact_p90, exact_p90 * 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest, ::testing::Range(1, 13));

TEST(Breakdown, SharesSumToOne) {
  Breakdown b;
  StageTimes t;
  t[Stage::kPreprocess] = 0.002;
  t[Stage::kInference] = 0.001;
  t[Stage::kQueue] = 0.001;
  b.add(t);
  double total_share = 0.0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    total_share += b.share(static_cast<Stage>(i));
  }
  EXPECT_NEAR(total_share, 1.0, 1e-12);
  EXPECT_NEAR(b.share(Stage::kPreprocess), 0.5, 1e-12);
}

TEST(Breakdown, MeanTotalsMatch) {
  Breakdown b;
  for (int i = 1; i <= 4; ++i) {
    StageTimes t;
    t[Stage::kInference] = 0.001 * i;
    b.add(t);
  }
  EXPECT_EQ(b.count(), 4u);
  EXPECT_NEAR(b.mean_total(), 0.0025, 1e-12);
  EXPECT_NEAR(b.mean(Stage::kInference), 0.0025, 1e-12);
}

TEST(Breakdown, StageNamesDistinct) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    for (std::size_t j = i + 1; j < kStageCount; ++j) {
      EXPECT_NE(stage_name(static_cast<Stage>(i)), stage_name(static_cast<Stage>(j)));
    }
  }
}

TEST(EnergyAccumulator, PerImageAttribution) {
  EnergyAccumulator e;
  e.add_cpu(100.0, 2.0);  // 200 J
  e.add_gpu(300.0, 1.0);  // 300 J
  e.count_image(100);
  EXPECT_DOUBLE_EQ(e.cpu_joules_per_image(), 2.0);
  EXPECT_DOUBLE_EQ(e.gpu_joules_per_image(), 3.0);
  EXPECT_DOUBLE_EQ(e.joules_per_image(), 5.0);
  EXPECT_DOUBLE_EQ(e.total_joules(), 500.0);
}

TEST(EnergyAccumulator, NoImagesNoDivision) {
  EnergyAccumulator e;
  e.add_cpu(10.0, 1.0);
  EXPECT_DOUBLE_EQ(e.joules_per_image(), 0.0);
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"model", "tput", "count"});
  t.add_row({std::string("vit-base"), 1612.5, std::int64_t{3}});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("vit-base"), std::string::npos);
  EXPECT_NE(s.find("1612.50"), std::string::npos);
  EXPECT_NE(s.find("model"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({std::string("x,y"), std::string("q\"z")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"q\"\"z\"\n");
}

TEST(Table, MarkdownShape) {
  Table t({"h1", "h2"});
  t.add_row({1.0, 2.0});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(os.str().find("|---|---|"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"only"});
  EXPECT_THROW(t.add_row({1.0, 2.0}), std::invalid_argument);
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(4);
  t.add_row({3.14159});
  EXPECT_EQ(t.cell_text(0, 0), "3.1416");
}

}  // namespace
}  // namespace serve::metrics
