// Tests for sim::Task<T> — the awaitable sub-coroutine used to compose
// pipeline fragments (broker publish/consume, transfers).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/process.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace serve::sim {
namespace {

Task<int> add_later(Simulator& sim, int a, int b) {
  co_await sim.wait(milliseconds(1));
  co_return a + b;
}

TEST(Task, ReturnsValueAfterVirtualDelay) {
  Simulator sim;
  int result = 0;
  Time done_at = -1;
  auto runner = [&](Simulator& s) -> Process {
    result = co_await add_later(s, 2, 3);
    done_at = s.now();
  };
  sim.spawn(runner(sim));
  sim.run();
  EXPECT_EQ(result, 5);
  EXPECT_EQ(done_at, milliseconds(1));
}

Task<> step(Simulator& sim, std::vector<int>& log, int id) {
  log.push_back(id);
  co_await sim.wait(milliseconds(1));
  log.push_back(-id);
}

TEST(Task, SequentialCompositionPreservesOrder) {
  Simulator sim;
  std::vector<int> log;
  auto runner = [&](Simulator& s) -> Process {
    co_await step(s, log, 1);
    co_await step(s, log, 2);
    co_await step(s, log, 3);
  };
  sim.spawn(runner(sim));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, -1, 2, -2, 3, -3}));
  EXPECT_EQ(sim.now(), milliseconds(3));
}

Task<std::string> failing_task(Simulator& sim) {
  co_await sim.wait(milliseconds(1));
  throw std::runtime_error("task boom");
  co_return "unreachable";
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  auto runner = [&](Simulator& s) -> Process {
    try {
      auto v = co_await failing_task(s);
      (void)v;
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "task boom";
    }
  };
  sim.spawn(runner(sim));
  sim.run();
  EXPECT_TRUE(caught);
}

Task<int> nested_inner(Simulator& sim) {
  co_await sim.wait(milliseconds(1));
  co_return 10;
}

Task<int> nested_outer(Simulator& sim) {
  const int inner = co_await nested_inner(sim);
  co_await sim.wait(milliseconds(1));
  co_return inner * 2;
}

TEST(Task, NestedTasksCompose) {
  Simulator sim;
  int result = 0;
  auto runner = [&](Simulator& s) -> Process { result = co_await nested_outer(s); };
  sim.spawn(runner(sim));
  sim.run();
  EXPECT_EQ(result, 20);
  EXPECT_EQ(sim.now(), milliseconds(2));
}

Task<> acquire_and_hold(Simulator& sim, Resource& res, Time hold) {
  auto tok = co_await res.acquire();
  co_await sim.wait(hold);
}

TEST(Task, CanAwaitResourcesInside) {
  Simulator sim;
  Resource res{sim, 1};
  Time second_done = -1;
  auto runner = [&](Simulator& s, bool record) -> Process {
    co_await acquire_and_hold(s, res, milliseconds(5));
    if (record) second_done = s.now();
  };
  sim.spawn(runner(sim, false));
  sim.spawn(runner(sim, true));
  sim.run();
  EXPECT_EQ(second_done, milliseconds(10));  // serialized on the resource
}

TEST(Task, MoveOnlyResultTypes) {
  Simulator sim;
  auto make = [](Simulator& s) -> Task<std::unique_ptr<int>> {
    co_await s.wait(milliseconds(1));
    co_return std::make_unique<int>(42);
  };
  int got = 0;
  auto runner = [&](Simulator& s) -> Process {
    auto p = co_await make(s);
    got = *p;
  };
  sim.spawn(runner(sim));
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(Task, UnawaitedTaskIsDestroyedCleanly) {
  // A Task that is created but never awaited must not leak its frame.
  Simulator sim;
  {
    auto t = add_later(sim, 1, 1);
    (void)t;
  }  // destructor runs here, frame destroyed without ever starting
  sim.run();
  SUCCEED();
}

}  // namespace
}  // namespace serve::sim
