// Tests for the unified telemetry layer: registry identity rules, flight-
// recorder determinism and ring wraparound, and exporter golden output.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/experiment.h"
#include "metrics/export.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "models/model_zoo.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace serve {
namespace {

using metrics::FlightRecorder;
using metrics::Registry;
using metrics::TelemetryExport;

// --- registry identity rules -------------------------------------------------

TEST(RegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  Registry reg;
  auto a = reg.counter("requests_total", {{"stage", "queue"}});
  auto b = reg.counter("requests_total", {{"stage", "queue"}});
  a.inc(2.0);
  b.inc(3.0);
  EXPECT_DOUBLE_EQ(a.value(), 5.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryTest, LabelOrderDoesNotSplitInstruments) {
  Registry reg;
  auto a = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  auto b = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  a.inc();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryTest, RejectsTypeCollision) {
  Registry reg;
  (void)reg.counter("metric");
  EXPECT_THROW((void)reg.gauge("metric"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("metric"), std::invalid_argument);
}

TEST(RegistryTest, RejectsLabelKeySetCollision) {
  Registry reg;
  (void)reg.counter("metric", {{"device", "gpu0"}});
  // Same key set, different value: a new time series, allowed.
  EXPECT_NO_THROW((void)reg.counter("metric", {{"device", "gpu1"}}));
  // Different key set under the same name: the Prometheus label collision.
  EXPECT_THROW((void)reg.counter("metric", {{"stage", "queue"}}), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("metric"), std::invalid_argument);
}

TEST(RegistryTest, RejectsDuplicateLabelKey) {
  Registry reg;
  EXPECT_THROW((void)reg.counter("metric", {{"k", "1"}, {"k", "2"}}), std::invalid_argument);
}

TEST(RegistryTest, FreezeCallbacksDetachesFromComponents) {
  Registry reg;
  int depth = 7;
  reg.gauge_fn("queue_depth", {}, [&depth] { return static_cast<double>(depth); });
  reg.freeze_callbacks();
  depth = 99;  // must not be observed any more
  const auto snap = reg.find("queue_depth");
  ASSERT_TRUE(snap.has_value());
  EXPECT_DOUBLE_EQ(snap->value, 7.0);
}

TEST(RegistryTest, CallbackReregistrationRebinds) {
  Registry reg;
  reg.gauge_fn("g", {}, [] { return 1.0; });
  reg.gauge_fn("g", {}, [] { return 2.0; });
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_DOUBLE_EQ(reg.find("g")->value, 2.0);
}

TEST(RegistryTest, DisabledHandlesAreNoops) {
  metrics::Counter c;
  metrics::Gauge g;
  metrics::HistogramHandle h;
  c.inc();
  g.set(5.0);
  h.observe(1.0);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

// --- histogram additions -----------------------------------------------------

TEST(HistogramTest, P999AndBucketExport) {
  metrics::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_GE(h.p999(), h.p99());
  EXPECT_GT(h.p999(), 900.0);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  const auto buckets = h.nonzero_buckets();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0;
  double prev_upper = -1.0;
  for (const auto& b : buckets) {
    EXPECT_GT(b.count, 0u);
    EXPECT_GT(b.upper, prev_upper);  // ascending, disjoint
    prev_upper = b.upper;
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, SamplesOnCadenceAndStops) {
  Registry reg;
  auto c = reg.counter("events_total");
  FlightRecorder rec{reg, {.period = sim::milliseconds(10), .capacity = 128}};
  sim::Simulator sim;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(sim::milliseconds(10 * i - 5), [&c] { c.inc(); });
  }
  rec.start(sim);
  sim.run_until(sim::milliseconds(45));
  rec.stop();
  sim.run();  // drain must terminate with the recorder stopped

  const auto series = rec.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "events_total");
  // Ticks at t=0,10,...,40 -> counter values 0,1,2,3,4.
  ASSERT_EQ(series[0].samples.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(series[0].samples[i], static_cast<double>(i));
  }
}

TEST(FlightRecorderTest, RingWraparoundKeepsNewestSamples) {
  Registry reg;
  auto g = reg.gauge("value");
  FlightRecorder rec{reg, {.period = sim::milliseconds(1), .capacity = 4}};
  sim::Simulator sim;
  // Value tracks the tick index: sample k observes k.
  int k = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(sim::milliseconds(i), [&g, &k] { g.set(static_cast<double>(k++)); });
  }
  rec.start(sim);
  sim.run_until(sim::milliseconds(9));
  rec.stop();

  const auto series = rec.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].total_samples, 10u);
  EXPECT_EQ(series[0].start_tick, 6u);  // 10 samples, capacity 4 -> ticks 6..9
  ASSERT_EQ(series[0].samples.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(series[0].samples[i], static_cast<double>(6 + i));
  }
}

TEST(FlightRecorderTest, LateRegisteredInstrumentJoinsMidFlight) {
  Registry reg;
  (void)reg.counter("early");
  FlightRecorder rec{reg, {.period = sim::milliseconds(1), .capacity = 16}};
  sim::Simulator sim;
  sim.schedule_at(sim::milliseconds(2), [&reg] { (void)reg.gauge("late"); });
  rec.start(sim);
  sim.run_until(sim::milliseconds(5));
  rec.stop();

  const auto series = rec.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].samples.size(), 6u);  // ticks 0..5
  EXPECT_EQ(series[1].name, "late");
  EXPECT_GE(series[1].start_tick, 2u);  // joined once its registration ran
  EXPECT_EQ(series[1].start_tick + series[1].samples.size(), 6u);
}

TEST(FlightRecorderTest, WallClockInstrumentsExcludedFromSeries) {
  Registry reg;
  auto w = reg.wall_clock_counter("self_seconds_total");
  (void)reg.counter("real_total");
  w.inc(0.5);
  FlightRecorder rec{reg};
  sim::Simulator sim;
  rec.start(sim);
  rec.stop();
  const auto series = rec.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "real_total");
}

// --- end-to-end determinism --------------------------------------------------

core::ExperimentSpec small_spec() {
  core::ExperimentSpec spec;
  spec.server.model = models::resnet50();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.concurrency = 64;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(1.0);
  return spec;
}

std::string recorded_json(int concurrency) {
  Registry reg;
  FlightRecorder rec{reg, {.period = sim::milliseconds(50), .capacity = 64}};
  auto spec = small_spec();
  spec.concurrency = concurrency;
  spec.registry = &reg;
  spec.recorder = &rec;
  (void)core::run_experiment(spec);
  TelemetryExport exp;
  exp.set_context("figure", "determinism-test");
  exp.capture_instruments(reg);
  exp.capture_series(rec);
  std::ostringstream json, csv;
  exp.write_json(json);
  exp.write_csv(csv);
  return json.str() + "\n---\n" + csv.str();
}

TEST(TelemetryDeterminismTest, RepeatedRunsProduceBitIdenticalExports) {
  const std::string a = recorded_json(64);
  const std::string b = recorded_json(64);
  EXPECT_EQ(a, b);  // byte-for-byte, JSON and CSV
}

TEST(TelemetryDeterminismTest, DifferentRunsDiverge) {
  EXPECT_NE(recorded_json(64), recorded_json(32));
}

TEST(TelemetryDeterminismTest, InstrumentsAgreeWithExperimentResult) {
  Registry reg;
  auto spec = small_spec();
  spec.registry = &reg;
  const auto r = core::run_experiment(spec);
  // Registry counters are whole-run (submit..drain); the window-scoped
  // result can only be <= the cumulative completion counter.
  const auto completed = reg.find("serving_requests_completed_total");
  ASSERT_TRUE(completed.has_value());
  EXPECT_GE(completed->value, static_cast<double>(r.completed));
  const auto latency = reg.find("serving_request_latency_seconds");
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(latency->count, static_cast<std::uint64_t>(completed->value));
  EXPECT_FALSE(latency->buckets.empty());
}

// --- exporter golden output --------------------------------------------------

TelemetryExport tiny_export() {
  // Deterministic fixture: fixed, binary-exact values; the export snapshots
  // the registry, so a local one is fine.
  Registry reg;
  auto c = reg.counter("requests_total", {{"stage", "queue"}});
  c.inc(41.0);
  c.inc();
  auto g = reg.gauge("depth");
  g.set(3.5);
  auto h = reg.histogram("latency_seconds");
  h.observe(0.5);
  h.observe(0.5);
  h.observe(2.0);
  TelemetryExport exp;
  exp.set_context("figure", "golden");
  exp.add_benchmark({"bench/a", 12.5, "ms", {{"tput", 80.0}}});
  exp.add_check({"claim holds", true, "42 == 42"});
  exp.capture_instruments(reg);
  return exp;
}

TEST(ExporterGoldenTest, Json) {
  std::ostringstream out;
  tiny_export().write_json(out);
  // Exact prefix up to the histogram's bucket edges (which depend on the
  // geometric bucket layout — asserted structurally instead).
  const std::string expected_prefix = R"({
  "schema": "servescope-telemetry-v1",
  "context": {"figure": "golden"},
  "benchmarks": [
    {"name": "bench/a", "real_time": 12.5, "time_unit": "ms", "tput": 80}
  ],
  "checks": [
    {"claim": "claim holds", "pass": true, "detail": "42 == 42"}
  ],
  "tables": [],
  "instruments": [
    {"name": "requests_total", "labels": {"stage":"queue"}, "type": "counter", "value": 42},
    {"name": "depth", "labels": {}, "type": "gauge", "value": 3.5},
    {"name": "latency_seconds", "labels": {}, "type": "histogram", "count": 3, "sum": 3, "min": 0.5, "max": 2, "buckets": [)";
  EXPECT_EQ(out.str().substr(0, expected_prefix.size()), expected_prefix);
  EXPECT_NE(out.str().find("\"buckets\": [{\"le\": "), std::string::npos);
  EXPECT_NE(out.str().find(", \"count\": 3}]}"), std::string::npos);  // cumulative tail bucket
  EXPECT_EQ(out.str().substr(out.str().size() - 3), "\n}\n");
}

TEST(ExporterGoldenTest, Csv) {
  std::ostringstream out;
  tiny_export().write_csv(out);
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')), "record,name,labels,x,value");
  EXPECT_NE(text.find("counter,requests_total,stage=queue,,42\n"), std::string::npos);
  EXPECT_NE(text.find("gauge,depth,,,3.5\n"), std::string::npos);
  EXPECT_NE(text.find("histogram,latency_seconds,,count,3\n"), std::string::npos);
  EXPECT_NE(text.find("histogram,latency_seconds,,sum,3\n"), std::string::npos);
  EXPECT_NE(text.find("bucket,latency_seconds,"), std::string::npos);
}

TEST(ExporterGoldenTest, Prometheus) {
  std::ostringstream out;
  tiny_export().write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE requests_total counter\n"
                      "requests_total{stage=\"queue\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\ndepth 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3\n"), std::string::npos);
}

TEST(ExporterCsvQuotingTest, HostileLabelValuesStayOneFieldPerColumn) {
  Registry reg;
  // RFC-4180 hazards: embedded comma, double quote, and CR/LF in a label
  // value. A reader splitting on commas must still see exactly 5 columns.
  auto c = reg.counter("requests_total", {{"route", "a,b"}});
  c.inc(7.0);
  auto g = reg.gauge("depth", {{"note", "say \"hi\""}});
  g.set(1.0);
  auto g2 = reg.gauge("depth2", {{"raw", "line1\r\nline2"}});
  g2.set(2.0);
  TelemetryExport exp;
  exp.capture_instruments(reg);
  std::ostringstream out;
  exp.write_csv(out);
  const std::string text = out.str();
  // Comma-bearing value is quoted whole; embedded quotes are doubled.
  EXPECT_NE(text.find("counter,requests_total,\"route=a,b\",,7\n"), std::string::npos);
  EXPECT_NE(text.find("gauge,depth,\"note=say \"\"hi\"\"\",,1\n"), std::string::npos);
  EXPECT_NE(text.find("\"raw=line1\r\nline2\""), std::string::npos);
  // The unquoted form must NOT appear (it would split the row).
  EXPECT_EQ(text.find("counter,requests_total,route=a,b,,7"), std::string::npos);
}

TEST(ExporterExemplarTest, JsonCarriesBucketExemplarsWhenTracked) {
  Registry reg;
  auto h = reg.histogram("latency_seconds", {}, {.track_exemplars = true});
  h.observe(0.010, /*trace_id=*/7);
  h.observe(5.0, /*trace_id=*/42);
  h.observe(5.0, /*trace_id=*/43);  // last-write-wins in the same bucket
  TelemetryExport exp;
  exp.capture_instruments(reg);
  std::ostringstream out;
  exp.write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"exemplar\": {\"trace_id\": 7, \"value\": 0.01}"), std::string::npos);
  EXPECT_NE(text.find("\"exemplar\": {\"trace_id\": 43, \"value\": 5}"), std::string::npos);
  EXPECT_EQ(text.find("\"trace_id\": 42"), std::string::npos);

  // Without tracking (the default), no exemplar keys appear at all.
  Registry plain;
  auto hp = plain.histogram("latency_seconds");
  hp.observe(5.0, /*trace_id=*/42);
  TelemetryExport exp2;
  exp2.capture_instruments(plain);
  std::ostringstream out2;
  exp2.write_json(out2);
  EXPECT_EQ(out2.str().find("exemplar"), std::string::npos);
}

// --- trace instants ----------------------------------------------------------

TEST(TraceInstantTest, FaultWindowsAnnotateTrace) {
  sim::FaultPlan plan;
  plan.add({.kind = sim::FaultKind::kBrokerOutage,
            .begin = sim::seconds(1.0),
            .end = sim::seconds(2.0)});
  sim::TraceRecorder trace;
  plan.annotate(trace);
  EXPECT_EQ(trace.instant_count(), 2u);
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("broker-outage open"), std::string::npos);
  EXPECT_NE(text.find("broker-outage close"), std::string::npos);
}

}  // namespace
}  // namespace serve
