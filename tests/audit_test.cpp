// Tests for the request-lifecycle auditor: conservation, hygiene, and
// monotonicity checks pass clean on healthy end-to-end runs, catch seeded
// violations, and stream per-request stage spans into the trace recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "hw/image_spec.h"
#include "models/model_zoo.h"
#include "serving/audit.h"
#include "serving/client.h"
#include "serving/server.h"
#include "sim/trace.h"

namespace serve {
namespace {

using metrics::Stage;
using serving::RequestAuditor;

bool has_check(const RequestAuditor& a, const std::string& check) {
  return std::any_of(a.violations().begin(), a.violations().end(),
                     [&](const RequestAuditor::Violation& v) { return v.check == check; });
}

// --- end-to-end: healthy servers audit clean ---------------------------------

class AuditPreprocGrid : public ::testing::TestWithParam<serving::PreprocDevice> {};

TEST_P(AuditPreprocGrid, CleanAfterLoadAndDrain) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.preproc = GetParam();
  cfg.audit = true;
  serving::InferenceServer server{platform, cfg};
  ASSERT_NE(server.auditor(), nullptr);
  serving::ClosedLoopClients clients{
      server, {.concurrency = 32, .image_source = serving::fixed_image(hw::kMediumImage)}};
  clients.start();
  sim.run_until(sim::seconds(3.0));
  clients.stop();
  sim.run();
  server.shutdown();

  const auto& audit = *server.auditor();
  EXPECT_TRUE(audit.finalized());
  for (const auto& line : audit.report()) ADD_FAILURE() << "audit: " << line;
  EXPECT_TRUE(audit.clean());
  EXPECT_GT(audit.submitted(), 100u);
  EXPECT_EQ(audit.submitted(), audit.completed() + audit.dropped());
  EXPECT_EQ(audit.in_flight(), 0u);
  EXPECT_EQ(server.lost_handoffs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(PreprocDevices, AuditPreprocGrid,
                         ::testing::Values(serving::PreprocDevice::kCpu,
                                           serving::PreprocDevice::kGpu));

TEST(AuditEndToEnd, ShedsAuditCleanToo) {
  // Dropped requests must conserve stage time and be counted exactly once.
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.audit = true;
  cfg.shed_deadline = sim::milliseconds(50);
  serving::InferenceServer server{platform, cfg};
  serving::ClosedLoopClients clients{
      server, {.concurrency = 512, .image_source = serving::fixed_image(hw::kMediumImage)}};
  clients.start();
  sim.run_until(sim::seconds(3.0));
  clients.stop();
  sim.run();
  server.shutdown();

  const auto& audit = *server.auditor();
  EXPECT_GT(audit.dropped(), 0u);  // overload actually shed something
  for (const auto& line : audit.report()) ADD_FAILURE() << "audit: " << line;
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.submitted(), audit.completed() + audit.dropped());
}

TEST(AuditEndToEnd, ChargeAfterCompletionIsFlagged) {
  // Seeded violation: once a request completed, any further stage charge is
  // an accounting error the auditor must catch.
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.audit = true;
  serving::InferenceServer server{platform, cfg};
  auto req = std::make_shared<serving::Request>(sim, 1, hw::kMediumImage);
  server.submit(req);
  sim.run();
  ASSERT_TRUE(req->done.is_set());
  ASSERT_TRUE(server.auditor()->clean());
  req->charge(Stage::kIngest, sim::seconds(0.5));  // rogue late charge
  EXPECT_FALSE(server.auditor()->clean());
  EXPECT_TRUE(has_check(*server.auditor(), "charge-after-completion"));
  server.shutdown();
}

TEST(AuditEndToEnd, AuditOffMeansNoAuditor) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  serving::InferenceServer server{platform, cfg};
  EXPECT_EQ(server.auditor(), nullptr);
  server.shutdown();
}

// --- seeded violations against the auditor API -------------------------------

TEST(RequestAuditor, CleanLifecyclePasses) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request req{sim, 7, hw::kMediumImage};
  audit.on_submit(req);
  req.enqueue_time = sim::seconds(0.2);
  req.charge(Stage::kQueue, sim::seconds(0.4));
  req.charge(Stage::kInference, sim::seconds(0.6));
  req.completed = sim::seconds(1.0);
  audit.on_complete(req);
  audit.finalize();
  EXPECT_TRUE(audit.clean()) << (audit.report().empty() ? "" : audit.report().front());
  EXPECT_EQ(audit.submitted(), 1u);
  EXPECT_EQ(audit.completed(), 1u);
}

TEST(RequestAuditor, DetectsDeliberatelyLeakedRequest) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request req{sim, 9, hw::kMediumImage};
  audit.on_submit(req);
  audit.finalize();  // request never completed nor dropped
  EXPECT_FALSE(audit.clean());
  EXPECT_TRUE(has_check(audit, "leaked-request"));
  EXPECT_TRUE(has_check(audit, "request-conservation"));
  EXPECT_EQ(audit.in_flight(), 1u);
}

TEST(RequestAuditor, DetectsStageTimeDrift) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request req{sim, 3, hw::kMediumImage};
  audit.on_submit(req);
  req.charge(Stage::kPreprocess, sim::seconds(0.25));  // only covers a quarter
  req.completed = sim::seconds(1.0);
  audit.on_complete(req);
  ASSERT_FALSE(audit.clean());
  ASSERT_TRUE(has_check(audit, "stage-conservation"));
  const auto& v = audit.violations().front();
  EXPECT_NE(v.detail.find("sum(stages)"), std::string::npos) << v.detail;
}

TEST(RequestAuditor, DetectsOverAccounting) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request req{sim, 4, hw::kMediumImage};
  audit.on_submit(req);
  req.charge(Stage::kInference, sim::seconds(1.0));
  req.charge(Stage::kInference, sim::seconds(1.0));  // same second charged twice
  req.completed = sim::seconds(1.0);
  audit.on_complete(req);
  ASSERT_TRUE(has_check(audit, "stage-conservation"));
  EXPECT_NE(audit.violations().front().detail.find("inference"), std::string::npos);
}

TEST(RequestAuditor, DetectsDoubleCompletion) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request req{sim, 5, hw::kMediumImage};
  audit.on_submit(req);
  req.completed = 0;
  audit.on_complete(req);
  audit.on_complete(req);  // done set twice
  EXPECT_TRUE(has_check(audit, "double-completion"));
}

TEST(RequestAuditor, DetectsMonotonicityViolations) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request before{sim, 6, hw::kMediumImage};
  audit.on_submit(before);
  before.completed = -5;  // before arrival
  audit.on_complete(before);
  EXPECT_TRUE(has_check(audit, "monotonicity"));

  RequestAuditor audit2;
  serving::Request outside{sim, 8, hw::kMediumImage};
  audit2.on_submit(outside);
  outside.completed = sim::seconds(1.0);
  outside.enqueue_time = sim::seconds(2.0);  // after completion
  audit2.on_complete(outside);
  EXPECT_TRUE(has_check(audit2, "monotonicity"));
}

TEST(RequestAuditor, ResourceHygieneChecksZero) {
  RequestAuditor audit;
  audit.check_zero("gpu0.stager.staged_count", 0);
  EXPECT_TRUE(audit.clean());
  audit.check_zero("gpu0.inf_batcher.queued", 3);
  EXPECT_FALSE(audit.clean());
  EXPECT_TRUE(has_check(audit, "resource-hygiene"));
}

TEST(RequestAuditor, LostHandoffIsAlwaysAViolation) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request req{sim, 2, hw::kMediumImage};
  audit.on_submit(req);
  audit.on_lost_handoff(req, "inference");
  EXPECT_TRUE(has_check(audit, "lost-handoff"));
}

TEST(RequestAuditor, ReportCapsStoredViolationsButCountsAll) {
  RequestAuditor audit{RequestAuditor::Options{.max_recorded = 2}};
  for (int i = 0; i < 5; ++i) audit.check_zero("thing", 1);
  EXPECT_EQ(audit.violation_count(), 5u);
  EXPECT_EQ(audit.violations().size(), 2u);
  const auto lines = audit.report();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines.back().find("3 more"), std::string::npos);
}

TEST(RequestAuditor, FinalizeIsIdempotent) {
  sim::Simulator sim;
  RequestAuditor audit;
  serving::Request req{sim, 1, hw::kMediumImage};
  audit.on_submit(req);
  audit.finalize();
  const auto count = audit.violation_count();
  audit.finalize();  // a second shutdown must not double-report
  EXPECT_EQ(audit.violation_count(), count);
}

// --- per-request trace spans -------------------------------------------------

TEST(RequestAuditor, StreamsStageSpansPerRequest) {
  sim::Simulator sim;
  sim::TraceRecorder trace;
  RequestAuditor audit{RequestAuditor::Options{.sampler = {.rate = 1.0}}};
  audit.set_trace(&trace);
  serving::Request req{sim, 11, hw::kMediumImage};
  audit.on_submit(req);
  req.charge(Stage::kQueue, sim::seconds(0.3));
  req.charge(Stage::kInference, sim::seconds(0.7));
  req.completed = sim::seconds(1.0);
  audit.on_complete(req);
  EXPECT_EQ(trace.span_count(), 2u);
  std::ostringstream json;
  trace.write_chrome_json(json);
  EXPECT_NE(json.str().find("req.11"), std::string::npos);
  EXPECT_NE(json.str().find("inference"), std::string::npos);
}

TEST(RequestAuditor, TracedRequestCountIsCapped) {
  sim::Simulator sim;
  sim::TraceRecorder trace;
  RequestAuditor audit{RequestAuditor::Options{
      .sampler = {.mode = trace::SampleMode::kFirstN, .max_sampled = 2}}};
  audit.set_trace(&trace);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    serving::Request req{sim, id, hw::kMediumImage};
    audit.on_submit(req);
    req.charge(Stage::kInference, sim::seconds(0.1));
    req.completed = 0;
  }
  EXPECT_EQ(trace.span_count(), 2u);  // only the first two requests traced
}

// --- experiment harness integration ------------------------------------------

TEST(ExperimentHarness, AuditResultFlowsThroughRun) {
  core::ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.audit = true;
  spec.concurrency = 16;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(1.0);
  const auto r = core::run_experiment(spec);
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_TRUE(r.audit_report.empty());
}

TEST(ExperimentHarness, TracedRunEmitsRequestSpans) {
  sim::TraceRecorder trace;
  core::ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.audit = true;
  spec.trace = &trace;
  spec.concurrency = 4;
  spec.warmup = sim::seconds(0.2);
  spec.measure = sim::seconds(0.5);
  const auto r = core::run_experiment(spec);
  ASSERT_GT(r.completed, 0u);
  EXPECT_GT(trace.span_count(), 0u);
  std::ostringstream json;
  trace.write_chrome_json(json);
  EXPECT_NE(json.str().find("\"req."), std::string::npos);
}

TEST(ExperimentHarness, ParsesAuditAndTraceFlags) {
  const char* argv1[] = {"bench", "--audit"};
  const auto a = core::parse_harness_options(2, argv1);
  EXPECT_TRUE(a.audit);
  EXPECT_FALSE(a.tracing());

  const char* argv2[] = {"bench", "--trace-out", "/tmp/t.json"};
  const auto b = core::parse_harness_options(3, argv2);
  EXPECT_EQ(b.trace_out, "/tmp/t.json");
  EXPECT_TRUE(b.auditing());  // tracing implies auditing

  const char* argv3[] = {"bench", "--bogus"};
  EXPECT_THROW((void)core::parse_harness_options(2, argv3), std::invalid_argument);
  const char* argv4[] = {"bench", "--trace-out"};
  EXPECT_THROW((void)core::parse_harness_options(2, argv4), std::invalid_argument);

  sim::TraceRecorder trace;
  core::ExperimentSpec spec;
  b.apply(spec, trace);
  EXPECT_TRUE(spec.server.audit);
  EXPECT_EQ(spec.trace, &trace);
}

}  // namespace
}  // namespace serve
