// Integration tests of the serving stack: server + clients on the simulated
// platform, checking conservation, breakdown accounting, and scheduler
// behaviour.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/experiment.h"
#include "hw/image_spec.h"
#include "models/model_zoo.h"
#include "serving/batcher.h"
#include "serving/client.h"
#include "serving/server.h"

namespace serve {
namespace {

using core::ExperimentSpec;
using metrics::Stage;
using serving::PipelineMode;
using serving::PreprocDevice;

ExperimentSpec base_spec() {
  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = PreprocDevice::kGpu;
  spec.server.audit = true;  // every scenario below must pass the lifecycle audit
  spec.concurrency = 64;
  spec.warmup = sim::seconds(1.0);
  spec.measure = sim::seconds(4.0);
  return spec;
}

// Fails the test with the auditor's own report when a run had violations.
void expect_audit_clean(const core::ExperimentResult& r) {
  EXPECT_EQ(r.audit_violations, 0u);
  for (const auto& line : r.audit_report) ADD_FAILURE() << "audit: " << line;
}

TEST(InferenceServer, CompletesRequestsUnderLoad) {
  const auto r = core::run_experiment(base_spec());
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.throughput_rps, 100.0);
  EXPECT_GT(r.mean_latency_s, 0.0);
  EXPECT_GE(r.p99_latency_s, r.p50_latency_s);
  expect_audit_clean(r);
}

TEST(InferenceServer, StageTimesSumToLatency) {
  // Per-request stage charges are wall-time segments: their sum must equal
  // the end-to-end latency (conservation of time).
  auto spec = base_spec();
  spec.concurrency = 32;
  const auto r = core::run_experiment(spec);
  ASSERT_GT(r.completed, 0u);
  EXPECT_NEAR(r.breakdown.mean_total(), r.mean_latency_s, r.mean_latency_s * 1e-6);
  expect_audit_clean(r);
}

TEST(InferenceServer, ZeroLoadBatchSizeIsOne) {
  auto spec = base_spec();
  const auto r = core::run_zero_load(spec);
  ASSERT_GT(r.completed, 10u);
  EXPECT_DOUBLE_EQ(r.mean_batch, 1.0);
}

TEST(InferenceServer, DynamicBatchingGrowsBatchesUnderLoad) {
  auto spec = base_spec();
  spec.concurrency = 512;
  const auto r = core::run_experiment(spec);
  EXPECT_GT(r.mean_batch, 8.0);
}

TEST(InferenceServer, CpuPreprocessingSlowerThanGpuForMediumImages) {
  auto spec = base_spec();
  spec.concurrency = 256;
  spec.server.preproc = PreprocDevice::kGpu;
  const auto gpu = core::run_experiment(spec);
  spec.server.preproc = PreprocDevice::kCpu;
  const auto cpu = core::run_experiment(spec);
  EXPECT_GT(gpu.throughput_rps, cpu.throughput_rps);
}

TEST(InferenceServer, CpuWinsZeroLoadLatencyForSmallImages) {
  auto spec = base_spec();
  spec.image = hw::kSmallImage;
  spec.server.preproc = PreprocDevice::kCpu;
  const auto cpu = core::run_zero_load(spec);
  spec.server.preproc = PreprocDevice::kGpu;
  const auto gpu = core::run_zero_load(spec);
  EXPECT_LT(cpu.mean_latency_s, gpu.mean_latency_s);
}

TEST(InferenceServer, LargerImagesRaisePreprocShare) {
  auto spec = base_spec();
  spec.server.preproc = PreprocDevice::kCpu;
  spec.image = hw::kMediumImage;
  const auto medium = core::run_zero_load(spec);
  spec.image = hw::kLargeImage;
  const auto large = core::run_zero_load(spec);
  EXPECT_GT(large.stage_share(Stage::kPreprocess), medium.stage_share(Stage::kPreprocess));
  EXPECT_GT(large.stage_share(Stage::kPreprocess), 0.9);
}

TEST(InferenceServer, PreprocessOnlyAndInferenceOnlyModes) {
  auto spec = base_spec();
  spec.server.mode = PipelineMode::kPreprocessOnly;
  const auto pre = core::run_experiment(spec);
  EXPECT_GT(pre.completed, 0u);
  EXPECT_DOUBLE_EQ(pre.breakdown.mean(Stage::kInference), 0.0);

  spec.server.mode = PipelineMode::kInferenceOnly;
  const auto inf = core::run_experiment(spec);
  EXPECT_GT(inf.completed, 0u);
  EXPECT_DOUBLE_EQ(inf.breakdown.mean(Stage::kPreprocess), 0.0);
}

TEST(InferenceServer, MultiGpuScalesMediumImageThroughput) {
  auto spec = base_spec();
  spec.concurrency = 512;
  const auto one = core::run_experiment(spec);
  spec.gpu_count = 2;
  const auto two = core::run_experiment(spec);
  EXPECT_GT(two.throughput_rps, one.throughput_rps * 1.6);
}

TEST(InferenceServer, HigherConcurrencyRaisesQueueShare) {
  auto spec = base_spec();
  spec.concurrency = 8;
  const auto low = core::run_experiment(spec);
  spec.concurrency = 1024;
  spec.measure = sim::seconds(6.0);
  const auto high = core::run_experiment(spec);
  EXPECT_GT(high.stage_share(Stage::kQueue), low.stage_share(Stage::kQueue));
  EXPECT_GT(high.stage_share(Stage::kQueue), 0.5);
}

TEST(InferenceServer, EnergyPositiveAndCpuPreprocCostsMoreCpuEnergy) {
  auto spec = base_spec();
  spec.concurrency = 256;
  spec.server.preproc = PreprocDevice::kGpu;
  const auto gpu = core::run_experiment(spec);
  spec.server.preproc = PreprocDevice::kCpu;
  const auto cpu = core::run_experiment(spec);
  EXPECT_GT(gpu.energy.total_joules(), 0.0);
  EXPECT_GT(cpu.cpu_joules_per_image(), gpu.cpu_joules_per_image());
}

TEST(InferenceServer, SubmitAfterShutdownIsFailAccountedNotThrown) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  serving::InferenceServer server{platform, cfg};
  server.shutdown();
  auto req = std::make_shared<serving::Request>(sim, 1, hw::kMediumImage);
  EXPECT_NO_THROW(server.submit(req));
  // The request reaches a terminal state immediately: done signalled, failed
  // with the shutdown reason, and the server's accounting stays balanced.
  EXPECT_TRUE(req->done.is_set());
  EXPECT_TRUE(req->failed);
  EXPECT_EQ(req->fail_reason, serving::FailReason::kShutdown);
  EXPECT_FALSE(req->dropped);
  EXPECT_EQ(server.in_flight(), 0u);
  EXPECT_EQ(server.stats().failed(), 1u);
}

TEST(InferenceServer, ShutdownDrainsInFlightRequests) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  serving::InferenceServer server{platform, cfg};
  auto req = std::make_shared<serving::Request>(sim, 1, hw::kMediumImage);
  server.submit(req);
  server.shutdown();
  EXPECT_EQ(server.in_flight(), 0u);
  EXPECT_TRUE(req->done.is_set());
}

TEST(InferenceServer, ShutdownFlushesPartialFixedBatch) {
  // With fixed-size batching a trailing partial batch must still complete.
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.dynamic_batching = false;
  cfg.fixed_batch = 64;
  serving::InferenceServer server{platform, cfg};
  std::vector<serving::RequestPtr> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(std::make_shared<serving::Request>(sim, static_cast<std::uint64_t>(i + 1),
                                                      hw::kMediumImage));
    server.submit(reqs.back());
  }
  sim.run();
  EXPECT_EQ(server.in_flight(), 10u);  // stuck: batch of 64 never fills
  server.shutdown();
  EXPECT_EQ(server.in_flight(), 0u);
  for (const auto& r : reqs) EXPECT_TRUE(r->done.is_set());
}

TEST(InferenceServer, LoadSheddingBoundsTailUnderOverload) {
  auto spec = base_spec();
  spec.concurrency = 2048;
  spec.measure = sim::seconds(5.0);
  spec.server.shed_deadline = sim::milliseconds(150);
  const auto shed = core::run_experiment(spec);
  // Closed-loop 2048 clients on a ~1.8k img/s server: without shedding the
  // p99 sits near concurrency/throughput ~ 1.1 s; with it, near the deadline.
  EXPECT_LT(shed.p99_latency_s, 0.3);
  // Dropped requests must conserve stage time and count like completed ones.
  expect_audit_clean(shed);
  spec.server.shed_deadline = 0;
  const auto raw = core::run_experiment(spec);
  EXPECT_GT(raw.p99_latency_s, 0.8);
}

TEST(InferenceServer, NoDropsUnderLightLoad) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.shed_deadline = sim::seconds(1.0);
  serving::InferenceServer server{platform, cfg};
  serving::ClosedLoopClients clients{
      server, {.concurrency = 4, .image_source = serving::fixed_image(hw::kMediumImage)}};
  clients.start();
  sim.run_until(sim::seconds(3.0));
  EXPECT_EQ(server.stats().dropped(), 0u);
  EXPECT_GT(server.stats().completed(), 100u);
  clients.stop();
  sim.run();
  server.shutdown();
}

TEST(InferenceServer, DroppedRequestsSignalCompletionWithFlag) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.shed_deadline = sim::nanoseconds(1);  // everything blows the deadline
  serving::InferenceServer server{platform, cfg};
  auto req = std::make_shared<serving::Request>(sim, 1, hw::kMediumImage);
  server.submit(req);
  sim.run();
  EXPECT_TRUE(req->done.is_set());
  EXPECT_TRUE(req->dropped);
  EXPECT_EQ(server.stats().dropped(), 1u);
  EXPECT_EQ(server.in_flight(), 0u);
  server.shutdown();
}

TEST(InferenceServer, TwoModelsShareOneGpu) {
  // Two endpoints deployed on the same platform contend for the same
  // compute engine — the deployment style of the Fig. 10 multi-DNN system.
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig big;
  big.model = models::vit_base();
  serving::ServerConfig small;
  small.model = models::tiny_vit();
  serving::InferenceServer server_big{platform, big};
  serving::InferenceServer server_small{platform, small};
  serving::ClosedLoopClients clients_big{
      server_big, {.concurrency = 64, .image_source = serving::fixed_image(hw::kMediumImage)}};
  serving::ClosedLoopClients clients_small{
      server_small, {.concurrency = 64, .image_source = serving::fixed_image(hw::kMediumImage)}};
  clients_big.start();
  clients_small.start();
  sim.run_until(sim::seconds(2.0));
  server_big.stats().begin();
  server_small.stats().begin();
  sim.run_until(sim::seconds(8.0));
  const double tput_big = server_big.stats().throughput();
  const double tput_small = server_small.stats().throughput();
  // Both tenants make progress on the shared engine...
  EXPECT_GT(tput_big, 100.0);
  EXPECT_GT(tput_small, 100.0);
  // ...but sharing costs the big model vs its ~1.8k img/s solo rate.
  EXPECT_LT(tput_big, 1600.0);
  clients_big.stop();
  clients_small.stop();
  sim.run();
  server_big.shutdown();
  server_small.shutdown();
}

TEST(Batcher, FixedModeWaitsForFullBatch) {
  sim::Simulator sim;
  serving::Batcher<int> batcher{sim, {.dynamic = false, .max_batch = 8, .fixed_batch = 4}};
  std::vector<int> batch;
  sim::Event ready{sim};
  sim.spawn(batcher.collect_into(batch, ready));
  for (int i = 0; i < 3; ++i) batcher.input().try_put(i);
  sim.run();
  EXPECT_FALSE(ready.is_set());  // only 3 of 4 items
  batcher.input().try_put(3);
  sim.run();
  EXPECT_TRUE(ready.is_set());
  EXPECT_EQ(batch.size(), 4u);
}

TEST(Batcher, DynamicModeDrainsQueueUpToMax) {
  sim::Simulator sim;
  serving::Batcher<int> batcher{sim, {.dynamic = true, .max_batch = 4}};
  for (int i = 0; i < 7; ++i) batcher.input().try_put(i);
  std::vector<int> batch;
  sim::Event ready{sim};
  sim.spawn(batcher.collect_into(batch, ready));
  sim.run();
  EXPECT_EQ(batch.size(), 4u);  // capped at max_batch
  EXPECT_EQ(batcher.queued(), 3u);
}

TEST(Batcher, QueueDelayLingersToFillBatch) {
  sim::Simulator sim;
  serving::Batcher<int> batcher{
      sim, {.dynamic = true, .max_batch = 4, .max_queue_delay = sim::milliseconds(5)}};
  std::vector<int> batch;
  sim::Event ready{sim};
  sim.spawn(batcher.collect_into(batch, ready));
  batcher.input().try_put(0);
  sim.schedule_at(sim::milliseconds(2), [&] { batcher.input().try_put(1); });
  sim.schedule_at(sim::milliseconds(10), [&] { batcher.input().try_put(2); });  // too late
  sim.run();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(Batcher, ClosedInputYieldsEmptyBatch) {
  sim::Simulator sim;
  serving::Batcher<int> batcher{sim, {}};
  batcher.input().close();
  std::vector<int> batch{1, 2, 3};
  sim::Event ready{sim};
  sim.spawn(batcher.collect_into(batch, ready));
  sim.run();
  EXPECT_TRUE(ready.is_set());
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace serve

// --- Deployment config files ---------------------------------------------------

#include "serving/config_file.h"

namespace serve {
namespace {

TEST(ConfigFile, ParsesFullConfig) {
  const auto cfg = serving::parse_server_config(R"(
# demo endpoint
model = vit-base
backend = onnxruntime
preprocessing = cpu
dynamic_batching = false
max_batch = 32
fixed_batch = 16
max_queue_delay_us = 1500
shed_deadline_ms = 250
)");
  EXPECT_EQ(cfg.model.name, "vit-base");
  EXPECT_EQ(cfg.backend, models::Backend::kOnnxRuntime);
  EXPECT_EQ(cfg.preproc, serving::PreprocDevice::kCpu);
  EXPECT_FALSE(cfg.dynamic_batching);
  EXPECT_EQ(cfg.max_batch, 32);
  EXPECT_EQ(cfg.fixed_batch, 16);
  EXPECT_EQ(cfg.max_queue_delay, sim::microseconds(1500));
  EXPECT_EQ(cfg.shed_deadline, sim::milliseconds(250));
}

TEST(ConfigFile, DefaultsAndRequiredModel) {
  const auto cfg = serving::parse_server_config("model = resnet-50\n");
  EXPECT_TRUE(cfg.dynamic_batching);
  EXPECT_EQ(cfg.backend, models::Backend::kTensorRT);
  EXPECT_THROW((void)serving::parse_server_config("backend = tensorrt\n"), std::invalid_argument);
}

TEST(ConfigFile, RejectsBadInput) {
  EXPECT_THROW((void)serving::parse_server_config("model = no-such-model\n"), std::out_of_range);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nbackend = tvm\n"),
               std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nmystery_knob = 3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nmax_batch = twelve\n"),
               std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nthis line has no equals\n"),
               std::invalid_argument);
}

TEST(ConfigFile, FormatParsesBackIdentically) {
  serving::ServerConfig cfg;
  cfg.model = models::tiny_vit();
  cfg.backend = models::Backend::kPyTorch;
  cfg.preproc = serving::PreprocDevice::kCpu;
  cfg.max_batch = 48;
  cfg.shed_deadline = sim::milliseconds(100);
  const auto round = serving::parse_server_config(serving::format_server_config(cfg));
  EXPECT_EQ(round.model.name, cfg.model.name);
  EXPECT_EQ(round.backend, cfg.backend);
  EXPECT_EQ(round.preproc, cfg.preproc);
  EXPECT_EQ(round.max_batch, cfg.max_batch);
  EXPECT_EQ(round.shed_deadline, cfg.shed_deadline);
}

TEST(ConfigFile, IngressKeysRoundTrip) {
  serving::ServerConfig cfg;
  cfg.model = models::tiny_vit();
  cfg.ingress = serving::IngressFormat::kRawTensor;
  cfg.ingress_cache.enabled = true;
  cfg.ingress_cache.image_budget_bytes = 48LL << 20;
  cfg.ingress_cache.tensor_budget_bytes = 96LL << 20;
  cfg.ingress_cache.lookup_s = 35e-6;
  const auto round = serving::parse_server_config(serving::format_server_config(cfg));
  EXPECT_EQ(round.ingress, serving::IngressFormat::kRawTensor);
  EXPECT_TRUE(round.ingress_cache.enabled);
  EXPECT_EQ(round.ingress_cache.image_budget_bytes, 48LL << 20);
  EXPECT_EQ(round.ingress_cache.tensor_budget_bytes, 96LL << 20);
  EXPECT_DOUBLE_EQ(round.ingress_cache.lookup_s, 35e-6);
}

TEST(ConfigFile, BalancerKeysRoundTrip) {
  serving::ServerConfig cfg;
  cfg.model = models::tiny_vit();
  cfg.balancer.policy = serving::BalancerPolicy::kLatencyWeighted;
  cfg.balancer.health.enabled = true;
  cfg.balancer.health.probe_interval = sim::milliseconds(20);
  cfg.balancer.health.probe_timeout = sim::milliseconds(10);
  cfg.balancer.health.probe_cost_s = 150e-6;
  cfg.balancer.health.ewma_alpha = 0.3;
  cfg.balancer.health.eject_score = 0.4;
  cfg.balancer.health.eject_probe_failures = 5;
  cfg.balancer.health.eject_duration = sim::milliseconds(750);
  cfg.balancer.health.rejoin_probes = 4;
  cfg.balancer.hedge.enabled = true;
  cfg.balancer.hedge.deadline = sim::milliseconds(35);
  cfg.balancer.hedge.budget = 128.0;
  cfg.balancer.hedge.budget_refill_per_success = 0.25;
  const auto round = serving::parse_server_config(serving::format_server_config(cfg));
  EXPECT_EQ(round.balancer.policy, serving::BalancerPolicy::kLatencyWeighted);
  EXPECT_TRUE(round.balancer.health.enabled);
  EXPECT_EQ(round.balancer.health.probe_interval, sim::milliseconds(20));
  EXPECT_EQ(round.balancer.health.probe_timeout, sim::milliseconds(10));
  EXPECT_DOUBLE_EQ(round.balancer.health.probe_cost_s, 150e-6);
  EXPECT_DOUBLE_EQ(round.balancer.health.ewma_alpha, 0.3);
  EXPECT_DOUBLE_EQ(round.balancer.health.eject_score, 0.4);
  EXPECT_EQ(round.balancer.health.eject_probe_failures, 5);
  EXPECT_EQ(round.balancer.health.eject_duration, sim::milliseconds(750));
  EXPECT_EQ(round.balancer.health.rejoin_probes, 4);
  EXPECT_TRUE(round.balancer.hedge.enabled);
  EXPECT_EQ(round.balancer.hedge.deadline, sim::milliseconds(35));
  EXPECT_DOUBLE_EQ(round.balancer.hedge.budget, 128.0);
  EXPECT_DOUBLE_EQ(round.balancer.hedge.budget_refill_per_success, 0.25);
}

TEST(ConfigFile, BalancerKeysRejectBadValues) {
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nbalancer_policy = dns\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)serving::parse_server_config("model = vit-base\nhealth_probe_interval_ms = 0\n"),
      std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nhealth_ewma_alpha = 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nhealth_eject_score = 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nhedge_deadline_ms = -5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\nhedge_budget = -1\n"),
               std::invalid_argument);
}

TEST(ConfigFile, IngressKeysRejectBadValues) {
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\ningress = png\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)serving::parse_server_config("model = vit-base\ningress_cache_image_mb = -1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)serving::parse_server_config("model = vit-base\ningress_cache_lookup_us = -5\n"),
      std::invalid_argument);
  EXPECT_THROW((void)serving::parse_server_config("model = vit-base\ningress_cache = maybe\n"),
               std::invalid_argument);
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  try {
    (void)serving::parse_server_config("model = vit-base\n\nmax_batch = banana\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  try {
    (void)serving::parse_server_config("model = no-such-model\n");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos) << e.what();
  }
  try {
    (void)serving::parse_server_config("model = vit-base\nmode = sideways\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(ConfigFile, RejectsOutOfRangeValues) {
  const auto bad = [](const std::string& line) {
    EXPECT_THROW((void)serving::parse_server_config("model = vit-base\n" + line + "\n"),
                 std::invalid_argument)
        << line;
  };
  bad("instance_count = 0");
  bad("fixed_batch = 0");
  bad("max_batch = -1");
  bad("max_queue_delay_us = -5");
  bad("retry_max_attempts = 0");
  bad("retry_timeout_ms = -1");
  bad("retry_budget = -0.5");
  bad("breaker_queue_depth = 0");
  bad("breaker_error_rate = 1.5");
  bad("breaker_half_open_probes = 0");
  bad("degrade_hysteresis_ms = -10");
  bad("broker_max_attempts = 0");
  bad("max_batch = 12junk");
}

TEST(ConfigFile, EveryFieldRoundTrips) {
  // Set every ServerConfig field away from its default (doubles to values an
  // ostream reproduces exactly), format, re-parse, and compare field by field.
  serving::ServerConfig cfg;
  cfg.model = models::tiny_vit();
  cfg.backend = models::Backend::kPyTorch;
  cfg.preproc = serving::PreprocDevice::kCpu;
  cfg.mode = serving::PipelineMode::kPreprocessOnly;
  cfg.dynamic_batching = false;
  cfg.max_batch = 48;  // format writes effective_max_batch(); set it explicitly
  cfg.instance_count = 3;
  cfg.fixed_batch = 12;
  cfg.max_queue_delay = sim::microseconds(2500);
  cfg.shed_deadline = sim::milliseconds(150);
  cfg.audit = true;
  cfg.validate_payloads = true;
  cfg.retry.enabled = true;
  cfg.retry.max_attempts = 7;
  cfg.retry.timeout = sim::milliseconds(450);
  cfg.retry.backoff_base = sim::milliseconds(3);
  cfg.retry.backoff_cap = sim::milliseconds(750);
  cfg.retry.retry_budget = 32.5;
  cfg.retry.budget_refill_per_success = 0.25;
  cfg.breaker.enabled = true;
  cfg.breaker.queue_depth_open = 96;
  cfg.breaker.error_rate_open = 0.75;
  cfg.breaker.open_duration = sim::milliseconds(220);
  cfg.breaker.half_open_probes = 5;
  cfg.degrade.enabled = true;
  cfg.degrade.hysteresis = sim::milliseconds(90);
  cfg.broker_publish.publish_results = true;
  cfg.broker_publish.retry_enabled = true;
  cfg.broker_publish.max_attempts = 6;
  cfg.broker_publish.backoff_base = sim::milliseconds(4);
  cfg.broker_publish.poll_interval = sim::milliseconds(25);

  const std::string text = serving::format_server_config(cfg);
  const auto round = serving::parse_server_config(text);
  EXPECT_EQ(round.model.name, cfg.model.name);
  EXPECT_EQ(round.backend, cfg.backend);
  EXPECT_EQ(round.preproc, cfg.preproc);
  EXPECT_EQ(round.mode, cfg.mode);
  EXPECT_EQ(round.dynamic_batching, cfg.dynamic_batching);
  EXPECT_EQ(round.max_batch, cfg.max_batch);
  EXPECT_EQ(round.instance_count, cfg.instance_count);
  EXPECT_EQ(round.fixed_batch, cfg.fixed_batch);
  EXPECT_EQ(round.max_queue_delay, cfg.max_queue_delay);
  EXPECT_EQ(round.shed_deadline, cfg.shed_deadline);
  EXPECT_EQ(round.audit, cfg.audit);
  EXPECT_EQ(round.validate_payloads, cfg.validate_payloads);
  EXPECT_EQ(round.retry.enabled, cfg.retry.enabled);
  EXPECT_EQ(round.retry.max_attempts, cfg.retry.max_attempts);
  EXPECT_EQ(round.retry.timeout, cfg.retry.timeout);
  EXPECT_EQ(round.retry.backoff_base, cfg.retry.backoff_base);
  EXPECT_EQ(round.retry.backoff_cap, cfg.retry.backoff_cap);
  EXPECT_EQ(round.retry.retry_budget, cfg.retry.retry_budget);
  EXPECT_EQ(round.retry.budget_refill_per_success, cfg.retry.budget_refill_per_success);
  EXPECT_EQ(round.breaker.enabled, cfg.breaker.enabled);
  EXPECT_EQ(round.breaker.queue_depth_open, cfg.breaker.queue_depth_open);
  EXPECT_EQ(round.breaker.error_rate_open, cfg.breaker.error_rate_open);
  EXPECT_EQ(round.breaker.open_duration, cfg.breaker.open_duration);
  EXPECT_EQ(round.breaker.half_open_probes, cfg.breaker.half_open_probes);
  EXPECT_EQ(round.degrade.enabled, cfg.degrade.enabled);
  EXPECT_EQ(round.degrade.hysteresis, cfg.degrade.hysteresis);
  EXPECT_EQ(round.broker_publish.publish_results, cfg.broker_publish.publish_results);
  EXPECT_EQ(round.broker_publish.retry_enabled, cfg.broker_publish.retry_enabled);
  EXPECT_EQ(round.broker_publish.max_attempts, cfg.broker_publish.max_attempts);
  EXPECT_EQ(round.broker_publish.backoff_base, cfg.broker_publish.backoff_base);
  EXPECT_EQ(round.broker_publish.poll_interval, cfg.broker_publish.poll_interval);
  // Formatting is a fixed point: format(parse(format(cfg))) == format(cfg).
  EXPECT_EQ(serving::format_server_config(round), text);
}

TEST(ConfigFile, LoadFromDisk) {
  const auto path = std::filesystem::temp_directory_path() / "servescope_cfg_test.cfg";
  {
    std::ofstream out{path};
    out << "model = vit-base\npreprocessing = gpu\n";
  }
  const auto cfg = serving::load_server_config(path);
  EXPECT_EQ(cfg.model.name, "vit-base");
  std::filesystem::remove(path);
  EXPECT_THROW((void)serving::load_server_config(path), std::invalid_argument);
}

}  // namespace
}  // namespace serve

// --- Instance groups -------------------------------------------------------------

namespace serve {
namespace {

TEST(InferenceServer, ExtraInstancesOverlapStagingWithCompute) {
  // On the CPU-preprocessing path the ensemble-hop staging serializes with
  // compute inside one instance; a second instance hides it behind the
  // previous batch's kernel (CUDA-streams overlap).
  core::ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kCpu;
  spec.server.audit = true;  // instance groups contend on the stall token
  spec.concurrency = 256;
  spec.warmup = sim::seconds(1.0);
  spec.measure = sim::seconds(5.0);
  spec.server.instance_count = 1;
  const auto one = core::run_experiment(spec);
  spec.server.instance_count = 2;
  const auto two = core::run_experiment(spec);
  EXPECT_GT(two.throughput_rps, one.throughput_rps * 1.05);
  EXPECT_EQ(one.audit_violations, 0u);
  EXPECT_EQ(two.audit_violations, 0u);
}

TEST(InferenceServer, InvalidInstanceCountThrows) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.instance_count = 0;
  EXPECT_THROW((serving::InferenceServer{platform, cfg}), std::invalid_argument);
}

TEST(ConfigFile, InstanceCountRoundTrip) {
  const auto cfg =
      serving::parse_server_config("model = vit-base\ninstance_count = 3\n");
  EXPECT_EQ(cfg.instance_count, 3);
  const auto round = serving::parse_server_config(serving::format_server_config(cfg));
  EXPECT_EQ(round.instance_count, 3);
}

TEST(ConfigFile, AuditKeyRoundTrip) {
  EXPECT_FALSE(serving::parse_server_config("model = vit-base\n").audit);
  const auto cfg = serving::parse_server_config("model = vit-base\naudit = true\n");
  EXPECT_TRUE(cfg.audit);
  const auto round = serving::parse_server_config(serving::format_server_config(cfg));
  EXPECT_TRUE(round.audit);
}

}  // namespace
}  // namespace serve

// --- Cross-configuration property sweep -------------------------------------------

namespace serve {
namespace {

// (preproc device, pipeline mode, concurrency, image class)
using ServingGridParam = std::tuple<serving::PreprocDevice, serving::PipelineMode, int, int>;

class ServingPropertyTest : public ::testing::TestWithParam<ServingGridParam> {};

TEST_P(ServingPropertyTest, ConservationAndDeterminismHoldEverywhere) {
  const auto [dev, mode, concurrency, image_idx] = GetParam();
  const hw::ImageSpec images[] = {hw::kSmallImage, hw::kMediumImage, hw::kLargeImage};
  core::ExperimentSpec spec;
  spec.server.model = models::resnet50();
  spec.server.preproc = dev;
  spec.server.mode = mode;
  spec.server.audit = true;
  spec.concurrency = concurrency;
  spec.image = images[image_idx];
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(2.0);

  const auto a = core::run_experiment(spec);
  ASSERT_GT(a.completed, 0u);
  // Conservation: per-request stage times sum to end-to-end latency — both
  // in aggregate and per request (the lifecycle audit covers every request,
  // every hand-off, and the post-drain resource state).
  EXPECT_NEAR(a.breakdown.mean_total(), a.mean_latency_s, a.mean_latency_s * 1e-6);
  EXPECT_EQ(a.audit_violations, 0u);
  for (const auto& line : a.audit_report) ADD_FAILURE() << "audit: " << line;
  // Sanity: percentiles ordered, throughput positive, energy positive.
  EXPECT_LE(a.p50_latency_s, a.p99_latency_s * (1 + 1e-12));
  EXPECT_GT(a.throughput_rps, 0.0);
  EXPECT_GT(a.energy.total_joules(), 0.0);
  // Determinism: bit-identical on re-run.
  const auto b = core::run_experiment(spec);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServingPropertyTest,
    ::testing::Combine(::testing::Values(serving::PreprocDevice::kCpu,
                                         serving::PreprocDevice::kGpu),
                       ::testing::Values(serving::PipelineMode::kEndToEnd,
                                         serving::PipelineMode::kPreprocessOnly,
                                         serving::PipelineMode::kInferenceOnly),
                       ::testing::Values(1, 64, 512), ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace serve
