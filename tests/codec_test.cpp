// Tests for the from-scratch JPEG codec and image transforms: round-trip
// quality properties across sizes/qualities/subsampling, header parsing,
// and malformed-input rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <tuple>

#include "codec/batch_preprocess.h"
#include "codec/bit_io.h"
#include "codec/dct.h"
#include "codec/image.h"
#include "codec/jpeg.h"
#include "codec/jpeg_huffman.h"
#include "codec/jpeg_tables.h"
#include "codec/synthetic.h"
#include "codec/transform.h"
#include "sim/rng.h"

namespace serve::codec {
namespace {

TEST(Image, AccessorsAndBounds) {
  Image img{4, 3, 3};
  img.at(3, 2, 2) = 77;
  EXPECT_EQ(img.at(3, 2, 2), 77);
  EXPECT_THROW((void)img.at(4, 0, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 3, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 0, 3), std::out_of_range);
  EXPECT_EQ(img.at_clamped(-5, 10, 2), img.at(0, 2, 2));
}

TEST(Image, RejectsBadShapes) {
  EXPECT_THROW((Image{0, 4, 3}), std::invalid_argument);
  EXPECT_THROW((Image{4, 4, 2}), std::invalid_argument);
}

TEST(Image, PnmRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "servescope_pnm_test";
  std::filesystem::create_directories(dir);
  const Image img = make_synthetic(37, 23, Pattern::kScene, 5);
  write_pnm(img, dir / "t.ppm");
  const Image back = read_pnm(dir / "t.ppm");
  EXPECT_EQ(img, back);
  std::filesystem::remove_all(dir);
}

TEST(Image, PsnrIdenticalIsInfinite) {
  const Image img = make_synthetic(16, 16, Pattern::kGradient, 1);
  EXPECT_TRUE(std::isinf(psnr(img, img)));
  EXPECT_DOUBLE_EQ(mean_abs_diff(img, img), 0.0);
}

TEST(JpegTables, QualityScalingMonotoneAndClamped) {
  EXPECT_EQ(jpeg::scale_quant(16, 100), 1u);
  EXPECT_GE(jpeg::scale_quant(16, 1), 255u);
  EXPECT_LE(jpeg::scale_quant(255, 1), 255u);
  for (int q = 10; q < 100; q += 10) {
    EXPECT_GE(jpeg::scale_quant(32, q), jpeg::scale_quant(32, q + 5));
  }
}

TEST(Jpeg, HighQualityRoundTripIsClose) {
  const Image img = make_synthetic(64, 48, Pattern::kScene, 42);
  const auto bytes = encode_jpeg(img, {.quality = 95, .subsampling = Subsampling::k444});
  const Image back = decode_jpeg(bytes);
  ASSERT_EQ(back.width(), img.width());
  ASSERT_EQ(back.height(), img.height());
  EXPECT_GT(psnr(img, back), 38.0);
}

TEST(Jpeg, LowerQualityIsSmallerAndWorse) {
  const Image img = make_synthetic(128, 96, Pattern::kTexture, 3);
  const auto hi = encode_jpeg(img, {.quality = 92});
  const auto lo = encode_jpeg(img, {.quality = 25});
  EXPECT_LT(lo.size(), hi.size());
  EXPECT_LT(psnr(img, decode_jpeg(lo)), psnr(img, decode_jpeg(hi)));
}

TEST(Jpeg, GrayscaleRoundTrip) {
  Image gray{40, 40, 1};
  for (int y = 0; y < 40; ++y) {
    for (int x = 0; x < 40; ++x) gray.at(x, y, 0) = static_cast<std::uint8_t>((x * 5 + y) & 0xFF);
  }
  const auto bytes = encode_jpeg(gray, {.quality = 90});
  const Image back = decode_jpeg(bytes);
  EXPECT_EQ(back.channels(), 1);
  EXPECT_GT(psnr(gray, back), 30.0);
}

TEST(Jpeg, RestartMarkersRoundTrip) {
  const Image img = make_synthetic(96, 64, Pattern::kScene, 9);
  const auto bytes = encode_jpeg(img, {.quality = 85, .restart_interval_mcus = 3});
  const Image back = decode_jpeg(bytes);
  const auto no_rst = encode_jpeg(img, {.quality = 85});
  const Image back2 = decode_jpeg(no_rst);
  // Restart markers must not change decoded content.
  EXPECT_EQ(back.data(), back2.data());
}

TEST(Jpeg, PeekInfoMatchesEncodeOptions) {
  const Image img = make_synthetic(50, 30, Pattern::kGradient, 1);
  const auto b420 = encode_jpeg(img, {.subsampling = Subsampling::k420});
  const auto info420 = peek_jpeg_info(b420);
  EXPECT_EQ(info420.width, 50);
  EXPECT_EQ(info420.height, 30);
  EXPECT_EQ(info420.components, 3);
  EXPECT_EQ(info420.subsampling, Subsampling::k420);
  const auto b444 = encode_jpeg(img, {.subsampling = Subsampling::k444});
  EXPECT_EQ(peek_jpeg_info(b444).subsampling, Subsampling::k444);
}

TEST(Jpeg, OddDimensionsRoundTrip) {
  // Dimensions not divisible by the MCU size exercise edge padding.
  for (auto [w, h] : {std::pair{17, 9}, {31, 33}, {8, 8}, {1, 1}, {15, 16}}) {
    const Image img = make_synthetic(w, h, Pattern::kScene, 11);
    const Image back = decode_jpeg(encode_jpeg(img, {.quality = 90}));
    ASSERT_EQ(back.width(), w);
    ASSERT_EQ(back.height(), h);
    EXPECT_GT(psnr(img, back), 24.0) << w << "x" << h;
  }
}

TEST(Jpeg, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage{0x00, 0x01, 0x02, 0x03};
  EXPECT_THROW(decode_jpeg(garbage), jpeg::CodecError);
}

TEST(Jpeg, RejectsTruncatedStream) {
  const Image img = make_synthetic(64, 64, Pattern::kScene, 2);
  auto bytes = encode_jpeg(img);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_jpeg(bytes), jpeg::CodecError);
}

TEST(Jpeg, RejectsTruncatedHeader) {
  const Image img = make_synthetic(32, 32, Pattern::kGradient, 2);
  auto bytes = encode_jpeg(img);
  bytes.resize(20);  // inside APP0
  EXPECT_THROW((void)peek_jpeg_info(bytes), jpeg::CodecError);
}

TEST(Jpeg, RejectsCorruptEntropyData) {
  const Image img = make_synthetic(64, 64, Pattern::kTexture, 8);
  auto bytes = encode_jpeg(img);
  // Inject an illegal marker into the entropy segment.
  const std::size_t mid = bytes.size() - bytes.size() / 4;
  bytes[mid] = 0xFF;
  bytes[mid + 1] = 0xC0;
  EXPECT_THROW(decode_jpeg(bytes), jpeg::CodecError);
}

TEST(Jpeg, RejectsProgressive) {
  const Image img = make_synthetic(16, 16, Pattern::kGradient, 1);
  auto bytes = encode_jpeg(img);
  // Rewrite SOF0 marker to SOF2 (progressive).
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == 0xFF && bytes[i + 1] == 0xC0) {
      bytes[i + 1] = 0xC2;
      break;
    }
  }
  EXPECT_THROW(decode_jpeg(bytes), jpeg::CodecError);
}

TEST(Jpeg, CompressionRatioIsRealistic) {
  // The paper's medium image: 500x375 at 121 kB => ~4.6x compression vs raw.
  const Image img = make_synthetic(500, 375, Pattern::kScene, 21);
  const auto bytes = encode_jpeg(img, {.quality = 85});
  const double ratio = static_cast<double>(img.data().size()) / static_cast<double>(bytes.size());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 60.0);
}

// Property sweep: round-trip PSNR is acceptable across the full option grid.
using RoundTripParam = std::tuple<int, int, int, Subsampling, Pattern>;

class JpegRoundTripTest : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(JpegRoundTripTest, PsnrAboveFloor) {
  const auto [w, h, quality, sub, pattern] = GetParam();
  const Image img = make_synthetic(w, h, pattern, 77);
  const auto bytes = encode_jpeg(img, {.quality = quality, .subsampling = sub});
  const Image back = decode_jpeg(bytes);
  ASSERT_EQ(back.width(), w);
  ASSERT_EQ(back.height(), h);
  // Floor depends on quality; 4:2:0 chroma loss and checkers are the worst
  // cases (tiny images amplify the chroma subsampling error).
  double floor = 27.0;
  if (quality < 85) floor = 14.0;
  else if (pattern == Pattern::kCheckers) floor = 15.0;
  else if (sub == Subsampling::k420) floor = 24.0;
  EXPECT_GT(psnr(img, back), floor);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, JpegRoundTripTest,
    ::testing::Combine(::testing::Values(24, 60, 100), ::testing::Values(24, 70),
                       ::testing::Values(50, 85, 95),
                       ::testing::Values(Subsampling::k444, Subsampling::k420),
                       ::testing::Values(Pattern::kGradient, Pattern::kScene,
                                         Pattern::kCheckers)));


TEST(Jpeg, Subsampling422RoundTrip) {
  const Image img = make_synthetic(90, 62, Pattern::kScene, 31);
  const auto bytes = encode_jpeg(img, {.quality = 90, .subsampling = Subsampling::k422});
  EXPECT_EQ(peek_jpeg_info(bytes).subsampling, Subsampling::k422);
  const Image back = decode_jpeg(bytes);
  ASSERT_EQ(back.width(), img.width());
  EXPECT_GT(psnr(img, back), 28.0);
  // 4:2:2 halves only horizontal chroma: quality sits between 4:4:4 and 4:2:0.
  const auto b444 = encode_jpeg(img, {.quality = 90, .subsampling = Subsampling::k444});
  const auto b420 = encode_jpeg(img, {.quality = 90, .subsampling = Subsampling::k420});
  EXPECT_LT(bytes.size(), b444.size());
  EXPECT_GT(bytes.size(), b420.size());
}

TEST(Jpeg, OptimizedHuffmanShrinksFileSamePixels) {
  const Image img = make_synthetic(160, 120, Pattern::kScene, 55);
  JpegEncodeOptions std_opts{.quality = 85};
  JpegEncodeOptions opt_opts{.quality = 85, .optimize_huffman = true};
  const auto std_bytes = encode_jpeg(img, std_opts);
  const auto opt_bytes = encode_jpeg(img, opt_opts);
  EXPECT_LT(opt_bytes.size(), std_bytes.size());
  // The quantized coefficients are identical, so decoded pixels match bit
  // for bit — only the entropy coding differs.
  EXPECT_EQ(decode_jpeg(opt_bytes).data(), decode_jpeg(std_bytes).data());
}

TEST(Jpeg, OptimizedHuffmanGrayscaleAndRestarts) {
  Image gray{48, 48, 1};
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 48; ++x) gray.at(x, y, 0) = static_cast<std::uint8_t>((x * x + y) & 0xFF);
  }
  const auto bytes =
      encode_jpeg(gray, {.quality = 80, .restart_interval_mcus = 2, .optimize_huffman = true});
  const Image back = decode_jpeg(bytes);
  EXPECT_GT(psnr(gray, back), 25.0);
}

// Property: optimized Huffman never loses to the Annex K defaults by more
// than the extra DHT header bytes, across patterns and qualities.
class OptimizedHuffmanTest
    : public ::testing::TestWithParam<std::tuple<int, Pattern, Subsampling>> {};

TEST_P(OptimizedHuffmanTest, NeverLargerThanDefaultPlusHeaders) {
  const auto [quality, pattern, sub] = GetParam();
  const Image img = make_synthetic(96, 64, pattern, 123);
  const auto def = encode_jpeg(img, {.quality = quality, .subsampling = sub});
  const auto opt =
      encode_jpeg(img, {.quality = quality, .subsampling = sub, .optimize_huffman = true});
  EXPECT_LE(opt.size(), def.size() + 64) << "optimal tables should never cost meaningful size";
  EXPECT_EQ(decode_jpeg(opt).data(), decode_jpeg(def).data());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimizedHuffmanTest,
    ::testing::Combine(::testing::Values(40, 85, 95),
                       ::testing::Values(Pattern::kGradient, Pattern::kScene, Pattern::kTexture,
                                         Pattern::kCheckers),
                       ::testing::Values(Subsampling::k444, Subsampling::k420)));

// Robustness fuzz: random single-byte corruptions of a valid stream must
// either decode (possibly to different pixels) or throw CodecError — never
// crash or hang. Exercises the decoder's bounds discipline.
class DecoderFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzzTest, CorruptedStreamsNeverCrash) {
  const Image img = make_synthetic(48, 40, Pattern::kScene, 99);
  const auto clean = encode_jpeg(img, {.quality = 80});
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = clean;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      const Image out = decode_jpeg(bytes);
      EXPECT_GT(out.width(), 0);  // decoded something structurally valid
    } catch (const jpeg::CodecError&) {
      // rejected cleanly - acceptable
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest, ::testing::Range(1, 7));

TEST(Resize, NearestPreservesCorners) {
  const Image img = make_synthetic(64, 64, Pattern::kGradient, 1);
  const Image half = resize(img, 32, 32, ResizeFilter::kNearest);
  EXPECT_EQ(half.width(), 32);
  EXPECT_EQ(half.height(), 32);
}

TEST(Resize, IdentityIsExactForBilinear) {
  const Image img = make_synthetic(33, 17, Pattern::kScene, 4);
  const Image same = resize(img, 33, 17, ResizeFilter::kBilinear);
  EXPECT_EQ(img, same);
}

TEST(Resize, DownUpRetainsStructure) {
  const Image img = make_synthetic(128, 128, Pattern::kGradient, 1);
  const Image down = resize(img, 32, 32);
  const Image up = resize(down, 128, 128);
  EXPECT_GT(psnr(img, up), 25.0);  // gradients survive resampling
}

TEST(Resize, RejectsBadArgs) {
  const Image img = make_synthetic(8, 8, Pattern::kGradient, 1);
  EXPECT_THROW(resize(img, 0, 8), std::invalid_argument);
  EXPECT_THROW(resize(Image{}, 8, 8), std::invalid_argument);
}

TEST(Normalize, ValuesMatchFormula) {
  Image img{2, 1, 3};
  img.at(0, 0, 0) = 255;
  img.at(1, 0, 2) = 128;
  const auto t = normalize_chw(img);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_NEAR(t[0], (1.0f - kImageNetMean[0]) / kImageNetStd[0], 1e-5);
  EXPECT_NEAR(t[1], (0.0f - kImageNetMean[0]) / kImageNetStd[0], 1e-5);
  EXPECT_NEAR(t[5], (128.0f / 255.0f - kImageNetMean[2]) / kImageNetStd[2], 1e-5);
}

TEST(Normalize, RejectsGrayscaleAndBadStd) {
  Image gray{2, 2, 1};
  EXPECT_THROW(normalize_chw(gray), std::invalid_argument);
  Image rgb{2, 2, 3};
  EXPECT_THROW(normalize_chw(rgb, kImageNetMean, {1.0f, 0.0f, 1.0f}), std::invalid_argument);
}

TEST(CenterCrop, SquareFromRectangle) {
  const Image img = make_synthetic(60, 40, Pattern::kGradient, 1);
  const Image crop = center_crop(img, 40);
  EXPECT_EQ(crop.width(), 40);
  EXPECT_EQ(crop.height(), 40);
  EXPECT_EQ(crop.at(0, 0, 0), img.at(10, 0, 0));
}

TEST(Synthetic, DeterministicPerSeed) {
  const Image a = make_synthetic(32, 32, Pattern::kTexture, 5);
  const Image b = make_synthetic(32, 32, Pattern::kTexture, 5);
  const Image c = make_synthetic(32, 32, Pattern::kTexture, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// --- Fast-path equivalence: every optimized kernel against its reference ---

TEST(DctEquivalence, FastFdctMatchesReferenceOnRandomBlocks) {
  sim::Rng rng{99};
  double max_err = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    float in[64], fast[64], ref[64];
    for (auto& v : in) v = static_cast<float>(rng.uniform_int(0, 255)) - 128.0f;
    jpeg::fdct8x8(in, fast);
    jpeg::fdct8x8_ref(in, ref);
    for (int i = 0; i < 64; ++i) {
      max_err = std::max(max_err, std::abs(static_cast<double>(fast[i]) - ref[i]));
    }
  }
  // AAN and the basis-matrix DCT compute the same transform; the gap is pure
  // float rounding, far below one quantizer step.
  EXPECT_LT(max_err, 0.01);
}

TEST(DctEquivalence, FastIdctMatchesReferenceOnRandomBlocks) {
  sim::Rng rng{101};
  double max_err = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    float in[64], fast[64], ref[64];
    // Realistic dequantized-coefficient magnitudes (DC large, AC smaller).
    for (auto& v : in) v = static_cast<float>(rng.uniform_int(-1024, 1024));
    jpeg::idct8x8(in, fast);
    jpeg::idct8x8_ref(in, ref);
    for (int i = 0; i < 64; ++i) {
      max_err = std::max(max_err, std::abs(static_cast<double>(fast[i]) - ref[i]));
    }
  }
  EXPECT_LT(max_err, 0.01);
}

TEST(DctEquivalence, FastRoundTripReconstructs) {
  sim::Rng rng{7};
  float in[64], freq[64], out[64];
  for (auto& v : in) v = static_cast<float>(rng.uniform_int(0, 255)) - 128.0f;
  jpeg::fdct8x8(in, freq);
  jpeg::idct8x8(freq, out);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(out[i], in[i], 0.01f);
}

TEST(DctEquivalence, ScaledIdctMatchesPrescaledInput) {
  // idct8x8_scaled(x * prescale) == idct8x8(x): the decoder folds the
  // prescale into its dequantization tables.
  sim::Rng rng{31};
  const auto& pre = jpeg::idct_prescale();
  float in[64], scaled_in[64], a[64], b[64];
  for (int i = 0; i < 64; ++i) {
    in[i] = static_cast<float>(rng.uniform_int(-512, 512));
    scaled_in[i] = in[i] * pre[static_cast<std::size_t>(i)];
  }
  jpeg::idct8x8(in, a);
  jpeg::idct8x8_scaled(scaled_in, b);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(a[i], b[i], 0.01f);
}

TEST(DecodeEquivalence, FastIdctWithinOneLsbOfReference) {
  // Full decode with the AAN fast IDCT vs the basis-matrix reference IDCT:
  // the entropy/dequant path is bit-identical, so pixels may differ only
  // when the exact value sits within float error of a rounding boundary —
  // never by more than 1 LSB.
  for (auto sub : {Subsampling::k444, Subsampling::k422, Subsampling::k420}) {
    for (auto [w, h] : {std::pair{96, 64}, {31, 33}}) {
      const Image img = make_synthetic(w, h, Pattern::kScene, 17);
      const auto bytes = encode_jpeg(img, {.quality = 85, .subsampling = sub});
      const Image fast = decode_jpeg(bytes);
      const Image ref = decode_jpeg(bytes, {.use_reference_idct = true});
      ASSERT_EQ(fast.data().size(), ref.data().size());
      int max_diff = 0;
      for (std::size_t i = 0; i < fast.data().size(); ++i) {
        max_diff = std::max(max_diff, std::abs(static_cast<int>(fast.data()[i]) -
                                               static_cast<int>(ref.data()[i])));
      }
      EXPECT_LE(max_diff, 1) << w << "x" << h;
    }
  }
}

TEST(ResizeEquivalence, TwoPassBilinearWithinOneLsbOfReference) {
  for (auto [sw, sh, dw, dh] : {std::tuple{500, 375, 224, 224},
                                {64, 48, 224, 224},     // upscale
                                {357, 289, 89, 53},     // odd geometry downscale
                                {224, 224, 224, 224}})  // identity
  {
    const Image img = make_synthetic(sw, sh, Pattern::kScene, 23);
    const Image fast = resize(img, dw, dh, ResizeFilter::kBilinear);
    const Image ref = resize_reference(img, dw, dh, ResizeFilter::kBilinear);
    ASSERT_EQ(fast.data().size(), ref.data().size());
    int max_diff = 0;
    for (std::size_t i = 0; i < fast.data().size(); ++i) {
      max_diff = std::max(max_diff, std::abs(static_cast<int>(fast.data()[i]) -
                                             static_cast<int>(ref.data()[i])));
    }
    EXPECT_LE(max_diff, 1) << sw << "x" << sh << " -> " << dw << "x" << dh;
  }
}

TEST(ResizeEquivalence, NearestMatchesReferenceExactly) {
  const Image img = make_synthetic(123, 77, Pattern::kTexture, 4);
  EXPECT_EQ(resize(img, 50, 60, ResizeFilter::kNearest),
            resize_reference(img, 50, 60, ResizeFilter::kNearest));
}

TEST(NormalizeEquivalence, LutIsBitExactAgainstInlineFormula) {
  const Image img = make_synthetic(53, 41, Pattern::kScene, 12);
  const auto t = normalize_chw(img);
  const auto plane = static_cast<std::size_t>(53 * 41);
  ASSERT_EQ(t.size(), plane * 3);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const auto i = static_cast<std::size_t>(y) * 53 + static_cast<std::size_t>(x);
      for (std::size_t c = 0; c < 3; ++c) {
        // Same operation order as the kernel (multiply by the reciprocal,
        // not divide) so "bit-exact" is well defined.
        const float inv = 1.0f / kImageNetStd[c];
        const float expect = (static_cast<float>(img.at(x, y, static_cast<int>(c))) / 255.0f -
                              kImageNetMean[c]) * inv;
        ASSERT_EQ(t[c * plane + i], expect) << x << "," << y << "," << c;
      }
    }
  }
}

TEST(CenterCropEquivalence, RowMemcpyMatchesNaiveLoops) {
  const Image img = make_synthetic(61, 47, Pattern::kScene, 6);
  const int side = 32;
  const Image crop = center_crop(img, side);
  const int x0 = (img.width() - side) / 2;
  const int y0 = (img.height() - side) / 2;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      for (int c = 0; c < 3; ++c) {
        ASSERT_EQ(crop.at(x, y, c), img.at(x0 + x, y0 + y, c)) << x << "," << y;
      }
    }
  }
}

// --- Bit reader / Huffman table malformed-stream behaviour ---

TEST(BitReader, BulkRefillReadsBitsMsbFirst) {
  const std::uint8_t data[] = {0xA5, 0x3C, 0x0F, 0xF0, 0x81, 0x42, 0x24, 0x18, 0x99, 0x66};
  jpeg::BitReader br(data, sizeof(data));
  EXPECT_EQ(br.get_bits(4), 0xAu);
  EXPECT_EQ(br.get_bits(8), 0x53u);
  EXPECT_EQ(br.get_bit(), 1u);
  EXPECT_EQ(br.get_bits(3), 0x4u);  // remaining of 0x3C
  // Crosses the first 8-byte bulk refill boundary.
  EXPECT_EQ(br.get_bits(32), 0x0FF08142u);
  EXPECT_EQ(br.get_bits(32), 0x24189966u);
}

TEST(BitReader, StuffedByteAtRefillBoundaryIsUnstuffed) {
  // 0xFF00 pairs placed so one straddles the first bulk refill (which stops
  // after the accumulator holds > 56 bits): bytes 6..8 are FF 00 FF 00.
  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                               0xFF, 0x00, 0xFF, 0x00, 0x07, 0x08};
  jpeg::BitReader br(data, sizeof(data));
  for (std::uint32_t expect : {0x01u, 0x02u, 0x03u, 0x04u, 0x05u, 0x06u,
                               0xFFu, 0xFFu, 0x07u, 0x08u}) {
    EXPECT_EQ(br.get_bits(8), expect);
  }
}

TEST(BitReader, PeekPastEndIsZeroButConsumeThrows) {
  const std::uint8_t data[] = {0xAB, 0xCD};
  jpeg::BitReader br(data, sizeof(data));
  EXPECT_EQ(br.get_bits(16), 0xABCDu);
  // Peeks beyond the segment read zero padding without throwing...
  EXPECT_EQ(br.peek(16), 0u);
  // ...but consuming into the padding reports exhaustion.
  EXPECT_THROW(br.consume(1), jpeg::CodecError);
}

TEST(BitReader, TruncatedRefillThrowsOnConsume) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  jpeg::BitReader br(data, sizeof(data));
  EXPECT_EQ(br.get_bits(24), 0x123456u);
  EXPECT_THROW((void)br.get_bits(8), jpeg::CodecError);
}

TEST(BitReader, StopsAtMarkerAndReportsPosition) {
  const std::uint8_t data[] = {0x12, 0xFF, 0xD9};  // EOI after one data byte
  jpeg::BitReader br(data, sizeof(data));
  EXPECT_EQ(br.get_bits(8), 0x12u);
  EXPECT_EQ(br.peek(8), 0u);          // zero padding, not marker bytes
  EXPECT_EQ(br.position(), 1u);       // refill never advanced past the 0xFF
  EXPECT_THROW(br.consume(8), jpeg::CodecError);
}

TEST(BitReader, DanglingFfThrowsOnConsume) {
  const std::uint8_t data[] = {0x12, 0xFF};
  jpeg::BitReader br(data, sizeof(data));
  EXPECT_EQ(br.get_bits(8), 0x12u);
  EXPECT_THROW((void)br.get_bits(8), jpeg::CodecError);
}

TEST(BitReader, RestartMarkerResetsStream) {
  const std::uint8_t data[] = {0xAB, 0xFF, 0xD3, 0xCD};
  jpeg::BitReader br(data, sizeof(data));
  EXPECT_EQ(br.get_bits(8), 0xABu);
  (void)br.peek(8);  // force a refill that stops at the marker
  EXPECT_EQ(br.consume_restart_marker(), 3);
  EXPECT_EQ(br.get_bits(8), 0xCDu);
}

TEST(BitWriter, RoundTripsThroughReaderWithStuffing) {
  std::vector<std::uint8_t> out;
  jpeg::BitWriter bw(out);
  sim::Rng rng{55};
  std::vector<std::pair<std::uint32_t, int>> writes;
  for (int i = 0; i < 500; ++i) {
    const int count = static_cast<int>(rng.uniform_int(1, 24));
    // Bias toward all-ones values so 0xFF stuffing triggers frequently.
    std::uint32_t value = static_cast<std::uint32_t>(
        rng.uniform_int(0, (1ll << count) - 1));
    if (rng.uniform_int(0, 3) == 0) value = (1u << count) - 1u;
    writes.emplace_back(value, count);
    bw.put_bits(value, count);
  }
  bw.finish();
  ASSERT_FALSE(out.empty());
  jpeg::BitReader br(out.data(), out.size());
  for (const auto& [value, count] : writes) {
    ASSERT_EQ(br.get_bits(count), value & ((1u << count) - 1u));
  }
}

TEST(HuffmanTable, DecodesKnownSpecBitExact) {
  // Canonical code book: one code each of lengths 1..3 => 0, 10, 110.
  std::uint8_t bits[16] = {1, 1, 1};
  const std::uint8_t vals[] = {5, 9, 17};
  jpeg::DecodeTable table;
  table.build(bits, vals, 3);
  std::vector<std::uint8_t> stream;
  jpeg::BitWriter bw(stream);
  bw.put_bits(0b0, 1);    // 5
  bw.put_bits(0b10, 2);   // 9
  bw.put_bits(0b110, 3);  // 17
  bw.put_bits(0b0, 1);    // 5
  bw.finish();
  jpeg::BitReader br(stream.data(), stream.size());
  EXPECT_EQ(table.decode(br), 5);
  EXPECT_EQ(table.decode(br), 9);
  EXPECT_EQ(table.decode(br), 17);
  EXPECT_EQ(table.decode(br), 5);
}

TEST(HuffmanTable, SlowPathDecodesCodesLongerThanLookupWindow) {
  // One code per length 1..12; length-12's canonical code is 2^12 - 2
  // (eleven 1-bits then 0), beyond the 9-bit primary window.
  std::uint8_t bits[16] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  std::uint8_t vals[12];
  for (int i = 0; i < 12; ++i) vals[i] = static_cast<std::uint8_t>(i + 1);
  jpeg::DecodeTable table;
  table.build(bits, vals, 12);
  std::vector<std::uint8_t> stream;
  jpeg::BitWriter bw(stream);
  bw.put_bits((1u << 12) - 2u, 12);  // length-12 code -> symbol 12
  bw.put_bits(0, 1);                 // length-1 code -> symbol 1
  bw.finish();
  jpeg::BitReader br(stream.data(), stream.size());
  EXPECT_EQ(table.decode(br), 12);
  EXPECT_EQ(table.decode(br), 1);
}

TEST(HuffmanTable, OverLongInvalidCodeThrows) {
  std::uint8_t bits[16] = {1, 1, 1};  // codes 0, 10, 110; 111... is unassigned
  const std::uint8_t vals[] = {5, 9, 17};
  jpeg::DecodeTable table;
  table.build(bits, vals, 3);
  const std::uint8_t stream[] = {0xFF, 0x00, 0xFF, 0x00};  // stuffed all-ones
  jpeg::BitReader br(stream, sizeof(stream));
  EXPECT_THROW((void)table.decode(br), jpeg::CodecError);
}

TEST(HuffmanTable, InvalidDhtCountsThrowInBuild) {
  // Three 1-bit codes cannot exist in a binary prefix code.
  std::uint8_t bits[16] = {3};
  const std::uint8_t vals[] = {1, 2, 3};
  jpeg::DecodeTable table;
  EXPECT_THROW(table.build(bits, vals, 3), jpeg::CodecError);
}

// --- BatchPreprocessor: parallel decode->resize->normalize worker pool ---

TEST(BatchPreprocessor, MatchesSequentialPipelineAcrossThreadCounts) {
  std::vector<std::vector<std::uint8_t>> jpegs;
  for (int i = 0; i < 9; ++i) {
    const Image img = make_synthetic(64 + 8 * i, 48 + 4 * i, Pattern::kScene,
                                     static_cast<unsigned>(100 + i));
    jpegs.push_back(encode_jpeg(img, {.quality = 85}));
  }
  // Reference: the plain single-image pipeline, in order.
  std::vector<std::vector<float>> expect;
  for (const auto& j : jpegs) {
    const Image img = decode_jpeg(j);
    expect.push_back(normalize_chw(resize(img, 224, 224)));
  }
  for (int threads : {1, 2, 4}) {
    BatchPreprocessor pool{threads};
    const auto got = pool.run(jpegs, {});
    ASSERT_EQ(got.size(), expect.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "threads=" << threads << " image=" << i;
    }
  }
}

TEST(BatchPreprocessor, AppliesCenterCrop) {
  const Image img = make_synthetic(120, 90, Pattern::kScene, 3);
  const auto jpeg_bytes = encode_jpeg(img, {.quality = 90});
  BatchPreprocessor pool{2};
  BatchPreprocessOptions opts;
  opts.center_crop_side = 80;
  opts.target_side = 64;
  const auto got = pool.run(std::vector<std::vector<std::uint8_t>>{jpeg_bytes}, opts);
  const auto expect =
      normalize_chw(resize(center_crop(decode_jpeg(jpeg_bytes), 80), 64, 64));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], expect);
}

TEST(BatchPreprocessor, PropagatesDecodeErrors) {
  std::vector<std::vector<std::uint8_t>> jpegs;
  for (int i = 0; i < 6; ++i) {
    const Image img = make_synthetic(40, 30, Pattern::kGradient, static_cast<unsigned>(i));
    jpegs.push_back(encode_jpeg(img));
  }
  jpegs[3] = {0xDE, 0xAD, 0xBE, 0xEF};  // not a JPEG
  for (int threads : {1, 4}) {
    BatchPreprocessor pool{threads};
    EXPECT_THROW((void)pool.run(jpegs, {}), jpeg::CodecError) << "threads=" << threads;
  }
}

TEST(BatchPreprocessor, RejectsBadConfiguration) {
  EXPECT_THROW(BatchPreprocessor{0}, std::invalid_argument);
  BatchPreprocessor pool{1};
  BatchPreprocessOptions opts;
  opts.target_side = 0;
  EXPECT_THROW((void)pool.run(std::vector<std::vector<std::uint8_t>>{}, opts),
               std::invalid_argument);
}

TEST(FullPreprocessingPipeline, MatchesPaperStages) {
  // The paper's preprocessing: JPEG decode -> resize -> normalize. Run the
  // real pipeline end to end on a medium-class image.
  const Image original = make_synthetic(500, 375, Pattern::kScene, 13);
  const auto wire = encode_jpeg(original, {.quality = 85});
  const Image decoded = decode_jpeg(wire);
  const Image resized = resize(decoded, 224, 224);
  const auto tensor = normalize_chw(resized);
  EXPECT_EQ(tensor.size(), 224u * 224u * 3u);
  for (float v : tensor) {
    EXPECT_GT(v, -4.0f);
    EXPECT_LT(v, 4.0f);
  }
}

}  // namespace
}  // namespace serve::codec
