// Fault-injection framework + resilience policy tests: FaultPlan queries,
// the timed Event wait, runtime staging-budget changes, the hardware fault
// hooks, broker outages, client retry/backoff/budget, the ingest circuit
// breaker, graceful degradation, and request conservation under every fault
// scenario.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broker/broker.h"
#include "core/experiment.h"
#include "hw/devices.h"
#include "hw/gpu_memory.h"
#include "models/model_zoo.h"
#include "serving/client.h"
#include "serving/server.h"
#include "sim/fault_plan.h"
#include "sim/sync.h"
#include "workload/arrivals.h"

namespace serve {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultWindow;

// --- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, WindowQueriesRespectKindTargetAndTime) {
  FaultPlan plan;
  plan.gpu_failure(1, sim::milliseconds(10), sim::milliseconds(20));
  plan.pcie_degradation(sim::milliseconds(5), sim::milliseconds(15), 4.0);

  EXPECT_FALSE(plan.active(FaultKind::kGpuFailure, 1, sim::milliseconds(9)));
  EXPECT_TRUE(plan.active(FaultKind::kGpuFailure, 1, sim::milliseconds(10)));
  EXPECT_TRUE(plan.active(FaultKind::kGpuFailure, 1, sim::milliseconds(19)));
  EXPECT_FALSE(plan.active(FaultKind::kGpuFailure, 1, sim::milliseconds(20)));  // half-open
  EXPECT_FALSE(plan.active(FaultKind::kGpuFailure, 0, sim::milliseconds(15)));  // other target
  EXPECT_FALSE(plan.active(FaultKind::kBrokerOutage, 1, sim::milliseconds(15)));

  // kAllTargets windows cover every instance; multipliers compound.
  EXPECT_DOUBLE_EQ(plan.multiplier(FaultKind::kPcieDegradation, 0, sim::milliseconds(7)), 4.0);
  EXPECT_DOUBLE_EQ(plan.multiplier(FaultKind::kPcieDegradation, 3, sim::milliseconds(7)), 4.0);
  EXPECT_DOUBLE_EQ(plan.multiplier(FaultKind::kPcieDegradation, 0, sim::milliseconds(16)), 1.0);
  plan.pcie_degradation(sim::milliseconds(5), sim::milliseconds(15), 2.0);
  EXPECT_DOUBLE_EQ(plan.multiplier(FaultKind::kPcieDegradation, 0, sim::milliseconds(7)), 8.0);

  // active_until reports the latest covering end, or `now` when healthy.
  EXPECT_EQ(plan.active_until(FaultKind::kGpuFailure, 1, sim::milliseconds(12)),
            sim::milliseconds(20));
  EXPECT_EQ(plan.active_until(FaultKind::kGpuFailure, 1, sim::milliseconds(25)),
            sim::milliseconds(25));
}

TEST(FaultPlan, RejectsInvalidWindows) {
  FaultPlan plan;
  EXPECT_THROW(plan.add({FaultKind::kGpuFailure, 0, 10, 10, 1.0}), std::invalid_argument);
  EXPECT_THROW(plan.add({FaultKind::kGpuFailure, 0, 10, 5, 1.0}), std::invalid_argument);
  EXPECT_THROW(plan.add({FaultKind::kPcieDegradation, 0, 0, 10, 0.0}), std::invalid_argument);
  EXPECT_THROW(plan.preproc_slowdown(0, 10, 0.5), std::invalid_argument);
  EXPECT_THROW(plan.pcie_degradation(0, 10, 0.9), std::invalid_argument);
  EXPECT_THROW(plan.gpu_memory_shrink(0, 0, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(plan.gpu_memory_shrink(0, 0, 10, 1.5), std::invalid_argument);
  EXPECT_THROW(plan.set_payload_corruption(1.5, 1), std::invalid_argument);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, PayloadCorruptionIsDeterministicPerRequestId) {
  FaultPlan a;
  a.set_payload_corruption(0.1, 42);
  FaultPlan b;
  b.set_payload_corruption(0.1, 42);
  int corrupted = 0;
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    EXPECT_EQ(a.corrupts_payload(id), b.corrupts_payload(id));
    EXPECT_EQ(a.corruption_stream(id), b.corruption_stream(id));
    if (a.corrupts_payload(id)) ++corrupted;
  }
  // The seeded Bernoulli draw lands near the requested probability.
  EXPECT_GT(corrupted, 700);
  EXPECT_LT(corrupted, 1300);

  FaultPlan off;
  EXPECT_FALSE(off.corrupts_payload(7));
  FaultPlan other;
  other.set_payload_corruption(0.1, 43);
  int differs = 0;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    if (a.corrupts_payload(id) != other.corrupts_payload(id)) ++differs;
  }
  EXPECT_GT(differs, 0);  // the seed matters
}

TEST(FaultPlan, ScheduleTransitionsFiresBothEdges) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.gpu_memory_shrink(0, sim::milliseconds(10), sim::milliseconds(20), 0.5);
  std::vector<std::pair<sim::Time, bool>> edges;
  plan.schedule_transitions(sim, [&](const FaultWindow& w, bool begin) {
    EXPECT_EQ(w.kind, FaultKind::kGpuMemoryShrink);
    edges.emplace_back(sim.now(), begin);
  });
  sim.run();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(sim::milliseconds(10), true));
  EXPECT_EQ(edges[1], std::make_pair(sim::milliseconds(20), false));
}

// --- Event::wait_until -----------------------------------------------------

sim::Process wait_probe(sim::Event& ev, sim::Time deadline, bool& result, bool& resumed) {
  result = co_await ev.wait_until(deadline);
  resumed = true;
}

TEST(Event, WaitUntilTimesOutWithFalse) {
  sim::Simulator sim;
  sim::Event ev{sim};
  bool result = true, resumed = false;
  sim.spawn(wait_probe(ev, sim::milliseconds(5), result, resumed));
  sim.run();
  EXPECT_TRUE(resumed);
  EXPECT_FALSE(result);
  EXPECT_EQ(sim.now(), sim::milliseconds(5));
  ev.set();  // a late set() must not resume the waiter again
  sim.run();
}

TEST(Event, WaitUntilSeesSetBeforeDeadline) {
  sim::Simulator sim;
  sim::Event ev{sim};
  bool result = false, resumed = false;
  sim.spawn(wait_probe(ev, sim::milliseconds(50), result, resumed));
  sim.schedule_at(sim::milliseconds(3), [&] { ev.set(); });
  sim.run();
  EXPECT_TRUE(resumed);
  EXPECT_TRUE(result);
  // The stale deadline callback is a no-op; time still advances to it.
  EXPECT_EQ(sim.now(), sim::milliseconds(50));
}

TEST(Event, WaitUntilOnSetEventReturnsImmediately) {
  sim::Simulator sim;
  sim::Event ev{sim};
  ev.set();
  bool result = false, resumed = false;
  sim.spawn(wait_probe(ev, sim::milliseconds(50), result, resumed));
  sim.run();
  EXPECT_TRUE(resumed);
  EXPECT_TRUE(result);
  EXPECT_EQ(sim.now(), 0);  // the wait never suspended, no timeout was scheduled
}

TEST(Event, WaitUntilPastDeadlineIsImmediateTimeout) {
  sim::Simulator sim;
  sim::Event ev{sim};
  bool result = true, resumed = false;
  sim.spawn(wait_probe(ev, 0, result, resumed));
  sim.run();
  EXPECT_TRUE(resumed);
  EXPECT_FALSE(result);
  EXPECT_EQ(sim.now(), 0);
}

// --- GpuMemoryStager::set_budget -------------------------------------------

TEST(GpuMemoryStager, ShrinkingBudgetEvictsOldestUntilFit) {
  hw::GpuMemoryStager stager{400};
  const auto a = stager.stage(100);
  const auto b = stager.stage(100);
  const auto c = stager.stage(100);
  EXPECT_EQ(stager.resident_bytes(), 300);
  EXPECT_EQ(stager.evictions(), 0u);

  stager.set_budget(150);  // fault: eviction storm in LRU order
  EXPECT_EQ(stager.budget_bytes(), 150);
  EXPECT_EQ(stager.resident_bytes(), 100);
  EXPECT_EQ(stager.evictions(), 2u);
  EXPECT_EQ(stager.claim(a), 100);  // evicted first: pays the reload
  EXPECT_EQ(stager.claim(b), 100);
  EXPECT_EQ(stager.claim(c), 0);  // newest survived

  // Restoring the budget re-admits nothing retroactively.
  const auto d = stager.stage(140);
  stager.set_budget(400);
  EXPECT_EQ(stager.claim(d), 0);
  EXPECT_THROW(stager.set_budget(0), std::invalid_argument);
}

// --- Hardware fault hooks --------------------------------------------------

TEST(HwFaults, SlowdownsScaleServiceTimesOnlyInsideWindows) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.preproc_slowdown(sim::milliseconds(10), sim::milliseconds(20), 3.0);
  plan.pcie_degradation(sim::milliseconds(10), sim::milliseconds(20), 5.0);
  plan.gpu_failure(0, sim::milliseconds(10), sim::milliseconds(20));
  hw::Platform platform{sim, {.gpu_count = 2, .faults = &plan}};

  const double preproc_before = platform.cpu().preprocess_seconds(hw::kMediumImage, 224);
  const double link_before = platform.gpu(0).link_seconds(1 << 20);
  const double host_before = platform.host_link_seconds(1 << 20);
  EXPECT_FALSE(platform.gpu(0).failed_now());

  sim.schedule_at(sim::milliseconds(15), [&] {
    EXPECT_NEAR(platform.cpu().preprocess_seconds(hw::kMediumImage, 224), 3.0 * preproc_before,
                1e-12);
    // Only the variable part of link_seconds scales exactly; the whole thing
    // must land between the healthy cost and the full 5x.
    EXPECT_GT(platform.gpu(0).link_seconds(1 << 20), 4.0 * link_before);
    EXPECT_NEAR(platform.host_link_seconds(1 << 20), 5.0 * host_before, 1e-12);
    EXPECT_TRUE(platform.gpu(0).failed_now());
    EXPECT_FALSE(platform.gpu(1).failed_now());  // per-target failure
  });
  sim.schedule_at(sim::milliseconds(25), [&] {
    EXPECT_DOUBLE_EQ(platform.cpu().preprocess_seconds(hw::kMediumImage, 224), preproc_before);
    EXPECT_FALSE(platform.gpu(0).failed_now());
  });
  sim.run();
}

// --- Broker outage ---------------------------------------------------------

sim::Process publish_one(broker::SimBroker<int>& b, int msg, bool& ok, bool& done) {
  ok = co_await b.publish(msg);
  done = true;
}

sim::Process consume_one(broker::SimBroker<int>& b, sim::Simulator& sim, sim::Time& when,
                         bool& got) {
  auto msg = co_await b.consume();
  got = msg.has_value();
  when = sim.now();
}

TEST(SimBroker, OutageFailsPublishesAndStallsDeliveries) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.broker_outage(sim::milliseconds(10), sim::milliseconds(30));
  broker::SimBroker<int> broker{sim, broker::redis_profile(hw::default_calibration().broker),
                                &plan};

  // Published before the outage, consumed during it: delivery stalls until
  // the window ends.
  bool pub_ok = false, pub_done = false;
  sim.spawn(publish_one(broker, 1, pub_ok, pub_done));
  sim::Time delivered_at = 0;
  bool got = false;
  sim.schedule_at(sim::milliseconds(15), [&] { sim.spawn(consume_one(broker, sim, delivered_at, got)); });

  // Published inside the outage: rejected after paying the service time.
  bool mid_ok = true, mid_done = false;
  sim.schedule_at(sim::milliseconds(12), [&] { sim.spawn(publish_one(broker, 2, mid_ok, mid_done)); });

  sim.run();
  EXPECT_TRUE(pub_done);
  EXPECT_TRUE(pub_ok);
  ASSERT_TRUE(mid_done);
  EXPECT_FALSE(mid_ok);
  EXPECT_EQ(broker.publish_failures(), 1u);
  EXPECT_TRUE(got);
  EXPECT_GE(delivered_at, sim::milliseconds(30));
}

// --- Client retry policy ---------------------------------------------------

sim::Process drive_retrier(serving::RetryingSubmitter& retrier, hw::ImageSpec image,
                           std::uint64_t& next_id, bool& ok, bool& done) {
  ok = co_await retrier.run(image, next_id);
  done = true;
}

TEST(RetryPolicy, TimesOutBacksOffAndGivesUpAfterMaxAttempts) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.gpu_failure(0, 0, sim::seconds(5.0));  // down for the whole test
  hw::Platform platform{sim, {.faults = &plan}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.audit = true;
  cfg.retry.enabled = true;
  cfg.retry.max_attempts = 3;
  cfg.retry.timeout = sim::milliseconds(20);
  cfg.retry.backoff_base = sim::milliseconds(2);
  serving::InferenceServer server{platform, cfg};
  sim::Rng rng{7};
  serving::RetryingSubmitter retrier{server, rng};
  std::uint64_t next_id = 1;
  bool ok = true, done = false;
  sim.spawn(drive_retrier(retrier, hw::kMediumImage, next_id, ok, done));
  sim.run_until(sim::seconds(1.0));
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);  // every attempt timed out against the failed GPU
  EXPECT_EQ(retrier.timeouts(), 3u);
  EXPECT_EQ(retrier.retries(), 2u);
  EXPECT_EQ(next_id, 4u);
  // Abandoned attempts are held until the GPU recovers, then complete; the
  // lifecycle audit must balance.
  sim.run();
  server.shutdown();
  ASSERT_NE(server.auditor(), nullptr);
  EXPECT_EQ(server.auditor()->violation_count(), 0u);
}

TEST(RetryPolicy, TokenBudgetBoundsRetryStorms) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.gpu_failure(0, 0, sim::seconds(5.0));
  hw::Platform platform{sim, {.faults = &plan}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.retry.enabled = true;
  cfg.retry.max_attempts = 10;
  cfg.retry.timeout = sim::milliseconds(20);
  cfg.retry.backoff_base = sim::milliseconds(2);
  cfg.retry.retry_budget = 1.0;  // one retry token, never refilled
  cfg.retry.budget_refill_per_success = 0.0;
  serving::InferenceServer server{platform, cfg};
  sim::Rng rng{7};
  serving::RetryingSubmitter retrier{server, rng};
  std::uint64_t next_id = 1;
  bool ok = true, done = false;
  sim.spawn(drive_retrier(retrier, hw::kMediumImage, next_id, ok, done));
  sim.run_until(sim::seconds(1.0));
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(retrier.retries(), 1u);  // budget exhausted long before max_attempts
  EXPECT_EQ(retrier.timeouts(), 2u);
  sim.run();
  server.shutdown();
}

TEST(RetryPolicy, RetrySucceedsOnTheHealthyGpu) {
  // Round-robin routing sends the first attempt to the failed GPU 0, where it
  // holds past the client timeout; the retry lands on GPU 1 and completes.
  sim::Simulator sim;
  FaultPlan plan;
  plan.gpu_failure(0, 0, sim::seconds(5.0));
  hw::Platform platform{sim, {.gpu_count = 2, .faults = &plan}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.retry.enabled = true;
  cfg.retry.max_attempts = 3;
  cfg.retry.timeout = sim::milliseconds(50);
  cfg.retry.backoff_base = sim::milliseconds(1);
  serving::InferenceServer server{platform, cfg};
  sim::Rng rng{7};
  serving::RetryingSubmitter retrier{server, rng};
  std::uint64_t next_id = 1;
  bool ok = false, done = false;
  sim.spawn(drive_retrier(retrier, hw::kMediumImage, next_id, ok, done));
  sim.run_until(sim::seconds(1.0));
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(retrier.retries(), 1u);
  EXPECT_EQ(retrier.timeouts(), 1u);
  sim.run();
  server.shutdown();
}

// --- Circuit breaker -------------------------------------------------------

TEST(CircuitBreaker, OpensOnDepthFastFailsThenRecloses) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.breaker.enabled = true;
  cfg.breaker.queue_depth_open = 4;
  cfg.breaker.open_duration = sim::milliseconds(50);
  cfg.breaker.half_open_probes = 1;
  serving::InferenceServer server{platform, cfg};
  using serving::FailReason;

  std::vector<serving::RequestPtr> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(std::make_shared<serving::Request>(sim, static_cast<std::uint64_t>(i + 1),
                                                      hw::kMediumImage));
    server.submit(reqs.back());
  }
  // The 4th submission brought in_flight to the depth threshold and tripped
  // the breaker; it and everything after it were fast-failed.
  EXPECT_EQ(server.breaker_state(), serving::InferenceServer::BreakerState::kOpen);
  EXPECT_TRUE(reqs[3]->failed);
  EXPECT_EQ(reqs[3]->fail_reason, FailReason::kBreakerOpen);
  EXPECT_TRUE(reqs[4]->failed);
  EXPECT_TRUE(reqs[5]->failed);
  EXPECT_EQ(server.stats().rejected(), 3u);
  EXPECT_EQ(server.stats().breaker_opens(), 1u);

  sim.run();  // the three admitted requests complete
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FALSE(reqs[i]->failed);

  // After open_duration the next submission is a half-open probe; its success
  // closes the breaker.
  auto probe = std::make_shared<serving::Request>(sim, 100, hw::kMediumImage);
  sim.schedule_at(sim::milliseconds(60), [&] { server.submit(probe); });
  sim.run();
  EXPECT_FALSE(probe->failed);
  EXPECT_EQ(server.breaker_state(), serving::InferenceServer::BreakerState::kClosed);
  server.shutdown();
}

TEST(CircuitBreaker, OpensOnErrorRate) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.gpu_failure(0, 0, sim::seconds(10.0));
  hw::Platform platform{sim, {.faults = &plan}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.breaker.enabled = true;  // depth threshold left at its huge default
  cfg.breaker.error_rate_open = 0.5;
  cfg.breaker.open_duration = sim::seconds(1.0);
  serving::InferenceServer server{platform, cfg};

  // No retry/degrade policy: every request dispatched to the failed GPU fails
  // and feeds the error EWMA until the breaker trips.
  std::vector<serving::RequestPtr> reqs;
  for (int i = 0; i < 60; ++i) {
    sim.schedule_at(sim::milliseconds(i + 1), [&server, &reqs, i, &sim] {
      reqs.push_back(std::make_shared<serving::Request>(sim, static_cast<std::uint64_t>(i + 1),
                                                        hw::kMediumImage));
      server.submit(reqs.back());
    });
  }
  sim.run();
  EXPECT_EQ(server.breaker_state(), serving::InferenceServer::BreakerState::kOpen);
  EXPECT_GT(server.stats().rejected(), 0u);
  // Breaker rejections must not feed the EWMA (the breaker would never
  // close); only genuine GPU faults count as errors.
  EXPECT_GT(server.stats().failed(), server.stats().rejected());
  server.shutdown();
}

// --- Graceful degradation --------------------------------------------------

TEST(Degradation, FallsBackToCpuAndUndegradesAfterHysteresis) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.gpu_failure(0, sim::milliseconds(10), sim::milliseconds(20));
  hw::Platform platform{sim, {.faults = &plan}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.audit = true;
  cfg.degrade.enabled = true;
  cfg.degrade.hysteresis = sim::milliseconds(50);
  serving::InferenceServer server{platform, cfg};

  // Requests are created inside the callback: arrival must coincide with
  // submission or the auditor's stage-conservation check trips on the gap.
  std::vector<serving::RequestPtr> reqs(3);
  auto submit_at = [&](sim::Time t, std::size_t slot) {
    sim.schedule_at(t, [&, slot] {
      reqs[slot] = std::make_shared<serving::Request>(sim, slot + 1, hw::kMediumImage);
      server.submit(reqs[slot]);
    });
  };
  submit_at(sim::milliseconds(12), 0);   // inside the failure window
  submit_at(sim::milliseconds(40), 1);   // healthy again, but < 50ms hysteresis
  submit_at(sim::milliseconds(200), 2);  // long recovered
  sim.run();

  for (const auto& req : reqs) EXPECT_FALSE(req->failed);
  // The first two took the CPU fallback; the third went back to the GPU.
  EXPECT_EQ(server.stats().degraded(), 2u);
  server.shutdown();
  EXPECT_EQ(server.auditor()->violation_count(), 0u);
}

// --- Conservation under every fault scenario -------------------------------

struct FaultScenario {
  std::string name;
  void (*arm)(FaultPlan&, serving::ServerConfig&);
};

core::ExperimentResult run_scenario(const FaultScenario& sc) {
  FaultPlan plan;
  core::ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.server.audit = true;
  spec.gpu_count = 2;
  spec.warmup = sim::seconds(0.5);
  spec.measure = sim::seconds(2.0);
  sc.arm(plan, spec.server);
  spec.faults = &plan;
  return core::run_open_loop(spec, workload::poisson_arrivals(400.0));
}

TEST(FaultConservation, EveryScenarioBalancesSubmittedAgainstTerminalStates) {
  // The auditor enforces submitted == completed + dropped + failed (plus
  // stage-time conservation and drain hygiene) over the whole run, including
  // the fault windows and the drain.
  const FaultScenario scenarios[] = {
      {"gpu-failure/no-policy",
       [](FaultPlan& p, serving::ServerConfig&) {
         p.gpu_failure(0, sim::seconds(1.0), sim::seconds(1.8));
       }},
      {"gpu-failure/retry+degrade",
       [](FaultPlan& p, serving::ServerConfig& cfg) {
         p.gpu_failure(0, sim::seconds(1.0), sim::seconds(1.8));
         cfg.retry.enabled = true;
         cfg.retry.timeout = sim::milliseconds(200);
         cfg.degrade.enabled = true;
       }},
      {"preproc-slowdown",
       [](FaultPlan& p, serving::ServerConfig& cfg) {
         cfg.preproc = serving::PreprocDevice::kCpu;
         p.preproc_slowdown(sim::seconds(1.0), sim::seconds(1.6), 2.0);
       }},
      {"pcie-degradation",
       [](FaultPlan& p, serving::ServerConfig&) {
         p.pcie_degradation(sim::seconds(1.0), sim::seconds(1.6), 6.0);
       }},
      {"gpu-memory-shrink",
       [](FaultPlan& p, serving::ServerConfig&) {
         p.gpu_memory_shrink(0, sim::seconds(1.0), sim::seconds(1.8), 0.01);
       }},
      {"broker-outage/blind-poll",
       [](FaultPlan& p, serving::ServerConfig& cfg) {
         p.broker_outage(sim::seconds(1.0), sim::seconds(1.5));
         cfg.broker_publish.publish_results = true;
       }},
      {"broker-outage/breaker+failover",
       [](FaultPlan& p, serving::ServerConfig& cfg) {
         p.broker_outage(sim::seconds(1.0), sim::seconds(1.5));
         cfg.broker_publish.publish_results = true;
         cfg.broker_publish.retry_enabled = true;
         cfg.breaker.enabled = true;
         cfg.breaker.queue_depth_open = 64;
       }},
      {"payload-corruption",
       [](FaultPlan& p, serving::ServerConfig& cfg) {
         p.set_payload_corruption(0.05, 11);
         cfg.validate_payloads = true;
       }},
      {"chaos/all-policies",
       [](FaultPlan& p, serving::ServerConfig& cfg) {
         p.gpu_failure(0, sim::seconds(1.0), sim::seconds(1.3));
         p.preproc_slowdown(sim::seconds(0.8), sim::seconds(1.4), 2.0);
         p.pcie_degradation(sim::seconds(1.2), sim::seconds(1.8), 3.0);
         p.gpu_memory_shrink(1, sim::seconds(1.0), sim::seconds(2.0), 0.01);
         p.broker_outage(sim::seconds(1.5), sim::seconds(1.9));
         p.set_payload_corruption(0.02, 5);
         cfg.validate_payloads = true;
         cfg.retry.enabled = true;
         cfg.retry.timeout = sim::milliseconds(300);
         cfg.degrade.enabled = true;
         cfg.breaker.enabled = true;
         cfg.broker_publish.publish_results = true;
         cfg.broker_publish.retry_enabled = true;
       }},
  };
  for (const auto& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    const auto r = run_scenario(sc);
    EXPECT_GT(r.completed, 0u);
    EXPECT_EQ(r.audit_violations, 0u);
    for (const auto& line : r.audit_report) ADD_FAILURE() << sc.name << " audit: " << line;
  }
}

TEST(FaultConservation, FaultedRunsAreDeterministic) {
  const FaultScenario chaos{"chaos", [](FaultPlan& p, serving::ServerConfig& cfg) {
                              p.gpu_failure(0, sim::seconds(1.0), sim::seconds(1.3));
                              p.pcie_degradation(sim::seconds(1.2), sim::seconds(1.8), 3.0);
                              p.set_payload_corruption(0.02, 5);
                              cfg.validate_payloads = true;
                              cfg.retry.enabled = true;
                              cfg.retry.timeout = sim::milliseconds(300);
                              cfg.degrade.enabled = true;
                            }};
  const auto a = run_scenario(chaos);
  const auto b = run_scenario(chaos);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
}

}  // namespace
}  // namespace serve
