// Tests for the from-scratch DEFLATE/zlib and PNG implementations.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "codec/deflate.h"
#include "codec/jpeg.h"
#include "codec/png.h"
#include "codec/synthetic.h"
#include "sim/rng.h"

namespace serve::codec {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// --- DEFLATE / zlib ------------------------------------------------------------

TEST(Deflate, RoundTripText) {
  const auto input = bytes_of(
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog again and again and again");
  const auto compressed = deflate(input);
  EXPECT_LT(compressed.size(), input.size());  // repetitive text must shrink
  EXPECT_EQ(inflate(compressed, input.size()), input);
}

TEST(Deflate, RoundTripEmpty) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(inflate(deflate(empty)), empty);
}

TEST(Deflate, IncompressibleFallsBackToStored) {
  sim::Rng rng{3};
  std::vector<std::uint8_t> noise(100000);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng() & 0xFF);
  const auto compressed = deflate(noise);
  // Stored blocks: 5 bytes of header per 64k chunk.
  EXPECT_LE(compressed.size(), noise.size() + 5 * (noise.size() / 65535 + 1));
  EXPECT_EQ(inflate(compressed, noise.size()), noise);
}

TEST(Deflate, LongRunCompressesMassively) {
  std::vector<std::uint8_t> run(200000, 0xAB);
  const auto compressed = deflate(run);
  EXPECT_LT(compressed.size(), run.size() / 100);
  EXPECT_EQ(inflate(compressed, run.size()), run);
}

TEST(Deflate, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage{0x07, 0xFF, 0xAA, 0x55};
  EXPECT_THROW((void)inflate(garbage), jpeg::CodecError);
}

TEST(Deflate, RejectsTruncation) {
  auto compressed = deflate(bytes_of("hello world hello world hello world"));
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW((void)inflate(compressed), jpeg::CodecError);
}

// Round-trip property over data shapes and sizes.
class DeflatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DeflatePropertyTest, RoundTripExact) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(rng.uniform_int(1, 150000)));
  switch (GetParam() % 3) {
    case 0:  // structured: repeated phrases
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>("abcabcdabcde"[i % 12]);
      }
      break;
    case 1:  // smooth ramp (PNG-filter-like)
      std::iota(data.begin(), data.end(), 0);
      break;
    default:  // mixed noise/runs
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = (i / 100) % 2 == 0 ? 0x11 : static_cast<std::uint8_t>(rng() & 0xFF);
      }
  }
  EXPECT_EQ(inflate(deflate(data), data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DeflatePropertyTest, ::testing::Range(1, 10));

TEST(Adler32, KnownVector) {
  // adler32("Wikipedia") = 0x11E60398
  const auto s = bytes_of("Wikipedia");
  EXPECT_EQ(adler32(s), 0x11E60398u);
  EXPECT_EQ(adler32({}), 1u);
}

TEST(Zlib, RoundTripAndChecks) {
  const auto input = bytes_of("zlib wraps deflate with a header and an Adler-32 trailer");
  auto z = zlib_compress(input);
  EXPECT_EQ(zlib_decompress(z, input.size()), input);
  // Corrupt the trailer: Adler must catch it.
  z.back() ^= 0xFF;
  EXPECT_THROW((void)zlib_decompress(z), jpeg::CodecError);
  // Corrupt the header check.
  auto z2 = zlib_compress(input);
  z2[1] ^= 0x01;
  EXPECT_THROW((void)zlib_decompress(z2), jpeg::CodecError);
}

// --- PNG -------------------------------------------------------------------------

TEST(Png, LosslessRoundTripRgb) {
  const Image img = make_synthetic(120, 80, Pattern::kScene, 7);
  const auto bytes = encode_png(img);
  const Image back = decode_png(bytes);
  EXPECT_EQ(img, back);  // bit-exact: PNG is lossless
}

TEST(Png, LosslessRoundTripGray) {
  Image gray{33, 21, 1};
  for (int y = 0; y < 21; ++y) {
    for (int x = 0; x < 33; ++x) gray.at(x, y, 0) = static_cast<std::uint8_t>((3 * x + 7 * y) & 0xFF);
  }
  EXPECT_EQ(decode_png(encode_png(gray)), gray);
}

TEST(Png, PeekInfo) {
  const Image img = make_synthetic(50, 40, Pattern::kGradient, 1);
  const auto info = peek_png_info(encode_png(img));
  EXPECT_EQ(info.width, 50);
  EXPECT_EQ(info.height, 40);
  EXPECT_EQ(info.channels, 3);
}

TEST(Png, AdaptiveFiltersShrinkGradients) {
  const Image img = make_synthetic(256, 256, Pattern::kGradient, 1);
  const auto adaptive = encode_png(img, {.adaptive_filters = true});
  const auto none = encode_png(img, {.adaptive_filters = false});
  EXPECT_EQ(decode_png(adaptive), decode_png(none));  // same pixels either way
  EXPECT_LT(adaptive.size(), none.size());            // gradients love Sub/Up
}

TEST(Png, RejectsBadSignatureAndCorruptCrc) {
  const Image img = make_synthetic(16, 16, Pattern::kScene, 2);
  auto bytes = encode_png(img);
  auto bad_sig = bytes;
  bad_sig[0] = 0;
  EXPECT_THROW((void)decode_png(bad_sig), jpeg::CodecError);
  // Flip a byte inside IHDR payload: chunk CRC must catch it.
  auto bad_crc = bytes;
  bad_crc[16] ^= 0xFF;
  EXPECT_THROW((void)decode_png(bad_crc), jpeg::CodecError);
}

TEST(Png, RejectsTruncation) {
  const Image img = make_synthetic(40, 40, Pattern::kTexture, 4);
  auto bytes = encode_png(img);
  bytes.resize(bytes.size() - 16);
  EXPECT_THROW((void)decode_png(bytes), jpeg::CodecError);
}

TEST(Png, OddSizesRoundTrip) {
  for (auto [w, h] : {std::pair{1, 1}, {7, 3}, {255, 1}, {1, 255}, {33, 97}}) {
    const Image img = make_synthetic(w, h, Pattern::kScene, 19);
    EXPECT_EQ(decode_png(encode_png(img)), img) << w << "x" << h;
  }
}

// Property sweep: lossless across patterns and filter modes.
class PngRoundTripTest
    : public ::testing::TestWithParam<std::tuple<Pattern, bool>> {};

TEST_P(PngRoundTripTest, BitExact) {
  const auto [pattern, adaptive] = GetParam();
  const Image img = make_synthetic(90, 60, pattern, 31);
  const auto bytes = encode_png(img, {.adaptive_filters = adaptive});
  EXPECT_EQ(decode_png(bytes), img);
}

INSTANTIATE_TEST_SUITE_P(Grid, PngRoundTripTest,
                         ::testing::Combine(::testing::Values(Pattern::kGradient,
                                                              Pattern::kTexture, Pattern::kScene,
                                                              Pattern::kCheckers),
                                            ::testing::Bool()));

TEST(Png, WireSizeTradeoffVsJpeg) {
  // The format trade-off the serving ablation studies: PNG is lossless but
  // much larger on the wire than JPEG for photographic content.
  const Image img = make_synthetic(500, 375, Pattern::kScene, 5);
  const auto png = encode_png(img);
  const auto jpg = encode_jpeg(img, {.quality = 85});
  EXPECT_GT(png.size(), 2 * jpg.size());
  EXPECT_LT(png.size(), img.data().size());  // still beats raw
}

}  // namespace
}  // namespace serve::codec
