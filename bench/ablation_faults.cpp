// Ablation: deterministic fault injection vs the resilience policies.
//
// Three scenarios drive the tuned ViT server through seeded fault schedules
// (sim::FaultPlan) and compare a no-policy baseline against the matching
// resilience policy:
//
//   A. GPU-failure window on one of two GPUs. Without a policy every request
//      routed to the failed GPU fails; with client retry + graceful
//      degradation traffic reroutes to the healthy GPU and goodput stays
//      within 30% of the fault-free baseline.
//   B. Result-broker outage with result publication on. The no-policy server
//      blindly re-polls, so completions pile up for the whole outage and p99
//      explodes; the circuit breaker fast-fails new arrivals once the backlog
//      trips the depth threshold, bounding p99; broker publish retry +
//      fused failover sidesteps the outage entirely.
//   C. Chaos soak: preprocessing slowdown, PCIe degradation, a staging-memory
//      shrink (eviction storm), a short GPU-failure blip, and seeded payload
//      corruption all at once, with every policy armed. The run must conserve
//      requests, fail only the corrupted payloads, and be bit-identical when
//      repeated.
//
// Every run executes with the lifecycle auditor on: request conservation
// (submitted == completed + dropped + failed) is checked in *every* scenario.
#include <stdexcept>

#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"
#include "workload/arrivals.h"

using namespace serve;
using core::ExperimentSpec;

namespace {

struct Row {
  core::ExperimentResult r;
  double goodput() const { return r.throughput_rps; }
  double p99_ms() const { return r.p99_latency_s * 1e3; }
};

core::HarnessOptions g_harness;
sim::TraceRecorder g_trace;
std::uint64_t g_violations = 0;

Row run(const std::string& label, ExperimentSpec spec, double rate) {
  spec.server.audit = true;  // conservation is checked in every scenario
  if (g_harness.tracing()) spec.trace = &g_trace;
  Row row{core::run_open_loop(spec, workload::poisson_arrivals(rate))};
  g_violations += core::report_audit(row.r, label);
  return row;
}

ExperimentSpec base_spec(int gpus, sim::Time measure) {
  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.gpu_count = gpus;
  spec.warmup = sim::seconds(2.0);
  spec.measure = measure;
  spec.seed = 17;
  return spec;
}

void arm_retry(serving::ServerConfig& cfg) {
  cfg.retry.enabled = true;
  cfg.retry.max_attempts = 4;
  cfg.retry.timeout = sim::milliseconds(500);
  cfg.retry.backoff_base = sim::milliseconds(5);
  cfg.retry.backoff_cap = sim::milliseconds(100);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Fault injection vs resilience policies (ViT, audited)");
  if (!rep.parse_cli(argc, argv, &g_harness)) return 2;

  metrics::Table table({"scenario", "goodput_img_s", "p99_ms", "failed", "rejected", "degraded",
                        "retries", "failovers", "evictions"});
  auto add = [&table](const std::string& name, const Row& row) {
    table.add_row({name, row.goodput(), row.p99_ms(), static_cast<double>(row.r.failed),
                   static_cast<double>(row.r.rejected), static_cast<double>(row.r.degraded),
                   static_cast<double>(row.r.client_retries),
                   static_cast<double>(row.r.broker_failovers),
                   static_cast<double>(row.r.gpu_evictions)});
  };

  // --- Scenario A: GPU-failure window, retry + degradation ------------------
  const double rate_a = 1500.0;  // ~41% of 2-GPU capacity: one GPU can absorb it
  sim::FaultPlan gpu_fault;
  gpu_fault.gpu_failure(0, sim::seconds(3.0), sim::seconds(14.0));

  const Row a_base = run("A/no-fault", base_spec(2, sim::seconds(12.0)), rate_a);
  add("A gpu-fail: no fault", a_base);

  ExperimentSpec a_np = base_spec(2, sim::seconds(12.0));
  a_np.faults = &gpu_fault;
  const Row a_nopol = run("A/no-policy", a_np, rate_a);
  add("A gpu-fail: no policy", a_nopol);

  ExperimentSpec a_pol = base_spec(2, sim::seconds(12.0));
  a_pol.faults = &gpu_fault;
  arm_retry(a_pol.server);
  a_pol.server.degrade.enabled = true;
  a_pol.server.degrade.hysteresis = sim::milliseconds(200);
  const Row a_resil = run("A/retry+degrade", a_pol, rate_a);
  add("A gpu-fail: retry+degrade", a_resil);

  // --- Scenario B: broker outage, circuit breaker / publish failover --------
  const double rate_b = 1500.0;
  sim::FaultPlan outage;
  outage.broker_outage(sim::seconds(8.0), sim::seconds(11.0));

  ExperimentSpec b_np = base_spec(2, sim::seconds(16.0));
  b_np.faults = &outage;
  b_np.server.broker_publish.publish_results = true;
  b_np.server.broker_publish.poll_interval = sim::milliseconds(10);
  const Row b_nopol = run("B/no-policy", b_np, rate_b);
  add("B broker-out: no policy", b_nopol);

  ExperimentSpec b_cb = b_np;
  b_cb.server.breaker.enabled = true;
  b_cb.server.breaker.queue_depth_open = 128;
  b_cb.server.breaker.error_rate_open = 1.0;  // depth-triggered only
  b_cb.server.breaker.open_duration = sim::seconds(1.0);
  b_cb.server.breaker.half_open_probes = 4;
  const Row b_breaker = run("B/breaker", b_cb, rate_b);
  add("B broker-out: breaker", b_breaker);

  ExperimentSpec b_fo = b_np;
  b_fo.server.broker_publish.retry_enabled = true;
  b_fo.server.broker_publish.max_attempts = 3;
  b_fo.server.broker_publish.backoff_base = sim::milliseconds(2);
  const Row b_failover = run("B/failover", b_fo, rate_b);
  add("B broker-out: publish failover", b_failover);

  // --- Scenario C: chaos soak with every policy armed -----------------------
  const double rate_c = 800.0;
  sim::FaultPlan chaos;
  chaos.preproc_slowdown(sim::seconds(3.0), sim::seconds(6.0), 3.0);
  chaos.pcie_degradation(sim::seconds(5.0), sim::seconds(8.0), 4.0);
  chaos.gpu_memory_shrink(0, sim::seconds(4.0), sim::seconds(9.0), 0.01);
  chaos.gpu_failure(0, sim::seconds(6.0), sim::seconds(6.4));
  chaos.set_payload_corruption(0.03, 99);

  ExperimentSpec c_spec = base_spec(1, sim::seconds(10.0));
  c_spec.faults = &chaos;
  c_spec.server.validate_payloads = true;
  arm_retry(c_spec.server);
  c_spec.server.retry.timeout = sim::milliseconds(600);
  c_spec.server.degrade.enabled = true;
  const Row c_first = run("C/chaos", c_spec, rate_c);
  add("C chaos: all policies", c_first);
  const Row c_second = run("C/chaos-repeat", c_spec, rate_c);
  add("C chaos: repeat (determinism)", c_second);

  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"A: without a policy, a failed GPU collapses goodput",
                    a_nopol.goodput() < 0.7 * a_base.goodput() && a_nopol.r.failed > 1000,
                    std::to_string(a_nopol.goodput()) + " vs " + std::to_string(a_base.goodput()) +
                        " img/s, " + std::to_string(a_nopol.r.failed) + " failed"});
  checks.push_back({"A: retry + degradation keeps goodput within 30% of no-fault",
                    a_resil.goodput() > 0.7 * a_base.goodput(),
                    std::to_string(a_resil.goodput()) + " vs " + std::to_string(a_base.goodput()) +
                        " img/s"});
  checks.push_back({"B: blind re-polling lets the outage blow up p99 (seconds-scale)",
                    b_nopol.p99_ms() > 1000.0, std::to_string(b_nopol.p99_ms()) + " ms"});
  checks.push_back({"B: the circuit breaker bounds p99 by fast-failing the backlog",
                    b_breaker.p99_ms() < 0.25 * b_nopol.p99_ms() && b_breaker.r.breaker_opens >= 1 &&
                        b_breaker.r.rejected > 1000,
                    std::to_string(b_breaker.p99_ms()) + " ms, " +
                        std::to_string(b_breaker.r.breaker_opens) + " opens, " +
                        std::to_string(b_breaker.r.rejected) + " rejected"});
  checks.push_back({"B: publish retry + fused failover sidesteps the outage",
                    b_failover.p99_ms() < 0.25 * b_nopol.p99_ms() &&
                        b_failover.r.broker_failovers > 1000,
                    std::to_string(b_failover.p99_ms()) + " ms, " +
                        std::to_string(b_failover.r.broker_failovers) + " failovers"});
  checks.push_back({"C: chaos soak completes work and fails only corrupted payloads",
                    c_first.r.completed > 1000 && c_first.r.failed > 50 &&
                        c_first.r.failed < c_first.r.completed / 10,
                    std::to_string(c_first.r.completed) + " completed, " +
                        std::to_string(c_first.r.failed) + " failed"});
  checks.push_back({"C: the staging shrink forces an eviction storm",
                    c_first.r.gpu_evictions > 0 && a_base.r.gpu_evictions == 0,
                    std::to_string(c_first.r.gpu_evictions) + " evictions"});
  checks.push_back({"C: the same fault schedule reproduces bit-identical results",
                    c_first.r.completed == c_second.r.completed &&
                        c_first.r.failed == c_second.r.failed &&
                        c_first.r.dropped == c_second.r.dropped &&
                        c_first.r.client_retries == c_second.r.client_retries &&
                        c_first.r.p99_latency_s == c_second.r.p99_latency_s,
                    std::to_string(c_first.r.completed) + "/" + std::to_string(c_first.r.failed) +
                        " == " + std::to_string(c_second.r.completed) + "/" +
                        std::to_string(c_second.r.failed)});
  checks.push_back({"conservation holds in every scenario (auditor)", g_violations == 0,
                    std::to_string(g_violations) + " violation(s)"});
  rep.checks(std::move(checks));
  return rep.finish(core::finish_harness(g_harness, g_trace, g_violations));
}
