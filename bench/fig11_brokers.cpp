// Reproduces paper Fig. 11: throughput and latency breakdown of the
// face-detection -> face-identification pipeline with Apache Kafka, Redis,
// and a Fused (no-broker) implementation, sweeping faces per frame.
//
// Paper findings: Redis gives 125% higher throughput (2.25x) and 67% lower
// zero-load latency than Kafka at 25 faces/frame; the broker accounts for
// 71% (Kafka) vs 6% (Redis) of latency; Fused wins below ~9 faces/frame,
// Redis wins at >=9.
#include "bench_util.h"
#include "core/experiment.h"
#include "core/face_pipeline.h"
#include "metrics/table.h"
#include "trace/causal.h"

using namespace serve;
using core::BrokerKind;
using core::FacePipelineSpec;

int main(int argc, char** argv) {
  core::HarnessOptions harness;
  sim::TraceRecorder trace;
  trace::CausalTracer tracer;
  bench::Reporter rep("Figure 11", "Multi-DNN face pipeline: Kafka vs Redis vs Fused");
  if (!rep.parse_cli(argc, argv, &harness)) return 2;
  if (harness.tracing()) {
    if (harness.trace_max_events > 0) trace.set_max_events(harness.trace_max_events);
    tracer.set_recorder(&trace);
  }
  // The face pipeline has no InferenceServer/auditor; traces attach directly.
  auto wire_trace = [&](FacePipelineSpec& spec, const std::string& label) {
    if (!harness.tracing()) return;
    spec.tracer = &tracer;
    spec.trace_label = label;
  };

  const int face_counts[] = {1, 2, 3, 5, 7, 9, 12, 15, 20, 25};
  metrics::Table tput_table({"faces/frame", "kafka_fps", "redis_fps", "fused_fps", "best"});
  double redis25 = 0, kafka25 = 0;
  int crossover = -1;  // first face count where redis >= fused
  for (int f : face_counts) {
    double fps[3];
    int i = 0;
    for (auto k : {BrokerKind::kKafka, BrokerKind::kRedis, BrokerKind::kFused}) {
      FacePipelineSpec spec;
      spec.broker = k;
      spec.faces_per_frame = f;
      spec.concurrency = 16;
      spec.measure = sim::seconds(12.0);
      wire_trace(spec, std::string(core::broker_kind_name(k)) + "/f=" + std::to_string(f));
      fps[i++] = core::run_face_pipeline(spec).frames_per_s;
    }
    const char* best = fps[2] >= fps[1] && fps[2] >= fps[0] ? "fused"
                       : (fps[1] >= fps[0] ? "redis" : "kafka");
    tput_table.add_row({static_cast<std::int64_t>(f), fps[0], fps[1], fps[2],
                        std::string(best)});
    if (f == 25) {
      kafka25 = fps[0];
      redis25 = fps[1];
    }
    if (crossover < 0 && fps[1] >= fps[2]) crossover = f;
  }
  rep.table("tput_table", tput_table);

  // Zero-load latency breakdown at 25 faces/frame.
  metrics::Table lat_table(
      {"broker", "zero_load_latency_ms", "broker_%", "inference_%", "preproc_%", "queue_%"});
  double lat[3], broker_share[3];
  int i = 0;
  for (auto k : {BrokerKind::kKafka, BrokerKind::kRedis, BrokerKind::kFused}) {
    FacePipelineSpec spec;
    spec.broker = k;
    spec.faces_per_frame = 25;
    spec.concurrency = 1;
    spec.measure = sim::seconds(30.0);
    wire_trace(spec, std::string(core::broker_kind_name(k)) + "/zero-load");
    const auto r = core::run_face_pipeline(spec);
    lat[i] = r.mean_latency_s;
    broker_share[i] = r.broker_share();
    lat_table.add_row({std::string(core::broker_kind_name(k)), r.mean_latency_s * 1e3,
                       100 * r.broker_share(),
                       100 * r.breakdown.share(metrics::Stage::kInference),
                       100 * r.breakdown.share(metrics::Stage::kPreprocess),
                       100 * r.breakdown.share(metrics::Stage::kQueue)});
    ++i;
  }
  rep.table("lat_table", lat_table);

  std::vector<bench::ShapeCheck> checks;
  const double tput_gain = redis25 / kafka25 - 1.0;
  checks.push_back({"Redis beats Kafka by ~125% throughput at 25 faces/frame (paper: 2.25x)",
                    tput_gain > 0.9 && tput_gain < 1.6,
                    "+" + std::to_string(100 * tput_gain) + " %"});
  const double lat_gain = 1.0 - lat[1] / lat[0];
  checks.push_back({"Redis cuts zero-load latency ~67% vs Kafka (paper)",
                    lat_gain > 0.55 && lat_gain < 0.8,
                    std::to_string(100 * lat_gain) + " % reduction"});
  checks.push_back({"Kafka consumes ~71% of total latency (paper)",
                    broker_share[0] > 0.58 && broker_share[0] < 0.84,
                    std::to_string(100 * broker_share[0]) + " %"});
  checks.push_back({"Redis consumes ~6% of total latency (paper)",
                    broker_share[1] > 0.015 && broker_share[1] < 0.12,
                    std::to_string(100 * broker_share[1]) + " %"});
  checks.push_back({"Fused is best at low face counts; Redis overtakes near 9 (paper)",
                    crossover >= 6 && crossover <= 12,
                    "crossover at " + std::to_string(crossover) + " faces/frame"});
  rep.checks(std::move(checks));
  return rep.finish(core::finish_harness(harness, trace, 0));
}
