// Reproduces paper Fig. 7: comparative throughput of GPU preprocessing only,
// inference only, and the end-to-end server, for ViT-Base / ResNet-50 /
// TinyViT across the three image sizes.
//
// Paper findings: with large images preprocessing limits the system (ViT
// end-to-end = 19.5% of inference-only); for medium images preprocessing and
// inference are comparably fast; TinyViT small/medium is the outlier where
// end-to-end *beats* inference-only because inference-only must ship the ~5x
// larger raw tensor over PCIe.
#include <stdexcept>

#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using serving::PipelineMode;
using serving::PreprocDevice;

int main(int argc, char** argv) {
  core::HarnessOptions harness;
  sim::TraceRecorder trace;
  std::uint64_t violations = 0;
  bench::Reporter rep("Figure 7",
                      "Preprocessing-only vs inference-only vs end-to-end throughput");
  if (!rep.parse_cli(argc, argv, &harness)) return 2;

  metrics::Table table({"model", "image", "preproc_only", "inference_only", "end_to_end",
                        "e2e/inf_%"});
  const models::ModelDesc* sweep[] = {&models::vit_base(), &models::resnet50(),
                                      &models::tiny_vit()};
  const std::pair<const char*, hw::ImageSpec> sizes[] = {
      {"small", hw::kSmallImage}, {"medium", hw::kMediumImage}, {"large", hw::kLargeImage}};

  double vit_large_ratio = 0;
  double tiny_small_ratio = 0, tiny_medium_ratio = 0, tiny_large_ratio = 0;
  double resnet_medium_ratio = 0;

  for (const auto* model : sweep) {
    for (const auto& [size_name, image] : sizes) {
      double tput[3] = {};
      int i = 0;
      for (auto mode : {PipelineMode::kPreprocessOnly, PipelineMode::kInferenceOnly,
                        PipelineMode::kEndToEnd}) {
        ExperimentSpec spec;
        spec.server.model = *model;
        spec.server.preproc = PreprocDevice::kGpu;
        spec.server.mode = mode;
        spec.image = image;
        spec.concurrency = 512;
        spec.measure = sim::seconds(6.0);
        // Tracing every run would overlay 27 experiments on one virtual
        // timeline; restrict span capture to the ViT-Base rows.
        if (model == &models::vit_base()) {
          harness.apply(spec, trace);
        } else if (harness.auditing()) {
          spec.server.audit = true;
        }
        const auto r = core::run_experiment(spec);
        violations += core::report_audit(
            r, std::string(model->name) + "/" + size_name + "/mode" + std::to_string(i));
        tput[i++] = r.throughput_rps;
      }
      const double ratio = tput[2] / tput[1];
      table.add_row({std::string(model->name), std::string(size_name), tput[0], tput[1],
                     tput[2], 100 * ratio});
      if (model == &models::vit_base() && image == hw::kLargeImage) vit_large_ratio = ratio;
      if (model == &models::tiny_vit()) {
        if (image == hw::kSmallImage) tiny_small_ratio = ratio;
        if (image == hw::kMediumImage) tiny_medium_ratio = ratio;
        if (image == hw::kLargeImage) tiny_large_ratio = ratio;
      }
      if (model == &models::resnet50() && image == hw::kMediumImage) resnet_medium_ratio = ratio;
    }
  }
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"large images: ViT end-to-end ~19.5% of inference-only (paper)",
                    vit_large_ratio > 0.12 && vit_large_ratio < 0.28,
                    std::to_string(100 * vit_large_ratio) + " %"});
  checks.push_back({"TinyViT outlier: end-to-end FASTER than inference-only (small image)",
                    tiny_small_ratio > 1.02, std::to_string(100 * tiny_small_ratio) + " %"});
  checks.push_back({"TinyViT outlier: end-to-end FASTER than inference-only (medium image)",
                    tiny_medium_ratio > 1.02, std::to_string(100 * tiny_medium_ratio) + " %"});
  checks.push_back({"outlier disappears for large images (preprocessing-bound)",
                    tiny_large_ratio < 0.2, std::to_string(100 * tiny_large_ratio) + " %"});
  checks.push_back({"ResNet-50 medium: end-to-end tracks inference-only (no outlier)",
                    resnet_medium_ratio > 0.85 && resnet_medium_ratio < 1.1,
                    std::to_string(100 * resnet_medium_ratio) + " %"});
  rep.checks(std::move(checks));
  return rep.finish(core::finish_harness(harness, trace, violations));
}
