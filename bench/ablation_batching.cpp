// Ablation: dynamic-batching design choices (Section 2.1/2.3 knobs).
//
// Sweeps the scheduler's max batch size and max queue delay, and compares
// fixed-batch scheduling against Triton-style dynamic batching, quantifying
// the throughput/tail-latency trade-off the paper's configuration search
// navigates.
#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using serving::PreprocDevice;

namespace {

core::ExperimentResult run(bool dynamic, int max_batch, sim::Time delay, int concurrency) {
  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = PreprocDevice::kGpu;
  spec.server.dynamic_batching = dynamic;
  spec.server.max_batch = max_batch;
  spec.server.fixed_batch = max_batch;
  spec.server.max_queue_delay = delay;
  spec.concurrency = concurrency;
  spec.measure = sim::seconds(6.0);
  return core::run_experiment(spec);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Dynamic batching: max batch size & max queue delay");
  if (!rep.parse_cli(argc, argv)) return 2;

  metrics::Table batch_table({"scheduler", "max_batch", "tput_img_s", "p99_ms", "mean_batch"});
  double tput_mb[4] = {};
  int i = 0;
  for (int mb : {8, 32, 64, 128}) {
    const auto r = run(true, mb, 0, 256);
    batch_table.add_row({std::string("dynamic"), static_cast<std::int64_t>(mb),
                         r.throughput_rps, r.p99_latency_s * 1e3, r.mean_batch});
    tput_mb[i++] = r.throughput_rps;
  }
  const auto fixed = run(false, 64, 0, 256);
  batch_table.add_row({std::string("fixed"), std::int64_t{64}, fixed.throughput_rps,
                       fixed.p99_latency_s * 1e3, fixed.mean_batch});
  rep.table("batch_table", batch_table);

  metrics::Table delay_table({"max_queue_delay_ms", "tput_img_s", "p99_ms", "mean_batch"});
  double p99_delay0 = 0, p99_delay20 = 0;
  for (double d : {0.0, 1.0, 5.0, 20.0}) {
    const auto r = run(true, 64, sim::milliseconds(d), 64);
    delay_table.add_row(
        {d, r.throughput_rps, r.p99_latency_s * 1e3, r.mean_batch});
    if (d == 0.0) p99_delay0 = r.p99_latency_s;
    if (d == 20.0) p99_delay20 = r.p99_latency_s;
  }
  rep.table("delay_table", delay_table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"larger batch limits raise throughput (batch amortization)",
                    tput_mb[3] > tput_mb[0] * 1.2,
                    std::to_string(tput_mb[0]) + " -> " + std::to_string(tput_mb[3])});
  checks.push_back({"dynamic batching matches fixed-batch peak throughput within 10%",
                    run(true, 64, 0, 256).throughput_rps > fixed.throughput_rps * 0.9,
                    "see table"});
  checks.push_back({"queue delay inflates tail latency at moderate load",
                    p99_delay20 > p99_delay0,
                    std::to_string(p99_delay0 * 1e3) + " -> " + std::to_string(p99_delay20 * 1e3) +
                        " ms p99"});
  rep.checks(std::move(checks));
  return rep.finish();
}
