// google-benchmark micro-benchmarks of the real preprocessing substrate:
// JPEG encode/decode, resize, normalization, and the DCT kernels.
//
// These ground the CpuCalib rates: the measured MPix/s of this codec on the
// build machine documents what "one preprocessing worker" does, while the
// simulator uses the calibrated i9-13900K/libjpeg-turbo-class rates.
#include <benchmark/benchmark.h>

#include "codec/batch_preprocess.h"
#include "codec/dct.h"
#include "codec/deflate.h"
#include "codec/jpeg.h"
#include "codec/png.h"
#include "codec/synthetic.h"
#include "codec/transform.h"
#include "workload/corpus.h"

using namespace serve;

namespace {

const workload::CorpusEntry& corpus_entry(hw::ImageSpec spec) {
  static const auto small = workload::make_corpus(hw::kSmallImage, 1, 7)[0];
  static const auto medium = workload::make_corpus(hw::kMediumImage, 1, 7)[0];
  static const auto large = workload::make_corpus(hw::kLargeImage, 1, 7)[0];
  if (spec == hw::kSmallImage) return small;
  if (spec == hw::kLargeImage) return large;
  return medium;
}

double mpix(const hw::ImageSpec& spec) {
  return static_cast<double>(spec.width) * spec.height / 1e6;
}

void BM_JpegEncodeMedium(benchmark::State& state) {
  const codec::Image img = codec::make_synthetic(500, 375, codec::Pattern::kScene, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::encode_jpeg(img, {.quality = 85}));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 500 * 375 / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JpegEncodeMedium);

void BM_JpegDecodeSmall(benchmark::State& state) {
  const auto& entry = corpus_entry(hw::kSmallImage);
  for (auto _ : state) benchmark::DoNotOptimize(codec::decode_jpeg(entry.jpeg));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegDecodeSmall);

void BM_JpegDecodeMedium(benchmark::State& state) {
  const auto& entry = corpus_entry(hw::kMediumImage);
  for (auto _ : state) benchmark::DoNotOptimize(codec::decode_jpeg(entry.jpeg));
  state.SetItemsProcessed(state.iterations());
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 500 * 375 / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JpegDecodeMedium);

void BM_ResizeMediumTo224(benchmark::State& state) {
  const codec::Image img = codec::make_synthetic(500, 375, codec::Pattern::kScene, 5);
  for (auto _ : state) benchmark::DoNotOptimize(codec::resize(img, 224, 224));
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 500 * 375 / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ResizeMediumTo224);

void BM_Normalize224(benchmark::State& state) {
  const codec::Image img = codec::make_synthetic(224, 224, codec::Pattern::kScene, 5);
  for (auto _ : state) benchmark::DoNotOptimize(codec::normalize_chw(img));
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 224 * 224 / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Normalize224);

void BM_FullPreprocessPipelineMedium(benchmark::State& state) {
  // The paper's complete preprocessing stage: decode -> resize -> normalize.
  const auto& entry = corpus_entry(hw::kMediumImage);
  for (auto _ : state) {
    const codec::Image decoded = codec::decode_jpeg(entry.jpeg);
    const codec::Image resized = codec::resize(decoded, 224, 224);
    benchmark::DoNotOptimize(codec::normalize_chw(resized));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPreprocessPipelineMedium);

void BM_JpegDecodeLarge(benchmark::State& state) {
  const auto& entry = corpus_entry(hw::kLargeImage);
  for (auto _ : state) benchmark::DoNotOptimize(codec::decode_jpeg(entry.jpeg));
  state.SetItemsProcessed(state.iterations());
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * mpix(hw::kLargeImage),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JpegDecodeLarge);

void BM_ResizeLargeTo224(benchmark::State& state) {
  const codec::Image img =
      codec::make_synthetic(hw::kLargeImage.width, hw::kLargeImage.height,
                            codec::Pattern::kScene, 5);
  for (auto _ : state) benchmark::DoNotOptimize(codec::resize(img, 224, 224));
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * mpix(hw::kLargeImage),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ResizeLargeTo224);

void BM_NormalizeLarge(benchmark::State& state) {
  const codec::Image img =
      codec::make_synthetic(hw::kLargeImage.width, hw::kLargeImage.height,
                            codec::Pattern::kScene, 5);
  for (auto _ : state) benchmark::DoNotOptimize(codec::normalize_chw(img));
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * mpix(hw::kLargeImage),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NormalizeLarge);

void BM_FullPreprocessPipelineLarge(benchmark::State& state) {
  const auto& entry = corpus_entry(hw::kLargeImage);
  for (auto _ : state) {
    const codec::Image decoded = codec::decode_jpeg(entry.jpeg);
    const codec::Image resized = codec::resize(decoded, 224, 224);
    benchmark::DoNotOptimize(codec::normalize_chw(resized));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPreprocessPipelineLarge);

void BM_CenterCropMedium(benchmark::State& state) {
  const codec::Image img = codec::make_synthetic(500, 375, codec::Pattern::kScene, 5);
  for (auto _ : state) benchmark::DoNotOptimize(codec::center_crop(img, 256));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CenterCropMedium);

void BM_BatchPreprocessMedium(benchmark::State& state) {
  // Thread-scaling of the decode->resize->normalize worker pool over a
  // 32-image medium corpus (items/s here is images per second).
  static const auto corpus = workload::make_corpus(hw::kMediumImage, 32, 11, 4);
  static const auto jpegs = [] {
    std::vector<std::vector<std::uint8_t>> j;
    j.reserve(corpus.size());
    for (const auto& e : corpus) j.push_back(e.jpeg);
    return j;
  }();
  codec::BatchPreprocessor pool{static_cast<int>(state.range(0))};
  for (auto _ : state) benchmark::DoNotOptimize(pool.run(jpegs, {}));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jpegs.size()));
}
BENCHMARK(BM_BatchPreprocessMedium)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_JpegEncodeOptimizedHuffman(benchmark::State& state) {
  const codec::Image img = codec::make_synthetic(500, 375, codec::Pattern::kScene, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::encode_jpeg(img, {.quality = 85, .optimize_huffman = true}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegEncodeOptimizedHuffman);

void BM_PngEncodeMedium(benchmark::State& state) {
  const codec::Image img = codec::make_synthetic(500, 375, codec::Pattern::kScene, 3);
  for (auto _ : state) benchmark::DoNotOptimize(codec::encode_png(img));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PngEncodeMedium);

void BM_PngDecodeMedium(benchmark::State& state) {
  const codec::Image img = codec::make_synthetic(500, 375, codec::Pattern::kScene, 3);
  const auto bytes = codec::encode_png(img);
  for (auto _ : state) benchmark::DoNotOptimize(codec::decode_png(bytes));
  state.SetItemsProcessed(state.iterations());
  state.counters["MPix/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 500 * 375 / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PngDecodeMedium);

void BM_DeflateText(benchmark::State& state) {
  std::vector<std::uint8_t> data(256 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>("serving overheads dominate "[i % 27]);
  }
  for (auto _ : state) benchmark::DoNotOptimize(codec::deflate(data));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_DeflateText);

void BM_InflateText(benchmark::State& state) {
  std::vector<std::uint8_t> data(256 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>("serving overheads dominate "[i % 27]);
  }
  const auto compressed = codec::deflate(data);
  for (auto _ : state) benchmark::DoNotOptimize(codec::inflate(compressed, data.size()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_InflateText);

void BM_Fdct8x8(benchmark::State& state) {
  float in[64], out[64];
  for (int i = 0; i < 64; ++i) in[i] = static_cast<float>((i * 37) % 255) - 128.0f;
  for (auto _ : state) {
    codec::jpeg::fdct8x8(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fdct8x8);

void BM_Idct8x8(benchmark::State& state) {
  float in[64], out[64];
  for (int i = 0; i < 64; ++i) in[i] = static_cast<float>((i * 17) % 101);
  for (auto _ : state) {
    codec::jpeg::idct8x8(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Idct8x8);

void BM_Idct8x8Scaled(benchmark::State& state) {
  // The decoder's actual inner transform: prescale already folded into the
  // quant tables, SIMD-dispatched (scalar under SERVESCOPE_FORCE_SCALAR).
  float in[64], out[64];
  const auto& scale = codec::jpeg::idct_prescale();
  for (int i = 0; i < 64; ++i) {
    in[i] = static_cast<float>((i * 17) % 101) * scale[static_cast<std::size_t>(i)];
  }
  for (auto _ : state) {
    codec::jpeg::idct8x8_scaled(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Idct8x8Scaled);

}  // namespace

// Not BENCHMARK_MAIN(): the app-level build type goes into the JSON context
// so tools/bench_check can refuse debug-build numbers (google-benchmark's own
// "library_build_type" describes the system library, not this binary).
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("build_type", "release");
#else
  benchmark::AddCustomContext("build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
