// Ablation: fleet-level failure domains vs balancer resilience policies.
//
// Four-node ViT fleet under open-loop Poisson load, driven through
// node-scoped fault schedules (sim::FaultPlan). Each scenario compares a
// naive balancer against the matching fleet policy:
//
//   A. Node crash. A no-health round-robin balancer keeps dispatching a
//      quarter of the traffic into connection refusals for the whole window;
//      health-checked power-of-two-choices ejects the node within a few
//      probe intervals and holds goodput near the fault-free baseline, then
//      rejoins it after the crash clears.
//   B. Gray failure — the hard case for queue-length balancing. The gray
//      node fast-fails most requests, so its queue stays short and plain
//      join-shortest-queue *floods* it; latency-weighted routing feeds
//      failures into the latency signal and routes around it. Health checks
//      are off in both runs: probes succeed against a gray node by
//      definition, so the policy choice is what matters.
//   C. Partition. A 400 ms balancer<->node link delay stretches the tail to
//      ~0.8 s for 1-in-4 requests; hedged requests re-dispatch after 30 ms
//      and cut p99 by an order of magnitude. A second run with a tiny
//      non-refilling hedge-token budget shows the budget is a hard cap.
//   D. Determinism: scenario A's health run repeated must produce a
//      byte-identical FleetResult digest.
//
// Every run executes with per-node lifecycle auditors on, and every logical
// request must reach exactly one terminal state (issued == completed +
// failed) — hedged, cancelled, and dropped requests included.
#include <string>

#include "bench_util.h"
#include "core/fleet.h"
#include "models/model_zoo.h"
#include "trace/causal.h"

using namespace serve;
using core::BalancerPolicy;
using core::FleetSpec;

namespace {

core::HarnessOptions g_harness;
sim::TraceRecorder g_trace;
trace::CausalTracer g_tracer;
std::uint64_t g_violations = 0;

FleetSpec base_spec() {
  FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.gpus_per_node = {1, 1, 1, 1};
  spec.rate_rps = 4000.0;  // ~55% of the ~7200/s four-node capacity
  spec.warmup = sim::seconds(2.0);
  spec.measure = sim::seconds(12.0);
  spec.seed = 23;
  spec.audit = true;  // conservation is checked in every scenario
  // Spread trace sampling across the whole run: the default cap would be
  // exhausted before the fault windows open at t=3s, so no hedged or
  // ejection-era request would ever appear in the trace.
  spec.server.trace_sampler.rate = 1.0 / 64.0;
  spec.server.trace_sampler.max_sampled = 2000;
  return spec;
}

core::FleetResult run(const std::string& label, FleetSpec spec) {
  if (g_harness.tracing()) {
    spec.trace = &g_trace;
    spec.tracer = &g_tracer;
  }
  auto r = core::run_fleet(spec);
  if (r.audit_violations > 0) {
    std::fprintf(stderr, "AUDIT [%s]: %llu violation(s)\n", label.c_str(),
                 static_cast<unsigned long long>(r.audit_violations));
    for (const auto& line : r.audit_report) std::fprintf(stderr, "  %s\n", line.c_str());
  }
  g_violations += r.audit_violations;
  if (!r.conserved()) {
    std::fprintf(stderr, "CONSERVATION [%s]: issued=%llu completed=%llu failed=%llu\n",
                 label.c_str(), static_cast<unsigned long long>(r.issued),
                 static_cast<unsigned long long>(r.completed),
                 static_cast<unsigned long long>(r.failed));
    ++g_violations;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Fleet failure domains: crash / gray / partition (audited)");
  if (!rep.parse_cli(argc, argv, &g_harness)) return 2;
  g_tracer.set_recorder(&g_trace);

  metrics::Table table({"scenario", "goodput_img_s", "p99_ms", "failed", "ejections", "hedges",
                        "node0_dispatch_share"});
  auto add = [&table](const std::string& name, const core::FleetResult& r) {
    std::uint64_t total = 0;
    for (auto d : r.node_dispatches) total += d;
    const double share =
        total > 0 ? static_cast<double>(r.node_dispatches[0]) / static_cast<double>(total) : 0.0;
    table.add_row({name, r.throughput_rps, r.p99_latency_s * 1e3,
                   static_cast<double>(r.failed), static_cast<double>(r.ejections),
                   static_cast<double>(r.hedges), share});
  };
  auto bench_row = [&rep](const std::string& name, const core::FleetResult& r) {
    rep.benchmark(name, r.p99_latency_s * 1e3,
                  {{"goodput_img_s", r.throughput_rps}, {"failed", static_cast<double>(r.failed)}});
  };

  // --- Baseline: fault-free fleet -------------------------------------------
  const auto base = run("base", base_spec());
  add("fault-free: round-robin", base);
  bench_row("fleet/base", base);

  // --- Scenario A: node crash, health-checked ejection ----------------------
  sim::FaultPlan crash;
  crash.node_crash(0, sim::seconds(3.0), sim::seconds(13.0));

  FleetSpec a_np = base_spec();
  a_np.faults = &crash;
  const auto a_nohealth = run("A/no-health", a_np);
  add("A crash: round-robin, no health", a_nohealth);
  bench_row("fleet/crash_nohealth", a_nohealth);

  FleetSpec a_h = base_spec();
  a_h.faults = &crash;
  a_h.server.balancer.policy = BalancerPolicy::kPowerOfTwo;
  a_h.server.balancer.health.enabled = true;
  // Export the fleet instruments (per-node health score/state, ejection and
  // hedge counters) so tools/report renders them from the JSON output.
  metrics::Registry registry;
  a_h.registry = &registry;
  const auto a_health = run("A/health", a_h);
  rep.exporter().capture_instruments(registry);
  add("A crash: p2c + health checks", a_health);
  bench_row("fleet/crash_health", a_health);

  // --- Scenario B: gray failure, queue-length vs latency-weighted -----------
  sim::FaultPlan gray;
  gray.node_gray_failure(0, sim::seconds(3.0), sim::seconds(13.0), 0.12);

  FleetSpec b_jsq = base_spec();
  b_jsq.faults = &gray;
  b_jsq.server.balancer.policy = BalancerPolicy::kLeastOutstanding;
  const auto b_jsq_r = run("B/jsq", b_jsq);
  add("B gray: join-shortest-queue", b_jsq_r);
  bench_row("fleet/gray_jsq", b_jsq_r);

  FleetSpec b_lw = base_spec();
  b_lw.faults = &gray;
  b_lw.server.balancer.policy = BalancerPolicy::kLatencyWeighted;
  const auto b_lw_r = run("B/latency-weighted", b_lw);
  add("B gray: latency-weighted", b_lw_r);
  bench_row("fleet/gray_lw", b_lw_r);

  // --- Scenario C: partition, hedged requests -------------------------------
  sim::FaultPlan partition;
  partition.node_partition(0, sim::seconds(3.0), sim::seconds(8.0), 0.4);

  FleetSpec c_np = base_spec();
  c_np.faults = &partition;
  const auto c_nohedge = run("C/no-hedge", c_np);
  add("C partition: no hedging", c_nohedge);
  bench_row("fleet/partition_nohedge", c_nohedge);

  FleetSpec c_h = base_spec();
  c_h.faults = &partition;
  c_h.server.balancer.hedge.enabled = true;
  c_h.server.balancer.hedge.deadline = sim::milliseconds(30);
  // Every success refills a full token: the budget never binds here (the
  // budget-32 run below shows the cap); what's measured is the hedge itself.
  c_h.server.balancer.hedge.budget_refill_per_success = 1.0;
  const auto c_hedge = run("C/hedge", c_h);
  add("C partition: hedge @30ms", c_hedge);
  bench_row("fleet/partition_hedge", c_hedge);

  FleetSpec c_b = c_h;
  c_b.server.balancer.hedge.budget = 32.0;
  c_b.server.balancer.hedge.budget_refill_per_success = 0.0;
  const auto c_budget = run("C/hedge-budget", c_b);
  add("C partition: hedge, budget 32", c_budget);

  // --- Scenario D: determinism ----------------------------------------------
  FleetSpec d_spec = a_h;
  d_spec.registry = nullptr;  // instruments don't influence the run's digest
  const auto a_repeat = run("D/health-repeat", d_spec);
  add("D repeat of A health run", a_repeat);

  rep.table("table", table);

  std::uint64_t gray_total = 0;
  for (auto d : b_jsq_r.node_dispatches) gray_total += d;
  const double jsq_share =
      static_cast<double>(b_jsq_r.node_dispatches[0]) / static_cast<double>(gray_total);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"A: without health checks a crashed node keeps eating its traffic share",
                    a_nohealth.throughput_rps < 0.85 * base.throughput_rps &&
                        a_nohealth.crash_failed > 1000,
                    std::to_string(a_nohealth.throughput_rps) + " vs " +
                        std::to_string(base.throughput_rps) + " img/s, " +
                        std::to_string(a_nohealth.crash_failed) + " crash-failed"});
  checks.push_back({"A: health-checked p2c ejects the node and holds goodput near fault-free",
                    a_health.throughput_rps > 0.90 * base.throughput_rps &&
                        a_health.ejections >= 1 && a_health.rejoins >= 1,
                    std::to_string(a_health.throughput_rps) + " vs " +
                        std::to_string(base.throughput_rps) + " img/s, " +
                        std::to_string(a_health.ejections) + " ejection(s), " +
                        std::to_string(a_health.rejoins) + " rejoin(s)"});
  checks.push_back({"B: join-shortest-queue floods the gray node (short queue = fast failure)",
                    jsq_share > 0.375 &&
                        b_jsq_r.throughput_rps < 0.7 * base.throughput_rps,
                    "node0 dispatch share " + std::to_string(jsq_share) + " (fair 0.25), " +
                        std::to_string(b_jsq_r.throughput_rps) + " img/s"});
  checks.push_back({"B: latency-weighted routing penalizes failures and routes around gray",
                    b_lw_r.throughput_rps > 0.85 * base.throughput_rps &&
                        b_lw_r.throughput_rps > 1.5 * b_jsq_r.throughput_rps,
                    std::to_string(b_lw_r.throughput_rps) + " vs jsq " +
                        std::to_string(b_jsq_r.throughput_rps) + " img/s"});
  checks.push_back({"C: hedged requests cut the partition tail by >3x",
                    c_hedge.p99_latency_s < 0.3 * c_nohedge.p99_latency_s &&
                        c_hedge.hedge_wins > 100,
                    std::to_string(c_nohedge.p99_latency_s * 1e3) + " -> " +
                        std::to_string(c_hedge.p99_latency_s * 1e3) + " ms p99, " +
                        std::to_string(c_hedge.hedge_wins) + " hedge wins"});
  checks.push_back({"C: the hedge-token budget is a hard cap",
                    c_budget.hedges == 32 && c_budget.hedges_denied > 0,
                    std::to_string(c_budget.hedges) + " hedges (budget 32), " +
                        std::to_string(c_budget.hedges_denied) + " denied"});
  checks.push_back({"D: the same fault schedule reproduces a byte-identical digest",
                    a_health.digest() == a_repeat.digest(), a_health.digest()});
  checks.push_back({"every logical request reaches one terminal state (audited, all scenarios)",
                    g_violations == 0, std::to_string(g_violations) + " violation(s)"});
  rep.checks(std::move(checks));
  return rep.finish(core::finish_harness(g_harness, g_trace, g_violations));
}
