// Ablation: do the paper's conclusions generalize across platform classes?
//
// Runs the core experiments (zero-load preprocessing share, CPU-vs-GPU
// preprocessing throughput, energy per image) on three platform presets —
// the paper's desktop testbed, a datacenter A100-class node, and an edge
// box — and checks which qualitative findings survive the hardware change.
#include "bench_util.h"
#include "core/experiment.h"
#include "hw/presets.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using metrics::Stage;
using serving::PreprocDevice;

namespace {

struct PlatformRow {
  const char* name;
  hw::Calibration calib;
  double preproc_share_medium_cpu = 0;
  double tput_cpu = 0, tput_gpu = 0;
  double mj_per_img_gpu_pre = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Cross-platform generality (desktop / datacenter / edge)");
  if (!rep.parse_cli(argc, argv)) return 2;

  PlatformRow rows[] = {
      {"rtx4090+i9 (paper)", hw::rtx4090_i9_preset()},
      {"a100 server", hw::a100_server_preset()},
      {"edge box", hw::edge_box_preset()},
  };

  metrics::Table table({"platform", "zero_load_preproc_share_%", "tput_cpu_pre", "tput_gpu_pre",
                        "gpu_gain_%", "energy_mJ_img"});
  for (auto& row : rows) {
    ExperimentSpec spec;
    spec.server.model = models::vit_base();
    spec.calib = row.calib;
    spec.image = hw::kMediumImage;

    spec.server.preproc = PreprocDevice::kCpu;
    const auto zero = core::run_zero_load(spec);
    row.preproc_share_medium_cpu = zero.stage_share(Stage::kPreprocess);

    spec.concurrency = 256;
    spec.measure = sim::seconds(6.0);
    const auto cpu = core::run_experiment(spec);
    row.tput_cpu = cpu.throughput_rps;
    spec.server.preproc = PreprocDevice::kGpu;
    const auto gpu = core::run_experiment(spec);
    row.tput_gpu = gpu.throughput_rps;
    row.mj_per_img_gpu_pre = (gpu.cpu_joules_per_image() + gpu.gpu_joules_per_image()) * 1e3;

    table.add_row({std::string(row.name), 100 * row.preproc_share_medium_cpu, row.tput_cpu,
                   row.tput_gpu, 100 * (row.tput_gpu / row.tput_cpu - 1.0),
                   row.mj_per_img_gpu_pre});
  }
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"preprocessing is a first-order cost on every platform (>25% zero-load)",
                    rows[0].preproc_share_medium_cpu > 0.25 &&
                        rows[1].preproc_share_medium_cpu > 0.25 &&
                        rows[2].preproc_share_medium_cpu > 0.25,
                    "shares " + std::to_string(100 * rows[0].preproc_share_medium_cpu) + "/" +
                        std::to_string(100 * rows[1].preproc_share_medium_cpu) + "/" +
                        std::to_string(100 * rows[2].preproc_share_medium_cpu) + " %"});
  checks.push_back({"GPU preprocessing helps on desktop and server",
                    rows[0].tput_gpu > rows[0].tput_cpu && rows[1].tput_gpu > rows[1].tput_cpu,
                    "see table"});
  checks.push_back({"datacenter node outperforms desktop; edge is far slower",
                    rows[1].tput_gpu > rows[0].tput_gpu && rows[2].tput_gpu < rows[0].tput_gpu / 5,
                    "tput " + std::to_string(rows[1].tput_gpu) + " > " +
                        std::to_string(rows[0].tput_gpu) + " >> " +
                        std::to_string(rows[2].tput_gpu)});
  // Energy per image does NOT favour the edge box for a 17.6 GFLOP model —
  // the small engine runs long. What the edge box wins is average power.
  const double edge_watts = rows[2].mj_per_img_gpu_pre * 1e-3 * rows[2].tput_gpu;
  const double desktop_watts = rows[0].mj_per_img_gpu_pre * 1e-3 * rows[0].tput_gpu;
  checks.push_back({"edge box draws an order of magnitude less average power",
                    edge_watts < desktop_watts / 5.0,
                    std::to_string(edge_watts) + " W vs " + std::to_string(desktop_watts) + " W"});
  rep.checks(std::move(checks));
  return rep.finish();
}
