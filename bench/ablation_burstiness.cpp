// Ablation: open-loop traffic shape vs serving latency.
//
// The paper's experiments use closed-loop concurrency (its load balancer
// caps in-flight requests). Real front-ends also see open arrivals, often
// bursty. This ablation drives the same tuned ViT server with deterministic,
// Poisson, and MMPP-2 (bursty) arrivals at identical mean rates and shows
// how much tail latency the arrival process alone costs — motivation for the
// paper's bounded-concurrency deployment model.
#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"
#include "workload/arrivals.h"

using namespace serve;
using core::ExperimentSpec;

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Arrival-process burstiness vs latency (open loop)");
  if (!rep.parse_cli(argc, argv)) return 2;

  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.measure = sim::seconds(15.0);

  metrics::Table table({"arrivals", "offered_rate", "tput_img_s", "mean_ms", "p99_ms"});
  double p99[3][3] = {};
  const double rates[] = {600.0, 1200.0, 1650.0};  // ~33%, ~65%, ~90% of capacity
  for (int r = 0; r < 3; ++r) {
    const double rate = rates[r];
    struct Shape {
      const char* name;
      serving::OpenLoopClients::Interarrival gen;
    } shapes[] = {
        {"deterministic", workload::deterministic_arrivals(rate)},
        {"poisson", workload::poisson_arrivals(rate)},
        {"mmpp2 (bursty)", workload::mmpp2_arrivals(rate, 4.0, 0.4)},
    };
    for (int s = 0; s < 3; ++s) {
      const auto result = core::run_open_loop(spec, shapes[s].gen);
      table.add_row({std::string(shapes[s].name), rate, result.throughput_rps,
                     result.mean_latency_s * 1e3, result.p99_latency_s * 1e3});
      p99[s][r] = result.p99_latency_s;
    }
  }
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"burstiness inflates tail latency at moderate load",
                    p99[2][1] > 1.5 * p99[1][1],
                    "p99 " + std::to_string(p99[1][1] * 1e3) + " -> " +
                        std::to_string(p99[2][1] * 1e3) + " ms at 1200 img/s"});
  checks.push_back({"deterministic arrivals are never worse than Poisson",
                    p99[0][0] <= p99[1][0] * 1.05 && p99[0][1] <= p99[1][1] * 1.05,
                    "see table"});
  checks.push_back({"burstiness penalty grows with utilization",
                    (p99[2][1] - p99[1][1]) > (p99[2][0] - p99[1][0]),
                    "bursty-vs-poisson gap widens from 600 to 1200 img/s"});
  rep.checks(std::move(checks));
  return rep.finish();
}
