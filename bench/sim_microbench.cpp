// google-benchmark micro-benchmarks of the discrete-event simulation kernel:
// raw event throughput, channel hand-offs, resource cycles, and whole-server
// simulation speed (virtual seconds per wall second).
#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "models/model_zoo.h"
#include "sim/channel.h"
#include "sim/resource.h"
#include "sim/simulator.h"

using namespace serve;

namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i) sim.schedule_at(i, [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventDispatch);

sim::Process pingpong_producer(sim::Simulator&, sim::Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) co_await ch.put(i);
  ch.close();
}

sim::Process pingpong_consumer(sim::Simulator&, sim::Channel<int>& ch) {
  while (co_await ch.get()) {
  }
}

void BM_ChannelHandoff(benchmark::State& state) {
  const int n = 10000;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> ch{sim, 8};
    sim.spawn(pingpong_producer(sim, ch, n));
    sim.spawn(pingpong_consumer(sim, ch));
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelHandoff);

sim::Process resource_cycler(sim::Simulator& sim, sim::Resource& res, int n) {
  for (int i = 0; i < n; ++i) {
    auto tok = co_await res.acquire();
    co_await sim.wait(sim::microseconds(1.0));
  }
}

void BM_ResourceCycle(benchmark::State& state) {
  const int n = 5000;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Resource res{sim, 2};
    for (int p = 0; p < 4; ++p) sim.spawn(resource_cycler(sim, res, n / 4));
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ResourceCycle);

void BM_FullServerSimulation(benchmark::State& state) {
  // Virtual-time speed of the complete Fig. 5-style experiment; the counter
  // reports simulated requests per wall second.
  std::uint64_t requests = 0;
  for (auto _ : state) {
    core::ExperimentSpec spec;
    spec.server.model = models::vit_base();
    spec.concurrency = 256;
    spec.warmup = sim::seconds(0.5);
    spec.measure = sim::seconds(2.0);
    const auto r = core::run_experiment(spec);
    requests += r.completed;
    benchmark::DoNotOptimize(r);
  }
  state.counters["sim_requests/s"] =
      benchmark::Counter(static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullServerSimulation);

}  // namespace

BENCHMARK_MAIN();
