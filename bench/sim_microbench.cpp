// google-benchmark micro-benchmarks of the discrete-event simulation kernel:
// raw event throughput, channel hand-offs, task spawn/switch churn, resource
// cycles, and whole-server simulation speed. Rate counters (events/s,
// channel_ops/s, task_switches/s) plus allocation counters from the sim
// frame pool (allocs per simulated request) make regressions in the
// per-request hot path visible at a glance.
#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "models/model_zoo.h"
#include "sim/channel.h"
#include "sim/pool.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"

using namespace serve;

namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i) sim.schedule_at(i, [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 10000), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventDispatch);

sim::Process pingpong_producer(sim::Simulator&, sim::Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) co_await ch.put(i);
  ch.close();
}

sim::Process pingpong_consumer(sim::Simulator&, sim::Channel<int>& ch) {
  // NOTE: deliberately not `while (co_await ch.get())` — GCC 12 miscompiles
  // a co_await in a while-condition here (the coroutine frame is mislaid and
  // the process silently never runs), which made an earlier version of this
  // benchmark measure an empty simulation.
  while (true) {
    auto v = co_await ch.get();
    if (!v) break;
  }
}

void BM_ChannelHandoff(benchmark::State& state) {
  const int n = 10000;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> ch{sim, 8};
    sim.spawn(pingpong_producer(sim, ch, n));
    sim.spawn(pingpong_consumer(sim, ch));
    steps += sim.run();
    if (sim.live_processes() != 0) {
      state.SkipWithError("handoff deadlocked: processes still live");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["channel_ops/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n), benchmark::Counter::kIsRate);
  state.counters["steps_per_item"] =
      static_cast<double>(steps) / static_cast<double>(state.iterations() * n);
}
BENCHMARK(BM_ChannelHandoff);

sim::Task<int> leaf_task(int i) { co_return i; }

sim::Task<int> mid_task(int i) {
  int acc = 0;
  for (int k = 0; k < 4; ++k) acc += co_await leaf_task(i + k);
  co_return acc;
}

sim::Process task_churn(sim::Simulator&, int n, std::uint64_t& sink) {
  for (int i = 0; i < n; ++i) sink += static_cast<std::uint64_t>(co_await mid_task(i));
}

void BM_TaskSwitch(benchmark::State& state) {
  // Spawn/await churn through nested Task coroutines: every iteration is
  // n * (1 mid + 4 leaf) frame allocations plus symmetric-transfer switches,
  // i.e. the shape of one pipeline fragment per simulated request.
  const int n = 2000;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn(task_churn(sim, n, sink));
    benchmark::DoNotOptimize(sim.run());
  }
  benchmark::DoNotOptimize(sink);
  const auto switches = state.iterations() * n * 5;  // 5 task frames per loop
  state.SetItemsProcessed(switches);
  state.counters["task_switches/s"] = benchmark::Counter(
      static_cast<double>(switches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TaskSwitch);

sim::Process resource_cycler(sim::Simulator& sim, sim::Resource& res, int n) {
  for (int i = 0; i < n; ++i) {
    auto tok = co_await res.acquire();
    co_await sim.wait(sim::microseconds(1.0));
  }
}

void BM_ResourceCycle(benchmark::State& state) {
  const int n = 5000;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Resource res{sim, 2};
    for (int p = 0; p < 4; ++p) sim.spawn(resource_cycler(sim, res, n / 4));
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ResourceCycle);

void BM_FullServerSimulation(benchmark::State& state) {
  // Virtual-time speed of the complete Fig. 5-style experiment; the counters
  // report simulated requests per wall second and how many allocations the
  // per-request hot path costs (pool hits are recycled frames, heap allocs
  // actually reached operator new).
  std::uint64_t requests = 0;
  const sim::AllocStats before = sim::alloc_stats();
  for (auto _ : state) {
    core::ExperimentSpec spec;
    spec.server.model = models::vit_base();
    spec.concurrency = 256;
    spec.warmup = sim::seconds(0.5);
    spec.measure = sim::seconds(2.0);
    const auto r = core::run_experiment(spec);
    requests += r.completed;
    benchmark::DoNotOptimize(r);
  }
  const sim::AllocStats after = sim::alloc_stats();
  state.counters["sim_requests/s"] =
      benchmark::Counter(static_cast<double>(requests), benchmark::Counter::kIsRate);
  if (requests > 0) {
    const auto per = [&](std::uint64_t a, std::uint64_t b) {
      return static_cast<double>(a - b) / static_cast<double>(requests);
    };
    state.counters["frame_allocs_per_req"] = per(after.frame_allocs, before.frame_allocs);
    state.counters["heap_allocs_per_req"] =
        per(after.frame_heap_allocs, before.frame_heap_allocs) +
        per(after.action_heap_allocs, before.action_heap_allocs);
    state.counters["pool_hit_rate"] =
        static_cast<double>(after.frame_pool_hits - before.frame_pool_hits) /
        static_cast<double>(after.frame_allocs - before.frame_allocs);
  }
}
BENCHMARK(BM_FullServerSimulation);

}  // namespace

// Not BENCHMARK_MAIN(): the app-level build type goes into the JSON context
// so tools/bench_check can refuse debug-build numbers (google-benchmark's own
// "library_build_type" describes the system library, not this binary).
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("build_type", "release");
#else
  benchmark::AddCustomContext("build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
