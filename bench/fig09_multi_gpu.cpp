// Reproduces paper Fig. 9: throughput scaling with GPU count (1..4) for the
// medium and large images under CPU preprocessing, GPU preprocessing, and
// inference-only.
//
// Paper findings: medium image scales ~linearly for both preprocessing
// devices; large image + GPU preprocessing improves notably from 1->2 GPUs
// then stalls; large image + CPU preprocessing barely moves; inference-only
// scales linearly (inference is not the bottleneck).
#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using serving::PipelineMode;
using serving::PreprocDevice;

namespace {

double run(const models::ModelDesc& model, hw::ImageSpec image, PreprocDevice dev,
           PipelineMode mode, int gpus) {
  ExperimentSpec spec;
  spec.server.model = model;
  spec.server.preproc = dev;
  spec.server.mode = mode;
  spec.image = image;
  spec.gpu_count = gpus;
  spec.concurrency = 1024;
  spec.measure = sim::seconds(6.0);
  return core::run_experiment(spec).throughput_rps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Figure 9", "Multi-GPU scaling (medium & large image, 1..4 GPUs)");
  if (!rep.parse_cli(argc, argv)) return 2;

  struct Series {
    const char* name;
    hw::ImageSpec image;
    PreprocDevice dev;
    PipelineMode mode;
    double tput[4];
  };
  Series series[] = {
      {"medium/cpu-preproc", hw::kMediumImage, PreprocDevice::kCpu, PipelineMode::kEndToEnd, {}},
      {"medium/gpu-preproc", hw::kMediumImage, PreprocDevice::kGpu, PipelineMode::kEndToEnd, {}},
      {"large/cpu-preproc", hw::kLargeImage, PreprocDevice::kCpu, PipelineMode::kEndToEnd, {}},
      {"large/gpu-preproc", hw::kLargeImage, PreprocDevice::kGpu, PipelineMode::kEndToEnd, {}},
      {"large/inference-only", hw::kLargeImage, PreprocDevice::kGpu,
       PipelineMode::kInferenceOnly, {}},
  };

  metrics::Table table({"workload", "1_gpu", "2_gpus", "3_gpus", "4_gpus", "4gpu_speedup"});
  for (auto& s : series) {
    for (int g = 1; g <= 4; ++g) {
      s.tput[g - 1] = run(models::vit_base(), s.image, s.dev, s.mode, g);
    }
    table.add_row({std::string(s.name), s.tput[0], s.tput[1], s.tput[2], s.tput[3],
                   s.tput[3] / s.tput[0]});
  }
  rep.table("table", table);

  auto speedup = [&](int i, int g) { return series[i].tput[g - 1] / series[i].tput[0]; };
  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"medium image scales ~linearly with GPUs (CPU preprocessing)",
                    speedup(0, 4) > 3.3, "4-GPU speedup " + std::to_string(speedup(0, 4))});
  checks.push_back({"medium image scales ~linearly with GPUs (GPU preprocessing)",
                    speedup(1, 4) > 3.5, "4-GPU speedup " + std::to_string(speedup(1, 4))});
  checks.push_back({"large image + CPU preprocessing: minimal change with more GPUs",
                    speedup(2, 4) < 1.25, "4-GPU speedup " + std::to_string(speedup(2, 4))});
  checks.push_back(
      {"large image + GPU preprocessing: notable 1->2 gain, marginal beyond (paper)",
       speedup(3, 2) > 1.5 && (speedup(3, 4) - speedup(3, 3)) < 0.25 &&
           speedup(3, 4) < 2.8,
       "speedups 2/3/4 GPUs = " + std::to_string(speedup(3, 2)) + "/" +
           std::to_string(speedup(3, 3)) + "/" + std::to_string(speedup(3, 4))});
  checks.push_back({"inference-only scales linearly (inference is not the bottleneck)",
                    speedup(4, 4) > 3.3, "4-GPU speedup " + std::to_string(speedup(4, 4))});
  rep.checks(std::move(checks));
  return rep.finish();
}
