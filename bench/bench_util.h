// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench prints (1) the regenerated table/series for its figure,
// (2) the paper's reported values next to measured ones, and (3) shape
// checks: the qualitative claims (who wins, approximate factors, crossover
// points) that the reproduction is expected to preserve.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/table.h"

namespace serve::bench {

inline void print_banner(const std::string& figure, const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("============================================================\n");
}

struct ShapeCheck {
  std::string claim;    ///< the paper's qualitative statement
  bool pass;
  std::string detail;   ///< measured numbers backing the verdict
};

/// Prints the shape checks; returns the number of failures.
inline int print_checks(const std::vector<ShapeCheck>& checks) {
  int failures = 0;
  std::printf("\nShape checks vs paper:\n");
  for (const auto& c : checks) {
    std::printf("  [%s] %s (%s)\n", c.pass ? "PASS" : "DEVIATION", c.claim.c_str(),
                c.detail.c_str());
    failures += c.pass ? 0 : 1;
  }
  std::printf("%d/%zu shape checks passed\n", static_cast<int>(checks.size()) - failures,
              checks.size());
  return failures;
}

inline void print_table(const metrics::Table& table) {
  table.print(std::cout);
  std::cout.flush();
}

}  // namespace serve::bench
