// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench prints (1) the regenerated table/series for its figure,
// (2) the paper's reported values next to measured ones, and (3) shape
// checks: the qualitative claims (who wins, approximate factors, crossover
// points) that the reproduction is expected to preserve.
//
// Reporter is the one emit path all harnesses share: it renders the same
// banner/table/check output the benches have always printed, and mirrors
// everything into a metrics::TelemetryExport so any bench can additionally
// write machine-readable JSON (bench_check-compatible), CSV, or Prometheus
// text via the common --json-out/--csv-out/--prom-out flags.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "metrics/export.h"
#include "metrics/table.h"

namespace serve::bench {

inline void print_banner(const std::string& figure, const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("============================================================\n");
}

struct ShapeCheck {
  std::string claim;    ///< the paper's qualitative statement
  bool pass;
  std::string detail;   ///< measured numbers backing the verdict
};

/// Prints the shape checks; returns the number of failures.
inline int print_checks(const std::vector<ShapeCheck>& checks) {
  int failures = 0;
  std::printf("\nShape checks vs paper:\n");
  for (const auto& c : checks) {
    std::printf("  [%s] %s (%s)\n", c.pass ? "PASS" : "DEVIATION", c.claim.c_str(),
                c.detail.c_str());
    failures += c.pass ? 0 : 1;
  }
  std::printf("%d/%zu shape checks passed\n", static_cast<int>(checks.size()) - failures,
              checks.size());
  return failures;
}

inline void print_table(const metrics::Table& table) {
  table.print(std::cout);
  std::cout.flush();
}

/// One bench run's console + file output, accumulated as the harness goes.
///
/// Exit-code contract (unchanged from the hand-rolled printers): shape-check
/// deviations are *reported*, not fatal — finish() returns non-zero only for
/// a failed harness (audit violations, unwritable trace) or an unwritable
/// export path. CI gates on the checks it cares about explicitly.
class Reporter {
 public:
  Reporter(std::string figure, std::string title) {
    print_banner(figure, title);
    export_.set_context("figure", std::move(figure));
    export_.set_context("title", std::move(title));
    // Recorded so tools/bench_check can refuse debug-build baselines: a
    // debug number sneaking into a committed BENCH_*.json makes every later
    // Release run look like a huge improvement and masks real regressions.
#ifdef NDEBUG
    export_.set_context("build_type", "release");
#else
    export_.set_context("build_type", "debug");
#endif
  }

  /// Removes --json-out/--csv-out/--prom-out (each takes a path) from an
  /// argv-style list, recording the paths; returns the remaining arguments
  /// (argv[0] first) for a downstream parser. Throws std::invalid_argument
  /// on a flag with a missing path.
  std::vector<const char*> strip_output_flags(int argc, const char* const* argv) {
    std::vector<const char*> rest;
    if (argc > 0) rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      std::string* sink = nullptr;
      if (arg == "--json-out") sink = &json_out_;
      else if (arg == "--csv-out") sink = &csv_out_;
      else if (arg == "--prom-out") sink = &prom_out_;
      if (sink == nullptr) {
        rest.push_back(argv[i]);
        continue;
      }
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(arg) + " requires a file path");
      }
      *sink = argv[++i];
    }
    return rest;
  }

  /// One-call CLI front door: strips the output flags, then — when `harness`
  /// is non-null — parses --audit/--trace-out into it, otherwise rejects any
  /// leftover argument. Returns false after printing the error to stderr;
  /// callers `return 2`.
  [[nodiscard]] bool parse_cli(int argc, const char* const* argv,
                               core::HarnessOptions* harness = nullptr) {
    try {
      const auto rest = strip_output_flags(argc, argv);
      if (harness != nullptr) {
        *harness = core::parse_harness_options(static_cast<int>(rest.size()), rest.data());
      } else if (rest.size() > 1) {
        throw std::invalid_argument(
            "unknown flag '" + std::string(rest[1]) +
            "' (supported: --json-out/--csv-out/--prom-out <path>)");
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return false;
    }
    return true;
  }

  void context(std::string key, std::string value) {
    export_.set_context(std::move(key), std::move(value));
  }

  /// Prints the table and records it in the JSON export.
  void table(std::string name, const metrics::Table& t) {
    print_table(t);
    export_.add_table(std::move(name), t);
  }
  void table(const metrics::Table& t) { table("table" + std::to_string(++unnamed_tables_), t); }

  /// Records a google-benchmark-style row (JSON-only; the figure tables
  /// remain the human-facing output).
  void benchmark(std::string name, double real_time_ms,
                 std::vector<std::pair<std::string, double>> extras = {}) {
    export_.add_benchmark({std::move(name), real_time_ms, "ms", std::move(extras)});
  }

  void check(std::string claim, bool pass, std::string detail) {
    checks_.push_back({std::move(claim), pass, std::move(detail)});
    export_.add_check({checks_.back().claim, pass, checks_.back().detail});
  }

  /// Bulk form for harnesses that build their check list up front.
  void checks(std::vector<ShapeCheck> cs) {
    for (auto& c : cs) check(std::move(c.claim), c.pass, std::move(c.detail));
  }

  [[nodiscard]] metrics::TelemetryExport& exporter() noexcept { return export_; }
  [[nodiscard]] std::size_t failed_checks() const noexcept {
    return export_.failed_checks();
  }

  /// Prints the accumulated shape checks, writes any requested export files,
  /// and returns the process exit code (0 iff `harness_ok` and every export
  /// path was writable).
  [[nodiscard]] int finish(bool harness_ok = true) {
    print_checks(checks_);
    bool io_ok = true;
    io_ok &= write_file(json_out_, [this](std::ostream& o) { export_.write_json(o); });
    io_ok &= write_file(csv_out_, [this](std::ostream& o) { export_.write_csv(o); });
    io_ok &= write_file(prom_out_, [this](std::ostream& o) { export_.write_prometheus(o); });
    return harness_ok && io_ok ? 0 : 1;
  }

 private:
  template <typename WriteFn>
  bool write_file(const std::string& path, WriteFn&& fn) {
    if (path.empty()) return true;
    std::ofstream out{path};
    if (!out) {
      std::fprintf(stderr, "error: cannot open telemetry output %s\n", path.c_str());
      return false;
    }
    fn(out);
    std::fprintf(stderr, "# telemetry: wrote %s\n", path.c_str());
    return out.good();
  }

  metrics::TelemetryExport export_;
  std::vector<ShapeCheck> checks_;
  std::string json_out_, csv_out_, prom_out_;
  int unnamed_tables_ = 0;
};

}  // namespace serve::bench
