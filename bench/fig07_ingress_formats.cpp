// Fig. 7 companion sweep: ingress wire format x corpus popularity.
//
// The paper's Fig. 7 shows the ingress trade-off from the server's side:
// shipping the compressed JPEG keeps the wire thin but buys the server the
// whole preprocess stage, while shipping the raw fp32 tensor (~5x a medium
// JPEG) deletes preprocessing at the cost of fabric/PCIe bytes. This bench
// sweeps both axes end to end:
//
//  (a) ingress format x model size — for a fast model (TinyViT) the node is
//      transfer-sensitive and compressed JPEG wins; for a heavy model
//      (ViT-Base) inference dominates, the raw-tensor path dodges the DALI
//      SM-sharing tax, and raw tensor wins. The crossover is the figure.
//  (b) ingress cache x Zipf skew x cache size — with a content-addressed
//      preprocess cache (serving::IngressCache) over a skewed corpus, hit
//      rate — and with it throughput on a CPU-preprocessing deployment —
//      rises with popularity skew and with cache budget.
//
// Run with --audit to prove cache-hit requests keep a conserved (skipped,
// not dropped) preprocess stage; --trace-out additionally records the
// "ingress-cache-hit" blame spans tools/trace_analyze surfaces on critical
// paths.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"
#include "trace/causal.h"
#include "workload/corpus.h"
#include "workload/popularity.h"

using namespace serve;
using core::ExperimentSpec;
using serving::IngressFormat;
using serving::PreprocDevice;

namespace {

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  core::HarnessOptions harness;
  sim::TraceRecorder trace;
  trace::CausalTracer tracer;
  std::uint64_t violations = 0;
  bench::Reporter rep("Figure 7 (ingress)",
                      "Ingress wire format x popularity: JPEG vs raw tensor, preprocess cache");
  if (!rep.parse_cli(argc, argv, &harness)) return 2;

  // ------------------------------------------------------------------
  // (a) Ingress format crossover vs model size (GPU-preprocessing node).
  // ------------------------------------------------------------------
  metrics::Table fmt_table({"model", "ingress", "wire_kB/img", "tput_img_s", "mean_lat_ms"});
  const models::ModelDesc* model_sweep[] = {&models::tiny_vit(), &models::vit_base()};
  double fmt_tput[2][2] = {};  // [model][0=jpeg, 1=tensor]
  for (int m = 0; m < 2; ++m) {
    const auto& model = *model_sweep[m];
    for (int f = 0; f < 2; ++f) {
      ExperimentSpec spec;
      spec.server.model = model;
      spec.server.preproc = PreprocDevice::kGpu;
      spec.server.ingress = f == 0 ? IngressFormat::kCompressedImage : IngressFormat::kRawTensor;
      spec.image = hw::kMediumImage;
      spec.gpu_count = 4;
      spec.concurrency = 2048;
      spec.measure = sim::seconds(6.0);
      if (harness.auditing()) spec.server.audit = true;
      const auto r = core::run_experiment(spec);
      const std::string label = std::string(model.name) + "/" +
                                std::string(serving::ingress_format_name(spec.server.ingress));
      violations += core::report_audit(r, label);
      fmt_tput[m][f] = r.throughput_rps;
      const std::int64_t wire = f == 0 ? hw::kMediumImage.compressed_bytes
                                       : model.input_tensor_bytes();
      fmt_table.add_row({std::string(model.name),
                         std::string(serving::ingress_format_name(spec.server.ingress)),
                         static_cast<double>(wire) / 1024.0, r.throughput_rps,
                         r.mean_latency_s * 1e3});
      rep.benchmark("ingress/" + label, r.mean_latency_s * 1e3,
                    {{"tput_img_s", r.throughput_rps}});
    }
  }
  rep.table("ingress_format", fmt_table);

  // ------------------------------------------------------------------
  // (b) Ingress cache: Zipf skew x cache size over a 2048-image corpus of
  //     large photos on a CPU-preprocessing deployment — there decode +
  //     resize is the binding resource, so every tensor-level hit deletes
  //     real work (on medium images the same deployment is staging-bound
  //     and a cache only trims latency, not throughput).
  // ------------------------------------------------------------------
  const int kDistinct = 2048;
  auto cache_run = [&](double skew, std::int64_t budget_mb, bool cache_on,
                       core::ExperimentResult& out, bool trace_row = false) {
    ExperimentSpec spec;
    spec.server.model = models::tiny_vit();
    spec.server.preproc = PreprocDevice::kCpu;
    spec.server.ingress_cache.enabled = cache_on;
    spec.server.ingress_cache.image_budget_bytes = budget_mb << 20;
    spec.server.ingress_cache.tensor_budget_bytes = budget_mb << 20;
    spec.image = hw::kLargeImage;
    spec.image_source = workload::popular_corpus_source(
        workload::make_spec_corpus(hw::kLargeImage, kDistinct),
        workload::PopularityModel::zipf(kDistinct, skew));
    spec.gpu_count = 1;
    spec.concurrency = 512;
    spec.measure = sim::seconds(6.0);
    // Tracing every run would overlay a dozen experiments on one virtual
    // timeline; capture spans (with the ingress-cache-hit blame) only for
    // the hottest cache row.
    if (trace_row) {
      harness.apply(spec, trace, &tracer);
    } else if (harness.auditing()) {
      spec.server.audit = true;
    }
    const auto r = core::run_experiment(spec);
    violations += core::report_audit(r, "cache/skew=" + fmt1(skew) + "/mb=" +
                                            std::to_string(budget_mb) +
                                            (cache_on ? "" : "/off"));
    out = r;
    return r.throughput_rps;
  };

  metrics::Table cache_table(
      {"zipf_skew", "cache_MB", "hit_rate", "tensor_hits", "image_hits", "evictions",
       "tput_img_s", "mean_lat_ms"});
  const double skews[] = {0.0, 0.5, 0.9, 1.3};
  double skew_hit_rate[4] = {};
  double skew_tput[4] = {};
  core::ExperimentResult hot{};  // highest-skew row: used for the stage-shape check
  for (int i = 0; i < 4; ++i) {
    core::ExperimentResult r;
    skew_tput[i] = cache_run(skews[i], 64, true, r, /*trace_row=*/i == 3);
    skew_hit_rate[i] = r.cache_hit_rate;
    if (i == 3) hot = r;
    cache_table.add_row({skews[i], std::int64_t{64}, r.cache_hit_rate,
                         static_cast<std::int64_t>(r.cache_tensor_hits),
                         static_cast<std::int64_t>(r.cache_image_hits),
                         static_cast<std::int64_t>(r.cache_evictions), r.throughput_rps,
                         r.mean_latency_s * 1e3});
    rep.benchmark("cache/skew=" + fmt1(skews[i]) + "/mb=64", r.mean_latency_s * 1e3,
                  {{"hit_rate", r.cache_hit_rate}, {"tput_img_s", r.throughput_rps}});
  }

  const std::int64_t budgets_mb[] = {8, 32, 128};
  double size_hit_rate[3] = {};
  for (int i = 0; i < 3; ++i) {
    core::ExperimentResult r;
    const double tput = cache_run(0.9, budgets_mb[i], true, r);
    size_hit_rate[i] = r.cache_hit_rate;
    cache_table.add_row({0.9, budgets_mb[i], r.cache_hit_rate,
                         static_cast<std::int64_t>(r.cache_tensor_hits),
                         static_cast<std::int64_t>(r.cache_image_hits),
                         static_cast<std::int64_t>(r.cache_evictions), tput,
                         r.mean_latency_s * 1e3});
    rep.benchmark("cache/skew=0.9/mb=" + std::to_string(budgets_mb[i]), r.mean_latency_s * 1e3,
                  {{"hit_rate", r.cache_hit_rate}, {"tput_img_s", tput}});
  }

  core::ExperimentResult baseline;
  const double tput_no_cache = cache_run(1.3, 64, false, baseline);
  cache_table.add_row({1.3, std::int64_t{0}, 0.0, std::int64_t{0}, std::int64_t{0},
                       std::int64_t{0}, tput_no_cache, baseline.mean_latency_s * 1e3});
  rep.benchmark("cache/skew=1.3/off", baseline.mean_latency_s * 1e3,
                {{"hit_rate", 0.0}, {"tput_img_s", tput_no_cache}});
  rep.table("ingress_cache", cache_table);

  // ------------------------------------------------------------------
  // Shape checks: the crossover and the cache laws the figure claims.
  // ------------------------------------------------------------------
  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"small model (TinyViT): compressed JPEG ingress beats raw tensor",
                    fmt_tput[0][0] > fmt_tput[0][1] * 1.02,
                    "jpeg " + fmt1(fmt_tput[0][0]) + " vs tensor " + fmt1(fmt_tput[0][1]) +
                        " img/s"});
  checks.push_back({"large model (ViT-Base): raw tensor ingress beats compressed JPEG",
                    fmt_tput[1][1] > fmt_tput[1][0] * 1.01,
                    "tensor " + fmt1(fmt_tput[1][1]) + " vs jpeg " + fmt1(fmt_tput[1][0]) +
                        " img/s"});
  checks.push_back(
      {"hit rate rises monotonically with Zipf skew at a fixed 64 MB cache",
       skew_hit_rate[0] < skew_hit_rate[1] && skew_hit_rate[1] < skew_hit_rate[2] &&
           skew_hit_rate[2] < skew_hit_rate[3],
       fmt3(skew_hit_rate[0]) + " < " + fmt3(skew_hit_rate[1]) + " < " +
           fmt3(skew_hit_rate[2]) + " < " + fmt3(skew_hit_rate[3])});
  checks.push_back({"hit rate rises monotonically with cache budget at fixed skew 0.9",
                    size_hit_rate[0] < size_hit_rate[1] && size_hit_rate[1] < size_hit_rate[2],
                    fmt3(size_hit_rate[0]) + " < " + fmt3(size_hit_rate[1]) + " < " +
                        fmt3(size_hit_rate[2])});
  checks.push_back({"hot corpus: cache hits buy end-to-end throughput vs cache-off",
                    skew_tput[3] > tput_no_cache * 1.02,
                    fmt1(skew_tput[3]) + " vs " + fmt1(tput_no_cache) + " img/s"});
  checks.push_back(
      {"cache-hit requests keep a conserved preprocess stage (skipped, not dropped)",
       hot.cache_tensor_hits > 0 && hot.stage_share(metrics::Stage::kPreprocess) > 0.0,
       std::to_string(hot.cache_tensor_hits) + " tensor hits, preprocess share " +
           fmt3(hot.stage_share(metrics::Stage::kPreprocess))});
  rep.checks(std::move(checks));
  return rep.finish(core::finish_harness(harness, trace, violations));
}
