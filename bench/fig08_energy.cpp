// Reproduces paper Fig. 8: CPU and GPU energy per processed image for each
// model/size, CPU preprocessing (left bar) vs GPU preprocessing (right bar).
//
// Paper findings: CPU preprocessing costs more energy overall; moving from
// medium to large images raises CPU energy in both modes; the GPU portion is
// consistently smaller when the GPU does both preprocessing and inference
// (better utilization over-compensates for the extra work).
#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using serving::PreprocDevice;

int main(int argc, char** argv) {
  bench::Reporter rep("Figure 8", "Energy per image (CPU + GPU split) per model and image size");
  if (!rep.parse_cli(argc, argv)) return 2;

  metrics::Table table(
      {"model", "image", "preproc", "cpu_mJ_img", "gpu_mJ_img", "total_mJ_img"});
  table.set_precision(1);

  const models::ModelDesc* sweep[] = {&models::vit_base(), &models::resnet50(),
                                      &models::tiny_vit()};
  const std::pair<const char*, hw::ImageSpec> sizes[] = {{"medium", hw::kMediumImage},
                                                         {"large", hw::kLargeImage}};
  bool cpu_pre_costlier_overall = true;
  bool gpu_portion_smaller_when_gpu_does_both = true;
  bool large_raises_cpu_energy = true;
  std::string details;

  for (const auto* model : sweep) {
    for (const auto& [size_name, image] : sizes) {
      double cpu_j[2], gpu_j[2];
      for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
        ExperimentSpec spec;
        spec.server.model = *model;
        spec.server.preproc = dev;
        spec.image = image;
        spec.concurrency = 256;
        spec.measure = sim::seconds(6.0);
        const auto r = core::run_experiment(spec);
        const int d = dev == PreprocDevice::kCpu ? 0 : 1;
        cpu_j[d] = r.cpu_joules_per_image();
        gpu_j[d] = r.gpu_joules_per_image();
        table.add_row({std::string(model->name), std::string(size_name),
                       std::string(d == 0 ? "cpu" : "gpu"), cpu_j[d] * 1e3, gpu_j[d] * 1e3,
                       (cpu_j[d] + gpu_j[d]) * 1e3});
      }
      if (cpu_j[0] + gpu_j[0] <= cpu_j[1] + gpu_j[1]) cpu_pre_costlier_overall = false;
      if (gpu_j[1] >= gpu_j[0]) {
        gpu_portion_smaller_when_gpu_does_both = false;
        details += std::string(model->name) + "/" + size_name + " ";
      }
    }
    // medium -> large must raise CPU energy per image in both modes.
    for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
      ExperimentSpec spec;
      spec.server.model = *model;
      spec.server.preproc = dev;
      spec.concurrency = 256;
      spec.measure = sim::seconds(5.0);
      spec.image = hw::kMediumImage;
      const double med = core::run_experiment(spec).cpu_joules_per_image();
      spec.image = hw::kLargeImage;
      const double lrg = core::run_experiment(spec).cpu_joules_per_image();
      if (lrg <= med) large_raises_cpu_energy = false;
    }
  }
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"CPU-based preprocessing uses more energy overall (paper)",
                    cpu_pre_costlier_overall, "all model/size cells"});
  checks.push_back({"GPU energy portion smaller when GPU does both preproc+inference (paper)",
                    gpu_portion_smaller_when_gpu_does_both,
                    details.empty() ? "all cells" : "violations: " + details});
  checks.push_back({"medium->large image raises CPU energy in both modes (paper)",
                    large_raises_cpu_energy, "all models"});
  rep.checks(std::move(checks));
  return rep.finish();
}
