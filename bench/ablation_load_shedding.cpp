// Ablation: deadline-based load shedding under overload.
//
// The paper's serving model caps concurrency at the load balancer; an
// alternative (or complement) is dropping requests that have already blown
// their deadline before spending GPU time on them. This ablation drives the
// tuned ViT server with an open-loop Poisson overload (~120% of capacity)
// and sweeps the shed deadline, trading goodput against bounded tails.
#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"
#include "workload/arrivals.h"

using namespace serve;
using core::ExperimentSpec;

namespace {

struct Point {
  double goodput;
  double p99_ms;
  double drop_pct;
};

Point run(sim::Time deadline, double rate) {
  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.server.shed_deadline = deadline;
  spec.warmup = sim::seconds(3.0);
  spec.measure = sim::seconds(12.0);
  sim::Simulator sim;
  hw::Platform platform{sim, {.calib = spec.calib}};
  serving::InferenceServer server{platform, spec.server};
  serving::OpenLoopClients clients{server,
                                   {.interarrival = workload::poisson_arrivals(rate),
                                    .image_source = serving::fixed_image(spec.image),
                                    .seed = 11}};
  clients.start();
  sim.run_until(spec.warmup);
  server.stats().begin();
  sim.run_until(spec.warmup + spec.measure);
  Point p{server.stats().throughput(), server.stats().latency().p99() * 1e3,
          100.0 * server.stats().drop_rate()};
  clients.stop();
  sim.run();
  server.shutdown();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Load shedding under overload (ViT @ ~120% offered load)");
  if (!rep.parse_cli(argc, argv)) return 2;

  const double overload_rate = 2200.0;  // capacity ~1840 img/s
  metrics::Table table({"shed_deadline_ms", "goodput_img_s", "p99_ms", "dropped_%"});
  Point none{}, tight{}, loose{};
  for (double d_ms : {0.0, 100.0, 250.0, 1000.0}) {
    const Point p = run(sim::milliseconds(d_ms), overload_rate);
    table.add_row({d_ms == 0.0 ? std::string("off") : std::to_string(d_ms), p.goodput, p.p99_ms,
                   p.drop_pct});
    if (d_ms == 0.0) none = p;
    if (d_ms == 100.0) tight = p;
    if (d_ms == 1000.0) loose = p;
  }
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"without shedding, overload latency grows unbounded (seconds-scale p99)",
                    none.p99_ms > 1000.0, std::to_string(none.p99_ms) + " ms"});
  checks.push_back({"a tight deadline bounds p99 near the deadline",
                    tight.p99_ms < 250.0 && tight.drop_pct > 5.0,
                    "p99 " + std::to_string(tight.p99_ms) + " ms, drops " +
                        std::to_string(tight.drop_pct) + " %"});
  checks.push_back({"shedding preserves most of the goodput",
                    tight.goodput > 0.85 * none.goodput,
                    std::to_string(tight.goodput) + " vs " + std::to_string(none.goodput)});
  checks.push_back({"looser deadlines drop less but allow higher tails",
                    loose.drop_pct < tight.drop_pct && loose.p99_ms > tight.p99_ms,
                    "see table"});
  rep.checks(std::move(checks));
  return rep.finish();
}
