// Ablation: broker durability settings.
//
// Two parts:
//  (a) simulated — how the Fig. 11 pipeline responds as the disk broker's
//      per-message cost shrinks (batching fsyncs amortizes the write);
//  (b) real — wall-clock publish cost of the actual FileLogBroker on this
//      machine at different fsync intervals, demonstrating the mechanism
//      behind Kafka's overhead with real disk I/O.
#include <chrono>
#include <filesystem>

#include "bench_util.h"
#include "broker/file_log_broker.h"
#include "core/face_pipeline.h"

using namespace serve;

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Broker durability: fsync batching vs pipeline throughput");
  if (!rep.parse_cli(argc, argv)) return 2;

  // (a) Simulated pipeline with progressively cheaper disk-broker publishes.
  metrics::Table sim_table(
      {"fsync_per_msgs", "publish_service_ms", "pipeline_fps", "broker_latency_%"});
  double fps_sync1 = 0, fps_sync64 = 0;
  for (int batch : {1, 4, 16, 64}) {
    core::FacePipelineSpec spec;
    spec.broker = core::BrokerKind::kKafka;
    spec.faces_per_frame = 25;
    spec.concurrency = 16;
    spec.measure = sim::seconds(10.0);
    // Amortized write cost: full fsync on the first message of a batch, the
    // rest pay only the broker CPU (~0.1 ms).
    const double base = hw::default_calibration().broker.kafka_publish_service_s;
    spec.calib.broker.kafka_publish_service_s = (base + (batch - 1) * 0.1e-3) / batch;
    const auto r = core::run_face_pipeline(spec);
    sim_table.add_row({static_cast<std::int64_t>(batch),
                       spec.calib.broker.kafka_publish_service_s * 1e3, r.frames_per_s,
                       100 * r.broker_share()});
    if (batch == 1) fps_sync1 = r.frames_per_s;
    if (batch == 64) fps_sync64 = r.frames_per_s;
  }
  rep.table("sim_table", sim_table);

  // (b) Real disk: measured publish cost of FileLogBroker.
  metrics::Table real_table({"fsync_interval", "msgs", "wall_us_per_publish"});
  real_table.set_precision(1);
  const auto dir = std::filesystem::temp_directory_path() / "servescope_fsync_ablation";
  double us_per_pub_sync1 = 0, us_per_pub_sync64 = 0;
  for (std::uint32_t interval : {1u, 8u, 64u}) {
    std::filesystem::remove_all(dir);
    broker::FileLogBroker log{{.dir = dir, .fsync_interval = interval}};
    const std::string payload(256, 'x');
    const int n = interval == 1 ? 200 : 2000;  // keep per-message fsync runs short
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) log.publish(payload);
    const auto t1 = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(t1 - t0).count() / n;
    real_table.add_row({static_cast<std::int64_t>(interval), static_cast<std::int64_t>(n), us});
    if (interval == 1) us_per_pub_sync1 = us;
    if (interval == 64) us_per_pub_sync64 = us;
  }
  std::filesystem::remove_all(dir);
  rep.table("real_table", real_table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"relaxing per-message fsync recovers most of the Kafka penalty (sim)",
                    fps_sync64 > fps_sync1 * 1.5,
                    std::to_string(fps_sync1) + " -> " + std::to_string(fps_sync64) + " fps"});
  checks.push_back({"real disk log: batched fsync is much cheaper per publish",
                    us_per_pub_sync64 < us_per_pub_sync1,
                    std::to_string(us_per_pub_sync1) + " -> " + std::to_string(us_per_pub_sync64) +
                        " us"});
  rep.checks(std::move(checks));
  return rep.finish();
}
