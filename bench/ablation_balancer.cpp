// Ablation: load-balancing policy across the serving fleet (paper Fig. 1).
//
// The paper assumes a balancer that caps per-node concurrency and adds
// nodes to absorb load. This ablation quantifies the policy choice itself:
// round-robin vs random vs join-the-shortest-queue, on homogeneous and
// heterogeneous (mixed GPU-count) fleets.
#include "bench_util.h"
#include "core/fleet.h"
#include "models/model_zoo.h"

using namespace serve;
using core::BalancerPolicy;
using core::FleetSpec;

namespace {

core::FleetResult run(std::vector<int> gpus, BalancerPolicy policy, int concurrency) {
  FleetSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.gpus_per_node = std::move(gpus);
  spec.server.balancer.policy = policy;
  spec.concurrency = concurrency;
  spec.measure = sim::seconds(8.0);
  return core::run_fleet(spec);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Fleet load balancing: policy x fleet shape");
  if (!rep.parse_cli(argc, argv)) return 2;

  metrics::Table table({"fleet", "policy", "tput_img_s", "p99_ms", "imbalance"});
  const BalancerPolicy policies[] = {BalancerPolicy::kRoundRobin, BalancerPolicy::kRandom,
                                     BalancerPolicy::kLeastOutstanding};
  double homo[3], hetero_p99[3], hetero_tput[3];
  int i = 0;
  for (auto p : policies) {
    const auto r = run({1, 1, 1, 1}, p, 1024);
    homo[i] = r.throughput_rps;
    table.add_row({std::string("4x1gpu"), std::string(balancer_policy_name(p)),
                   r.throughput_rps, r.p99_latency_s * 1e3, r.imbalance()});
    ++i;
  }
  i = 0;
  for (auto p : policies) {
    // Heterogeneous: one fat node (4 GPUs) + two thin ones.
    const auto r = run({4, 1, 1}, p, 1024);
    hetero_tput[i] = r.throughput_rps;
    hetero_p99[i] = r.p99_latency_s;
    table.add_row({std::string("1x4gpu+2x1gpu"), std::string(balancer_policy_name(p)),
                   r.throughput_rps, r.p99_latency_s * 1e3, r.imbalance()});
    ++i;
  }
  // Fleet scaling sanity: 1 -> 4 homogeneous nodes.
  const auto one = run({1}, BalancerPolicy::kRoundRobin, 256);
  const auto four = run({1, 1, 1, 1}, BalancerPolicy::kRoundRobin, 1024);
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"homogeneous fleet: all policies deliver comparable throughput",
                    homo[0] > 0.9 * homo[2] && homo[1] > 0.9 * homo[2],
                    std::to_string(homo[0]) + "/" + std::to_string(homo[1]) + "/" +
                        std::to_string(homo[2])});
  checks.push_back(
      {"heterogeneous fleet: queue-aware balancing beats round-robin on throughput",
       hetero_tput[2] > 1.15 * hetero_tput[0],
       std::to_string(hetero_tput[0]) + " -> " + std::to_string(hetero_tput[2]) + " img/s"});
  checks.push_back({"heterogeneous fleet: queue-aware balancing cuts tail latency",
                    hetero_p99[2] < 0.8 * hetero_p99[0],
                    std::to_string(hetero_p99[0] * 1e3) + " -> " +
                        std::to_string(hetero_p99[2] * 1e3) + " ms p99"});
  checks.push_back({"adding nodes scales fleet throughput near-linearly (paper Fig. 1 premise)",
                    four.throughput_rps > 3.5 * one.throughput_rps,
                    std::to_string(one.throughput_rps) + " -> " +
                        std::to_string(four.throughput_rps) + " img/s"});
  rep.checks(std::move(checks));
  return rep.finish();
}
