// Ablation: the capacity plane end to end.
//
// One deployment (CPU preprocessing, dynamic batching, open-loop Poisson
// arrivals) serves two models with the full capacity plane armed — registry +
// flight recorder + obs::CapacityPlane + obs::AlertEngine Little's-law rule:
//
//   1. TinyViT (1.3 GF) near its knee: the 24-worker CPU preprocessing pool
//      saturates long before the GPU engine — the bottleneck attributor must
//      name the CPU-side path (preprocess workers / PCIe), reproducing the
//      paper's small-model verdict;
//   2. ViT-Base (17.6 GF) near its knee: the same deployment binds on the
//      GPU engine — the attribution crossover;
//   3. overload runs for both models: the measured saturation throughput is
//      the ground-truth knee the headroom estimator (max sustainable rps =
//      median lambda / u_binding from the *moderate-load* run) must land
//      within 15% of;
//   4. a ViT run with a mid-run CPU-preprocess-slowdown window (the CPU path
//      is the one this deployment exercises; a PCIe fault cannot bite its
//      double-buffered staging): the bottleneck attribution must flip from
//      the GPU engine onto the preprocess pool for the window, and the
//      Little's-law audit must deviate only while the backlog grows and
//      drains around it (the littles-law alert rule fires inside it),
//      staying clean in steady state;
//   5. a same-seed repeat of the ViT run: the exported capacity section must
//      be byte-identical — attribution is part of the determinism contract.
//
// The faulted ViT run is the Reporter's export (--json-out): its "capacity"
// section carries the binding-segment flip (compute -> preproc -> compute)
// that tools/capacity and tools/report render in CI.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "models/model_zoo.h"
#include "obs/alert_engine.h"
#include "obs/capacity_plane.h"
#include "workload/arrivals.h"

using namespace serve;
using core::ExperimentSpec;

namespace {

core::HarnessOptions g_harness;
std::uint64_t g_violations = 0;

// Offered rates: ~80-85% of each model's estimated knee for the attribution
// runs (loaded enough to bind, enough headroom for the audit to stay in
// steady state), ~1.5x for the overload runs that measure the true knee.
constexpr double kTinyRate = 5500.0;
constexpr double kTinyOverloadRate = 10000.0;
constexpr double kVitRate = 1550.0;
constexpr double kVitOverloadRate = 3000.0;
constexpr double kVitFaultRate = 1200.0;  // headroom to drain the fault backlog

constexpr double kFaultStartS = 6.0;
constexpr double kFaultEndS = 9.0;
// Backlog drains at (capacity - offered) after the window closes; violations
// past this bound would mean the audit is flagging steady state.
constexpr double kDrainDeadlineS = 13.0;
// The open-loop ramp from an empty system is a genuine backlog-growth
// transient; the audit is allowed to flag it (first few recorder intervals).
constexpr double kStartupGraceS = 1.0;

/// 200 ms intervals: long enough that batch-quantized completions (a 64-image
/// batch lands its whole latency charge at one instant) average out, short
/// enough to localize a 3 s fault window to ~15 intervals.
metrics::FlightRecorder::Options recorder_opts() {
  metrics::FlightRecorder::Options o;
  o.period = sim::milliseconds(200);
  return o;
}

/// Audit tolerance sized for batchy service: per-interval lambda*W jumps by a
/// whole batch's latency charge depending on whether 2 or 3 batches complete
/// inside the interval, so steady state wobbles ~20-30%; genuine backlog
/// transients deviate by 2x and more.
obs::CapacityPlane::Options plane_opts() {
  obs::CapacityPlane::Options o;
  o.little_tolerance = 0.35;
  o.little_min_occupancy = 5.0;
  return o;
}

/// Everything one run owns; heap-allocated so results can outlive the run
/// helper and feed the exports/checks.
struct RunBundle {
  metrics::Registry registry;
  metrics::FlightRecorder recorder{registry, recorder_opts()};
  obs::CapacityPlane plane{registry, plane_opts()};
  obs::AlertEngine alerts{registry};
  core::ExperimentResult r;
  sim::TraceRecorder trace;  // only populated when the harness traces

  /// End time (seconds since recorder start) of capacity interval `i`.
  double interval_end_s(std::size_t i) const {
    return static_cast<double>(i + 1) * sim::to_seconds(recorder.period());
  }
};

std::unique_ptr<RunBundle> run(const std::string& label, const models::ModelDesc& model,
                               double rate, double measure_s, const sim::FaultPlan* faults) {
  auto b = std::make_unique<RunBundle>();
  b->plane.attach(b->recorder);

  // The alert-engine view of the same audit: fires when L and lambda*W split
  // for consecutive ticks. Looser than the plane's per-interval samples —
  // an *alert* should page on sustained backlog growth, not one noisy tick.
  obs::LittleLawRule little;
  little.name = "littles-law";
  little.tolerance = 0.35;
  little.min_occupancy = 5.0;
  little.for_ticks = 2;
  little.clear_for_ticks = 3;
  b->alerts.add_littles_law(little);
  b->alerts.attach(b->recorder);

  ExperimentSpec spec;
  spec.server.model = model;
  spec.server.preproc = serving::PreprocDevice::kCpu;  // one deployment, two verdicts
  // Two execution instances overlap the host-side staging hop with the
  // previous batch's compute: the binding resource can then actually reach
  // ~100% busy at the knee, which is what makes lambda/u a knee estimator.
  spec.server.instance_count = 2;
  spec.gpu_count = 1;
  spec.warmup = sim::seconds(2.0);
  spec.measure = sim::seconds(measure_s);
  spec.seed = 47;
  spec.server.trace_run_label = label;
  spec.faults = faults;
  spec.registry = &b->registry;
  spec.recorder = &b->recorder;
  spec.alerts = &b->alerts;
  g_harness.apply(spec, b->trace);

  b->r = core::run_open_loop(spec, workload::poisson_arrivals(rate));
  g_violations += core::report_audit(b->r, label);
  return b;
}

/// The capacity section serialized on its own: the byte-identity check must
/// compare attribution, not the (identical anyway) instrument dump.
std::string capacity_bytes(const RunBundle& b) {
  metrics::TelemetryExport ex;
  ex.set_context("figure", "Ablation");
  ex.set_context("title", "capacity determinism probe");
  ex.set_capacity(b.plane.snapshot());
  std::ostringstream out;
  ex.write_json(out);
  return out.str();
}

std::string binding_line(const std::string& scenario, const RunBundle& b) {
  const std::size_t dom = b.plane.dominant_resource();
  const std::string res =
      dom == obs::CapacityPlane::kIdle ? "idle" : b.plane.resources()[dom].label();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "attribution[%s]: binding=%s stage=%s sustainable=%.0f rps (measured %.0f rps)",
                scenario.c_str(), res.c_str(),
                std::string(metrics::stage_name(b.plane.dominant_stage())).c_str(),
                b.plane.sustainable_rps(), b.r.throughput_rps);
  return buf;
}

/// True when every flagged interval ends inside [lo, hi] (seconds since
/// recorder start), ignoring the startup grace period.
bool violations_within(const RunBundle& b, double lo, double hi) {
  for (const std::size_t i : b.plane.violation_intervals()) {
    const double t = b.interval_end_s(i);
    if (t <= kStartupGraceS) continue;
    if (t < lo || t > hi) return false;
  }
  return true;
}

std::size_t violations_after_grace(const RunBundle& b) {
  std::size_t n = 0;
  for (const std::size_t i : b.plane.violation_intervals()) {
    if (b.interval_end_s(i) > kStartupGraceS) ++n;
  }
  return n;
}

double first_firing_s(const RunBundle& b, const std::string& alert) {
  for (const auto& ev : b.alerts.events()) {
    if (ev.firing && ev.alert == alert) return sim::to_seconds(ev.t);
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation",
                      "Capacity plane: utilization timelines, Little audit, attribution");
  if (!rep.parse_cli(argc, argv, &g_harness)) return 2;

  const auto wall0 = std::chrono::steady_clock::now();

  // An 8x preprocess slowdown drops the pool's capacity to ~800 rps, well
  // under the 1200 rps offered: backlog grows for the window, drains after.
  sim::FaultPlan faults;
  faults.preproc_slowdown(sim::seconds(kFaultStartS), sim::seconds(kFaultEndS), 8.0);

  const auto tiny = run("capacity/tiny", models::tiny_vit(), kTinyRate, 10.0, nullptr);
  const auto tiny_over =
      run("capacity/tiny-overload", models::tiny_vit(), kTinyOverloadRate, 8.0, nullptr);
  const auto vit = run("capacity/vit", models::vit_base(), kVitRate, 10.0, nullptr);
  const auto vit_repeat = run("capacity/vit-repeat", models::vit_base(), kVitRate, 10.0, nullptr);
  const auto vit_over =
      run("capacity/vit-overload", models::vit_base(), kVitOverloadRate, 8.0, nullptr);
  const auto vit_fault =
      run("capacity/vit-fault", models::vit_base(), kVitFaultRate, 16.0, &faults);

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall0;

  metrics::Table table({"scenario", "rate_rps", "tput_img_s", "p99_ms", "binding", "stage",
                        "sustainable_rps", "little_violations"});
  const auto add = [&table](const std::string& name, double rate, const RunBundle& b) {
    const std::size_t dom = b.plane.dominant_resource();
    table.add_row({name, rate, b.r.throughput_rps, b.r.p99_latency_s * 1e3,
                   dom == obs::CapacityPlane::kIdle ? std::string("idle")
                                                    : b.plane.resources()[dom].label(),
                   std::string(metrics::stage_name(b.plane.dominant_stage())),
                   b.plane.sustainable_rps(), static_cast<double>(b.plane.violations())});
  };
  add("tiny_vit @83%", kTinyRate, *tiny);
  add("tiny_vit overload", kTinyOverloadRate, *tiny_over);
  add("vit_base @82%", kVitRate, *vit);
  add("vit_base repeat", kVitRate, *vit_repeat);
  add("vit_base overload", kVitOverloadRate, *vit_over);
  add("vit_base + preproc fault", kVitFaultRate, *vit_fault);
  rep.table("table", table);

  // Greppable attribution verdicts (CI pins the crossover on these lines).
  std::printf("\n%s\n", binding_line("tiny", *tiny).c_str());
  std::printf("%s\n", binding_line("vit_base", *vit).c_str());
  std::printf("%s\n", binding_line("vit_fault", *vit_fault).c_str());

  // The faulted run is the Reporter's export: instruments, series, and the
  // capacity section with the compute -> preproc -> compute binding segments.
  rep.context("deployment", "cpu-preproc, dynamic batching, 1 gpu");
  rep.benchmark("capacity/tiny", tiny->r.mean_latency_s * 1e3,
                {{"tput_img_s", tiny->r.throughput_rps},
                 {"sustainable_rps", tiny->plane.sustainable_rps()}});
  rep.benchmark("capacity/vit_base", vit->r.mean_latency_s * 1e3,
                {{"tput_img_s", vit->r.throughput_rps},
                 {"sustainable_rps", vit->plane.sustainable_rps()}});
  rep.benchmark("capacity/vit_fault", vit_fault->r.mean_latency_s * 1e3,
                {{"tput_img_s", vit_fault->r.throughput_rps},
                 {"p99_ms", vit_fault->r.p99_latency_s * 1e3}});
  rep.exporter().capture_instruments(vit_fault->registry);
  rep.exporter().capture_series(vit_fault->recorder);
  rep.exporter().set_capacity(vit_fault->plane.snapshot());

  // Attribution verdicts + cross-check against the full-population stage
  // breakdown (the auditor-independent view of where request time went).
  const std::size_t tiny_dom = tiny->plane.dominant_resource();
  const std::size_t vit_dom = vit->plane.dominant_resource();
  const std::string tiny_binding =
      tiny_dom == obs::CapacityPlane::kIdle ? "idle" : tiny->plane.resources()[tiny_dom].label();
  const std::string vit_binding =
      vit_dom == obs::CapacityPlane::kIdle ? "idle" : vit->plane.resources()[vit_dom].label();
  const metrics::Stage tiny_stage = tiny->plane.dominant_stage();
  const metrics::Stage vit_stage = vit->plane.dominant_stage();

  const double knee_tiny = tiny_over->r.throughput_rps;
  const double knee_vit = vit_over->r.throughput_rps;
  const double est_tiny = tiny->plane.sustainable_rps();
  const double est_vit = vit->plane.sustainable_rps();
  const double err_tiny = knee_tiny > 0 ? std::abs(est_tiny - knee_tiny) / knee_tiny : 1.0;
  const double err_vit = knee_vit > 0 ? std::abs(est_vit - knee_vit) / knee_vit : 1.0;

  const double little_t = first_firing_s(*vit_fault, "littles-law");
  const double self_s = tiny->plane.self_seconds() + tiny_over->plane.self_seconds() +
                        vit->plane.self_seconds() + vit_repeat->plane.self_seconds() +
                        vit_over->plane.self_seconds() + vit_fault->plane.self_seconds();

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"small model binds on the CPU preprocess/transfer path",
                    tiny_binding.rfind("cpu.preproc", 0) == 0 || tiny_binding == "host.pcie",
                    "binding " + tiny_binding});
  checks.push_back({"large model binds on the GPU engine (attribution crossover)",
                    vit_binding == "gpu0.compute", "binding " + vit_binding});
  checks.push_back(
      {"attribution agrees with the stage breakdown: tiny is preprocess/transfer-heavy",
       (tiny_stage == metrics::Stage::kPreprocess || tiny_stage == metrics::Stage::kTransfer) &&
           tiny->r.breakdown.mean(metrics::Stage::kPreprocess) >
               tiny->r.breakdown.mean(metrics::Stage::kInference),
       "preproc " + std::to_string(1e3 * tiny->r.breakdown.mean(metrics::Stage::kPreprocess)) +
           " ms/req vs infer " +
           std::to_string(1e3 * tiny->r.breakdown.mean(metrics::Stage::kInference)) + " ms/req"});
  checks.push_back(
      {"attribution agrees with the stage breakdown: vit is inference-heavy",
       vit_stage == metrics::Stage::kInference &&
           vit->r.breakdown.mean(metrics::Stage::kInference) >
               vit->r.breakdown.mean(metrics::Stage::kPreprocess),
       "infer " + std::to_string(1e3 * vit->r.breakdown.mean(metrics::Stage::kInference)) +
           " ms/req vs preproc " +
           std::to_string(1e3 * vit->r.breakdown.mean(metrics::Stage::kPreprocess)) + " ms/req"});
  checks.push_back({"headroom estimate lands within 15% of the measured tiny knee",
                    err_tiny <= 0.15,
                    "est " + std::to_string(est_tiny) + " vs measured " +
                        std::to_string(knee_tiny) + " (" + std::to_string(100.0 * err_tiny) +
                        "%)"});
  checks.push_back({"headroom estimate lands within 15% of the measured vit knee",
                    err_vit <= 0.15,
                    "est " + std::to_string(est_vit) + " vs measured " + std::to_string(knee_vit) +
                        " (" + std::to_string(100.0 * err_vit) + "%)"});
  checks.push_back({"Little's-law audit is clean in steady state (fault-free runs)",
                    violations_after_grace(*tiny) == 0 && violations_after_grace(*vit) == 0,
                    std::to_string(violations_after_grace(*tiny)) + " + " +
                        std::to_string(violations_after_grace(*vit)) +
                        " flagged interval(s) after startup"});
  checks.push_back(
      {"Little's-law audit deviates only around the injected fault window",
       violations_after_grace(*vit_fault) > 0 &&
           violations_within(*vit_fault, kFaultStartS, kDrainDeadlineS),
       std::to_string(violations_after_grace(*vit_fault)) + " flagged interval(s), window [" +
           std::to_string(kFaultStartS) + ", " + std::to_string(kDrainDeadlineS) + "]s"});
  checks.push_back({"littles-law alert fires inside the fault window, never fault-free",
                    little_t >= kFaultStartS && little_t <= kFaultEndS + 1.0 &&
                        first_firing_s(*vit, "littles-law") < 0.0 &&
                        first_firing_s(*tiny, "littles-law") < 0.0,
                    "first firing t=" + std::to_string(little_t)});
  checks.push_back({"fault window re-binds the GPU-bound run onto the slowed preprocess pool",
                    [&] {
                      for (const auto& seg : vit_fault->plane.segments()) {
                        if (seg.resource == obs::CapacityPlane::kIdle) continue;
                        if (vit_fault->plane.resources()[seg.resource].label() ==
                            "cpu.preproc_workers") {
                          return true;
                        }
                      }
                      return false;
                    }(),
                    "cpu.preproc_workers binding segment present"});
  checks.push_back({"same-seed repeat exports a byte-identical capacity section",
                    capacity_bytes(*vit) == capacity_bytes(*vit_repeat),
                    std::to_string(capacity_bytes(*vit).size()) + " bytes"});
  checks.push_back({"capacity plane self-overhead stays under 1% of run wall-clock",
                    self_s < 0.01 * wall.count(),
                    std::to_string(self_s) + " s of " + std::to_string(wall.count()) + " s"});
  checks.push_back({"conservation holds in every scenario (auditor)", g_violations == 0,
                    std::to_string(g_violations) + " violation(s)"});
  rep.checks(std::move(checks));

  return rep.finish(core::finish_harness(g_harness, vit_fault->trace, g_violations));
}
