// Reproduces paper Fig. 6: zero-load latency breakdown of ViT with JPEG
// preprocessing on TrIS for Small/Medium/Large images, CPU vs GPU
// preprocessing.
//
// Paper findings: CPU preprocessing wins for small images; preprocessing
// share reaches 56%/49% (medium, CPU/GPU) and up to 97%/88% (large).
#include <stdexcept>

#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"
#include "trace/causal.h"

using namespace serve;
using core::ExperimentSpec;
using metrics::Stage;
using serving::PreprocDevice;

int main(int argc, char** argv) {
  core::HarnessOptions harness;
  sim::TraceRecorder trace;
  trace::CausalTracer tracer;
  std::uint64_t violations = 0;
  bench::Reporter rep("Figure 6", "Zero-load latency breakdown (ViT, S/M/L, CPU vs GPU preproc)");
  if (!rep.parse_cli(argc, argv, &harness)) return 2;

  struct Row {
    const char* size;
    hw::ImageSpec image;
    PreprocDevice dev;
    double paper_preproc_share;  ///< -1 = not reported
  };
  const Row rows[] = {
      {"small", hw::kSmallImage, PreprocDevice::kCpu, -1},
      {"small", hw::kSmallImage, PreprocDevice::kGpu, -1},
      {"medium", hw::kMediumImage, PreprocDevice::kCpu, 0.56},
      {"medium", hw::kMediumImage, PreprocDevice::kGpu, 0.49},
      {"large", hw::kLargeImage, PreprocDevice::kCpu, 0.97},
      {"large", hw::kLargeImage, PreprocDevice::kGpu, 0.88},
  };

  metrics::Table table({"image", "preproc", "latency_ms", "preproc_%", "inference_%",
                        "transfer_%", "queue_%", "other_%", "paper_preproc_%"});
  double lat[2][3] = {};  // [dev][size] mean latency
  double share[2][3] = {};
  int size_idx = 0;
  for (const Row& row : rows) {
    const std::string label =
        std::string(row.size) + "/" + (row.dev == PreprocDevice::kCpu ? "cpu" : "gpu");
    ExperimentSpec spec;
    spec.server.model = models::vit_base();
    spec.server.preproc = row.dev;
    spec.server.trace_run_label = label;
    spec.image = row.image;
    spec.warmup = sim::seconds(0.5);
    harness.apply(spec, trace, &tracer);
    const auto r = core::run_zero_load(spec);
    violations += core::report_audit(r, label);
    const double pre = r.stage_share(Stage::kPreprocess);
    const double inf = r.stage_share(Stage::kInference);
    const double xfer = r.stage_share(Stage::kTransfer);
    const double queue = r.stage_share(Stage::kQueue);
    const double other = 1.0 - pre - inf - xfer - queue;
    const int d = row.dev == PreprocDevice::kCpu ? 0 : 1;
    lat[d][size_idx / 2] = r.mean_latency_s;
    share[d][size_idx / 2] = pre;
    ++size_idx;
    table.add_row({std::string(row.size),
                   std::string(row.dev == PreprocDevice::kCpu ? "cpu" : "gpu"),
                   r.mean_latency_s * 1e3, 100 * pre, 100 * inf, 100 * xfer, 100 * queue,
                   100 * other,
                   row.paper_preproc_share < 0 ? std::string("-")
                                               : std::to_string(static_cast<int>(
                                                     100 * row.paper_preproc_share))});
  }
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"CPU preprocessing outperforms GPU in latency for small images",
                    lat[0][0] < lat[1][0],
                    "cpu " + std::to_string(lat[0][0] * 1e3) + " ms vs gpu " +
                        std::to_string(lat[1][0] * 1e3) + " ms"});
  checks.push_back({"GPU latency markedly better for very large images",
                    lat[1][2] < 0.5 * lat[0][2],
                    "gpu " + std::to_string(lat[1][2] * 1e3) + " ms vs cpu " +
                        std::to_string(lat[0][2] * 1e3) + " ms"});
  checks.push_back({"preprocessing share grows with image size (both devices)",
                    share[0][0] < share[0][1] && share[0][1] < share[0][2] &&
                        share[1][0] < share[1][1] && share[1][1] < share[1][2],
                    "cpu small/med/large = " + std::to_string(100 * share[0][0]) + "/" +
                        std::to_string(100 * share[0][1]) + "/" +
                        std::to_string(100 * share[0][2]) + " %"});
  checks.push_back({"medium-image preprocessing ~56% (CPU) (paper: 56%)",
                    share[0][1] > 0.48 && share[0][1] < 0.64,
                    std::to_string(100 * share[0][1]) + " %"});
  checks.push_back({"medium-image preprocessing ~49% (GPU) (paper: 49%)",
                    share[1][1] > 0.41 && share[1][1] < 0.57,
                    std::to_string(100 * share[1][1]) + " %"});
  checks.push_back({"large-image preprocessing ~97% (CPU) (paper: 97%)",
                    share[0][2] > 0.93, std::to_string(100 * share[0][2]) + " %"});
  checks.push_back({"large-image preprocessing dominates on GPU too (paper: 88%)",
                    share[1][2] > 0.70, std::to_string(100 * share[1][2]) + " %"});
  rep.checks(std::move(checks));
  return rep.finish(core::finish_harness(harness, trace, violations));
}
