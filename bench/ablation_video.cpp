// Ablation: the paper's motivating video workload, quantified.
//
// Sweeps the video-classification pipeline over decode device, sampling
// strategy, and clip resolution, verifying that the paper's central claim
// ("end-to-end application performance can easily be dominated by data
// processing") extends from still images to video.
#include "bench_util.h"
#include "core/video_pipeline.h"

using namespace serve;
using core::SamplingMode;
using core::VideoDecodeDevice;

namespace {

core::VideoPipelineResult run(workload::VideoSpec clip, VideoDecodeDevice dev, SamplingMode mode,
                              int concurrency = 16) {
  core::VideoPipelineSpec spec;
  spec.clip = clip;
  spec.decode = dev;
  spec.sampling = mode;
  spec.concurrency = concurrency;
  spec.measure = sim::seconds(15.0);
  return core::run_video_pipeline(spec);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Video classification: decode placement & frame sampling");
  if (!rep.parse_cli(argc, argv)) return 2;

  metrics::Table table(
      {"clip", "decode", "sampling", "clips_per_s", "frames_per_s", "decode_share_%"});
  const std::pair<const char*, workload::VideoSpec> clips[] = {
      {"hd", workload::kHdClip}, {"4k", workload::k4kClip}};
  double hd_sw_all = 0, hd_hw_all = 0, hd_hw_seek = 0, uhd_hw_seek = 0;
  for (const auto& [name, clip] : clips) {
    for (auto dev : {VideoDecodeDevice::kCpu, VideoDecodeDevice::kNvdec}) {
      for (auto mode : {SamplingMode::kDecodeAll, SamplingMode::kKeyframeSeek}) {
        const auto r = run(clip, dev, mode);
        table.add_row({std::string(name), std::string(video_decode_device_name(dev)),
                       std::string(mode == SamplingMode::kDecodeAll ? "all" : "seek"),
                       r.clips_per_s, r.frames_per_s, 100 * r.decode_share()});
        if (clip.width == workload::kHdClip.width) {
          if (dev == VideoDecodeDevice::kCpu && mode == SamplingMode::kDecodeAll)
            hd_sw_all = r.clips_per_s;
          if (dev == VideoDecodeDevice::kNvdec && mode == SamplingMode::kDecodeAll)
            hd_hw_all = r.clips_per_s;
          if (dev == VideoDecodeDevice::kNvdec && mode == SamplingMode::kKeyframeSeek)
            hd_hw_seek = r.clips_per_s;
        } else if (dev == VideoDecodeDevice::kNvdec && mode == SamplingMode::kKeyframeSeek) {
          uhd_hw_seek = r.clips_per_s;
        }
      }
    }
  }
  rep.table("table", table);

  // Zero-load breakdown: decode dominance claim.
  const auto zero = run(workload::kHdClip, VideoDecodeDevice::kCpu, SamplingMode::kDecodeAll, 1);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"hardware decode (NVDEC) beats software decode for full-clip decoding",
                    hd_hw_all > 1.5 * hd_sw_all,
                    std::to_string(hd_sw_all) + " -> " + std::to_string(hd_hw_all) + " clips/s"});
  checks.push_back({"keyframe seeking multiplies throughput over decode-all",
                    hd_hw_seek > 3.0 * hd_hw_all,
                    std::to_string(hd_hw_all) + " -> " + std::to_string(hd_hw_seek) + " clips/s"});
  checks.push_back({"4K remains markedly costlier even with NVDEC + seeking",
                    uhd_hw_seek < hd_hw_seek / 2.0,
                    std::to_string(uhd_hw_seek) + " vs " + std::to_string(hd_hw_seek)});
  checks.push_back({"decode dominates zero-load latency (paper's thesis, extended to video)",
                    zero.decode_share() > 0.5 && zero.decode_share() > zero.inference_share(),
                    std::to_string(100 * zero.decode_share()) + " % decode share"});
  rep.checks(std::move(checks));
  return rep.finish();
}
