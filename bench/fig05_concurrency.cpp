// Reproduces paper Fig. 5: throughput, average latency, and queuing time of
// the throughput-optimized server at different concurrencies (ViT, medium
// image, CPU vs GPU preprocessing).
//
// Paper findings: throughput rises then saturates; GPU preprocessing gives
// higher throughput / lower latency but *declines* at very high concurrency
// (GPU memory eviction); CPU preprocessing saturates flat; queuing reaches
// ~3 s at 4096 concurrency and 34-91% of latency at optimal 64-512.
//
// `--record [--record-concurrency N]` switches to record mode: one GPU-
// preprocessing point with the telemetry registry + flight recorder
// attached. The recorded trajectory (throughput / queue depth / eviction
// series) backs the *temporal* form of the paper's claim — the decline is
// visible within one run, not just across the sweep — and the same run
// proves the telemetry layer's self-overhead stays under 1%.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "bench_util.h"
#include "core/experiment.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "obs/alert_engine.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using metrics::Stage;
using serving::PreprocDevice;

namespace {

ExperimentSpec gpu_spec(int concurrency) {
  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = PreprocDevice::kGpu;
  spec.concurrency = concurrency;
  spec.warmup = sim::seconds(concurrency >= 1024 ? 4.0 : 2.0);
  spec.measure = sim::seconds(8.0);
  return spec;
}

/// Element-wise sum of every recorded series called `name` (all fig05 series
/// start at tick 0 — every instrument exists before the recorder starts).
std::vector<double> summed_series(const std::vector<metrics::FlightRecorder::Series>& all,
                                  std::string_view name) {
  std::vector<double> out;
  for (const auto& s : all) {
    if (s.name != name) continue;
    out.resize(std::max(out.size(), s.samples.size()), 0.0);
    for (std::size_t i = 0; i < s.samples.size(); ++i) out[i] += s.samples[i];
  }
  return out;
}

double mean_over(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return 0.0;
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += v[i];
  return sum / static_cast<double>(hi - lo);
}

/// Mean rate of a cumulative counter series over [lo, hi) ticks.
double rate_over(const std::vector<double>& cum, std::size_t lo, std::size_t hi,
                 double period_s) {
  if (hi <= lo + 1) return 0.0;
  return (cum[hi - 1] - cum[lo]) / (static_cast<double>(hi - 1 - lo) * period_s);
}

int run_record_mode(bench::Reporter& rep, int concurrency) {
  std::printf("\nRecord mode: GPU preprocessing @ concurrency %d, 100 ms cadence\n", concurrency);

  const auto wall = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  // Identical run with telemetry off: the enabled-vs-disabled wall-clock
  // delta reported below (informational; the gating check uses the
  // recorder's own self-time instrument, which is robust to machine noise).
  core::ExperimentResult plain;
  const double plain_s = wall([&] { plain = core::run_experiment(gpu_spec(concurrency)); });

  metrics::Registry registry;
  metrics::FlightRecorder recorder{registry};
  // The SLO watch plane rides the recorder cadence; its rules here mirror
  // the production set (burn rate + queue depth) so the <1% overhead bound
  // covers alert evaluation, not just sampling.
  obs::AlertEngine alerts{registry};
  {
    obs::BurnRateRule burn;
    burn.name = "slo-burn-rate";
    burn.slo_s = 0.5;
    alerts.add_burn_rate(burn);
    obs::ThresholdRule depth;
    depth.name = "queue-depth-high";
    depth.instrument = "serving_queue_depth";
    depth.fire_above = 1e9;  // overhead-measurement rule; not meant to fire
    alerts.add_threshold(depth);
  }
  alerts.attach(recorder);
  ExperimentSpec spec = gpu_spec(concurrency);
  spec.registry = &registry;
  spec.recorder = &recorder;
  spec.alerts = &alerts;
  core::ExperimentResult r;
  const double telemetry_s = wall([&] { r = core::run_experiment(spec); });

  rep.context("mode", "record");
  rep.context("concurrency", std::to_string(concurrency));
  rep.exporter().capture_instruments(registry);
  rep.exporter().capture_series(recorder);
  rep.benchmark("fig05/record/gpu/" + std::to_string(concurrency), r.mean_latency_s * 1e3,
                {{"tput_img_s", r.throughput_rps},
                 {"p99_ms", r.p99_latency_s * 1e3},
                 {"gpu_evictions", static_cast<double>(r.gpu_evictions)}});

  // Trajectory over thirds of the recorded window: the sweep's "declines at
  // 4096" claim, replayed inside one run.
  const auto series = recorder.series();
  const double period_s = sim::to_seconds(recorder.period());
  const auto completed = summed_series(series, "serving_requests_completed_total");
  const auto queue = summed_series(series, "serving_queue_depth");
  const auto evictions = summed_series(series, "gpu_staging_evictions_total");
  const std::size_t n = completed.size();
  const std::size_t third = n / 3;

  metrics::Table traj({"window", "tput_img_s", "mean_queue_depth", "evictions"});
  double tput[3] = {0, 0, 0};
  double qdepth[3] = {0, 0, 0};
  double evict[3] = {0, 0, 0};
  const char* names[3] = {"first third", "middle third", "last third"};
  for (int w = 0; w < 3; ++w) {
    const std::size_t lo = static_cast<std::size_t>(w) * third;
    const std::size_t hi = w == 2 ? n : lo + third;
    tput[w] = rate_over(completed, lo, hi, period_s);
    qdepth[w] = mean_over(queue, lo, hi);
    evict[w] = evictions.empty() ? 0.0 : evictions[hi - 1] - (lo > 0 ? evictions[lo] : 0.0);
    traj.add_row({std::string(names[w]), tput[w], qdepth[w], evict[w]});
  }
  rep.table("trajectory", traj);

  const double self_s = recorder.self_seconds() + alerts.self_seconds();
  const double self_share = telemetry_s > 0 ? self_s / telemetry_s : 0.0;
  std::printf("\nTelemetry + alert-engine self-overhead: %.4f s of %.2f s run wall time "
              "(%.3f%%; recorder %.6f s, alert engine %.6f s); disabled-telemetry run: %.2f s\n",
              self_s, telemetry_s, 100.0 * self_share, recorder.self_seconds(),
              alerts.self_seconds(), plain_s);

  // The within-run decline is gentler than the sweep's peak-vs-4096 gap
  // (the whole window already thrashes); ~5% first-to-last third observed.
  rep.check("recorded GPU-preproc throughput declines within the run (staging thrash)",
            n >= 30 && tput[2] < 0.97 * tput[0],
            "first third " + std::to_string(tput[0]) + " img/s -> last third " +
                std::to_string(tput[2]) + " img/s over " + std::to_string(n) + " ticks");
  rep.check("queue depth grows as staging memory thrashes",
            qdepth[2] > qdepth[0],
            "mean depth " + std::to_string(qdepth[0]) + " -> " + std::to_string(qdepth[2]));
  rep.check("evictions keep accumulating in the last third (not a one-off warmup burst)",
            evict[2] > 0, std::to_string(evict[2]) + " evictions in last third");
  // Bounded separately: the recorder's sampling bound dates from PR 4, the
  // alert engine carries its own 1% budget on top — a combined bound would
  // let one layer silently eat the other's headroom.
  const double recorder_share = telemetry_s > 0 ? recorder.self_seconds() / telemetry_s : 0.0;
  const double alerts_share = telemetry_s > 0 ? alerts.self_seconds() / telemetry_s : 0.0;
  rep.check("flight-recorder sampling self-overhead below 1% of run wall time",
            recorder_share < 0.01,
            std::to_string(100.0 * recorder_share) + "% (self " +
                std::to_string(recorder.self_seconds()) + " s of " +
                std::to_string(telemetry_s) + " s; disabled run " + std::to_string(plain_s) +
                " s)");
  rep.check("alert-engine rule evaluation self-overhead below 1% of run wall time",
            alerts_share < 0.01,
            std::to_string(100.0 * alerts_share) + "% (self " +
                std::to_string(alerts.self_seconds()) + " s of " + std::to_string(telemetry_s) +
                " s)");
  return rep.finish();
}

/// Bitwise fingerprint of a run's externally visible outputs. Doubles go in
/// as raw bit patterns, so two runs match only if they are byte-identical —
/// the determinism contract the simulator core promises.
std::string result_digest(const core::ExperimentResult& r) {
  std::string d;
  char buf[17];
  const auto add_u64 = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    d += buf;
  };
  const auto add_f64 = [&](double x) {
    std::uint64_t v;
    std::memcpy(&v, &x, sizeof v);
    add_u64(v);
  };
  add_u64(r.completed);
  add_f64(r.throughput_rps);
  add_f64(r.mean_latency_s);
  add_f64(r.p50_latency_s);
  add_f64(r.p99_latency_s);
  add_f64(r.mean_batch);
  add_u64(r.gpu_evictions);
  add_u64(r.dropped);
  add_u64(r.failed);
  add_u64(r.audit_violations);
  return d;
}

int run_extended_mode(bench::Reporter& rep) {
  // 100k-way closed-loop sweep (CPU preprocessing: the scale question, not
  // the GPU staging-thrash one). Exercises the simulator core far beyond the
  // paper's 4096 clients: 100k coroutine client processes, a 100k-deep
  // admission queue, and the lifecycle auditor on for every request. Short
  // windows keep the sweep inside a CI budget.
  std::printf("\nExtended mode: 100k-way concurrency sweep, audit on\n");
  const auto t0 = std::chrono::steady_clock::now();

  const int concurrencies[] = {16384, 65536, 100000};
  metrics::Table table(
      {"concurrency", "tput_img_s", "avg_lat_ms", "p99_lat_ms", "queue_%", "audit_violations"});

  double tput_first = 0, tput_last = 0;
  double lat_first = 0, lat_last = 0;
  bool audit_clean = true;
  std::string violation_note;
  std::string digest_100k;

  // A closed-loop client's steady-state latency is one full queue rotation
  // (~concurrency / service rate), so warmup must cover at least one rotation
  // before the window opens or the measurement only sees the cold prefix.
  const auto scaled_spec = [](int c) {
    ExperimentSpec spec = gpu_spec(c);
    spec.server.preproc = PreprocDevice::kCpu;
    spec.server.audit = true;
    const double rotation_s = static_cast<double>(c) / 1500.0;
    spec.warmup = sim::seconds(1.25 * rotation_s + 2.0);
    spec.measure = sim::seconds(20.0);
    return spec;
  };

  for (int c : concurrencies) {
    const auto r = core::run_experiment(scaled_spec(c));
    const double qshare = r.stage_share(Stage::kQueue);
    table.add_row({static_cast<std::int64_t>(c), r.throughput_rps, r.mean_latency_s * 1e3,
                   r.p99_latency_s * 1e3, 100 * qshare,
                   static_cast<std::int64_t>(r.audit_violations)});
    rep.benchmark("fig05/extended/cpu/" + std::to_string(c), r.mean_latency_s * 1e3,
                  {{"tput_img_s", r.throughput_rps},
                   {"p99_ms", r.p99_latency_s * 1e3},
                   {"queue_share", qshare}});
    if (c == concurrencies[0]) {
      tput_first = r.throughput_rps;
      lat_first = r.mean_latency_s;
    }
    if (c == 100000) {
      tput_last = r.throughput_rps;
      lat_last = r.mean_latency_s;
      digest_100k = result_digest(r);
    }
    if (r.audit_violations != 0) {
      audit_clean = false;
      violation_note = std::to_string(r.audit_violations) + " violations at concurrency " +
                       std::to_string(c) +
                       (r.audit_report.empty() ? "" : ": " + r.audit_report.front());
    }
  }
  rep.table("extended_sweep", table);

  // Same-seed repeat of the 100k point: every output must be byte-identical.
  const std::string digest_repeat = result_digest(core::run_experiment(scaled_spec(100000)));

  const double wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("extended sweep wall time: %.1f s\n", wall_s);

  rep.check("lifecycle audit is clean at every extended concurrency",
            audit_clean, audit_clean ? "0 violations across sweep" : violation_note);
  rep.check("100k-client run is byte-identical across same-seed repeats",
            digest_100k == digest_repeat, digest_100k + " vs " + digest_repeat);
  rep.check("saturated CPU throughput holds from 16k to 100k clients",
            tput_last > 0.90 * tput_first,
            "16384 -> " + std::to_string(tput_first) + " img/s, 100000 -> " +
                std::to_string(tput_last) + " img/s");
  rep.check("steady-state latency tracks one queue rotation (~concurrency / rate)",
            lat_last > 4.0 * lat_first && lat_last > 0.8 * (100000.0 / tput_last),
            "16384 -> " + std::to_string(lat_first) + " s, 100000 -> " +
                std::to_string(lat_last) + " s");
  rep.check("100k-way sweep completes inside the CI budget (240 s)",
            wall_s < 240.0, std::to_string(wall_s) + " s");
  return rep.finish();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Figure 5",
                      "Throughput / latency / queuing vs concurrency (ViT, medium image)");
  bool record = false;
  bool extended = false;
  int record_concurrency = 4096;
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--record") {
      record = true;
    } else if (arg == "--extended") {
      extended = true;
    } else if (arg == "--record-concurrency") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --record-concurrency requires a value\n");
        return 2;
      }
      record_concurrency = std::atoi(argv[++i]);
      record = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!rep.parse_cli(static_cast<int>(rest.size()), rest.data())) return 2;
  if (record) return run_record_mode(rep, record_concurrency);
  if (extended) return run_extended_mode(rep);

  const int concurrencies[] = {1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096};
  metrics::Table table({"preproc", "concurrency", "tput_img_s", "avg_lat_ms", "p99_lat_ms",
                        "queue_%", "mean_batch", "gpu_evictions"});

  double peak[2] = {0, 0};
  double at4096[2] = {0, 0};
  double queue_share_64 = 0, queue_share_512 = 0, queue_s_4096 = 0;
  std::uint64_t evictions_4096_gpu = 0;

  for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
    const int d = dev == PreprocDevice::kCpu ? 0 : 1;
    const std::string dev_name = dev == PreprocDevice::kCpu ? "cpu" : "gpu";
    for (int c : concurrencies) {
      ExperimentSpec spec = gpu_spec(c);
      spec.server.preproc = dev;
      const auto r = core::run_experiment(spec);
      const double qshare = r.stage_share(Stage::kQueue);
      table.add_row({dev_name, static_cast<std::int64_t>(c), r.throughput_rps,
                     r.mean_latency_s * 1e3, r.p99_latency_s * 1e3, 100 * qshare, r.mean_batch,
                     static_cast<std::int64_t>(r.gpu_evictions)});
      rep.benchmark("fig05/" + dev_name + "/" + std::to_string(c), r.mean_latency_s * 1e3,
                    {{"tput_img_s", r.throughput_rps},
                     {"p99_ms", r.p99_latency_s * 1e3},
                     {"queue_share", qshare}});
      peak[d] = std::max(peak[d], r.throughput_rps);
      if (c == 4096) {
        at4096[d] = r.throughput_rps;
        if (d == 1) {
          evictions_4096_gpu = r.gpu_evictions;
          queue_s_4096 = r.mean_latency_s * qshare;
        }
      }
      if (d == 1 && c == 64) queue_share_64 = qshare;
      if (d == 1 && c == 512) queue_share_512 = qshare;
    }
  }
  rep.table("concurrency_sweep", table);

  rep.check("GPU preprocessing reaches higher peak throughput than CPU",
            peak[1] > peak[0] * 1.1,
            "gpu " + std::to_string(peak[1]) + " vs cpu " + std::to_string(peak[0]));
  rep.check("GPU preprocessing declines at very high concurrency (memory eviction)",
            at4096[1] < 0.85 * peak[1] && evictions_4096_gpu > 0,
            "4096-concurrency tput " + std::to_string(at4096[1]) + " vs peak " +
                std::to_string(peak[1]) + ", evictions " + std::to_string(evictions_4096_gpu));
  rep.check("CPU preprocessing saturates and holds its rate under high load",
            at4096[0] > 0.95 * peak[0],
            "4096-concurrency tput " + std::to_string(at4096[0]) + " vs peak " +
                std::to_string(peak[0]));
  rep.check("queuing is 34-91% of latency across optimal concurrency 64-512",
            queue_share_64 > 0.10 && queue_share_64 < 0.60 && queue_share_512 > 0.60,
            "share@64 " + std::to_string(100 * queue_share_64) + " %, share@512 " +
                std::to_string(100 * queue_share_512) + " %");
  rep.check("queuing reaches seconds-scale at 4096 concurrency (paper: ~3 s)",
            queue_s_4096 > 1.5, std::to_string(queue_s_4096) + " s mean queue time");
  return rep.finish();
}
