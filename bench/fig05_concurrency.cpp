// Reproduces paper Fig. 5: throughput, average latency, and queuing time of
// the throughput-optimized server at different concurrencies (ViT, medium
// image, CPU vs GPU preprocessing).
//
// Paper findings: throughput rises then saturates; GPU preprocessing gives
// higher throughput / lower latency but *declines* at very high concurrency
// (GPU memory eviction); CPU preprocessing saturates flat; queuing reaches
// ~3 s at 4096 concurrency and 34-91% of latency at optimal 64-512.
#include <algorithm>

#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using metrics::Stage;
using serving::PreprocDevice;

int main() {
  bench::print_banner("Figure 5",
                      "Throughput / latency / queuing vs concurrency (ViT, medium image)");

  const int concurrencies[] = {1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096};
  metrics::Table table({"preproc", "concurrency", "tput_img_s", "avg_lat_ms", "p99_lat_ms",
                        "queue_%", "mean_batch", "gpu_evictions"});

  double peak[2] = {0, 0};
  double at4096[2] = {0, 0};
  double queue_share_64 = 0, queue_share_512 = 0, queue_s_4096 = 0;
  std::uint64_t evictions_4096_gpu = 0;

  for (auto dev : {PreprocDevice::kCpu, PreprocDevice::kGpu}) {
    const int d = dev == PreprocDevice::kCpu ? 0 : 1;
    for (int c : concurrencies) {
      ExperimentSpec spec;
      spec.server.model = models::vit_base();
      spec.server.preproc = dev;
      spec.concurrency = c;
      spec.warmup = sim::seconds(c >= 1024 ? 4.0 : 2.0);
      spec.measure = sim::seconds(8.0);
      const auto r = core::run_experiment(spec);
      const double qshare = r.stage_share(Stage::kQueue);
      table.add_row({std::string(dev == PreprocDevice::kCpu ? "cpu" : "gpu"),
                     static_cast<std::int64_t>(c), r.throughput_rps, r.mean_latency_s * 1e3,
                     r.p99_latency_s * 1e3, 100 * qshare, r.mean_batch,
                     static_cast<std::int64_t>(r.gpu_evictions)});
      peak[d] = std::max(peak[d], r.throughput_rps);
      if (c == 4096) {
        at4096[d] = r.throughput_rps;
        if (d == 1) {
          evictions_4096_gpu = r.gpu_evictions;
          queue_s_4096 = r.mean_latency_s * qshare;
        }
      }
      if (d == 1 && c == 64) queue_share_64 = qshare;
      if (d == 1 && c == 512) queue_share_512 = qshare;
    }
  }
  bench::print_table(table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"GPU preprocessing reaches higher peak throughput than CPU",
                    peak[1] > peak[0] * 1.1,
                    "gpu " + std::to_string(peak[1]) + " vs cpu " + std::to_string(peak[0])});
  checks.push_back({"GPU preprocessing declines at very high concurrency (memory eviction)",
                    at4096[1] < 0.85 * peak[1] && evictions_4096_gpu > 0,
                    "4096-concurrency tput " + std::to_string(at4096[1]) + " vs peak " +
                        std::to_string(peak[1]) + ", evictions " +
                        std::to_string(evictions_4096_gpu)});
  checks.push_back({"CPU preprocessing saturates and holds its rate under high load",
                    at4096[0] > 0.95 * peak[0],
                    "4096-concurrency tput " + std::to_string(at4096[0]) + " vs peak " +
                        std::to_string(peak[0])});
  checks.push_back({"queuing is 34-91% of latency across optimal concurrency 64-512",
                    queue_share_64 > 0.10 && queue_share_64 < 0.60 && queue_share_512 > 0.60,
                    "share@64 " + std::to_string(100 * queue_share_64) + " %, share@512 " +
                        std::to_string(100 * queue_share_512) + " %"});
  checks.push_back({"queuing reaches seconds-scale at 4096 concurrency (paper: ~3 s)",
                    queue_s_4096 > 1.5,
                    std::to_string(queue_s_4096) + " s mean queue time"});
  bench::print_checks(checks);
  return 0;
}
