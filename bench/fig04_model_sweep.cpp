// Reproduces paper Fig. 4: throughput and inference-time percentage for a
// broad sweep of HuggingFace vision models, with CPU and GPU preprocessing.
//
// Paper findings: throughput falls as GFLOPs rise; GPU-preprocessing gain
// ranges -2.9%..104% (avg ~34%); models under 5 GFLOPs are dominated by
// non-inference time; even >10 GFLOP models spend 16-49% outside the DNN.
#include <algorithm>

#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using metrics::Stage;
using serving::PreprocDevice;

int main(int argc, char** argv) {
  bench::Reporter rep("Figure 4", "Model sweep: throughput + inference share, CPU vs GPU preproc");
  if (!rep.parse_cli(argc, argv)) return 2;

  metrics::Table table({"model", "gflops", "tput_cpu_pre", "tput_gpu_pre", "gpu_gain_%",
                        "inference_%"});
  double min_gain = 1e9, max_gain = -1e9, gain_sum = 0;
  int n = 0;
  bool small_models_dominated_by_overhead = true;
  double min_share_large = 1.0, max_share_large = 0.0;

  // Sort by GFLOPs for a readable sweep.
  std::vector<models::ModelDesc> sweep{models::zoo().begin(), models::zoo().end()};
  std::sort(sweep.begin(), sweep.end(),
            [](const auto& a, const auto& b) { return a.gflops < b.gflops; });

  for (const auto& model : sweep) {
    ExperimentSpec spec;
    spec.server.model = model;
    spec.concurrency = 256;
    spec.measure = sim::seconds(6.0);
    spec.server.preproc = PreprocDevice::kCpu;
    const auto cpu = core::run_experiment(spec);
    spec.server.preproc = PreprocDevice::kGpu;
    const auto gpu = core::run_experiment(spec);

    const double gain = gpu.throughput_rps / cpu.throughput_rps - 1.0;
    // Fig. 4 bottom: "average time spent on DNN inference from the point at
    // which an image enters the host CPU until the result is returned" —
    // the processing span, i.e. excluding pure scheduler queueing (measured
    // on the GPU-preprocessing deployment, as in the optimized server).
    const double processing =
        gpu.breakdown.mean_total() - gpu.breakdown.mean(Stage::kQueue);
    const double inf_share =
        processing > 0 ? gpu.breakdown.mean(Stage::kInference) / processing : 0.0;
    table.add_row({std::string(model.name), model.gflops, cpu.throughput_rps,
                   gpu.throughput_rps, 100 * gain, 100 * inf_share});
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);
    gain_sum += gain;
    ++n;
    if (model.gflops < 5.0 && inf_share > 0.5) small_models_dominated_by_overhead = false;
    if (model.gflops > 10.0) {
      min_share_large = std::min(min_share_large, inf_share);
      max_share_large = std::max(max_share_large, inf_share);
    }
  }
  rep.table("table", table);
  const double avg_gain = gain_sum / n;

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"GPU-preprocessing gain spans roughly -3%..104% (paper: -2.9%..104%)",
                    min_gain > -0.15 && min_gain < 0.10 && max_gain > 0.5 && max_gain < 1.5,
                    "measured " + std::to_string(100 * min_gain) + "%.." +
                        std::to_string(100 * max_gain) + "%"});
  checks.push_back({"average GPU-preprocessing gain ~34% (paper)",
                    avg_gain > 0.15 && avg_gain < 0.55,
                    std::to_string(100 * avg_gain) + " %"});
  checks.push_back({"models under 5 GFLOPs are dominated by non-inference time",
                    small_models_dominated_by_overhead, "all <5 GF models have inference <50%"});
  checks.push_back({"models over 10 GFLOPs still lose 16-49% to overheads",
                    min_share_large > 0.45 && max_share_large < 0.92,
                    "inference share range " + std::to_string(100 * min_share_large) + "%.." +
                        std::to_string(100 * max_share_large) + "%"});
  rep.checks(std::move(checks));
  return rep.finish();
}
