// Reproduces paper Fig. 3: end-to-end throughput of the same ViT model and
// hardware under successively better software configurations.
//
// Ladder (paper): PyTorch python loop (~431 img/s) -> DALI batched CPU
// decode (~446) -> GPU preprocessing (~842) -> TrIS+ONNX -> +dynamic
// batching (slight tput dip, tail 55 -> 38 ms) -> +tuned server parameters
// (~+300 img/s) -> +TensorRT (>1600 img/s); >8x overall.
//
// Steps 1-3 are the pre-serving-framework configurations and are evaluated
// with the calibrated analytic cost model of the python loop; steps 4-7 run
// the full simulated server.
#include "bench_util.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;
using core::ExperimentSpec;
using serving::PreprocDevice;

namespace {

/// Python-loop throughput: decode a batch serially on one worker, copy it,
/// infer with eager PyTorch; phases do not overlap.
double pytorch_loop_tput(const hw::Calibration& calib, double decode_factor, bool gpu_decode) {
  sim::Simulator sim;
  hw::Platform platform{sim, {.calib = calib}};
  const auto& model = models::vit_base();
  const int b = 64;
  const double backend = calib.gpu.pytorch_factor;
  auto& gpu = platform.gpu(0);
  const double infer = gpu.inference_batch_seconds(model.flops(), b, backend, false);
  double batch_time = 0.0;
  if (!gpu_decode) {
    const double decode =
        decode_factor * b * platform.cpu().raw_preprocess_seconds(hw::kMediumImage, 224);
    const double h2d = gpu.link_seconds(static_cast<std::int64_t>(b) * model.input_tensor_bytes());
    batch_time = decode + h2d + infer;  // strictly sequential python loop
  } else {
    // DALI GPU pipelines prefetch asynchronously: decode overlaps inference.
    const double preproc =
        gpu.preproc_batch_fixed_seconds() + b * gpu.preproc_image_seconds(hw::kMediumImage);
    const double h2d =
        gpu.link_seconds(static_cast<std::int64_t>(b) * hw::kMediumImage.compressed_bytes);
    batch_time = std::max(preproc, infer) + h2d + 2e-3;  // python-side sync
  }
  return b / batch_time;
}

struct StepResult {
  std::string name;
  double tput;
  double p99_ms;  ///< -1 when the step has no server (python loop)
  double paper_tput;
};

StepResult run_server_step(const std::string& name, models::Backend backend, bool dynamic,
                           int max_batch, int concurrency, double paper_tput) {
  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.backend = backend;
  spec.server.preproc = PreprocDevice::kGpu;
  spec.server.dynamic_batching = dynamic;
  spec.server.fixed_batch = max_batch;
  spec.server.max_batch = max_batch;
  spec.concurrency = concurrency;
  spec.measure = sim::seconds(8.0);
  const auto r = core::run_experiment(spec);
  return {name, r.throughput_rps, r.p99_latency_s * 1e3, paper_tput};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Figure 3", "Software-configuration ladder (ViT, medium image)");
  if (!rep.parse_cli(argc, argv)) return 2;
  const auto calib = hw::default_calibration();

  std::vector<StepResult> steps;
  steps.push_back({"1. PyTorch python loop (serial CPU decode)",
                   pytorch_loop_tput(calib, 1.0, false), -1, 431});
  steps.push_back({"2. + DALI batched CPU decode",
                   pytorch_loop_tput(calib, 0.9, false), -1, 446});
  steps.push_back({"3. + GPU preprocessing (DALI/nvJPEG)",
                   pytorch_loop_tput(calib, 1.0, true), -1, 842});
  steps.push_back(run_server_step("4. TrIS + ONNX runtime (fixed batch 64)",
                                  models::Backend::kOnnxRuntime, false, 64, 96, -1));
  // Dynamic batching first ships with Triton's conservative default batch
  // limit; the configuration search in step 6 raises it.
  steps.push_back(run_server_step("5. + dynamic batching", models::Backend::kOnnxRuntime, true,
                                  16, 96, -1));
  // 6. "Quick search on server settings": grid over batch limit x concurrency.
  StepResult best{"6. + tuned server parameters", 0, 0, -1};
  for (int mb : {16, 32, 64, 128}) {
    for (int conc : {64, 128, 256, 512}) {
      auto r = run_server_step("", models::Backend::kOnnxRuntime, true, mb, conc, -1);
      if (r.tput > best.tput) {
        best.tput = r.tput;
        best.p99_ms = r.p99_ms;
      }
    }
  }
  steps.push_back(best);
  steps.push_back(run_server_step("7. + TensorRT", models::Backend::kTensorRT, true, 128, 512,
                                  1600));

  metrics::Table table({"configuration", "tput_img_s", "p99_ms", "paper_img_s"});
  for (const auto& s : steps) {
    table.add_row({s.name, s.tput, s.p99_ms < 0 ? std::string("-") : std::to_string(s.p99_ms),
                   s.paper_tput < 0 ? std::string("-") : std::to_string(s.paper_tput)});
  }
  rep.table("table", table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"each configuration step improves (or holds) throughput",
                    steps[1].tput >= steps[0].tput * 0.98 && steps[2].tput > steps[1].tput &&
                        steps[3].tput > steps[2].tput * 0.95 && steps[5].tput >= steps[4].tput &&
                        steps[6].tput > steps[5].tput,
                    "see table"});
  checks.push_back({"dynamic batching improves tail latency (paper: 55 -> 38 ms)",
                    steps[4].p99_ms < steps[3].p99_ms,
                    std::to_string(steps[3].p99_ms) + " -> " + std::to_string(steps[4].p99_ms) +
                        " ms"});
  checks.push_back({"tuning server parameters adds a sizeable gain (paper: ~+300 img/s)",
                    steps[5].tput - steps[4].tput > 100,
                    "+" + std::to_string(steps[5].tput - steps[4].tput) + " img/s"});
  checks.push_back({"TensorRT lands above 1600 img/s (paper)", steps[6].tput > 1600,
                    std::to_string(steps[6].tput) + " img/s"});
  const double span = steps[6].tput / steps[0].tput;
  checks.push_back({"large end-to-end gain from software alone (paper: >8x; see EXPERIMENTS.md)",
                    span > 4.0, std::to_string(span) + "x"});
  rep.checks(std::move(checks));
  return rep.finish();
}
