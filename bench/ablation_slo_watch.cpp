// Ablation: the SLO watch plane end to end.
//
// One tuned ViT server (GPU preprocessing, open-loop Poisson arrivals) runs
// three times with the full observability stack armed — registry + flight
// recorder + obs::AlertEngine + causal tracer:
//
//   1. fault-free baseline: every alert rule stays silent;
//   2. faulted run: a PCIe-degradation window plus a staging-memory shrink
//      open mid-run, the SLO burn-rate / queue-depth / eviction-storm alerts
//      fire at deterministic sim-times inside the window and resolve after
//      it, the alert engine flips the trace sampler into full capture for
//      the anomalous interval, and the latency histogram's tail buckets
//      carry trace exemplars;
//   3. faulted repeat: the same seed must reproduce a byte-identical alert
//      log — alerting is part of the determinism contract, not best-effort.
//
// The run also exercises tools/diff_report's attribution story: the
// fault-free export (--baseline-json-out) vs the faulted export (--json-out)
// must attribute the p99 shift to the faulted transfer stage. CI diffs the
// two and greps the attribution line.
//
// Extra flags (before the common harness flags):
//   --alert-log <path>           write the faulted run's alert log
//   --baseline-json-out <path>   write the fault-free telemetry export
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "models/model_zoo.h"
#include "obs/alert_engine.h"
#include "trace/causal.h"
#include "workload/arrivals.h"

using namespace serve;
using core::ExperimentSpec;

namespace {

core::HarnessOptions g_harness;
std::uint64_t g_violations = 0;

constexpr double kRate = 1000.0;      // ~55% of single-GPU capacity: headroom to drain the backlog
constexpr double kSloSeconds = 0.25;  // latency objective the burn rule watches

/// Everything one run owns; heap-allocated so results can outlive the run
/// helper and feed the exports/checks.
struct RunBundle {
  metrics::Registry registry;
  metrics::FlightRecorder recorder{registry};
  obs::AlertEngine alerts{registry};
  sim::TraceRecorder trace;
  trace::CausalTracer tracer{&trace};
  core::ExperimentResult r;

  double p99_ms() const { return r.p99_latency_s * 1e3; }
};

/// The production rule set: SLO burn, queue depth, eviction storm, stall
/// watchdog. The stall rule is armed in every run and must never fire here —
/// the server is loaded, not wedged.
void arm_rules(obs::AlertEngine& eng) {
  obs::BurnRateRule burn;
  burn.name = "slo-burn-rate";
  burn.slo_s = kSloSeconds;
  burn.target = 0.99;
  burn.burn_threshold = 10.0;  // ~10x error budget: a real incident, not noise
  burn.short_window_ticks = 5;
  burn.long_window_ticks = 30;
  burn.clear_for_ticks = 3;
  eng.add_burn_rate(burn);

  obs::ThresholdRule depth;
  depth.name = "queue-depth-high";
  depth.instrument = "serving_queue_depth";
  depth.fire_above = 256.0;
  depth.clear_below = 64.0;
  depth.for_ticks = 2;
  depth.clear_for_ticks = 2;
  eng.add_threshold(depth);

  obs::ThresholdRule storm;
  storm.name = "eviction-storm";
  storm.instrument = "gpu_staging_evictions_total";
  storm.signal = obs::ThresholdRule::Signal::kRate;
  storm.fire_above = 200.0;  // evictions/s
  storm.clear_below = 50.0;
  storm.for_ticks = 2;
  storm.clear_for_ticks = 2;
  eng.add_threshold(storm);

  obs::StallRule stall;
  stall.name = "progress-stall";
  stall.progress = "serving_requests_completed_total";
  stall.armed_gauge = "serving_in_flight";
  stall.armed_above = 0.5;
  stall.for_ticks = 5;
  eng.add_stall(stall);
}

std::unique_ptr<RunBundle> run(const std::string& label, const sim::FaultPlan* faults) {
  auto b = std::make_unique<RunBundle>();
  arm_rules(b->alerts);
  b->alerts.attach(b->recorder);

  ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.gpu_count = 1;
  spec.warmup = sim::seconds(2.0);
  spec.measure = sim::seconds(16.0);  // leaves room for the post-fault drain + alert resolution
  spec.seed = 31;
  spec.server.audit = true;
  // Thin steady-state head sampling; the alert engine forces full capture
  // while an alert is firing, so the anomalous interval is traced wholesale.
  spec.server.trace_sampler.rate = 1.0 / 64.0;
  spec.faults = faults;
  spec.registry = &b->registry;
  spec.recorder = &b->recorder;
  spec.alerts = &b->alerts;
  spec.trace = &b->trace;
  spec.tracer = &b->tracer;

  b->r = core::run_open_loop(spec, workload::poisson_arrivals(kRate));
  g_violations += core::report_audit(b->r, label);
  return b;
}

/// Fault schedule: a PCIe-degradation window (transfer inflates 16x — the
/// attributable stage) plus a near-total staging shrink (eviction storm,
/// whose re-uploads amplify the degraded transfers) over the same interval.
sim::FaultPlan fault_plan() {
  sim::FaultPlan plan;
  plan.pcie_degradation(sim::seconds(6.0), sim::seconds(9.0), 16.0);
  plan.gpu_memory_shrink(0, sim::seconds(6.0), sim::seconds(9.0), 0.001);
  return plan;
}

/// First FIRING time for `alert` in the event list, or -1.
double first_firing_s(const RunBundle& b, const std::string& alert) {
  for (const auto& ev : b.alerts.events()) {
    if (ev.firing && ev.alert == alert) return sim::to_seconds(ev.t);
  }
  return -1.0;
}

bool resolved_after(const RunBundle& b, const std::string& alert, double t_s) {
  for (const auto& ev : b.alerts.events()) {
    if (!ev.firing && ev.alert == alert && sim::to_seconds(ev.t) > t_s) return true;
  }
  return false;
}

/// Any latency-histogram bucket at/above the SLO carrying a trace exemplar.
bool tail_has_exemplar(const metrics::Registry& reg) {
  const auto snap = reg.find("serving_request_latency_seconds");
  if (!snap) return false;
  for (const auto& bkt : snap->buckets) {
    if (bkt.upper >= kSloSeconds && bkt.exemplar_trace_id != 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "SLO watch plane: alerts, triggered capture, diff attribution");

  std::string alert_log_path;
  std::string baseline_json_path;
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--alert-log" || arg == "--baseline-json-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a file path\n", argv[i]);
        return 2;
      }
      (arg == "--alert-log" ? alert_log_path : baseline_json_path) = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!rep.parse_cli(static_cast<int>(rest.size()), rest.data(), &g_harness)) return 2;

  const sim::FaultPlan faults = fault_plan();
  const auto base = run("slo-watch/base", nullptr);
  const auto fault = run("slo-watch/fault", &faults);
  const auto repeat = run("slo-watch/fault-repeat", &faults);

  metrics::Table table({"scenario", "tput_img_s", "p99_ms", "completed", "evictions",
                        "alerts_fired", "capture_ticks"});
  const auto add = [&table](const std::string& name, const RunBundle& b) {
    table.add_row({name, b.r.throughput_rps, b.p99_ms(), static_cast<double>(b.r.completed),
                   static_cast<double>(b.r.gpu_evictions),
                   static_cast<double>(b.alerts.fired_total()),
                   static_cast<double>(b.alerts.capture_ticks())});
  };
  add("fault-free", *base);
  add("pcie-degrade + staging-shrink", *fault);
  add("faulted repeat (determinism)", *repeat);
  rep.table("table", table);

  if (!fault->alerts.events().empty()) {
    std::printf("\nAlert log (faulted run):\n");
    fault->alerts.write_log(std::cout);
  }

  // The faulted run is the Reporter's export (--json-out); the fault-free
  // run goes to --baseline-json-out so diff_report can attribute the delta.
  rep.context("rate_rps", std::to_string(kRate));
  rep.context("slo_s", std::to_string(kSloSeconds));
  rep.benchmark("slo_watch/run", fault->r.mean_latency_s * 1e3,
                {{"tput_img_s", fault->r.throughput_rps}, {"p99_ms", fault->p99_ms()}});
  rep.exporter().capture_instruments(fault->registry);
  rep.exporter().capture_series(fault->recorder);

  if (!baseline_json_path.empty()) {
    metrics::TelemetryExport ex;
    ex.set_context("figure", "Ablation");
    ex.set_context("title", "SLO watch plane: fault-free baseline");
    ex.add_benchmark({"slo_watch/run", base->r.mean_latency_s * 1e3, "ms",
                      {{"tput_img_s", base->r.throughput_rps}, {"p99_ms", base->p99_ms()}}});
    ex.capture_instruments(base->registry);
    ex.capture_series(base->recorder);
    std::ofstream out{baseline_json_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", baseline_json_path.c_str());
      return 1;
    }
    ex.write_json(out);
    std::fprintf(stderr, "# telemetry: wrote %s\n", baseline_json_path.c_str());
  }
  if (!alert_log_path.empty()) {
    std::ofstream out{alert_log_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", alert_log_path.c_str());
      return 1;
    }
    fault->alerts.write_log(out);
    std::fprintf(stderr, "# alerts: wrote %s\n", alert_log_path.c_str());
  }

  const double burn_t = first_firing_s(*fault, "slo-burn-rate");
  const double depth_t = first_firing_s(*fault, "queue-depth-high");
  const double storm_t = first_firing_s(*fault, "eviction-storm");

  // Attribution inside the run: the PCIe fault inflates the transfer stage;
  // its per-request seconds must grow by more than any other *service* stage
  // (queue time explodes too, but queueing is the symptom, not the cause).
  const auto per_req = [](const RunBundle& b, metrics::Stage s) {
    return b.r.breakdown.mean(s);
  };
  const double d_transfer = per_req(*fault, metrics::Stage::kTransfer) -
                            per_req(*base, metrics::Stage::kTransfer);
  double d_other_max = 0.0;
  for (const auto s : {metrics::Stage::kPreprocess, metrics::Stage::kInference,
                       metrics::Stage::kPostprocess}) {
    d_other_max = std::max(d_other_max, per_req(*fault, s) - per_req(*base, s));
  }

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"fault-free run raises no alerts",
                    base->alerts.events().empty() && base->alerts.fired_total() == 0,
                    std::to_string(base->alerts.events().size()) + " event(s)"});
  checks.push_back({"SLO burn-rate alert fires during the [6s,9s] fault window (+detection lag)",
                    burn_t >= 6.0 && burn_t <= 10.0, "first firing t=" + std::to_string(burn_t)});
  checks.push_back({"queue-depth alert fires during the fault window",
                    depth_t >= 6.0 && depth_t <= 10.0,
                    "first firing t=" + std::to_string(depth_t)});
  checks.push_back({"eviction-storm (counter-rate) alert fires during the fault window",
                    storm_t >= 6.0 && storm_t <= 10.0,
                    "first firing t=" + std::to_string(storm_t)});
  checks.push_back({"alerts resolve after the fault window closes and the backlog drains",
                    resolved_after(*fault, "slo-burn-rate", 9.0) &&
                        resolved_after(*fault, "queue-depth-high", 9.0),
                    "resolution events past t=9s present"});
  checks.push_back({"the stall watchdog stays silent in every run (loaded, not wedged)",
                    first_firing_s(*base, "progress-stall") < 0.0 &&
                        first_firing_s(*fault, "progress-stall") < 0.0,
                    "no progress-stall firings"});
  checks.push_back({"same-seed repeat reproduces a byte-identical alert log",
                    !fault->alerts.log_text().empty() &&
                        fault->alerts.log_text() == repeat->alerts.log_text(),
                    std::to_string(fault->alerts.events().size()) + " event(s), " +
                        std::to_string(fault->alerts.log_text().size()) + " bytes"});
  checks.push_back({"an alert firing flips the sampler into full capture (triggered ticks)",
                    fault->alerts.capture_ticks() > 0 && base->alerts.capture_ticks() == 0,
                    std::to_string(fault->alerts.capture_ticks()) + " captured tick(s)"});
  checks.push_back({"triggered capture records far more request spans than steady-state",
                    fault->trace.span_count() > 2 * base->trace.span_count(),
                    std::to_string(fault->trace.span_count()) + " vs " +
                        std::to_string(base->trace.span_count()) + " spans"});
  checks.push_back({"SLO tail buckets carry trace exemplars in the faulted run",
                    tail_has_exemplar(fault->registry),
                    "exemplar trace ids present at/above the SLO bucket"});
  checks.push_back({"per-request transfer time shifts more than any other service stage "
                    "(diff attribution target)",
                    d_transfer > 2.0 * d_other_max && d_transfer > 0.0,
                    "transfer +" + std::to_string(1e3 * d_transfer) + " ms/req vs other max +" +
                        std::to_string(1e3 * d_other_max) + " ms/req"});
  checks.push_back({"faulted p99 blows through the SLO while fault-free stays under it",
                    base->r.p99_latency_s < kSloSeconds && fault->r.p99_latency_s > kSloSeconds,
                    std::to_string(base->p99_ms()) + " ms vs " + std::to_string(fault->p99_ms()) +
                        " ms (slo " + std::to_string(1e3 * kSloSeconds) + " ms)"});
  checks.push_back({"conservation holds in every scenario (auditor)", g_violations == 0,
                    std::to_string(g_violations) + " violation(s)"});
  rep.checks(std::move(checks));

  return rep.finish(core::finish_harness(g_harness, fault->trace, g_violations));
}
