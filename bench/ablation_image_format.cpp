// Ablation: image wire format (JPEG vs PNG vs raw) and serving cost.
//
// The paper stresses that vision inputs arrive "in many different sizes,
// formats, and properties" and that data movement can dominate. This
// ablation quantifies the format axis with the repo's two real codecs:
//  (a) real measurements — wire size and single-thread decode wall time for
//      the same photographic content in JPEG (q85), PNG, and raw;
//  (b) simulation — the end-to-end serving impact of the measured wire
//      sizes (GPU-preprocessing deployment, where the compressed stream
//      crosses PCIe and the host fabric).
#include <chrono>

#include "bench_util.h"
#include "codec/jpeg.h"
#include "codec/png.h"
#include "codec/synthetic.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;

namespace {

double time_ms(const std::function<void()>& fn, int iters = 5) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count() /
         iters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("Ablation", "Image wire format: size vs decode cost vs serving impact");
  if (!rep.parse_cli(argc, argv)) return 2;

  // (a) Real codec measurements on the paper's medium geometry.
  const codec::Image img = codec::make_synthetic(500, 375, codec::Pattern::kScene, 5);
  const auto jpg = codec::encode_jpeg(img, {.quality = 85});
  const auto jpg_opt = codec::encode_jpeg(img, {.quality = 85, .optimize_huffman = true});
  const auto png = codec::encode_png(img);
  const double jpg_ms = time_ms([&] { (void)codec::decode_jpeg(jpg); });
  const double png_ms = time_ms([&] { (void)codec::decode_png(png); });

  metrics::Table real_table({"format", "wire_kB", "vs_raw", "real_decode_ms"});
  const double raw_kb = static_cast<double>(img.data().size()) / 1024.0;
  real_table.add_row({std::string("raw RGB"), raw_kb, 1.0, 0.0});
  real_table.add_row({std::string("png"), static_cast<double>(png.size()) / 1024.0,
                      static_cast<double>(png.size()) / (raw_kb * 1024.0), png_ms});
  real_table.add_row({std::string("jpeg q85"), static_cast<double>(jpg.size()) / 1024.0,
                      static_cast<double>(jpg.size()) / (raw_kb * 1024.0), jpg_ms});
  real_table.add_row({std::string("jpeg q85 +optimized huffman"),
                      static_cast<double>(jpg_opt.size()) / 1024.0,
                      static_cast<double>(jpg_opt.size()) / (raw_kb * 1024.0), jpg_ms});
  rep.table("real_table", real_table);

  // (b) Serving impact of the measured wire sizes on a 4-GPU node, where the
  // shared host fabric (6 GB/s) is the binding resource for fat formats
  // (decode rate held equal so the transfer axis is isolated; see DESIGN.md).
  metrics::Table sim_table({"wire_format", "bytes", "tput_img_s", "mean_lat_ms"});
  double tput[3];
  const std::int64_t sizes[3] = {static_cast<std::int64_t>(jpg.size()),
                                 static_cast<std::int64_t>(png.size()),
                                 static_cast<std::int64_t>(img.data().size())};
  const char* names[3] = {"jpeg", "png", "raw"};
  for (int i = 0; i < 3; ++i) {
    core::ExperimentSpec spec;
    spec.server.model = models::tiny_vit();  // fast model => transfer-sensitive
    spec.server.preproc = serving::PreprocDevice::kGpu;
    spec.image = hw::ImageSpec{500, 375, sizes[i]};
    spec.gpu_count = 4;
    spec.concurrency = 2048;
    spec.measure = sim::seconds(6.0);
    const auto r = core::run_experiment(spec);
    tput[i] = r.throughput_rps;
    sim_table.add_row({std::string(names[i]), static_cast<std::int64_t>(sizes[i]),
                       r.throughput_rps, r.mean_latency_s * 1e3});
  }
  rep.table("sim_table", sim_table);

  std::vector<bench::ShapeCheck> checks;
  checks.push_back({"JPEG is several times smaller on the wire than PNG (real codecs)",
                    png.size() > 2 * jpg.size(),
                    std::to_string(png.size() / 1024) + " kB vs " +
                        std::to_string(jpg.size() / 1024) + " kB"});
  checks.push_back({"optimized Huffman tables shave JPEG bytes at zero quality cost",
                    jpg_opt.size() < jpg.size(),
                    std::to_string(jpg.size()) + " -> " + std::to_string(jpg_opt.size()) + " B"});
  checks.push_back({"bigger wire formats cut fast-model serving throughput (sim)",
                    tput[0] > tput[1] && tput[1] > tput[2],
                    std::string("jpeg ") + std::to_string(tput[0]) + " > png " +
                        std::to_string(tput[1]) + " > raw " + std::to_string(tput[2])});
  rep.checks(std::move(checks));
  return rep.finish();
}
