#include "workload/popularity.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

namespace serve::workload {

PopularityModel PopularityModel::zipf(std::size_t distinct, double skew) {
  if (distinct == 0) throw std::invalid_argument("PopularityModel: need at least one item");
  if (!std::isfinite(skew) || skew < 0.0) {
    throw std::invalid_argument("PopularityModel: skew must be finite and non-negative");
  }
  PopularityModel m;
  m.cdf_.resize(distinct);
  double total = 0.0;
  for (std::size_t i = 0; i < distinct; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    m.cdf_[i] = total;
  }
  for (double& c : m.cdf_) c /= total;
  m.cdf_.back() = 1.0;  // guard against accumulated rounding
  return m;
}

std::size_t PopularityModel::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(idx, cdf_.size() - 1);
}

double PopularityModel::mass(std::size_t i) const {
  if (i >= cdf_.size()) throw std::out_of_range("PopularityModel::mass: index out of range");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

serving::ImageSource popular_corpus_source(std::vector<CorpusEntry> corpus,
                                           PopularityModel popularity,
                                           serving::RequestIngress ingress) {
  if (corpus.empty()) throw std::invalid_argument("popular_corpus_source: empty corpus");
  if (popularity.size() != corpus.size()) {
    throw std::invalid_argument(
        "popular_corpus_source: popularity model size must match corpus size");
  }
  // shared_ptr captures keep the returned std::function copyable.
  auto data = std::make_shared<std::vector<CorpusEntry>>(std::move(corpus));
  auto pop = std::make_shared<PopularityModel>(std::move(popularity));
  return [data, pop, ingress](sim::Rng& rng) {
    const CorpusEntry& e = (*data)[pop->sample(rng)];
    return serving::RequestDesc{e.spec, e.content_hash, ingress};
  };
}

}  // namespace serve::workload
