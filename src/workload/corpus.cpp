#include "workload/corpus.h"

#include <chrono>

#include "codec/batch_preprocess.h"
#include "codec/jpeg.h"
#include "codec/synthetic.h"
#include "codec/transform.h"

namespace serve::workload {

std::uint64_t content_hash_bytes(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  // A zero digest means "unique payload" to the ingress cache; remap the
  // (astronomically unlikely) real zero so hashed content always matches.
  return h == 0 ? 1 : h;
}

std::vector<CorpusEntry> make_corpus(hw::ImageSpec target, int count, std::uint64_t seed,
                                     int threads) {
  if (count <= 0) throw std::invalid_argument("make_corpus: count must be positive");
  std::vector<CorpusEntry> corpus(static_cast<std::size_t>(count));
  codec::BatchPreprocessor pool{threads};
  pool.parallel_for(static_cast<std::size_t>(count), [&](std::size_t i) {
    const codec::Image img = codec::make_synthetic(target.width, target.height,
                                                   codec::Pattern::kScene,
                                                   seed + static_cast<std::uint64_t>(i));
    CorpusEntry& entry = corpus[i];
    entry.jpeg = codec::encode_jpeg(img, {.quality = 85});
    entry.spec = hw::ImageSpec{target.width, target.height,
                               static_cast<std::int64_t>(entry.jpeg.size())};
    entry.content_hash = content_hash_bytes(entry.jpeg.data(), entry.jpeg.size());
  });
  return corpus;
}

std::vector<CorpusEntry> make_spec_corpus(hw::ImageSpec spec, int distinct, std::uint64_t seed) {
  if (distinct <= 0) throw std::invalid_argument("make_spec_corpus: distinct must be positive");
  std::vector<CorpusEntry> corpus(static_cast<std::size_t>(distinct));
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    corpus[i].spec = spec;
    // splitmix64 over (seed, i): stable, well-mixed identities with no
    // payload bytes to digest.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (i + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    corpus[i].content_hash = z == 0 ? 1 : z;
  }
  return corpus;
}

PreprocessTiming time_real_preprocess(const CorpusEntry& entry, int target_side) {
  using clock = std::chrono::steady_clock;
  PreprocessTiming t;
  const auto t0 = clock::now();
  const codec::Image decoded = codec::decode_jpeg(entry.jpeg);
  const auto t1 = clock::now();
  const codec::Image resized = codec::resize(decoded, target_side, target_side);
  const auto t2 = clock::now();
  const auto tensor = codec::normalize_chw(resized);
  const auto t3 = clock::now();
  (void)tensor;
  t.decode_s = std::chrono::duration<double>(t1 - t0).count();
  t.resize_s = std::chrono::duration<double>(t2 - t1).count();
  t.normalize_s = std::chrono::duration<double>(t3 - t2).count();
  return t;
}

}  // namespace serve::workload
