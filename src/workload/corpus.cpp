#include "workload/corpus.h"

#include <chrono>

#include "codec/batch_preprocess.h"
#include "codec/jpeg.h"
#include "codec/synthetic.h"
#include "codec/transform.h"

namespace serve::workload {

std::vector<CorpusEntry> make_corpus(hw::ImageSpec target, int count, std::uint64_t seed,
                                     int threads) {
  if (count <= 0) throw std::invalid_argument("make_corpus: count must be positive");
  std::vector<CorpusEntry> corpus(static_cast<std::size_t>(count));
  codec::BatchPreprocessor pool{threads};
  pool.parallel_for(static_cast<std::size_t>(count), [&](std::size_t i) {
    const codec::Image img = codec::make_synthetic(target.width, target.height,
                                                   codec::Pattern::kScene,
                                                   seed + static_cast<std::uint64_t>(i));
    CorpusEntry& entry = corpus[i];
    entry.jpeg = codec::encode_jpeg(img, {.quality = 85});
    entry.spec = hw::ImageSpec{target.width, target.height,
                               static_cast<std::int64_t>(entry.jpeg.size())};
  });
  return corpus;
}

PreprocessTiming time_real_preprocess(const CorpusEntry& entry, int target_side) {
  using clock = std::chrono::steady_clock;
  PreprocessTiming t;
  const auto t0 = clock::now();
  const codec::Image decoded = codec::decode_jpeg(entry.jpeg);
  const auto t1 = clock::now();
  const codec::Image resized = codec::resize(decoded, target_side, target_side);
  const auto t2 = clock::now();
  const auto tensor = codec::normalize_chw(resized);
  const auto t3 = clock::now();
  (void)tensor;
  t.decode_s = std::chrono::duration<double>(t1 - t0).count();
  t.resize_s = std::chrono::duration<double>(t2 - t1).count();
  t.normalize_s = std::chrono::duration<double>(t3 - t2).count();
  return t;
}

}  // namespace serve::workload
