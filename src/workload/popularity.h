// Zipf-skewed corpus popularity.
//
// Ingress-cache hit rates must be workload-driven, not synthetic: real
// request streams over an image corpus are heavily skewed (a few hot images
// dominate), which is what makes a content-addressed preprocess cache pay
// off (Kang et al.). PopularityModel samples corpus indices from a Zipf
// distribution with tunable skew; skew 0 degenerates to uniform.
#pragma once

#include <cstddef>
#include <vector>

#include "serving/client.h"
#include "serving/ingress.h"
#include "sim/rng.h"
#include "workload/corpus.h"

namespace serve::workload {

class PopularityModel {
 public:
  /// Zipf over `distinct` items: weight(i) = 1 / (i + 1)^skew, normalized.
  /// Item 0 is the most popular. `skew` 0 is uniform; larger concentrates
  /// mass on the head. The inverse CDF is precomputed so sampling is a
  /// deterministic binary search per draw.
  [[nodiscard]] static PopularityModel zipf(std::size_t distinct, double skew);

  [[nodiscard]] static PopularityModel uniform(std::size_t distinct) {
    return zipf(distinct, 0.0);
  }

  /// Draws a corpus index in [0, size()).
  [[nodiscard]] std::size_t sample(sim::Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Normalized popularity mass of item `i`.
  [[nodiscard]] double mass(std::size_t i) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[i] = P(index <= i); back() == 1.0
};

/// Bridges a corpus + popularity model to the client harnesses: every drawn
/// request carries the sampled entry's geometry and stable content hash (so
/// the ingress cache sees real repeats), plus an optional per-request wire
/// format. The corpus and model are moved into the returned source.
[[nodiscard]] serving::ImageSource popular_corpus_source(
    std::vector<CorpusEntry> corpus, PopularityModel popularity,
    serving::RequestIngress ingress = serving::RequestIngress::kServerDefault);

}  // namespace serve::workload
