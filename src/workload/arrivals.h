// Arrival processes for open-loop load generation.
//
// Beyond the closed-loop concurrency model of the paper's main experiments,
// real services face open arrivals — often bursty. These generators produce
// inter-arrival times for the open-loop client:
//  - Poisson: memoryless arrivals at a fixed rate;
//  - Deterministic: perfectly paced arrivals (best case for batching);
//  - Mmpp2: two-state Markov-modulated Poisson process (calm/burst), the
//    standard bursty-traffic model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string_view>

#include "sim/rng.h"
#include "sim/time.h"

namespace serve::workload {

/// Produces the next inter-arrival gap.
using ArrivalProcess = std::function<sim::Time(sim::Rng&)>;

[[nodiscard]] inline ArrivalProcess poisson_arrivals(double rate_per_s) {
  if (rate_per_s <= 0.0) throw std::invalid_argument("poisson_arrivals: rate must be > 0");
  return [rate_per_s](sim::Rng& rng) { return sim::seconds(rng.exponential(rate_per_s)); };
}

[[nodiscard]] inline ArrivalProcess deterministic_arrivals(double rate_per_s) {
  if (rate_per_s <= 0.0) throw std::invalid_argument("deterministic_arrivals: rate must be > 0");
  return [rate_per_s](sim::Rng&) { return sim::seconds(1.0 / rate_per_s); };
}

/// Named arrival shapes, for specs (e.g. core::FleetSpec) that pick an
/// open-loop generator by configuration rather than by factory call.
enum class ArrivalKind : std::uint8_t { kPoisson, kDeterministic, kBursty };

[[nodiscard]] constexpr std::string_view arrival_kind_name(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kDeterministic: return "deterministic";
    case ArrivalKind::kBursty: return "bursty";
  }
  return "?";
}

/// Two-state MMPP with the given mean rate. The process alternates between
/// a calm state (rate = mean/burstiness) and a burst state (rate = mean *
/// burstiness), with exponentially distributed state dwell times. The time
/// average of the two rates equals `mean_rate_per_s`.
[[nodiscard]] inline ArrivalProcess mmpp2_arrivals(double mean_rate_per_s,
                                                   double burstiness = 4.0,
                                                   double mean_dwell_s = 0.5) {
  if (mean_rate_per_s <= 0.0) throw std::invalid_argument("mmpp2_arrivals: rate must be > 0");
  if (burstiness < 1.0) throw std::invalid_argument("mmpp2_arrivals: burstiness must be >= 1");
  if (mean_dwell_s <= 0.0) throw std::invalid_argument("mmpp2_arrivals: dwell must be > 0");
  struct State {
    bool bursting = false;
    double dwell_left_s = 0.0;
  };
  auto state = std::make_shared<State>();
  // Solve calm/burst rates so that equal dwell shares average to the mean:
  // (r/b + r*b)/2 = mean  =>  r = 2*mean / (b + 1/b).
  const double r = 2.0 * mean_rate_per_s / (burstiness + 1.0 / burstiness);
  const double calm_rate = r / burstiness;
  const double burst_rate = r * burstiness;
  return [state, calm_rate, burst_rate, mean_dwell_s](sim::Rng& rng) {
    if (state->dwell_left_s <= 0.0) {
      state->bursting = !state->bursting;
      state->dwell_left_s = rng.exponential(1.0 / mean_dwell_s);
    }
    const double rate = state->bursting ? burst_rate : calm_rate;
    const double gap = rng.exponential(rate);
    state->dwell_left_s -= gap;
    return sim::seconds(gap);
  };
}

[[nodiscard]] inline ArrivalProcess make_arrivals(ArrivalKind kind, double rate_per_s) {
  switch (kind) {
    case ArrivalKind::kPoisson: return poisson_arrivals(rate_per_s);
    case ArrivalKind::kDeterministic: return deterministic_arrivals(rate_per_s);
    case ArrivalKind::kBursty: return mmpp2_arrivals(rate_per_s);
  }
  throw std::invalid_argument("make_arrivals: unknown arrival kind");
}

}  // namespace serve::workload
