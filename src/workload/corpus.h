// Real JPEG corpus generation.
//
// The reproduction has no ImageNet access (DESIGN.md substitution table):
// instead we synthesize photograph-like images and encode them with the
// real from-scratch JPEG codec, yielding byte streams whose sizes and decode
// costs match the paper's three size classes. Used by the runnable examples
// and the codec micro-benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/image.h"
#include "hw/image_spec.h"

namespace serve::workload {

struct CorpusEntry {
  hw::ImageSpec spec;                ///< geometry + actual encoded size
  std::vector<std::uint8_t> jpeg;    ///< real JFIF byte stream
  /// Stable content identity: FNV-1a over the encoded payload bytes. Cache
  /// keys and PCIe byte accounting key on this, never on the spec — two
  /// entries can share identical geometry (and even encoded size) while
  /// holding different pixels. Zero means "unique payload, never cached".
  std::uint64_t content_hash = 0;
};

/// FNV-1a (64-bit) over a byte stream — the corpus' content identity.
[[nodiscard]] std::uint64_t content_hash_bytes(const std::uint8_t* data, std::size_t n) noexcept;

/// Builds `count` real JPEGs at roughly the geometry of `target` (encoded
/// size will differ from the paper's byte counts — content differs — but the
/// decode work is the real thing). Deterministic in `seed` regardless of
/// `threads`: each entry is synthesized and encoded independently, fanned
/// out over a codec::BatchPreprocessor worker pool when `threads > 1`.
[[nodiscard]] std::vector<CorpusEntry> make_corpus(hw::ImageSpec target, int count,
                                                   std::uint64_t seed = 1, int threads = 1);

/// Cheap corpus of `distinct` content identities sharing one geometry: no
/// bytes are encoded — entries carry only the spec and a seeded stable hash.
/// For cache-key / popularity studies where payload bytes don't matter
/// (e.g. the fig07 ingress-format sweep), where encoding thousands of real
/// JPEGs would dominate the harness.
[[nodiscard]] std::vector<CorpusEntry> make_spec_corpus(hw::ImageSpec spec, int distinct,
                                                        std::uint64_t seed = 1);

/// Decodes + resizes + normalizes one entry with the real pipeline and
/// returns the wall-clock cost in seconds (used to ground CpuCalib rates).
struct PreprocessTiming {
  double decode_s = 0.0;
  double resize_s = 0.0;
  double normalize_s = 0.0;
  [[nodiscard]] double total() const noexcept { return decode_s + resize_s + normalize_s; }
};
[[nodiscard]] PreprocessTiming time_real_preprocess(const CorpusEntry& entry, int target_side);

}  // namespace serve::workload
