// Video clip workload description (paper Section 1's motivating service:
// "a video classification service receives the video in a compressed format
// like MPEG, decodes the video, samples a number of frames, then resizes
// and normalizes the resulting images into the format required by the DNN").
#pragma once

#include <cstdint>
#include <stdexcept>

namespace serve::workload {

struct VideoSpec {
  int width = 1280;
  int height = 720;
  double fps = 30.0;
  double duration_s = 10.0;
  double bits_per_pixel = 0.10;  ///< H.264-class compression density
  /// Frames handed to the classifier (uniformly sampled over the clip).
  int sampled_frames = 10;

  [[nodiscard]] std::int64_t frame_pixels() const noexcept {
    return static_cast<std::int64_t>(width) * height;
  }
  [[nodiscard]] std::int64_t total_frames() const noexcept {
    return static_cast<std::int64_t>(fps * duration_s);
  }
  [[nodiscard]] std::int64_t compressed_bytes() const noexcept {
    return static_cast<std::int64_t>(static_cast<double>(frame_pixels()) *
                                     static_cast<double>(total_frames()) * bits_per_pixel / 8.0);
  }

  void validate() const {
    if (width <= 0 || height <= 0) throw std::invalid_argument("VideoSpec: bad dimensions");
    if (fps <= 0 || duration_s <= 0) throw std::invalid_argument("VideoSpec: bad timing");
    if (sampled_frames < 1) throw std::invalid_argument("VideoSpec: need >=1 sampled frame");
    if (sampled_frames > total_frames()) {
      throw std::invalid_argument("VideoSpec: cannot sample more frames than the clip has");
    }
  }
};

/// 10-second clips at common resolutions.
inline constexpr VideoSpec kSdClip{640, 360, 30.0, 10.0, 0.10, 10};
inline constexpr VideoSpec kHdClip{1280, 720, 30.0, 10.0, 0.10, 10};
inline constexpr VideoSpec k4kClip{3840, 2160, 30.0, 10.0, 0.08, 10};

}  // namespace serve::workload
