#include "workload/image_mixture.h"

#include <cmath>

namespace serve::workload {

hw::ImageSpec ImageMixture::mean_weighted_spec() const {
  if (entries_.empty()) throw std::logic_error("ImageMixture: empty mixture");
  double total = 0.0, w_sum = 0.0, h_sum = 0.0, b_sum = 0.0;
  for (const auto& [spec, w] : entries_) {
    total += w;
    w_sum += w * spec.width;
    h_sum += w * spec.height;
    b_sum += w * static_cast<double>(spec.compressed_bytes);
  }
  // add() rejects non-finite and non-positive weights, but the sum can still
  // overflow to infinity; a division by a non-finite (or, defensively,
  // non-positive) total would return garbage specs silently.
  if (!std::isfinite(total) || total <= 0.0) {
    throw std::logic_error("ImageMixture: weights must sum to a finite positive total");
  }
  return hw::ImageSpec{static_cast<int>(std::lround(w_sum / total)),
                       static_cast<int>(std::lround(h_sum / total)),
                       static_cast<std::int64_t>(b_sum / total)};
}

}  // namespace serve::workload
