// Workload image-size distributions.
//
// The paper benchmarks three representative ImageNet sizes (footnote 3) and
// argues servers must accept "images from many clients and different
// resolutions/sizes". ImageMixture samples ImageSpecs from a weighted set,
// letting experiments run fixed sizes or realistic mixes.
#pragma once

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hw/image_spec.h"
#include "sim/rng.h"

namespace serve::workload {

class ImageMixture {
 public:
  ImageMixture() = default;

  ImageMixture& add(hw::ImageSpec spec, double weight) {
    // `weight <= 0.0` alone would let NaN through (every comparison against
    // NaN is false) and poison both sampling and mean_weighted_spec.
    if (!std::isfinite(weight) || weight <= 0.0) {
      throw std::invalid_argument("ImageMixture: weight must be finite and positive");
    }
    entries_.emplace_back(spec, weight);
    return *this;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] hw::ImageSpec sample(sim::Rng& rng) const {
    if (entries_.empty()) throw std::logic_error("ImageMixture: empty mixture");
    std::vector<double> weights;
    weights.reserve(entries_.size());
    for (const auto& [spec, w] : entries_) weights.push_back(w);
    return entries_[rng.discrete(weights)].first;
  }

  [[nodiscard]] hw::ImageSpec mean_weighted_spec() const;

  /// One fixed size (the paper's per-size experiments).
  [[nodiscard]] static ImageMixture fixed(hw::ImageSpec spec) {
    ImageMixture m;
    m.add(spec, 1.0);
    return m;
  }

  /// ImageNet-like mix: mostly medium images, a tail of small thumbnails and
  /// occasional full-resolution photos.
  [[nodiscard]] static ImageMixture imagenet_like() {
    ImageMixture m;
    m.add(hw::kSmallImage, 0.15);
    m.add(hw::kMediumImage, 0.85 - 0.02);
    m.add(hw::kLargeImage, 0.02);
    return m;
  }

 private:
  std::vector<std::pair<hw::ImageSpec, double>> entries_;
};

}  // namespace serve::workload
