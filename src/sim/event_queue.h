// Pending-event set for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace serve::sim {

/// Min-heap of timestamped callbacks. Ties break by insertion order so the
/// simulation is fully deterministic.
class EventQueue {
 public:
  using Action = std::function<void()>;

  void push(Time t, Action action) {
    heap_.push(Item{t, next_seq_++, std::move(action)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] Time next_time() const noexcept {
    return heap_.empty() ? kInfiniteTime : heap_.top().t;
  }

  /// Removes and returns the earliest action; UB if empty (guarded by caller).
  std::pair<Time, Action> pop() {
    // std::priority_queue::top is const; the move is safe because we pop
    // immediately after — the const_cast touches an element being removed.
    auto& top = const_cast<Item&>(heap_.top());
    std::pair<Time, Action> out{top.t, std::move(top.action)};
    heap_.pop();
    return out;
  }

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    Action action;
    bool operator>(const Item& other) const noexcept {
      return t != other.t ? t > other.t : seq > other.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace serve::sim
