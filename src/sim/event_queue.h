// Pending-event set for the discrete-event simulator.
//
// Two tiers, both ordered by (time, seq) so the simulation stays fully
// deterministic:
//
//   - Near window: a calendar of kBuckets time buckets covering
//     [base, base + kBuckets << shift) ns. Pops in a discrete-event
//     simulation are monotone in time, so the window is re-anchored at the
//     last popped timestamp whenever it drains, and its bucket width adapts
//     to the push horizon actually observed (wait(1us) workloads get
//     narrow buckets, wait(5ms) workloads get wide ones). A push inside the
//     window is an O(1) append; buckets are sorted lazily when the pop
//     cursor reaches them (they are small), and a bitmap of non-empty
//     buckets makes cursor advance a find-first-set, not a scan.
//
//   - Far tier: a 4-ary implicit min-heap for events beyond the window
//     (request timeouts, experiment-end markers). pop() serves whichever
//     tier holds the smaller (time, seq) key, so a mis-sized window only
//     costs heap time — never correctness.
//
// Actions are SmallAction (captures inline, memcpy-relocatable), so neither
// tier allocates per event. Heap sifts use the hole technique (shift, then
// place): one item move per level rather than three.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/action.h"
#include "sim/time.h"

namespace serve::sim {

/// Min-queue of timestamped callbacks. Ties break by insertion order so the
/// simulation is fully deterministic.
class EventQueue {
 public:
  using Action = SmallAction;

  EventQueue() : buckets_(kBuckets) {}

  void push(Time t, Action action) {
    Item item{t, next_seq_++, std::move(action)};
    ++count_;
    if (window_items_ == 0 && (t >= window_end() || cursor_ > 0)) {
      // Window drained (or never started): re-anchor at the last popped
      // time and adapt the bucket width to the horizon the last window saw.
      rewindow();
    }
    const Time delta = t - last_pop_t_;
    if (delta > max_delta_) max_delta_ = delta;
    if (t < window_end()) {
      std::size_t b = static_cast<std::size_t>((t - base_) >> shift_);
      // Far pops can move last_pop_t_ into a gap behind the cursor; events
      // land in the cursor bucket instead of a bucket already passed.
      if (b < cursor_) b = cursor_;
      std::vector<Item>& bucket = buckets_[b];
      const std::uint64_t bit = 1ull << (b & 63);
      if (bucket.empty()) {
        sorted_[b >> 6] |= bit;  // a one-element bucket is sorted
        bucket.push_back(std::move(item));
      } else if (!before(item, bucket.back())) {
        // In-order append (the common case: monotone schedule times, and
        // same-time events arrive in seq order) — sortedness is preserved.
        bucket.push_back(std::move(item));
      } else if (b == cursor_ && (sorted_[b >> 6] & bit) != 0) {
        // Live, partially consumed bucket: insert before the first larger
        // key so already-popped items stay behind consume_idx_.
        const auto pos = std::upper_bound(
            bucket.begin() + static_cast<std::ptrdiff_t>(consume_idx_), bucket.end(), item,
            [](const Item& a, const Item& o) { return before(a, o); });
        bucket.insert(pos, std::move(item));
        nonempty_[b >> 6] |= bit;
        ++window_items_;
        return;
      } else {
        bucket.push_back(std::move(item));
        sorted_[b >> 6] &= ~bit;  // out of order; sort lazily at the cursor
      }
      nonempty_[b >> 6] |= bit;
      ++window_items_;
      return;
    }
    far_push(std::move(item));
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  /// Earliest pending timestamp (kInfiniteTime when empty). Non-const: may
  /// lazily sort the bucket under the cursor.
  [[nodiscard]] Time next_time() {
    if (count_ == 0) return kInfiniteTime;
    const Item* near = near_front();
    if (near == nullptr) return far_.front().t;
    if (far_.empty()) return near->t;
    return before(*near, far_.front()) ? near->t : far_.front().t;
  }

  /// Removes and returns the earliest action; UB if empty (guarded by caller).
  std::pair<Time, Action> pop() {
    Item* near = near_front();
    if (near != nullptr && (far_.empty() || before(*near, far_.front()))) {
      std::pair<Time, Action> out{near->t, std::move(near->action)};
      last_pop_t_ = near->t;
      --count_;
      --window_items_;
      ++consume_idx_;
      std::vector<Item>& bucket = buckets_[cursor_];
      if (consume_idx_ == bucket.size()) {
        bucket.clear();
        consume_idx_ = 0;
        nonempty_[cursor_ >> 6] &= ~(1ull << (cursor_ & 63));
      }
      return out;
    }
    std::pair<Time, Action> out = far_pop();
    last_pop_t_ = out.first;
    --count_;
    return out;
  }

 private:
  struct Item {
    Time t = 0;
    std::uint64_t seq = 0;
    Action action{};
  };

  static constexpr std::size_t kBuckets = 512;
  static constexpr int kInitialShift = 7;  ///< 128 ns buckets, ~65 us window
  static constexpr int kMaxShift = 16;     ///< caps the window at ~33.5 ms

  static bool before(const Item& a, const Item& b) noexcept {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  [[nodiscard]] Time window_end() const noexcept {
    return base_ + (static_cast<Time>(kBuckets) << shift_);
  }

  /// Starts a fresh window at the last popped time, sizing buckets so the
  /// previously observed push horizon fits with room to spare.
  void rewindow() noexcept {
    base_ = last_pop_t_;
    cursor_ = 0;
    consume_idx_ = 0;
    if (max_delta_ > 0) {
      const auto spread =
          static_cast<std::uint64_t>(max_delta_ / static_cast<Time>(kBuckets / 4) + 1);
      int s = 64 - std::countl_zero(spread);  // ceil(log2(spread)) + adjust
      if (s > kMaxShift) s = kMaxShift;
      shift_ = s;
    }
    max_delta_ = 0;
  }

  /// Positions the cursor on the next bucketed item (lazily sorting its
  /// bucket) and returns it; nullptr when the window holds nothing.
  [[nodiscard]] Item* near_front() {
    if (window_items_ == 0) return nullptr;
    std::vector<Item>& current = buckets_[cursor_];
    if (consume_idx_ >= current.size()) {
      // Advance to the next non-empty bucket via the bitmap.
      std::size_t word = cursor_ >> 6;
      std::uint64_t bits = nonempty_[word] & (~0ull << (cursor_ & 63));
      while (bits == 0) bits = nonempty_[++word];  // window_items_ > 0 => found
      cursor_ = (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      consume_idx_ = 0;
    }
    std::vector<Item>& bucket = buckets_[cursor_];
    const std::uint64_t bit = 1ull << (cursor_ & 63);
    if ((sorted_[cursor_ >> 6] & bit) == 0) {
      std::sort(bucket.begin(), bucket.end(),
                [](const Item& a, const Item& b) { return before(a, b); });
      sorted_[cursor_ >> 6] |= bit;
    }
    return &bucket[consume_idx_];
  }

  // --- far tier: 4-ary min-heap --------------------------------------------

  void far_push(Item item) {
    std::size_t i = far_.size();
    far_.emplace_back();  // hole; filled by the sift below
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(item, far_[parent])) break;
      far_[i] = std::move(far_[parent]);
      i = parent;
    }
    far_[i] = std::move(item);
  }

  std::pair<Time, Action> far_pop() {
    Item& root = far_.front();
    std::pair<Time, Action> out{root.t, std::move(root.action)};
    Item last = std::move(far_.back());
    far_.pop_back();
    if (!far_.empty()) {
      const std::size_t n = far_.size();
      std::size_t i = 0;  // hole left by the root
      for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (before(far_[c], far_[best])) best = c;
        }
        if (!before(far_[best], last)) break;
        far_[i] = std::move(far_[best]);
        i = best;
      }
      far_[i] = std::move(last);
    }
    return out;
  }

  std::vector<std::vector<Item>> buckets_;
  std::uint64_t nonempty_[kBuckets / 64] = {};  ///< bit b: bucket b has items
  std::uint64_t sorted_[kBuckets / 64] = {};    ///< bit b: bucket b is sorted
  std::size_t cursor_ = 0;       ///< current bucket
  std::size_t consume_idx_ = 0;  ///< next unpopped item in the cursor bucket
  std::size_t window_items_ = 0;
  Time base_ = 0;        ///< window start
  int shift_ = kInitialShift;
  Time last_pop_t_ = 0;  ///< monotone pop time; window re-anchors here
  Time max_delta_ = 0;   ///< largest (push t - last pop) seen this window

  std::vector<Item> far_;
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
};

}  // namespace serve::sim
