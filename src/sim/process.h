// Coroutine process type for the discrete-event simulator.
//
// A simulation process is a C++20 coroutine returning `Process`. It runs in
// virtual time by awaiting simulator primitives:
//
//   Process client(Simulator& sim, Channel<Request>& out) {
//     co_await sim.wait(milliseconds(1));
//     co_await out.put(Request{...});
//   }
//
// Processes are started with Simulator::spawn(), which takes ownership of the
// coroutine frame; frames self-destroy on completion and any frames still
// suspended when the Simulator is destroyed are reclaimed then.
//
// Hot-path machinery: frames allocate through the sim frame pool (spawn /
// retire churn recycles frames instead of hitting malloc), and each promise
// carries intrusive live-list links so the simulator tracks live processes
// without a hash set.
#pragma once

#include <coroutine>
#include <cstdio>
#include <exception>
#include <utility>

#include "sim/pool.h"

namespace serve::sim {

class Simulator;

class [[nodiscard]] Process {
 public:
  struct promise_type {
    Simulator* sim = nullptr;  ///< set by Simulator::spawn before first resume
    // Intrusive doubly-linked list of live processes, owned by the Simulator.
    promise_type* live_prev = nullptr;
    promise_type* live_next = nullptr;

    static void* operator new(std::size_t n) { return detail::frame_alloc(n); }
    static void operator delete(void* p, std::size_t n) noexcept {
      detail::frame_free(p, n);
    }

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      // Unregisters from the simulator and destroys the frame. After this
      // returns, control goes back to the resumer without touching `h`.
      // Defined below the class (needs the retire_process declaration).
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}

    [[noreturn]] void unhandled_exception() noexcept {
      // A throwing simulation process is a programming error: there is no
      // caller on the virtual stack to propagate to.
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fatal: exception escaped simulation process: %s\n", e.what());
      } catch (...) {
        std::fprintf(stderr, "fatal: unknown exception escaped simulation process\n");
      }
      std::terminate();
    }
  };

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Process() { destroy(); }

  /// Releases ownership of the coroutine handle (used by Simulator::spawn).
  [[nodiscard]] std::coroutine_handle<promise_type> detach() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  explicit Process(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {
void retire_process(Simulator& sim, Process::promise_type& p) noexcept;
}  // namespace detail

inline void Process::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) const noexcept {
  detail::retire_process(*h.promise().sim, h.promise());
}

}  // namespace serve::sim
