// Small-buffer callable for simulator events.
//
// Every event the simulator queues is "resume this coroutine" or a similarly
// tiny capture (a handle, an awaiter pointer, a generation counter), so a
// std::function — with its guaranteed-copyable erasure and larger footprint —
// pays for flexibility the event loop never uses. SmallAction is the
// move-only replacement: captures up to kInlineSize bytes live inside the
// object (no allocation per event), trivially-copyable captures relocate
// with a plain memcpy when the heap's 4-ary sift moves items, and oversized
// captures fall back to a heap box (counted in alloc_stats, and expected to
// be rare enough that the count is a red flag).
#pragma once

#include <cassert>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/pool.h"

namespace serve::sim {

class SmallAction {
 public:
  /// Inline capture capacity. Sized so an EventQueue item (time + seq +
  /// action) fills one 64-byte cache line.
  static constexpr std::size_t kInlineSize = 40;

  SmallAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallAction> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  SmallAction(F&& f) {  // NOLINT(google-explicit-constructor): callable sink
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = inline_vtable<Fn>();
    } else {
      ++alloc_stats().action_heap_allocs;
      auto* boxed = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &boxed, sizeof(boxed));
      vt_ = boxed_vtable<Fn>();
    }
  }

  SmallAction(SmallAction&& other) noexcept { adopt(other); }
  SmallAction& operator=(SmallAction&& other) noexcept {
    if (this != &other) {
      reset();
      adopt(other);
    }
    return *this;
  }
  SmallAction(const SmallAction&) = delete;
  SmallAction& operator=(const SmallAction&) = delete;
  ~SmallAction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() {
    assert(vt_ != nullptr);
    vt_->invoke(buf_);
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Move-constructs *dst from *src and destroys *src; nullptr means the
    /// stored bytes are trivially relocatable (plain memcpy).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;  ///< nullptr: trivially destructible
  };

  template <typename Fn>
  static const VTable* inline_vtable() noexcept {
    static constexpr VTable vt{
        [](void* self) { (*static_cast<Fn*>(self))(); },
        std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>
            ? nullptr
            : +[](void* dst, void* src) noexcept {
                ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
                static_cast<Fn*>(src)->~Fn();
              },
        std::is_trivially_destructible_v<Fn>
            ? nullptr
            : +[](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); },
    };
    return &vt;
  }

  template <typename Fn>
  static const VTable* boxed_vtable() noexcept {
    // buf_ holds a single Fn*; relocation is the pointer memcpy.
    static constexpr VTable vt{
        [](void* self) {
          Fn* boxed;
          std::memcpy(&boxed, self, sizeof(boxed));
          (*boxed)();
        },
        nullptr,
        [](void* self) noexcept {
          Fn* boxed;
          std::memcpy(&boxed, self, sizeof(boxed));
          delete boxed;
        },
    };
    return &vt;
  }

  /// Takes over `other`'s state; *this must be empty/destroyed beforehand.
  void adopt(SmallAction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      if (vt_->relocate != nullptr) {
        vt_->relocate(buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineSize);
      }
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr && vt_->destroy != nullptr) vt_->destroy(buf_);
    vt_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace serve::sim
