// Coordination primitives for simulation processes: broadcast Event and
// WaitGroup (structured completion of process fleets).
#pragma once

#include <coroutine>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace serve::sim {

/// Manual-reset broadcast event. `co_await ev.wait()` suspends until set();
/// set() wakes every waiter (through the event queue).
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool is_set() const noexcept { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_.post([h] { h.resume(); });
    waiters_.clear();
    for (TimedAwaiter* w : timed_waiters_) {
      sim_.cancel_timeout(w->timer);
      w->done = true;
      w->result = true;
      sim_.post([h = w->handle] { h.resume(); });
    }
    timed_waiters_.clear();
  }

  void reset() noexcept { set_ = false; }

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait() noexcept { return Awaiter{*this}; }

  /// Timed wait: resumes with true when set() fires, false at `deadline` if
  /// it never did — the primitive client-side request timeouts are built on.
  struct TimedAwaiter {
    Event& ev;
    Time deadline;
    bool result = false;
    bool done = false;  ///< set or timeout already decided
    std::coroutine_handle<> handle{};
    // Cancelable deadline timer (simulator-owned cell, no allocation).
    // set() cancels it when delivering, so the fire callback only ever runs
    // while the awaiter is still suspended and registered here.
    Simulator::TimerToken timer{};

    bool await_ready() {
      if (ev.set_) {
        result = true;
        done = true;
        return true;
      }
      if (deadline <= ev.sim_.now()) {
        done = true;
        return true;  // immediate timeout
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ev.timed_waiters_.push_back(this);
      timer = ev.sim_.schedule_timeout(
          deadline,
          [](void* self_v) {
            auto* self = static_cast<TimedAwaiter*>(self_v);
            self->timer = {};
            self->ev.remove_timed_waiter(self);
            self->done = true;
            self->handle.resume();
          },
          this);
    }
    bool await_resume() const noexcept { return result; }
  };
  [[nodiscard]] TimedAwaiter wait_until(Time deadline) noexcept {
    return TimedAwaiter{*this, deadline};
  }

 private:
  void remove_timed_waiter(TimedAwaiter* w) noexcept {
    for (auto it = timed_waiters_.begin(); it != timed_waiters_.end(); ++it) {
      if (*it == w) {
        timed_waiters_.erase(it);
        return;
      }
    }
  }

  Simulator& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<TimedAwaiter*> timed_waiters_;
};

/// Counts outstanding work; waiters resume when the count returns to zero.
///
///   WaitGroup wg{sim};
///   wg.add(n); spawn n processes that each call wg.done();
///   co_await wg.wait();
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : sim_(sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::uint64_t n = 1) noexcept { count_ += n; }

  void done() {
    if (count_ == 0) throw std::logic_error("WaitGroup::done: counter underflow");
    if (--count_ == 0) {
      for (auto h : waiters_) sim_.post([h] { h.resume(); });
      waiters_.clear();
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  struct Awaiter {
    WaitGroup& wg;
    bool await_ready() const noexcept { return wg.count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait() noexcept { return Awaiter{*this}; }

 private:
  Simulator& sim_;
  std::uint64_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace serve::sim
