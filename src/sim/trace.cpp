#include "sim/trace.h"

#include <charconv>
#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>

namespace serve::sim {

void TraceRecorder::span(std::string track, std::string name, Time begin, Time end) {
  span(std::move(track), std::move(name), begin, end, SpanArgs{});
}

void TraceRecorder::span(std::string track, std::string name, Time begin, Time end,
                         SpanArgs args) {
  if (end < begin) throw std::invalid_argument("TraceRecorder::span: end before begin");
  if (!admit()) return;
  spans_.push_back(Span{std::move(track), std::move(name), begin, end, std::move(args)});
}

void TraceRecorder::counter(std::string track, double value, Time t) {
  if (!admit()) return;
  counters_.push_back(CounterSample{std::move(track), value, t});
}

void TraceRecorder::instant(std::string track, std::string name, Time t) {
  instant(std::move(track), std::move(name), t, SpanArgs{});
}

void TraceRecorder::instant(std::string track, std::string name, Time t, SpanArgs args) {
  if (!admit()) return;
  instants_.push_back(Instant{std::move(track), std::move(name), t, std::move(args)});
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

/// Shortest round-trip decimal form (std::to_chars), so exported microsecond
/// timestamps reconstruct the exact virtual-time value instead of losing
/// precision to ostream's 6-significant-digit default.
void write_number(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

void write_args(std::ostream& os, const SpanArgs& args) {
  os << ",\"args\":{";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, k);
    os << ":";
    write_escaped(os, v);
  }
  os << "}";
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  // Stable thread ids per track, plus metadata naming each one.
  std::map<std::string, int> tids;
  auto tid_of = [&](const std::string& track) {
    auto [it, inserted] = tids.emplace(track, static_cast<int>(tids.size()) + 1);
    return it->second;
  };

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  for (const auto& s : spans_) {
    sep();
    os << R"({"ph":"X","pid":1,"tid":)" << tid_of(s.track) << ",\"name\":";
    write_escaped(os, s.name);
    os << ",\"ts\":";
    write_number(os, to_microseconds(s.begin));
    os << ",\"dur\":";
    write_number(os, to_microseconds(s.end - s.begin));
    if (!s.args.empty()) write_args(os, s.args);
    os << "}";
  }
  for (const auto& c : counters_) {
    sep();
    os << R"({"ph":"C","pid":1,"tid":)" << tid_of(c.track) << ",\"name\":";
    write_escaped(os, c.track);
    os << ",\"ts\":";
    write_number(os, to_microseconds(c.t));
    os << ",\"args\":{\"value\":";
    write_number(os, c.value);
    os << "}}";
  }
  for (const auto& i : instants_) {
    sep();
    // "s":"t" scopes the marker to its thread (track) lane.
    os << R"({"ph":"i","pid":1,"tid":)" << tid_of(i.track) << ",\"name\":";
    write_escaped(os, i.name);
    os << ",\"ts\":";
    write_number(os, to_microseconds(i.t));
    os << R"(,"s":"t")";
    if (!i.args.empty()) write_args(os, i.args);
    os << "}";
  }
  for (const auto& [track, tid] : tids) {
    sep();
    os << R"({"ph":"M","pid":1,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":)";
    write_escaped(os, track);
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace serve::sim
