#include "sim/trace.h"

#include <map>
#include <ostream>
#include <stdexcept>

namespace serve::sim {

void TraceRecorder::span(std::string track, std::string name, Time begin, Time end) {
  if (end < begin) throw std::invalid_argument("TraceRecorder::span: end before begin");
  spans_.push_back(Span{std::move(track), std::move(name), begin, end});
}

void TraceRecorder::counter(std::string track, double value, Time t) {
  counters_.push_back(CounterSample{std::move(track), value, t});
}

void TraceRecorder::instant(std::string track, std::string name, Time t) {
  instants_.push_back(Instant{std::move(track), std::move(name), t});
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  // Stable thread ids per track, plus metadata naming each one.
  std::map<std::string, int> tids;
  auto tid_of = [&](const std::string& track) {
    auto [it, inserted] = tids.emplace(track, static_cast<int>(tids.size()) + 1);
    return it->second;
  };

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  for (const auto& s : spans_) {
    sep();
    os << R"({"ph":"X","pid":1,"tid":)" << tid_of(s.track) << ",\"name\":";
    write_escaped(os, s.name);
    os << ",\"ts\":" << to_microseconds(s.begin)
       << ",\"dur\":" << to_microseconds(s.end - s.begin) << "}";
  }
  for (const auto& c : counters_) {
    sep();
    os << R"({"ph":"C","pid":1,"tid":)" << tid_of(c.track) << ",\"name\":";
    write_escaped(os, c.track);
    os << ",\"ts\":" << to_microseconds(c.t) << ",\"args\":{\"value\":" << c.value << "}}";
  }
  for (const auto& i : instants_) {
    sep();
    // "s":"t" scopes the marker to its thread (track) lane.
    os << R"({"ph":"i","pid":1,"tid":)" << tid_of(i.track) << ",\"name\":";
    write_escaped(os, i.name);
    os << ",\"ts\":" << to_microseconds(i.t) << R"(,"s":"t"})";
  }
  for (const auto& [track, tid] : tids) {
    sep();
    os << R"({"ph":"M","pid":1,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":)";
    write_escaped(os, track);
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace serve::sim
