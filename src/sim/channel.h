// Bounded FIFO channel connecting simulation processes (requests between
// pipeline stages, broker topics, batch hand-off).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/simulator.h"
#include "sim/time.h"

namespace serve::sim {

/// Thrown when putting into a closed channel.
class ChannelClosed : public std::runtime_error {
 public:
  ChannelClosed() : std::runtime_error("channel closed") {}
};

/// Single-threaded (virtual-time) bounded channel.
///
/// - `co_await ch.put(v)` suspends while the buffer is full.
/// - `co_await ch.get()` suspends while empty; returns std::nullopt once the
///   channel is closed and drained.
/// - `co_await ch.get_until(deadline)` additionally returns std::nullopt at
///   `deadline` if nothing arrived — the primitive the dynamic batcher uses
///   for max-queue-delay.
///
/// FIFO on both sides; all wake-ups are posted through the simulator queue.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim,
                   std::size_t capacity = std::numeric_limits<std::size_t>::max(),
                   std::string name = {})
      : sim_(sim), name_(std::move(name)), capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("Channel: capacity must be positive");
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t waiting_getters() const noexcept { return getters_.size(); }
  [[nodiscard]] std::size_t waiting_putters() const noexcept { return putters_.size(); }

  struct GetAwaiter {
    Channel& ch;
    Time deadline;                 ///< kInfiniteTime => wait forever
    std::optional<T> result{};
    bool done = false;             ///< result delivered or timeout/close decided
    std::coroutine_handle<> handle{};
    // Cancelable deadline timer (simulator-owned cell, no allocation). The
    // channel cancels it whenever it retires this waiter, so the fire
    // callback only ever runs while the awaiter is still suspended here.
    Simulator::TimerToken timer{};

    bool await_ready() {
      if (auto v = ch.try_get()) {
        result = std::move(v);
        done = true;
        return true;
      }
      if (ch.closed_) {
        done = true;  // closed and drained
        return true;
      }
      return deadline <= ch.sim_.now();  // immediate timeout
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.getters_.push_back(this);
      if (deadline != kInfiniteTime) {
        timer = ch.sim_.schedule_timeout(
            deadline,
            [](void* self_v) {
              auto* self = static_cast<GetAwaiter*>(self_v);
              self->timer = {};
              self->ch.remove_getter(self);
              self->done = true;
              self->handle.resume();
            },
            this);
      }
    }
    std::optional<T> await_resume() noexcept { return std::move(result); }
  };

  /// Observer invoked after every buffered-count change with the new size.
  /// Telemetry uses it to time-integrate queue depth (point samples alias on
  /// bursty queues); direct getter hand-offs never touch the buffer and are
  /// invisible here by design — they spend zero time queued.
  void set_size_observer(std::function<void(std::size_t)> observer) {
    size_observer_ = std::move(observer);
  }

  /// Waits for an element (forever, or until close).
  [[nodiscard]] GetAwaiter get() { return GetAwaiter{*this, kInfiniteTime}; }

  /// Waits until `deadline`; std::nullopt on timeout or close.
  [[nodiscard]] GetAwaiter get_until(Time deadline) { return GetAwaiter{*this, deadline}; }

  struct PutAwaiter {
    Channel& ch;
    T value;
    bool failed = false;  ///< channel closed while waiting
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (ch.closed_) throw ChannelClosed{};
      return ch.try_put_internal(std::move(value));
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.putters_.push_back(this);
    }
    void await_resume() {
      if (failed) throw ChannelClosed{};
    }
  };

  /// Suspends while full; throws ChannelClosed if the channel closes.
  [[nodiscard]] PutAwaiter put(T value) { return PutAwaiter{*this, std::move(value)}; }

  /// Non-blocking put; false if full (throws if closed).
  bool try_put(T value) {
    if (closed_) throw ChannelClosed{};
    return try_put_internal(std::move(value));
  }

  /// Non-blocking get.
  std::optional<T> try_get() {
    if (buffer_.empty()) {
      // Rendezvous with a waiting putter (possible when capacity was shrunk
      // conceptually; with capacity >= 1 putters only wait when full, so
      // buffer_ nonempty — this branch guards the general case).
      if (putters_.empty()) return std::nullopt;
      PutAwaiter* p = putters_.front();
      putters_.pop_front();
      std::optional<T> v{std::move(p->value)};
      sim_.post([h = p->handle] { h.resume(); });
      return v;
    }
    std::optional<T> v{std::move(buffer_.front())};
    buffer_.pop_front();
    // Refill from a waiting putter, preserving FIFO order.
    if (!putters_.empty()) {
      PutAwaiter* p = putters_.front();
      putters_.pop_front();
      buffer_.push_back(std::move(p->value));
      sim_.post([h = p->handle] { h.resume(); });
    }
    if (size_observer_) size_observer_(buffer_.size());
    return v;
  }

  /// Closes the channel: waiting getters resume with nullopt, waiting putters
  /// resume into ChannelClosed. Elements already buffered remain gettable.
  void close() {
    if (closed_) return;
    closed_ = true;
    for (GetAwaiter* g : getters_) {
      sim_.cancel_timeout(g->timer);
      g->done = true;
      sim_.post([h = g->handle] { h.resume(); });
    }
    getters_.clear();
    for (PutAwaiter* p : putters_) {
      p->failed = true;
      sim_.post([h = p->handle] { h.resume(); });
    }
    putters_.clear();
  }

 private:
  friend struct GetAwaiter;
  friend struct PutAwaiter;

  bool try_put_internal(T&& value) {
    // Direct hand-off to the oldest waiting getter.
    while (!getters_.empty()) {
      GetAwaiter* g = getters_.front();
      getters_.pop_front();
      sim_.cancel_timeout(g->timer);
      g->result = std::move(value);
      g->done = true;
      sim_.post([h = g->handle] { h.resume(); });
      return true;
    }
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(value));
      if (size_observer_) size_observer_(buffer_.size());
      return true;
    }
    return false;
  }

  void remove_getter(GetAwaiter* g) {
    for (auto it = getters_.begin(); it != getters_.end(); ++it) {
      if (*it == g) {
        getters_.erase(it);
        return;
      }
    }
  }

  Simulator& sim_;
  std::string name_;
  std::size_t capacity_;
  std::deque<T> buffer_;
  std::deque<GetAwaiter*> getters_;
  std::deque<PutAwaiter*> putters_;
  std::function<void(std::size_t)> size_observer_;
  bool closed_ = false;
};

}  // namespace serve::sim
