#include "sim/simulator.h"

#include <stdexcept>

namespace serve::sim {

namespace detail {
void retire_process(Simulator& sim, Process::promise_type& p) noexcept {
  if (p.live_prev != nullptr) {
    p.live_prev->live_next = p.live_next;
  } else {
    sim.live_head_ = p.live_next;
  }
  if (p.live_next != nullptr) p.live_next->live_prev = p.live_prev;
  --sim.live_count_;
  std::coroutine_handle<Process::promise_type>::from_promise(p).destroy();
}
}  // namespace detail

Simulator::~Simulator() {
  // Reclaim processes still suspended (e.g. servers waiting on channels that
  // outlive the experiment). Destroying a suspended coroutine is safe; the
  // frames' awaiter objects may reference channels/resources, but those are
  // plain members destroyed with the frame.
  for (Process::promise_type* p = live_head_; p != nullptr;) {
    Process::promise_type* next = p->live_next;
    std::coroutine_handle<Process::promise_type>::from_promise(*p).destroy();
    p = next;
  }
}

void Simulator::schedule_at(Time t, Action action) {
  if (t < now_) throw std::logic_error("Simulator::schedule_at: time is in the past");
  queue_.push(t, std::move(action));
}

void Simulator::spawn(Process p) {
  auto h = p.detach();
  Process::promise_type& pr = h.promise();
  pr.sim = this;
  pr.live_next = live_head_;
  if (live_head_ != nullptr) live_head_->live_prev = &pr;
  live_head_ = &pr;
  ++live_count_;
  // First resume goes through the queue so spawning mid-event never nests.
  queue_.push(now_, [h] { h.resume(); });
}

void Simulator::step() {
  auto [t, action] = queue_.pop();
  now_ = t;
  ++steps_;
  action();
}

std::uint64_t Simulator::run(std::uint64_t max_steps) {
  const std::uint64_t start = steps_;
  while (!queue_.empty()) {
    if (steps_ - start >= max_steps) {
      throw std::runtime_error("Simulator::run: step limit exceeded (runaway simulation?)");
    }
    step();
  }
  return steps_ - start;
}

std::uint64_t Simulator::run_until(Time t, std::uint64_t max_steps) {
  const std::uint64_t start = steps_;
  while (!queue_.empty() && queue_.next_time() <= t) {
    if (steps_ - start >= max_steps) {
      throw std::runtime_error("Simulator::run_until: step limit exceeded");
    }
    step();
  }
  if (now_ < t) now_ = t;
  return steps_ - start;
}

}  // namespace serve::sim
