#include "sim/simulator.h"

#include <stdexcept>

namespace serve::sim {

namespace detail {
void retire_process(Simulator& sim, std::coroutine_handle<> h) noexcept {
  sim.live_.erase(h.address());
  h.destroy();
}
}  // namespace detail

Simulator::~Simulator() {
  // Reclaim processes still suspended (e.g. servers waiting on channels that
  // outlive the experiment). Destroying a suspended coroutine is safe; the
  // frames' awaiter objects may reference channels/resources, but those are
  // plain members destroyed with the frame.
  for (void* addr : live_) {
    std::coroutine_handle<>::from_address(addr).destroy();
  }
}

void Simulator::schedule_at(Time t, Action action) {
  if (t < now_) throw std::logic_error("Simulator::schedule_at: time is in the past");
  queue_.push(t, std::move(action));
}

void Simulator::spawn(Process p) {
  auto h = p.detach();
  h.promise().sim = this;
  live_.insert(h.address());
  // First resume goes through the queue so spawning mid-event never nests.
  queue_.push(now_, [h] { h.resume(); });
}

void Simulator::step() {
  auto [t, action] = queue_.pop();
  now_ = t;
  ++steps_;
  action();
}

std::uint64_t Simulator::run(std::uint64_t max_steps) {
  const std::uint64_t start = steps_;
  while (!queue_.empty()) {
    if (steps_ - start >= max_steps) {
      throw std::runtime_error("Simulator::run: step limit exceeded (runaway simulation?)");
    }
    step();
  }
  return steps_ - start;
}

std::uint64_t Simulator::run_until(Time t, std::uint64_t max_steps) {
  const std::uint64_t start = steps_;
  while (!queue_.empty() && queue_.next_time() <= t) {
    if (steps_ - start >= max_steps) {
      throw std::runtime_error("Simulator::run_until: step limit exceeded");
    }
    step();
  }
  if (now_ < t) now_ = t;
  return steps_ - start;
}

}  // namespace serve::sim
