// The discrete-event simulation kernel.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <unordered_set>

#include "sim/event_queue.h"
#include "sim/process.h"
#include "sim/time.h"

namespace serve::sim {

/// Single-threaded deterministic discrete-event simulator.
///
/// Owns the virtual clock, the pending-event set, and every live coroutine
/// process. All wake-ups go through the event queue (never nested resumes),
/// so execution order is a pure function of (spawn order, event times) and
/// stack depth stays bounded.
class Simulator {
 public:
  using Action = EventQueue::Action;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t live_processes() const noexcept { return live_.size(); }

  /// Enqueues `action` to run at the current virtual time (after already
  /// pending same-time events).
  void post(Action action) { queue_.push(now_, std::move(action)); }

  /// Enqueues `action` at absolute time `t` (must not be in the past).
  void schedule_at(Time t, Action action);

  /// Enqueues `action` after `delay`.
  void schedule_after(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Starts a coroutine process. The first step runs from the event loop at
  /// the current virtual time.
  void spawn(Process p);

  /// Awaitable that suspends the calling process for `delay` virtual time.
  struct DelayAwaiter {
    Simulator& sim;
    Time delay;
    bool await_ready() const noexcept { return delay <= 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.schedule_after(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DelayAwaiter wait(Time delay) noexcept { return {*this, delay}; }

  /// Runs until the event queue drains. Returns the number of events
  /// executed. Throws std::runtime_error if `max_steps` is exceeded
  /// (runaway-simulation guard).
  std::uint64_t run(std::uint64_t max_steps = kDefaultStepLimit);

  /// Runs all events with timestamp <= t, then advances the clock to t.
  std::uint64_t run_until(Time t, std::uint64_t max_steps = kDefaultStepLimit);

  static constexpr std::uint64_t kDefaultStepLimit = 2'000'000'000;

 private:
  friend void detail::retire_process(Simulator&, std::coroutine_handle<>) noexcept;

  void step();

  Time now_ = 0;
  std::uint64_t steps_ = 0;
  EventQueue queue_;
  std::unordered_set<void*> live_;  ///< addresses of live process frames
};

}  // namespace serve::sim
