// The discrete-event simulation kernel.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/process.h"
#include "sim/time.h"

namespace serve::sim {

/// Single-threaded deterministic discrete-event simulator.
///
/// Owns the virtual clock, the pending-event set, and every live coroutine
/// process. All wake-ups go through the event queue (never nested resumes),
/// so execution order is a pure function of (spawn order, event times) and
/// stack depth stays bounded.
class Simulator {
 public:
  using Action = EventQueue::Action;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t live_processes() const noexcept { return live_count_; }

  /// Enqueues `action` to run at the current virtual time (after already
  /// pending same-time events).
  void post(Action action) { queue_.push(now_, std::move(action)); }

  /// Enqueues `action` at absolute time `t` (must not be in the past).
  void schedule_at(Time t, Action action);

  /// Enqueues `action` after `delay`.
  void schedule_after(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Starts a coroutine process. The first step runs from the event loop at
  /// the current virtual time.
  void spawn(Process p);

  /// Awaitable that suspends the calling process for `delay` virtual time.
  struct DelayAwaiter {
    Simulator& sim;
    Time delay;
    bool await_ready() const noexcept { return delay <= 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.schedule_after(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DelayAwaiter wait(Time delay) noexcept { return {*this, delay}; }

  /// Handle for a cancelable timeout (see schedule_timeout). Default state
  /// is "not armed"; cancel on an unarmed or already-fired token is a no-op.
  struct TimerToken {
    static constexpr std::uint32_t kNoTimer = 0xFFFFFFFFu;
    std::uint32_t index = kNoTimer;
    std::uint64_t gen = 0;
    [[nodiscard]] bool armed() const noexcept { return index != kNoTimer; }
  };

  /// Schedules `fire(ctx)` at `deadline` unless the token is cancelled
  /// first. The control cell lives inside the simulator (stable storage with
  /// a generation counter), so timed waits need no heap guard object: the
  /// registrant may die after cancelling, the owner may die after the timer
  /// fires, and a cancelled timer firing is a cheap no-op. `fire` must only
  /// dereference `ctx` via state that cancellation keeps in sync (the
  /// channel/event primitives cancel whenever they retire a waiter).
  TimerToken schedule_timeout(Time deadline, void (*fire)(void*), void* ctx) {
    std::uint32_t idx;
    if (!timer_free_.empty()) {
      idx = timer_free_.back();
      timer_free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(timer_cells_.size());
      timer_cells_.emplace_back();
    }
    TimerCell& cell = timer_cells_[idx];
    cell.fire = fire;
    cell.ctx = ctx;
    const TimerToken tok{idx, cell.gen};
    schedule_at(deadline, [this, idx, gen = cell.gen] { fire_timeout(idx, gen); });
    return tok;
  }

  /// Disarms a pending timeout; no-op if it already fired or was never armed.
  void cancel_timeout(TimerToken tok) {
    if (!tok.armed() || timer_cells_[tok.index].gen != tok.gen) return;
    release_timer_cell(tok.index);
  }

  /// Runs until the event queue drains. Returns the number of events
  /// executed. Throws std::runtime_error if `max_steps` is exceeded
  /// (runaway-simulation guard).
  std::uint64_t run(std::uint64_t max_steps = kDefaultStepLimit);

  /// Runs all events with timestamp <= t, then advances the clock to t.
  std::uint64_t run_until(Time t, std::uint64_t max_steps = kDefaultStepLimit);

  static constexpr std::uint64_t kDefaultStepLimit = 2'000'000'000;

 private:
  friend void detail::retire_process(Simulator&, Process::promise_type&) noexcept;

  struct TimerCell {
    std::uint64_t gen = 0;  ///< bumped on release; stale tokens/events no-op
    void (*fire)(void*) = nullptr;
    void* ctx = nullptr;
  };

  void fire_timeout(std::uint32_t idx, std::uint64_t gen) {
    TimerCell& cell = timer_cells_[idx];
    if (cell.gen != gen) return;  // cancelled (or cell since recycled)
    void (*f)(void*) = cell.fire;
    void* c = cell.ctx;
    release_timer_cell(idx);
    f(c);
  }

  void release_timer_cell(std::uint32_t idx) {
    ++timer_cells_[idx].gen;
    timer_free_.push_back(idx);
  }

  void step();

  Time now_ = 0;
  std::uint64_t steps_ = 0;
  EventQueue queue_;
  /// Intrusive doubly-linked list of live process promises (links live in
  /// the promise itself — no per-spawn container allocation).
  Process::promise_type* live_head_ = nullptr;
  std::size_t live_count_ = 0;
  std::vector<TimerCell> timer_cells_;      ///< slab; grows to peak timed waits
  std::vector<std::uint32_t> timer_free_;   ///< recycled cell indices
};

}  // namespace serve::sim
