// Deterministic fault-injection schedule for the simulated serving stack.
//
// A FaultPlan is a set of time windows, each describing one fault class
// acting on one target (a GPU index, a broker instance, or every instance of
// a device class). Components consult the plan at decision points:
//
//   - hw::GpuModel / hw::Platform scale PCIe transfer times by the active
//     kPcieDegradation multiplier;
//   - hw::CpuModel scales preprocessing-worker service times by the active
//     kPreprocSlowdown multiplier;
//   - serving::InferenceServer fails or holds batches dispatched inside a
//     kGpuFailure window and reroutes around failed GPUs;
//   - the experiment runner shrinks/restores GPU staging budgets at
//     kGpuMemoryShrink window edges (forced eviction storms);
//   - broker::SimBroker fails publishes and stalls deliveries inside a
//     kBrokerOutage window;
//   - the fleet balancer (core/fleet.*) consults kNodeCrash,
//     kNodeGrayFailure, and kNodePartition windows (target = node index)
//     when dispatching, probing, and awaiting responses from fleet nodes;
//   - per-request payload corruption is a seeded Bernoulli draw keyed by the
//     request id, so the same (seed, probability) corrupts the same requests
//     on every run regardless of scheduling.
//
// The plan is immutable during a run and everything it decides is a pure
// function of (plan, virtual time, request id) — simulations with faults are
// exactly as reproducible as healthy ones.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace serve::sim {

enum class FaultKind : std::uint8_t {
  kGpuFailure,       ///< GPU instance down: batches fail or wait for recovery
  kPreprocSlowdown,  ///< CPU preprocessing workers run `magnitude` times slower
  kPcieDegradation,  ///< PCIe transfers take `magnitude` times longer
  kGpuMemoryShrink,  ///< staging budget scaled to `magnitude` (fraction kept)
  kBrokerOutage,     ///< broker publishes fail, deliveries stall
  // Node-scoped fleet faults (target = node index, consulted by the balancer):
  kNodeCrash,        ///< node refuses dispatches, responses in flight are lost
  kNodeGrayFailure,  ///< node stays "up" but only serves `magnitude` of requests
  kNodePartition,    ///< balancer<->node link delays traffic by `magnitude` s
  kCount
};

[[nodiscard]] constexpr std::string_view fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kGpuFailure: return "gpu-failure";
    case FaultKind::kPreprocSlowdown: return "preproc-slowdown";
    case FaultKind::kPcieDegradation: return "pcie-degradation";
    case FaultKind::kGpuMemoryShrink: return "gpu-memory-shrink";
    case FaultKind::kBrokerOutage: return "broker-outage";
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeGrayFailure: return "node-gray-failure";
    case FaultKind::kNodePartition: return "node-partition";
    case FaultKind::kCount: break;
  }
  return "?";
}

/// One fault episode: `kind` acts on `target` during [begin, end).
struct FaultWindow {
  FaultKind kind = FaultKind::kGpuFailure;
  int target = kAllTargets;  ///< device/broker index, or every instance
  Time begin = 0;
  Time end = 0;
  double magnitude = 1.0;  ///< slowdown multiplier or budget fraction

  static constexpr int kAllTargets = -1;

  [[nodiscard]] bool covers(int t, Time now) const noexcept {
    return (target == kAllTargets || t == target || t == kAllTargets) && now >= begin &&
           now < end;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // --- schedule construction -------------------------------------------------

  void add(FaultWindow w) {
    if (w.end <= w.begin) throw std::invalid_argument("FaultPlan: window end must follow begin");
    if (w.magnitude <= 0.0) throw std::invalid_argument("FaultPlan: magnitude must be positive");
    windows_.push_back(w);
  }

  void gpu_failure(int gpu, Time begin, Time end) {
    add({FaultKind::kGpuFailure, gpu, begin, end, 1.0});
  }
  void preproc_slowdown(Time begin, Time end, double factor) {
    if (factor < 1.0) throw std::invalid_argument("FaultPlan: slowdown factor must be >= 1");
    add({FaultKind::kPreprocSlowdown, FaultWindow::kAllTargets, begin, end, factor});
  }
  void pcie_degradation(Time begin, Time end, double factor) {
    if (factor < 1.0) throw std::invalid_argument("FaultPlan: slowdown factor must be >= 1");
    add({FaultKind::kPcieDegradation, FaultWindow::kAllTargets, begin, end, factor});
  }
  void gpu_memory_shrink(int gpu, Time begin, Time end, double keep_fraction) {
    if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
      throw std::invalid_argument("FaultPlan: keep fraction must be in (0, 1]");
    }
    add({FaultKind::kGpuMemoryShrink, gpu, begin, end, keep_fraction});
  }
  void broker_outage(Time begin, Time end) {
    add({FaultKind::kBrokerOutage, FaultWindow::kAllTargets, begin, end, 1.0});
  }
  void node_crash(int node, Time begin, Time end) {
    add({FaultKind::kNodeCrash, node, begin, end, 1.0});
  }
  /// The node keeps answering health probes but only serves `serve_fraction`
  /// of its dispatches; the rest fast-fail at the node frontend. The fast
  /// failures keep its queue short — the configuration that fools
  /// join-the-shortest-queue into sending it *more* traffic.
  void node_gray_failure(int node, Time begin, Time end, double serve_fraction) {
    if (serve_fraction <= 0.0 || serve_fraction > 1.0) {
      throw std::invalid_argument("FaultPlan: serve fraction must be in (0, 1]");
    }
    add({FaultKind::kNodeGrayFailure, node, begin, end, serve_fraction});
  }
  /// Every dispatch and response crossing the balancer<->node link during
  /// the window is delayed by `delay_s` seconds (each direction).
  void node_partition(int node, Time begin, Time end, double delay_s) {
    if (delay_s <= 0.0) throw std::invalid_argument("FaultPlan: partition delay must be > 0");
    add({FaultKind::kNodePartition, node, begin, end, delay_s});
  }

  /// Corrupts each request's payload with probability `p`, decided by a
  /// seeded hash of the request id (scheduling-independent).
  void set_payload_corruption(double p, std::uint64_t seed) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("FaultPlan: probability in [0, 1]");
    corruption_p_ = p;
    corruption_seed_ = seed;
  }

  // --- queries ---------------------------------------------------------------

  [[nodiscard]] bool active(FaultKind k, int target, Time now) const noexcept {
    for (const FaultWindow& w : windows_) {
      if (w.kind == k && w.covers(target, now)) return true;
    }
    return false;
  }

  /// Product of the magnitudes of every active window of `k` on `target`
  /// (1.0 when none is active) — the service-time multiplier hw models apply.
  [[nodiscard]] double multiplier(FaultKind k, int target, Time now) const noexcept {
    double m = 1.0;
    for (const FaultWindow& w : windows_) {
      if (w.kind == k && w.covers(target, now)) m *= w.magnitude;
    }
    return m;
  }

  /// Latest end among the currently active windows of `k` on `target`
  /// (`now` when none is active) — when a holder should re-check.
  [[nodiscard]] Time active_until(FaultKind k, int target, Time now) const noexcept {
    Time until = now;
    for (const FaultWindow& w : windows_) {
      if (w.kind == k && w.covers(target, now) && w.end > until) until = w.end;
    }
    return until;
  }

  /// Earliest begin strictly after `from` among windows of `k` on `target`
  /// (kNever when none remains) — how long an in-flight response to a node
  /// can safely be awaited before a crash would swallow it.
  [[nodiscard]] Time next_begin(FaultKind k, int target, Time from) const noexcept {
    Time next = kNever;
    for (const FaultWindow& w : windows_) {
      if (w.kind == k && (w.target == FaultWindow::kAllTargets || w.target == target) &&
          w.begin > from && w.begin < next) {
        next = w.begin;
      }
    }
    return next;
  }
  static constexpr Time kNever = std::numeric_limits<Time>::max();

  /// One-way balancer<->node link delay in seconds (max over the active
  /// kNodePartition windows; 0.0 when the link is healthy).
  [[nodiscard]] double partition_delay_s(int node, Time now) const noexcept {
    double d = 0.0;
    for (const FaultWindow& w : windows_) {
      if (w.kind == FaultKind::kNodePartition && w.covers(node, now) && w.magnitude > d) {
        d = w.magnitude;
      }
    }
    return d;
  }

  /// Deterministic per-request verdict inside a gray-failure window: does
  /// `node` actually serve this dispatch? True (serve) with probability
  /// `magnitude`, keyed by (request id, node) so the same requests fail on
  /// every run regardless of scheduling. True when no window is active.
  [[nodiscard]] bool gray_serves(int node, std::uint64_t request_id, Time now) const noexcept {
    double serve_fraction = 1.0;
    for (const FaultWindow& w : windows_) {
      if (w.kind == FaultKind::kNodeGrayFailure && w.covers(node, now) &&
          w.magnitude < serve_fraction) {
        serve_fraction = w.magnitude;
      }
    }
    if (serve_fraction >= 1.0) return true;
    const std::uint64_t z =
        splitmix(request_id * 0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(node) + 1));
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return u < serve_fraction;
  }

  [[nodiscard]] double corruption_probability() const noexcept { return corruption_p_; }

  /// Deterministic per-request corruption verdict.
  [[nodiscard]] bool corrupts_payload(std::uint64_t request_id) const noexcept {
    if (corruption_p_ <= 0.0) return false;
    const double u =
        static_cast<double>(splitmix(corruption_seed_ ^ request_id) >> 11) * 0x1.0p-53;
    return u < corruption_p_;
  }

  /// Seed for the per-request byte-mutation stream (independent of the
  /// corruption verdict draw).
  [[nodiscard]] std::uint64_t corruption_stream(std::uint64_t request_id) const noexcept {
    return splitmix(splitmix(corruption_seed_ ^ request_id) + 0x632be59bd9b4e019ULL);
  }

  [[nodiscard]] const std::vector<FaultWindow>& windows() const noexcept { return windows_; }
  [[nodiscard]] bool empty() const noexcept {
    return windows_.empty() && corruption_p_ <= 0.0;
  }

  /// Schedules `cb(window, is_begin)` at every window edge (used to apply
  /// state-changing faults such as staging-budget shrinks). Edges in the past
  /// fire immediately at the current virtual time.
  void schedule_transitions(Simulator& sim,
                            std::function<void(const FaultWindow&, bool)> cb) const {
    for (const FaultWindow& w : windows_) {
      const Time begin = w.begin < sim.now() ? sim.now() : w.begin;
      const Time end = w.end < sim.now() ? sim.now() : w.end;
      sim.schedule_at(begin, [cb, w] { cb(w, true); });
      sim.schedule_at(end, [cb, w] { cb(w, false); });
    }
  }

  /// Emits every window's open/close as instant markers on the trace's
  /// "faults" track ("gpu-failure open" / "gpu-failure close"), so Perfetto
  /// lines fault edges up against the per-request spans. Edges are recorded
  /// directly (not scheduled) — the trace orders by timestamp, not insertion.
  void annotate(TraceRecorder& trace) const {
    for (const FaultWindow& w : windows_) {
      std::string base{fault_kind_name(w.kind)};
      if (w.target != FaultWindow::kAllTargets) base += "[" + std::to_string(w.target) + "]";
      trace.instant("faults", base + " open", w.begin);
      trace.instant("faults", base + " close", w.end);
    }
  }

 private:
  [[nodiscard]] static std::uint64_t splitmix(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::vector<FaultWindow> windows_;
  double corruption_p_ = 0.0;
  std::uint64_t corruption_seed_ = 0;
};

}  // namespace serve::sim
