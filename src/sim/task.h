// Awaitable sub-coroutine type for composing simulation logic.
//
// Process is fire-and-forget (owned by the simulator); Task<T> is the
// complementary primitive: a lazily-started coroutine awaited by exactly one
// parent, returning a value. Use it to factor pipeline fragments:
//
//   sim::Task<> publish(Message m) { ... co_await io_.acquire(); ... }
//   sim::Process producer(...) { co_await broker.publish(m); }
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/pool.h"

namespace serve::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  // Task frames churn once per pipeline fragment per request; route them
  // through the sim frame pool (inherited by the concrete promise types).
  static void* operator new(std::size_t n) { return detail::frame_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    detail::frame_free(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    // Symmetric transfer back to the awaiting parent.
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto& base = static_cast<TaskPromiseBase&>(h.promise());
      return base.continuation ? base.continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// Lazily-started awaitable coroutine returning T. Must be co_awaited
/// exactly once (asserted); exceptions propagate to the awaiter.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value{};
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;  // start the child now
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    assert(p.value.has_value());
    return std::move(*p.value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

/// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().error) std::rethrow_exception(handle_.promise().error);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace serve::sim
