// Virtual-time trace recording with Chrome trace-event export.
//
// Records three kinds of events:
//  - spans: named intervals on a named track ("gpu0.compute: batch x64");
//  - counters: numeric time series ("cpu.cores in_use") rendered as stacked
//    charts by chrome://tracing / Perfetto;
//  - instants: zero-duration markers ("fault pcie_degrade begin", "breaker
//    open") that line state transitions up against the per-request spans.
//
// Load the emitted JSON in chrome://tracing (or ui.perfetto.dev) to see the
// serving pipeline's device occupancy over virtual time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace serve::sim {

class TraceRecorder {
 public:
  /// Records a completed span [begin, end] on `track`.
  void span(std::string track, std::string name, Time begin, Time end);

  /// Records a counter sample (step function between samples).
  void counter(std::string track, double value, Time t);

  /// Records an instantaneous marker at time `t` on `track`.
  void instant(std::string track, std::string name, Time t);

  [[nodiscard]] std::size_t span_count() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t counter_count() const noexcept { return counters_.size(); }
  [[nodiscard]] std::size_t instant_count() const noexcept { return instants_.size(); }
  [[nodiscard]] bool empty() const noexcept {
    return spans_.empty() && counters_.empty() && instants_.empty();
  }

  void clear() noexcept {
    spans_.clear();
    counters_.clear();
    instants_.clear();
  }

  /// Chrome trace-event JSON ("traceEvents" array form). Tracks become
  /// thread names; spans are "X" events, counters "C" events.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Span {
    std::string track;
    std::string name;
    Time begin;
    Time end;
  };
  struct CounterSample {
    std::string track;
    double value;
    Time t;
  };
  struct Instant {
    std::string track;
    std::string name;
    Time t;
  };

  std::vector<Span> spans_;
  std::vector<CounterSample> counters_;
  std::vector<Instant> instants_;
};

}  // namespace serve::sim
