// Virtual-time trace recording with Chrome trace-event export.
//
// Records three kinds of events:
//  - spans: named intervals on a named track ("gpu0.compute: batch x64"),
//    optionally carrying string args (trace/span ids, blame annotations);
//  - counters: numeric time series ("cpu.cores in_use") rendered as stacked
//    charts by chrome://tracing / Perfetto;
//  - instants: zero-duration markers ("fault pcie_degrade begin", "breaker
//    open") that line state transitions up against the per-request spans.
//
// Memory is bounded: past `max_events` (spans + counters + instants
// combined) new events are dropped and counted in `dropped_events()`, so a
// long recorded run cannot grow the trace without bound. The drop decision
// depends only on the event sequence, which is deterministic in virtual
// time — same-seed runs drop the same events.
//
// Load the emitted JSON in chrome://tracing (or ui.perfetto.dev) to see the
// serving pipeline's device occupancy over virtual time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace serve::sim {

/// Ordered key/value annotations attached to a span or instant; exported as
/// the Chrome trace event's "args" object (all values as JSON strings).
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

class TraceRecorder {
 public:
  /// Default event cap: ~a few hundred MB of JSON worst case, far above any
  /// bench harness, but a hard stop for runaway recorded runs.
  static constexpr std::size_t kDefaultMaxEvents = 4'000'000;

  /// Records a completed span [begin, end] on `track`.
  void span(std::string track, std::string name, Time begin, Time end);
  void span(std::string track, std::string name, Time begin, Time end, SpanArgs args);

  /// Records a counter sample (step function between samples).
  void counter(std::string track, double value, Time t);

  /// Records an instantaneous marker at time `t` on `track`.
  void instant(std::string track, std::string name, Time t);
  void instant(std::string track, std::string name, Time t, SpanArgs args);

  [[nodiscard]] std::size_t span_count() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t counter_count() const noexcept { return counters_.size(); }
  [[nodiscard]] std::size_t instant_count() const noexcept { return instants_.size(); }
  [[nodiscard]] bool empty() const noexcept {
    return spans_.empty() && counters_.empty() && instants_.empty();
  }

  /// Caps spans + counters + instants combined; events past the cap are
  /// dropped (and counted). Lowering the cap below the current event count
  /// keeps what is already recorded.
  void set_max_events(std::size_t cap) noexcept { max_events_ = cap; }
  [[nodiscard]] std::size_t max_events() const noexcept { return max_events_; }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t event_count() const noexcept {
    return spans_.size() + counters_.size() + instants_.size();
  }

  void clear() noexcept {
    spans_.clear();
    counters_.clear();
    instants_.clear();
    dropped_ = 0;
  }

  /// Chrome trace-event JSON ("traceEvents" array form). Tracks become
  /// thread names; spans are "X" events, counters "C" events. Timestamps are
  /// microseconds printed with round-trip precision, so virtual-time ns
  /// survive export exactly and same-seed runs emit byte-identical files.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Span {
    std::string track;
    std::string name;
    Time begin;
    Time end;
    SpanArgs args;
  };
  struct CounterSample {
    std::string track;
    double value;
    Time t;
  };
  struct Instant {
    std::string track;
    std::string name;
    Time t;
    SpanArgs args;
  };

  [[nodiscard]] bool admit() noexcept {
    if (event_count() >= max_events_) {
      ++dropped_;
      return false;
    }
    return true;
  }

  std::size_t max_events_ = kDefaultMaxEvents;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
  std::vector<CounterSample> counters_;
  std::vector<Instant> instants_;
};

}  // namespace serve::sim
