// Size-bucketed free-list allocator for the simulator's per-request hot
// path: coroutine frames (Process / Task promises opt in via operator
// new/delete) and anything else that churns at event rate.
//
// Design: thread-local singly-linked free lists in 64-byte size classes up
// to 4 KiB; larger blocks fall through to the global heap. A freed block is
// pushed on its class's list and handed back on the next allocation of the
// same class, so steady-state simulation (spawn request -> retire request)
// recycles the same few frames instead of round-tripping malloc. Lists are
// released when the owning thread exits.
//
// `alloc_stats()` exposes the counters the sim_microbench reports
// (allocations per simulated request); they are plain (non-atomic) because
// each thread only ever touches its own lists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace serve::sim {

/// Allocation counters for the calling thread (monotonic; never reset by the
/// pool itself — benchmarks snapshot deltas).
struct AllocStats {
  std::uint64_t frame_allocs = 0;       ///< pooled-alloc requests (frames)
  std::uint64_t frame_pool_hits = 0;    ///< served from a free list
  std::uint64_t frame_heap_allocs = 0;  ///< fell through to operator new
  std::uint64_t action_heap_allocs = 0; ///< SmallAction captures too big to inline
};

inline AllocStats& alloc_stats() noexcept {
  static thread_local AllocStats stats;
  return stats;
}

namespace detail {

inline constexpr std::size_t kPoolGranularity = 64;
inline constexpr std::size_t kPoolMaxSize = 4096;
inline constexpr std::size_t kPoolBuckets = kPoolMaxSize / kPoolGranularity;

struct FreeNode {
  FreeNode* next;
};

struct FramePool {
  FreeNode* buckets[kPoolBuckets] = {};

  ~FramePool() {
    for (FreeNode* head : buckets) {
      while (head != nullptr) {
        FreeNode* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }
};

inline FramePool& frame_pool() noexcept {
  static thread_local FramePool pool;
  return pool;
}

/// Bucket index for a request of `n` bytes, or kPoolBuckets when too big.
inline std::size_t pool_bucket(std::size_t n) noexcept {
  return n == 0 ? 0 : (n - 1) / kPoolGranularity;
}

inline void* frame_alloc(std::size_t n) {
  AllocStats& stats = alloc_stats();
  ++stats.frame_allocs;
  const std::size_t b = pool_bucket(n);
  if (b < kPoolBuckets) {
    FreeNode*& head = frame_pool().buckets[b];
    if (head != nullptr) {
      ++stats.frame_pool_hits;
      void* p = head;
      head = head->next;
      return p;
    }
    ++stats.frame_heap_allocs;
    return ::operator new((b + 1) * kPoolGranularity);
  }
  ++stats.frame_heap_allocs;
  return ::operator new(n);
}

inline void frame_free(void* p, std::size_t n) noexcept {
  const std::size_t b = pool_bucket(n);
  if (b < kPoolBuckets) {
    FreeNode*& head = frame_pool().buckets[b];
    auto* node = static_cast<FreeNode*>(p);
    node->next = head;
    head = node;
    return;
  }
  ::operator delete(p);
}

}  // namespace detail

}  // namespace serve::sim
