// Deterministic random-number generation for workloads.
//
// We ship our own generator (xoshiro256++) and inverse-transform samplers so
// that simulation runs are bit-reproducible across standard libraries —
// std::<distribution> output is implementation-defined.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace serve::sim {

/// xoshiro256++ PRNG seeded through SplitMix64. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion avoids correlated all-zero-ish states.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return UINT64_MAX; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Exponential with given rate (mean = 1/rate). Inverse transform.
  double exponential(double rate) noexcept {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Standard normal via Box-Muller (caches the second deviate).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1;
    do { u1 = uniform(); } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Log-normal parameterized by the underlying normal's (mu, sigma).
  double lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

  /// Poisson-distributed count (Knuth's method; fine for lambda < ~50).
  std::uint64_t poisson(double lambda) noexcept {
    const double limit = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }

  /// Samples an index from unnormalized weights (linear scan CDF).
  std::size_t discrete(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      if (w < 0.0) throw std::invalid_argument("Rng::discrete: negative weight");
      total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::discrete: zero total weight");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Forks an independent deterministic child stream.
  [[nodiscard]] Rng fork() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace serve::sim
