// Virtual-time representation for the discrete-event simulator.
//
// Time is integral nanoseconds: additions are exact, event ordering is
// total, and runs are bit-reproducible across platforms.
#pragma once

#include <cstdint>

namespace serve::sim {

/// Simulated time in nanoseconds since simulation start.
using Time = std::int64_t;

inline constexpr Time kInfiniteTime = INT64_MAX;

[[nodiscard]] constexpr Time nanoseconds(std::int64_t v) noexcept { return v; }
[[nodiscard]] constexpr Time microseconds(double v) noexcept {
  return static_cast<Time>(v * 1e3);
}
[[nodiscard]] constexpr Time milliseconds(double v) noexcept {
  return static_cast<Time>(v * 1e6);
}
[[nodiscard]] constexpr Time seconds(double v) noexcept {
  return static_cast<Time>(v * 1e9);
}

[[nodiscard]] constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) * 1e-9;
}
[[nodiscard]] constexpr double to_milliseconds(Time t) noexcept {
  return static_cast<double>(t) * 1e-6;
}
[[nodiscard]] constexpr double to_microseconds(Time t) noexcept {
  return static_cast<double>(t) * 1e-3;
}

}  // namespace serve::sim
