// Counted resource with FIFO acquisition — models CPU worker pools, GPU
// engines, PCIe links, broker I/O threads, memory capacity.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/simulator.h"
#include "sim/time.h"

namespace serve::sim {

class Resource;

/// RAII grant of resource units; releases on destruction unless released
/// explicitly or detached.
class ResourceToken {
 public:
  ResourceToken() noexcept = default;
  ResourceToken(Resource* res, std::size_t amount) noexcept : res_(res), amount_(amount) {}
  ResourceToken(const ResourceToken&) = delete;
  ResourceToken& operator=(const ResourceToken&) = delete;
  ResourceToken(ResourceToken&& other) noexcept
      : res_(std::exchange(other.res_, nullptr)), amount_(std::exchange(other.amount_, 0)) {}
  ResourceToken& operator=(ResourceToken&& other) noexcept {
    if (this != &other) {
      release();
      res_ = std::exchange(other.res_, nullptr);
      amount_ = std::exchange(other.amount_, 0);
    }
    return *this;
  }
  ~ResourceToken() { release(); }

  void release() noexcept;
  [[nodiscard]] bool holds() const noexcept { return res_ != nullptr; }
  [[nodiscard]] std::size_t amount() const noexcept { return amount_; }

 private:
  Resource* res_ = nullptr;
  std::size_t amount_ = 0;
};

/// FIFO counted semaphore with time-weighted usage and queue statistics.
///
/// Fairness: an acquire never jumps the queue — if anyone is waiting, new
/// arrivals wait behind them even when units are free. This mirrors how a
/// work queue in front of a device behaves and keeps latency analysis honest.
class Resource {
 public:
  Resource(Simulator& sim, std::size_t capacity, std::string name = {})
      : sim_(sim), name_(std::move(name)), capacity_(capacity), last_change_(sim.now()) {
    if (capacity == 0) throw std::invalid_argument("Resource: capacity must be positive");
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t available() const noexcept { return capacity_ - in_use_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  struct AcquireAwaiter {
    Resource& res;
    std::size_t amount;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (res.waiters_.empty() && res.in_use_ + amount <= res.capacity_) {
        res.grab(amount);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      res.touch();  // waiter count is about to change; integrate up to now
      res.waiters_.push_back(this);
    }
    ResourceToken await_resume() noexcept { return ResourceToken{&res, amount}; }
  };

  /// Awaitable acquiring `amount` units (FIFO). Resumes with a ResourceToken.
  [[nodiscard]] AcquireAwaiter acquire(std::size_t amount = 1) {
    if (amount > capacity_) {
      throw std::invalid_argument("Resource::acquire: amount exceeds capacity of '" + name_ + "'");
    }
    return AcquireAwaiter{*this, amount, {}};
  }

  /// Non-blocking acquire; returns an empty token on failure.
  [[nodiscard]] ResourceToken try_acquire(std::size_t amount = 1) {
    if (waiters_.empty() && in_use_ + amount <= capacity_) {
      grab(amount);
      return ResourceToken{this, amount};
    }
    return {};
  }

  void release(std::size_t amount = 1) {
    if (amount > in_use_) throw std::logic_error("Resource::release: over-release of '" + name_ + "'");
    touch();
    in_use_ -= amount;
    if (observer_) observer_(in_use_);
    grant_waiters();
  }

  /// Integral of in-use units over time, in unit-nanoseconds. Divide by
  /// (capacity * elapsed) for utilization; used by the energy model.
  [[nodiscard]] double usage_integral_ns() {
    touch();
    return usage_integral_;
  }

  /// Mean utilization in [0,1] since construction (or last reset_stats).
  [[nodiscard]] double utilization() {
    touch();
    const auto elapsed = static_cast<double>(sim_.now() - stats_start_);
    if (elapsed <= 0.0) return 0.0;
    return usage_integral_ / (elapsed * static_cast<double>(capacity_));
  }

  /// Cumulative busy integral since *construction* in unit-seconds — a
  /// monotone counter untouched by reset_stats(), so interval readers
  /// (capacity plane, flight recorder) can difference consecutive reads even
  /// when the experiment harness resets the windowed stats mid-run.
  [[nodiscard]] double busy_seconds_total() {
    touch();
    return busy_integral_ns_ * 1e-9;
  }

  /// Cumulative waiter-count integral since construction in waiter-seconds
  /// (time-weighted queue length). Differencing across an interval and
  /// dividing by its length yields the interval's *mean* queue depth — the
  /// alias-free alternative to point-sampling queue_length().
  [[nodiscard]] double queue_seconds_total() {
    touch();
    return queue_integral_ns_ * 1e-9;
  }

  void reset_stats() {
    touch();
    usage_integral_ = 0.0;
    stats_start_ = sim_.now();
  }

  /// Observer invoked on every occupancy change with the new in-use count
  /// (used by the tracing layer to emit utilization counters).
  void set_change_observer(std::function<void(std::size_t)> observer) {
    observer_ = std::move(observer);
  }

 private:
  friend struct AcquireAwaiter;

  void touch() noexcept {
    const Time now = sim_.now();
    const auto dt = static_cast<double>(now - last_change_);
    usage_integral_ += static_cast<double>(in_use_) * dt;
    busy_integral_ns_ += static_cast<double>(in_use_) * dt;
    queue_integral_ns_ += static_cast<double>(waiters_.size()) * dt;
    last_change_ = now;
  }

  void grab(std::size_t amount) {
    touch();
    in_use_ += amount;
    if (observer_) observer_(in_use_);
  }

  void grant_waiters() {
    while (!waiters_.empty()) {
      AcquireAwaiter* w = waiters_.front();
      if (in_use_ + w->amount > capacity_) break;
      touch();  // waiter leaves the queue; integrate the old length first
      waiters_.pop_front();
      grab(w->amount);
      sim_.post([h = w->handle] { h.resume(); });
    }
  }

  Simulator& sim_;
  std::string name_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<AcquireAwaiter*> waiters_;
  std::function<void(std::size_t)> observer_;
  double usage_integral_ = 0.0;
  double busy_integral_ns_ = 0.0;   ///< monotone; never reset
  double queue_integral_ns_ = 0.0;  ///< monotone; never reset
  Time last_change_;
  Time stats_start_ = 0;
};

inline void ResourceToken::release() noexcept {
  if (res_ != nullptr) {
    res_->release(amount_);
    res_ = nullptr;
    amount_ = 0;
  }
}

}  // namespace serve::sim
