// Critical-path extraction over causal span trees.
//
// Given the spans of one trace (or many traces mixed), rebuilds each tree
// from parent links and walks the longest causal chain backward from the
// moment the root's subtree finished: at every point the walk descends into
// the child subtree that finished last before the cursor, attributes any
// uncovered gap to the parent's own execution, and repeats until it reaches
// the root's start. The result is an exact tiling of the trace's end-to-end
// extent: per-span "self time on the path" sums to the root duration, and
// aggregating by span name yields the per-stage shares that must agree with
// the RequestAuditor's Fig. 6 breakdown (the cross-check trace_analyze
// enforces).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace serve::trace {

/// One span as reconstructed from an exported trace.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;   ///< stage name ("queue", "inference", "broker", ...)
  std::string track;
  std::string blame;  ///< wait-span blame annotation, empty when none
  sim::Time begin = 0;
  sim::Time end = 0;
};

/// One hop of a critical path: `attributed` is the path time charged to this
/// span itself (its duration minus the parts covered by deeper children that
/// the walk descended into, plus any gaps its children left uncovered).
struct PathStep {
  const SpanRecord* span = nullptr;
  sim::Time attributed = 0;
};

struct CriticalPath {
  const SpanRecord* root = nullptr;
  sim::Time total = 0;  ///< root begin -> last descendant end; == sum(attributed)
  std::vector<PathStep> steps;  ///< causal order (earliest span first)
  std::map<std::string, sim::Time> by_name;  ///< per-span-name attribution
  std::size_t span_count = 0;    ///< spans in this trace
  std::size_t orphan_count = 0;  ///< spans whose parent id resolves to nothing
  std::size_t root_count = 0;    ///< parentless spans (a well-formed trace has 1)
};

/// Extracts one CriticalPath per trace id present in `spans`, ordered by
/// trace id. Traces with no parentless span yield a CriticalPath with a null
/// root (orphan/root counts still filled), so malformed input is reported,
/// not hidden. `spans` must outlive the returned paths.
[[nodiscard]] std::vector<CriticalPath> extract_critical_paths(
    const std::vector<SpanRecord>& spans);

}  // namespace serve::trace
