#include "trace/critical_path.h"

#include <algorithm>
#include <unordered_map>

namespace serve::trace {

namespace {

struct Node {
  const SpanRecord* span = nullptr;
  std::vector<Node*> children;
  sim::Time subtree_end = 0;  ///< max end over this span and all descendants
  bool visiting = false;      ///< cycle guard for corrupt input
};

sim::Time compute_subtree_end(Node& n) {
  if (n.visiting) return n.span->end;  // parent cycle: stop the recursion
  n.visiting = true;
  sim::Time e = n.span->end;
  for (Node* c : n.children) e = std::max(e, compute_subtree_end(*c));
  n.visiting = false;
  n.subtree_end = e;
  return e;
}

/// Backward walk from `hi` down to n.begin (see header). Appends one
/// PathStep per visited span; a span is visited at most once because each
/// node has a single parent.
void walk(Node& n, sim::Time hi, std::vector<PathStep>& steps) {
  if (n.visiting) return;
  n.visiting = true;
  sim::Time t = std::min(n.subtree_end, hi);
  const sim::Time floor = n.span->begin;
  sim::Time self = 0;
  // Latest-finishing subtree first: that child is what the parent's
  // completion was actually waiting on at the cursor.
  std::sort(n.children.begin(), n.children.end(), [](const Node* a, const Node* b) {
    if (a->subtree_end != b->subtree_end) return a->subtree_end > b->subtree_end;
    if (a->span->begin != b->span->begin) return a->span->begin > b->span->begin;
    return a->span->span_id < b->span->span_id;
  });
  for (Node* c : n.children) {
    if (t <= floor) break;
    const sim::Time ce = std::min(c->subtree_end, t);
    if (ce <= floor || c->span->begin >= t) continue;  // not blocking at the cursor
    if (ce < t) self += t - ce;  // gap no child covers: the parent's own time
    walk(*c, ce, steps);
    t = std::max(std::min(c->span->begin, t), floor);
  }
  if (t > floor) self += t - floor;
  steps.push_back(PathStep{n.span, self});
  n.visiting = false;
}

}  // namespace

std::vector<CriticalPath> extract_critical_paths(const std::vector<SpanRecord>& spans) {
  // Group spans by trace, preserving first-seen order of ids for the final
  // ordering (sorted below for a stable, scheduling-independent result).
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> by_trace;
  for (const SpanRecord& s : spans) {
    if (s.trace_id != 0) by_trace[s.trace_id].push_back(&s);
  }
  std::vector<std::uint64_t> trace_ids;
  trace_ids.reserve(by_trace.size());
  for (const auto& [id, _] : by_trace) trace_ids.push_back(id);
  std::sort(trace_ids.begin(), trace_ids.end());

  std::vector<CriticalPath> out;
  out.reserve(trace_ids.size());
  for (const std::uint64_t tid : trace_ids) {
    const auto& members = by_trace[tid];
    CriticalPath path;
    path.span_count = members.size();

    std::unordered_map<std::uint64_t, Node> nodes;
    nodes.reserve(members.size());
    for (const SpanRecord* s : members) {
      // Duplicate span ids: keep the first occurrence, count the rest as
      // orphans (they cannot be placed in the tree unambiguously).
      if (!nodes.emplace(s->span_id, Node{s, {}, s->end, false}).second) ++path.orphan_count;
    }
    Node* root = nullptr;
    for (auto& [id, node] : nodes) {
      if (node.span->parent_span_id == 0) {
        ++path.root_count;
        // Several parentless spans (malformed): keep the earliest-starting.
        if (root == nullptr || node.span->begin < root->span->begin) root = &node;
        continue;
      }
      auto parent = nodes.find(node.span->parent_span_id);
      if (parent == nodes.end() || parent->first == id) {
        ++path.orphan_count;
      } else {
        parent->second.children.push_back(&node);
      }
    }
    if (root != nullptr) {
      compute_subtree_end(*root);
      path.root = root->span;
      path.total = root->subtree_end - root->span->begin;
      walk(*root, root->subtree_end, path.steps);
      std::sort(path.steps.begin(), path.steps.end(), [](const PathStep& a, const PathStep& b) {
        if (a.span->begin != b.span->begin) return a.span->begin < b.span->begin;
        return a.span->span_id < b.span->span_id;
      });
      for (const PathStep& st : path.steps) {
        if (st.attributed > 0) path.by_name[st.span->name] += st.attributed;
      }
    }
    out.push_back(std::move(path));
  }
  return out;
}

}  // namespace serve::trace
