// Causal span recording on top of sim::TraceRecorder.
//
// CausalTracer allocates trace/span ids (plain counters — deterministic
// because everything that calls it runs in deterministic virtual time) and
// records spans carrying their causal identity as Chrome trace args
// ("trace_id" / "span_id" / "parent_span_id", plus optional blame
// annotations). The flat track/name layout Perfetto renders is unchanged;
// the args are what tools/trace_analyze uses to rebuild the trees.
//
// One CausalTracer is shared by every component writing into the same
// TraceRecorder (auditor, brokers, pipelines, multiple experiment rows), so
// trace ids are unique across the whole file even when request ids restart
// per row.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "sim/trace.h"
#include "trace/span_context.h"

namespace serve::trace {

class CausalTracer {
 public:
  CausalTracer() = default;
  explicit CausalTracer(sim::TraceRecorder* recorder) : rec_(recorder) {}

  void set_recorder(sim::TraceRecorder* recorder) noexcept { rec_ = recorder; }
  [[nodiscard]] sim::TraceRecorder* recorder() const noexcept { return rec_; }

  /// Originates a new trace; the returned context is its root.
  [[nodiscard]] SpanContext begin_trace(bool sampled) noexcept {
    return SpanContext{next_trace_id_++, next_span_id_++, 0, sampled};
  }

  /// Allocates a child context (same trace, parent = `parent.span_id`).
  /// Useful when the child span's end is not known yet (e.g. a broker
  /// delivery recorded at consume time against a context allocated at
  /// publish time).
  [[nodiscard]] SpanContext child_of(const SpanContext& parent) noexcept {
    return SpanContext{parent.trace_id, next_span_id_++, parent.span_id, parent.sampled};
  }

  /// Records a completed span for an already-allocated context. No-op when
  /// the context is unsampled or no recorder is attached.
  void record(const SpanContext& ctx, std::string track, std::string name, sim::Time begin,
              sim::Time end, sim::SpanArgs args = {});

  /// Allocates a child of `parent` and records it in one step; returns the
  /// child's context (ids are allocated even when unsampled, keeping id
  /// assignment independent of the sampling decision).
  SpanContext child_span(const SpanContext& parent, std::string track, std::string name,
                         sim::Time begin, sim::Time end, sim::SpanArgs args = {});

  [[nodiscard]] std::uint64_t traces_started() const noexcept { return next_trace_id_ - 1; }
  [[nodiscard]] std::uint64_t spans_recorded() const noexcept { return spans_recorded_; }

 private:
  sim::TraceRecorder* rec_ = nullptr;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t spans_recorded_ = 0;
};

}  // namespace serve::trace
