// Causal trace context + deterministic head-based sampling.
//
// A SpanContext identifies one node of a trace tree: which trace it belongs
// to, its own span id, and its parent's. It travels *with* the work — on
// serving::Request, inside broker message envelopes, across FileLogBroker
// records — so a face-detection -> crop -> recognition cascade is a single
// tree even though it spans two servers and a broker.
//
// Sampling is head-based and deterministic: the decision is made once when
// a trace is originated (from the request/frame id alone, never from wall
// clock or scheduling order) and then carried in the context, so every
// participant of a sampled trace records spans and same-seed runs sample
// the same traces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace serve::trace {

struct SpanContext {
  std::uint64_t trace_id = 0;        ///< 0 = no trace attached
  std::uint64_t span_id = 0;         ///< this hop's span
  std::uint64_t parent_span_id = 0;  ///< 0 = trace root
  bool sampled = false;              ///< head-based decision, carried downstream

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }

  friend bool operator==(const SpanContext& a, const SpanContext& b) noexcept {
    return a.trace_id == b.trace_id && a.span_id == b.span_id &&
           a.parent_span_id == b.parent_span_id && a.sampled == b.sampled;
  }
};

/// Compact single-line wire form ("svctx1;<trace>;<span>;<parent>;<s>") for
/// brokers that move raw bytes. Parsing is strict: anything malformed yields
/// std::nullopt rather than a half-filled context.
[[nodiscard]] inline std::string to_wire(const SpanContext& ctx) {
  return "svctx1;" + std::to_string(ctx.trace_id) + ";" + std::to_string(ctx.span_id) + ";" +
         std::to_string(ctx.parent_span_id) + ";" + (ctx.sampled ? "1" : "0");
}

[[nodiscard]] inline std::optional<SpanContext> from_wire(std::string_view s) {
  constexpr std::string_view kMagic = "svctx1;";
  if (s.substr(0, kMagic.size()) != kMagic) return std::nullopt;
  s.remove_prefix(kMagic.size());
  std::uint64_t fields[3] = {0, 0, 0};
  for (auto& f : fields) {
    const std::size_t semi = s.find(';');
    if (semi == std::string_view::npos || semi == 0) return std::nullopt;
    for (char c : s.substr(0, semi)) {
      if (c < '0' || c > '9') return std::nullopt;
      f = f * 10 + static_cast<std::uint64_t>(c - '0');
    }
    s.remove_prefix(semi + 1);
  }
  if (s != "0" && s != "1") return std::nullopt;
  return SpanContext{fields[0], fields[1], fields[2], s == "1"};
}

/// Frames a payload with its context for byte-oriented transports
/// (FileLogBroker records). The header is delimited by 0x1d (ASCII group
/// separator), which cannot appear in the decimal wire form, so unwrapping
/// is unambiguous; payloads without the marker pass through with an empty
/// context.
inline constexpr char kContextDelimiter = '\x1d';

[[nodiscard]] inline std::string wrap_with_context(const SpanContext& ctx,
                                                   std::string_view payload) {
  std::string out;
  out.push_back(kContextDelimiter);
  out += to_wire(ctx);
  out.push_back(kContextDelimiter);
  out.append(payload);
  return out;
}

struct Unwrapped {
  SpanContext ctx{};
  std::string_view payload;
};

[[nodiscard]] inline Unwrapped unwrap_context(std::string_view record) {
  if (record.empty() || record.front() != kContextDelimiter) return {SpanContext{}, record};
  const std::size_t close = record.find(kContextDelimiter, 1);
  if (close == std::string_view::npos) return {SpanContext{}, record};
  const auto ctx = from_wire(record.substr(1, close - 1));
  if (!ctx) return {SpanContext{}, record};
  return {*ctx, record.substr(close + 1)};
}

// --- deterministic head-based sampling ---------------------------------------

enum class SampleMode : std::uint8_t {
  kHash,    ///< sample when splitmix64(seed ^ id) < rate * 2^64 (unbiased)
  kStride,  ///< sample when id % stride == phase (uniform over the run)
  kFirstN,  ///< the legacy warmup-biased policy: first max_sampled originations
};

struct SamplerOptions {
  SampleMode mode = SampleMode::kHash;
  double rate = 1.0 / 16.0;        ///< kHash acceptance probability
  std::uint64_t stride = 16;       ///< kStride period (>= 1)
  std::uint64_t phase = 0;         ///< kStride offset (< stride)
  std::uint64_t seed = 0x5eed'7ace;///< kHash key; same seed => same decisions
  /// Hard cap on sampled traces regardless of mode (bounds trace size).
  std::uint64_t max_sampled = 256;
};

/// Decides, per originated trace, whether it is recorded. Pure function of
/// (options, id) except for the max_sampled cap, which counts acceptances
/// in origination order — itself deterministic in virtual time.
class TraceSampler {
 public:
  TraceSampler() = default;
  explicit TraceSampler(SamplerOptions opts) : opts_(opts) {}

  [[nodiscard]] bool sample(std::uint64_t id) noexcept {
    if (forced_) {
      // Triggered capture (alert window): sample everything, bypassing both
      // the mode and the head-sampling cap — an anomaly's traces must not be
      // truncated by a budget meant for steady-state sampling. Counted
      // separately so the cap still applies once the window closes.
      ++forced_taken_;
      return true;
    }
    if (taken_ >= opts_.max_sampled) return false;
    bool hit = false;
    switch (opts_.mode) {
      case SampleMode::kHash: {
        if (opts_.rate >= 1.0) {
          hit = true;
        } else if (opts_.rate > 0.0) {
          const auto threshold =
              static_cast<std::uint64_t>(opts_.rate * 18446744073709551616.0 /* 2^64 */);
          hit = splitmix64(opts_.seed ^ id) < threshold;
        }
        break;
      }
      case SampleMode::kStride: {
        const std::uint64_t stride = opts_.stride == 0 ? 1 : opts_.stride;
        hit = id % stride == opts_.phase % stride;
        break;
      }
      case SampleMode::kFirstN:
        hit = true;  // capped below
        break;
    }
    if (hit) ++taken_;
    return hit;
  }

  [[nodiscard]] std::uint64_t sampled_count() const noexcept { return taken_ + forced_taken_; }
  [[nodiscard]] std::uint64_t forced_count() const noexcept { return forced_taken_; }
  [[nodiscard]] const SamplerOptions& options() const noexcept { return opts_; }

  /// Full-sampling override for triggered capture; deterministic because the
  /// alert engine flips it at exact flight-recorder ticks in virtual time.
  void set_forced(bool forced) noexcept { forced_ = forced; }
  [[nodiscard]] bool forced() const noexcept { return forced_; }

  [[nodiscard]] static std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  SamplerOptions opts_{};
  std::uint64_t taken_ = 0;
  std::uint64_t forced_taken_ = 0;
  bool forced_ = false;
};

}  // namespace serve::trace
