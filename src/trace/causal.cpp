#include "trace/causal.h"

#include <utility>

namespace serve::trace {

void CausalTracer::record(const SpanContext& ctx, std::string track, std::string name,
                          sim::Time begin, sim::Time end, sim::SpanArgs args) {
  if (rec_ == nullptr || !ctx.sampled || !ctx.valid()) return;
  sim::SpanArgs full;
  full.reserve(args.size() + 3);
  full.emplace_back("trace_id", std::to_string(ctx.trace_id));
  full.emplace_back("span_id", std::to_string(ctx.span_id));
  if (ctx.parent_span_id != 0) {
    full.emplace_back("parent_span_id", std::to_string(ctx.parent_span_id));
  }
  for (auto& kv : args) full.push_back(std::move(kv));
  rec_->span(std::move(track), std::move(name), begin, end, std::move(full));
  ++spans_recorded_;
}

SpanContext CausalTracer::child_span(const SpanContext& parent, std::string track,
                                     std::string name, sim::Time begin, sim::Time end,
                                     sim::SpanArgs args) {
  const SpanContext ctx = child_of(parent);
  record(ctx, std::move(track), std::move(name), begin, end, std::move(args));
  return ctx;
}

}  // namespace serve::trace
