// Shared AAN inverse-DCT butterfly for the vector tiers.
//
// `aan_idct_pass` is the exact vector transliteration of the scalar
// `idct_pass1d` in dct.cpp: same expressions, same association, mul/add kept
// separate (no FMA), so every lane computes bit-identically to the scalar
// pass. Each tier instantiates it with its vector-of-8-floats type (native
// arithmetic operators) and a splat callable, and provides its own 8x8
// transpose:
//
//   load rows -> pass (columns, vertical) -> transpose -> pass (rows)
//   -> transpose -> store
#pragma once

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace serve::codec::simd::detail {

template <typename V, typename SplatFn>
inline void aan_idct_pass(V d[8], SplatFn splat) noexcept {
  // Even part.
  const V e0 = d[0], e1 = d[2], e2 = d[4], e3 = d[6];
  const V t10 = e0 + e2;
  const V t11 = e0 - e2;
  const V t13 = e1 + e3;
  const V t12 = (e1 - e3) * splat(1.414213562f) - t13;  // 2*c4

  const V p0 = t10 + t13;
  const V p3 = t10 - t13;
  const V p1 = t11 + t12;
  const V p2 = t11 - t12;

  // Odd part.
  const V o4 = d[1], o5 = d[3], o6 = d[5], o7 = d[7];
  const V z13 = o6 + o5;
  const V z10 = o6 - o5;
  const V z11 = o4 + o7;
  const V z12 = o4 - o7;

  const V q7 = z11 + z13;
  const V w11 = (z11 - z13) * splat(1.414213562f);  // 2*c4
  const V z5 = (z10 + z12) * splat(1.847759065f);   // 2*c2
  const V w10 = splat(1.082392200f) * z12 - z5;     // 2*(c2-c6)
  const V w12 = z5 - splat(2.613125930f) * z10;     // -2*(c2+c6)

  const V q6 = w12 - q7;
  const V q5 = w11 - q6;
  const V q4 = w10 + q5;

  d[0] = p0 + q7;
  d[7] = p0 - q7;
  d[1] = p1 + q6;
  d[6] = p1 - q6;
  d[2] = p2 + q5;
  d[5] = p2 - q5;
  d[4] = p3 + q4;
  d[3] = p3 - q4;
}

#if defined(__SSE2__)

// 8 floats as two __m128, so the butterfly above spans a whole DCT row per
// op. The 8x8 transpose decomposes into four 4x4 quadrant transposes, which
// need only `shufps` — cheaper on most cores than the cross-lane permutes an
// 8-wide AVX2 transpose requires, which is why the AVX2 tier also uses this
// kernel (each TU compiles its own copy with its own ISA flags).
struct V8 {
  __m128 lo, hi;
};
inline V8 operator+(V8 a, V8 b) noexcept {
  return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
}
inline V8 operator-(V8 a, V8 b) noexcept {
  return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
}
inline V8 operator*(V8 a, V8 b) noexcept {
  return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
}
inline V8 splat_v8(float f) noexcept {
  const __m128 v = _mm_set1_ps(f);
  return {v, v};
}

inline void transpose8(V8 r[8]) noexcept {
  __m128 a0 = r[0].lo, a1 = r[1].lo, a2 = r[2].lo, a3 = r[3].lo;  // quadrant A
  __m128 b0 = r[0].hi, b1 = r[1].hi, b2 = r[2].hi, b3 = r[3].hi;  // quadrant B
  __m128 c0 = r[4].lo, c1 = r[5].lo, c2 = r[6].lo, c3 = r[7].lo;  // quadrant C
  __m128 d0 = r[4].hi, d1 = r[5].hi, d2 = r[6].hi, d3 = r[7].hi;  // quadrant D
  _MM_TRANSPOSE4_PS(a0, a1, a2, a3);
  _MM_TRANSPOSE4_PS(b0, b1, b2, b3);
  _MM_TRANSPOSE4_PS(c0, c1, c2, c3);
  _MM_TRANSPOSE4_PS(d0, d1, d2, d3);
  // [A B; C D]^T = [A^T C^T; B^T D^T]
  r[0] = {a0, c0};
  r[1] = {a1, c1};
  r[2] = {a2, c2};
  r[3] = {a3, c3};
  r[4] = {b0, d0};
  r[5] = {b1, d1};
  r[6] = {b2, d2};
  r[7] = {b3, d3};
}

inline void idct8x8_scaled_4wide(const float in[64], float out[64]) noexcept {
  V8 r[8];
  for (int i = 0; i < 8; ++i) {
    r[i] = {_mm_loadu_ps(in + 8 * i), _mm_loadu_ps(in + 8 * i + 4)};
  }
  aan_idct_pass(r, splat_v8);  // column pass (vertical, stride-8)
  transpose8(r);
  aan_idct_pass(r, splat_v8);  // row pass
  transpose8(r);
  for (int i = 0; i < 8; ++i) {
    _mm_storeu_ps(out + 8 * i, r[i].lo);
    _mm_storeu_ps(out + 8 * i + 4, r[i].hi);
  }
}

#endif  // defined(__SSE2__)

}  // namespace serve::codec::simd::detail
