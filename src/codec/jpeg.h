// Baseline JPEG (ITU-T T.81) encoder and decoder, written from scratch.
//
// This is the *real* preprocessing substrate of the reproduction: the exact
// computation (Huffman entropy coding, DCT, chroma subsampling) whose server
// cost the paper measures. Supports baseline sequential DCT, 8-bit samples,
// grayscale and YCbCr with 4:4:4 or 4:2:0 subsampling, restart intervals,
// and the Annex K default tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/bit_io.h"
#include "codec/image.h"

namespace serve::codec {

enum class Subsampling : std::uint8_t {
  k444,  ///< no chroma subsampling
  k422,  ///< 2x1 horizontal chroma subsampling
  k420,  ///< 2x2 chroma subsampling (the common photographic default)
};

struct JpegEncodeOptions {
  int quality = 85;  ///< 1..100, libjpeg-style quantizer scaling
  Subsampling subsampling = Subsampling::k420;
  /// Emit a DRI marker and RSTn markers every N MCUs (0 = no restarts).
  int restart_interval_mcus = 0;
  /// Two-pass encoding with per-image optimal Huffman tables (smaller files,
  /// identical pixels — the tables are carried in the DHT segments).
  bool optimize_huffman = false;
};

/// Encodes an RGB or grayscale image to a JFIF byte stream.
[[nodiscard]] std::vector<std::uint8_t> encode_jpeg(const Image& img,
                                                    const JpegEncodeOptions& opts = {});

struct JpegDecodeOptions {
  /// Use the basis-matrix reference IDCT instead of the fast AAN transform.
  /// Slow; exists so tests can compare the production fast path against the
  /// oracle on whole streams (they agree within ±1 intensity step).
  bool use_reference_idct = false;
};

/// Decodes a baseline JPEG stream. Throws jpeg::CodecError on malformed or
/// unsupported (e.g. progressive) input.
[[nodiscard]] Image decode_jpeg(std::span<const std::uint8_t> data);
[[nodiscard]] Image decode_jpeg(std::span<const std::uint8_t> data,
                                const JpegDecodeOptions& opts);

/// Header summary without decoding the entropy data.
struct JpegInfo {
  int width = 0;
  int height = 0;
  int components = 0;
  Subsampling subsampling = Subsampling::k444;
};

/// Parses markers up to SOS. Throws jpeg::CodecError on malformed input.
[[nodiscard]] JpegInfo peek_jpeg_info(std::span<const std::uint8_t> data);

}  // namespace serve::codec
