// AVX2 kernel tier: 8-wide float math. This TU is compiled with -mavx2 (and
// nothing more — no -mfma, so mul/add stay separate and every lane computes
// bit-identically to the scalar tier); when the compiler can't target AVX2
// the table aliases scalar and the tier reports "not compiled".
#include "codec/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "codec/simd_idct_inl.h"

namespace serve::codec::simd {
namespace detail {
const bool kAvx2Compiled = true;
}  // namespace detail

namespace {

// The IDCT uses the shared 4-wide kernel (see simd_idct_inl.h): the 4x4
// quadrant transposes beat an 8-wide transpose's cross-lane permutes, and
// this TU's copy still gets VEX encoding from -mavx2.
void avx2_idct8x8_scaled(const float in[64], float out[64]) noexcept {
  detail::idct8x8_scaled_4wide(in, out);
}

// 8 i32 -> 8 saturated u8 in the low qword.
inline __m128i pack_u8x8(__m256i v) noexcept {
  const __m128i w =
      _mm_packs_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  return _mm_packus_epi16(w, w);
}

inline __m256i round_i32(__m256 v) noexcept {
  return _mm256_cvttps_epi32(_mm256_add_ps(v, _mm256_set1_ps(0.5f)));
}

void avx2_ycbcr_to_rgb_row(const float* y, const float* cb, const float* cr,
                           std::uint8_t* out, int n) noexcept {
  const __m256 k128 = _mm256_set1_ps(128.0f);
  const __m256 k1402 = _mm256_set1_ps(1.402f);
  const __m256 k0344 = _mm256_set1_ps(0.344136f);
  const __m256 k0714 = _mm256_set1_ps(0.714136f);
  const __m256 k1772 = _mm256_set1_ps(1.772f);
  // Interleave masks: rg8 holds bytes [r0..r7 g0..g7], b8 holds [b0..b7 x8].
  // First 16 output bytes are pixels 0-4 plus r5; next 8 finish pixels 5-7.
  const __m128i m_rg1 =
      _mm_setr_epi8(0, 8, -1, 1, 9, -1, 2, 10, -1, 3, 11, -1, 4, 12, -1, 5);
  const __m128i m_b1 =
      _mm_setr_epi8(-1, -1, 0, -1, -1, 1, -1, -1, 2, -1, -1, 3, -1, -1, 4, -1);
  const __m128i m_rg2 = _mm_setr_epi8(13, -1, 6, 14, -1, 7, 15, -1, -1, -1, -1,
                                      -1, -1, -1, -1, -1);
  const __m128i m_b2 = _mm_setr_epi8(-1, 5, -1, -1, 6, -1, -1, 7, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  int x = 0;
  for (; x + 8 <= n; x += 8) {
    const __m256 Y = _mm256_loadu_ps(y + x);
    const __m256 Cb = _mm256_sub_ps(_mm256_loadu_ps(cb + x), k128);
    const __m256 Cr = _mm256_sub_ps(_mm256_loadu_ps(cr + x), k128);
    const __m256 R = _mm256_add_ps(Y, _mm256_mul_ps(k1402, Cr));
    const __m256 G = _mm256_sub_ps(_mm256_sub_ps(Y, _mm256_mul_ps(k0344, Cb)),
                                   _mm256_mul_ps(k0714, Cr));
    const __m256 B = _mm256_add_ps(Y, _mm256_mul_ps(k1772, Cb));
    const __m128i r16 = _mm_packs_epi32(
        _mm256_castsi256_si128(round_i32(R)),
        _mm256_extracti128_si256(round_i32(R), 1));
    const __m128i g16 = _mm_packs_epi32(
        _mm256_castsi256_si128(round_i32(G)),
        _mm256_extracti128_si256(round_i32(G), 1));
    const __m128i rg8 = _mm_packus_epi16(r16, g16);  // r0..7 g0..7
    const __m128i b8 = pack_u8x8(round_i32(B));      // b0..7 b0..7
    const __m128i v1 =
        _mm_or_si128(_mm_shuffle_epi8(rg8, m_rg1), _mm_shuffle_epi8(b8, m_b1));
    const __m128i v2 =
        _mm_or_si128(_mm_shuffle_epi8(rg8, m_rg2), _mm_shuffle_epi8(b8, m_b2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), v1);   // bytes 0..15
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + 16), v2);  // bytes 16..23
    out += 24;
  }
  if (x < n) kScalarKernels.ycbcr_to_rgb_row(y + x, cb + x, cr + x, out, n - x);
}

void avx2_gray_to_u8_row(const float* y, std::uint8_t* out, int n) noexcept {
  int x = 0;
  for (; x + 8 <= n; x += 8) {
    const __m128i u8 = pack_u8x8(round_i32(_mm256_loadu_ps(y + x)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + x), u8);
  }
  if (x < n) kScalarKernels.gray_to_u8_row(y + x, out + x, n - x);
}

inline __m128 u8x4_to_ps(const std::uint8_t* p) noexcept {
  std::int32_t bits;
  std::memcpy(&bits, p, 4);
  return _mm_cvtepi32_ps(_mm_cvtepu8_epi32(_mm_cvtsi32_si128(bits)));
}

void avx2_resize_hpass_row(const std::uint8_t* srow, float* mrow, const int* i0,
                           const int* i1, const float* w1, int dst_w, int ch,
                           std::size_t srow_avail) noexcept {
  if (ch != 3 || dst_w < 2) {
    kScalarKernels.resize_hpass_row(srow, mrow, i0, i1, w1, dst_w, ch, srow_avail);
    return;
  }
  // One dst pixel per iteration: two 4-byte taps, 4-float store (one lane of
  // slack, overwritten by the next pixel — so the last pixel goes scalar, as
  // do taps whose 4-byte load would cross `srow_avail`).
  const int last = dst_w - 1;
  int x = 0;
  for (; x < last; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    const std::size_t off0 = static_cast<std::size_t>(i0[xi]) * 3;
    const std::size_t off1 = static_cast<std::size_t>(i1[xi]) * 3;
    if (off1 + 4 > srow_avail) break;  // i1 is monotone; tail goes scalar
    const float w = w1[xi];
    const __m128 wv = _mm_set1_ps(w);
    const __m128 w0v = _mm_set1_ps(1.0f - w);
    const __m128 m = _mm_add_ps(_mm_mul_ps(u8x4_to_ps(srow + off0), w0v),
                                _mm_mul_ps(u8x4_to_ps(srow + off1), wv));
    _mm_storeu_ps(mrow + xi * 3, m);
  }
  if (x < dst_w) {
    kScalarKernels.resize_hpass_row(srow, mrow + static_cast<std::size_t>(x) * 3,
                                    i0 + x, i1 + x, w1 + x, dst_w - x, ch,
                                    srow_avail);
  }
}

void avx2_resize_vpass_row(const float* r0, const float* r1, float w,
                           std::uint8_t* out, std::size_t n) noexcept {
  const __m256 wv = _mm256_set1_ps(w);
  const __m256 w0v = _mm256_set1_ps(1.0f - w);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(r0 + i), w0v),
                                   _mm256_mul_ps(_mm256_loadu_ps(r1 + i), wv));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), pack_u8x8(round_i32(v)));
  }
  if (i < n) kScalarKernels.resize_vpass_row(r0 + i, r1 + i, w, out + i, n - i);
}

void avx2_upsample2_row(const float* src, float* dst, int dst_n) noexcept {
  int i = 0;
  for (; i + 16 <= dst_n; i += 16) {
    const __m256 v = _mm256_loadu_ps(src + (i >> 1));
    // Pairwise duplicate: unpack gives [s0 s0 s1 s1 | s4 s4 s5 s5] and
    // [s2 s2 s3 s3 | s6 s6 s7 s7]; recombine the 128-bit halves in order.
    const __m256 lo = _mm256_unpacklo_ps(v, v);
    const __m256 hi = _mm256_unpackhi_ps(v, v);
    _mm256_storeu_ps(dst + i, _mm256_permute2f128_ps(lo, hi, 0x20));
    _mm256_storeu_ps(dst + i + 8, _mm256_permute2f128_ps(lo, hi, 0x31));
  }
  for (; i < dst_n; ++i) dst[i] = src[i >> 1];
}

void avx2_normalize_rgb_row(const std::uint8_t* p, float* r, float* g, float* b,
                            std::size_t n, const float* mean,
                            const float* inv_std) noexcept {
  const __m256 k255 = _mm256_set1_ps(255.0f);
  const __m256 mr = _mm256_set1_ps(mean[0]), ir = _mm256_set1_ps(inv_std[0]);
  const __m256 mg = _mm256_set1_ps(mean[1]), ig = _mm256_set1_ps(inv_std[1]);
  const __m256 mb = _mm256_set1_ps(mean[2]), ib = _mm256_set1_ps(inv_std[2]);
  // Two 16-byte loads per 8 pixels (24 bytes): x0 = bytes [0,16) and
  // x1 = bytes [8,24) of the group, so both stay inside the pixel data
  // whenever 8 full pixels remain. pshufb masks gather the 8 R/G/B samples.
  const __m128i m_r0 = _mm_setr_epi8(0, 3, 6, 9, 12, 15, -1, -1, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  const __m128i m_r1 = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, 10, 13, -1, -1,
                                     -1, -1, -1, -1, -1, -1);
  const __m128i m_g0 = _mm_setr_epi8(1, 4, 7, 10, 13, -1, -1, -1, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  const __m128i m_g1 = _mm_setr_epi8(-1, -1, -1, -1, -1, 8, 11, 14, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  const __m128i m_b0 = _mm_setr_epi8(2, 5, 8, 11, 14, -1, -1, -1, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  const __m128i m_b1 = _mm_setr_epi8(-1, -1, -1, -1, -1, 9, 12, 15, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint8_t* q = p + 3 * i;
    const __m128i x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
    const __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 8));
    const __m128i rb =
        _mm_or_si128(_mm_shuffle_epi8(x0, m_r0), _mm_shuffle_epi8(x1, m_r1));
    const __m128i gb =
        _mm_or_si128(_mm_shuffle_epi8(x0, m_g0), _mm_shuffle_epi8(x1, m_g1));
    const __m128i bb =
        _mm_or_si128(_mm_shuffle_epi8(x0, m_b0), _mm_shuffle_epi8(x1, m_b1));
    const __m256 fr = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(rb));
    const __m256 fg = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(gb));
    const __m256 fb = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bb));
    _mm256_storeu_ps(r + i,
                     _mm256_mul_ps(_mm256_sub_ps(_mm256_div_ps(fr, k255), mr), ir));
    _mm256_storeu_ps(g + i,
                     _mm256_mul_ps(_mm256_sub_ps(_mm256_div_ps(fg, k255), mg), ig));
    _mm256_storeu_ps(b + i,
                     _mm256_mul_ps(_mm256_sub_ps(_mm256_div_ps(fb, k255), mb), ib));
  }
  if (i < n) {
    kScalarKernels.normalize_rgb_row(p + 3 * i, r + i, g + i, b + i, n - i, mean,
                                     inv_std);
  }
}

}  // namespace

const KernelTable kAvx2Kernels{
    avx2_idct8x8_scaled,   avx2_ycbcr_to_rgb_row, avx2_gray_to_u8_row,
    avx2_resize_hpass_row, avx2_resize_vpass_row, avx2_upsample2_row,
    avx2_normalize_rgb_row,
};

}  // namespace serve::codec::simd

#else  // !defined(__AVX2__): alias scalar so the table stays valid.

namespace serve::codec::simd {
namespace detail {
const bool kAvx2Compiled = false;
}  // namespace detail

const KernelTable kAvx2Kernels = kScalarKernels;

}  // namespace serve::codec::simd

#endif
