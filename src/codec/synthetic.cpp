#include "codec/synthetic.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace serve::codec {

namespace {

std::uint8_t to_u8(double v) {
  return static_cast<std::uint8_t>(std::clamp(std::lround(v), 0L, 255L));
}

}  // namespace

Image make_synthetic(int width, int height, Pattern pattern, std::uint64_t seed) {
  Image img{width, height, 3};
  sim::Rng rng{seed};
  const double w = width, h = height;

  switch (pattern) {
    case Pattern::kGradient:
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          img.at(x, y, 0) = to_u8(255.0 * x / w);
          img.at(x, y, 1) = to_u8(255.0 * y / h);
          img.at(x, y, 2) = to_u8(128.0 + 64.0 * std::sin(6.28318 * (x + y) / (w + h)));
        }
      }
      break;

    case Pattern::kTexture: {
      // Smooth value noise: random lattice every 8px, bilinear in between.
      const int gx = width / 8 + 2, gy = height / 8 + 2;
      std::vector<double> lattice(static_cast<std::size_t>(gx) * static_cast<std::size_t>(gy) * 3);
      for (auto& v : lattice) v = rng.uniform(0.0, 255.0);
      auto lat = [&](int ix, int iy, int c) {
        return lattice[(static_cast<std::size_t>(iy) * static_cast<std::size_t>(gx) +
                        static_cast<std::size_t>(ix)) *
                           3 +
                       static_cast<std::size_t>(c)];
      };
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          const int ix = x / 8, iy = y / 8;
          const double ax = (x % 8) / 8.0, ay = (y % 8) / 8.0;
          for (int c = 0; c < 3; ++c) {
            const double v = lat(ix, iy, c) * (1 - ax) * (1 - ay) +
                             lat(ix + 1, iy, c) * ax * (1 - ay) +
                             lat(ix, iy + 1, c) * (1 - ax) * ay + lat(ix + 1, iy + 1, c) * ax * ay;
            img.at(x, y, c) = to_u8(v + rng.normal(0.0, 6.0));
          }
        }
      }
      break;
    }

    case Pattern::kScene: {
      // Sky-to-ground gradient with a few colored rectangles and noise —
      // roughly the spectral content of a photo.
      struct Rect {
        int x0, y0, x1, y1;
        double r, g, b;
      };
      std::vector<Rect> rects;
      for (int i = 0; i < 6; ++i) {
        const int x0 = static_cast<int>(rng.uniform_int(0, std::max(1, width - 2)));
        const int y0 = static_cast<int>(rng.uniform_int(0, std::max(1, height - 2)));
        rects.push_back({x0, y0,
                         std::min(width, x0 + static_cast<int>(rng.uniform_int(8, width / 2 + 8))),
                         std::min(height, y0 + static_cast<int>(rng.uniform_int(8, height / 2 + 8))),
                         rng.uniform(0, 255), rng.uniform(0, 255), rng.uniform(0, 255)});
      }
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          double r = 120 + 100.0 * y / h, g = 160 - 40.0 * y / h, b = 220 - 120.0 * y / h;
          for (const auto& rc : rects) {
            if (x >= rc.x0 && x < rc.x1 && y >= rc.y0 && y < rc.y1) {
              r = 0.7 * rc.r + 0.3 * r;
              g = 0.7 * rc.g + 0.3 * g;
              b = 0.7 * rc.b + 0.3 * b;
            }
          }
          const double n = rng.normal(0.0, 3.0);
          img.at(x, y, 0) = to_u8(r + n);
          img.at(x, y, 1) = to_u8(g + n);
          img.at(x, y, 2) = to_u8(b + n);
        }
      }
      break;
    }

    case Pattern::kCheckers:
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          const bool on = ((x / 4) + (y / 4)) % 2 == 0;
          img.at(x, y, 0) = on ? 230 : 25;
          img.at(x, y, 1) = on ? 40 : 210;
          img.at(x, y, 2) = on ? 120 : 60;
        }
      }
      break;
  }
  return img;
}

}  // namespace serve::codec
