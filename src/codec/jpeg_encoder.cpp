#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "codec/dct.h"
#include "codec/jpeg.h"
#include "codec/jpeg_tables.h"

namespace serve::codec {

namespace jpeg {
namespace {

/// Canonical Huffman encode table: code + length per symbol.
struct EncodeTable {
  std::array<std::uint16_t, 256> code{};
  std::array<std::uint8_t, 256> length{};
};

/// Runtime Huffman table specification (BITS + HUFFVAL), either one of the
/// Annex K defaults or an optimized per-image table.
struct TableSpec {
  std::array<std::uint8_t, 16> bits{};
  std::vector<std::uint8_t> vals;
};

TableSpec from_annex_k(const HuffSpec& spec) {
  TableSpec t;
  t.bits = spec.bits;
  t.vals.assign(spec.vals.begin(), spec.vals.begin() + spec.val_count);
  return t;
}

EncodeTable build_encode_table(const TableSpec& spec) {
  EncodeTable t;
  std::uint16_t code = 0;
  std::size_t k = 0;
  for (int len = 1; len <= 16; ++len) {
    for (int i = 0; i < spec.bits[static_cast<std::size_t>(len - 1)]; ++i) {
      const std::uint8_t sym = spec.vals[k++];
      t.code[sym] = code++;
      t.length[sym] = static_cast<std::uint8_t>(len);
    }
    code = static_cast<std::uint16_t>(code << 1);
  }
  return t;
}

/// Optimal length-limited Huffman table from symbol frequencies — the
/// ITU-T T.81 Annex K.2 procedure (as implemented by libjpeg): merge the two
/// least-frequent subtrees, count code sizes, then fold lengths beyond 16
/// back into the tree. Symbol 256 is a reserved dummy guaranteeing that no
/// real symbol gets the all-ones code.
TableSpec build_optimal_table(std::array<std::uint64_t, 256> freq_in) {
  std::array<std::int64_t, 257> freq{};
  for (int i = 0; i < 256; ++i) freq[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(freq_in[static_cast<std::size_t>(i)]);
  freq[256] = 1;  // reserved
  std::array<int, 257> codesize{};
  std::array<int, 257> others{};
  others.fill(-1);

  while (true) {
    // c1: least-frequency nonzero entry (ties -> higher index, per libjpeg).
    int c1 = -1;
    std::int64_t v = INT64_MAX;
    for (int i = 0; i <= 256; ++i) {
      if (freq[static_cast<std::size_t>(i)] != 0 && freq[static_cast<std::size_t>(i)] <= v) {
        v = freq[static_cast<std::size_t>(i)];
        c1 = i;
      }
    }
    // c2: next least-frequency nonzero entry.
    int c2 = -1;
    v = INT64_MAX;
    for (int i = 0; i <= 256; ++i) {
      if (freq[static_cast<std::size_t>(i)] != 0 && freq[static_cast<std::size_t>(i)] <= v && i != c1) {
        v = freq[static_cast<std::size_t>(i)];
        c2 = i;
      }
    }
    if (c2 < 0) break;  // single tree left

    freq[static_cast<std::size_t>(c1)] += freq[static_cast<std::size_t>(c2)];
    freq[static_cast<std::size_t>(c2)] = 0;
    for (++codesize[static_cast<std::size_t>(c1)]; others[static_cast<std::size_t>(c1)] >= 0;
         ++codesize[static_cast<std::size_t>(c1)]) {
      c1 = others[static_cast<std::size_t>(c1)];
    }
    others[static_cast<std::size_t>(c1)] = c2;
    for (++codesize[static_cast<std::size_t>(c2)]; others[static_cast<std::size_t>(c2)] >= 0;
         ++codesize[static_cast<std::size_t>(c2)]) {
      c2 = others[static_cast<std::size_t>(c2)];
    }
  }

  std::array<int, 33> bits{};
  for (int i = 0; i <= 256; ++i) {
    if (codesize[static_cast<std::size_t>(i)] > 0) ++bits[static_cast<std::size_t>(codesize[static_cast<std::size_t>(i)])];
  }
  // Fold code lengths > 16 (JPEG limit) back into shorter lengths.
  for (int i = 32; i > 16; --i) {
    while (bits[static_cast<std::size_t>(i)] > 0) {
      int j = i - 2;
      while (bits[static_cast<std::size_t>(j)] == 0) --j;
      bits[static_cast<std::size_t>(i)] -= 2;
      ++bits[static_cast<std::size_t>(i - 1)];
      bits[static_cast<std::size_t>(j + 1)] += 2;
      --bits[static_cast<std::size_t>(j)];
    }
  }
  // Remove the reserved symbol's slot from the longest used length.
  int longest = 16;
  while (longest > 0 && bits[static_cast<std::size_t>(longest)] == 0) --longest;
  if (longest > 0) --bits[static_cast<std::size_t>(longest)];

  TableSpec out;
  for (int i = 1; i <= 16; ++i) out.bits[static_cast<std::size_t>(i - 1)] = static_cast<std::uint8_t>(bits[static_cast<std::size_t>(i)]);
  // HUFFVAL: symbols ordered by code size then symbol value.
  for (int size = 1; size <= 32; ++size) {
    for (int sym = 0; sym < 256; ++sym) {
      if (codesize[static_cast<std::size_t>(sym)] == size) out.vals.push_back(static_cast<std::uint8_t>(sym));
    }
  }
  return out;
}

/// Bit category of a coefficient value (T.81 F.1.2.1.2).
int category(int v) noexcept {
  int a = v < 0 ? -v : v;
  int s = 0;
  while (a != 0) {
    a >>= 1;
    ++s;
  }
  return s;
}

/// Value bits: negative values encode as v-1 in ssss low bits.
std::uint32_t value_bits(int v, int ssss) noexcept {
  return static_cast<std::uint32_t>(v >= 0 ? v : v + (1 << ssss) - 1);
}

void emit_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void emit_marker(std::vector<std::uint8_t>& out, std::uint8_t marker) {
  out.push_back(0xFF);
  out.push_back(marker);
}

void emit_dqt(std::vector<std::uint8_t>& out, int table_id,
              const std::array<std::uint16_t, kBlockSize>& q) {
  emit_marker(out, 0xDB);
  emit_u16(out, 2 + 1 + 64);
  out.push_back(static_cast<std::uint8_t>(table_id));  // Pq=0 (8-bit), Tq=id
  for (int i = 0; i < kBlockSize; ++i) {
    out.push_back(static_cast<std::uint8_t>(q[kZigZag[static_cast<std::size_t>(i)]]));
  }
}

void emit_dht(std::vector<std::uint8_t>& out, int cls, int id, const TableSpec& spec) {
  emit_marker(out, 0xC4);
  emit_u16(out, static_cast<std::uint16_t>(2 + 1 + 16 + spec.vals.size()));
  out.push_back(static_cast<std::uint8_t>((cls << 4) | id));
  for (auto b : spec.bits) out.push_back(b);
  for (auto v : spec.vals) out.push_back(v);
}

/// One quantized block in zig-zag order, tagged with its component.
struct Block {
  std::array<int, 64> zz;
  std::uint8_t comp;  ///< 0 = Y, 1 = Cb, 2 = Cr (DC prediction is per component)
};

/// Walks the block sequence exactly as the entropy coder will, invoking
/// `dc(cls, ssss, diff)` and `ac(cls, sym, value, size)` per symbol. Shared
/// by the statistics pass and the emit pass so they can never diverge.
template <typename DcFn, typename AcFn, typename RestartFn>
void scan_symbols(const std::vector<Block>& blocks, int blocks_per_mcu, int restart_interval,
                  DcFn&& dc, AcFn&& ac, RestartFn&& restart) {
  int dc_pred[3] = {0, 0, 0};
  int mcu = 0, in_mcu = 0;
  for (const Block& b : blocks) {
    if (in_mcu == 0 && restart_interval > 0 && mcu > 0 && mcu % restart_interval == 0) {
      restart();
      dc_pred[0] = dc_pred[1] = dc_pred[2] = 0;
    }
    const int cls = b.comp == 0 ? 0 : 1;  // table class: luma vs chroma
    const int diff = b.zz[0] - dc_pred[b.comp];
    dc_pred[b.comp] = b.zz[0];
    dc(cls, category(diff), diff);
    int run = 0;
    for (int k = 1; k < 64; ++k) {
      if (b.zz[static_cast<std::size_t>(k)] == 0) {
        ++run;
        continue;
      }
      while (run >= 16) {
        ac(cls, 0xF0, 0, 0);  // ZRL
        run -= 16;
      }
      const int v = b.zz[static_cast<std::size_t>(k)];
      const int s = category(v);
      ac(cls, (run << 4) | s, v, s);
      run = 0;
    }
    if (run > 0) ac(cls, 0x00, 0, 0);  // EOB
    if (++in_mcu == blocks_per_mcu) {
      in_mcu = 0;
      ++mcu;
    }
  }
}

/// Extracts, level-shifts, transforms and quantizes one block from a plane.
Block quantize_block(const std::vector<float>& plane, int pw, int ph, int bx, int by,
                     const std::array<std::uint16_t, kBlockSize>& quant, std::uint8_t comp) {
  float block[64];
  for (int y = 0; y < 8; ++y) {
    const int sy = std::min(by + y, ph - 1);
    for (int x = 0; x < 8; ++x) {
      const int sx = std::min(bx + x, pw - 1);
      block[y * 8 + x] = plane[static_cast<std::size_t>(sy) * static_cast<std::size_t>(pw) +
                               static_cast<std::size_t>(sx)] -
                         128.0f;
    }
  }
  float coeffs[64];
  fdct8x8(block, coeffs);
  Block out;
  out.comp = comp;
  for (int i = 0; i < 64; ++i) {
    const int nat = kZigZag[static_cast<std::size_t>(i)];
    out.zz[static_cast<std::size_t>(i)] = static_cast<int>(
        std::lround(coeffs[nat] / static_cast<float>(quant[static_cast<std::size_t>(nat)])));
  }
  return out;
}

}  // namespace
}  // namespace jpeg

std::vector<std::uint8_t> encode_jpeg(const Image& img, const JpegEncodeOptions& opts) {
  using namespace jpeg;
  if (img.empty()) throw std::invalid_argument("encode_jpeg: empty image");
  const bool gray = img.channels() == 1;
  // Luma sampling factors per subsampling mode (chroma is always 1x1).
  const int hy = !gray && opts.subsampling != Subsampling::k444 ? 2 : 1;
  const int vy = !gray && opts.subsampling == Subsampling::k420 ? 2 : 1;
  const int w = img.width(), h = img.height();

  // Quality-scaled quantization tables (natural order).
  std::array<std::uint16_t, kBlockSize> luma_q{}, chroma_q{};
  for (int i = 0; i < kBlockSize; ++i) {
    luma_q[static_cast<std::size_t>(i)] =
        scale_quant(kLumaQuant[static_cast<std::size_t>(i)], opts.quality);
    chroma_q[static_cast<std::size_t>(i)] =
        scale_quant(kChromaQuant[static_cast<std::size_t>(i)], opts.quality);
  }

  // Color conversion to planar YCbCr.
  const auto npix = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  std::vector<float> yp(npix), cb, cr;
  if (!gray) {
    cb.resize(npix);
    cr.resize(npix);
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto i = static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
                     static_cast<std::size_t>(x);
      if (gray) {
        yp[i] = static_cast<float>(img.at(x, y, 0));
      } else {
        const float r = img.at(x, y, 0), g = img.at(x, y, 1), b = img.at(x, y, 2);
        yp[i] = 0.299f * r + 0.587f * g + 0.114f * b;
        cb[i] = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
        cr[i] = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
      }
    }
  }

  // Chroma subsampling by box filter (hy x vy).
  int cw = w, ch = h;
  if (!gray && (hy > 1 || vy > 1)) {
    cw = (w + hy - 1) / hy;
    ch = (h + vy - 1) / vy;
    std::vector<float> scb(static_cast<std::size_t>(cw) * static_cast<std::size_t>(ch));
    std::vector<float> scr(scb.size());
    for (int y = 0; y < ch; ++y) {
      for (int x = 0; x < cw; ++x) {
        float sb = 0.0f, sr = 0.0f;
        int n = 0;
        for (int dy = 0; dy < vy; ++dy) {
          for (int dx = 0; dx < hy; ++dx) {
            const int sy = vy * y + dy, sx = hy * x + dx;
            if (sy < h && sx < w) {
              const auto i = static_cast<std::size_t>(sy) * static_cast<std::size_t>(w) +
                             static_cast<std::size_t>(sx);
              sb += cb[i];
              sr += cr[i];
              ++n;
            }
          }
        }
        const auto o = static_cast<std::size_t>(y) * static_cast<std::size_t>(cw) +
                       static_cast<std::size_t>(x);
        scb[o] = sb / static_cast<float>(n);
        scr[o] = sr / static_cast<float>(n);
      }
    }
    cb = std::move(scb);
    cr = std::move(scr);
  }

  // --- pass A: quantize every block in MCU order ---
  const int mcu_w = 8 * hy, mcu_h = 8 * vy;
  const int mcus_x = (w + mcu_w - 1) / mcu_w;
  const int mcus_y = (h + mcu_h - 1) / mcu_h;
  const int blocks_per_mcu = gray ? 1 : hy * vy + 2;
  std::vector<Block> blocks;
  blocks.reserve(static_cast<std::size_t>(mcus_x) * static_cast<std::size_t>(mcus_y) *
                 static_cast<std::size_t>(blocks_per_mcu));
  for (int my = 0; my < mcus_y; ++my) {
    for (int mx = 0; mx < mcus_x; ++mx) {
      for (int by = 0; by < vy; ++by) {
        for (int bx = 0; bx < hy; ++bx) {
          blocks.push_back(quantize_block(yp, w, h, mx * mcu_w + bx * 8, my * mcu_h + by * 8,
                                          luma_q, 0));
        }
      }
      if (!gray) {
        blocks.push_back(quantize_block(cb, cw, ch, mx * 8, my * 8, chroma_q, 1));
        blocks.push_back(quantize_block(cr, cw, ch, mx * 8, my * 8, chroma_q, 2));
      }
    }
  }

  // --- Huffman tables: Annex K defaults or per-image optimal ---
  TableSpec dc_spec[2] = {from_annex_k(kLumaDc), from_annex_k(kChromaDc)};
  TableSpec ac_spec[2] = {from_annex_k(kLumaAc), from_annex_k(kChromaAc)};
  if (opts.optimize_huffman) {
    std::array<std::uint64_t, 256> dc_freq[2] = {{}, {}};
    std::array<std::uint64_t, 256> ac_freq[2] = {{}, {}};
    scan_symbols(
        blocks, blocks_per_mcu, opts.restart_interval_mcus,
        [&](int cls, int ssss, int) { ++dc_freq[cls][static_cast<std::size_t>(ssss)]; },
        [&](int cls, int sym, int, int) { ++ac_freq[cls][static_cast<std::size_t>(sym)]; },
        [] {});
    dc_spec[0] = build_optimal_table(dc_freq[0]);
    ac_spec[0] = build_optimal_table(ac_freq[0]);
    if (!gray) {
      dc_spec[1] = build_optimal_table(dc_freq[1]);
      ac_spec[1] = build_optimal_table(ac_freq[1]);
    }
  }
  const EncodeTable dc_enc[2] = {build_encode_table(dc_spec[0]), build_encode_table(dc_spec[1])};
  const EncodeTable ac_enc[2] = {build_encode_table(ac_spec[0]), build_encode_table(ac_spec[1])};

  // --- headers ---
  std::vector<std::uint8_t> out;
  out.reserve(npix / 4 + 1024);
  emit_marker(out, 0xD8);  // SOI
  emit_marker(out, 0xE0);  // APP0 / JFIF 1.01
  emit_u16(out, 16);
  const char jfif[5] = {'J', 'F', 'I', 'F', '\0'};
  out.insert(out.end(), jfif, jfif + 5);
  out.insert(out.end(), {0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00});
  emit_dqt(out, 0, luma_q);
  if (!gray) emit_dqt(out, 1, chroma_q);
  emit_marker(out, 0xC0);  // SOF0 (baseline)
  const int ncomp = gray ? 1 : 3;
  emit_u16(out, static_cast<std::uint16_t>(8 + 3 * ncomp));
  out.push_back(8);  // sample precision
  emit_u16(out, static_cast<std::uint16_t>(h));
  emit_u16(out, static_cast<std::uint16_t>(w));
  out.push_back(static_cast<std::uint8_t>(ncomp));
  out.insert(out.end(), {0x01, static_cast<std::uint8_t>((hy << 4) | vy), 0x00});
  if (!gray) {
    out.insert(out.end(), {0x02, 0x11, 0x01});
    out.insert(out.end(), {0x03, 0x11, 0x01});
  }
  emit_dht(out, 0, 0, dc_spec[0]);
  emit_dht(out, 1, 0, ac_spec[0]);
  if (!gray) {
    emit_dht(out, 0, 1, dc_spec[1]);
    emit_dht(out, 1, 1, ac_spec[1]);
  }
  if (opts.restart_interval_mcus > 0) {
    emit_marker(out, 0xDD);  // DRI
    emit_u16(out, 4);
    emit_u16(out, static_cast<std::uint16_t>(opts.restart_interval_mcus));
  }
  emit_marker(out, 0xDA);  // SOS
  emit_u16(out, static_cast<std::uint16_t>(6 + 2 * ncomp));
  out.push_back(static_cast<std::uint8_t>(ncomp));
  out.insert(out.end(), {0x01, 0x00});
  if (!gray) {
    out.insert(out.end(), {0x02, 0x11});
    out.insert(out.end(), {0x03, 0x11});
  }
  out.insert(out.end(), {0x00, 0x3F, 0x00});  // Ss, Se, Ah/Al

  // --- pass B: entropy-code the stored blocks ---
  BitWriter bw{out};
  int rst_index = 0;
  scan_symbols(
      blocks, blocks_per_mcu, opts.restart_interval_mcus,
      [&](int cls, int ssss, int diff) {
        bw.put_bits(dc_enc[cls].code[static_cast<std::size_t>(ssss)],
                    dc_enc[cls].length[static_cast<std::size_t>(ssss)]);
        if (ssss > 0) bw.put_bits(value_bits(diff, ssss), ssss);
      },
      [&](int cls, int sym, int value, int size) {
        bw.put_bits(ac_enc[cls].code[static_cast<std::size_t>(sym)],
                    ac_enc[cls].length[static_cast<std::size_t>(sym)]);
        if (size > 0) bw.put_bits(value_bits(value, size), size);
      },
      [&] {
        bw.finish();
        emit_marker(out, static_cast<std::uint8_t>(0xD0 + (rst_index++ & 7)));
      });
  bw.finish();
  emit_marker(out, 0xD9);  // EOI
  return out;
}

}  // namespace serve::codec
