#include "codec/deflate.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace serve::codec {

using jpeg::CodecError;

namespace {

// --- RFC 1951 constant tables ------------------------------------------------

constexpr std::array<int, 29> kLenBase{3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                       15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                       67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLenExtra{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                        2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::array<int, 30> kDistBase{1,    2,    3,    4,    5,    7,     9,    13,
                                        17,   25,   33,   49,   65,   97,    129,  193,
                                        257,  385,  513,  769,  1025, 1537,  2049, 3073,
                                        4097, 6145, 8193, 12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra{0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};
constexpr std::array<int, 19> kClcOrder{16, 17, 18, 0, 8, 7, 9, 6, 10, 5,
                                        11, 4, 12, 3, 13, 2, 14, 1, 15};

constexpr int kEndOfBlock = 256;
constexpr std::size_t kWindow = 32768;

// --- LSB-first bit I/O ---------------------------------------------------------

class LsbWriter {
 public:
  explicit LsbWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Writes `count` bits, LSB first (header fields, extra bits).
  void put(std::uint32_t bits, int count) {
    acc_ |= static_cast<std::uint64_t>(bits) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Huffman codes pack MSB-of-code first: emit bit-reversed.
  void put_code(std::uint32_t code, int len) {
    std::uint32_t rev = 0;
    for (int i = 0; i < len; ++i) rev |= ((code >> i) & 1u) << (len - 1 - i);
    put(rev, len);
  }

  void align_byte() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

class LsbReader {
 public:
  explicit LsbReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t bits(int count) {
    while (filled_ < count) {
      if (pos_ >= data_.size()) throw CodecError("deflate: stream exhausted");
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
    const auto v = static_cast<std::uint32_t>(acc_ & ((1u << count) - 1u));
    acc_ >>= count;
    filled_ -= count;
    return v;
  }

  void align_byte() {
    const int drop = filled_ % 8;
    acc_ >>= drop;
    filled_ -= drop;
  }

  std::uint8_t byte() {
    if (filled_ >= 8) {
      const auto v = static_cast<std::uint8_t>(acc_ & 0xFF);
      acc_ >>= 8;
      filled_ -= 8;
      return v;
    }
    if (pos_ >= data_.size()) throw CodecError("deflate: stream exhausted");
    return data_[pos_++];
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

// --- canonical Huffman decoding ------------------------------------------------

/// Canonical Huffman decoder built from per-symbol code lengths (0 = unused).
class HuffDecoder {
 public:
  void build(std::span<const std::uint8_t> lengths) {
    std::array<int, 16> count{};
    for (auto l : lengths) {
      if (l > 15) throw CodecError("deflate: code length > 15");
      ++count[l];
    }
    count[0] = 0;
    int total = 0;
    for (int l = 1; l <= 15; ++l) total += count[static_cast<std::size_t>(l)];
    if (total == 0) throw CodecError("deflate: empty Huffman code");
    int code = 0;
    int index = 0;
    for (int l = 1; l <= 15; ++l) {
      code = (code + count[static_cast<std::size_t>(l - 1)]) << 1;
      first_code_[static_cast<std::size_t>(l)] = code;
      first_index_[static_cast<std::size_t>(l)] = index;
      index += count[static_cast<std::size_t>(l)];
      num_[static_cast<std::size_t>(l)] = count[static_cast<std::size_t>(l)];
    }
    symbols_.resize(static_cast<std::size_t>(total));
    std::array<int, 16> next{};
    for (int l = 1; l <= 15; ++l) next[static_cast<std::size_t>(l)] = first_index_[static_cast<std::size_t>(l)];
    for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
      const int l = lengths[sym];
      if (l > 0) symbols_[static_cast<std::size_t>(next[static_cast<std::size_t>(l)]++)] = static_cast<int>(sym);
    }
  }

  int decode(LsbReader& br) const {
    int code = 0;
    for (int l = 1; l <= 15; ++l) {
      code = (code << 1) | static_cast<int>(br.bits(1));
      const int n = num_[static_cast<std::size_t>(l)];
      const int first = first_code_[static_cast<std::size_t>(l)];
      if (n > 0 && code < first + n) {
        return symbols_[static_cast<std::size_t>(first_index_[static_cast<std::size_t>(l)] + code - first)];
      }
    }
    throw CodecError("deflate: invalid Huffman code");
  }

 private:
  std::array<int, 16> first_code_{};
  std::array<int, 16> first_index_{};
  std::array<int, 16> num_{};
  std::vector<int> symbols_;
};

const HuffDecoder& fixed_litlen_decoder() {
  static const HuffDecoder dec = [] {
    std::array<std::uint8_t, 288> lengths{};
    for (int i = 0; i <= 143; ++i) lengths[static_cast<std::size_t>(i)] = 8;
    for (int i = 144; i <= 255; ++i) lengths[static_cast<std::size_t>(i)] = 9;
    for (int i = 256; i <= 279; ++i) lengths[static_cast<std::size_t>(i)] = 7;
    for (int i = 280; i <= 287; ++i) lengths[static_cast<std::size_t>(i)] = 8;
    HuffDecoder d;
    d.build(lengths);
    return d;
  }();
  return dec;
}

const HuffDecoder& fixed_dist_decoder() {
  static const HuffDecoder dec = [] {
    std::array<std::uint8_t, 30> lengths{};
    lengths.fill(5);
    HuffDecoder d;
    d.build(lengths);
    return d;
  }();
  return dec;
}

// --- fixed-code encoding helpers -----------------------------------------------

/// (code value, bit length) of a literal/length symbol in the fixed tree.
std::pair<std::uint32_t, int> fixed_litlen_code(int sym) {
  if (sym <= 143) return {static_cast<std::uint32_t>(0x30 + sym), 8};
  if (sym <= 255) return {static_cast<std::uint32_t>(0x190 + sym - 144), 9};
  if (sym <= 279) return {static_cast<std::uint32_t>(sym - 256), 7};
  return {static_cast<std::uint32_t>(0xC0 + sym - 280), 8};
}

int length_code(int len) {
  for (int i = 28; i >= 0; --i) {
    if (len >= kLenBase[static_cast<std::size_t>(i)]) return i;
  }
  throw CodecError("deflate: bad match length");
}

int distance_code(int dist) {
  for (int i = 29; i >= 0; --i) {
    if (dist >= kDistBase[static_cast<std::size_t>(i)]) return i;
  }
  throw CodecError("deflate: bad match distance");
}

// --- LZ77 greedy matcher ---------------------------------------------------------

struct Matcher {
  static constexpr int kHashBits = 15;
  static constexpr std::size_t kHashSize = 1u << kHashBits;
  static constexpr int kMaxChain = 64;

  explicit Matcher(std::span<const std::uint8_t> data)
      : data_(data), head_(kHashSize, -1), prev_(data.size(), -1) {}

  [[nodiscard]] std::uint32_t hash(std::size_t i) const noexcept {
    // 3-byte rolling hash.
    return (static_cast<std::uint32_t>(data_[i]) * 506832829u ^
            static_cast<std::uint32_t>(data_[i + 1]) * 2654435761u ^
            static_cast<std::uint32_t>(data_[i + 2]) * 40503u) &
           (kHashSize - 1);
  }

  void insert(std::size_t i) {
    if (i + 2 >= data_.size()) return;
    const auto h = hash(i);
    prev_[i] = head_[h];
    head_[h] = static_cast<std::int64_t>(i);
  }

  /// Longest match at `i` within the window; returns (length, distance) or
  /// length 0.
  std::pair<int, int> find(std::size_t i) const {
    if (i + 2 >= data_.size()) return {0, 0};
    const int max_len = static_cast<int>(std::min<std::size_t>(258, data_.size() - i));
    int best_len = 0, best_dist = 0;
    std::int64_t cand = head_[hash(i)];
    int chain = kMaxChain;
    while (cand >= 0 && chain-- > 0) {
      const auto c = static_cast<std::size_t>(cand);
      if (i - c > kWindow) break;
      int len = 0;
      while (len < max_len && data_[c + static_cast<std::size_t>(len)] ==
                                  data_[i + static_cast<std::size_t>(len)]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_dist = static_cast<int>(i - c);
        if (len == max_len) break;
      }
      cand = prev_[c];
    }
    return {best_len, best_dist};
  }

  std::span<const std::uint8_t> data_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> prev_;
};

std::vector<std::uint8_t> deflate_stored(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(65535, data.size() - pos);
    const bool final = pos + chunk == data.size();
    out.push_back(final ? 0x01 : 0x00);  // BFINAL + BTYPE=00 (byte aligned)
    const auto len = static_cast<std::uint16_t>(chunk);
    out.push_back(static_cast<std::uint8_t>(len & 0xFF));
    out.push_back(static_cast<std::uint8_t>(len >> 8));
    out.push_back(static_cast<std::uint8_t>(~len & 0xFF));
    out.push_back(static_cast<std::uint8_t>((~len >> 8) & 0xFF));
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(pos),
               data.begin() + static_cast<std::ptrdiff_t>(pos + chunk));
    pos += chunk;
  } while (pos < data.size());
  return out;
}

}  // namespace

std::uint32_t adler32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t a = 1, b = 0;
  std::size_t i = 0;
  while (i < data.size()) {
    // Largest n with no overflow before the mod (per zlib).
    const std::size_t n = std::min<std::size_t>(5552, data.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      a += data[i + k];
      b += a;
    }
    a %= 65521;
    b %= 65521;
    i += n;
  }
  return (b << 16) | a;
}

std::vector<std::uint8_t> deflate(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 2 + 64);
  LsbWriter bw{out};
  bw.put(1, 1);  // BFINAL
  bw.put(1, 2);  // BTYPE = 01, fixed Huffman

  if (data.empty()) {
    const auto [code, len] = fixed_litlen_code(kEndOfBlock);
    bw.put_code(code, len);
    bw.align_byte();
    return out;
  }

  Matcher matcher{data};
  std::size_t i = 0;
  while (i < data.size()) {
    const auto [mlen, mdist] = matcher.find(i);
    if (mlen >= 3) {
      const int lc = length_code(mlen);
      const auto [code, clen] = fixed_litlen_code(257 + lc);
      bw.put_code(code, clen);
      if (kLenExtra[static_cast<std::size_t>(lc)] > 0) {
        bw.put(static_cast<std::uint32_t>(mlen - kLenBase[static_cast<std::size_t>(lc)]),
               kLenExtra[static_cast<std::size_t>(lc)]);
      }
      const int dc = distance_code(mdist);
      bw.put_code(static_cast<std::uint32_t>(dc), 5);
      if (kDistExtra[static_cast<std::size_t>(dc)] > 0) {
        bw.put(static_cast<std::uint32_t>(mdist - kDistBase[static_cast<std::size_t>(dc)]),
               kDistExtra[static_cast<std::size_t>(dc)]);
      }
      for (int k = 0; k < mlen; ++k) matcher.insert(i + static_cast<std::size_t>(k));
      i += static_cast<std::size_t>(mlen);
    } else {
      const auto [code, clen] = fixed_litlen_code(data[i]);
      bw.put_code(code, clen);
      matcher.insert(i);
      ++i;
    }
  }
  const auto [code, len] = fixed_litlen_code(kEndOfBlock);
  bw.put_code(code, len);
  bw.align_byte();

  // Incompressible input: fall back to stored blocks.
  if (out.size() >= data.size() + 5 * (data.size() / 65535 + 1)) return deflate_stored(data);
  return out;
}

std::vector<std::uint8_t> inflate(std::span<const std::uint8_t> data, std::size_t size_hint) {
  std::vector<std::uint8_t> out;
  out.reserve(size_hint);
  LsbReader br{data};
  bool final = false;
  while (!final) {
    final = br.bits(1) != 0;
    const std::uint32_t btype = br.bits(2);
    if (btype == 0) {
      // Stored block.
      br.align_byte();
      const std::uint32_t len = br.byte() | (static_cast<std::uint32_t>(br.byte()) << 8);
      const std::uint32_t nlen = br.byte() | (static_cast<std::uint32_t>(br.byte()) << 8);
      if ((len ^ nlen) != 0xFFFF) throw CodecError("deflate: stored-block length mismatch");
      for (std::uint32_t k = 0; k < len; ++k) out.push_back(br.byte());
      continue;
    }
    if (btype == 3) throw CodecError("deflate: reserved block type");

    HuffDecoder dyn_litlen, dyn_dist;
    const HuffDecoder* litlen = nullptr;
    const HuffDecoder* dist = nullptr;
    if (btype == 1) {
      litlen = &fixed_litlen_decoder();
      dist = &fixed_dist_decoder();
    } else {
      const int hlit = static_cast<int>(br.bits(5)) + 257;
      const int hdist = static_cast<int>(br.bits(5)) + 1;
      const int hclen = static_cast<int>(br.bits(4)) + 4;
      std::array<std::uint8_t, 19> clc_lengths{};
      for (int k = 0; k < hclen; ++k) {
        clc_lengths[static_cast<std::size_t>(kClcOrder[static_cast<std::size_t>(k)])] =
            static_cast<std::uint8_t>(br.bits(3));
      }
      HuffDecoder clc;
      clc.build(clc_lengths);
      std::vector<std::uint8_t> lengths;
      lengths.reserve(static_cast<std::size_t>(hlit + hdist));
      while (static_cast<int>(lengths.size()) < hlit + hdist) {
        const int sym = clc.decode(br);
        if (sym < 16) {
          lengths.push_back(static_cast<std::uint8_t>(sym));
        } else if (sym == 16) {
          if (lengths.empty()) throw CodecError("deflate: repeat with no previous length");
          const int count = 3 + static_cast<int>(br.bits(2));
          for (int k = 0; k < count; ++k) lengths.push_back(lengths.back());
        } else if (sym == 17) {
          const int count = 3 + static_cast<int>(br.bits(3));
          lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
        } else {
          const int count = 11 + static_cast<int>(br.bits(7));
          lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
        }
      }
      if (static_cast<int>(lengths.size()) != hlit + hdist) {
        throw CodecError("deflate: code-length overrun");
      }
      dyn_litlen.build(std::span<const std::uint8_t>{lengths.data(), static_cast<std::size_t>(hlit)});
      dyn_dist.build(std::span<const std::uint8_t>{lengths.data() + hlit,
                                                   static_cast<std::size_t>(hdist)});
      litlen = &dyn_litlen;
      dist = &dyn_dist;
    }

    while (true) {
      const int sym = litlen->decode(br);
      if (sym < 256) {
        out.push_back(static_cast<std::uint8_t>(sym));
        continue;
      }
      if (sym == kEndOfBlock) break;
      if (sym > 285) throw CodecError("deflate: invalid length symbol");
      const int lc = sym - 257;
      const int len = kLenBase[static_cast<std::size_t>(lc)] +
                      static_cast<int>(br.bits(kLenExtra[static_cast<std::size_t>(lc)]));
      const int dsym = dist->decode(br);
      if (dsym > 29) throw CodecError("deflate: invalid distance symbol");
      const int d = kDistBase[static_cast<std::size_t>(dsym)] +
                    static_cast<int>(br.bits(kDistExtra[static_cast<std::size_t>(dsym)]));
      if (static_cast<std::size_t>(d) > out.size()) {
        throw CodecError("deflate: distance beyond output");
      }
      const std::size_t start = out.size() - static_cast<std::size_t>(d);
      for (int k = 0; k < len; ++k) out.push_back(out[start + static_cast<std::size_t>(k)]);
    }
  }
  return out;
}

std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  // CMF: deflate, 32K window (0x78); FLG chosen so (CMF<<8 | FLG) % 31 == 0.
  out.push_back(0x78);
  out.push_back(0x9C);
  auto body = deflate(data);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t a = adler32(data);
  out.push_back(static_cast<std::uint8_t>(a >> 24));
  out.push_back(static_cast<std::uint8_t>((a >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((a >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(a & 0xFF));
  return out;
}

std::vector<std::uint8_t> zlib_decompress(std::span<const std::uint8_t> data,
                                          std::size_t size_hint) {
  if (data.size() < 6) throw CodecError("zlib: stream too short");
  const std::uint8_t cmf = data[0], flg = data[1];
  if ((cmf & 0x0F) != 8) throw CodecError("zlib: not deflate");
  if ((static_cast<unsigned>(cmf) * 256 + flg) % 31 != 0) throw CodecError("zlib: bad header check");
  if ((flg & 0x20) != 0) throw CodecError("zlib: preset dictionary unsupported");
  auto body = inflate(data.subspan(2, data.size() - 6), size_hint);
  const std::uint32_t stored = (static_cast<std::uint32_t>(data[data.size() - 4]) << 24) |
                               (static_cast<std::uint32_t>(data[data.size() - 3]) << 16) |
                               (static_cast<std::uint32_t>(data[data.size() - 2]) << 8) |
                               static_cast<std::uint32_t>(data[data.size() - 1]);
  if (stored != adler32(body)) throw CodecError("zlib: Adler-32 mismatch");
  return body;
}

}  // namespace serve::codec
