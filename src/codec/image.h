// Raster image container + PPM/PGM I/O for the preprocessing substrate.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <vector>

namespace serve::codec {

/// 8-bit raster image, interleaved rows (RGB or grayscale).
class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels)
      : width_(width), height_(height), channels_(channels) {
    if (width <= 0 || height <= 0) throw std::invalid_argument("Image: non-positive size");
    if (channels != 1 && channels != 3) throw std::invalid_argument("Image: channels must be 1 or 3");
    data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                     static_cast<std::size_t>(channels),
                 0);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int channels() const noexcept { return channels_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::int64_t pixels() const noexcept {
    return static_cast<std::int64_t>(width_) * height_;
  }

  [[nodiscard]] std::uint8_t& at(int x, int y, int c) { return data_[index(x, y, c)]; }
  [[nodiscard]] std::uint8_t at(int x, int y, int c) const { return data_[index(x, y, c)]; }

  /// Clamped accessor: coordinates outside the image read the nearest edge
  /// pixel (used by resamplers and block padding).
  [[nodiscard]] std::uint8_t at_clamped(int x, int y, int c) const noexcept {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[index(x, y, c)];
  }

  [[nodiscard]] std::vector<std::uint8_t>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return data_; }

  bool operator==(const Image&) const = default;

 private:
  [[nodiscard]] std::size_t index(int x, int y, int c) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_ || c < 0 || c >= channels_) {
      throw std::out_of_range("Image: pixel access out of range");
    }
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)) *
               static_cast<std::size_t>(channels_) +
           static_cast<std::size_t>(c);
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Mean absolute per-sample difference — used by round-trip quality tests.
[[nodiscard]] double mean_abs_diff(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB (infinity for identical images).
[[nodiscard]] double psnr(const Image& a, const Image& b);

/// Binary PPM (P6, 3-channel) / PGM (P5, 1-channel) round-trip.
void write_pnm(const Image& img, const std::filesystem::path& path);
[[nodiscard]] Image read_pnm(const std::filesystem::path& path);

}  // namespace serve::codec
