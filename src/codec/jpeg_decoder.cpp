#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "codec/dct.h"
#include "codec/jpeg.h"
#include "codec/simd_kernels.h"
#include "codec/jpeg_huffman.h"
#include "codec/jpeg_tables.h"

namespace serve::codec {

namespace jpeg {
namespace {

/// Sign extension of an ssss-bit magnitude (T.81 F.12).
int extend(int v, int ssss) noexcept {
  return v < (1 << (ssss - 1)) ? v - (1 << ssss) + 1 : v;
}

struct Component {
  int id = 0;
  int h = 1, v = 1;        ///< sampling factors
  int quant_id = 0;
  int dc_table = 0, ac_table = 0;
  int plane_w = 0, plane_h = 0;        ///< subsampled plane dims
  int blocks_w = 0, blocks_h = 0;      ///< plane dims in 8x8 blocks (MCU-padded)
  std::vector<float> plane;            ///< decoded samples
  int dc_pred = 0;
  /// Dequantization table in natural order. In the fast path the AAN IDCT's
  /// per-coefficient prescale is folded in, so entropy decode writes
  /// IDCT-ready coefficients directly.
  std::array<float, kBlockSize> dequant{};
};

struct Parser {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  std::uint8_t u8() {
    if (pos >= data.size()) throw CodecError("unexpected end of stream");
    return data[pos++];
  }
  std::uint16_t u16() {
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  void skip(std::size_t n) {
    if (pos + n > data.size()) throw CodecError("unexpected end of stream");
    pos += n;
  }
};

struct DecoderState {
  int width = 0, height = 0;
  std::vector<Component> comps;
  std::array<std::array<std::uint16_t, kBlockSize>, 4> quant{};
  std::array<bool, 4> quant_present{};
  std::array<DecodeTable, 4> dc_tables;
  std::array<DecodeTable, 4> ac_tables;
  int restart_interval = 0;
  bool have_sof = false;
  std::size_t scan_start = 0;  ///< offset of entropy data after SOS header
};

void parse_dqt(Parser& p, DecoderState& st, std::uint16_t seg_len) {
  std::size_t remaining = seg_len - 2u;
  while (remaining > 0) {
    const std::uint8_t pq_tq = p.u8();
    const int precision = pq_tq >> 4;
    const int id = pq_tq & 0x0F;
    if (id > 3) throw CodecError("DQT: table id out of range");
    if (precision > 1) throw CodecError("DQT: bad precision");
    const std::size_t entry = precision == 0 ? 65u : 129u;
    if (remaining < entry) throw CodecError("DQT: truncated segment");
    for (int i = 0; i < kBlockSize; ++i) {
      const std::uint16_t q = precision == 0 ? p.u8() : p.u16();
      st.quant[static_cast<std::size_t>(id)][kZigZag[static_cast<std::size_t>(i)]] = q;
    }
    st.quant_present[static_cast<std::size_t>(id)] = true;
    remaining -= entry;
  }
}

void parse_dht(Parser& p, DecoderState& st, std::uint16_t seg_len) {
  std::size_t remaining = seg_len - 2u;
  while (remaining > 0) {
    const std::uint8_t tc_th = p.u8();
    const int cls = tc_th >> 4;
    const int id = tc_th & 0x0F;
    if (cls > 1 || id > 3) throw CodecError("DHT: bad table class/id");
    std::uint8_t bits[16];
    int count = 0;
    for (auto& b : bits) {
      b = p.u8();
      count += b;
    }
    if (count > 256) throw CodecError("DHT: too many codes");
    std::vector<std::uint8_t> vals(static_cast<std::size_t>(count));
    for (auto& v : vals) v = p.u8();
    auto& table = cls == 0 ? st.dc_tables[static_cast<std::size_t>(id)]
                           : st.ac_tables[static_cast<std::size_t>(id)];
    table.build(bits, vals.data(), count);
    if (remaining < 17u + static_cast<std::size_t>(count)) throw CodecError("DHT: truncated");
    remaining -= 17u + static_cast<std::size_t>(count);
  }
}

void parse_sof0(Parser& p, DecoderState& st) {
  const int precision = p.u8();
  if (precision != 8) throw CodecError("SOF0: only 8-bit precision supported");
  st.height = p.u16();
  st.width = p.u16();
  const int ncomp = p.u8();
  if (st.width == 0 || st.height == 0) throw CodecError("SOF0: zero dimensions");
  // Cap total pixels so a corrupted dimension field cannot demand a
  // multi-gigabyte allocation before entropy decoding even starts.
  if (static_cast<std::int64_t>(st.width) * st.height > (std::int64_t{1} << 26)) {
    throw CodecError("SOF0: image dimensions exceed decoder limit");
  }
  if (ncomp != 1 && ncomp != 3) throw CodecError("SOF0: only 1 or 3 components supported");
  st.comps.resize(static_cast<std::size_t>(ncomp));
  for (auto& c : st.comps) {
    c.id = p.u8();
    const std::uint8_t hv = p.u8();
    c.h = hv >> 4;
    c.v = hv & 0x0F;
    c.quant_id = p.u8();
    if (c.h < 1 || c.h > 2 || c.v < 1 || c.v > 2) {
      throw CodecError("SOF0: unsupported sampling factor");
    }
    if (c.quant_id > 3) throw CodecError("SOF0: bad quant table id");
  }
  st.have_sof = true;
}

void parse_sos(Parser& p, DecoderState& st) {
  if (!st.have_sof) throw CodecError("SOS before SOF");
  const int ncomp = p.u8();
  if (ncomp != static_cast<int>(st.comps.size())) {
    throw CodecError("SOS: non-interleaved scans not supported");
  }
  for (int i = 0; i < ncomp; ++i) {
    const int cid = p.u8();
    const std::uint8_t tables = p.u8();
    if ((tables >> 4) > 3 || (tables & 0x0F) > 3) {
      throw CodecError("SOS: Huffman table selector out of range");
    }
    bool found = false;
    for (auto& c : st.comps) {
      if (c.id == cid) {
        c.dc_table = tables >> 4;
        c.ac_table = tables & 0x0F;
        found = true;
      }
    }
    if (!found) throw CodecError("SOS: unknown component id");
  }
  p.skip(3);  // Ss, Se, Ah/Al — fixed for baseline
  st.scan_start = p.pos;
}

DecoderState parse_headers(std::span<const std::uint8_t> data) {
  Parser p{data};
  DecoderState st;
  if (p.u8() != 0xFF || p.u8() != 0xD8) throw CodecError("missing SOI marker");
  while (true) {
    std::uint8_t b = p.u8();
    if (b != 0xFF) throw CodecError("expected marker");
    std::uint8_t marker = p.u8();
    while (marker == 0xFF) marker = p.u8();  // fill bytes
    switch (marker) {
      case 0xC0:  // SOF0 baseline
      case 0xC1: {
        const std::uint16_t len = p.u16();
        (void)len;
        parse_sof0(p, st);
        break;
      }
      case 0xC2:
        throw CodecError("progressive JPEG (SOF2) not supported");
      case 0xC4: {
        const std::uint16_t len = p.u16();
        parse_dht(p, st, len);
        break;
      }
      case 0xDB: {
        const std::uint16_t len = p.u16();
        parse_dqt(p, st, len);
        break;
      }
      case 0xDD: {
        const std::uint16_t len = p.u16();
        if (len != 4) throw CodecError("DRI: bad length");
        st.restart_interval = p.u16();
        break;
      }
      case 0xDA: {
        const std::uint16_t len = p.u16();
        (void)len;
        parse_sos(p, st);
        return st;  // entropy data follows
      }
      case 0xD9:
        throw CodecError("EOI before SOS (no image data)");
      default: {
        if (marker >= 0xD0 && marker <= 0xD7) throw CodecError("unexpected RST marker");
        // Skippable segment (APPn, COM, ...)
        const std::uint16_t len = p.u16();
        if (len < 2) throw CodecError("bad segment length");
        p.skip(len - 2u);
        break;
      }
    }
  }
}

/// Entropy-decodes one 8x8 block into `coeffs` (already dequantized via
/// `c.dequant`). Returns true when the block carries only a DC coefficient,
/// letting the caller skip the IDCT entirely.
inline bool decode_block(BitReader& br, Component& c, const DecodeTable& dc,
                         const DecodeTable& ac, float coeffs[64]) {
  // Fused symbol+magnitude window: one peek covers the Huffman code (lookup
  // hits are <= kHuffLookupBits bits) and the magnitude bits that follow, so
  // the common case pays one refill check and one consume per coefficient.
  constexpr int kWindow = kHuffLookupBits + 11;  // longest baseline magnitude
  {
    const std::uint32_t w = br.peek(kWindow);
    const std::uint16_t entry = dc.lookup[w >> (kWindow - kHuffLookupBits)];
    int ssss;
    if (entry != 0 && (entry >> 8) <= 11) {  // baseline DC magnitude bound
      const int len = entry & 0xFF;
      ssss = entry >> 8;
      if (ssss > 0) {
        const auto v = static_cast<int>((w >> (kWindow - len - ssss)) &
                                        ((1u << ssss) - 1u));
        br.consume(len + ssss);
        c.dc_pred += extend(v, ssss);
      } else {
        br.consume(len);
      }
    } else {
      ssss = entry != 0 ? dc.decode(br) : dc.decode_slow(br);
      // Baseline DC magnitudes are at most 11 bits (T.81 table F.1); a
      // corrupted table can hand back any byte, which would overflow
      // the shifts in extend().
      if (ssss > 15) throw CodecError("DC magnitude category out of range");
      if (ssss > 0) c.dc_pred += extend(static_cast<int>(br.get_bits(ssss)), ssss);
    }
  }
  coeffs[0] = static_cast<float>(c.dc_pred) * c.dequant[0];

  int k = 1;
  bool dc_only = true;
  while (k < 64) {
    const std::uint32_t w = br.peek(kWindow);
    const std::uint16_t entry = ac.lookup[w >> (kWindow - kHuffLookupBits)];
    int run, size, v = 0;
    if (entry != 0 && (entry & 0xFF) + ((entry >> 8) & 0x0F) <= kWindow) {
      const int len = entry & 0xFF;
      const int rs = entry >> 8;
      run = rs >> 4;
      size = rs & 0x0F;
      if (size > 0) {
        v = extend(static_cast<int>((w >> (kWindow - len - size)) &
                                    ((1u << size) - 1u)),
                   size);
        br.consume(len + size);
      } else {
        br.consume(len);
      }
    } else {
      const std::uint8_t rs = entry != 0 ? ac.decode(br) : ac.decode_slow(br);
      run = rs >> 4;
      size = rs & 0x0F;
      if (size > 0) v = extend(static_cast<int>(br.get_bits(size)), size);
    }
    if (size == 0) {
      if (run == 15) {
        k += 16;  // ZRL
        continue;
      }
      break;  // EOB
    }
    if (dc_only) {
      // First nonzero AC: zero the rest of the block lazily so DC-only
      // blocks (the common case in smooth regions) never touch it.
      std::memset(coeffs + 1, 0, 63 * sizeof(float));
      dc_only = false;
    }
    k += run;
    if (k > 63) throw CodecError("AC run past end of block");
    const int nat = kZigZag[static_cast<std::size_t>(k)];
    coeffs[nat] = static_cast<float>(v) * c.dequant[static_cast<std::size_t>(nat)];
    ++k;
  }
  return dc_only;
}

}  // namespace
}  // namespace jpeg

JpegInfo peek_jpeg_info(std::span<const std::uint8_t> data) {
  using namespace jpeg;
  DecoderState st = parse_headers(data);
  JpegInfo info;
  info.width = st.width;
  info.height = st.height;
  info.components = static_cast<int>(st.comps.size());
  info.subsampling = Subsampling::k444;
  if (st.comps.size() == 3 && st.comps[0].h == 2) {
    info.subsampling = st.comps[0].v == 2 ? Subsampling::k420 : Subsampling::k422;
  }
  return info;
}

Image decode_jpeg(std::span<const std::uint8_t> data, const JpegDecodeOptions& opts) {
  using namespace jpeg;
  DecoderState st = parse_headers(data);
  const bool fast_idct = !opts.use_reference_idct;

  int hmax = 1, vmax = 1;
  for (const auto& c : st.comps) {
    hmax = std::max(hmax, c.h);
    vmax = std::max(vmax, c.v);
  }
  const int mcu_w = 8 * hmax, mcu_h = 8 * vmax;
  const int mcus_x = (st.width + mcu_w - 1) / mcu_w;
  const int mcus_y = (st.height + mcu_h - 1) / mcu_h;

  for (auto& c : st.comps) {
    if (!st.quant_present[static_cast<std::size_t>(c.quant_id)]) {
      throw CodecError("missing quantization table");
    }
    c.plane_w = (st.width * c.h + hmax - 1) / hmax;
    c.plane_h = (st.height * c.v + vmax - 1) / vmax;
    c.blocks_w = mcus_x * c.h;
    c.blocks_h = mcus_y * c.v;
    c.plane.assign(static_cast<std::size_t>(c.blocks_w) * 8 * static_cast<std::size_t>(c.blocks_h) * 8,
                   0.0f);
    const auto& quant = st.quant[static_cast<std::size_t>(c.quant_id)];
    const auto& prescale = idct_prescale();
    for (int i = 0; i < kBlockSize; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      c.dequant[idx] = fast_idct ? static_cast<float>(quant[idx]) * prescale[idx]
                                 : static_cast<float>(quant[idx]);
    }
  }

  const auto& K = simd::kernels();
  BitReader br{data.data() + st.scan_start, data.size() - st.scan_start};
  alignas(32) float coeffs[64];
  alignas(32) float samples[64];
  int mcu_count = 0;
  for (int my = 0; my < mcus_y; ++my) {
    for (int mx = 0; mx < mcus_x; ++mx) {
      if (st.restart_interval > 0 && mcu_count > 0 && mcu_count % st.restart_interval == 0) {
        br.consume_restart_marker();
        for (auto& c : st.comps) c.dc_pred = 0;
      }
      ++mcu_count;
      for (auto& c : st.comps) {
        const auto& dc = st.dc_tables[static_cast<std::size_t>(c.dc_table)];
        const auto& ac = st.ac_tables[static_cast<std::size_t>(c.ac_table)];
        if (!dc.present || !ac.present) throw CodecError("missing Huffman table");
        for (int by = 0; by < c.v; ++by) {
          for (int bx = 0; bx < c.h; ++bx) {
            const bool dc_only = decode_block(br, c, dc, ac, coeffs);
            const int px = (mx * c.h + bx) * 8;
            const int py = (my * c.v + by) * 8;
            const int stride = c.blocks_w * 8;
            float* dst0 = &c.plane[static_cast<std::size_t>(py) * static_cast<std::size_t>(stride) +
                                   static_cast<std::size_t>(px)];
            if (dc_only && fast_idct) {
              // A DC-only block is flat: every sample equals the folded DC
              // coefficient (the AAN prescale already includes the /8).
              const float flat = coeffs[0] + 128.0f;
              for (int y = 0; y < 8; ++y) {
                float* row = dst0 + static_cast<std::size_t>(y) * static_cast<std::size_t>(stride);
                for (int x = 0; x < 8; ++x) row[x] = flat;
              }
              continue;
            }
            if (dc_only) std::memset(coeffs + 1, 0, 63 * sizeof(float));
            if (fast_idct) {
              // The IDCT is linear and a pure-DC input is flat (see above), so
              // the +128 level shift folds into the DC coefficient and the
              // writeback becomes a plain row copy.
              coeffs[0] += 128.0f;
              K.idct8x8_scaled(coeffs, samples);
              for (int y = 0; y < 8; ++y) {
                std::memcpy(dst0 + static_cast<std::size_t>(y) * static_cast<std::size_t>(stride),
                            samples + y * 8, 8 * sizeof(float));
              }
            } else {
              idct8x8_ref(coeffs, samples);
              for (int y = 0; y < 8; ++y) {
                float* row = dst0 + static_cast<std::size_t>(y) * static_cast<std::size_t>(stride);
                for (int x = 0; x < 8; ++x) row[x] = samples[y * 8 + x] + 128.0f;
              }
            }
          }
        }
      }
    }
  }

  // Upsample (nearest) and convert to the output image. Source indices per
  // axis are precomputed per component, so the pixel loop is a gather plus
  // the YCbCr matrix — no divisions.
  const bool gray = st.comps.size() == 1;
  Image img{st.width, st.height, gray ? 1 : 3};
  std::array<std::vector<int>, 3> xmap;
  for (std::size_t ci = 0; ci < st.comps.size(); ++ci) {
    const auto& c = st.comps[ci];
    xmap[ci].resize(static_cast<std::size_t>(st.width));
    for (int x = 0; x < st.width; ++x) {
      xmap[ci][static_cast<std::size_t>(x)] = std::min(x * c.h / hmax, c.plane_w - 1);
    }
  }
  auto comp_row = [&](const Component& c, int y) -> const float* {
    const int sy = std::min(y * c.v / vmax, c.plane_h - 1);
    return &c.plane[static_cast<std::size_t>(sy) * static_cast<std::size_t>(c.blocks_w) * 8u];
  };
  // Color conversion runs on full-resolution rows through the dispatched row
  // kernels (codec/cpu_features.h). Components at full horizontal sampling
  // (xmap is identity) feed their plane row straight in; subsampled chroma is
  // gathered into a scratch row first.
  std::array<bool, 3> identity{};
  for (std::size_t ci = 0; ci < st.comps.size(); ++ci) {
    identity[ci] = st.comps[ci].h == hmax && st.comps[ci].plane_w >= st.width;
  }
  std::vector<float> gather_buf(static_cast<std::size_t>(st.width) *
                                st.comps.size());
  auto full_row = [&](std::size_t ci, int y) -> const float* {
    const float* src = comp_row(st.comps[ci], y);
    if (identity[ci]) return src;
    float* dst = gather_buf.data() + ci * static_cast<std::size_t>(st.width);
    if (st.comps[ci].h * 2 == hmax) {
      // The only supported sampling factors are 1 and 2, so every
      // non-identity horizontal map is exactly dst[x] = src[x >> 1].
      K.upsample2_row(src, dst, st.width);
    } else {
      const int* xm = xmap[ci].data();
      for (int x = 0; x < st.width; ++x) dst[x] = src[xm[x]];
    }
    return dst;
  };
  std::uint8_t* out = img.data().data();
  for (int y = 0; y < st.height; ++y) {
    if (gray) {
      K.gray_to_u8_row(full_row(0, y), out, st.width);
      out += st.width;
    } else {
      const float* yrow = full_row(0, y);
      const float* cbrow = full_row(1, y);
      const float* crrow = full_row(2, y);
      K.ycbcr_to_rgb_row(yrow, cbrow, crrow, out, st.width);
      out += static_cast<std::size_t>(st.width) * 3;
    }
  }
  return img;
}

Image decode_jpeg(std::span<const std::uint8_t> data) { return decode_jpeg(data, {}); }

}  // namespace serve::codec
