// PNG (RFC 2083 / ISO 15948) encoder and decoder, written from scratch on
// top of the in-repo zlib/DEFLATE implementation.
//
// The paper's serving workloads accept images "in many different sizes,
// formats"; PNG is the lossless counterpart to JPEG with a very different
// wire-size/decode-cost trade-off (see bench/ablation_image_format).
// Supports 8-bit grayscale and RGB, adaptive per-row filtering (None / Sub /
// Up / Average / Paeth), no interlacing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/image.h"

namespace serve::codec {

struct PngEncodeOptions {
  /// Per-row adaptive filter selection (minimum-absolute-sum heuristic).
  /// When false every row uses filter type None (faster, compresses worse).
  bool adaptive_filters = true;
};

/// Encodes an 8-bit grayscale or RGB image as a PNG byte stream.
[[nodiscard]] std::vector<std::uint8_t> encode_png(const Image& img,
                                                   const PngEncodeOptions& opts = {});

/// Decodes a PNG stream (8-bit gray/RGB, non-interlaced). Throws
/// jpeg::CodecError on malformed or unsupported input.
[[nodiscard]] Image decode_png(std::span<const std::uint8_t> data);

/// Header summary without decompressing the pixel data.
struct PngInfo {
  int width = 0;
  int height = 0;
  int channels = 0;
};
[[nodiscard]] PngInfo peek_png_info(std::span<const std::uint8_t> data);

}  // namespace serve::codec
