// Internal kernel table behind the codec's runtime SIMD dispatch
// (codec/cpu_features.h). One table per tier; the scalar table defines the
// semantics and the SIMD tables must match it within the `*_ref` contracts.
//
// Every kernel is a leaf: no allocation, no exceptions, caller validates
// sizes. Row kernels may read only the bytes the scalar loop would read plus
// an explicitly passed slack (`avail` arguments); implementations fall back
// to scalar lanes near buffer ends instead of over-reading.
#pragma once

#include <cstddef>
#include <cstdint>

#include "codec/cpu_features.h"

namespace serve::codec::simd {

struct KernelTable {
  /// AAN inverse DCT over coefficients already multiplied by
  /// `jpeg::idct_prescale()` — same contract as `jpeg::idct8x8_scaled`.
  void (*idct8x8_scaled)(const float in[64], float out[64]) noexcept;

  /// One image row of JPEG color conversion: interleaves clamp255(YCbCr->RGB)
  /// into `out[3*n]`. `cb`/`cr` are full-resolution rows (caller gathers
  /// subsampled planes first); all three input rows hold `n` floats.
  void (*ycbcr_to_rgb_row)(const float* y, const float* cb, const float* cr,
                           std::uint8_t* out, int n) noexcept;

  /// Grayscale row: out[i] = clamp255(y[i]) for i < n.
  void (*gray_to_u8_row)(const float* y, std::uint8_t* out, int n) noexcept;

  /// Horizontal bilinear pass over one interleaved source row. For each
  /// destination x: mrow[x*ch+c] = p0[c]*(1-w1[x]) + p1[c]*w1[x] with
  /// p0 = srow + i0[x]*ch, p1 = srow + i1[x]*ch. `srow_avail` is the number
  /// of bytes readable starting at `srow` (the kernel may use vector loads
  /// only where they stay inside that bound).
  void (*resize_hpass_row)(const std::uint8_t* srow, float* mrow, const int* i0,
                           const int* i1, const float* w1, int dst_w, int ch,
                           std::size_t srow_avail) noexcept;

  /// Vertical bilinear blend of two float rows into u8:
  /// out[i] = round_clamp255(r0[i]*(1-w) + r1[i]*w) for i < n.
  void (*resize_vpass_row)(const float* r0, const float* r1, float w,
                           std::uint8_t* out, std::size_t n) noexcept;

  /// 2x nearest-neighbour horizontal upsample: dst[i] = src[i >> 1] for
  /// i < dst_n (JPEG 4:2:0/4:2:2 chroma rows; src holds ceil(dst_n/2)).
  void (*upsample2_row)(const float* src, float* dst, int dst_n) noexcept;

  /// CHW normalization of `n` interleaved RGB pixels starting at `p` into
  /// planar outputs: r[i] = (p[3i+0]/255 - mean[0]) * inv_std[0], etc.
  /// Bit-exact against the scalar formula (IEEE div/sub/mul, no FMA).
  void (*normalize_rgb_row)(const std::uint8_t* p, float* r, float* g, float* b,
                            std::size_t n, const float* mean,
                            const float* inv_std) noexcept;
};

/// Table for `cpu::active_tier()` (scalar when dispatch is pinned there).
[[nodiscard]] const KernelTable& kernels() noexcept;

/// Table for an explicit tier (tests sweep tiers; throws nothing — callers
/// check `cpu::tier_supported` before executing the returned kernels).
[[nodiscard]] const KernelTable& kernels_for(cpu::SimdTier t) noexcept;

// Per-tier tables (defined in simd_scalar.cpp / simd_sse2.cpp /
// simd_avx2.cpp). On builds without the matching ISA the SSE2/AVX2 tables
// alias the scalar entries and the tier reports unsupported.
extern const KernelTable kScalarKernels;
extern const KernelTable kSse2Kernels;
extern const KernelTable kAvx2Kernels;

/// True when this *build* carries real vector code for the tier (regardless
/// of host CPU support); scalar is always true.
[[nodiscard]] bool tier_compiled(cpu::SimdTier t) noexcept;

namespace detail {
// Constant-initialized in simd_sse2.cpp / simd_avx2.cpp: true when that TU
// compiled real vector code rather than aliasing the scalar table.
extern const bool kSse2Compiled;
extern const bool kAvx2Compiled;
}  // namespace detail

}  // namespace serve::codec::simd
