#include "codec/png.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "codec/deflate.h"

namespace serve::codec {

using jpeg::CodecError;

namespace {

constexpr std::array<std::uint8_t, 8> kSignature{137, 'P', 'N', 'G', 13, 10, 26, 10};

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t crc = 0xFFFFFFFFu) noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  for (std::size_t i = 0; i < len; ++i) crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  return crc;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_chunk(std::vector<std::uint8_t>& out, const char type[4],
               std::span<const std::uint8_t> payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  const std::size_t type_at = out.size();
  out.insert(out.end(), type, type + 4);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc =
      crc32(out.data() + type_at, 4 + payload.size()) ^ 0xFFFFFFFFu;
  put_u32(out, crc);
}

int paeth(int a, int b, int c) noexcept {
  const int p = a + b - c;
  const int pa = std::abs(p - a), pb = std::abs(p - b), pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return a;
  if (pb <= pc) return b;
  return c;
}

/// Applies filter `type` to one row into `dst` (without the leading filter
/// byte). `prev` is the previous unfiltered row (nullptr on the first row).
void filter_row(int type, const std::uint8_t* row, const std::uint8_t* prev, int bytes, int bpp,
                std::uint8_t* dst) {
  for (int i = 0; i < bytes; ++i) {
    const int left = i >= bpp ? row[i - bpp] : 0;
    const int up = prev != nullptr ? prev[i] : 0;
    const int ul = (prev != nullptr && i >= bpp) ? prev[i - bpp] : 0;
    int v = row[i];
    switch (type) {
      case 0: break;
      case 1: v -= left; break;
      case 2: v -= up; break;
      case 3: v -= (left + up) / 2; break;
      case 4: v -= paeth(left, up, ul); break;
      default: throw CodecError("png: bad filter type");
    }
    dst[i] = static_cast<std::uint8_t>(v & 0xFF);
  }
}

/// Reverses filter `type` in place; `row` holds filtered bytes on entry.
void unfilter_row(int type, std::uint8_t* row, const std::uint8_t* prev, int bytes, int bpp) {
  for (int i = 0; i < bytes; ++i) {
    const int left = i >= bpp ? row[i - bpp] : 0;
    const int up = prev != nullptr ? prev[i] : 0;
    const int ul = (prev != nullptr && i >= bpp) ? prev[i - bpp] : 0;
    int v = row[i];
    switch (type) {
      case 0: break;
      case 1: v += left; break;
      case 2: v += up; break;
      case 3: v += (left + up) / 2; break;
      case 4: v += paeth(left, up, ul); break;
      default: throw CodecError("png: bad filter type in stream");
    }
    row[i] = static_cast<std::uint8_t>(v & 0xFF);
  }
}

struct ChunkReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  struct Chunk {
    char type[5];
    std::span<const std::uint8_t> payload;
  };

  Chunk next() {
    if (pos + 12 > data.size()) throw CodecError("png: truncated chunk");
    const std::uint32_t len = (static_cast<std::uint32_t>(data[pos]) << 24) |
                              (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
                              (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
                              static_cast<std::uint32_t>(data[pos + 3]);
    if (pos + 12 + len > data.size()) throw CodecError("png: chunk length beyond stream");
    Chunk c{};
    std::memcpy(c.type, data.data() + pos + 4, 4);
    c.type[4] = '\0';
    c.payload = data.subspan(pos + 8, len);
    const std::uint32_t stored = (static_cast<std::uint32_t>(data[pos + 8 + len]) << 24) |
                                 (static_cast<std::uint32_t>(data[pos + 9 + len]) << 16) |
                                 (static_cast<std::uint32_t>(data[pos + 10 + len]) << 8) |
                                 static_cast<std::uint32_t>(data[pos + 11 + len]);
    if ((crc32(data.data() + pos + 4, 4 + len) ^ 0xFFFFFFFFu) != stored) {
      throw CodecError("png: chunk CRC mismatch");
    }
    pos += 12 + len;
    return c;
  }
};

PngInfo parse_ihdr(std::span<const std::uint8_t> p) {
  if (p.size() != 13) throw CodecError("png: bad IHDR length");
  PngInfo info;
  info.width = static_cast<int>((p[0] << 24) | (p[1] << 16) | (p[2] << 8) | p[3]);
  info.height = static_cast<int>((p[4] << 24) | (p[5] << 16) | (p[6] << 8) | p[7]);
  const int depth = p[8], color = p[9], interlace = p[12];
  if (info.width <= 0 || info.height <= 0) throw CodecError("png: bad dimensions");
  // Cap total pixels so a corrupted IHDR cannot demand a multi-gigabyte
  // allocation before inflation even starts.
  if (static_cast<std::int64_t>(info.width) * info.height > (std::int64_t{1} << 26)) {
    throw CodecError("png: image dimensions exceed decoder limit");
  }
  if (depth != 8) throw CodecError("png: only 8-bit depth supported");
  if (color == 0) {
    info.channels = 1;
  } else if (color == 2) {
    info.channels = 3;
  } else {
    throw CodecError("png: unsupported color type (palette/alpha)");
  }
  if (p[10] != 0 || p[11] != 0) throw CodecError("png: bad compression/filter method");
  if (interlace != 0) throw CodecError("png: interlaced images unsupported");
  return info;
}

}  // namespace

std::vector<std::uint8_t> encode_png(const Image& img, const PngEncodeOptions& opts) {
  if (img.empty()) throw std::invalid_argument("encode_png: empty image");
  const int bpp = img.channels();
  const int row_bytes = img.width() * bpp;

  // Filter all scanlines into the raw stream (filter byte + row data each).
  std::vector<std::uint8_t> raw;
  raw.reserve(static_cast<std::size_t>(img.height()) *
              (static_cast<std::size_t>(row_bytes) + 1));
  std::vector<std::uint8_t> candidate(static_cast<std::size_t>(row_bytes));
  std::vector<std::uint8_t> best(static_cast<std::size_t>(row_bytes));
  for (int y = 0; y < img.height(); ++y) {
    const std::uint8_t* row = img.data().data() + static_cast<std::size_t>(y) *
                                                      static_cast<std::size_t>(row_bytes);
    const std::uint8_t* prev =
        y > 0 ? img.data().data() + static_cast<std::size_t>(y - 1) *
                                        static_cast<std::size_t>(row_bytes)
              : nullptr;
    int best_type = 0;
    if (!opts.adaptive_filters) {
      filter_row(0, row, prev, row_bytes, bpp, best.data());
    } else {
      long best_score = -1;
      for (int type = 0; type < 5; ++type) {
        filter_row(type, row, prev, row_bytes, bpp, candidate.data());
        long score = 0;
        for (int i = 0; i < row_bytes; ++i) {
          // Sum of absolute values interpreting bytes as signed deltas.
          const auto v = static_cast<std::int8_t>(candidate[static_cast<std::size_t>(i)]);
          score += std::abs(static_cast<int>(v));
        }
        if (best_score < 0 || score < best_score) {
          best_score = score;
          best_type = type;
          std::swap(best, candidate);
        }
      }
    }
    raw.push_back(static_cast<std::uint8_t>(best_type));
    raw.insert(raw.end(), best.begin(), best.end());
  }

  std::vector<std::uint8_t> out;
  out.insert(out.end(), kSignature.begin(), kSignature.end());
  std::vector<std::uint8_t> ihdr;
  put_u32(ihdr, static_cast<std::uint32_t>(img.width()));
  put_u32(ihdr, static_cast<std::uint32_t>(img.height()));
  ihdr.push_back(8);                                        // bit depth
  ihdr.push_back(img.channels() == 3 ? 2 : 0);              // color type
  ihdr.insert(ihdr.end(), {0, 0, 0});                       // compression/filter/interlace
  put_chunk(out, "IHDR", ihdr);
  const auto idat = zlib_compress(raw);
  put_chunk(out, "IDAT", idat);
  put_chunk(out, "IEND", {});
  return out;
}

PngInfo peek_png_info(std::span<const std::uint8_t> data) {
  if (data.size() < kSignature.size() ||
      !std::equal(kSignature.begin(), kSignature.end(), data.begin())) {
    throw CodecError("png: bad signature");
  }
  ChunkReader reader{data, kSignature.size()};
  const auto chunk = reader.next();
  if (std::strcmp(chunk.type, "IHDR") != 0) throw CodecError("png: first chunk is not IHDR");
  return parse_ihdr(chunk.payload);
}

Image decode_png(std::span<const std::uint8_t> data) {
  if (data.size() < kSignature.size() ||
      !std::equal(kSignature.begin(), kSignature.end(), data.begin())) {
    throw CodecError("png: bad signature");
  }
  ChunkReader reader{data, kSignature.size()};
  PngInfo info;
  bool have_ihdr = false;
  std::vector<std::uint8_t> idat;
  while (true) {
    const auto chunk = reader.next();
    if (std::strcmp(chunk.type, "IHDR") == 0) {
      info = parse_ihdr(chunk.payload);
      have_ihdr = true;
    } else if (std::strcmp(chunk.type, "IDAT") == 0) {
      if (!have_ihdr) throw CodecError("png: IDAT before IHDR");
      idat.insert(idat.end(), chunk.payload.begin(), chunk.payload.end());
    } else if (std::strcmp(chunk.type, "IEND") == 0) {
      break;
    } else if (!(chunk.type[0] & 0x20)) {
      // Unknown *critical* chunk: refuse. Ancillary chunks are skipped.
      throw CodecError("png: unknown critical chunk");
    }
  }
  if (!have_ihdr || idat.empty()) throw CodecError("png: missing IHDR or IDAT");

  const int bpp = info.channels;
  const int row_bytes = info.width * bpp;
  const std::size_t expected =
      static_cast<std::size_t>(info.height) * (static_cast<std::size_t>(row_bytes) + 1);
  auto raw = zlib_decompress(idat, expected);
  if (raw.size() != expected) throw CodecError("png: decompressed size mismatch");

  Image img{info.width, info.height, info.channels};
  const std::uint8_t* prev = nullptr;
  for (int y = 0; y < info.height; ++y) {
    std::uint8_t* src = raw.data() + static_cast<std::size_t>(y) *
                                         (static_cast<std::size_t>(row_bytes) + 1);
    const int type = *src++;
    unfilter_row(type, src, prev, row_bytes, bpp);
    std::memcpy(img.data().data() +
                    static_cast<std::size_t>(y) * static_cast<std::size_t>(row_bytes),
                src, static_cast<std::size_t>(row_bytes));
    prev = src;
  }
  return img;
}

}  // namespace serve::codec
