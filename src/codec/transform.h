// Post-decode transforms: resize and normalization — the remaining stages of
// the paper's preprocessing pipeline ("JPEG decoding followed by image
// resizing and normalization", Section 4).
#pragma once

#include <array>
#include <vector>

#include "codec/image.h"

namespace serve::codec {

enum class ResizeFilter { kNearest, kBilinear };

/// Resamples `src` to `dst_w x dst_h`. Bilinear runs as a separable two-pass
/// resample with precomputed per-axis coefficient tables (float intermediate
/// rows); results match `resize_reference` within ±1 intensity step.
[[nodiscard]] Image resize(const Image& src, int dst_w, int dst_h,
                           ResizeFilter filter = ResizeFilter::kBilinear);

/// Naive per-pixel double-precision resampler — the oracle the equivalence
/// tests compare the two-pass fast path against. Same pixel-center mapping.
[[nodiscard]] Image resize_reference(const Image& src, int dst_w, int dst_h,
                                     ResizeFilter filter = ResizeFilter::kBilinear);

/// Standard ImageNet normalization constants.
inline constexpr std::array<float, 3> kImageNetMean{0.485f, 0.456f, 0.406f};
inline constexpr std::array<float, 3> kImageNetStd{0.229f, 0.224f, 0.225f};

/// Converts an RGB image to a CHW fp32 tensor: x = (v/255 - mean) / std.
/// Returns channels*height*width floats, channel-major (the layout vision
/// models consume).
[[nodiscard]] std::vector<float> normalize_chw(const Image& img,
                                               const std::array<float, 3>& mean = kImageNetMean,
                                               const std::array<float, 3>& stddev = kImageNetStd);

/// Center-crop to a square of `side` (clamped to image bounds).
[[nodiscard]] Image center_crop(const Image& src, int side);

}  // namespace serve::codec
