// Runtime SIMD dispatch for the codec hot paths.
//
// The decode/resize/normalize kernels exist in up to three tiers — portable
// scalar (always compiled), SSE2, and AVX2 — and the best tier supported by
// the executing CPU is selected once at startup. The scalar tier is the
// semantic definition: every SIMD kernel must match it within the same
// contracts the `*_ref` oracles pin (±1 LSB on u8 outputs, bit-exact
// normalize), and the forced-scalar CI leg runs the whole suite with
// dispatch pinned to scalar.
//
// Overrides (checked once, in this order):
//   - env SERVESCOPE_FORCE_SCALAR=1     -> scalar tier
//   - env SERVESCOPE_SIMD=scalar|sse2|avx2 -> cap at that tier
//   - codec::cpu::set_active_tier(t)    -> programmatic (tests sweep tiers)
#pragma once

#include <string_view>

namespace serve::codec::cpu {

/// Dispatch tiers, ordered: a CPU supporting tier T supports every lower one.
enum class SimdTier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable tier name ("scalar", "sse2", "avx2").
[[nodiscard]] std::string_view tier_name(SimdTier t) noexcept;

/// True when the executing CPU (and build) can run `t`'s kernels.
[[nodiscard]] bool tier_supported(SimdTier t) noexcept;

/// Best supported tier after applying the environment overrides above.
[[nodiscard]] SimdTier detected_tier() noexcept;

/// Tier the codec kernels currently dispatch to (defaults to
/// `detected_tier()` on first use).
[[nodiscard]] SimdTier active_tier() noexcept;

/// Pins dispatch to `t` for the rest of the process (tests use this to sweep
/// every tier on one host). Throws std::invalid_argument when the host or
/// build cannot run `t`.
void set_active_tier(SimdTier t);

}  // namespace serve::codec::cpu
