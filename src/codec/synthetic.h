// Synthetic test-image generation (the reproduction has no ImageNet access;
// DESIGN.md documents this substitution). Generates photograph-like content
// with smooth gradients, texture, and structure so JPEG compression ratios
// land in a realistic range.
#pragma once

#include <cstdint>

#include "codec/image.h"

namespace serve::codec {

enum class Pattern : std::uint8_t {
  kGradient,   ///< smooth two-axis color gradient (compresses well)
  kTexture,    ///< band-limited pseudo-noise (compresses poorly)
  kScene,      ///< gradients + shapes + mild noise (photograph-like)
  kCheckers,   ///< high-frequency blocks (stress for the entropy coder)
};

/// Deterministic synthetic image for a (pattern, seed) pair.
[[nodiscard]] Image make_synthetic(int width, int height, Pattern pattern,
                                   std::uint64_t seed = 1);

}  // namespace serve::codec
