// Multi-threaded batch preprocessing: decode -> crop/resize -> normalize
// over N images on K worker threads — the CPU-side analogue of the paper's
// DALI pipeline, used to measure how preprocessing throughput scales with
// cores (the lever behind the paper's Fig. 6/7 preprocessing dominance).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "codec/transform.h"
#include "metrics/registry.h"

namespace serve::codec {

struct BatchPreprocessOptions {
  int target_side = 224;           ///< resize target (side x side)
  int center_crop_side = 0;        ///< optional square crop before resize (0 = off)
  std::array<float, 3> mean = kImageNetMean;
  std::array<float, 3> stddev = kImageNetStd;
};

/// Persistent worker pool running the full preprocessing pipeline over
/// batches of JPEG byte streams. The calling thread participates in the
/// work, so `threads == 1` runs inline with zero synchronization.
class BatchPreprocessor {
 public:
  /// `threads` is the total parallelism including the calling thread. An
  /// optional registry counts processed batches/images with relaxed-atomic
  /// counters (this is a real thread pool, not simulated work); it must
  /// outlive the preprocessor.
  explicit BatchPreprocessor(int threads, metrics::Registry* registry = nullptr);
  ~BatchPreprocessor();
  BatchPreprocessor(const BatchPreprocessor&) = delete;
  BatchPreprocessor& operator=(const BatchPreprocessor&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Runs `fn(i)` for every i in [0, n) across the pool (arbitrary order,
  /// each index exactly once). Rethrows the first worker exception after the
  /// whole batch has drained.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// decode -> (optional crop) -> resize -> normalize for each input JPEG;
  /// results come back in input order as CHW fp32 tensors.
  [[nodiscard]] std::vector<std::vector<float>> run(
      const std::vector<std::span<const std::uint8_t>>& jpegs,
      const BatchPreprocessOptions& opts = {});
  [[nodiscard]] std::vector<std::vector<float>> run(
      const std::vector<std::vector<std::uint8_t>>& jpegs,
      const BatchPreprocessOptions& opts = {});

 private:
  void worker_loop();

  const int threads_;
  std::vector<std::thread> workers_;
  metrics::Counter batches_m_;  ///< no-op handles without a registry
  metrics::Counter images_m_;

  std::mutex mu_;
  std::condition_variable job_cv_;   ///< wakes workers for a new batch
  std::condition_variable done_cv_;  ///< wakes the caller when a batch drains
  std::uint64_t generation_ = 0;     ///< bumped per batch
  bool shutdown_ = false;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_next_ = 0;       ///< next unclaimed index
  std::size_t job_active_ = 0;     ///< indexes claimed but not finished
  std::exception_ptr job_error_;
};

}  // namespace serve::codec
