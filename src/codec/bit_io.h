// Bit-level I/O for JPEG entropy-coded segments, including 0xFF byte
// stuffing (writer) and unstuffing / restart-marker handling (reader).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace serve::codec::jpeg {

/// Raised by the decoder on malformed streams.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// MSB-first bit writer with JPEG byte stuffing: every emitted 0xFF data
/// byte is followed by 0x00 so it cannot be mistaken for a marker.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void put_bits(std::uint32_t value, int count) {
    // value's low `count` bits, MSB first.
    for (int i = count - 1; i >= 0; --i) {
      acc_ = static_cast<std::uint8_t>((acc_ << 1) | ((value >> i) & 1u));
      if (++filled_ == 8) flush_byte();
    }
  }

  /// Pads the final partial byte with 1-bits (T.81 F.1.2.3) and flushes.
  void finish() {
    while (filled_ != 0) {
      acc_ = static_cast<std::uint8_t>((acc_ << 1) | 1u);
      if (++filled_ == 8) flush_byte();
    }
  }

 private:
  void flush_byte() {
    out_.push_back(acc_);
    if (acc_ == 0xFF) out_.push_back(0x00);  // stuffing
    acc_ = 0;
    filled_ = 0;
  }

  std::vector<std::uint8_t>& out_;
  std::uint8_t acc_ = 0;
  int filled_ = 0;
};

/// MSB-first bit reader over an entropy-coded segment. Unstuffs 0xFF00 and
/// stops at any real marker (reporting it to the caller).
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  /// Reads one bit; throws CodecError past the end of the segment.
  std::uint32_t get_bit() {
    if (filled_ == 0) load_byte();
    --filled_;
    return (acc_ >> filled_) & 1u;
  }

  std::uint32_t get_bits(int count) {
    std::uint32_t v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | get_bit();
    return v;
  }

  /// Byte position of the next unread byte (for marker resynchronization).
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Discards buffered bits and consumes an expected RSTn marker. Returns
  /// the restart index 0..7.
  int consume_restart_marker() {
    filled_ = 0;
    if (pos_ + 1 >= size_ || data_[pos_] != 0xFF || data_[pos_ + 1] < 0xD0 ||
        data_[pos_ + 1] > 0xD7) {
      throw CodecError("expected restart marker");
    }
    const int idx = data_[pos_ + 1] - 0xD0;
    pos_ += 2;
    return idx;
  }

 private:
  void load_byte() {
    if (pos_ >= size_) throw CodecError("entropy segment exhausted");
    std::uint8_t b = data_[pos_++];
    if (b == 0xFF) {
      if (pos_ >= size_) throw CodecError("dangling 0xFF at end of segment");
      const std::uint8_t next = data_[pos_];
      if (next == 0x00) {
        ++pos_;  // stuffed byte
      } else {
        // A real marker inside entropy data: the scan ended prematurely.
        throw CodecError("unexpected marker inside entropy-coded segment");
      }
    }
    acc_ = b;
    filled_ = 8;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint8_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace serve::codec::jpeg
