// Bit-level I/O for JPEG entropy-coded segments, including 0xFF byte
// stuffing (writer) and unstuffing / restart-marker handling (reader).
//
// Both sides run on a 64-bit accumulator so the decoder's inner loop costs
// one shift/mask per symbol instead of one function call per *bit* (the
// libjpeg-turbo refill discipline): the reader tops up the accumulator in
// bulk and serves `peek`/`consume` from it; the writer packs codes into the
// accumulator and spills whole bytes.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace serve::codec::jpeg {

/// Raised by the decoder on malformed streams.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// MSB-first bit writer with JPEG byte stuffing: every emitted 0xFF data
/// byte is followed by 0x00 so it cannot be mistaken for a marker.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Appends value's low `count` bits (MSB first), `count` in [0, 24].
  void put_bits(std::uint32_t value, int count) {
    acc_ = (acc_ << count) | (value & ((1ull << count) - 1u));
    filled_ += count;
    while (filled_ >= 8) {
      filled_ -= 8;
      const auto b = static_cast<std::uint8_t>((acc_ >> filled_) & 0xFFu);
      out_.push_back(b);
      if (b == 0xFF) out_.push_back(0x00);  // stuffing
    }
  }

  /// Pads the final partial byte with 1-bits (T.81 F.1.2.3) and flushes.
  void finish() {
    if (filled_ > 0) {
      const int pad = 8 - filled_;
      put_bits((1u << pad) - 1u, pad);
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

/// MSB-first bit reader over an entropy-coded segment. Unstuffs 0xFF00 and
/// stops at any real marker (reporting it to the caller).
///
/// The accumulator is left-justified (the next bit to read is bit 63), which
/// lets refill top up with a single unaligned 8-byte load whenever the next
/// eight bytes contain no 0xFF — the overwhelmingly common case. Past the end
/// of the segment (or once a real marker is reached) the accumulator is
/// topped up with zero padding so that `peek` stays cheap and branch-free;
/// the error is raised only when `consume` actually eats into the padding,
/// which is exactly when the old bit-at-a-time reader would have thrown.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  /// Returns the next `count` bits (MSB first) without consuming them,
  /// `count` in [0, 32]. Bits past the end of the segment read as zero.
  [[nodiscard]] std::uint32_t peek(int count) {
    if (bits_ < count) refill();
    // Double shift instead of `>> (64 - count)` so count == 0 is defined.
    return static_cast<std::uint32_t>((acc_ >> 1) >> (63 - count));
  }

  /// Discards `count` previously peeked bits; throws CodecError if that
  /// crosses the end of the real data.
  void consume(int count) {
    acc_ <<= count;
    bits_ -= count;
    if (bits_ < pad_bits_) throw_end_error();
  }

  [[nodiscard]] std::uint32_t get_bits(int count) {
    const std::uint32_t v = peek(count);
    consume(count);
    return v;
  }

  [[nodiscard]] std::uint32_t get_bit() { return get_bits(1); }

  /// Byte position of the next byte the reader would refill from (the bulk
  /// reader never advances past a real marker, so after a decode loop this
  /// points at the trailing marker).
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Discards buffered bits and consumes an expected RSTn marker. Returns
  /// the restart index 0..7.
  int consume_restart_marker() {
    // Refill stops *at* a marker byte, so buffered bits can only be the
    // current interval's byte padding — safe to drop wholesale.
    acc_ = 0;
    bits_ = 0;
    pad_bits_ = 0;
    end_ = End::kNone;
    if (pos_ + 1 >= size_ || data_[pos_] != 0xFF || data_[pos_ + 1] < 0xD0 ||
        data_[pos_ + 1] > 0xD7) {
      throw CodecError("expected restart marker");
    }
    const int idx = data_[pos_ + 1] - 0xD0;
    pos_ += 2;
    return idx;
  }

 private:
  enum class End : std::uint8_t { kNone, kExhausted, kDanglingFf, kMarker };

  void refill() {
    // Fast path: whole-byte top-up from one unaligned 8-byte load when none
    // of the bytes is 0xFF (no unstuffing, no marker). The zero-detect trick
    // finds any 0xFF byte by checking (w ^ ~0) for a zero byte.
    if (end_ == End::kNone && pos_ + 8 <= size_) {
      std::uint64_t w;
      __builtin_memcpy(&w, data_ + pos_, 8);
      const std::uint64_t t = w ^ ~0ull;
      if ((((t - 0x0101010101010101ull) & ~t) & 0x8080808080808080ull) == 0) {
        if constexpr (std::endian::native == std::endian::little) {
          w = __builtin_bswap64(w);
        }
        const int added = (64 - bits_) & ~7;  // whole bytes only
        const int total = bits_ + added;      // 57..64
        std::uint64_t chunk = w >> bits_;
        // Mask off loaded bits beyond the credited whole bytes, or the next
        // refill would OR fresh data over stale content.
        if (total < 64) chunk &= ~0ull << (64 - total);
        acc_ |= chunk;
        pos_ += static_cast<std::size_t>(added >> 3);
        bits_ = total;
        return;
      }
    }
    while (bits_ <= 56) {
      if (end_ == End::kNone) {
        if (pos_ >= size_) {
          end_ = End::kExhausted;
        } else {
          const std::uint8_t b = data_[pos_];
          if (b != 0xFF) {
            ++pos_;
            acc_ |= static_cast<std::uint64_t>(b) << (56 - bits_);
            bits_ += 8;
            continue;
          }
          if (pos_ + 1 >= size_) {
            end_ = End::kDanglingFf;
          } else if (data_[pos_ + 1] == 0x00) {
            pos_ += 2;  // stuffed byte
            acc_ |= 0xFFull << (56 - bits_);
            bits_ += 8;
            continue;
          } else {
            // A real marker inside entropy data; leave pos_ pointing at it.
            end_ = End::kMarker;
          }
        }
      }
      bits_ += 8;  // zero padding past the end; consuming it throws
      pad_bits_ += 8;
    }
  }

  [[noreturn]] void throw_end_error() const {
    switch (end_) {
      case End::kDanglingFf:
        throw CodecError("dangling 0xFF at end of segment");
      case End::kMarker:
        throw CodecError("unexpected marker inside entropy-coded segment");
      default:
        throw CodecError("entropy segment exhausted");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int bits_ = 0;      ///< buffered bits (top `bits_` of acc_), including padding
  int pad_bits_ = 0;  ///< zero-padding bits at the bottom of the buffer
  End end_ = End::kNone;
};

}  // namespace serve::codec::jpeg
