#include "codec/dct.h"

#include <cmath>

#include "codec/simd_kernels.h"

namespace serve::codec::jpeg {

namespace {

// Separable DCT via an 8x8 basis matrix: C[u][x] = a(u) cos((2x+1)u pi / 16),
// a(0)=sqrt(1/8), a(u>0)=sqrt(2/8). Built once; kept as the reference oracle
// for the fast AAN transforms below.
struct Basis {
  float c[8][8];
  Basis() noexcept {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < 8; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        c[u][x] = static_cast<float>(a * std::cos((2 * x + 1) * u * pi / 16.0));
      }
    }
  }
};

const Basis& basis() noexcept {
  static const Basis b;
  return b;
}

// AAN scale factors: aan[u] = cos(u*pi/16) * sqrt(2) for u>0, 1 for u=0.
// The raw AAN flowgraph computes the unnormalized DCT scaled by aan[u] per
// axis; dividing by (aan[u] * aan[v] * 8) restores JPEG's normalization
// (which equals the orthonormal basis above).
struct AanScales {
  std::array<float, 64> fdct;  ///< post-scale for the forward transform
  std::array<float, 64> idct;  ///< pre-scale for the inverse transform
  AanScales() noexcept {
    const double pi = 3.14159265358979323846;
    double aan[8];
    aan[0] = 1.0;
    for (int u = 1; u < 8; ++u) aan[u] = std::cos(u * pi / 16.0) * std::sqrt(2.0);
    for (int v = 0; v < 8; ++v) {
      for (int u = 0; u < 8; ++u) {
        fdct[static_cast<std::size_t>(v * 8 + u)] =
            static_cast<float>(1.0 / (aan[v] * aan[u] * 8.0));
        idct[static_cast<std::size_t>(v * 8 + u)] =
            static_cast<float>(aan[v] * aan[u] / 8.0);
      }
    }
  }
};

const AanScales& aan_scales() noexcept {
  static const AanScales s;
  return s;
}

// 1-D AAN forward butterfly over 8 values with stride `st`.
inline void fdct_pass1d(float* d, int st) noexcept {
  const float v0 = d[0 * st], v1 = d[1 * st], v2 = d[2 * st], v3 = d[3 * st];
  const float v4 = d[4 * st], v5 = d[5 * st], v6 = d[6 * st], v7 = d[7 * st];

  const float t0 = v0 + v7, t7 = v0 - v7;
  const float t1 = v1 + v6, t6 = v1 - v6;
  const float t2 = v2 + v5, t5 = v2 - v5;
  const float t3 = v3 + v4, t4 = v3 - v4;

  // Even part.
  float t10 = t0 + t3;
  const float t13 = t0 - t3;
  const float t11 = t1 + t2;
  float t12 = t1 - t2;

  d[0 * st] = t10 + t11;
  d[4 * st] = t10 - t11;
  const float z1 = (t12 + t13) * 0.707106781f;  // c4
  d[2 * st] = t13 + z1;
  d[6 * st] = t13 - z1;

  // Odd part.
  t10 = t4 + t5;
  const float t11o = t5 + t6;
  t12 = t6 + t7;

  const float z5 = (t10 - t12) * 0.382683433f;  // c6
  const float z2 = 0.541196100f * t10 + z5;     // c2 - c6
  const float z4 = 1.306562965f * t12 + z5;     // c2 + c6
  const float z3 = t11o * 0.707106781f;         // c4

  const float z11 = t7 + z3;
  const float z13 = t7 - z3;

  d[5 * st] = z13 + z2;
  d[3 * st] = z13 - z2;
  d[1 * st] = z11 + z4;
  d[7 * st] = z11 - z4;
}

// 1-D AAN inverse butterfly over 8 values with stride `st`.
inline void idct_pass1d(float* d, int st) noexcept {
  // Even part.
  const float e0 = d[0 * st], e1 = d[2 * st], e2 = d[4 * st], e3 = d[6 * st];
  const float t10 = e0 + e2;
  const float t11 = e0 - e2;
  const float t13 = e1 + e3;
  const float t12 = (e1 - e3) * 1.414213562f - t13;  // 2*c4

  const float p0 = t10 + t13;
  const float p3 = t10 - t13;
  const float p1 = t11 + t12;
  const float p2 = t11 - t12;

  // Odd part.
  const float o4 = d[1 * st], o5 = d[3 * st], o6 = d[5 * st], o7 = d[7 * st];
  const float z13 = o6 + o5;
  const float z10 = o6 - o5;
  const float z11 = o4 + o7;
  const float z12 = o4 - o7;

  const float q7 = z11 + z13;
  const float w11 = (z11 - z13) * 1.414213562f;       // 2*c4
  const float z5 = (z10 + z12) * 1.847759065f;        // 2*c2
  const float w10 = 1.082392200f * z12 - z5;          // 2*(c2-c6)
  const float w12 = -2.613125930f * z10 + z5;         // -2*(c2+c6)

  const float q6 = w12 - q7;
  const float q5 = w11 - q6;
  const float q4 = w10 + q5;

  d[0 * st] = p0 + q7;
  d[7 * st] = p0 - q7;
  d[1 * st] = p1 + q6;
  d[6 * st] = p1 - q6;
  d[2 * st] = p2 + q5;
  d[5 * st] = p2 - q5;
  d[4 * st] = p3 + q4;
  d[3 * st] = p3 - q4;
}

}  // namespace

void fdct8x8(const float in[64], float out[64]) noexcept {
  float work[64];
  for (int i = 0; i < 64; ++i) work[i] = in[i];
  for (int y = 0; y < 8; ++y) fdct_pass1d(&work[y * 8], 1);
  for (int x = 0; x < 8; ++x) fdct_pass1d(&work[x], 8);
  const auto& scale = aan_scales().fdct;
  for (int i = 0; i < 64; ++i) out[i] = work[i] * scale[static_cast<std::size_t>(i)];
}

void idct8x8(const float in[64], float out[64]) noexcept {
  const auto& scale = aan_scales().idct;
  float work[64];
  for (int i = 0; i < 64; ++i) work[i] = in[i] * scale[static_cast<std::size_t>(i)];
  for (int x = 0; x < 8; ++x) idct_pass1d(&work[x], 8);
  for (int y = 0; y < 8; ++y) idct_pass1d(&work[y * 8], 1);
  for (int i = 0; i < 64; ++i) out[i] = work[i];
}

void idct8x8_scaled_scalar(const float in[64], float out[64]) noexcept {
  float work[64];
  for (int i = 0; i < 64; ++i) work[i] = in[i];
  for (int x = 0; x < 8; ++x) idct_pass1d(&work[x], 8);
  for (int y = 0; y < 8; ++y) idct_pass1d(&work[y * 8], 1);
  for (int i = 0; i < 64; ++i) out[i] = work[i];
}

void idct8x8_scaled(const float in[64], float out[64]) noexcept {
  simd::kernels().idct8x8_scaled(in, out);
}

const std::array<float, 64>& idct_prescale() noexcept { return aan_scales().idct; }

void fdct8x8_ref(const float in[64], float out[64]) noexcept {
  const auto& B = basis();
  float tmp[64];
  // Rows: tmp[y][u] = sum_x in[y][x] * C[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float s = 0.0f;
      for (int x = 0; x < 8; ++x) s += in[y * 8 + x] * B.c[u][x];
      tmp[y * 8 + u] = s;
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * C[v][y]
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      float s = 0.0f;
      for (int y = 0; y < 8; ++y) s += tmp[y * 8 + u] * B.c[v][y];
      out[v * 8 + u] = s;
    }
  }
}

void idct8x8_ref(const float in[64], float out[64]) noexcept {
  const auto& B = basis();
  float tmp[64];
  // Columns: tmp[y][u] = sum_v in[v][u] * C[v][y]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float s = 0.0f;
      for (int v = 0; v < 8; ++v) s += in[v * 8 + u] * B.c[v][y];
      tmp[y * 8 + u] = s;
    }
  }
  // Rows: out[y][x] = sum_u tmp[y][u] * C[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      float s = 0.0f;
      for (int u = 0; u < 8; ++u) s += tmp[y * 8 + u] * B.c[u][x];
      out[y * 8 + x] = s;
    }
  }
}

}  // namespace serve::codec::jpeg
