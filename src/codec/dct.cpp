#include "codec/dct.h"

#include <cmath>

namespace serve::codec::jpeg {

namespace {

// Separable DCT via an 8x8 basis matrix: C[u][x] = a(u) cos((2x+1)u pi / 16),
// a(0)=sqrt(1/8), a(u>0)=sqrt(2/8). Built once; float throughput is plenty
// for the substrate (the paper's hot path is measured, not competed with).
struct Basis {
  float c[8][8];
  Basis() noexcept {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < 8; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        c[u][x] = static_cast<float>(a * std::cos((2 * x + 1) * u * pi / 16.0));
      }
    }
  }
};

const Basis& basis() noexcept {
  static const Basis b;
  return b;
}

}  // namespace

void fdct8x8(const float in[64], float out[64]) noexcept {
  const auto& B = basis();
  float tmp[64];
  // Rows: tmp[y][u] = sum_x in[y][x] * C[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float s = 0.0f;
      for (int x = 0; x < 8; ++x) s += in[y * 8 + x] * B.c[u][x];
      tmp[y * 8 + u] = s;
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * C[v][y]
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      float s = 0.0f;
      for (int y = 0; y < 8; ++y) s += tmp[y * 8 + u] * B.c[v][y];
      out[v * 8 + u] = s;
    }
  }
}

void idct8x8(const float in[64], float out[64]) noexcept {
  const auto& B = basis();
  float tmp[64];
  // Columns: tmp[y][u] = sum_v in[v][u] * C[v][y]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float s = 0.0f;
      for (int v = 0; v < 8; ++v) s += in[v * 8 + u] * B.c[v][y];
      tmp[y * 8 + u] = s;
    }
  }
  // Rows: out[y][x] = sum_u tmp[y][u] * C[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      float s = 0.0f;
      for (int u = 0; u < 8; ++u) s += tmp[y * 8 + u] * B.c[u][x];
      out[y * 8 + x] = s;
    }
  }
}

}  // namespace serve::codec::jpeg
