// SSE2 kernel tier: 4-wide float math, baseline for every x86-64 CPU.
//
// Arithmetic mirrors the scalar tier expression-for-expression (same
// association, separate mul/add, no FMA), so lanes compute bit-identically to
// scalar floats; u8 rounding goes through cvttps(v + 0.5) + saturating packs,
// which equals the scalar round_clamp255 for every in-range value.
#include "codec/simd_kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstring>

#include "codec/simd_idct_inl.h"

namespace serve::codec::simd {
namespace detail {
const bool kSse2Compiled = true;
}  // namespace detail

namespace {

void sse2_idct8x8_scaled(const float in[64], float out[64]) noexcept {
  detail::idct8x8_scaled_4wide(in, out);
}

// 4 floats (already + 0.5f) -> 4 saturated u8 bytes at dst.
inline void store4_u8(__m128 v, std::uint8_t* dst) noexcept {
  const __m128i i32 = _mm_cvttps_epi32(v);
  const __m128i i16 = _mm_packs_epi32(i32, i32);
  const __m128i u8 = _mm_packus_epi16(i16, i16);
  const int packed = _mm_cvtsi128_si32(u8);
  std::memcpy(dst, &packed, 4);
}

void sse2_ycbcr_to_rgb_row(const float* y, const float* cb, const float* cr,
                           std::uint8_t* out, int n) noexcept {
  const __m128 k128 = _mm_set1_ps(128.0f);
  const __m128 k1402 = _mm_set1_ps(1.402f);
  const __m128 k0344 = _mm_set1_ps(0.344136f);
  const __m128 k0714 = _mm_set1_ps(0.714136f);
  const __m128 k1772 = _mm_set1_ps(1.772f);
  const __m128 half = _mm_set1_ps(0.5f);
  int x = 0;
  for (; x + 4 <= n; x += 4) {
    const __m128 Y = _mm_loadu_ps(y + x);
    const __m128 Cb = _mm_sub_ps(_mm_loadu_ps(cb + x), k128);
    const __m128 Cr = _mm_sub_ps(_mm_loadu_ps(cr + x), k128);
    const __m128 R = _mm_add_ps(Y, _mm_mul_ps(k1402, Cr));
    const __m128 G =
        _mm_sub_ps(_mm_sub_ps(Y, _mm_mul_ps(k0344, Cb)), _mm_mul_ps(k0714, Cr));
    const __m128 B = _mm_add_ps(Y, _mm_mul_ps(k1772, Cb));
    const __m128i ri = _mm_cvttps_epi32(_mm_add_ps(R, half));
    const __m128i gi = _mm_cvttps_epi32(_mm_add_ps(G, half));
    const __m128i bi = _mm_cvttps_epi32(_mm_add_ps(B, half));
    const __m128i rg16 = _mm_packs_epi32(ri, gi);  // r0..3 g0..3 as i16
    const __m128i bb16 = _mm_packs_epi32(bi, bi);
    const __m128i rgb8 = _mm_packus_epi16(rg16, bb16);  // r0..3 g0..3 b0..3 b0..3
    alignas(16) std::uint8_t tmp[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), rgb8);
    for (int k = 0; k < 4; ++k) {
      out[0] = tmp[k];
      out[1] = tmp[4 + k];
      out[2] = tmp[8 + k];
      out += 3;
    }
  }
  if (x < n) kScalarKernels.ycbcr_to_rgb_row(y + x, cb + x, cr + x, out, n - x);
}

void sse2_gray_to_u8_row(const float* y, std::uint8_t* out, int n) noexcept {
  const __m128 half = _mm_set1_ps(0.5f);
  int x = 0;
  for (; x + 4 <= n; x += 4) {
    store4_u8(_mm_add_ps(_mm_loadu_ps(y + x), half), out + x);
  }
  if (x < n) kScalarKernels.gray_to_u8_row(y + x, out + x, n - x);
}

inline __m128i load_u32(const std::uint8_t* p) noexcept {
  std::int32_t bits;
  std::memcpy(&bits, p, 4);
  return _mm_cvtsi32_si128(bits);
}

// u8x4 in the low dword -> 4 floats.
inline __m128 u8x4_to_ps(__m128i v) noexcept {
  const __m128i zero = _mm_setzero_si128();
  return _mm_cvtepi32_ps(_mm_unpacklo_epi16(_mm_unpacklo_epi8(v, zero), zero));
}

void sse2_resize_hpass_row(const std::uint8_t* srow, float* mrow, const int* i0,
                           const int* i1, const float* w1, int dst_w, int ch,
                           std::size_t srow_avail) noexcept {
  if (ch != 3 || dst_w < 2) {
    kScalarKernels.resize_hpass_row(srow, mrow, i0, i1, w1, dst_w, ch, srow_avail);
    return;
  }
  // Vector path: one dst pixel per iteration via two 4-byte taps; the store
  // writes 4 floats (one lane of slack, overwritten by the next pixel), so the
  // last pixel always goes scalar. Taps near the row end where a 4-byte load
  // would leave `srow_avail` also fall back to scalar.
  const int last = dst_w - 1;
  int x = 0;
  for (; x < last; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    const std::size_t off0 = static_cast<std::size_t>(i0[xi]) * 3;
    const std::size_t off1 = static_cast<std::size_t>(i1[xi]) * 3;
    if (off1 + 4 > srow_avail) break;  // i1 is monotone; tail goes scalar
    const float w = w1[xi];
    const __m128 wv = _mm_set1_ps(w);
    const __m128 w0v = _mm_set1_ps(1.0f - w);
    const __m128 p0 = u8x4_to_ps(load_u32(srow + off0));
    const __m128 p1 = u8x4_to_ps(load_u32(srow + off1));
    const __m128 m = _mm_add_ps(_mm_mul_ps(p0, w0v), _mm_mul_ps(p1, wv));
    _mm_storeu_ps(mrow + xi * 3, m);
  }
  if (x < dst_w) {
    kScalarKernels.resize_hpass_row(srow, mrow + static_cast<std::size_t>(x) * 3,
                                    i0 + x, i1 + x, w1 + x, dst_w - x, ch,
                                    srow_avail);
  }
}

void sse2_resize_vpass_row(const float* r0, const float* r1, float w,
                           std::uint8_t* out, std::size_t n) noexcept {
  const __m128 wv = _mm_set1_ps(w);
  const __m128 w0v = _mm_set1_ps(1.0f - w);
  const __m128 half = _mm_set1_ps(0.5f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 a = _mm_loadu_ps(r0 + i);
    const __m128 b = _mm_loadu_ps(r1 + i);
    const __m128 v = _mm_add_ps(_mm_mul_ps(a, w0v), _mm_mul_ps(b, wv));
    store4_u8(_mm_add_ps(v, half), out + i);
  }
  if (i < n) kScalarKernels.resize_vpass_row(r0 + i, r1 + i, w, out + i, n - i);
}

void sse2_upsample2_row(const float* src, float* dst, int dst_n) noexcept {
  int i = 0;
  for (; i + 8 <= dst_n; i += 8) {
    const __m128 v = _mm_loadu_ps(src + (i >> 1));
    _mm_storeu_ps(dst + i, _mm_unpacklo_ps(v, v));
    _mm_storeu_ps(dst + i + 4, _mm_unpackhi_ps(v, v));
  }
  for (; i < dst_n; ++i) dst[i] = src[i >> 1];
}

void sse2_normalize_rgb_row(const std::uint8_t* p, float* r, float* g, float* b,
                            std::size_t n, const float* mean,
                            const float* inv_std) noexcept {
  const __m128 k255 = _mm_set1_ps(255.0f);
  const __m128 mr = _mm_set1_ps(mean[0]), ir = _mm_set1_ps(inv_std[0]);
  const __m128 mg = _mm_set1_ps(mean[1]), ig = _mm_set1_ps(inv_std[1]);
  const __m128 mb = _mm_set1_ps(mean[2]), ib = _mm_set1_ps(inv_std[2]);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t* q = p + 3 * i;
    const __m128 fr = _mm_cvtepi32_ps(_mm_setr_epi32(q[0], q[3], q[6], q[9]));
    const __m128 fg = _mm_cvtepi32_ps(_mm_setr_epi32(q[1], q[4], q[7], q[10]));
    const __m128 fb = _mm_cvtepi32_ps(_mm_setr_epi32(q[2], q[5], q[8], q[11]));
    _mm_storeu_ps(r + i, _mm_mul_ps(_mm_sub_ps(_mm_div_ps(fr, k255), mr), ir));
    _mm_storeu_ps(g + i, _mm_mul_ps(_mm_sub_ps(_mm_div_ps(fg, k255), mg), ig));
    _mm_storeu_ps(b + i, _mm_mul_ps(_mm_sub_ps(_mm_div_ps(fb, k255), mb), ib));
  }
  if (i < n) {
    kScalarKernels.normalize_rgb_row(p + 3 * i, r + i, g + i, b + i, n - i, mean,
                                     inv_std);
  }
}

}  // namespace

const KernelTable kSse2Kernels{
    sse2_idct8x8_scaled,   sse2_ycbcr_to_rgb_row, sse2_gray_to_u8_row,
    sse2_resize_hpass_row, sse2_resize_vpass_row, sse2_upsample2_row,
    sse2_normalize_rgb_row,
};

}  // namespace serve::codec::simd

#else  // !defined(__SSE2__): alias scalar so the table stays valid.

namespace serve::codec::simd {
namespace detail {
const bool kSse2Compiled = false;
}  // namespace detail

const KernelTable kSse2Kernels = kScalarKernels;

}  // namespace serve::codec::simd

#endif
