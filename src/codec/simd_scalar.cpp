// Scalar kernel tier + the dispatch plumbing of codec/cpu_features.h.
//
// The scalar kernels are the semantic definition the SIMD tiers are tested
// against; they are also the permanent fallback (non-x86 builds, the
// SERVESCOPE_FORCE_SCALAR CI leg, and machines without AVX2).
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "codec/dct.h"
#include "codec/simd_kernels.h"

namespace serve::codec {

namespace simd {
namespace {

// Round-half-up + clamp; identical to the decoder's and resizer's clamp255.
inline std::uint8_t round_clamp255(float v) noexcept {
  v += 0.5f;
  return static_cast<std::uint8_t>(v < 0.0f ? 0 : (v > 255.0f ? 255 : static_cast<int>(v)));
}

void scalar_idct8x8_scaled(const float in[64], float out[64]) noexcept {
  jpeg::idct8x8_scaled_scalar(in, out);
}

void scalar_ycbcr_to_rgb_row(const float* y, const float* cb, const float* cr,
                             std::uint8_t* out, int n) noexcept {
  for (int x = 0; x < n; ++x) {
    const float Y = y[x];
    const float Cb = cb[x] - 128.0f;
    const float Cr = cr[x] - 128.0f;
    out[0] = round_clamp255(Y + 1.402f * Cr);
    out[1] = round_clamp255(Y - 0.344136f * Cb - 0.714136f * Cr);
    out[2] = round_clamp255(Y + 1.772f * Cb);
    out += 3;
  }
}

void scalar_gray_to_u8_row(const float* y, std::uint8_t* out, int n) noexcept {
  for (int x = 0; x < n; ++x) out[x] = round_clamp255(y[x]);
}

void scalar_resize_hpass_row(const std::uint8_t* srow, float* mrow, const int* i0,
                             const int* i1, const float* w1, int dst_w, int ch,
                             std::size_t /*srow_avail*/) noexcept {
  for (int x = 0; x < dst_w; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    const std::uint8_t* p0 = srow + static_cast<std::size_t>(i0[xi]) * static_cast<std::size_t>(ch);
    const std::uint8_t* p1 = srow + static_cast<std::size_t>(i1[xi]) * static_cast<std::size_t>(ch);
    const float w = w1[xi];
    const float w0 = 1.0f - w;
    for (int c = 0; c < ch; ++c) {
      *mrow++ = static_cast<float>(p0[c]) * w0 + static_cast<float>(p1[c]) * w;
    }
  }
}

void scalar_resize_vpass_row(const float* r0, const float* r1, float w,
                             std::uint8_t* out, std::size_t n) noexcept {
  const float w0 = 1.0f - w;
  for (std::size_t i = 0; i < n; ++i) out[i] = round_clamp255(r0[i] * w0 + r1[i] * w);
}

void scalar_upsample2_row(const float* src, float* dst, int dst_n) noexcept {
  for (int i = 0; i < dst_n; ++i) dst[i] = src[i >> 1];
}

void scalar_normalize_rgb_row(const std::uint8_t* p, float* r, float* g, float* b,
                              std::size_t n, const float* mean,
                              const float* inv_std) noexcept {
  // Same 256-entry LUT scheme the pre-SIMD normalize_chw used: each entry is
  // exactly (v/255 - mean)*inv_std, so output is bit-identical to inline.
  float lut[3][256];
  for (int c = 0; c < 3; ++c) {
    for (int v = 0; v < 256; ++v) {
      lut[c][v] = (static_cast<float>(v) / 255.0f - mean[c]) * inv_std[c];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = lut[0][p[0]];
    g[i] = lut[1][p[1]];
    b[i] = lut[2][p[2]];
    p += 3;
  }
}

}  // namespace

const KernelTable kScalarKernels{
    scalar_idct8x8_scaled, scalar_ycbcr_to_rgb_row, scalar_gray_to_u8_row,
    scalar_resize_hpass_row, scalar_resize_vpass_row, scalar_upsample2_row,
    scalar_normalize_rgb_row,
};

const KernelTable& kernels_for(cpu::SimdTier t) noexcept {
  switch (t) {
    case cpu::SimdTier::kAvx2: return kAvx2Kernels;
    case cpu::SimdTier::kSse2: return kSse2Kernels;
    case cpu::SimdTier::kScalar: break;
  }
  return kScalarKernels;
}

const KernelTable& kernels() noexcept { return kernels_for(cpu::active_tier()); }

bool tier_compiled(cpu::SimdTier t) noexcept {
  switch (t) {
    case cpu::SimdTier::kAvx2: return detail::kAvx2Compiled;
    case cpu::SimdTier::kSse2: return detail::kSse2Compiled;
    case cpu::SimdTier::kScalar: break;
  }
  return true;
}

}  // namespace simd

namespace cpu {
namespace {

/// Best tier the executing CPU can run among those compiled into this build.
SimdTier hardware_tier() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  if (simd::tier_compiled(SimdTier::kAvx2) && __builtin_cpu_supports("avx2")) {
    return SimdTier::kAvx2;
  }
  if (simd::tier_compiled(SimdTier::kSse2) && __builtin_cpu_supports("sse2")) {
    return SimdTier::kSse2;
  }
#endif
  return SimdTier::kScalar;
}

/// Environment cap: SERVESCOPE_FORCE_SCALAR=1 wins, then SERVESCOPE_SIMD.
SimdTier env_cap() noexcept {
  const char* force = std::getenv("SERVESCOPE_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && !(force[0] == '0' && force[1] == '\0')) {
    return SimdTier::kScalar;
  }
  const char* simd_env = std::getenv("SERVESCOPE_SIMD");
  if (simd_env != nullptr) {
    const std::string_view v{simd_env};
    if (v == "scalar") return SimdTier::kScalar;
    if (v == "sse2") return SimdTier::kSse2;
    // "avx2", empty, or unknown: no cap (detection still bounds it).
  }
  return SimdTier::kAvx2;
}

SimdTier detect() noexcept {
  const SimdTier hw = hardware_tier();
  const SimdTier cap = env_cap();
  return static_cast<int>(cap) < static_cast<int>(hw) ? cap : hw;
}

SimdTier& active_slot() noexcept {
  static SimdTier tier = detect();
  return tier;
}

}  // namespace

std::string_view tier_name(SimdTier t) noexcept {
  switch (t) {
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kScalar: break;
  }
  return "scalar";
}

bool tier_supported(SimdTier t) noexcept {
  return static_cast<int>(t) <= static_cast<int>(hardware_tier());
}

SimdTier detected_tier() noexcept {
  static const SimdTier tier = detect();
  return tier;
}

SimdTier active_tier() noexcept { return active_slot(); }

void set_active_tier(SimdTier t) {
  if (!tier_supported(t)) {
    throw std::invalid_argument("codec::cpu::set_active_tier: tier '" +
                                std::string(tier_name(t)) +
                                "' not supported by this host/build");
  }
  active_slot() = t;
}

}  // namespace cpu
}  // namespace serve::codec
