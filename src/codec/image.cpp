#include "codec/image.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

namespace serve::codec {

double mean_abs_diff(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.channels() != b.channels()) {
    throw std::invalid_argument("mean_abs_diff: shape mismatch");
  }
  if (a.data().empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    sum += std::abs(static_cast<int>(a.data()[i]) - static_cast<int>(b.data()[i]));
  }
  return sum / static_cast<double>(a.data().size());
}

double psnr(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.channels() != b.channels()) {
    throw std::invalid_argument("psnr: shape mismatch");
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - static_cast<double>(b.data()[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.data().size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

void write_pnm(const Image& img, const std::filesystem::path& path) {
  if (img.empty()) throw std::invalid_argument("write_pnm: empty image");
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("write_pnm: cannot open " + path.string());
  out << (img.channels() == 3 ? "P6" : "P5") << '\n'
      << img.width() << ' ' << img.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.data().data()),
            static_cast<std::streamsize>(img.data().size()));
  if (!out) throw std::runtime_error("write_pnm: write failed for " + path.string());
}

Image read_pnm(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("read_pnm: cannot open " + path.string());
  std::string magic;
  in >> magic;
  int channels = 0;
  if (magic == "P6") {
    channels = 3;
  } else if (magic == "P5") {
    channels = 1;
  } else {
    throw std::runtime_error("read_pnm: unsupported magic '" + magic + "'");
  }
  int width = 0, height = 0, maxval = 0;
  in >> width >> height >> maxval;
  if (!in || maxval != 255) throw std::runtime_error("read_pnm: bad header");
  in.get();  // single whitespace after header
  Image img{width, height, channels};
  in.read(reinterpret_cast<char*>(img.data().data()),
          static_cast<std::streamsize>(img.data().size()));
  if (!in) throw std::runtime_error("read_pnm: truncated pixel data");
  return img;
}

}  // namespace serve::codec
