// 8x8 forward/inverse DCT-II used by the JPEG codec.
#pragma once

#include <array>

namespace serve::codec::jpeg {

/// Forward 2-D DCT of one level-shifted 8x8 block (row-major input),
/// producing coefficients in natural order with JPEG's normalization.
void fdct8x8(const float in[64], float out[64]) noexcept;

/// Inverse 2-D DCT (natural-order coefficients -> spatial samples, still
/// level-shifted around 0).
void idct8x8(const float in[64], float out[64]) noexcept;

}  // namespace serve::codec::jpeg
