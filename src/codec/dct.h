// 8x8 forward/inverse DCT-II used by the JPEG codec.
//
// The default `fdct8x8`/`idct8x8` are AAN (Arai–Agui–Nakajima) fast
// transforms: 5 multiplies + 29 adds per 1-D pass instead of the 64
// multiplies of a basis-matrix row, with the normalization folded into a
// per-coefficient scale table. The original basis-matrix implementations are
// kept as `fdct8x8_ref`/`idct8x8_ref` — the correctness oracle the
// equivalence tests compare against.
#pragma once

#include <array>

namespace serve::codec::jpeg {

/// Forward 2-D DCT of one level-shifted 8x8 block (row-major input),
/// producing coefficients in natural order with JPEG's normalization.
void fdct8x8(const float in[64], float out[64]) noexcept;

/// Inverse 2-D DCT (natural-order coefficients -> spatial samples, still
/// level-shifted around 0).
void idct8x8(const float in[64], float out[64]) noexcept;

/// Reference basis-matrix transforms (slow; used as test oracles and by the
/// decoder's reference mode).
void fdct8x8_ref(const float in[64], float out[64]) noexcept;
void idct8x8_ref(const float in[64], float out[64]) noexcept;

/// Per-coefficient input scale of the fast IDCT in natural order:
/// `idct8x8(in) == idct8x8_scaled(in .* idct_prescale())`. The decoder folds
/// this into its dequantization tables so the per-block prescale multiply
/// disappears from the hot loop.
[[nodiscard]] const std::array<float, 64>& idct_prescale() noexcept;

/// Fast IDCT over coefficients already multiplied by `idct_prescale()`
/// (e.g. via a folded dequantization table). Dispatches to the best SIMD tier
/// (codec/cpu_features.h); `idct8x8_scaled_scalar` is the portable
/// implementation the vector tiers are tested against.
void idct8x8_scaled(const float in[64], float out[64]) noexcept;
void idct8x8_scaled_scalar(const float in[64], float out[64]) noexcept;

}  // namespace serve::codec::jpeg
