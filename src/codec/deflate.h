// DEFLATE (RFC 1951) and zlib (RFC 1950) — the compression layer of the
// PNG substrate, written from scratch.
//
// Encoder: greedy LZ77 (32 KiB window, hash-chain matcher) emitted with the
// fixed Huffman code, with a stored-block fallback for incompressible data.
// Decoder: full RFC 1951 — stored, fixed-Huffman and dynamic-Huffman blocks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/bit_io.h"  // CodecError

namespace serve::codec {

/// Compresses `data` into a raw DEFLATE stream.
[[nodiscard]] std::vector<std::uint8_t> deflate(std::span<const std::uint8_t> data);

/// Decompresses a raw DEFLATE stream. Throws jpeg::CodecError on malformed
/// input. `size_hint` preallocates the output (0 = unknown).
[[nodiscard]] std::vector<std::uint8_t> inflate(std::span<const std::uint8_t> data,
                                                std::size_t size_hint = 0);

/// RFC 1950 zlib wrapping: 2-byte header + DEFLATE + Adler-32 trailer.
[[nodiscard]] std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> data);
[[nodiscard]] std::vector<std::uint8_t> zlib_decompress(std::span<const std::uint8_t> data,
                                                        std::size_t size_hint = 0);

/// Adler-32 checksum (RFC 1950 Section 8).
[[nodiscard]] std::uint32_t adler32(std::span<const std::uint8_t> data) noexcept;

}  // namespace serve::codec
