#include "codec/batch_preprocess.h"

#include <algorithm>
#include <stdexcept>

#include "codec/jpeg.h"

namespace serve::codec {

BatchPreprocessor::BatchPreprocessor(int threads, metrics::Registry* registry)
    : threads_(threads) {
  if (threads < 1) throw std::invalid_argument("BatchPreprocessor: threads must be >= 1");
  if (registry != nullptr) {
    batches_m_ = registry->counter("codec_batches_total");
    images_m_ = registry->counter("codec_images_total");
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchPreprocessor::~BatchPreprocessor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void BatchPreprocessor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    job_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    while (job_next_ < job_n_) {
      const std::size_t i = job_next_++;
      ++job_active_;
      // On a failed batch, drain remaining indexes without running them so
      // the caller can return as soon as in-flight work finishes.
      const bool skip = job_error_ != nullptr;
      lk.unlock();
      std::exception_ptr err;
      try {
        if (!skip) (*job_fn_)(i);
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      if (err && !job_error_) job_error_ = err;
      if (--job_active_ == 0 && job_next_ >= job_n_) done_cv_.notify_all();
    }
  }
}

void BatchPreprocessor::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  job_fn_ = &fn;
  job_n_ = n;
  job_next_ = 0;
  job_active_ = 0;
  job_error_ = nullptr;
  ++generation_;
  job_cv_.notify_all();
  // The caller pulls indexes too, so a pool of K threads gives K-way
  // parallelism (and never deadlocks waiting on a blocked worker).
  while (job_next_ < job_n_) {
    const std::size_t i = job_next_++;
    ++job_active_;
    const bool skip = job_error_ != nullptr;
    lk.unlock();
    std::exception_ptr err;
    try {
      if (!skip) fn(i);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err && !job_error_) job_error_ = err;
    --job_active_;
  }
  done_cv_.wait(lk, [&] { return job_active_ == 0; });
  job_fn_ = nullptr;
  const std::exception_ptr err = job_error_;
  job_error_ = nullptr;
  if (err) std::rethrow_exception(err);
}

std::vector<std::vector<float>> BatchPreprocessor::run(
    const std::vector<std::span<const std::uint8_t>>& jpegs,
    const BatchPreprocessOptions& opts) {
  if (opts.target_side <= 0) throw std::invalid_argument("BatchPreprocessor: bad target_side");
  std::vector<std::vector<float>> out(jpegs.size());
  parallel_for(jpegs.size(), [&](std::size_t i) {
    Image img = decode_jpeg(jpegs[i]);
    if (opts.center_crop_side > 0) img = center_crop(img, opts.center_crop_side);
    const Image resized = resize(img, opts.target_side, opts.target_side);
    out[i] = normalize_chw(resized, opts.mean, opts.stddev);
  });
  batches_m_.inc();
  images_m_.inc(static_cast<double>(jpegs.size()));
  return out;
}

std::vector<std::vector<float>> BatchPreprocessor::run(
    const std::vector<std::vector<std::uint8_t>>& jpegs, const BatchPreprocessOptions& opts) {
  std::vector<std::span<const std::uint8_t>> views;
  views.reserve(jpegs.size());
  for (const auto& j : jpegs) views.emplace_back(j.data(), j.size());
  return run(views, opts);
}

}  // namespace serve::codec
