// Canonical Huffman decoding for baseline JPEG (T.81 F.16), accelerated by
// a flat primary lookup table in the libjpeg-turbo style: the decoder peeks
// `kHuffLookupBits` bits and resolves (symbol, code length) with one load;
// codes longer than the window fall back to the serial mincode/maxcode walk.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "codec/bit_io.h"

namespace serve::codec::jpeg {

/// Primary lookup window. Annex K tables place every high-frequency symbol
/// at 9 bits or fewer, so the slow path only runs for rare symbols.
inline constexpr int kHuffLookupBits = 9;

struct DecodeTable {
  std::array<int, 17> mincode{};
  std::array<int, 17> maxcode{};  ///< -1 where no codes of that length exist
  std::array<int, 17> valptr{};
  std::vector<std::uint8_t> vals;
  /// `(symbol << 8) | code_length` for every `kHuffLookupBits`-bit window
  /// that starts with a code of that length; 0 routes to the slow path.
  std::array<std::uint16_t, 1u << kHuffLookupBits> lookup{};
  bool present = false;

  /// Builds the canonical code book from a DHT segment's BITS/HUFFVAL.
  /// Throws CodecError when the length counts do not describe a prefix code
  /// (a corrupted table would otherwise index out of bounds).
  void build(const std::uint8_t bits[16], const std::uint8_t* huffval, int count) {
    vals.assign(huffval, huffval + count);
    lookup.fill(0);
    int code = 0, k = 0;
    for (int len = 1; len <= 16; ++len) {
      const auto l = static_cast<std::size_t>(len);
      if (bits[len - 1] == 0) {
        maxcode[l] = -1;
      } else {
        valptr[l] = k;
        mincode[l] = code;
        k += bits[len - 1];
        code += bits[len - 1];
        // All codes of this length must fit in `len` bits, or the counts do
        // not form a valid canonical prefix code (T.81 C.2).
        if (code > (1 << len)) throw CodecError("DHT: invalid code length counts");
        maxcode[l] = code - 1;
        for (int c = mincode[l]; c <= maxcode[l] && len <= kHuffLookupBits; ++c) {
          const auto sym = vals[static_cast<std::size_t>(valptr[l] + c - mincode[l])];
          const int base = c << (kHuffLookupBits - len);
          const int span = 1 << (kHuffLookupBits - len);
          const auto entry = static_cast<std::uint16_t>((sym << 8) | len);
          for (int s = 0; s < span; ++s) lookup[static_cast<std::size_t>(base + s)] = entry;
        }
      }
      code <<= 1;
    }
    present = true;
  }

  /// Decodes one symbol: one peek + one table load on the fast path.
  [[nodiscard]] std::uint8_t decode(BitReader& br) const {
    const std::uint16_t entry = lookup[br.peek(kHuffLookupBits)];
    if (entry != 0) {
      br.consume(entry & 0xFF);
      return static_cast<std::uint8_t>(entry >> 8);
    }
    return decode_slow(br);
  }

  [[nodiscard]] std::uint8_t decode_slow(BitReader& br) const {
    for (int len = kHuffLookupBits + 1; len <= 16; ++len) {
      const auto l = static_cast<std::size_t>(len);
      if (maxcode[l] < 0) continue;
      const int code = static_cast<int>(br.peek(len));
      if (code >= mincode[l] && code <= maxcode[l]) {
        br.consume(len);
        return vals[static_cast<std::size_t>(valptr[l] + code - mincode[l])];
      }
    }
    throw CodecError("invalid Huffman code");
  }
};

}  // namespace serve::codec::jpeg
