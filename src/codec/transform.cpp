#include "codec/transform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace serve::codec {

Image resize(const Image& src, int dst_w, int dst_h, ResizeFilter filter) {
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  if (dst_w <= 0 || dst_h <= 0) throw std::invalid_argument("resize: non-positive target");
  Image dst{dst_w, dst_h, src.channels()};
  const double sx = static_cast<double>(src.width()) / dst_w;
  const double sy = static_cast<double>(src.height()) / dst_h;
  for (int y = 0; y < dst_h; ++y) {
    for (int x = 0; x < dst_w; ++x) {
      // Pixel-center mapping keeps the image from shifting by half a pixel.
      const double fx = (x + 0.5) * sx - 0.5;
      const double fy = (y + 0.5) * sy - 0.5;
      if (filter == ResizeFilter::kNearest) {
        const int ix = static_cast<int>(std::lround(fx));
        const int iy = static_cast<int>(std::lround(fy));
        for (int c = 0; c < src.channels(); ++c) dst.at(x, y, c) = src.at_clamped(ix, iy, c);
      } else {
        const int x0 = static_cast<int>(std::floor(fx));
        const int y0 = static_cast<int>(std::floor(fy));
        const double ax = fx - x0;
        const double ay = fy - y0;
        for (int c = 0; c < src.channels(); ++c) {
          const double v00 = src.at_clamped(x0, y0, c);
          const double v10 = src.at_clamped(x0 + 1, y0, c);
          const double v01 = src.at_clamped(x0, y0 + 1, c);
          const double v11 = src.at_clamped(x0 + 1, y0 + 1, c);
          const double v = v00 * (1 - ax) * (1 - ay) + v10 * ax * (1 - ay) +
                           v01 * (1 - ax) * ay + v11 * ax * ay;
          dst.at(x, y, c) = static_cast<std::uint8_t>(std::clamp(std::lround(v), 0L, 255L));
        }
      }
    }
  }
  return dst;
}

std::vector<float> normalize_chw(const Image& img, const std::array<float, 3>& mean,
                                 const std::array<float, 3>& stddev) {
  if (img.channels() != 3) throw std::invalid_argument("normalize_chw: need RGB input");
  for (float s : stddev) {
    if (s <= 0.0f) throw std::invalid_argument("normalize_chw: stddev must be positive");
  }
  const auto plane = static_cast<std::size_t>(img.width()) * static_cast<std::size_t>(img.height());
  std::vector<float> out(plane * 3);
  for (int c = 0; c < 3; ++c) {
    float* dst = out.data() + static_cast<std::size_t>(c) * plane;
    const float m = mean[static_cast<std::size_t>(c)];
    const float inv = 1.0f / stddev[static_cast<std::size_t>(c)];
    std::size_t i = 0;
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        dst[i++] = (static_cast<float>(img.at(x, y, c)) / 255.0f - m) * inv;
      }
    }
  }
  return out;
}

Image center_crop(const Image& src, int side) {
  if (side <= 0) throw std::invalid_argument("center_crop: non-positive side");
  const int s = std::min({side, src.width(), src.height()});
  const int x0 = (src.width() - s) / 2;
  const int y0 = (src.height() - s) / 2;
  Image dst{s, s, src.channels()};
  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      for (int c = 0; c < src.channels(); ++c) dst.at(x, y, c) = src.at(x0 + x, y0 + y, c);
    }
  }
  return dst;
}

}  // namespace serve::codec
