#include "codec/transform.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "codec/simd_kernels.h"

namespace serve::codec {

namespace {

/// Per-axis bilinear resampling plan: for each destination index, the two
/// clamped source taps and the weight of the second tap. Precomputed once
/// per resize so the pixel loops are pure float multiply-adds.
struct AxisPlan {
  std::vector<int> i0, i1;
  std::vector<float> w1;  ///< weight of tap i1; tap i0 gets (1 - w1)
};

AxisPlan make_axis_plan(int src, int dst) {
  AxisPlan plan;
  const auto n = static_cast<std::size_t>(dst);
  plan.i0.resize(n);
  plan.i1.resize(n);
  plan.w1.resize(n);
  const double scale = static_cast<double>(src) / dst;
  for (int x = 0; x < dst; ++x) {
    // Pixel-center mapping keeps the image from shifting by half a pixel.
    const double f = (x + 0.5) * scale - 0.5;
    const int x0 = static_cast<int>(std::floor(f));
    const auto i = static_cast<std::size_t>(x);
    plan.i0[i] = std::clamp(x0, 0, src - 1);
    plan.i1[i] = std::clamp(x0 + 1, 0, src - 1);
    plan.w1[i] = static_cast<float>(f - x0);
  }
  return plan;
}

/// Nearest-neighbour index plan (same pixel-center mapping as the reference).
std::vector<int> make_nearest_plan(int src, int dst) {
  std::vector<int> idx(static_cast<std::size_t>(dst));
  const double scale = static_cast<double>(src) / dst;
  for (int x = 0; x < dst; ++x) {
    const double f = (x + 0.5) * scale - 0.5;
    idx[static_cast<std::size_t>(x)] =
        std::clamp(static_cast<int>(std::lround(f)), 0, src - 1);
  }
  return idx;
}

Image resize_nearest(const Image& src, int dst_w, int dst_h) {
  Image dst{dst_w, dst_h, src.channels()};
  const auto xs = make_nearest_plan(src.width(), dst_w);
  const auto ys = make_nearest_plan(src.height(), dst_h);
  const int ch = src.channels();
  const std::uint8_t* sdata = src.data().data();
  std::uint8_t* out = dst.data().data();
  const std::size_t src_row = static_cast<std::size_t>(src.width()) * static_cast<std::size_t>(ch);
  for (int y = 0; y < dst_h; ++y) {
    const std::uint8_t* srow = sdata + static_cast<std::size_t>(ys[static_cast<std::size_t>(y)]) * src_row;
    for (int x = 0; x < dst_w; ++x) {
      const std::uint8_t* sp = srow + static_cast<std::size_t>(xs[static_cast<std::size_t>(x)]) * static_cast<std::size_t>(ch);
      for (int c = 0; c < ch; ++c) *out++ = sp[c];
    }
  }
  return dst;
}

Image resize_bilinear_two_pass(const Image& src, int dst_w, int dst_h) {
  Image dst{dst_w, dst_h, src.channels()};
  const int ch = src.channels();
  const AxisPlan xp = make_axis_plan(src.width(), dst_w);
  const AxisPlan yp = make_axis_plan(src.height(), dst_h);

  // Only source rows referenced by the vertical plan get a horizontal pass
  // (a heavy downscale touches far fewer than src_h rows); `row_slot` maps a
  // source row to its slot in the compact intermediate buffer.
  std::vector<int> row_slot(static_cast<std::size_t>(src.height()), -1);
  for (int y = 0; y < dst_h; ++y) {
    row_slot[static_cast<std::size_t>(yp.i0[static_cast<std::size_t>(y)])] = 0;
    row_slot[static_cast<std::size_t>(yp.i1[static_cast<std::size_t>(y)])] = 0;
  }
  int n_slots = 0;
  for (auto& slot : row_slot) {
    if (slot == 0) slot = n_slots++;
  }

  const std::size_t mid_row = static_cast<std::size_t>(dst_w) * static_cast<std::size_t>(ch);
  std::vector<float> mid(static_cast<std::size_t>(n_slots) * mid_row);
  const std::uint8_t* sdata = src.data().data();
  const std::size_t src_size = src.data().size();
  const std::size_t src_row = static_cast<std::size_t>(src.width()) * static_cast<std::size_t>(ch);
  const auto& K = simd::kernels();
  for (int sy = 0; sy < src.height(); ++sy) {
    const int slot = row_slot[static_cast<std::size_t>(sy)];
    if (slot < 0) continue;
    const std::size_t row_off = static_cast<std::size_t>(sy) * src_row;
    // Bytes readable from the row start: the rest of the image buffer, so a
    // vector load may legally run past the row end into the next row.
    K.resize_hpass_row(sdata + row_off, mid.data() + static_cast<std::size_t>(slot) * mid_row,
                       xp.i0.data(), xp.i1.data(), xp.w1.data(), dst_w, ch,
                       src_size - row_off);
  }

  std::uint8_t* out = dst.data().data();
  for (int y = 0; y < dst_h; ++y) {
    const auto yi = static_cast<std::size_t>(y);
    const float* r0 = mid.data() +
        static_cast<std::size_t>(row_slot[static_cast<std::size_t>(yp.i0[yi])]) * mid_row;
    const float* r1 = mid.data() +
        static_cast<std::size_t>(row_slot[static_cast<std::size_t>(yp.i1[yi])]) * mid_row;
    K.resize_vpass_row(r0, r1, yp.w1[yi], out, mid_row);
    out += mid_row;
  }
  return dst;
}

}  // namespace

Image resize(const Image& src, int dst_w, int dst_h, ResizeFilter filter) {
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  if (dst_w <= 0 || dst_h <= 0) throw std::invalid_argument("resize: non-positive target");
  if (filter == ResizeFilter::kNearest) return resize_nearest(src, dst_w, dst_h);
  return resize_bilinear_two_pass(src, dst_w, dst_h);
}

Image resize_reference(const Image& src, int dst_w, int dst_h, ResizeFilter filter) {
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  if (dst_w <= 0 || dst_h <= 0) throw std::invalid_argument("resize: non-positive target");
  Image dst{dst_w, dst_h, src.channels()};
  const double sx = static_cast<double>(src.width()) / dst_w;
  const double sy = static_cast<double>(src.height()) / dst_h;
  for (int y = 0; y < dst_h; ++y) {
    for (int x = 0; x < dst_w; ++x) {
      // Pixel-center mapping keeps the image from shifting by half a pixel.
      const double fx = (x + 0.5) * sx - 0.5;
      const double fy = (y + 0.5) * sy - 0.5;
      if (filter == ResizeFilter::kNearest) {
        const int ix = static_cast<int>(std::lround(fx));
        const int iy = static_cast<int>(std::lround(fy));
        for (int c = 0; c < src.channels(); ++c) dst.at(x, y, c) = src.at_clamped(ix, iy, c);
      } else {
        const int x0 = static_cast<int>(std::floor(fx));
        const int y0 = static_cast<int>(std::floor(fy));
        const double ax = fx - x0;
        const double ay = fy - y0;
        for (int c = 0; c < src.channels(); ++c) {
          const double v00 = src.at_clamped(x0, y0, c);
          const double v10 = src.at_clamped(x0 + 1, y0, c);
          const double v01 = src.at_clamped(x0, y0 + 1, c);
          const double v11 = src.at_clamped(x0 + 1, y0 + 1, c);
          const double v = v00 * (1 - ax) * (1 - ay) + v10 * ax * (1 - ay) +
                           v01 * (1 - ax) * ay + v11 * ax * ay;
          dst.at(x, y, c) = static_cast<std::uint8_t>(std::clamp(std::lround(v), 0L, 255L));
        }
      }
    }
  }
  return dst;
}

std::vector<float> normalize_chw(const Image& img, const std::array<float, 3>& mean,
                                 const std::array<float, 3>& stddev) {
  if (img.channels() != 3) throw std::invalid_argument("normalize_chw: need RGB input");
  for (float s : stddev) {
    if (s <= 0.0f) throw std::invalid_argument("normalize_chw: stddev must be positive");
  }
  const float inv_std[3] = {1.0f / stddev[0], 1.0f / stddev[1], 1.0f / stddev[2]};
  const auto plane = static_cast<std::size_t>(img.width()) * static_cast<std::size_t>(img.height());
  std::vector<float> out(plane * 3);
  // The whole interleaved image is one long "row" for the kernel; every tier
  // applies exactly (v/255 - mean) * inv_std, so output is bit-identical
  // across tiers (and to the pre-SIMD LUT implementation).
  simd::kernels().normalize_rgb_row(img.data().data(), out.data(), out.data() + plane,
                                    out.data() + 2 * plane, plane, mean.data(), inv_std);
  return out;
}

Image center_crop(const Image& src, int side) {
  if (side <= 0) throw std::invalid_argument("center_crop: non-positive side");
  const int s = std::min({side, src.width(), src.height()});
  const int x0 = (src.width() - s) / 2;
  const int y0 = (src.height() - s) / 2;
  Image dst{s, s, src.channels()};
  const auto ch = static_cast<std::size_t>(src.channels());
  const std::size_t src_row = static_cast<std::size_t>(src.width()) * ch;
  const std::size_t dst_row = static_cast<std::size_t>(s) * ch;
  const std::uint8_t* sp = src.data().data() +
      static_cast<std::size_t>(y0) * src_row + static_cast<std::size_t>(x0) * ch;
  std::uint8_t* dp = dst.data().data();
  for (int y = 0; y < s; ++y) {
    std::memcpy(dp, sp, dst_row);
    sp += src_row;
    dp += dst_row;
  }
  return dst;
}

}  // namespace serve::codec
