// Request-lifecycle auditor.
//
// The paper's contribution is an accounting exercise: every millisecond of a
// request must be attributed to exactly one lifecycle stage (ingest, queue,
// preprocess, transfer, inference, postprocess) so that the Fig. 6/7
// breakdowns are trustworthy. This class enforces that promise at runtime:
//
//  1. request conservation — submitted == completed + dropped + failed,
//     every `Request::done` set exactly once, no request leaked at shutdown;
//  2. stage-time conservation — sum(stage charges) == end-to-end latency
//     within a ns-quantization tolerance, flagging the stage that drifted;
//  3. resource hygiene — staging memory, batcher queues, and channel waiter
//     lists must be empty after drain (fed by InferenceServer::shutdown);
//  4. monotonicity — arrival <= enqueue_time <= completed.
//
// The auditor also doubles as the per-request span source for
// sim::TraceRecorder: each stage charge of a *sampled* request becomes a
// named span on a "req.<id>" track, so latency breakdowns are visually
// debuggable in Perfetto (chrome://tracing). Sampling is deterministic
// (trace::TraceSampler — hash of the request id by default, stride and the
// legacy first-N available via Options::sampler), so same-seed runs trace
// the same requests. With a CausalTracer attached the same spans also carry
// trace/span/parent ids and blame annotations, the request originates (or
// adopts, for chained retries and cascade hops) a trace::SpanContext, and a
// root "request" span is recorded at completion — the input to
// tools/trace_analyze's critical-path extraction.
//
// Enable with ServerConfig::audit (or --audit / --trace-out in the bench
// harness). One auditor belongs to one server; when several servers share a
// platform, each audits only its own requests, but staging-memory hygiene
// is meaningful only if the sharing servers drain together.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metrics/breakdown.h"
#include "serving/request.h"
#include "sim/time.h"
#include "sim/trace.h"
#include "trace/causal.h"
#include "trace/span_context.h"

namespace serve::serving {

class RequestAuditor final : public ChargeObserver {
 public:
  struct Options {
    /// Absolute slack between sum(stage times) and end-to-end latency; a
    /// 1e-9 relative term is added on top (covers ns quantization and
    /// floating-point accumulation across ~10 charges).
    double tolerance_s = 1e-9;
    /// Violations stored verbatim; the total count keeps growing past this.
    std::size_t max_recorded = 64;
    /// Which submitted requests get trace spans (bounds trace size; device
    /// counters are unaffected). Deterministic hash sampling by default;
    /// {.mode = trace::SampleMode::kFirstN} restores the legacy
    /// warmup-biased first-N selection.
    trace::SamplerOptions sampler{};
    /// Stamped on causal root spans and the finalize-time breakdown
    /// metadata, so one trace file can hold several experiment rows.
    std::string run_label{};
  };

  struct Violation {
    std::uint64_t request_id = 0;  ///< 0 = server-level check
    std::string check;             ///< invariant family, e.g. "stage-conservation"
    std::string detail;            ///< measured values backing the verdict
  };

  RequestAuditor() : RequestAuditor(Options{}) {}
  explicit RequestAuditor(Options opts) : opts_(std::move(opts)), sampler_(opts_.sampler) {}

  /// Streams per-request stage spans into `trace` ("req.<id>" tracks).
  /// The recorder must outlive the audited simulation activity.
  void set_trace(sim::TraceRecorder* trace) noexcept { trace_ = trace; }

  /// Attaches a causal tracer (usually shared with brokers/pipelines writing
  /// the same recorder): sampled requests then originate/adopt SpanContexts,
  /// spans carry causal ids + blame args, and completion records a root
  /// "request" span. Must outlive the audited activity.
  void set_causal_tracer(trace::CausalTracer* tracer) noexcept { causal_ = tracer; }

  // --- lifecycle hooks (called by InferenceServer) ---------------------------

  /// Registers the request, decides/adopts its sampling fate (writing the
  /// assigned SpanContext back into `req.trace_ctx`), and installs this
  /// auditor as its charge observer.
  void on_submit(Request& req);

  /// ChargeObserver: records the charged interval for conservation analysis
  /// and emits the corresponding trace span (with blame when given).
  void on_charge(const Request& req, metrics::Stage s, sim::Time end, sim::Time dt,
                 std::string_view blame) noexcept override;

  /// Verifies per-request invariants (conservation, monotonicity, single
  /// completion). Call after `req.completed` is set and `done` signalled.
  void on_complete(const Request& req);

  /// A request failed a scheduler-queue hand-off (it would have been lost
  /// silently before the drop-accounting fix). Always a violation.
  void on_lost_handoff(const Request& req, std::string_view where);

  /// Records an injected fault episode as a span on the "faults" trace
  /// track, so fault windows line up visually with request-latency spans.
  void on_fault_window(std::string_view name, sim::Time begin, sim::Time end);

  /// Records a circuit-breaker state transition ("closed" / "open" /
  /// "half-open") as an instant marker on the "policies" trace track.
  void on_breaker_transition(std::string_view to, sim::Time t);

  // --- terminal checks -------------------------------------------------------

  /// Resource-hygiene check: `value` must be zero after drain.
  void check_zero(std::string_view what, std::uint64_t value);

  /// Request-count conservation + leak detection. Idempotent; further
  /// terminal checks are pointless after this. With a trace attached, also
  /// emits an "audit.breakdown" metadata instant (per-stage mean seconds
  /// over every terminal request) that trace_analyze cross-checks against
  /// the aggregate critical-path attribution.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  // --- results ---------------------------------------------------------------

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }
  [[nodiscard]] std::uint64_t in_flight() const noexcept { return inflight_.size(); }

  [[nodiscard]] bool clean() const noexcept { return violation_count_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const noexcept { return violation_count_; }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept { return violations_; }

  /// Per-stage aggregation over every terminal request (completed, failed,
  /// dropped) across the whole run — the reference the causal traces'
  /// critical-path shares are validated against.
  [[nodiscard]] const metrics::Breakdown& breakdown() const noexcept { return breakdown_; }
  [[nodiscard]] std::uint64_t traced_requests() const noexcept { return sampler_.sampled_count(); }

  /// Mutable sampler access for triggered capture: the alert engine flips
  /// the sampler into full-sampling while an alert is firing so the
  /// anomalous interval is captured wholesale.
  [[nodiscard]] trace::TraceSampler& sampler() noexcept { return sampler_; }

  /// Formatted violation lines ("check (request N): detail"), capped at
  /// Options::max_recorded with a trailing "... and N more" marker.
  [[nodiscard]] std::vector<std::string> report() const;

 private:
  struct Charge {
    metrics::Stage stage;
    sim::Time begin;
    sim::Time end;
  };
  struct InFlight {
    sim::Time arrival = 0;
    bool traced = false;
    trace::SpanContext ctx{};  ///< causal identity (zero without a tracer)
    std::vector<Charge> charges;
  };

  void add_violation(std::uint64_t id, std::string check, std::string detail);
  void check_request(const Request& req, const InFlight& fl);

  /// Names the stage most likely responsible for a conservation mismatch:
  /// leaked time (sum < latency) points at the charge following the largest
  /// uncovered gap; double-charged time points at the largest overlap. The
  /// label is diagnostic only — the mismatch itself is computed exactly.
  [[nodiscard]] static std::string drift_label(const Request& req, const InFlight& fl,
                                               double delta_s);

  Options opts_;
  sim::TraceRecorder* trace_ = nullptr;
  trace::CausalTracer* causal_ = nullptr;
  trace::TraceSampler sampler_{};
  metrics::Breakdown breakdown_{};
  sim::Time last_terminal_ = 0;  ///< timestamp for the finalize metadata event
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t failed_ = 0;
  bool finalized_ = false;
  std::unordered_map<std::uint64_t, InFlight> inflight_;
  std::unordered_set<std::uint64_t> done_ids_;
  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
};

}  // namespace serve::serving
