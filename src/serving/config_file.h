// Text-based deployment configuration (Triton model-config style).
//
// Lets operators describe an endpoint in a small key/value file instead of
// code, e.g.:
//
//   # vit_service.cfg
//   model = vit-base
//   backend = tensorrt
//   preprocessing = gpu
//   dynamic_batching = true
//   max_batch = 64
//   max_queue_delay_us = 0
//   shed_deadline_ms = 250
//
// Unknown keys, malformed values and missing models are hard errors — a
// serving config typo should fail deployment, not silently default.
#pragma once

#include <filesystem>
#include <string>

#include "serving/config.h"

namespace serve::serving {

/// Parses the key = value format above. Lines starting with '#' (or blank)
/// are ignored. Throws std::invalid_argument / std::out_of_range on errors.
[[nodiscard]] ServerConfig parse_server_config(const std::string& text);

/// Reads and parses a config file.
[[nodiscard]] ServerConfig load_server_config(const std::filesystem::path& path);

/// Serializes a config back to the file format (round-trips through parse).
[[nodiscard]] std::string format_server_config(const ServerConfig& config);

}  // namespace serve::serving
