// Server deployment configuration (the knobs the paper's Section 2.3 tunes).
#pragma once

#include <stdexcept>

#include <string>

#include "models/model_zoo.h"
#include "serving/ingress.h"
#include "sim/time.h"
#include "trace/span_context.h"

namespace serve::serving {

/// Where JPEG decode/resize/normalize executes.
enum class PreprocDevice : std::uint8_t { kCpu, kGpu };

[[nodiscard]] constexpr std::string_view preproc_device_name(PreprocDevice d) noexcept {
  return d == PreprocDevice::kCpu ? "cpu" : "gpu";
}

/// Pipeline truncation for the Fig. 7 bottleneck decomposition.
enum class PipelineMode : std::uint8_t {
  kEndToEnd,       ///< full preprocess + inference service
  kPreprocessOnly, ///< stop after preprocessing (and staging)
  kInferenceOnly,  ///< client ships the preprocessed fp32 tensor
};

/// Client-side timeout + retry with exponential backoff, deterministic
/// jitter, and a gRPC-style retry token budget shared by all clients.
struct RetryPolicy {
  bool enabled = false;
  int max_attempts = 3;             ///< total tries per logical request (>= 1)
  sim::Time timeout = 0;            ///< per-attempt deadline (0 = wait forever)
  sim::Time backoff_base = 5'000'000;    ///< first retry delay (5 ms)
  sim::Time backoff_cap = 500'000'000;   ///< backoff ceiling (500 ms)
  double retry_budget = 64.0;            ///< initial retry tokens
  double budget_refill_per_success = 0.1;  ///< tokens returned per success
};

/// Ingest circuit breaker: opens when the server is drowning (deep in-flight
/// queue or high recent error rate) and fast-fails submissions instead of
/// letting the backlog grow without bound.
struct CircuitBreakerPolicy {
  bool enabled = false;
  int queue_depth_open = 2048;     ///< in-flight depth that trips the breaker
  double error_rate_open = 0.5;    ///< recent-error EWMA that trips it
  sim::Time open_duration = 100'000'000;  ///< how long it stays open (100 ms)
  int half_open_probes = 8;        ///< trial admissions before closing again
};

/// Graceful degradation: when a GPU's preprocessing path is unusable (the
/// GPU is in a failure window), reroute its requests through the CPU
/// preprocessing pool; return to GPU preprocessing only after the GPU has
/// been healthy for `hysteresis` (avoids flapping at window edges).
struct DegradePolicy {
  bool enabled = false;
  sim::Time hysteresis = 50'000'000;  ///< healthy time before un-degrading (50 ms)
};

/// Result publication over the broker: capped retries with backoff, then
/// failover to the fused in-process path (counted, not dropped). With
/// retry_enabled = false a publish blindly re-polls every poll_interval
/// until the broker recovers — the unbounded-queue baseline.
struct BrokerPublishPolicy {
  bool publish_results = false;  ///< publish completions through a broker
  bool retry_enabled = false;
  int max_attempts = 3;
  sim::Time backoff_base = 2'000'000;   ///< 2 ms
  sim::Time poll_interval = 10'000'000;  ///< blind re-poll cadence (10 ms)
};

/// Fleet balancer dispatch policy (the Fig. 1 datacenter balancer box).
enum class BalancerPolicy : std::uint8_t {
  kRoundRobin,        ///< strict rotation
  kRandom,            ///< uniform random node
  kLeastOutstanding,  ///< join-the-shortest-queue on balancer-visible in-flight
  kPowerOfTwo,        ///< two random candidates, pick the shorter queue
  kLatencyWeighted,   ///< C3-style: min ewma_latency * (outstanding + 1)
};

[[nodiscard]] constexpr std::string_view balancer_policy_name(BalancerPolicy p) noexcept {
  switch (p) {
    case BalancerPolicy::kRoundRobin: return "round-robin";
    case BalancerPolicy::kRandom: return "random";
    case BalancerPolicy::kLeastOutstanding: return "least-outstanding";
    case BalancerPolicy::kPowerOfTwo: return "p2c";
    case BalancerPolicy::kLatencyWeighted: return "latency-weighted";
  }
  return "?";
}

/// Per-node health checking at the fleet balancer: periodic probes feed an
/// EWMA health score together with balancer-observed request outcomes; a
/// node whose probes time out repeatedly (crash, partition) or whose score
/// collapses (gray failure) is ejected, trialled half-open after
/// `eject_duration`, and rejoined after `rejoin_probes` clean probes — the
/// PR 3 circuit-breaker state machine lifted to fleet scope.
struct HealthCheckPolicy {
  bool enabled = false;
  sim::Time probe_interval = 50'000'000;  ///< 50 ms between probes per node
  sim::Time probe_timeout = 25'000'000;   ///< probe RTT above this = failure
  double probe_cost_s = 200e-6;           ///< healthy probe round-trip time
  double ewma_alpha = 0.2;                ///< weight of the newest outcome
  double eject_score = 0.5;               ///< eject when score falls below
  int eject_probe_failures = 3;           ///< or after N consecutive probe losses
  sim::Time eject_duration = 500'000'000; ///< ejected hold before half-open (500 ms)
  int rejoin_probes = 3;                  ///< clean half-open trials to rejoin
};

/// Request hedging at the fleet balancer: if the primary dispatch has not
/// answered within `deadline`, re-dispatch to a second node; first response
/// wins and the loser is cancelled (drop-accounted on its node). The token
/// budget is gRPC-style: hedges spend a token, successes refill fractions,
/// so a fleet-wide incident cannot turn into a dispatch storm.
struct HedgePolicy {
  bool enabled = false;
  sim::Time deadline = 50'000'000;        ///< hedge fires 50 ms after dispatch
  double budget = 64.0;                   ///< initial hedge tokens (also the cap)
  double budget_refill_per_success = 0.1; ///< tokens returned per logical success
};

/// Everything the Fig. 1 balancer box needs to know (consumed by
/// core::run_fleet; inert for a single-node server).
struct FleetBalancerConfig {
  BalancerPolicy policy = BalancerPolicy::kRoundRobin;
  HealthCheckPolicy health{};
  HedgePolicy hedge{};
};

/// Content-addressed preprocess cache over the ingress tier (Kang et al.:
/// preprocessing is skippable on a hit over a skewed corpus). Budgets are
/// per-level; requests whose `content_hash` is zero always bypass.
struct IngressCachePolicy {
  bool enabled = false;
  std::int64_t image_budget_bytes = 64LL << 20;   ///< decoded-image level
  std::int64_t tensor_budget_bytes = 64LL << 20;  ///< preprocessed-tensor level
  double lookup_s = 20e-6;  ///< host-side probe cost charged per request
};

/// One deployed model endpoint.
struct ServerConfig {
  models::ModelDesc model{};
  models::Backend backend = models::Backend::kTensorRT;
  PreprocDevice preproc = PreprocDevice::kGpu;
  PipelineMode mode = PipelineMode::kEndToEnd;

  /// Default wire format for requests that don't pick one themselves
  /// (RequestIngress::kServerDefault). kRawTensor means clients preprocess
  /// on their side and ship the fp32 network input: no server preprocess,
  /// but PCIe/host-fabric cost scales with tensor bytes (224² fp32 is ~5x a
  /// medium JPEG — the paper's F7 crossover).
  IngressFormat ingress = IngressFormat::kCompressedImage;

  /// Ingress-format cache (only consulted on the compressed-image path).
  IngressCachePolicy ingress_cache{};

  /// Dynamic batching (Triton-style): an idle instance takes everything
  /// queued up to max_batch. With `max_queue_delay > 0` the scheduler also
  /// waits up to that long to fill the batch (the paper's "maximum queuing
  /// latency" knob; 0 = dispatch as soon as an instance is free).
  bool dynamic_batching = true;
  sim::Time max_queue_delay = 0;

  /// Without dynamic batching the server waits for exactly `fixed_batch`
  /// requests (the Fig. 3 pre-dynamic-batching configuration).
  int fixed_batch = 64;

  int max_batch = 0;  ///< 0 = use model.max_batch

  /// Execution instances per GPU (Triton instance groups; CUDA streams).
  /// The engine still serializes kernel execution, but extra instances
  /// overlap host-side staging/dispatch with the previous batch's compute.
  int instance_count = 1;

  /// Load shedding: requests older than this when a scheduler dispatches
  /// them are dropped instead of processed (0 = never shed). Bounds tail
  /// latency under overload at the cost of goodput.
  sim::Time shed_deadline = 0;

  /// Attach a RequestAuditor enforcing request/stage-time conservation,
  /// resource hygiene at drain, and timestamp monotonicity. Off by default:
  /// auditing tracks every in-flight request.
  bool audit = false;

  /// Which audited requests get trace spans / causal traces (forwarded to
  /// RequestAuditor::Options::sampler). Deterministic hash sampling by
  /// default; ignored unless a trace recorder is attached.
  trace::SamplerOptions trace_sampler{};

  /// Label stamped on causal root spans and the audit-breakdown trace
  /// metadata (e.g. "small/cpu"), so one trace file can hold several rows.
  std::string trace_run_label{};

  /// Validate request payloads at ingest by actually decoding them (real
  /// codec error paths); corrupted payloads fail the request. Off by
  /// default: decoding costs host time per request.
  bool validate_payloads = false;

  // --- resilience policies (each independently switchable) ---
  RetryPolicy retry{};
  CircuitBreakerPolicy breaker{};
  DegradePolicy degrade{};
  BrokerPublishPolicy broker_publish{};

  /// Fleet-balancer knobs (policy, health checks, hedging). Lives on the
  /// server config so one config file describes a whole deployment; ignored
  /// outside core::run_fleet.
  FleetBalancerConfig balancer{};

  [[nodiscard]] int effective_max_batch() const {
    const int mb = max_batch > 0 ? max_batch : model.max_batch;
    if (mb <= 0) throw std::invalid_argument("ServerConfig: max batch must be positive");
    return mb;
  }
};

}  // namespace serve::serving
