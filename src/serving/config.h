// Server deployment configuration (the knobs the paper's Section 2.3 tunes).
#pragma once

#include <stdexcept>

#include "models/model_zoo.h"
#include "sim/time.h"

namespace serve::serving {

/// Where JPEG decode/resize/normalize executes.
enum class PreprocDevice : std::uint8_t { kCpu, kGpu };

[[nodiscard]] constexpr std::string_view preproc_device_name(PreprocDevice d) noexcept {
  return d == PreprocDevice::kCpu ? "cpu" : "gpu";
}

/// Pipeline truncation for the Fig. 7 bottleneck decomposition.
enum class PipelineMode : std::uint8_t {
  kEndToEnd,       ///< full preprocess + inference service
  kPreprocessOnly, ///< stop after preprocessing (and staging)
  kInferenceOnly,  ///< client ships the preprocessed fp32 tensor
};

/// One deployed model endpoint.
struct ServerConfig {
  models::ModelDesc model{};
  models::Backend backend = models::Backend::kTensorRT;
  PreprocDevice preproc = PreprocDevice::kGpu;
  PipelineMode mode = PipelineMode::kEndToEnd;

  /// Dynamic batching (Triton-style): an idle instance takes everything
  /// queued up to max_batch. With `max_queue_delay > 0` the scheduler also
  /// waits up to that long to fill the batch (the paper's "maximum queuing
  /// latency" knob; 0 = dispatch as soon as an instance is free).
  bool dynamic_batching = true;
  sim::Time max_queue_delay = 0;

  /// Without dynamic batching the server waits for exactly `fixed_batch`
  /// requests (the Fig. 3 pre-dynamic-batching configuration).
  int fixed_batch = 64;

  int max_batch = 0;  ///< 0 = use model.max_batch

  /// Execution instances per GPU (Triton instance groups; CUDA streams).
  /// The engine still serializes kernel execution, but extra instances
  /// overlap host-side staging/dispatch with the previous batch's compute.
  int instance_count = 1;

  /// Load shedding: requests older than this when a scheduler dispatches
  /// them are dropped instead of processed (0 = never shed). Bounds tail
  /// latency under overload at the cost of goodput.
  sim::Time shed_deadline = 0;

  /// Attach a RequestAuditor enforcing request/stage-time conservation,
  /// resource hygiene at drain, and timestamp monotonicity. Off by default:
  /// auditing tracks every in-flight request.
  bool audit = false;

  [[nodiscard]] int effective_max_batch() const {
    const int mb = max_batch > 0 ? max_batch : model.max_batch;
    if (mb <= 0) throw std::invalid_argument("ServerConfig: max batch must be positive");
    return mb;
  }
};

}  // namespace serve::serving
