#include "serving/config_file.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace serve::serving {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw std::invalid_argument("server config line " + std::to_string(line_no) + ": " + msg);
}

bool parse_bool(int line_no, const std::string& key, const std::string& v) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  fail(line_no, "bad boolean for '" + key + "': " + v);
}

int parse_int(int line_no, const std::string& key, const std::string& v, int min_value,
              int max_value = std::numeric_limits<int>::max()) {
  std::size_t used = 0;
  int out = 0;
  try {
    out = std::stoi(v, &used);
  } catch (const std::exception&) {
    fail(line_no, "bad integer for '" + key + "': " + v);
  }
  if (used != v.size()) fail(line_no, "trailing junk for '" + key + "': " + v);
  if (out < min_value || out > max_value) {
    fail(line_no, "'" + key + "' = " + v + " out of range [" + std::to_string(min_value) + ", " +
                      (max_value == std::numeric_limits<int>::max() ? std::string("inf")
                                                                    : std::to_string(max_value)) +
                      "]");
  }
  return out;
}

double parse_double(int line_no, const std::string& key, const std::string& v, double min_value,
                    double max_value) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    fail(line_no, "bad number for '" + key + "': " + v);
  }
  if (used != v.size()) fail(line_no, "trailing junk for '" + key + "': " + v);
  if (!(out >= min_value && out <= max_value)) {
    fail(line_no, "'" + key + "' = " + v + " out of range [" + std::to_string(min_value) + ", " +
                      std::to_string(max_value) + "]");
  }
  return out;
}

}  // namespace

ServerConfig parse_server_config(const std::string& text) {
  ServerConfig cfg;
  bool have_model = false;
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty() || value.empty()) fail(line_no, "empty key or value");

    if (key == "model") {
      try {
        cfg.model = models::find_model(value);
      } catch (const std::out_of_range&) {
        throw std::out_of_range("server config line " + std::to_string(line_no) +
                                ": unknown model '" + value + "'");
      }
      have_model = true;
    } else if (key == "backend") {
      if (value == "tensorrt") {
        cfg.backend = models::Backend::kTensorRT;
      } else if (value == "onnxruntime") {
        cfg.backend = models::Backend::kOnnxRuntime;
      } else if (value == "pytorch") {
        cfg.backend = models::Backend::kPyTorch;
      } else {
        fail(line_no, "unknown backend '" + value + "'");
      }
    } else if (key == "preprocessing") {
      if (value == "cpu") {
        cfg.preproc = PreprocDevice::kCpu;
      } else if (value == "gpu") {
        cfg.preproc = PreprocDevice::kGpu;
      } else {
        fail(line_no, "unknown preprocessing device '" + value + "'");
      }
    } else if (key == "mode") {
      if (value == "end_to_end") {
        cfg.mode = PipelineMode::kEndToEnd;
      } else if (value == "preprocess_only") {
        cfg.mode = PipelineMode::kPreprocessOnly;
      } else if (value == "inference_only") {
        cfg.mode = PipelineMode::kInferenceOnly;
      } else {
        fail(line_no, "unknown pipeline mode '" + value + "'");
      }
    } else if (key == "ingress") {
      if (value == "jpeg") {
        cfg.ingress = IngressFormat::kCompressedImage;
      } else if (value == "tensor") {
        cfg.ingress = IngressFormat::kRawTensor;
      } else {
        fail(line_no, "unknown ingress format '" + value + "'");
      }
    } else if (key == "ingress_cache") {
      cfg.ingress_cache.enabled = parse_bool(line_no, key, value);
    } else if (key == "ingress_cache_image_mb") {
      cfg.ingress_cache.image_budget_bytes =
          static_cast<std::int64_t>(parse_int(line_no, key, value, 0)) << 20;
    } else if (key == "ingress_cache_tensor_mb") {
      cfg.ingress_cache.tensor_budget_bytes =
          static_cast<std::int64_t>(parse_int(line_no, key, value, 0)) << 20;
    } else if (key == "ingress_cache_lookup_us") {
      cfg.ingress_cache.lookup_s = parse_double(line_no, key, value, 0.0, 1e6) * 1e-6;
    } else if (key == "dynamic_batching") {
      cfg.dynamic_batching = parse_bool(line_no, key, value);
    } else if (key == "max_batch") {
      cfg.max_batch = parse_int(line_no, key, value, 0);
    } else if (key == "instance_count") {
      cfg.instance_count = parse_int(line_no, key, value, 1);
    } else if (key == "fixed_batch") {
      cfg.fixed_batch = parse_int(line_no, key, value, 1);
    } else if (key == "max_queue_delay_us") {
      cfg.max_queue_delay = sim::microseconds(parse_int(line_no, key, value, 0));
    } else if (key == "shed_deadline_ms") {
      cfg.shed_deadline = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "audit") {
      cfg.audit = parse_bool(line_no, key, value);
    } else if (key == "validate_payloads") {
      cfg.validate_payloads = parse_bool(line_no, key, value);
    } else if (key == "retry") {
      cfg.retry.enabled = parse_bool(line_no, key, value);
    } else if (key == "retry_max_attempts") {
      cfg.retry.max_attempts = parse_int(line_no, key, value, 1);
    } else if (key == "retry_timeout_ms") {
      cfg.retry.timeout = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "retry_backoff_base_ms") {
      cfg.retry.backoff_base = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "retry_backoff_cap_ms") {
      cfg.retry.backoff_cap = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "retry_budget") {
      cfg.retry.retry_budget = parse_double(line_no, key, value, 0.0, 1e9);
    } else if (key == "retry_budget_refill") {
      cfg.retry.budget_refill_per_success = parse_double(line_no, key, value, 0.0, 1e9);
    } else if (key == "circuit_breaker") {
      cfg.breaker.enabled = parse_bool(line_no, key, value);
    } else if (key == "breaker_queue_depth") {
      cfg.breaker.queue_depth_open = parse_int(line_no, key, value, 1);
    } else if (key == "breaker_error_rate") {
      cfg.breaker.error_rate_open = parse_double(line_no, key, value, 0.0, 1.0);
    } else if (key == "breaker_open_ms") {
      cfg.breaker.open_duration = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "breaker_half_open_probes") {
      cfg.breaker.half_open_probes = parse_int(line_no, key, value, 1);
    } else if (key == "degrade") {
      cfg.degrade.enabled = parse_bool(line_no, key, value);
    } else if (key == "degrade_hysteresis_ms") {
      cfg.degrade.hysteresis = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "broker_publish") {
      cfg.broker_publish.publish_results = parse_bool(line_no, key, value);
    } else if (key == "broker_retry") {
      cfg.broker_publish.retry_enabled = parse_bool(line_no, key, value);
    } else if (key == "broker_max_attempts") {
      cfg.broker_publish.max_attempts = parse_int(line_no, key, value, 1);
    } else if (key == "broker_backoff_ms") {
      cfg.broker_publish.backoff_base = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "broker_poll_ms") {
      cfg.broker_publish.poll_interval = sim::milliseconds(parse_int(line_no, key, value, 0));
    } else if (key == "balancer_policy") {
      if (value == "round_robin") {
        cfg.balancer.policy = BalancerPolicy::kRoundRobin;
      } else if (value == "random") {
        cfg.balancer.policy = BalancerPolicy::kRandom;
      } else if (value == "least_outstanding") {
        cfg.balancer.policy = BalancerPolicy::kLeastOutstanding;
      } else if (value == "p2c") {
        cfg.balancer.policy = BalancerPolicy::kPowerOfTwo;
      } else if (value == "latency_weighted") {
        cfg.balancer.policy = BalancerPolicy::kLatencyWeighted;
      } else {
        fail(line_no, "unknown balancer policy '" + value + "'");
      }
    } else if (key == "health_checks") {
      cfg.balancer.health.enabled = parse_bool(line_no, key, value);
    } else if (key == "health_probe_interval_ms") {
      cfg.balancer.health.probe_interval = sim::milliseconds(parse_int(line_no, key, value, 1));
    } else if (key == "health_probe_timeout_ms") {
      cfg.balancer.health.probe_timeout = sim::milliseconds(parse_int(line_no, key, value, 1));
    } else if (key == "health_probe_cost_us") {
      cfg.balancer.health.probe_cost_s = parse_double(line_no, key, value, 0.0, 1e6) * 1e-6;
    } else if (key == "health_ewma_alpha") {
      cfg.balancer.health.ewma_alpha = parse_double(line_no, key, value, 1e-6, 1.0);
    } else if (key == "health_eject_score") {
      cfg.balancer.health.eject_score = parse_double(line_no, key, value, 0.0, 1.0);
    } else if (key == "health_eject_probe_failures") {
      cfg.balancer.health.eject_probe_failures = parse_int(line_no, key, value, 1);
    } else if (key == "health_eject_ms") {
      cfg.balancer.health.eject_duration = sim::milliseconds(parse_int(line_no, key, value, 1));
    } else if (key == "health_rejoin_probes") {
      cfg.balancer.health.rejoin_probes = parse_int(line_no, key, value, 1);
    } else if (key == "hedge") {
      cfg.balancer.hedge.enabled = parse_bool(line_no, key, value);
    } else if (key == "hedge_deadline_ms") {
      cfg.balancer.hedge.deadline = sim::milliseconds(parse_int(line_no, key, value, 1));
    } else if (key == "hedge_budget") {
      cfg.balancer.hedge.budget = parse_double(line_no, key, value, 0.0, 1e9);
    } else if (key == "hedge_budget_refill") {
      cfg.balancer.hedge.budget_refill_per_success = parse_double(line_no, key, value, 0.0, 1e9);
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!have_model) throw std::invalid_argument("server config: 'model' is required");
  (void)cfg.effective_max_batch();  // validate batch bounds now, not at deploy
  return cfg;
}

ServerConfig load_server_config(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) throw std::invalid_argument("server config: cannot open " + path.string());
  std::ostringstream text;
  text << in.rdbuf();
  return parse_server_config(text.str());
}

std::string format_server_config(const ServerConfig& config) {
  std::ostringstream out;
  out << "model = " << config.model.name << "\n";
  out << "backend = " << models::backend_name(config.backend) << "\n";
  out << "preprocessing = " << preproc_device_name(config.preproc) << "\n";
  out << "mode = "
      << (config.mode == PipelineMode::kEndToEnd
              ? "end_to_end"
              : config.mode == PipelineMode::kPreprocessOnly ? "preprocess_only"
                                                             : "inference_only")
      << "\n";
  out << "ingress = " << ingress_format_name(config.ingress) << "\n";
  out << "ingress_cache = " << (config.ingress_cache.enabled ? "true" : "false") << "\n";
  out << "ingress_cache_image_mb = " << (config.ingress_cache.image_budget_bytes >> 20) << "\n";
  out << "ingress_cache_tensor_mb = " << (config.ingress_cache.tensor_budget_bytes >> 20) << "\n";
  out << "ingress_cache_lookup_us = " << config.ingress_cache.lookup_s * 1e6 << "\n";
  out << "dynamic_batching = " << (config.dynamic_batching ? "true" : "false") << "\n";
  out << "max_batch = " << config.effective_max_batch() << "\n";
  out << "instance_count = " << config.instance_count << "\n";
  out << "fixed_batch = " << config.fixed_batch << "\n";
  out << "max_queue_delay_us = " << sim::to_microseconds(config.max_queue_delay) << "\n";
  out << "shed_deadline_ms = " << sim::to_milliseconds(config.shed_deadline) << "\n";
  out << "audit = " << (config.audit ? "true" : "false") << "\n";
  out << "validate_payloads = " << (config.validate_payloads ? "true" : "false") << "\n";
  out << "retry = " << (config.retry.enabled ? "true" : "false") << "\n";
  out << "retry_max_attempts = " << config.retry.max_attempts << "\n";
  out << "retry_timeout_ms = " << sim::to_milliseconds(config.retry.timeout) << "\n";
  out << "retry_backoff_base_ms = " << sim::to_milliseconds(config.retry.backoff_base) << "\n";
  out << "retry_backoff_cap_ms = " << sim::to_milliseconds(config.retry.backoff_cap) << "\n";
  out << "retry_budget = " << config.retry.retry_budget << "\n";
  out << "retry_budget_refill = " << config.retry.budget_refill_per_success << "\n";
  out << "circuit_breaker = " << (config.breaker.enabled ? "true" : "false") << "\n";
  out << "breaker_queue_depth = " << config.breaker.queue_depth_open << "\n";
  out << "breaker_error_rate = " << config.breaker.error_rate_open << "\n";
  out << "breaker_open_ms = " << sim::to_milliseconds(config.breaker.open_duration) << "\n";
  out << "breaker_half_open_probes = " << config.breaker.half_open_probes << "\n";
  out << "degrade = " << (config.degrade.enabled ? "true" : "false") << "\n";
  out << "degrade_hysteresis_ms = " << sim::to_milliseconds(config.degrade.hysteresis) << "\n";
  out << "broker_publish = " << (config.broker_publish.publish_results ? "true" : "false") << "\n";
  out << "broker_retry = " << (config.broker_publish.retry_enabled ? "true" : "false") << "\n";
  out << "broker_max_attempts = " << config.broker_publish.max_attempts << "\n";
  out << "broker_backoff_ms = " << sim::to_milliseconds(config.broker_publish.backoff_base) << "\n";
  out << "broker_poll_ms = " << sim::to_milliseconds(config.broker_publish.poll_interval) << "\n";
  out << "balancer_policy = "
      << (config.balancer.policy == BalancerPolicy::kRoundRobin          ? "round_robin"
          : config.balancer.policy == BalancerPolicy::kRandom            ? "random"
          : config.balancer.policy == BalancerPolicy::kLeastOutstanding  ? "least_outstanding"
          : config.balancer.policy == BalancerPolicy::kPowerOfTwo        ? "p2c"
                                                                         : "latency_weighted")
      << "\n";
  out << "health_checks = " << (config.balancer.health.enabled ? "true" : "false") << "\n";
  out << "health_probe_interval_ms = "
      << sim::to_milliseconds(config.balancer.health.probe_interval) << "\n";
  out << "health_probe_timeout_ms = "
      << sim::to_milliseconds(config.balancer.health.probe_timeout) << "\n";
  out << "health_probe_cost_us = " << config.balancer.health.probe_cost_s * 1e6 << "\n";
  out << "health_ewma_alpha = " << config.balancer.health.ewma_alpha << "\n";
  out << "health_eject_score = " << config.balancer.health.eject_score << "\n";
  out << "health_eject_probe_failures = " << config.balancer.health.eject_probe_failures << "\n";
  out << "health_eject_ms = " << sim::to_milliseconds(config.balancer.health.eject_duration)
      << "\n";
  out << "health_rejoin_probes = " << config.balancer.health.rejoin_probes << "\n";
  out << "hedge = " << (config.balancer.hedge.enabled ? "true" : "false") << "\n";
  out << "hedge_deadline_ms = " << sim::to_milliseconds(config.balancer.hedge.deadline) << "\n";
  out << "hedge_budget = " << config.balancer.hedge.budget << "\n";
  out << "hedge_budget_refill = " << config.balancer.hedge.budget_refill_per_success << "\n";
  return out.str();
}

}  // namespace serve::serving
