#include "serving/config_file.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace serve::serving {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool parse_bool(const std::string& key, const std::string& v) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("server config: bad boolean for '" + key + "': " + v);
}

int parse_int(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  int out = 0;
  try {
    out = std::stoi(v, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("server config: bad integer for '" + key + "': " + v);
  }
  if (used != v.size()) {
    throw std::invalid_argument("server config: trailing junk for '" + key + "': " + v);
  }
  return out;
}

}  // namespace

ServerConfig parse_server_config(const std::string& text) {
  ServerConfig cfg;
  bool have_model = false;
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("server config line " + std::to_string(line_no) +
                                  ": expected key = value");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw std::invalid_argument("server config line " + std::to_string(line_no) +
                                  ": empty key or value");
    }

    if (key == "model") {
      cfg.model = models::find_model(value);  // throws std::out_of_range if unknown
      have_model = true;
    } else if (key == "backend") {
      if (value == "tensorrt") {
        cfg.backend = models::Backend::kTensorRT;
      } else if (value == "onnxruntime") {
        cfg.backend = models::Backend::kOnnxRuntime;
      } else if (value == "pytorch") {
        cfg.backend = models::Backend::kPyTorch;
      } else {
        throw std::invalid_argument("server config: unknown backend '" + value + "'");
      }
    } else if (key == "preprocessing") {
      if (value == "cpu") {
        cfg.preproc = PreprocDevice::kCpu;
      } else if (value == "gpu") {
        cfg.preproc = PreprocDevice::kGpu;
      } else {
        throw std::invalid_argument("server config: unknown preprocessing device '" + value + "'");
      }
    } else if (key == "dynamic_batching") {
      cfg.dynamic_batching = parse_bool(key, value);
    } else if (key == "max_batch") {
      cfg.max_batch = parse_int(key, value);
    } else if (key == "instance_count") {
      cfg.instance_count = parse_int(key, value);
    } else if (key == "fixed_batch") {
      cfg.fixed_batch = parse_int(key, value);
    } else if (key == "max_queue_delay_us") {
      cfg.max_queue_delay = sim::microseconds(parse_int(key, value));
    } else if (key == "shed_deadline_ms") {
      cfg.shed_deadline = sim::milliseconds(parse_int(key, value));
    } else if (key == "audit") {
      cfg.audit = parse_bool(key, value);
    } else {
      throw std::invalid_argument("server config: unknown key '" + key + "'");
    }
  }
  if (!have_model) throw std::invalid_argument("server config: 'model' is required");
  (void)cfg.effective_max_batch();  // validate batch bounds now, not at deploy
  return cfg;
}

ServerConfig load_server_config(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) throw std::invalid_argument("server config: cannot open " + path.string());
  std::ostringstream text;
  text << in.rdbuf();
  return parse_server_config(text.str());
}

std::string format_server_config(const ServerConfig& config) {
  std::ostringstream out;
  out << "model = " << config.model.name << "\n";
  out << "backend = " << models::backend_name(config.backend) << "\n";
  out << "preprocessing = " << preproc_device_name(config.preproc) << "\n";
  out << "dynamic_batching = " << (config.dynamic_batching ? "true" : "false") << "\n";
  out << "max_batch = " << config.effective_max_batch() << "\n";
  out << "instance_count = " << config.instance_count << "\n";
  out << "fixed_batch = " << config.fixed_batch << "\n";
  out << "max_queue_delay_us = " << sim::to_microseconds(config.max_queue_delay) << "\n";
  out << "shed_deadline_ms = " << sim::to_milliseconds(config.shed_deadline) << "\n";
  out << "audit = " << (config.audit ? "true" : "false") << "\n";
  return out.str();
}

}  // namespace serve::serving
