#include "serving/ingress_cache.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace serve::serving {

IngressCache::IngressCache(Options opts) : opts_(opts) {
  if (opts_.image_budget_bytes < 0 || opts_.tensor_budget_bytes < 0) {
    throw std::invalid_argument("IngressCache: budgets must be non-negative");
  }
  if (opts_.lookup_s < 0.0) {
    throw std::invalid_argument("IngressCache: lookup_s must be non-negative");
  }
  image_level_.budget = opts_.image_budget_bytes;
  tensor_level_.budget = opts_.tensor_budget_bytes;
}

bool IngressCache::Level::touch(std::uint64_t key) {
  auto it = entries.find(key);
  if (it == entries.end()) return false;
  lru.splice(lru.end(), lru, it->second.lru_pos);
  return true;
}

void IngressCache::Level::put(std::uint64_t key, std::int64_t bytes) {
  if (bytes <= 0 || bytes > budget) return;  // oversized artifacts are never admitted
  auto it = entries.find(key);
  if (it != entries.end()) {
    lru.splice(lru.end(), lru, it->second.lru_pos);
    return;
  }
  evict_to_fit(bytes);
  lru.push_back(key);
  entries.emplace(key, Entry{bytes, std::prev(lru.end())});
  resident_bytes += bytes;
}

void IngressCache::Level::evict_to_fit(std::int64_t incoming_bytes) {
  while (!lru.empty() && resident_bytes + incoming_bytes > budget) {
    const std::uint64_t victim = lru.front();
    auto it = entries.find(victim);
    resident_bytes -= it->second.bytes;
    entries.erase(it);
    lru.pop_front();
    ++evictions;
  }
}

void IngressCache::Level::set_budget(std::int64_t b) {
  budget = b;
  evict_to_fit(0);
}

CacheLevel IngressCache::lookup(std::uint64_t content_hash, int target_side) {
  if (tensor_level_.touch(tensor_key(content_hash, target_side))) {
    ++tensor_hits_;
    return CacheLevel::kTensor;
  }
  if (image_level_.touch(content_hash)) {
    ++image_hits_;
    return CacheLevel::kImage;
  }
  ++misses_;
  return CacheLevel::kNone;
}

void IngressCache::insert(std::uint64_t content_hash, std::int64_t decoded_bytes,
                          int target_side) {
  image_level_.put(content_hash, decoded_bytes);
  tensor_level_.put(tensor_key(content_hash, target_side), hw::tensor_bytes(target_side));
}

void IngressCache::set_budget_scale(double fraction) {
  if (!(fraction >= 0.0) || !std::isfinite(fraction)) {
    throw std::invalid_argument("IngressCache::set_budget_scale: fraction must be finite >= 0");
  }
  image_level_.set_budget(static_cast<std::int64_t>(
      std::floor(static_cast<double>(opts_.image_budget_bytes) * fraction)));
  tensor_level_.set_budget(static_cast<std::int64_t>(
      std::floor(static_cast<double>(opts_.tensor_budget_bytes) * fraction)));
}

}  // namespace serve::serving
