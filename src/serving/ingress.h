// Ingress-format tier vocabulary.
//
// The paper's F7 outlier (TinyViT: compressed-JPEG ingress beats raw fp32
// tensors five times its size, because PCIe transfer dominates for small
// models) motivates a serving tier where the wire format of a request is a
// first-class knob. Three small enums shared by the request lifecycle, the
// server configuration, and the content-addressed ingress cache live here so
// that request.h / config.h / ingress_cache.h need not include one another.
#pragma once

#include <cstdint>
#include <string_view>

namespace serve::serving {

/// What a client puts on the wire for one request.
enum class IngressFormat : std::uint8_t {
  kCompressedImage,  ///< JPEG bytes; the server decodes + resizes + normalizes
  kRawTensor,        ///< client-side-preprocessed fp32 tensor; PCIe cost scales
                     ///< with tensor bytes instead of compressed bytes
};

[[nodiscard]] constexpr std::string_view ingress_format_name(IngressFormat f) noexcept {
  return f == IngressFormat::kCompressedImage ? "jpeg" : "tensor";
}

/// Per-request ingress selection: clients may override the server default.
enum class RequestIngress : std::uint8_t {
  kServerDefault,    ///< use ServerConfig::ingress
  kCompressedImage,
  kRawTensor,
};

/// Which ingress-cache level satisfied a request (kNone = miss or bypass).
/// A tensor-level hit skips decode + resize + normalize entirely; an
/// image-level hit skips decode only.
enum class CacheLevel : std::uint8_t { kNone, kImage, kTensor };

[[nodiscard]] constexpr std::string_view cache_level_name(CacheLevel l) noexcept {
  switch (l) {
    case CacheLevel::kNone: return "miss";
    case CacheLevel::kImage: return "image";
    case CacheLevel::kTensor: return "tensor";
  }
  return "?";
}

}  // namespace serve::serving
