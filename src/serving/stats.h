// Measurement-window statistics for a serving experiment.
#pragma once

#include <cstdint>

#include "metrics/breakdown.h"
#include "metrics/histogram.h"
#include "metrics/stat_accumulator.h"
#include "serving/request.h"
#include "sim/time.h"

namespace serve::serving {

/// Collects completed-request statistics inside a measurement window.
/// Warmup requests (completed before `begin()` is called) are not recorded.
class ServerStats {
 public:
  explicit ServerStats(sim::Simulator& sim) : sim_(sim), window_start_(sim.now()) {}

  /// Starts (or restarts) the measurement window, discarding prior samples.
  void begin() {
    window_start_ = sim_.now();
    completed_ = 0;
    dropped_ = 0;
    failed_ = 0;
    rejected_ = 0;
    degraded_ = 0;
    breaker_opens_ = 0;
    broker_failovers_ = 0;
    cache_tensor_hits_ = 0;
    cache_image_hits_ = 0;
    latency_.reset();
    breakdown_.reset();
    batch_sizes_.reset();
    measuring_ = true;
  }

  void record(const Request& req) {
    if (!measuring_) return;
    if (req.dropped) {
      ++dropped_;
      return;
    }
    if (req.failed) {
      ++failed_;
      if (req.fail_reason == FailReason::kBreakerOpen) ++rejected_;
      return;
    }
    ++completed_;
    if (req.cache_hit == CacheLevel::kTensor) ++cache_tensor_hits_;
    if (req.cache_hit == CacheLevel::kImage) ++cache_image_hits_;
    latency_.add(sim::to_seconds(req.latency()));
    breakdown_.add(req.stages);
  }

  /// Resilience-event counters (always counted; windowed like records).
  void record_degraded() {
    if (measuring_) ++degraded_;
  }
  void record_breaker_open() {
    if (measuring_) ++breaker_opens_;
  }
  void record_broker_failover() {
    if (measuring_) ++broker_failovers_;
  }

  void record_batch_size(int b) {
    if (measuring_) batch_sizes_.add(static_cast<double>(b));
  }

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }
  /// Failed specifically by the open circuit breaker (subset of failed()).
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t degraded() const noexcept { return degraded_; }
  /// Completed requests satisfied from the ingress cache, by level.
  [[nodiscard]] std::uint64_t cache_tensor_hits() const noexcept { return cache_tensor_hits_; }
  [[nodiscard]] std::uint64_t cache_image_hits() const noexcept { return cache_image_hits_; }
  /// Fraction of completed requests satisfied from either cache level.
  [[nodiscard]] double cache_hit_rate() const noexcept {
    return completed_ ? static_cast<double>(cache_tensor_hits_ + cache_image_hits_) /
                            static_cast<double>(completed_)
                      : 0.0;
  }
  [[nodiscard]] std::uint64_t breaker_opens() const noexcept { return breaker_opens_; }
  [[nodiscard]] std::uint64_t broker_failovers() const noexcept { return broker_failovers_; }
  /// Fraction of finished requests that were shed.
  [[nodiscard]] double drop_rate() const noexcept {
    const auto total = completed_ + dropped_;
    return total ? static_cast<double>(dropped_) / static_cast<double>(total) : 0.0;
  }
  [[nodiscard]] double window_seconds() const noexcept {
    return sim::to_seconds(sim_.now() - window_start_);
  }
  [[nodiscard]] double throughput() const noexcept {
    const double w = window_seconds();
    return w > 0.0 ? static_cast<double>(completed_) / w : 0.0;
  }
  [[nodiscard]] const metrics::Histogram& latency() const noexcept { return latency_; }
  [[nodiscard]] const metrics::Breakdown& breakdown() const noexcept { return breakdown_; }
  [[nodiscard]] const metrics::StatAccumulator& batch_sizes() const noexcept {
    return batch_sizes_;
  }

 private:
  sim::Simulator& sim_;
  sim::Time window_start_;
  bool measuring_ = true;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t broker_failovers_ = 0;
  std::uint64_t cache_tensor_hits_ = 0;
  std::uint64_t cache_image_hits_ = 0;
  metrics::Histogram latency_;
  metrics::Breakdown breakdown_;
  metrics::StatAccumulator batch_sizes_;
};

}  // namespace serve::serving
