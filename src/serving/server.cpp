#include "serving/server.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "codec/jpeg.h"
#include "codec/synthetic.h"
#include "sim/sync.h"

namespace serve::serving {

using metrics::Stage;
using sim::seconds;
using sim::Time;

namespace {
/// Circuit-breaker error EWMA smoothing and the minimum number of outcomes
/// before the error-rate trigger may fire (a single early failure must not
/// read as a 100% error rate).
constexpr double kEwmaAlpha = 0.05;
constexpr std::uint64_t kMinOutcomeSamples = 20;
}  // namespace

InferenceServer::InferenceServer(hw::Platform& platform, ServerConfig config)
    : platform_(platform), config_(config), stats_(platform.sim()) {
  if (config_.ingress_cache.enabled) {
    ingress_cache_ = std::make_unique<IngressCache>(IngressCache::Options{
        .image_budget_bytes = config_.ingress_cache.image_budget_bytes,
        .tensor_budget_bytes = config_.ingress_cache.tensor_budget_bytes,
        .lookup_s = config_.ingress_cache.lookup_s});
  }
  // Occupancy integrators are sized before telemetry registers callbacks
  // over them and never resized afterwards (channel observers capture
  // element addresses).
  preproc_queue_integral_.resize(platform_.gpu_count());
  inf_queue_integral_.resize(platform_.gpu_count());
  if (platform_.registry() != nullptr) init_telemetry();
  if (config_.audit) {
    auditor_ = std::make_unique<RequestAuditor>(RequestAuditor::Options{
        .sampler = config_.trace_sampler, .run_label = config_.trace_run_label});
  }
  if (config_.validate_payloads) {
    // Template payload for ingest validation: corrupted requests decode a
    // seeded byte-mutated copy of this stream through the real JPEG decoder.
    template_jpeg_ =
        codec::encode_jpeg(codec::make_synthetic(96, 96, codec::Pattern::kScene, 7));
  }
  const int mb = config_.effective_max_batch();
  const Batcher<RequestPtr>::Options preproc_opts{
      .dynamic = true, .max_batch = mb, .max_queue_delay = 0, .fixed_batch = mb};
  const Batcher<RequestPtr>::Options inf_opts{.dynamic = config_.dynamic_batching,
                                              .max_batch = mb,
                                              .max_queue_delay = config_.max_queue_delay,
                                              .fixed_batch = config_.fixed_batch};
  for (std::size_t g = 0; g < platform_.gpu_count(); ++g) {
    gpus_.push_back(std::make_unique<GpuState>(platform_.sim(), preproc_opts, inf_opts));
  }
  auto& sim = platform_.sim();
  // Time-integrate batcher queue depths at every size change: point samples
  // of a bursty queue alias on the recorder cadence; the integral does not.
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    gpus_[g]->preproc_batcher.input().set_size_observer(
        [this, g](std::size_t n) {
          preproc_queue_integral_[g].set(platform_.sim().now(), static_cast<double>(n));
        });
    gpus_[g]->inf_batcher.input().set_size_observer([this, g](std::size_t n) {
      inf_queue_integral_[g].set(platform_.sim().now(), static_cast<double>(n));
    });
  }
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    const bool wants_gpu_preproc =
        config_.preproc == PreprocDevice::kGpu && config_.mode != PipelineMode::kInferenceOnly;
    if (wants_gpu_preproc) sim.spawn(gpu_preproc_loop(g));
    if (config_.mode != PipelineMode::kPreprocessOnly) {
      if (config_.instance_count < 1) {
        throw std::invalid_argument("ServerConfig: instance_count must be >= 1");
      }
      for (int i = 0; i < config_.instance_count; ++i) sim.spawn(inference_loop(g));
    }
  }
}

void InferenceServer::init_telemetry() {
  auto& reg = *platform_.registry();
  tele_.submitted = reg.counter("serving_requests_submitted_total");
  tele_.completed = reg.counter("serving_requests_completed_total");
  tele_.failed = reg.counter("serving_requests_failed_total");
  tele_.dropped = reg.counter("serving_requests_dropped_total");
  tele_.rejected = reg.counter("serving_requests_rejected_total");
  tele_.degraded = reg.counter("serving_requests_degraded_total");
  tele_.handoff_lost = reg.counter("serving_handoff_lost_total");
  tele_.broker_retries = reg.counter("serving_broker_publish_retries_total");
  tele_.broker_failovers = reg.counter("serving_broker_failovers_total");
  tele_.breaker_to_open = reg.counter("serving_breaker_transitions_total", {{"to", "open"}});
  tele_.breaker_to_half_open =
      reg.counter("serving_breaker_transitions_total", {{"to", "half-open"}});
  tele_.breaker_to_closed = reg.counter("serving_breaker_transitions_total", {{"to", "closed"}});
  for (std::size_t s = 0; s < metrics::kStageCount; ++s) {
    tele_.stage_seconds[s] = reg.counter(
        "serving_stage_seconds_total",
        {{"stage", std::string(metrics::stage_name(static_cast<Stage>(s)))}});
  }
  // Exemplars on the latency histogram let the exporter link each bucket —
  // SLO tail included — to the last trace that landed there.
  tele_.latency = reg.histogram("serving_request_latency_seconds", {}, {.track_exemplars = true});
  tele_.batch_size =
      reg.histogram("serving_batch_size", {}, {.min_value = 1.0, .max_value = 4096.0});
  if (ingress_cache_ != nullptr) {
    IngressCache& c = *ingress_cache_;
    reg.counter_fn("serving_ingress_cache_hits_total", {{"level", "tensor"}},
                   [&c] { return static_cast<double>(c.tensor_hits()); });
    reg.counter_fn("serving_ingress_cache_hits_total", {{"level", "image"}},
                   [&c] { return static_cast<double>(c.image_hits()); });
    reg.counter_fn("serving_ingress_cache_misses_total", {},
                   [&c] { return static_cast<double>(c.misses()); });
    reg.counter_fn("serving_ingress_cache_evictions_total", {{"level", "tensor"}},
                   [&c] { return static_cast<double>(c.tensor_evictions()); });
    reg.counter_fn("serving_ingress_cache_evictions_total", {{"level", "image"}},
                   [&c] { return static_cast<double>(c.image_evictions()); });
    reg.gauge_fn("serving_ingress_cache_resident_bytes", {{"level", "tensor"}},
                 [&c] { return static_cast<double>(c.tensor_resident_bytes()); });
    reg.gauge_fn("serving_ingress_cache_resident_bytes", {{"level", "image"}},
                 [&c] { return static_cast<double>(c.image_resident_bytes()); });
  }
  reg.gauge_fn("serving_in_flight", {},
               [this] { return static_cast<double>(in_flight()); });
  // Little's-law feed: the time integral of in-flight requests (L side) and
  // the completion-charged latency sum (λ·W side). Both monotone counters;
  // per-tick deltas agree in steady state and split apart only while the
  // backlog is growing or draining — exactly what the audit rule watches.
  reg.counter_fn("serving_in_flight_seconds_total", {}, [this] {
    return inflight_integral_.integral_seconds(platform_.sim().now());
  });
  tele_.latency_sum = reg.counter("serving_latency_seconds_total");
  // Queue depth per scheduler queue: sampled from the batchers at recorder
  // ticks (the growth-toward-seconds trajectory behind the Fig. 5 claim),
  // plus the time-weighted integral sibling the capacity plane differences
  // into alias-free interval means.
  for (std::size_t g = 0; g < platform_.gpu_count(); ++g) {
    const std::string dev = "gpu" + std::to_string(g);
    reg.gauge_fn("serving_queue_depth", {{"device", dev}, {"queue", "preproc"}}, [this, g] {
      return g < gpus_.size() ? static_cast<double>(gpus_[g]->preproc_batcher.queued()) : 0.0;
    });
    reg.gauge_fn("serving_queue_depth", {{"device", dev}, {"queue", "inference"}}, [this, g] {
      return g < gpus_.size() ? static_cast<double>(gpus_[g]->inf_batcher.queued()) : 0.0;
    });
    reg.counter_fn("serving_queue_depth_seconds_total",
                   {{"device", dev}, {"queue", "preproc"}}, [this, g] {
                     return preproc_queue_integral_[g].integral_seconds(platform_.sim().now());
                   });
    reg.counter_fn("serving_queue_depth_seconds_total",
                   {{"device", dev}, {"queue", "inference"}}, [this, g] {
                     return inf_queue_integral_[g].integral_seconds(platform_.sim().now());
                   });
  }
}

void InferenceServer::record_terminal(const Request& req) {
  if (!tele_.latency.enabled()) return;
  tele_.latency.observe(sim::to_seconds(req.latency()), req.trace_ctx.trace_id);
  tele_.latency_sum.inc(sim::to_seconds(req.latency()));
  for (std::size_t s = 0; s < metrics::kStageCount; ++s) {
    const double v = req.stages.seconds[s];
    if (v > 0.0) tele_.stage_seconds[s].inc(v);
  }
}

void InferenceServer::note_breaker(BreakerState to) {
  switch (to) {
    case BreakerState::kOpen: tele_.breaker_to_open.inc(); break;
    case BreakerState::kHalfOpen: tele_.breaker_to_half_open.inc(); break;
    case BreakerState::kClosed: tele_.breaker_to_closed.inc(); break;
  }
  if (auditor_) {
    const std::string_view name = to == BreakerState::kOpen      ? "open"
                                  : to == BreakerState::kHalfOpen ? "half-open"
                                                                  : "closed";
    auditor_->on_breaker_transition(name, platform_.sim().now());
  }
}

void InferenceServer::submit(RequestPtr req) {
  ++submitted_;
  inflight_integral_.add(platform_.sim().now(), 1.0);
  tele_.submitted.inc();
  if (auditor_) auditor_->on_submit(*req);
  if (!accepting_) {
    // Post-shutdown submissions are fail-accounted (counted, done signalled)
    // instead of thrown or silently destroyed: callers racing a drain still
    // observe a completed lifecycle and conservation holds.
    fail_request(0, std::move(req), FailReason::kShutdown);
    return;
  }
  if (!breaker_admit()) {
    fail_request(0, std::move(req), FailReason::kBreakerOpen);
    return;
  }
  req->gpu_index = route_request();
  platform_.sim().spawn(handle_request(std::move(req)));
}

bool InferenceServer::breaker_admit() {
  if (!config_.breaker.enabled) return true;
  const Time now = platform_.sim().now();
  if (breaker_state_ == BreakerState::kOpen && now >= breaker_open_until_) {
    breaker_state_ = BreakerState::kHalfOpen;
    half_open_budget_ = std::max(1, config_.breaker.half_open_probes);
    half_open_successes_ = 0;
    note_breaker(BreakerState::kHalfOpen);
  }
  switch (breaker_state_) {
    case BreakerState::kClosed: {
      const bool deep =
          in_flight() >= static_cast<std::uint64_t>(std::max(1, config_.breaker.queue_depth_open));
      const bool erroring = outcome_samples_ >= kMinOutcomeSamples &&
                            error_ewma_ >= config_.breaker.error_rate_open;
      if (deep || erroring) {
        open_breaker();
        return false;
      }
      return true;
    }
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      if (half_open_budget_ <= 0) return false;  // probes outstanding
      --half_open_budget_;
      return true;
  }
  return true;
}

void InferenceServer::open_breaker() {
  breaker_state_ = BreakerState::kOpen;
  breaker_open_until_ = platform_.sim().now() + config_.breaker.open_duration;
  stats_.record_breaker_open();
  note_breaker(BreakerState::kOpen);
}

void InferenceServer::record_outcome(bool success) {
  ++outcome_samples_;
  error_ewma_ = kEwmaAlpha * (success ? 0.0 : 1.0) + (1.0 - kEwmaAlpha) * error_ewma_;
  if (!config_.breaker.enabled || breaker_state_ != BreakerState::kHalfOpen) return;
  if (!success) {
    open_breaker();  // a failed probe re-opens immediately
    return;
  }
  if (++half_open_successes_ >= std::max(1, config_.breaker.half_open_probes)) {
    breaker_state_ = BreakerState::kClosed;
    error_ewma_ = 0.0;  // fresh start; stale failure history must not re-trip
    note_breaker(BreakerState::kClosed);
  }
}

bool InferenceServer::gpu_degraded(std::size_t g) {
  if (!config_.degrade.enabled) return false;
  auto& st = *gpus_[g];
  const Time now = platform_.sim().now();
  if (platform_.gpu(g).failed_now()) {
    st.degraded = true;
    st.last_unhealthy = now;
    return true;
  }
  if (st.degraded && now - st.last_unhealthy >= config_.degrade.hysteresis) {
    st.degraded = false;
  }
  return st.degraded;
}

std::size_t InferenceServer::route_request() {
  const std::size_t n = gpus_.size();
  if (config_.degrade.enabled) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t g = next_gpu_++ % n;
      if (!gpu_degraded(g)) return g;
    }
  }
  return next_gpu_++ % n;
}

bool InferenceServer::corrupted_payload_decodes(std::uint64_t stream_seed) const {
  std::vector<std::uint8_t> buf = template_jpeg_;
  std::uint64_t s = stream_seed | 1;  // xorshift64 must not start at zero
  auto next = [&s]() noexcept {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  const std::size_t flips = 1 + static_cast<std::size_t>(next() % 8);
  for (std::size_t i = 0; i < flips; ++i) {
    buf[next() % buf.size()] ^= static_cast<std::uint8_t>(1 + next() % 255);
  }
  if (next() % 4 == 0) buf.resize(buf.size() / 2 + next() % (buf.size() / 2));  // truncation
  try {
    (void)codec::decode_jpeg(buf);
    return true;  // the mutation did not break the stream — payload usable
  } catch (const codec::jpeg::CodecError&) {
    return false;
  }
}

void InferenceServer::shutdown() {
  accepting_ = false;
  auto& sim = platform_.sim();
  // Let already-submitted requests reach a scheduler queue before anything
  // closes (no new submissions can arrive once accepting_ is false).
  sim.run();
  // Staged drain: close the preprocessing stage first and let its partial
  // batches flow into the inference queue, then close inference so a final
  // partial batch (possible with fixed-size batching) executes. Each stage
  // runs to quiescence before the next closes.
  for (auto& g : gpus_) g->preproc_batcher.input().close();
  sim.run();
  for (auto& g : gpus_) g->inf_batcher.input().close();
  sim.run();

  if (auditor_ && !auditor_->finalized()) {
    // Resource hygiene: a fully drained server owns no staged device memory,
    // holds nothing in its batcher queues, and leaks no blocked coroutines.
    for (std::size_t g = 0; g < gpus_.size(); ++g) {
      const std::string p = "gpu" + std::to_string(g) + ".";
      auditor_->check_zero(p + "stager.staged_count", platform_.gpu(g).stager().staged_count());
      auditor_->check_zero(p + "preproc_batcher.queued", gpus_[g]->preproc_batcher.queued());
      auditor_->check_zero(p + "inf_batcher.queued", gpus_[g]->inf_batcher.queued());
      auditor_->check_zero(p + "preproc.waiting_getters",
                           gpus_[g]->preproc_batcher.input().waiting_getters());
      auditor_->check_zero(p + "preproc.waiting_putters",
                           gpus_[g]->preproc_batcher.input().waiting_putters());
      auditor_->check_zero(p + "inf.waiting_getters",
                           gpus_[g]->inf_batcher.input().waiting_getters());
      auditor_->check_zero(p + "inf.waiting_putters",
                           gpus_[g]->inf_batcher.input().waiting_putters());
    }
    auditor_->finalize();
  }
}

void InferenceServer::enqueue_inference(std::size_t g, RequestPtr req) {
  req->enqueue_time = platform_.sim().now();
  hand_off(gpus_[g]->inf_batcher.input(), g, std::move(req), "inference");
}

void InferenceServer::hand_off(sim::Channel<RequestPtr>& ch, std::size_t g, RequestPtr req,
                               std::string_view where) {
  // try_put consumes its argument even when it fails; keep a second owner so
  // a rejected request can still be drop-accounted instead of destroyed.
  RequestPtr keep = req;
  bool accepted = false;
  try {
    accepted = ch.try_put(std::move(req));
  } catch (const sim::ChannelClosed&) {
    accepted = false;  // raced with shutdown's staged drain
  }
  if (accepted) return;
  ++lost_handoffs_;
  tele_.handoff_lost.inc();
  if (auditor_) auditor_->on_lost_handoff(*keep, where);
  drop_request(g, std::move(keep));
}

sim::Process InferenceServer::handle_request(RequestPtr req) {
  auto& sim = platform_.sim();
  auto& cpu = platform_.cpu();
  auto& gpu = platform_.gpu(req->gpu_index);
  const std::size_t g = req->gpu_index;

  // Ingest: HTTP parse / deserialize on a host core.
  {
    const Time t0 = sim.now();
    auto core = co_await cpu.cores().acquire();
    req->charge(Stage::kQueue, sim.now() - t0, "host-core");
    co_await sim.wait(seconds(cpu.ingest_seconds()));
    req->charge(Stage::kIngest, seconds(cpu.ingest_seconds()));
  }

  const IngressFormat fmt = resolve_ingress(*req);

  // Payload validation: corrupted requests (a seeded per-id draw from the
  // fault plan) decode a byte-mutated template through the real JPEG
  // decoder; streams the codec rejects fail here, at ingest. Raw-tensor
  // requests carry no JPEG stream to validate.
  if (config_.validate_payloads && fmt == IngressFormat::kCompressedImage &&
      platform_.faults() != nullptr && platform_.faults()->corrupts_payload(req->id)) {
    if (!corrupted_payload_decodes(platform_.faults()->corruption_stream(req->id))) {
      fail_request(g, std::move(req), FailReason::kCorruptPayload);
      co_return;
    }
  }

  if (config_.mode == PipelineMode::kInferenceOnly) {
    // The client ships the preprocessed fp32 tensor (~5x the compressed
    // JPEG for the medium image — the Fig. 7 TinyViT data-transfer outlier).
    const std::int64_t bytes = config_.model.input_tensor_bytes();
    const Time t0 = sim.now();
    {
      auto host = co_await platform_.host_link().acquire();
      co_await sim.wait(seconds(platform_.host_link_seconds(bytes)));
    }
    {
      auto copy = co_await gpu.copy_h2d().acquire();
      co_await sim.wait(seconds(gpu.link_seconds(bytes)));
    }
    req->charge(Stage::kTransfer, sim.now() - t0);
    req->staged = gpu.stager().stage(bytes);
    enqueue_inference(g, std::move(req));
    co_return;
  }

  if (fmt == IngressFormat::kRawTensor) {
    // Client-side preprocessing: the fp32 network input crosses the host
    // fabric at tensor size (~5x a medium JPEG — the paper's F7 ingress
    // trade), but no server preprocess stage runs at all. On a GPU-preproc
    // deployment it continues straight over PCIe and is staged on-device;
    // on a CPU-preproc deployment it lands in the same host-side tensor
    // buffer CPU preprocessing fills, and rides the batched staging path to
    // the device at dispatch like every other host tensor.
    if (config_.mode == PipelineMode::kPreprocessOnly) {
      sim.spawn(finish_request(std::move(req)));
      co_return;
    }
    const std::int64_t bytes = config_.model.input_tensor_bytes();
    const bool device_direct = config_.preproc == PreprocDevice::kGpu;
    const Time t0 = sim.now();
    {
      auto host = co_await platform_.host_link().acquire();
      co_await sim.wait(seconds(platform_.host_link_seconds(bytes)));
    }
    if (device_direct) {
      auto copy = co_await gpu.copy_h2d().acquire();
      co_await sim.wait(seconds(gpu.link_seconds(bytes)));
    }
    req->charge(Stage::kTransfer, sim.now() - t0);
    if (device_direct) req->staged = gpu.stager().stage(bytes);
    enqueue_inference(g, std::move(req));
    co_return;
  }

  // Content-addressed ingress cache: probe with the request's stable payload
  // hash (zero = unique payload, never cached). The probe is real elapsed
  // host time charged to the preprocess stage with a blame naming the
  // outcome, so a tensor-level hit's skipped decode+resize+normalize is
  // *conserved* as a tiny preprocess span in the auditor breakdown and the
  // critical-path analyzer — not silently dropped.
  CacheLevel hit = CacheLevel::kNone;
  if (ingress_cache_ != nullptr && req->content_hash != 0) {
    hit = ingress_cache_->lookup(req->content_hash, config_.model.input_side);
    req->cache_hit = hit;
    const double probe = ingress_cache_->options().lookup_s;
    if (probe > 0.0) {
      co_await sim.wait(seconds(probe));
      req->charge(Stage::kPreprocess, seconds(probe),
                  hit == CacheLevel::kTensor   ? "ingress-cache-hit level=tensor"
                  : hit == CacheLevel::kImage  ? "ingress-cache-hit level=image"
                                               : "ingress-cache-miss");
    }
  }

  if (config_.preproc == PreprocDevice::kCpu) {
    // CPU preprocessing path: decode on a tuned worker pool; the resulting
    // tensor is buffered in host memory until batch dispatch (the paper's
    // "CPU preprocessing benefits from a larger main memory" observation).
    // A tensor-level cache hit skips the worker pool entirely (the cached
    // tensor is already host-resident); an image-level hit skips decode.
    if (hit != CacheLevel::kTensor) {
      const Time t0 = sim.now();
      auto worker = co_await cpu.preproc_workers().acquire();
      req->charge(Stage::kQueue, sim.now() - t0, "preproc-worker");
      const double p = cpu.preprocess_seconds(req->image, config_.model.input_side,
                                              hit == CacheLevel::kImage);
      co_await sim.wait(seconds(p));
      worker.release();
      req->charge(Stage::kPreprocess, seconds(p));
      if (ingress_cache_ != nullptr && req->content_hash != 0) {
        ingress_cache_->insert(req->content_hash, req->image.decoded_bytes(),
                               config_.model.input_side);
      }
    }
    if (config_.mode == PipelineMode::kPreprocessOnly) {
      sim.spawn(finish_request(std::move(req)));
    } else {
      enqueue_inference(g, std::move(req));
    }
    co_return;
  }

  // Graceful degradation: when this GPU's preprocessing pipeline is in (or
  // recently left) a failure window, fall back to the CPU pool and ship the
  // preprocessed tensor instead — slower, but the request survives.
  if (gpu_degraded(g)) {
    stats_.record_degraded();
    tele_.degraded.inc();
    if (hit != CacheLevel::kTensor) {
      const Time q0 = sim.now();
      auto worker = co_await cpu.preproc_workers().acquire();
      req->charge(Stage::kQueue, sim.now() - q0, "preproc-worker;degraded");
      const double p = cpu.preprocess_seconds(req->image, config_.model.input_side,
                                              hit == CacheLevel::kImage);
      co_await sim.wait(seconds(p));
      worker.release();
      req->charge(Stage::kPreprocess, seconds(p));
      if (ingress_cache_ != nullptr && req->content_hash != 0) {
        ingress_cache_->insert(req->content_hash, req->image.decoded_bytes(),
                               config_.model.input_side);
      }
    }
    if (config_.mode == PipelineMode::kPreprocessOnly) {
      sim.spawn(finish_request(std::move(req)));
      co_return;
    }
    const std::int64_t bytes = config_.model.input_tensor_bytes();
    const Time t0 = sim.now();
    {
      auto host = co_await platform_.host_link().acquire();
      co_await sim.wait(seconds(platform_.host_link_seconds(bytes)));
    }
    {
      auto copy = co_await gpu.copy_h2d().acquire();
      co_await sim.wait(seconds(gpu.link_seconds(bytes)));
    }
    req->charge(Stage::kTransfer, sim.now() - t0);
    req->staged = gpu.stager().stage(bytes);
    enqueue_inference(g, std::move(req));
    co_return;
  }

  if (hit == CacheLevel::kTensor) {
    // The cached network input is host-resident: ship it to the device like
    // a raw-tensor request and skip the DALI pipeline entirely.
    if (config_.mode == PipelineMode::kPreprocessOnly) {
      sim.spawn(finish_request(std::move(req)));
      co_return;
    }
    const std::int64_t bytes = config_.model.input_tensor_bytes();
    const Time t0 = sim.now();
    {
      auto host = co_await platform_.host_link().acquire();
      co_await sim.wait(seconds(platform_.host_link_seconds(bytes)));
    }
    {
      auto copy = co_await gpu.copy_h2d().acquire();
      co_await sim.wait(seconds(gpu.link_seconds(bytes)));
    }
    req->charge(Stage::kTransfer, sim.now() - t0);
    req->staged = gpu.stager().stage(bytes);
    enqueue_inference(g, std::move(req));
    co_return;
  }

  // GPU preprocessing path: only the compressed JPEG crosses PCIe (or, on an
  // image-level cache hit, the host-cached decoded RGB — larger on the wire,
  // but the device skips its decode), then the image joins a DALI-style
  // batched pipeline on the device.
  {
    const std::int64_t bytes = hit == CacheLevel::kImage ? req->image.decoded_bytes()
                                                         : req->image.compressed_bytes;
    const Time t0 = sim.now();
    {
      auto host = co_await platform_.host_link().acquire();
      co_await sim.wait(seconds(platform_.host_link_seconds(bytes)));
    }
    {
      auto copy = co_await gpu.copy_h2d().acquire();
      co_await sim.wait(seconds(gpu.link_seconds(bytes)));
    }
    req->charge(Stage::kTransfer, sim.now() - t0);
  }
  req->enqueue_time = sim.now();
  hand_off(gpus_[g]->preproc_batcher.input(), g, std::move(req), "gpu-preprocess");
}

sim::Process InferenceServer::gpu_preproc_loop(std::size_t g) {
  auto& sim = platform_.sim();
  auto& gpu = platform_.gpu(g);
  auto& st = *gpus_[g];
  while (true) {
    // Demand-driven batching: only collect once a pipeline instance is free.
    auto pipeline = co_await gpu.preproc().acquire();
    std::vector<RequestPtr> batch;
    sim::Event ready{sim};
    sim.spawn(st.preproc_batcher.collect_into(batch, ready));
    co_await ready.wait();
    if (batch.empty()) break;  // input closed
    sim.spawn(run_gpu_preproc_batch(g, std::move(batch), std::move(pipeline)));
  }
}

sim::Process InferenceServer::run_gpu_preproc_batch(std::size_t g, std::vector<RequestPtr> batch,
                                                    sim::ResourceToken pipeline) {
  auto& sim = platform_.sim();
  auto& gpu = platform_.gpu(g);
  // GPU failure window: with a resilience policy on, the batch holds (the
  // pipeline token stays taken, modelling a wedged pipeline) until recovery;
  // without one it fails outright. The wait is charged as queue residue when
  // requests are next charged, since `start` is taken after the hold.
  bool fault_held = false;
  while (gpu.failed_now()) {
    if (!resilient_hold()) {
      pipeline.release();
      for (auto& r : batch) fail_request(g, std::move(r), FailReason::kGpuFault);
      co_return;
    }
    fault_held = true;
    const Time until =
        gpu.faults()->active_until(sim::FaultKind::kGpuFailure, gpu.index(), sim.now());
    co_await sim.wait(std::max<Time>(until - sim.now(), 1));
  }
  const Time start = sim.now();
  const std::string_view preproc_blame =
      fault_held ? "preproc-batch-formation;gpu-fault-hold" : "preproc-batch-formation";
  double total = gpu.preproc_batch_fixed_seconds();
  for (const auto& r : batch) {
    r->charge(Stage::kQueue, start - r->enqueue_time, preproc_blame);
    // Image-level cache hits arrive decoded: the device only resizes them.
    total += gpu.preproc_image_seconds(r->image, r->cache_hit == CacheLevel::kImage);
  }
  co_await sim.wait(seconds(total));
  pipeline.release();
  for (auto& r : batch) {
    // Every request rides the whole batch through the pipeline, so each one
    // experiences the full batch duration (conservation: stage times sum to
    // end-to-end latency).
    r->charge(Stage::kPreprocess, seconds(total));
    if (ingress_cache_ != nullptr && r->content_hash != 0) {
      ingress_cache_->insert(r->content_hash, r->image.decoded_bytes(),
                             config_.model.input_side);
    }
    // Decoded intermediate + fp32 tensor stay on-device until consumed.
    r->staged =
        gpu.stager().stage(r->image.decoded_bytes() + config_.model.input_tensor_bytes());
    if (config_.mode == PipelineMode::kPreprocessOnly) {
      gpu.stager().release(r->staged);
      r->staged = 0;
      sim.spawn(finish_request(std::move(r)));
    } else {
      enqueue_inference(g, std::move(r));
    }
  }
}

sim::Process InferenceServer::inference_loop(std::size_t g) {
  auto& sim = platform_.sim();
  auto& cpu = platform_.cpu();
  auto& gpu = platform_.gpu(g);
  auto& st = *gpus_[g];
  const auto& scal = platform_.calib().serving;
  const double backend = models::backend_factor(platform_.calib().gpu, config_.backend);
  // The SM-sharing tax applies only while DALI preprocessing actually runs
  // on this device; a raw-tensor default ingress leaves the pipelines idle.
  const bool contended = config_.preproc == PreprocDevice::kGpu &&
                         config_.mode == PipelineMode::kEndToEnd &&
                         config_.ingress == IngressFormat::kCompressedImage;
  const bool cpu_staged_path =
      config_.preproc == PreprocDevice::kCpu && config_.mode == PipelineMode::kEndToEnd;

  while (true) {
    std::vector<RequestPtr> batch;
    {
      sim::Event ready{sim};
      sim.spawn(st.inf_batcher.collect_into(batch, ready));
      co_await ready.wait();
    }
    if (batch.empty()) break;  // input closed
    // GPU failure window: hold the dispatched batch until the GPU recovers
    // (resilience policy on — the wait lands in the queue stage because
    // dispatch accounting happens below) or fail it (no policy).
    bool batch_failed = false;
    bool fault_held = false;
    while (gpu.failed_now()) {
      if (!resilient_hold()) {
        for (auto& r : batch) fail_request(g, std::move(r), FailReason::kGpuFault);
        batch_failed = true;
        break;
      }
      fault_held = true;
      const Time until =
          gpu.faults()->active_until(sim::FaultKind::kGpuFailure, gpu.index(), sim.now());
      co_await sim.wait(std::max<Time>(until - sim.now(), 1));
    }
    if (batch_failed) continue;
    // Admission control: shed requests that already blew the deadline — or
    // were cancelled by a hedging balancer — before spending GPU time on
    // them. Both paths drop-account, so the auditor conserves them.
    bool any_cancelled = false;
    for (const auto& r : batch) {
      if (r->cancel_requested) {
        any_cancelled = true;
        break;
      }
    }
    if (config_.shed_deadline > 0 || any_cancelled) {
      std::vector<RequestPtr> kept;
      kept.reserve(batch.size());
      for (auto& r : batch) {
        if (r->cancel_requested) {
          const std::string_view blame = r->cancel_reason;
          drop_request(g, std::move(r), blame);
        } else if (config_.shed_deadline > 0 && sim.now() - r->arrival > config_.shed_deadline) {
          drop_request(g, std::move(r));
        } else {
          kept.push_back(std::move(r));
        }
      }
      batch = std::move(kept);
      if (batch.empty()) continue;
    }
    const auto b = static_cast<int>(batch.size());
    const Time dispatch = sim.now();
    // Blame names the batch this request waited to join: which formation
    // window held it, how full the batch got, and whether a GPU fault window
    // extended the hold.
    std::string dispatch_blame = "batch-formation batch=" +
                                 std::to_string(st.inf_batcher.batches_formed()) +
                                 " size=" + std::to_string(b);
    if (fault_held) dispatch_blame += ";gpu-fault-hold";
    for (const auto& r : batch) {
      r->charge(Stage::kQueue, dispatch - r->enqueue_time, dispatch_blame);
    }
    stats_.record_batch_size(b);
    tele_.batch_size.observe(static_cast<double>(b));

    if (cpu_staged_path) {
      // Ensemble hop: per-batch gap + per-image serialized staging. The
      // batch's PCIe copy itself is double-buffered behind the previous
      // batch's compute, so only the synchronization cost blocks the loop.
      // The GPU sits clocked-up but stalled for the duration (Fig. 8).
      const Time s0 = sim.now();
      auto stall = co_await gpu.stall().acquire();
      const Time stall_wait = sim.now() - s0;  // instance groups contend here
      co_await sim.wait(seconds(scal.cpu_path_batch_gap_s));
      // Charge each wait when it ends, not after the following work: the
      // charge timestamp is what anchors the trace span, so a late charge
      // would overlap the transfer span and leave the real stall uncovered.
      for (const auto& r : batch) {
        r->charge(Stage::kQueue, stall_wait + seconds(scal.cpu_path_batch_gap_s),
                  "cpu-staging-stall");
      }
      const double staging = static_cast<double>(b) * cpu.staging_seconds_per_image();
      co_await sim.wait(seconds(staging));
      stall.release();
      for (const auto& r : batch) r->charge(Stage::kTransfer, seconds(staging));
    } else {
      // On-device handoff; claim staged buffers and pay reloads for any that
      // were evicted under memory pressure (paper Sec. 4.3 hypothesis).
      const Time s0 = sim.now();
      {
        auto stall = co_await gpu.stall().acquire();
        co_await sim.wait(seconds(scal.gpu_path_batch_gap_s));
      }
      const Time stall_wait = sim.now() - s0 - seconds(scal.gpu_path_batch_gap_s);
      std::int64_t reload_bytes = 0;
      std::vector<Request*> evicted;
      for (const auto& r : batch) {
        if (r->staged == 0) continue;
        const std::int64_t rb = gpu.stager().claim(r->staged);
        r->staged = 0;
        if (rb > 0) {
          reload_bytes += rb;
          evicted.push_back(r.get());
        }
      }
      for (const auto& r : batch) {
        r->charge(Stage::kQueue, stall_wait + seconds(scal.gpu_path_batch_gap_s),
                  "dispatch-gap");
      }
      if (reload_bytes > 0) {
        const Time t0 = sim.now();
        {
          auto host = co_await platform_.host_link().acquire();
          co_await sim.wait(seconds(platform_.host_link_seconds(reload_bytes)));
        }
        {
          auto copy = co_await gpu.copy_h2d().acquire();
          co_await sim.wait(seconds(gpu.link_seconds(reload_bytes)));
        }
        const Time dt = sim.now() - t0;
        // Evicted members pay the reload as transfer time; the rest of the
        // batch waits on them, so they are charged the same interval as
        // queueing (stage conservation: the whole batch stalls together).
        const std::string reload_blame =
            "eviction-reload bytes=" + std::to_string(reload_bytes);
        const std::string stall_blame =
            "eviction-stall bytes=" + std::to_string(reload_bytes);
        for (const auto& r : batch) {
          const bool was_evicted =
              std::find(evicted.begin(), evicted.end(), r.get()) != evicted.end();
          r->charge(was_evicted ? Stage::kTransfer : Stage::kQueue, dt,
                    was_evicted ? reload_blame : stall_blame);
        }
      }
    }

    // Execute the batch on the tensor engine.
    {
      const Time t0 = sim.now();
      auto engine = co_await gpu.compute().acquire();
      const Time waited = sim.now() - t0;
      for (const auto& r : batch) r->charge(Stage::kQueue, waited, "engine-wait");
      const double ct = gpu.inference_batch_seconds(config_.model.flops(), b, backend, contended);
      co_await sim.wait(seconds(ct));
      engine.release();
      for (const auto& r : batch) r->charge(Stage::kInference, seconds(ct));
    }

    // Return results to the host.
    {
      const std::int64_t bytes = b * config_.model.output_bytes;
      const Time t0 = sim.now();
      auto copy = co_await gpu.copy_d2h().acquire();
      co_await sim.wait(seconds(gpu.link_seconds(bytes)));
      copy.release();
      const Time dt = sim.now() - t0;
      for (const auto& r : batch) r->charge(Stage::kTransfer, dt);
    }

    for (auto& r : batch) sim.spawn(finish_request(std::move(r)));
  }
}

void InferenceServer::fail_request(std::size_t g, RequestPtr req, FailReason reason) {
  if (req->staged != 0) {
    platform_.gpu(g).stager().release(req->staged);
    req->staged = 0;
  }
  // Like drop_request: charge the uncharged residue since the last queue
  // entry so failed requests conserve stage time too.
  const Time now = platform_.sim().now();
  if (req->enqueue_time >= req->arrival && now > req->enqueue_time) {
    req->charge(Stage::kQueue, now - req->enqueue_time, fail_reason_name(reason));
  }
  req->failed = true;
  req->fail_reason = reason;
  req->completed = now;
  ++finished_;
  inflight_integral_.add(now, -1.0);
  stats_.record(*req);
  tele_.failed.inc();
  if (reason == FailReason::kBreakerOpen) tele_.rejected.inc();
  record_terminal(*req);
  // Breaker rejections and post-shutdown submissions must not feed the error
  // EWMA: the breaker would hold itself open on its own rejections.
  if (reason != FailReason::kBreakerOpen && reason != FailReason::kShutdown) {
    record_outcome(false);
  }
  if (auditor_) auditor_->on_complete(*req);
  req->done.set();
}

void InferenceServer::drop_request(std::size_t g, RequestPtr req, std::string_view blame) {
  if (req->staged != 0) {
    platform_.gpu(g).stager().release(req->staged);
    req->staged = 0;
  }
  // The time since the last queue entry was never charged (drops happen
  // before dispatch accounting); charge it so dropped requests conserve
  // stage time like completed ones.
  const Time now = platform_.sim().now();
  if (req->enqueue_time >= req->arrival && now > req->enqueue_time) {
    req->charge(Stage::kQueue, now - req->enqueue_time, blame);
  }
  req->dropped = true;
  req->completed = now;
  ++finished_;
  inflight_integral_.add(now, -1.0);
  stats_.record(*req);
  tele_.dropped.inc();
  record_terminal(*req);
  if (auditor_) auditor_->on_complete(*req);
  req->done.set();
}

sim::Process InferenceServer::finish_request(RequestPtr req) {
  auto& sim = platform_.sim();
  auto& cpu = platform_.cpu();
  const Time t0 = sim.now();
  {
    auto core = co_await cpu.cores().acquire();
    req->charge(Stage::kQueue, sim.now() - t0, "host-core");
    const double post = std::max(cpu.postprocess_seconds(), config_.model.postprocess_cpu_s);
    co_await sim.wait(seconds(post));
    core.release();
    req->charge(Stage::kPostprocess, seconds(post));
  }

  // Result publication through the broker. During an outage, the policy path
  // retries a few times with exponential backoff and then fails over to the
  // fused in-process delivery; the no-policy baseline blindly re-polls until
  // the broker takes the message, so completions pile up for the whole
  // outage (the unbounded-backlog scenario the circuit breaker exists for).
  if (result_broker_ != nullptr && config_.broker_publish.publish_results) {
    const auto& pol = config_.broker_publish;
    const Time p0 = sim.now();
    if (pol.retry_enabled) {
      bool delivered = false;
      const int attempts = std::max(1, pol.max_attempts);
      for (int attempt = 1; attempt <= attempts; ++attempt) {
        if (co_await result_broker_->publish(req->id)) {
          delivered = true;
          break;
        }
        tele_.broker_retries.inc();
        if (attempt < attempts && pol.backoff_base > 0) {
          co_await sim.wait(pol.backoff_base << (attempt - 1));
        }
      }
      if (!delivered) {
        stats_.record_broker_failover();  // fused in-process delivery
        tele_.broker_failovers.inc();
      }
    } else {
      while (!co_await result_broker_->publish(req->id)) {
        co_await sim.wait(std::max<Time>(pol.poll_interval, 1));
      }
    }
    if (sim.now() > p0) req->charge(Stage::kPostprocess, sim.now() - p0, "broker-publish");
  }

  req->completed = sim.now();
  ++finished_;
  inflight_integral_.add(sim.now(), -1.0);
  stats_.record(*req);
  tele_.completed.inc();
  record_terminal(*req);
  record_outcome(true);
  if (auditor_) auditor_->on_complete(*req);
  req->done.set();
}

}  // namespace serve::serving
