// Throughput-optimized inference server (TrIS-like) on the simulated node.
//
// Architecture mirrors the system the paper profiles (Figs. 1-2):
//
//   client -> ingest (CPU) -> preprocess (CPU pool | batched GPU pipelines)
//          -> PCIe transfer -> dynamic batcher -> GPU inference instance
//          -> result transfer -> postprocess (CPU) -> client
//
// Every stage charges virtual time to the request's StageTimes so the
// paper's breakdown figures can be regenerated exactly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "broker/broker.h"
#include "hw/devices.h"
#include "metrics/registry.h"
#include "metrics/time_weighted.h"
#include "serving/audit.h"
#include "serving/batcher.h"
#include "serving/config.h"
#include "serving/ingress_cache.h"
#include "serving/request.h"
#include "serving/stats.h"
#include "sim/process.h"

namespace serve::serving {

class InferenceServer {
 public:
  /// Ingest circuit-breaker state (CircuitBreakerPolicy).
  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// Creates the endpoint and spawns its scheduler processes.
  InferenceServer(hw::Platform& platform, ServerConfig config);

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request. Completion is signalled through `req->done`.
  /// After shutdown() or while the circuit breaker is open the request is
  /// fail-accounted immediately (done set, counted) instead of processed.
  void submit(RequestPtr req);

  /// Stops accepting requests and lets in-flight work drain.
  void shutdown();

  /// Routes completed-request notifications through `broker` when
  /// ServerConfig::broker_publish.publish_results is set. The broker must
  /// outlive the server. Call before the first submit.
  void set_result_broker(broker::SimBroker<std::uint64_t>* broker) noexcept {
    result_broker_ = broker;
  }

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] hw::Platform& platform() noexcept { return platform_; }

  /// Requests accepted but not yet completed.
  [[nodiscard]] std::uint64_t in_flight() const noexcept { return submitted_ - finished_; }

  /// Lifecycle auditor (nullptr unless ServerConfig::audit is set). To get
  /// per-request trace spans, call auditor()->set_trace(...) before the
  /// first submit.
  [[nodiscard]] RequestAuditor* auditor() noexcept { return auditor_.get(); }

  /// Requests that failed a scheduler-queue hand-off and were drop-accounted
  /// instead of lost (always 0 in a healthy configuration).
  [[nodiscard]] std::uint64_t lost_handoffs() const noexcept { return lost_handoffs_; }

  /// Content-addressed preprocess cache (nullptr unless
  /// ServerConfig::ingress_cache.enabled). Exposed so harnesses can read its
  /// counters and drive budget shrinks from a fault plan.
  [[nodiscard]] IngressCache* ingress_cache() noexcept { return ingress_cache_.get(); }

  [[nodiscard]] BreakerState breaker_state() const noexcept { return breaker_state_; }

 private:
  struct GpuState {
    GpuState(sim::Simulator& sim, const Batcher<RequestPtr>::Options& preproc_opts,
             const Batcher<RequestPtr>::Options& inf_opts)
        : preproc_batcher(sim, preproc_opts), inf_batcher(sim, inf_opts) {}
    Batcher<RequestPtr> preproc_batcher;  ///< DALI-style batched GPU preprocessing
    Batcher<RequestPtr> inf_batcher;      ///< dynamic batcher in front of the engine
    // Graceful-degradation state (DegradePolicy): set while the GPU is in a
    // failure window, cleared only after `hysteresis` of continuous health.
    bool degraded = false;
    sim::Time last_unhealthy = 0;
  };

  // Scheduler processes (one set per GPU).
  sim::Process handle_request(RequestPtr req);
  sim::Process gpu_preproc_loop(std::size_t g);
  sim::Process run_gpu_preproc_batch(std::size_t g, std::vector<RequestPtr> batch,
                                     sim::ResourceToken pipeline);
  sim::Process inference_loop(std::size_t g);
  sim::Process finish_request(RequestPtr req);
  /// `blame` annotates the residual queue charge ("shed-deadline" for
  /// admission-control drops, "hedge-cancelled" for balancer cancellations).
  void drop_request(std::size_t gpu, RequestPtr req, std::string_view blame = "shed-deadline");

  /// Terminal failure: releases staged memory, charges the queue residue,
  /// records + signals completion with `failed = true`.
  void fail_request(std::size_t gpu, RequestPtr req, FailReason reason);

  // Pipeline fragments shared by the paths above (implemented in server.cpp).
  void enqueue_inference(std::size_t g, RequestPtr req);

  /// Puts `req` into `ch`; a full or closed channel drop-accounts the
  /// request instead of silently destroying it.
  void hand_off(sim::Channel<RequestPtr>& ch, std::size_t g, RequestPtr req,
                std::string_view where);

  // --- resilience machinery ---
  /// Circuit-breaker admission decision for one submission.
  bool breaker_admit();
  void open_breaker();
  /// Feeds the breaker's error EWMA and half-open probe bookkeeping.
  void record_outcome(bool success);
  /// Degradation check with hysteresis; updates per-GPU degrade state.
  bool gpu_degraded(std::size_t g);
  /// Picks the GPU for a new request, skipping degraded ones when the
  /// degrade policy is on (falls back to plain round-robin if all are down).
  std::size_t route_request();
  /// Hold-until-recovery is on when any resilience policy wants batches to
  /// survive a GPU failure window instead of failing.
  [[nodiscard]] bool resilient_hold() const noexcept {
    return config_.retry.enabled || config_.degrade.enabled;
  }
  /// Real decode of the seeded byte-mutated template payload; false when the
  /// codec rejects the corrupted stream.
  [[nodiscard]] bool corrupted_payload_decodes(std::uint64_t stream_seed) const;

  /// Wire format for one request: its own choice, or the server default.
  [[nodiscard]] IngressFormat resolve_ingress(const Request& req) const noexcept {
    if (req.ingress == RequestIngress::kServerDefault) return config_.ingress;
    return req.ingress == RequestIngress::kRawTensor ? IngressFormat::kRawTensor
                                                     : IngressFormat::kCompressedImage;
  }

  /// Registry handles for the serving layer (no-ops when the platform has no
  /// registry — every handle degrades to a null-pointer check). Unlike
  /// ServerStats, which is window-scoped (reset at measurement start), these
  /// are cumulative from t = 0: the flight recorder differences them into
  /// rates over time.
  struct Telemetry {
    metrics::Counter submitted, completed, failed, dropped, rejected, degraded;
    metrics::Counter handoff_lost, broker_retries, broker_failovers;
    metrics::Counter breaker_to_open, breaker_to_half_open, breaker_to_closed;
    std::array<metrics::Counter, metrics::kStageCount> stage_seconds{};
    metrics::HistogramHandle latency, batch_size;
    /// Completion-charged latency sum (the λ·W side of the Little's-law
    /// audit; its Δ per tick over the in-flight integral's Δ converge in
    /// steady state and split apart exactly during backlog transients).
    metrics::Counter latency_sum;
  };
  void init_telemetry();
  /// Terminal accounting shared by finish/fail/drop: latency histogram and
  /// cumulative per-stage seconds.
  void record_terminal(const Request& req);
  void note_breaker(BreakerState to);

  hw::Platform& platform_;
  ServerConfig config_;
  ServerStats stats_;
  Telemetry tele_{};
  /// Time-weighted occupancy integrals (the L side of Little's law and the
  /// alias-free queue-depth series). Updated unconditionally — one add per
  /// request edge — and exported via counter_fn when a registry is attached.
  metrics::TimeIntegrator inflight_integral_;
  std::vector<metrics::TimeIntegrator> preproc_queue_integral_;  ///< per GPU
  std::vector<metrics::TimeIntegrator> inf_queue_integral_;      ///< per GPU
  std::unique_ptr<IngressCache> ingress_cache_;
  std::unique_ptr<RequestAuditor> auditor_;
  std::vector<std::unique_ptr<GpuState>> gpus_;
  broker::SimBroker<std::uint64_t>* result_broker_ = nullptr;
  std::vector<std::uint8_t> template_jpeg_;  ///< payload-validation template
  std::uint64_t submitted_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t lost_handoffs_ = 0;
  std::size_t next_gpu_ = 0;
  bool accepting_ = true;
  // Circuit-breaker state.
  BreakerState breaker_state_ = BreakerState::kClosed;
  sim::Time breaker_open_until_ = 0;
  int half_open_budget_ = 0;     ///< probe admissions left in half-open
  int half_open_successes_ = 0;  ///< successful probes observed
  double error_ewma_ = 0.0;      ///< recent failure rate (EWMA, alpha 0.05)
  std::uint64_t outcome_samples_ = 0;
};

}  // namespace serve::serving
