// Throughput-optimized inference server (TrIS-like) on the simulated node.
//
// Architecture mirrors the system the paper profiles (Figs. 1-2):
//
//   client -> ingest (CPU) -> preprocess (CPU pool | batched GPU pipelines)
//          -> PCIe transfer -> dynamic batcher -> GPU inference instance
//          -> result transfer -> postprocess (CPU) -> client
//
// Every stage charges virtual time to the request's StageTimes so the
// paper's breakdown figures can be regenerated exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "hw/devices.h"
#include "serving/audit.h"
#include "serving/batcher.h"
#include "serving/config.h"
#include "serving/request.h"
#include "serving/stats.h"
#include "sim/process.h"

namespace serve::serving {

class InferenceServer {
 public:
  /// Creates the endpoint and spawns its scheduler processes.
  InferenceServer(hw::Platform& platform, ServerConfig config);

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request. Completion is signalled through `req->done`.
  void submit(RequestPtr req);

  /// Stops accepting requests and lets in-flight work drain.
  void shutdown();

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] hw::Platform& platform() noexcept { return platform_; }

  /// Requests accepted but not yet completed.
  [[nodiscard]] std::uint64_t in_flight() const noexcept { return submitted_ - finished_; }

  /// Lifecycle auditor (nullptr unless ServerConfig::audit is set). To get
  /// per-request trace spans, call auditor()->set_trace(...) before the
  /// first submit.
  [[nodiscard]] RequestAuditor* auditor() noexcept { return auditor_.get(); }

  /// Requests that failed a scheduler-queue hand-off and were drop-accounted
  /// instead of lost (always 0 in a healthy configuration).
  [[nodiscard]] std::uint64_t lost_handoffs() const noexcept { return lost_handoffs_; }

 private:
  struct GpuState {
    GpuState(sim::Simulator& sim, const Batcher<RequestPtr>::Options& preproc_opts,
             const Batcher<RequestPtr>::Options& inf_opts)
        : preproc_batcher(sim, preproc_opts), inf_batcher(sim, inf_opts) {}
    Batcher<RequestPtr> preproc_batcher;  ///< DALI-style batched GPU preprocessing
    Batcher<RequestPtr> inf_batcher;      ///< dynamic batcher in front of the engine
  };

  // Scheduler processes (one set per GPU).
  sim::Process handle_request(RequestPtr req);
  sim::Process gpu_preproc_loop(std::size_t g);
  sim::Process run_gpu_preproc_batch(std::size_t g, std::vector<RequestPtr> batch,
                                     sim::ResourceToken pipeline);
  sim::Process inference_loop(std::size_t g);
  sim::Process finish_request(RequestPtr req);
  void drop_request(std::size_t gpu, RequestPtr req);

  // Pipeline fragments shared by the paths above (implemented in server.cpp).
  void enqueue_inference(std::size_t g, RequestPtr req);

  /// Puts `req` into `ch`; a full or closed channel drop-accounts the
  /// request instead of silently destroying it.
  void hand_off(sim::Channel<RequestPtr>& ch, std::size_t g, RequestPtr req,
                std::string_view where);

  hw::Platform& platform_;
  ServerConfig config_;
  ServerStats stats_;
  std::unique_ptr<RequestAuditor> auditor_;
  std::vector<std::unique_ptr<GpuState>> gpus_;
  std::uint64_t submitted_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t lost_handoffs_ = 0;
  std::size_t next_gpu_ = 0;
  bool accepting_ = true;
};

}  // namespace serve::serving
