// Dynamic batch formation (Triton-style scheduler core).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/channel.h"
#include "sim/sync.h"
#include "sim/time.h"

namespace serve::serving {

/// Collects items from a channel into batches on demand.
///
/// The consumer (an execution instance) calls `collect` whenever it is free:
///  - dynamic mode, no delay: block for the first item, then drain whatever
///    else is queued up to `max_batch` (Triton's default dynamic batcher);
///  - dynamic mode with `max_queue_delay`: after the first item, keep
///    waiting until the batch fills or the delay expires;
///  - fixed mode: wait for exactly `fixed_batch` items (or close).
///
/// Returns an empty vector once the channel is closed and drained.
template <typename T>
class Batcher {
 public:
  struct Options {
    bool dynamic = true;
    int max_batch = 64;
    sim::Time max_queue_delay = 0;
    int fixed_batch = 64;
  };

  Batcher(sim::Simulator& sim, Options opts)
      : sim_(sim), opts_(opts), in_(sim, std::numeric_limits<std::size_t>::max(), "batcher.in") {}

  [[nodiscard]] sim::Channel<T>& input() noexcept { return in_; }
  [[nodiscard]] std::size_t queued() const noexcept { return in_.size(); }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  /// Non-empty batches shipped so far — a stable per-batcher sequence number
  /// (used to name batches in trace blame annotations).
  [[nodiscard]] std::uint64_t batches_formed() const noexcept { return batches_formed_; }

  /// Coroutine: assembles the next batch (see class comment).
  sim::Process collect_into(std::vector<T>& out, sim::Event& ready) {
    out.clear();
    const int target = opts_.dynamic ? opts_.max_batch : opts_.fixed_batch;
    auto first = co_await in_.get();
    if (first) {
      out.push_back(std::move(*first));
      if (opts_.dynamic) {
        // Drain what is already queued.
        while (static_cast<int>(out.size()) < target) {
          auto item = in_.try_get();
          if (!item) break;
          out.push_back(std::move(*item));
        }
        // Optionally linger to fill the batch.
        if (opts_.max_queue_delay > 0) {
          const sim::Time deadline = sim_.now() + opts_.max_queue_delay;
          while (static_cast<int>(out.size()) < target) {
            auto item = co_await in_.get_until(deadline);
            if (!item) break;
            out.push_back(std::move(*item));
          }
        }
      } else {
        while (static_cast<int>(out.size()) < target) {
          auto item = co_await in_.get();
          if (!item) break;  // closed: ship the partial batch
          out.push_back(std::move(*item));
        }
      }
    }
    if (!out.empty()) ++batches_formed_;
    ready.set();
  }

 private:
  sim::Simulator& sim_;
  Options opts_;
  sim::Channel<T> in_;
  std::uint64_t batches_formed_ = 0;
};

}  // namespace serve::serving
