// Content-addressed preprocess cache for the ingress tier.
//
// Kang et al. ("Jointly Optimizing Preprocessing and Inference for DNN-based
// Visual Analytics") observe that over a skewed corpus the whole preprocess
// stage is skippable on a cache hit. This cache models the two useful
// artifact levels of the serving preprocess pipeline, both held in host
// memory and keyed on a stable content hash of the request payload
// (workload::CorpusEntry::content_hash — never the image geometry, which two
// different payloads can share):
//
//   - tensor level: the normalized fp32 network input for a given target
//     side. A hit skips decode + resize + normalize entirely.
//   - image level: the decoded RGB image. A hit skips JPEG decode only
//     (resize + normalize still run).
//
// Each level is an independently byte-budgeted LRU with deterministic
// eviction order (least recently touched first), so same-seed simulations
// produce byte-identical hit/miss/eviction counters. Budgets can shrink
// mid-run (sim::FaultPlan kGpuMemoryShrink staging machinery reuses this),
// which evicts immediately until residency fits.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "hw/image_spec.h"
#include "serving/ingress.h"

namespace serve::serving {

class IngressCache {
 public:
  struct Options {
    std::int64_t image_budget_bytes = 64LL << 20;   ///< decoded-image level
    std::int64_t tensor_budget_bytes = 64LL << 20;  ///< preprocessed-tensor level
    /// Host-side lookup + bookkeeping cost charged per probed request (the
    /// hash lookup is cheap but not free; charging it keeps cache-hit
    /// requests' preprocess stage present — skipped, not dropped — so the
    /// auditor's stage-conservation invariant and the critical-path analyzer
    /// both still see the stage).
    double lookup_s = 20e-6;
  };

  explicit IngressCache(Options opts);

  /// Probes tensor level first (content + target side), then image level.
  /// Touches the hit entry's LRU position and counts the outcome.
  [[nodiscard]] CacheLevel lookup(std::uint64_t content_hash, int target_side);

  /// Records the artifacts a completed preprocess produced: the decoded
  /// image (`decoded_bytes` at the payload's native geometry) and the fp32
  /// tensor for `target_side`. Re-inserting refreshes LRU position; an
  /// artifact larger than its level's whole budget is not admitted.
  void insert(std::uint64_t content_hash, std::int64_t decoded_bytes, int target_side);

  /// Scales both byte budgets to `fraction` of their configured size
  /// (fraction 1.0 restores). Shrinking evicts least-recently-used entries
  /// until residency fits — the eviction storm the fault plan's
  /// staging-shrink windows drive.
  void set_budget_scale(double fraction);

  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  // --- deterministic counters (cumulative from construction) ---------------
  [[nodiscard]] std::uint64_t tensor_hits() const noexcept { return tensor_hits_; }
  [[nodiscard]] std::uint64_t image_hits() const noexcept { return image_hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return tensor_hits_ + image_hits_ + misses_;
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return image_level_.evictions + tensor_level_.evictions;
  }
  [[nodiscard]] std::uint64_t image_evictions() const noexcept { return image_level_.evictions; }
  [[nodiscard]] std::uint64_t tensor_evictions() const noexcept { return tensor_level_.evictions; }
  [[nodiscard]] std::int64_t image_resident_bytes() const noexcept {
    return image_level_.resident_bytes;
  }
  [[nodiscard]] std::int64_t tensor_resident_bytes() const noexcept {
    return tensor_level_.resident_bytes;
  }
  [[nodiscard]] std::size_t image_entries() const noexcept { return image_level_.entries.size(); }
  [[nodiscard]] std::size_t tensor_entries() const noexcept {
    return tensor_level_.entries.size();
  }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t n = lookups();
    return n ? static_cast<double>(tensor_hits_ + image_hits_) / static_cast<double>(n) : 0.0;
  }

 private:
  /// One byte-budgeted LRU level. Keys are opaque 64-bit ids; the map gives
  /// O(1) probes while the list fixes the (deterministic) eviction order.
  struct Level {
    struct Entry {
      std::int64_t bytes = 0;
      std::list<std::uint64_t>::iterator lru_pos;
    };
    std::int64_t budget = 0;
    std::int64_t resident_bytes = 0;
    std::uint64_t evictions = 0;
    std::list<std::uint64_t> lru;  ///< front = least recently used
    std::unordered_map<std::uint64_t, Entry> entries;

    [[nodiscard]] bool touch(std::uint64_t key);
    void put(std::uint64_t key, std::int64_t bytes);
    void evict_to_fit(std::int64_t incoming_bytes);
    void set_budget(std::int64_t b);
  };

  /// Mixes the target side into the content hash for the tensor level, so
  /// the same payload preprocessed for two models caches independently.
  [[nodiscard]] static std::uint64_t tensor_key(std::uint64_t content_hash,
                                                int target_side) noexcept {
    constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
    constexpr std::uint64_t kMix = 0xbf58476d1ce4e5b9ULL;
    std::uint64_t z = content_hash ^ (kGamma * (static_cast<std::uint64_t>(target_side) + 1));
    z = (z ^ (z >> 30)) * kMix;
    return z ^ (z >> 31);
  }

  Options opts_;
  Level image_level_;
  Level tensor_level_;
  std::uint64_t tensor_hits_ = 0;
  std::uint64_t image_hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace serve::serving
