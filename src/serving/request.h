// Inference request lifecycle object.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "hw/gpu_memory.h"
#include "hw/image_spec.h"
#include "metrics/breakdown.h"
#include "serving/ingress.h"
#include "sim/sync.h"
#include "sim/time.h"
#include "trace/span_context.h"

namespace serve::serving {

struct Request;

/// Why a request finished with `failed = true`.
enum class FailReason : std::uint8_t {
  kNone,           ///< not failed
  kGpuFault,       ///< batch was on a GPU that entered a failure window
  kCorruptPayload, ///< payload failed codec validation at ingest
  kBreakerOpen,    ///< fast-failed by the ingest circuit breaker
  kBrokerPublish,  ///< result publication gave up (no failover configured)
  kShutdown,       ///< submitted after the server stopped accepting
};

[[nodiscard]] constexpr std::string_view fail_reason_name(FailReason r) noexcept {
  switch (r) {
    case FailReason::kNone: return "none";
    case FailReason::kGpuFault: return "gpu-fault";
    case FailReason::kCorruptPayload: return "corrupt-payload";
    case FailReason::kBreakerOpen: return "breaker-open";
    case FailReason::kBrokerPublish: return "broker-publish";
    case FailReason::kShutdown: return "shutdown";
  }
  return "?";
}

/// Hook invoked on every stage charge (request auditing / per-request
/// tracing). `end` is the virtual time the charge was recorded at and `dt`
/// the charged duration, so the charged interval is [end - dt, end].
/// `blame` names what a *wait* charge was waiting on (batch formation, an
/// eviction reload, a fault hold, the open breaker); empty for work charges.
class ChargeObserver {
 public:
  virtual void on_charge(const Request& req, metrics::Stage s, sim::Time end, sim::Time dt,
                         std::string_view blame) noexcept = 0;

 protected:
  ~ChargeObserver() = default;
};

/// One in-flight inference request. Created by a client, threaded through
/// the serving pipeline, completed exactly once. Stage durations accumulate
/// into `stages` as the request moves through the system.
struct Request {
  Request(sim::Simulator& sim_, std::uint64_t id_, hw::ImageSpec image_)
      : sim(&sim_), id(id_), image(image_), arrival(sim_.now()), done(sim_) {}

  sim::Simulator* sim;  ///< owning simulator (timestamps for charge hooks)
  std::uint64_t id;
  hw::ImageSpec image;
  /// Stable hash of the payload bytes (workload::CorpusEntry::content_hash).
  /// Zero means "unique payload": the ingress cache never matches it.
  std::uint64_t content_hash = 0;
  /// Wire format for this request; kServerDefault defers to ServerConfig.
  RequestIngress ingress = RequestIngress::kServerDefault;
  /// Which ingress-cache level satisfied this request (kNone = miss/bypass).
  CacheLevel cache_hit = CacheLevel::kNone;
  sim::Time arrival;
  sim::Time completed = -1;
  metrics::StageTimes stages{};
  hw::GpuMemoryStager::Handle staged = 0;  ///< staging handle, 0 = none
  std::size_t gpu_index = 0;               ///< accelerator this request runs on
  sim::Time enqueue_time = 0;              ///< last scheduler-queue entry time
  bool dropped = false;                    ///< shed by admission control
  /// Cooperative cancellation (set by the fleet balancer when a hedged
  /// sibling already won, or when the request's node crashed). Schedulers
  /// drop the request at the next dispatch point instead of spending GPU
  /// time on it; if it is already past dispatch it completes normally as
  /// wasted work. `cancel_reason` must point at a static string — it blames
  /// the drop's residual queue charge.
  bool cancel_requested = false;
  std::string_view cancel_reason = "cancelled";
  bool failed = false;                     ///< completed exceptionally (fault path)
  FailReason fail_reason = FailReason::kNone;
  int attempt = 1;                         ///< 1-based client retry attempt
  ChargeObserver* observer = nullptr;      ///< optional audit/trace hook
  /// Causal trace identity. Zero (no trace) unless the auditor originates a
  /// trace at submit, or the client pre-fills it to chain a retry attempt
  /// into the previous attempt's trace.
  trace::SpanContext trace_ctx{};
  sim::Event done;                         ///< set exactly once at completion

  /// Adds `dt` (virtual ns) to a lifecycle stage. `blame` annotates wait
  /// charges with their cause (see ChargeObserver).
  void charge(metrics::Stage s, sim::Time dt, std::string_view blame = {}) noexcept {
    stages[s] += sim::to_seconds(dt);
    if (observer != nullptr) observer->on_charge(*this, s, sim->now(), dt, blame);
  }

  [[nodiscard]] sim::Time latency() const noexcept { return completed - arrival; }
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace serve::serving
