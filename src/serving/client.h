// Load generation clients.
//
// The paper's load balancer caps the number of concurrent requests per node
// (Section 2.1), which a *closed-loop* client pool models exactly: each of N
// clients keeps one request outstanding, so server concurrency equals N.
// An open-loop Poisson generator is also provided for latency-under-rate
// studies.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/image_spec.h"
#include "serving/server.h"
#include "sim/rng.h"

namespace serve::serving {

/// Produces the image attached to each generated request.
using ImageSource = std::function<hw::ImageSpec(sim::Rng&)>;

/// Fixed-size image source (the paper's S/M/L experiments).
[[nodiscard]] inline ImageSource fixed_image(hw::ImageSpec spec) {
  return [spec](sim::Rng&) { return spec; };
}

/// Closed-loop client pool: `concurrency` clients, each submitting the next
/// request as soon as the previous one completes.
class ClosedLoopClients {
 public:
  struct Options {
    int concurrency = 1;
    ImageSource image_source;
    std::uint64_t seed = 1;
    sim::Time think_time = 0;  ///< optional per-client gap between requests
  };

  ClosedLoopClients(InferenceServer& server, Options opts)
      : server_(server), opts_(std::move(opts)), rng_(opts_.seed) {
    if (opts_.concurrency < 1) throw std::invalid_argument("ClosedLoopClients: concurrency >= 1");
    if (!opts_.image_source) throw std::invalid_argument("ClosedLoopClients: need image source");
  }

  /// Spawns the client processes; they run until stop().
  void start() {
    auto& sim = server_.platform().sim();
    for (int i = 0; i < opts_.concurrency; ++i) sim.spawn(client_loop());
  }

  /// Clients exit after their current request completes.
  void stop() noexcept { stopping_ = true; }

  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  sim::Process client_loop() {
    auto& sim = server_.platform().sim();
    while (!stopping_) {
      auto req = std::make_shared<Request>(sim, next_id_++, opts_.image_source(rng_));
      ++issued_;
      server_.submit(req);
      co_await req->done.wait();
      if (opts_.think_time > 0) co_await sim.wait(opts_.think_time);
    }
  }

  InferenceServer& server_;
  Options opts_;
  sim::Rng rng_;
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  bool stopping_ = false;
};

/// Open-loop arrival generator: requests arrive on a configurable arrival
/// process regardless of completion (models external traffic; pair with
/// workload::poisson_arrivals / mmpp2_arrivals).
class OpenLoopClients {
 public:
  /// Produces the next inter-arrival gap (same signature as
  /// workload::ArrivalProcess).
  using Interarrival = std::function<sim::Time(sim::Rng&)>;

  struct Options {
    Interarrival interarrival;  ///< required
    ImageSource image_source;   ///< required
    std::uint64_t seed = 1;
  };

  OpenLoopClients(InferenceServer& server, Options opts)
      : server_(server), opts_(std::move(opts)), rng_(opts_.seed) {
    if (!opts_.interarrival) throw std::invalid_argument("OpenLoopClients: need arrival process");
    if (!opts_.image_source) throw std::invalid_argument("OpenLoopClients: need image source");
  }

  void start() { server_.platform().sim().spawn(generator()); }
  void stop() noexcept { stopping_ = true; }
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  sim::Process generator() {
    auto& sim = server_.platform().sim();
    while (!stopping_) {
      co_await sim.wait(opts_.interarrival(rng_));
      if (stopping_) break;
      auto req = std::make_shared<Request>(sim, next_id_++, opts_.image_source(rng_));
      ++issued_;
      server_.submit(req);
    }
  }

  InferenceServer& server_;
  Options opts_;
  sim::Rng rng_;
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  bool stopping_ = false;
};

}  // namespace serve::serving
