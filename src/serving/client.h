// Load generation clients.
//
// The paper's load balancer caps the number of concurrent requests per node
// (Section 2.1), which a *closed-loop* client pool models exactly: each of N
// clients keeps one request outstanding, so server concurrency equals N.
// An open-loop Poisson generator is also provided for latency-under-rate
// studies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "hw/image_spec.h"
#include "serving/ingress.h"
#include "serving/server.h"
#include "sim/rng.h"
#include "sim/task.h"

namespace serve::serving {

/// What a client attaches to one generated request: the image geometry, an
/// optional stable content identity (zero = unique payload, never matched by
/// the ingress cache), and an optional per-request wire-format override.
/// Implicitly constructible from a bare hw::ImageSpec so plain image sources
/// keep working unchanged.
struct RequestDesc {
  hw::ImageSpec image{};
  std::uint64_t content_hash = 0;
  RequestIngress ingress = RequestIngress::kServerDefault;

  RequestDesc() = default;
  RequestDesc(hw::ImageSpec img) : image(img) {}  // NOLINT(google-explicit-constructor)
  RequestDesc(hw::ImageSpec img, std::uint64_t hash,
              RequestIngress ing = RequestIngress::kServerDefault)
      : image(img), content_hash(hash), ingress(ing) {}
};

/// Produces the payload description attached to each generated request.
using ImageSource = std::function<RequestDesc(sim::Rng&)>;

/// Fixed-size image source (the paper's S/M/L experiments).
[[nodiscard]] inline ImageSource fixed_image(hw::ImageSpec spec) {
  return [spec](sim::Rng&) { return RequestDesc{spec}; };
}

/// Client-side resilience engine shared by both client pools. Each run()
/// drives one *logical* request to a terminal verdict under the server's
/// RetryPolicy: per-attempt timeout, capped attempts, exponential backoff
/// with deterministic jitter, and a gRPC-style retry token budget shared by
/// every client in the pool (a success refills a fraction of a token, each
/// retry spends one — retries self-limit when most attempts fail).
class RetryingSubmitter {
 public:
  RetryingSubmitter(InferenceServer& server, sim::Rng& rng)
      : server_(server), rng_(rng), policy_(server.config().retry), budget_(policy_.retry_budget) {
    if (auto* reg = server_.platform().registry()) {
      retries_m_ = reg->counter("client_retries_total");
      timeouts_m_ = reg->counter("client_timeouts_total");
      reg->gauge_fn("client_retry_budget", {}, [this] { return budget_; });
    }
  }

  /// Submits (and re-submits) until an attempt succeeds or the policy gives
  /// up. Every attempt is a fresh Request with its own id; a timed-out
  /// attempt is abandoned, not cancelled — the server still completes it.
  sim::Task<bool> run(RequestDesc desc, std::uint64_t& next_id) {
    auto& sim = server_.platform().sim();
    const int attempts = policy_.enabled ? std::max(1, policy_.max_attempts) : 1;
    trace::SpanContext prev_ctx{};
    for (int attempt = 1;; ++attempt) {
      auto req = std::make_shared<Request>(sim, next_id++, desc.image);
      req->content_hash = desc.content_hash;
      req->ingress = desc.ingress;
      req->attempt = attempt;
      // Retry chaining: hand the previous attempt's context to the server so
      // the auditor parents this attempt under the same causal trace instead
      // of starting a fresh one — the whole logical request is one tree.
      if (attempt > 1 && prev_ctx.valid()) req->trace_ctx = prev_ctx;
      server_.submit(req);
      prev_ctx = req->trace_ctx;  // assigned by the auditor during submit
      bool signalled = true;
      if (policy_.enabled && policy_.timeout > 0) {
        signalled = co_await req->done.wait_until(sim.now() + policy_.timeout);
      } else {
        co_await req->done.wait();
      }
      if (!signalled) {
        ++timeouts_;
        timeouts_m_.inc();
      }
      if (signalled && !req->failed && !req->dropped) {
        budget_ = std::min(policy_.retry_budget, budget_ + policy_.budget_refill_per_success);
        co_return true;
      }
      if (attempt >= attempts) co_return false;
      if (budget_ < 1.0) co_return false;  // retry token budget exhausted
      budget_ -= 1.0;
      ++retries_;
      retries_m_.inc();
      sim::Time step = policy_.backoff_base;
      for (int i = 1; i < attempt && step < policy_.backoff_cap; ++i) step *= 2;
      step = std::min(step, policy_.backoff_cap);
      // Deterministic jitter in [step/2, step): spreads retry storms without
      // breaking run-to-run reproducibility.
      const auto jitter =
          static_cast<sim::Time>(rng_.uniform() * static_cast<double>(step - step / 2));
      if (step > 0) co_await sim.wait(step / 2 + jitter);
    }
  }

  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] double budget() const noexcept { return budget_; }

 private:
  InferenceServer& server_;
  sim::Rng& rng_;
  RetryPolicy policy_;
  double budget_;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  metrics::Counter retries_m_;   ///< no-op without a platform registry
  metrics::Counter timeouts_m_;
};

/// Closed-loop client pool: `concurrency` clients, each submitting the next
/// request as soon as the previous one completes.
class ClosedLoopClients {
 public:
  struct Options {
    int concurrency = 1;
    ImageSource image_source;
    std::uint64_t seed = 1;
    sim::Time think_time = 0;  ///< optional per-client gap between requests
  };

  ClosedLoopClients(InferenceServer& server, Options opts)
      : server_(server), opts_(std::move(opts)), rng_(opts_.seed) {
    if (opts_.concurrency < 1) throw std::invalid_argument("ClosedLoopClients: concurrency >= 1");
    if (!opts_.image_source) throw std::invalid_argument("ClosedLoopClients: need image source");
  }

  /// Spawns the client processes; they run until stop().
  void start() {
    auto& sim = server_.platform().sim();
    for (int i = 0; i < opts_.concurrency; ++i) sim.spawn(client_loop());
  }

  /// Clients exit after their current request completes.
  void stop() noexcept { stopping_ = true; }

  /// Logical requests issued (retries of the same request not re-counted).
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retrier_.retries(); }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return retrier_.timeouts(); }

 private:
  sim::Process client_loop() {
    auto& sim = server_.platform().sim();
    while (!stopping_) {
      const RequestDesc desc = opts_.image_source(rng_);
      ++issued_;
      co_await retrier_.run(desc, next_id_);
      if (opts_.think_time > 0) co_await sim.wait(opts_.think_time);
    }
  }

  InferenceServer& server_;
  Options opts_;
  sim::Rng rng_;
  RetryingSubmitter retrier_{server_, rng_};
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  bool stopping_ = false;
};

/// Open-loop arrival generator: requests arrive on a configurable arrival
/// process regardless of completion (models external traffic; pair with
/// workload::poisson_arrivals / mmpp2_arrivals).
class OpenLoopClients {
 public:
  /// Produces the next inter-arrival gap (same signature as
  /// workload::ArrivalProcess).
  using Interarrival = std::function<sim::Time(sim::Rng&)>;

  struct Options {
    Interarrival interarrival;  ///< required
    ImageSource image_source;   ///< required
    std::uint64_t seed = 1;
  };

  OpenLoopClients(InferenceServer& server, Options opts)
      : server_(server), opts_(std::move(opts)), rng_(opts_.seed) {
    if (!opts_.interarrival) throw std::invalid_argument("OpenLoopClients: need arrival process");
    if (!opts_.image_source) throw std::invalid_argument("OpenLoopClients: need image source");
  }

  void start() { server_.platform().sim().spawn(generator()); }
  void stop() noexcept { stopping_ = true; }
  /// Logical requests issued (retries of the same request not re-counted).
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retrier_.retries(); }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return retrier_.timeouts(); }

 private:
  sim::Process generator() {
    auto& sim = server_.platform().sim();
    while (!stopping_) {
      co_await sim.wait(opts_.interarrival(rng_));
      if (stopping_) break;
      ++issued_;
      sim.spawn(submit_one(opts_.image_source(rng_)));
    }
  }

  /// One detached per-arrival process: open-loop arrivals never block on
  /// completion, but each logical request still runs the retry policy.
  sim::Process submit_one(RequestDesc desc) { co_await retrier_.run(desc, next_id_); }

  InferenceServer& server_;
  Options opts_;
  sim::Rng rng_;
  RetryingSubmitter retrier_{server_, rng_};
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  bool stopping_ = false;
};

}  // namespace serve::serving
