#include "serving/audit.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "metrics/export.h"

namespace serve::serving {

namespace {

constexpr std::size_t kMaxChargesTracked = 256;  ///< per-request gap-analysis cap

std::string format_time(sim::Time t) {
  std::ostringstream os;
  os << sim::to_seconds(t) << "s";
  return os.str();
}

}  // namespace

void RequestAuditor::on_submit(Request& req) {
  ++submitted_;
  if (done_ids_.count(req.id) != 0 || inflight_.count(req.id) != 0) {
    add_violation(req.id, "duplicate-submit",
                  "request id submitted more than once (arrival " + format_time(req.arrival) + ")");
  }
  InFlight& fl = inflight_[req.id];
  fl.arrival = req.arrival;
  // Sampling fate: adopt the incoming context when the client pre-filled one
  // (retry chaining / cascade hops keep the original trace's decision so a
  // trace is never truncated mid-tree); otherwise the deterministic sampler
  // decides from the request id alone, independent of scheduling.
  bool sampled = false;
  if (causal_ != nullptr && req.trace_ctx.valid()) {
    sampled = req.trace_ctx.sampled;
    fl.ctx = causal_->child_of(req.trace_ctx);
  } else {
    sampled = (trace_ != nullptr || causal_ != nullptr) && sampler_.sample(req.id);
    if (causal_ != nullptr) fl.ctx = causal_->begin_trace(sampled);
  }
  if (causal_ != nullptr) req.trace_ctx = fl.ctx;  // downstream spans attach here
  fl.traced = sampled && trace_ != nullptr;
  req.observer = this;
}

void RequestAuditor::on_charge(const Request& req, metrics::Stage s, sim::Time end, sim::Time dt,
                               std::string_view blame) noexcept {
  auto it = inflight_.find(req.id);
  if (it == inflight_.end()) {
    add_violation(req.id, "charge-after-completion",
                  std::string(metrics::stage_name(s)) + " charged at " + format_time(end) +
                      " on a request no longer in flight");
    return;
  }
  if (dt < 0) {
    add_violation(req.id, "negative-charge",
                  std::string(metrics::stage_name(s)) + " charged a negative duration at " +
                      format_time(end));
    return;
  }
  InFlight& fl = it->second;
  const sim::Time begin = std::max<sim::Time>(end - dt, 0);
  if (fl.charges.size() < kMaxChargesTracked) fl.charges.push_back(Charge{s, begin, end});
  if (fl.traced && dt > 0) {
    sim::SpanArgs args;
    if (!blame.empty()) args.emplace_back("blame", std::string(blame));
    if (causal_ != nullptr) {
      causal_->child_span(fl.ctx, "req." + std::to_string(req.id),
                          std::string(metrics::stage_name(s)), begin, end, std::move(args));
    } else {
      trace_->span("req." + std::to_string(req.id), std::string(metrics::stage_name(s)), begin,
                   end, std::move(args));
    }
  }
}

void RequestAuditor::on_complete(const Request& req) {
  auto it = inflight_.find(req.id);
  if (it == inflight_.end()) {
    add_violation(req.id,
                  done_ids_.count(req.id) != 0 ? "double-completion" : "untracked-completion",
                  done_ids_.count(req.id) != 0
                      ? "request completed twice (done must be set exactly once)"
                      : "completion for a request never submitted");
    return;
  }
  if (req.dropped) {
    ++dropped_;
  } else if (req.failed) {
    ++failed_;
  } else {
    ++completed_;
  }
  breakdown_.add(req.stages);
  last_terminal_ = std::max(last_terminal_, std::max(req.completed, req.arrival));
  InFlight& fl = it->second;
  if (fl.traced && causal_ != nullptr && req.completed >= req.arrival) {
    sim::SpanArgs args;
    if (!opts_.run_label.empty()) args.emplace_back("run", opts_.run_label);
    args.emplace_back("request_id", std::to_string(req.id));
    args.emplace_back("result", req.dropped ? std::string("dropped")
                                : req.failed
                                    ? "failed-" + std::string(fail_reason_name(req.fail_reason))
                                    : std::string("ok"));
    if (req.attempt > 1) args.emplace_back("attempt", std::to_string(req.attempt));
    causal_->record(fl.ctx, "req." + std::to_string(req.id), "request", req.arrival,
                    req.completed, std::move(args));
  }
  check_request(req, fl);
  done_ids_.insert(req.id);
  inflight_.erase(it);
}

void RequestAuditor::on_lost_handoff(const Request& req, std::string_view where) {
  add_violation(req.id, "lost-handoff",
                "request failed the " + std::string(where) +
                    " queue hand-off and had to be drop-accounted");
}

void RequestAuditor::on_fault_window(std::string_view name, sim::Time begin, sim::Time end) {
  if (trace_ != nullptr && end > begin) trace_->span("faults", std::string(name), begin, end);
}

void RequestAuditor::on_breaker_transition(std::string_view to, sim::Time t) {
  if (trace_ != nullptr) trace_->instant("policies", "breaker -> " + std::string(to), t);
}

void RequestAuditor::check_request(const Request& req, const InFlight& fl) {
  // (4) Monotonicity: arrival <= enqueue_time <= completed.
  if (req.completed < req.arrival) {
    add_violation(req.id, "monotonicity",
                  "completed " + format_time(req.completed) + " before arrival " +
                      format_time(req.arrival));
    return;  // latency is meaningless; skip the conservation check
  }
  if (req.enqueue_time > 0 &&
      (req.enqueue_time < req.arrival || req.enqueue_time > req.completed)) {
    add_violation(req.id, "monotonicity",
                  "enqueue_time " + format_time(req.enqueue_time) + " outside [arrival " +
                      format_time(req.arrival) + ", completed " + format_time(req.completed) + "]");
  }
  // (2) Stage-time conservation: charges must tile the request's lifetime.
  const double latency_s = sim::to_seconds(req.latency());
  const double sum_s = req.stages.total();
  const double tol = opts_.tolerance_s + 1e-9 * std::abs(latency_s);
  const double delta = latency_s - sum_s;
  if (std::abs(delta) > tol) {
    std::ostringstream os;
    os << "sum(stages) " << sum_s << "s vs latency " << latency_s << "s (delta " << delta
       << "s); " << drift_label(req, fl, delta);
    add_violation(req.id, "stage-conservation", os.str());
  }
}

std::string RequestAuditor::drift_label(const Request& req, const InFlight& fl, double delta_s) {
  if (delta_s > 0) {
    // Wall-clock time nobody charged: the stage charged right after the
    // largest uncovered gap failed to account for its wait.
    if (fl.charges.empty()) return "no stage was ever charged";
    if (fl.charges.size() >= kMaxChargesTracked) {
      return "drifting stage unknown (charge log capped)";
    }
    std::vector<Charge> sorted = fl.charges;
    std::sort(sorted.begin(), sorted.end(),
              [](const Charge& a, const Charge& b) { return a.begin < b.begin; });
    sim::Time cursor = req.arrival;
    sim::Time best_gap = 0;
    std::string_view culprit = "completion (nothing charged until done)";
    for (const Charge& c : sorted) {
      if (c.begin > cursor) {
        const sim::Time gap = c.begin - cursor;
        if (gap > best_gap) {
          best_gap = gap;
          culprit = metrics::stage_name(c.stage);
        }
      }
      cursor = std::max(cursor, c.end);
    }
    if (req.completed > cursor && req.completed - cursor > best_gap) {
      best_gap = req.completed - cursor;
      culprit = "completion (nothing charged until done)";
    }
    return "largest uncovered gap " + std::to_string(sim::to_seconds(best_gap)) +
           "s precedes stage '" + std::string(culprit) + "'";
  }
  // Over-accounting: some stage charged time twice. Attribute by the
  // accumulated per-stage durations (not the recorded intervals, which are
  // clamped to the sim timeline and capped) — a hint, not proof: sequential
  // waits charged at the same instant legitimately overlap.
  std::size_t max_i = 0;
  for (std::size_t i = 1; i < metrics::kStageCount; ++i) {
    if (req.stages[static_cast<metrics::Stage>(i)] >
        req.stages[static_cast<metrics::Stage>(max_i)]) {
      max_i = i;
    }
  }
  return "over-charged; largest contributor is stage '" +
         std::string(metrics::stage_name(static_cast<metrics::Stage>(max_i))) + "'";
}

void RequestAuditor::check_zero(std::string_view what, std::uint64_t value) {
  if (value != 0) {
    add_violation(0, "resource-hygiene",
                  std::string(what) + " = " + std::to_string(value) + " after drain (expected 0)");
  }
}

void RequestAuditor::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (const auto& [id, fl] : inflight_) {
    add_violation(id, "leaked-request",
                  "submitted at " + format_time(fl.arrival) + " but never completed or dropped");
  }
  if (submitted_ != completed_ + dropped_ + failed_) {
    add_violation(0, "request-conservation",
                  "submitted " + std::to_string(submitted_) + " != completed " +
                      std::to_string(completed_) + " + dropped " + std::to_string(dropped_) +
                      " + failed " + std::to_string(failed_) + " (leaked " +
                      std::to_string(inflight_.size()) + ")");
  }
  // Publish the full-population per-stage means into the trace itself, so
  // tools/trace_analyze can cross-check the sampled critical paths against
  // the exhaustive auditor accounting without a side channel.
  if (trace_ != nullptr && breakdown_.count() > 0) {
    sim::SpanArgs args;
    if (!opts_.run_label.empty()) args.emplace_back("run", opts_.run_label);
    args.emplace_back("count", std::to_string(breakdown_.count()));
    args.emplace_back("mean_total_s", metrics::format_double(breakdown_.mean_total()));
    for (std::size_t i = 0; i < metrics::kStageCount; ++i) {
      const auto s = static_cast<metrics::Stage>(i);
      args.emplace_back("stage_" + std::string(metrics::stage_name(s)),
                        metrics::format_double(breakdown_.mean(s)));
    }
    trace_->instant("meta", "audit.breakdown", last_terminal_, std::move(args));
  }
}

void RequestAuditor::add_violation(std::uint64_t id, std::string check, std::string detail) {
  ++violation_count_;
  if (violations_.size() < opts_.max_recorded) {
    violations_.push_back(Violation{id, std::move(check), std::move(detail)});
  }
}

std::vector<std::string> RequestAuditor::report() const {
  std::vector<std::string> lines;
  lines.reserve(violations_.size() + 1);
  for (const Violation& v : violations_) {
    std::string line = v.check;
    if (v.request_id != 0) line += " (request " + std::to_string(v.request_id) + ")";
    line += ": " + v.detail;
    lines.push_back(std::move(line));
  }
  if (violation_count_ > violations_.size()) {
    lines.push_back("... and " + std::to_string(violation_count_ - violations_.size()) +
                    " more violation(s)");
  }
  return lines;
}

}  // namespace serve::serving
