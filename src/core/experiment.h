// Experiment runner: stands up a platform + server + clients, runs a
// warmup and a measurement window in virtual time, and returns the metrics
// the paper's figures are built from.
#pragma once

#include <cstdint>
#include <optional>

#include "hw/devices.h"
#include "hw/energy.h"
#include "metrics/breakdown.h"
#include "serving/client.h"
#include "serving/config.h"
#include "serving/server.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace serve::core {

/// Inputs for a single serving experiment.
struct ExperimentSpec {
  serving::ServerConfig server{};
  int gpu_count = 1;
  hw::Calibration calib = hw::default_calibration();

  int concurrency = 256;                 ///< closed-loop clients
  hw::ImageSpec image = hw::kMediumImage;
  sim::Time warmup = sim::seconds(2.0);
  sim::Time measure = sim::seconds(10.0);
  std::uint64_t seed = 42;

  /// Optional: record device-occupancy counters for chrome://tracing.
  sim::TraceRecorder* trace = nullptr;
};

/// Outputs of a serving experiment (one point of a paper figure).
struct ExperimentResult {
  double throughput_rps = 0.0;   ///< completed requests / measurement second
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  std::uint64_t completed = 0;
  double mean_batch = 0.0;
  metrics::Breakdown breakdown{};  ///< per-stage latency decomposition
  hw::EnergyReport energy{};       ///< over the measurement window
  std::uint64_t gpu_evictions = 0; ///< staging-memory evictions observed

  [[nodiscard]] double stage_share(metrics::Stage s) const noexcept {
    return breakdown.share(s);
  }
  [[nodiscard]] double cpu_joules_per_image() const noexcept {
    return completed ? energy.cpu_joules / static_cast<double>(completed) : 0.0;
  }
  [[nodiscard]] double gpu_joules_per_image() const noexcept {
    return completed ? energy.gpu_joules / static_cast<double>(completed) : 0.0;
  }
};

/// Runs one closed-loop serving experiment end to end in virtual time.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Convenience: zero-load experiment (concurrency 1, short window) used for
/// the Fig. 6 latency-breakdown study.
[[nodiscard]] ExperimentResult run_zero_load(ExperimentSpec spec);

/// Open-loop variant: requests arrive on `interarrival` (see
/// workload/arrivals.h) instead of from closed-loop clients; `concurrency`
/// is ignored. Use to study latency at a fixed offered rate and under
/// bursty traffic.
[[nodiscard]] ExperimentResult run_open_loop(const ExperimentSpec& spec,
                                             serving::OpenLoopClients::Interarrival interarrival);

}  // namespace serve::core
