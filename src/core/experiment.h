// Experiment runner: stands up a platform + server + clients, runs a
// warmup and a measurement window in virtual time, and returns the metrics
// the paper's figures are built from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/devices.h"
#include "hw/energy.h"
#include "metrics/breakdown.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "obs/alert_engine.h"
#include "serving/client.h"
#include "serving/config.h"
#include "serving/server.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "trace/causal.h"

namespace serve::core {

/// Inputs for a single serving experiment.
struct ExperimentSpec {
  serving::ServerConfig server{};
  int gpu_count = 1;
  hw::Calibration calib = hw::default_calibration();

  int concurrency = 256;                 ///< closed-loop clients
  hw::ImageSpec image = hw::kMediumImage;
  /// Optional request source for the clients (e.g. a Zipf-popular corpus via
  /// workload::popular_corpus_source). When empty, every request carries
  /// `image` with no content identity (the classic fixed-size harness).
  serving::ImageSource image_source{};
  sim::Time warmup = sim::seconds(2.0);
  sim::Time measure = sim::seconds(10.0);
  std::uint64_t seed = 42;

  /// Optional: record device-occupancy counters for chrome://tracing.
  sim::TraceRecorder* trace = nullptr;

  /// Optional causal tracer (shared across rows writing the same trace):
  /// sampled requests then carry SpanContexts, spans get trace/span/parent
  /// ids + blame args, and tools/trace_analyze can rebuild the trees.
  /// Requires `trace`; its recorder should be `trace`.
  trace::CausalTracer* tracer = nullptr;

  /// Optional deterministic fault-injection schedule (must outlive the run).
  /// Wired into the platform (PCIe/preproc/GPU-failure queries), the result
  /// broker (outages), and the runner (staging-budget shrink transitions,
  /// fault spans on the trace's "faults" track).
  const sim::FaultPlan* faults = nullptr;

  /// Optional telemetry registry: the platform, server, brokers, and clients
  /// register their instruments here. Cumulative from simulation start (not
  /// window-scoped like ServerStats). The runner freezes callback
  /// instruments before tearing the run down, so the registry may safely
  /// outlive it.
  metrics::Registry* registry = nullptr;

  /// Optional flight recorder over `registry` (requires it). The runner
  /// starts it when clients start and stops it at the end of the
  /// measurement window, before the drain.
  metrics::FlightRecorder* recorder = nullptr;

  /// Optional SLO watch plane over `registry` + `recorder` (requires both;
  /// the caller attaches it to the recorder). The runner binds the trace
  /// ("alerts" instant events) and — when auditing with a causal tracer —
  /// the auditor's sampler for triggered capture, then releases the sampler
  /// binding before the server is torn down.
  obs::AlertEngine* alerts = nullptr;
};

/// Outputs of a serving experiment (one point of a paper figure).
struct ExperimentResult {
  double throughput_rps = 0.0;   ///< completed requests / measurement second
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  std::uint64_t completed = 0;
  double mean_batch = 0.0;
  metrics::Breakdown breakdown{};  ///< per-stage latency decomposition
  hw::EnergyReport energy{};       ///< over the measurement window
  std::uint64_t gpu_evictions = 0; ///< staging-memory evictions observed

  // Ingress-cache accounting (all zero unless ServerConfig::ingress_cache is
  // enabled). Hits are window-scoped completed requests by satisfied level;
  // evictions are window-scoped across both cache levels.
  std::uint64_t cache_tensor_hits = 0;
  std::uint64_t cache_image_hits = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;  ///< (tensor + image hits) / completed

  // Resilience accounting (window-scoped like completed, except the client
  // counters, which cover the whole run including warmup).
  std::uint64_t dropped = 0;          ///< shed by admission control
  std::uint64_t failed = 0;           ///< failed terminally (faults, breaker)
  std::uint64_t rejected = 0;         ///< failed by the open circuit breaker
  std::uint64_t breaker_opens = 0;    ///< breaker Closed/HalfOpen -> Open edges
  std::uint64_t degraded = 0;         ///< requests rerouted to CPU preprocessing
  std::uint64_t broker_failovers = 0; ///< result publishes that fell back to fused
  std::uint64_t client_retries = 0;   ///< client-side re-submissions
  std::uint64_t client_timeouts = 0;  ///< client attempts abandoned at deadline

  /// Lifecycle-audit verdict (ServerConfig::audit): total violations across
  /// the whole run (warmup + measure + drain) and the formatted report.
  /// Always 0 / empty when auditing is off.
  std::uint64_t audit_violations = 0;
  std::vector<std::string> audit_report{};

  [[nodiscard]] double stage_share(metrics::Stage s) const noexcept {
    return breakdown.share(s);
  }
  [[nodiscard]] double cpu_joules_per_image() const noexcept {
    return completed ? energy.cpu_joules / static_cast<double>(completed) : 0.0;
  }
  [[nodiscard]] double gpu_joules_per_image() const noexcept {
    return completed ? energy.gpu_joules / static_cast<double>(completed) : 0.0;
  }
};

/// Runs one closed-loop serving experiment end to end in virtual time.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Convenience: zero-load experiment (concurrency 1, short window) used for
/// the Fig. 6 latency-breakdown study.
[[nodiscard]] ExperimentResult run_zero_load(ExperimentSpec spec);

/// Open-loop variant: requests arrive on `interarrival` (see
/// workload/arrivals.h) instead of from closed-loop clients; `concurrency`
/// is ignored. Use to study latency at a fixed offered rate and under
/// bursty traffic.
[[nodiscard]] ExperimentResult run_open_loop(const ExperimentSpec& spec,
                                             serving::OpenLoopClients::Interarrival interarrival);

/// Command-line options shared by the bench binaries: `--audit` turns on the
/// request-lifecycle auditor, `--trace-out <path>` additionally records
/// per-request stage spans + device counters and writes Chrome trace-event
/// JSON at exit (tracing implies auditing — the spans come from the auditor).
struct HarnessOptions {
  bool audit = false;
  std::string trace_out{};
  std::size_t trace_max_events = 0;  ///< 0 = TraceRecorder default cap

  [[nodiscard]] bool tracing() const noexcept { return !trace_out.empty(); }
  [[nodiscard]] bool auditing() const noexcept { return audit || tracing(); }

  /// Enables ServerConfig::audit and points spec.trace at `trace` as
  /// requested. Call once per experiment row. With a `tracer`, also binds it
  /// to `trace` and hands it to the run (spec.tracer), turning the flat
  /// per-request spans into causal traces.
  void apply(ExperimentSpec& spec, sim::TraceRecorder& trace,
             trace::CausalTracer* tracer = nullptr) const;
};

/// Parses --audit / --trace-out / --trace-max-events from argv; throws
/// std::invalid_argument on an unknown flag or a missing value.
[[nodiscard]] HarnessOptions parse_harness_options(int argc, const char* const* argv);

/// Prints `r`'s audit report to stderr (labelled) when it has violations.
/// Returns the violation count so callers can accumulate an exit status.
std::uint64_t report_audit(const ExperimentResult& r, const std::string& label);

/// Writes the trace file (if requested) and prints the final audit verdict.
/// Returns true when no violations were observed and the trace (if any)
/// was written; an unwritable trace path is reported on stderr, not thrown.
bool finish_harness(const HarnessOptions& opts, const sim::TraceRecorder& trace,
                    std::uint64_t total_violations);

}  // namespace serve::core
