// Video classification pipeline (the paper's Section 1 motivating service).
//
// Per clip: ingest -> video decode (CPU software pool or the GPU's NVDEC
// engine) -> sample frames -> per-frame resize/normalize -> dynamic-batched
// DNN classification. One clip fans out to `sampled_frames` inference
// calls, so this composes the paper's preprocessing findings (decode
// dominates) with its rate-mismatch findings (Section 4.7) in a second
// realistic multi-stage system.
#pragma once

#include <cstdint>
#include <string>

#include "hw/calibration.h"
#include "metrics/breakdown.h"
#include "models/model_zoo.h"
#include "sim/time.h"
#include "trace/causal.h"
#include "trace/span_context.h"
#include "workload/video.h"

namespace serve::core {

enum class VideoDecodeDevice : std::uint8_t { kCpu, kNvdec };

[[nodiscard]] constexpr std::string_view video_decode_device_name(VideoDecodeDevice d) noexcept {
  return d == VideoDecodeDevice::kCpu ? "cpu-sw" : "nvdec";
}

/// How many frames must be decoded to extract the samples.
enum class SamplingMode : std::uint8_t {
  kDecodeAll,      ///< decode the whole clip, keep the sampled frames
  kKeyframeSeek,   ///< seek to keyframes: decode ~2 frames per sample
};

struct VideoPipelineSpec {
  workload::VideoSpec clip = workload::kHdClip;
  models::ModelDesc model{};  ///< defaults to ViT-Base when name empty
  VideoDecodeDevice decode = VideoDecodeDevice::kNvdec;
  SamplingMode sampling = SamplingMode::kKeyframeSeek;
  int concurrency = 8;  ///< clips in flight (closed loop)
  hw::Calibration calib = hw::default_calibration();
  sim::Time warmup = sim::seconds(2.0);
  sim::Time measure = sim::seconds(20.0);

  /// Optional causal tracer (recorder already attached): sampled clips then
  /// originate traces covering ingest, decode, and batched classification.
  trace::CausalTracer* tracer = nullptr;
  trace::SamplerOptions trace_sampler{};  ///< which clips get traced
  std::string trace_label{};              ///< "run" arg on clip root spans
};

struct VideoPipelineResult {
  double clips_per_s = 0.0;
  double frames_per_s = 0.0;        ///< classified (sampled) frames
  double mean_latency_s = 0.0;      ///< clip arrival -> last frame classified
  double p99_latency_s = 0.0;
  std::uint64_t clips = 0;
  metrics::Breakdown breakdown{};   ///< per-clip stage decomposition

  [[nodiscard]] double decode_share() const noexcept {
    return breakdown.share(metrics::Stage::kPreprocess);
  }
  [[nodiscard]] double inference_share() const noexcept {
    return breakdown.share(metrics::Stage::kInference);
  }
};

[[nodiscard]] VideoPipelineResult run_video_pipeline(const VideoPipelineSpec& spec);

}  // namespace serve::core
