#include "core/autotuner.h"

namespace serve::core {

namespace {

template <typename T>
std::vector<T> or_default(const std::vector<T>& dim, T fallback) {
  return dim.empty() ? std::vector<T>{fallback} : dim;
}

}  // namespace

TuneReport tune_server(const ExperimentSpec& base, const TuneSpace& space,
                       const TuneObjective& objective) {
  TuneReport report;
  report.best.result.throughput_rps = 0.0;

  const auto batches = or_default(space.max_batches, base.server.effective_max_batch());
  const auto concurrencies = or_default(space.concurrencies, base.concurrency);
  const auto devices = or_default(space.preproc_devices, base.server.preproc);
  const auto workers = or_default(space.preproc_workers, base.calib.cpu.preproc_workers);
  const auto instances = or_default(space.instance_counts, base.server.instance_count);

  for (auto dev : devices) {
    for (int w : workers) {
      // Worker count only matters on the CPU-preprocessing path; skip the
      // redundant GPU-path sweep beyond the first value.
      if (dev == serving::PreprocDevice::kGpu && w != workers.front()) continue;
      for (int inst : instances) {
      for (int mb : batches) {
        for (int conc : concurrencies) {
          ExperimentSpec spec = base;
          spec.server.preproc = dev;
          spec.server.max_batch = mb;
          spec.server.fixed_batch = mb;
          spec.server.instance_count = inst;
          spec.concurrency = conc;
          spec.calib.cpu.preproc_workers = w;
          TunePoint point;
          point.spec = spec;
          point.result = run_experiment(spec);
          point.feasible = point.result.p99_latency_s <= objective.p99_slo_s;
          const bool better =
              point.feasible && (!report.best.feasible ||
                                 point.result.throughput_rps > report.best.result.throughput_rps);
          report.trace.push_back(point);
          if (better) report.best = report.trace.back();
        }
      }
      }
    }
  }
  return report;
}

}  // namespace serve::core
